//! Dump a VCD waveform of the accelerator's BRAM schedule for one window —
//! open the result in GTKWave to see the ladder's eight-reads-per-cycle
//! pattern, the PE-V write-backs trailing the reads, and the BRAM-Term
//! ping-pong between regions.
//!
//! ```text
//! cargo run --example waveform --release
//! gtkwave target/examples-output/window.vcd   # (on a machine with GTKWave)
//! ```

use chambolle::core::ChambolleParams;
use chambolle::fixed::PackedWord;
use chambolle::hwsim::trace::{write_vcd, AccessKind, TraceRecorder};
use chambolle::hwsim::{
    quantize_input, AccelConfig, ArrayConfig, ChambolleAccel, HwParams, PeArray,
};
use chambolle::imaging::{NoiseTexture, Scene};

fn main() -> chambolle::Result<()> {
    let mut array = PeArray::new(ArrayConfig::paper());
    let recorder = TraceRecorder::shared();
    array.attach_recorder(&recorder);

    // A small window, two iterations: enough to show all schedule phases
    // without a gigantic dump.
    let v = NoiseTexture::new(12).render(24, 20);
    let run = array.process_window(&quantize_input(&v), &HwParams::standard(2));

    let trace = recorder.borrow();
    println!(
        "simulated {} cycles, recorded {} BRAM accesses",
        run.stats.cycles,
        trace.len()
    );

    // A taste of the schedule on stdout: the first accesses of the run.
    for a in trace.accesses().iter().take(24) {
        let word = PackedWord::from_bits(a.data);
        println!(
            "  cycle {:>4} {} {:<5} addr {:>4}  v={:+.3} px={:+.3} py={:+.3}",
            a.cycle,
            a.bram,
            if a.kind == AccessKind::Read {
                "read"
            } else {
                "write"
            },
            a.addr,
            word.v().to_f32(),
            word.px().to_f32(),
            word.py().to_f32(),
        );
    }

    std::fs::create_dir_all("target/examples-output")?;
    let path = "target/examples-output/window.vcd";
    let mut file = std::fs::File::create(path)?;
    write_vcd(&mut file, &trace)?;
    println!("VCD written to {path}");
    drop(trace);

    // The same capability at frame scale: a recorder attached to the full
    // two-window accelerator captures every BRAM of every window across a
    // whole frame solve, so the inter-window schedule is visible too.
    let mut accel = ChambolleAccel::new(AccelConfig::paper(2)?);
    let frame_recorder = TraceRecorder::shared();
    accel.attach_recorder(&frame_recorder);
    let frame = NoiseTexture::new(12).render(150, 120);
    let (_u, _, stats) = accel.denoise_pair(&frame, None, &ChambolleParams::paper(2))?;

    let frame_trace = frame_recorder.borrow();
    println!(
        "full accelerator frame: {} cycles over {} window loads, {} accesses recorded",
        stats.cycles,
        stats.window_loads,
        frame_trace.len()
    );
    let frame_path = "target/examples-output/frame.vcd";
    let mut frame_file = std::fs::File::create(frame_path)?;
    write_vcd(&mut frame_file, &frame_trace)?;
    println!("frame-level VCD written to {frame_path}");
    Ok(())
}
