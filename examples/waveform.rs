//! Dump a VCD waveform of the accelerator's BRAM schedule for one window —
//! open the result in GTKWave to see the ladder's eight-reads-per-cycle
//! pattern, the PE-V write-backs trailing the reads, and the BRAM-Term
//! ping-pong between regions.
//!
//! ```text
//! cargo run --example waveform --release
//! gtkwave target/examples-output/window.vcd   # (on a machine with GTKWave)
//! ```

use std::error::Error;

use chambolle::fixed::PackedWord;
use chambolle::hwsim::trace::{write_vcd, AccessKind, TraceRecorder};
use chambolle::hwsim::{quantize_input, ArrayConfig, HwParams, PeArray};
use chambolle::imaging::{NoiseTexture, Scene};

fn main() -> Result<(), Box<dyn Error>> {
    let mut array = PeArray::new(ArrayConfig::paper());
    let recorder = TraceRecorder::shared();
    array.attach_recorder(&recorder);

    // A small window, two iterations: enough to show all schedule phases
    // without a gigantic dump.
    let v = NoiseTexture::new(12).render(24, 20);
    let run = array.process_window(&quantize_input(&v), &HwParams::standard(2));

    let trace = recorder.borrow();
    println!(
        "simulated {} cycles, recorded {} BRAM accesses",
        run.stats.cycles,
        trace.len()
    );

    // A taste of the schedule on stdout: the first accesses of the run.
    for a in trace.accesses().iter().take(24) {
        let word = PackedWord::from_bits(a.data);
        println!(
            "  cycle {:>4} {} {:<5} addr {:>4}  v={:+.3} px={:+.3} py={:+.3}",
            a.cycle,
            a.bram,
            if a.kind == AccessKind::Read {
                "read"
            } else {
                "write"
            },
            a.addr,
            word.v().to_f32(),
            word.px().to_f32(),
            word.py().to_f32(),
        );
    }

    std::fs::create_dir_all("target/examples-output")?;
    let path = "target/examples-output/window.vcd";
    let mut file = std::fs::File::create(path)?;
    write_vcd(&mut file, &trace)?;
    println!("VCD written to {path}");
    Ok(())
}
