//! Motion estimation of an object moving over a textured background — the
//! motion-estimation/compensation use case of the paper's introduction.
//!
//! A textured disk moves over a static textured background; the flow field
//! should be near zero on the background and match the disk's displacement
//! inside it. The disk carries its own texture (it moves *with* the object),
//! so the data term is informative everywhere except at the occlusion
//! boundary.
//!
//! ```text
//! cargo run --example motion_estimation --release
//! ```

use chambolle::core::{TvL1Params, TvL1Solver};
use chambolle::imaging::{Grid, Image, NoiseTexture, Scene};

fn main() -> chambolle::Result<()> {
    let (w, h) = (128usize, 96usize);
    let (cx0, cy0, radius) = (52.0f32, 48.0f32, 18.0f32);
    let (dx, dy) = (3.0f32, 1.5f32);

    let background = NoiseTexture::new(9);
    let object = NoiseTexture::with_octaves(77, &[(8.0, 1.0), (4.0, 0.5)]);
    // A frame with the object disk centered at (cx, cy): inside the disk the
    // object's own texture (in object-local coordinates, so it translates
    // rigidly with the disk), outside the static background.
    let frame = |cx: f32, cy: f32| -> Image {
        Grid::from_fn(w, h, |x, y| {
            let (xf, yf) = (x as f32, y as f32);
            let d = ((xf - cx).powi(2) + (yf - cy).powi(2)).sqrt();
            let blend = ((radius - d) / 2.0).clamp(0.0, 1.0); // soft 2px edge
            let bg = 0.7 * background.sample(xf, yf);
            let obj = 0.3 + 0.7 * object.sample(xf - cx, yf - cy);
            bg + blend * (obj - bg)
        })
    };
    let frame0 = frame(cx0, cy0);
    let frame1 = frame(cx0 + dx, cy0 + dy);

    let solver = TvL1Solver::sequential(TvL1Params::default());
    let (flow, _) = solver.flow(&frame0, &frame1)?;

    // Flow convention: i1(x + u(x)) = i0(x). For a pixel x inside the disk
    // in frame 0, the matching frame-1 content sits at x + (dx, dy), so the
    // estimated u inside the disk should be approximately (dx, dy).
    let mut disk_u = (0.0f64, 0.0f64);
    let mut disk_n = 0usize;
    let mut bg_mag = 0.0f64;
    let mut bg_n = 0usize;
    for y in 0..h {
        for x in 0..w {
            let d = ((x as f32 - cx0).powi(2) + (y as f32 - cy0).powi(2)).sqrt();
            let (u, v) = flow.at(x, y);
            if d < radius - 6.0 {
                disk_u.0 += u as f64;
                disk_u.1 += v as f64;
                disk_n += 1;
            } else if d > radius + 12.0 {
                bg_mag += ((u * u + v * v) as f64).sqrt();
                bg_n += 1;
            }
        }
    }
    let disk_u = (disk_u.0 / disk_n as f64, disk_u.1 / disk_n as f64);
    let bg_mag = bg_mag / bg_n as f64;

    println!("true disk motion:      ({dx:.2}, {dy:.2}) px");
    println!(
        "estimated disk motion: ({:.2}, {:.2}) px",
        disk_u.0, disk_u.1
    );
    println!("background |u| mean:   {bg_mag:.3} px (should be ~0)");

    let err = ((disk_u.0 - dx as f64).powi(2) + (disk_u.1 - dy as f64).powi(2)).sqrt();
    if err > 1.0 {
        return Err(format!("disk motion estimate off by {err:.2} px").into());
    }
    if bg_mag > 0.5 {
        return Err(format!("background should be static, got |u| = {bg_mag:.2}").into());
    }
    Ok(())
}
