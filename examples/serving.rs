//! Serving quickstart: run the denoise service in-process and over TCP.
//!
//! Spawns the batching service on a small worker pool, submits a burst of
//! compatible requests (which coalesce into shared pool dispatches), makes
//! one framed TCP round-trip against the same service, then drains
//! gracefully and prints the final telemetry report.
//!
//! ```text
//! cargo run --release --example serving
//! ```

use std::time::Duration;

use chambolle::core::ChambolleParams;
use chambolle::imaging::{NoiseTexture, Scene};
use chambolle::service::{
    wire, Priority, Request, Service, ServiceClient, ServiceConfig, TcpServer, Workload,
};
use chambolle::telemetry::Telemetry;

fn main() {
    // A service with 2 pool workers, a queue of 32, batches of up to 8, and
    // a 2-second default deadline for requests that don't set their own.
    let telemetry = Telemetry::null();
    let config = ServiceConfig::new(2, 32)
        .with_max_batch(8)
        .with_default_deadline(Duration::from_secs(2));
    let service = Service::spawn_with_telemetry(config, telemetry);

    // In-process submission: a burst of compatible requests. Same dims,
    // same parameters => the micro-batcher coalesces them, and each
    // response reports the batch it rode in.
    let params = ChambolleParams::with_iterations(40);
    let tickets: Vec<_> = (0..12)
        .map(|i| {
            let input = NoiseTexture::new(1000 + i).render(64, 64);
            let priority = if i % 4 == 0 {
                Priority::Interactive
            } else {
                Priority::Batch
            };
            service
                .handle()
                .submit(Request::new(Workload::Denoise { input, params }).with_priority(priority))
                .expect("queue of 32 admits a burst of 12")
        })
        .collect();
    for (i, ticket) in tickets.into_iter().enumerate() {
        let done = ticket.wait().expect("in-process request must complete");
        println!(
            "request {i:>2}: queue {:>6} us, solve {:>6} us, batch of {}",
            done.queue_us, done.solve_us, done.batch_size
        );
    }

    // The same service behind the framed TCP front-end, on an ephemeral
    // localhost port.
    let server = TcpServer::bind(service.handle().clone(), "127.0.0.1:0").expect("localhost bind");
    println!("serving on {}", server.local_addr());
    let mut client = ServiceClient::connect(server.local_addr()).expect("connect");
    let input = NoiseTexture::new(7).render(64, 64);
    match client
        .denoise(
            &input,
            &params,
            Priority::Interactive,
            Some(Duration::from_secs(2)),
        )
        .expect("round-trip")
    {
        wire::WireResponse::Ok { output, .. } => {
            println!(
                "tcp round-trip ok: {}x{} denoised",
                output.width(),
                output.height()
            );
        }
        wire::WireResponse::Err { code, message, .. } => {
            println!("tcp request failed ({code:?}): {message}");
        }
    }
    drop(client);
    server.shutdown();

    // Graceful drain: admission stops, in-flight work completes, and the
    // final run report carries the service counters.
    let summary = service.shutdown();
    println!(
        "drained: {} accepted, {} completed, {} batches, 0 lost (in flight: {})",
        summary.stats.accepted,
        summary.stats.completed,
        summary.stats.batches,
        summary.stats.in_flight()
    );
    if let Some(report) = summary.report {
        println!("{}", report.to_json().to_string_pretty());
    }
}
