//! Serving quickstart: run the denoise service in-process, over TCP, and
//! through deliberate chaos.
//!
//! Spawns the batching service on a small worker pool, submits a burst of
//! compatible requests (which coalesce into shared pool dispatches), makes
//! one framed TCP round-trip against the same service, then rebinds the
//! front-end with deterministic fault injection and shows the resilient
//! client absorbing resets, corruption, and a scripted server panic while
//! health probes watch readiness — and finally drains gracefully and
//! prints the final telemetry report.
//!
//! ```text
//! cargo run --release --example serving
//! ```

use std::time::Duration;

use chambolle::core::ChambolleParams;
use chambolle::imaging::{NoiseTexture, Scene};
use chambolle::service::{
    wire, ChaosConfig, Priority, Request, ResilientClient, Service, ServiceClient, ServiceConfig,
    TcpServer, Workload,
};
use chambolle::telemetry::Telemetry;

fn main() {
    // A service with 2 pool workers, a queue of 32, batches of up to 8, and
    // a 2-second default deadline for requests that don't set their own.
    let telemetry = Telemetry::null();
    let config = ServiceConfig::new(2, 32)
        .with_max_batch(8)
        .with_default_deadline(Duration::from_secs(2));
    let service = Service::spawn_with_telemetry(config, telemetry);

    // In-process submission: a burst of compatible requests. Same dims,
    // same parameters => the micro-batcher coalesces them, and each
    // response reports the batch it rode in.
    let params = ChambolleParams::with_iterations(40);
    let tickets: Vec<_> = (0..12)
        .map(|i| {
            let input = NoiseTexture::new(1000 + i).render(64, 64);
            let priority = if i % 4 == 0 {
                Priority::Interactive
            } else {
                Priority::Batch
            };
            service
                .handle()
                .submit(Request::new(Workload::Denoise { input, params }).with_priority(priority))
                .expect("queue of 32 admits a burst of 12")
        })
        .collect();
    for (i, ticket) in tickets.into_iter().enumerate() {
        let done = ticket.wait().expect("in-process request must complete");
        println!(
            "request {i:>2}: queue {:>6} us, solve {:>6} us, batch of {}",
            done.queue_us, done.solve_us, done.batch_size
        );
    }

    // The same service behind the framed TCP front-end, on an ephemeral
    // localhost port.
    let server = TcpServer::bind(service.handle().clone(), "127.0.0.1:0").expect("localhost bind");
    println!("serving on {}", server.local_addr());
    let mut client = ServiceClient::connect(server.local_addr()).expect("connect");
    let input = NoiseTexture::new(7).render(64, 64);
    match client
        .denoise(
            &input,
            &params,
            Priority::Interactive,
            Some(Duration::from_secs(2)),
        )
        .expect("round-trip")
    {
        wire::WireResponse::Ok { output, .. } => {
            println!(
                "tcp round-trip ok: {}x{} denoised",
                output.width(),
                output.height()
            );
        }
        wire::WireResponse::Err { code, message, .. } => {
            println!("tcp request failed ({code:?}): {message}");
        }
        wire::WireResponse::Health { .. } | wire::WireResponse::Metrics { .. } => {
            unreachable!("denoise never yields a health or metrics frame")
        }
    }
    drop(client);
    server.shutdown();

    // Chaos round: the same service behind a front-end that injects
    // deterministic faults — seeded connection resets and bit corruption,
    // plus a scripted server panic on the 2nd solve (after it commits, so
    // the retry is answered from the idempotency cache). The resilient
    // client's retries, breaker, and idempotency keys absorb all of it.
    let chaos = ChaosConfig::quiet(42)
        .with_resets(0.04)
        .with_corruption(0.04)
        .with_panic_on_request(2);
    let chaotic = TcpServer::bind_with_chaos(service.handle().clone(), "127.0.0.1:0", chaos)
        .expect("localhost bind");
    println!("chaos serving on {}", chaotic.local_addr());
    let mut resilient = ResilientClient::connect(chaotic.local_addr()).expect("connect");
    for i in 0..6 {
        let input = NoiseTexture::new(5000 + i).render(64, 64);
        let outcome = resilient
            .denoise(&input, &params, Priority::Interactive, None)
            .expect("retries + idempotent replay must absorb the chaos");
        println!(
            "chaos request {i}: {} attempt(s), tier {}{}",
            outcome.attempts,
            outcome.tier,
            if outcome.recovered {
                " (recovered)"
            } else {
                ""
            },
        );
    }
    let health = resilient.health().expect("health probe");
    println!(
        "health: ready={}, queue {}/{}, completed {}, last solve {:?} ago",
        health.is_ready(),
        health.queue_depth,
        health.queue_capacity,
        health.completed,
        health.last_solve_age,
    );
    let stats = resilient.stats();
    let faults = chaotic.chaos().map_or(0, |injector| injector.fault_count());
    println!(
        "chaos absorbed: {faults} injected fault(s), {} retries, {} recovered, {} breaker open(s)",
        stats.retries, stats.recovered, stats.breaker_opened,
    );
    drop(resilient);
    chaotic.shutdown();

    // Graceful drain: admission stops, in-flight work completes, and the
    // final run report carries the service counters.
    let summary = service.shutdown();
    println!(
        "drained: {} accepted, {} completed, {} batches, 0 lost (in flight: {})",
        summary.stats.accepted,
        summary.stats.completed,
        summary.stats.batches,
        summary.stats.in_flight()
    );
    if let Some(report) = summary.report {
        println!("{}", report.to_json().to_string_pretty());
    }
}
