//! Fault tolerance demo: runs the simulated FPGA accelerator while a
//! deterministic injector flips BRAM bits, corrupts sqrt-LUT entries and
//! glitches the PE datapath — then shows the guard detecting every upset and
//! recovering the exact fault-free output.
//!
//! ```sh
//! cargo run --release --example fault_tolerance
//! ```

use chambolle::core::{ChambolleParams, GuardedDenoiser, TileConfig};
use chambolle::hwsim::{AccelConfig, AccelGuardConfig, ChambolleAccel, FaultConfig, FaultInjector};
use chambolle::imaging::{NoiseTexture, Scene};

fn main() -> chambolle::Result<()> {
    let v = NoiseTexture::new(2011).render(128, 96);
    let params = ChambolleParams::with_iterations(8);

    // Fault-free reference on the unguarded accelerator.
    let mut accel = ChambolleAccel::new(AccelConfig::default());
    let (clean, _, clean_stats) = accel.denoise_pair(&v, None, &params)?;

    // Same frame with upsets raining on the state BRAMs, the sqrt LUTs and
    // the PE datapath.
    let mut accel = ChambolleAccel::new(AccelConfig::default());
    let mut injector = FaultInjector::new(FaultConfig {
        seed: 0xDA7E_2011,
        bram_flip_rate: 1e-3,
        lut_rate: 1e-4,
        datapath_rate: 1e-4,
    });
    let out = accel.denoise_pair_guarded(
        &v,
        None,
        &params,
        &mut injector,
        &AccelGuardConfig::default(),
    )?;

    println!("injected faults : {}", injector.injected());
    println!("detections      : {}", out.report.detections);
    println!("degraded        : {}", out.report.degraded);
    println!(
        "extra window loads for recovery: {}",
        out.stats.window_loads - clean_stats.window_loads
    );
    println!("\nrecovery log:");
    for action in &out.report.actions {
        println!("  - {action}");
    }

    let exact = out.u1.as_slice() == clean.as_slice();
    println!("\noutput bit-identical to fault-free run: {exact}");
    assert!(exact, "guarded accelerator must recover exactly");

    // The software pipeline has the same shape: a GuardedDenoiser wraps any
    // backend, scrubs NaN/Inf inputs and falls back to the sequential
    // reference if the backend misbehaves.
    let mut poisoned = v.clone();
    poisoned[(5, 5)] = f32::NAN;
    poisoned[(64, 40)] = f32::INFINITY;
    let guard = GuardedDenoiser::tiled(TileConfig::new(48, 48, 2, 2)?);
    let (u, report) = guard.denoise_checked(&poisoned, &params)?;
    println!("\nsoftware guard: {report}");
    assert!(u.as_slice().iter().all(|x| x.is_finite()));
    Ok(())
}
