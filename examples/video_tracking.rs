//! Track optical flow across a video sequence with temporal warm starting —
//! the motion-estimation/compensation pipeline of the paper's introduction,
//! where a new flow field is needed for every consecutive frame pair.
//!
//! ```text
//! cargo run --example video_tracking --release
//! ```

use chambolle::core::{ChambolleParams, TvL1Params, TvL1Solver, VideoFlowTracker};
use chambolle::imaging::{average_endpoint_error, render_sequence, Motion, NoiseTexture};

fn main() -> chambolle::Result<()> {
    let (w, h) = (96usize, 72usize);
    let motion = Motion::Translation { du: 3.0, dv: 1.5 };
    let frames = render_sequence(&NoiseTexture::new(99), w, h, motion, 6);
    let truth = motion.ground_truth(w, h);

    // A deliberately lightweight per-pair configuration (video rates
    // matter): one warp and a shallow pyramid cannot capture 3px motion
    // from scratch — the temporal prior does the heavy lifting.
    let params = TvL1Params::new(38.0, ChambolleParams::with_iterations(20), 1, 2, 2)?;

    println!(
        "tracking {} consecutive pairs (3.0, 1.5) px/frame:",
        frames.len() - 1
    );
    let mut tracker = VideoFlowTracker::new(TvL1Solver::sequential(params));
    let cold_solver = TvL1Solver::sequential(params);
    for t in 0..frames.len() - 1 {
        let warm = tracker.next_flow(&frames[t], &frames[t + 1])?;
        let (cold, _) = cold_solver.flow(&frames[t], &frames[t + 1])?;
        println!(
            "  pair {t}->{}: AEE warm {:.3} px | cold {:.3} px",
            t + 1,
            average_endpoint_error(&warm, &truth),
            average_endpoint_error(&cold, &truth),
        );
        // The cold solver is stateless; it is reused only for the comparison.
        std::hint::black_box(cold);
    }

    let final_err =
        average_endpoint_error(tracker.last_flow().expect("pairs were processed"), &truth);
    println!("final warm-tracked AEE: {final_err:.3} px");
    if final_err > 0.5 {
        return Err(format!("tracking drifted: AEE {final_err:.3}").into());
    }
    Ok(())
}
