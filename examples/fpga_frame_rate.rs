//! Run the Chambolle inner solve on the simulated FPGA accelerator and
//! project the frame rates of Table II.
//!
//! The cycle simulator executes the real datapath, so this example keeps the
//! simulated frame small; the closed-form [`ThroughputModel`] (tested to
//! match the simulator cycle-for-cycle) then projects the paper's frame
//! sizes.
//!
//! ```text
//! cargo run --example fpga_frame_rate --release
//! ```

use chambolle::core::ChambolleParams;
use chambolle::hwsim::{AccelConfig, ChambolleAccel, ResourceModel, ThroughputModel};
use chambolle::imaging::{NoiseTexture, Scene};

fn main() -> chambolle::Result<()> {
    // 1. Simulate a real (small) frame on the accelerator: 2 sliding
    //    windows x 2 PE arrays, 92x88 windows, K = 2 iterations per load.
    let config = AccelConfig::default();
    let mut accel = ChambolleAccel::new(config);
    let v = NoiseTexture::new(5).render(184, 120);
    let params = ChambolleParams::with_iterations(20);
    let (u, _, stats) = accel.denoise_pair(&v, None, &params)?;
    println!("simulated 184x120 @ 20 iterations: {stats}");
    println!("  output range: {:?}", chambolle::imaging::min_max(&u));

    // 2. Project Table II's frame sizes with the analytic cycle model.
    let model = ThroughputModel::new(config);
    println!();
    println!(
        "projected frame rates at {} MHz (m = 1 structural):",
        config.clock_mhz
    );
    for &(w, h, iters) in &[
        (128usize, 128usize, 200u32),
        (256, 256, 200),
        (512, 512, 200),
        (1024, 768, 200),
    ] {
        println!(
            "  {w:>4}x{h:<4} @ {iters} iterations: {:>7.1} fps  (m=3 calibrated: {:>7.1} fps)",
            model.fps(w, h, iters),
            model.fps_with_loop_decomposition(w, h, iters, 3),
        );
    }
    println!();
    println!("paper reports 99.1 fps at 512x512 and 38.1 fps at 1024x768 (200 iters).");

    // 3. Area summary (Table I).
    let usage = ResourceModel::paper().usage();
    println!();
    println!(
        "resource model: {usage} ({} PEs)",
        ResourceModel::paper().pe_count()
    );
    Ok(())
}
