//! Edge-aware denoising with *weighted* total variation — the natural
//! extension of the Chambolle projection the accelerator implements
//! (`w ≡ 1` in hardware; spatially varying `w` here).
//!
//! The weight field is derived from the input's own gradients
//! (`w = 1 / (1 + s·|∇v|)`), so strong edges receive almost no smoothing
//! while flat regions are denoised aggressively.
//!
//! ```text
//! cargo run --example edge_aware_denoise --release
//! ```

use chambolle::core::{
    chambolle_denoise, chambolle_denoise_weighted, edge_stopping_weights, ChambolleParams,
};
use chambolle::imaging::{psnr, write_pgm, Grid, Image};
use rand::{rngs::StdRng, Rng, SeedableRng};

fn main() -> chambolle::Result<()> {
    // A cartoon image: flat regions separated by strong edges — the case
    // where uniform TV rounds corners and loses contrast.
    let (w, h) = (128usize, 96usize);
    let clean: Image = Grid::from_fn(w, h, |x, y| {
        let in_box = (20..60).contains(&x) && (20..70).contains(&y);
        let in_disk = ((x as f32 - 92.0).powi(2) + (y as f32 - 48.0).powi(2)).sqrt() < 24.0;
        if in_box {
            0.85
        } else if in_disk {
            0.55
        } else {
            0.2
        }
    });
    let mut rng = StdRng::seed_from_u64(3);
    let noisy = clean.map(|&v| (v + rng.gen_range(-0.12f32..0.12)).clamp(0.0, 1.0));

    let params = ChambolleParams::with_iterations(200);

    // Uniform TV (what the paper's hardware computes).
    let (uniform, _) = chambolle_denoise(&noisy, &params);

    // Weighted TV: weights from the noisy input's blurred gradients.
    let weights = edge_stopping_weights(&chambolle::imaging::blur_binomial5(&noisy), 12.0);
    let (weighted, _) = chambolle_denoise_weighted(&noisy, &weights, &params)?;

    println!("PSNR vs clean:");
    println!("  noisy input: {:.2} dB", psnr(&noisy, &clean));
    println!("  uniform TV:  {:.2} dB", psnr(&uniform, &clean));
    println!("  weighted TV: {:.2} dB", psnr(&weighted, &clean));

    std::fs::create_dir_all("target/examples-output")?;
    write_pgm("target/examples-output/edge_noisy.pgm", &noisy)?;
    write_pgm("target/examples-output/edge_uniform.pgm", &uniform)?;
    write_pgm("target/examples-output/edge_weighted.pgm", &weighted)?;
    println!("images written to target/examples-output/edge_*.pgm");

    if psnr(&weighted, &clean) <= psnr(&noisy, &clean) {
        return Err("weighted TV failed to denoise".into());
    }
    Ok(())
}
