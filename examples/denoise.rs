//! Plain ROF/TV denoising with the Chambolle solver — the algorithm the
//! accelerator implements, outside the optical-flow wrapper — comparing the
//! sequential, tiled-parallel and simulated-FPGA backends.
//!
//! ```text
//! cargo run --example denoise --release
//! ```

use chambolle::core::{
    rof_energy, ChambolleParams, SequentialSolver, TileConfig, TiledSolver, TvDenoiser,
};
use chambolle::hwsim::{AccelConfig, AccelDenoiser, ChambolleAccel};
use chambolle::imaging::{write_pgm, Grid, NoiseTexture, Scene};
use rand::{rngs::StdRng, Rng, SeedableRng};

fn main() -> chambolle::Result<()> {
    // A textured image with additive noise.
    let (w, h) = (160usize, 120usize);
    let clean = NoiseTexture::with_octaves(3, &[(32.0, 1.0), (16.0, 0.4)]).render(w, h);
    let mut rng = StdRng::seed_from_u64(1);
    let noisy = Grid::from_fn(w, h, |x, y| {
        (clean[(x, y)] + rng.gen_range(-0.15f32..0.15)).clamp(0.0, 1.0)
    });

    let params = ChambolleParams::with_iterations(120);
    let backends: Vec<Box<dyn TvDenoiser>> = vec![
        Box::new(SequentialSolver::new()),
        Box::new(TiledSolver::new(TileConfig::default())),
        Box::new(AccelDenoiser::new(ChambolleAccel::new(
            AccelConfig::default(),
        ))),
    ];

    let e_noisy = rof_energy(&noisy, &noisy, params.theta);
    println!("ROF energy of the noisy input: {e_noisy:.1}");
    std::fs::create_dir_all("target/examples-output")?;
    write_pgm("target/examples-output/denoise_input.pgm", &noisy)?;

    let mut reference: Option<Grid<f32>> = None;
    for backend in &backends {
        let u = backend.denoise(&noisy, &params);
        let e = rof_energy(&u, &noisy, params.theta);
        let note = match (&reference, backend.name()) {
            (Some(seq), "tiled") => {
                if seq.as_slice() == u.as_slice() {
                    " (bit-identical to sequential)"
                } else {
                    " (MISMATCH vs sequential!)"
                }
            }
            (Some(_), "fpga-sim") => " (13/9-bit fixed-point datapath)",
            _ => "",
        };
        println!("{:<12} energy {e:>10.1}{note}", backend.name());
        write_pgm(
            format!("target/examples-output/denoise_{}.pgm", backend.name()),
            &u,
        )?;
        if backend.name() == "sequential" {
            if e >= e_noisy {
                return Err("denoising failed to reduce the ROF energy".into());
            }
            reference = Some(u);
        }
    }
    println!("outputs written to target/examples-output/denoise_*.pgm");
    Ok(())
}
