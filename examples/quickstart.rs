//! Quickstart: estimate TV-L1 optical flow between two synthetic frames,
//! check it against the analytic ground truth, write a Middlebury-style
//! flow visualization, and leave a machine-readable telemetry run report.
//!
//! ```text
//! cargo run --example quickstart --release
//! ```

use chambolle::core::{TileConfig, TiledSolver, TvL1Params, TvL1Solver};
use chambolle::imaging::{
    average_endpoint_error, colorize_flow, render_pair, write_ppm, Motion, NoiseTexture,
};
use chambolle::telemetry::json::JsonValue;
use chambolle::telemetry::report::RunReport;
use chambolle::telemetry::Telemetry;

fn main() -> chambolle::Result<()> {
    // 1. Render a textured scene moving by (2.0, -1.0) pixels per frame.
    let scene = NoiseTexture::new(42);
    let motion = Motion::Translation { du: 2.0, dv: -1.0 };
    let pair = render_pair(&scene, 128, 96, motion);

    // 2. Estimate the flow with the TV-L1 solver. The inner Chambolle
    //    backend is the paper's tiled sliding-window solver, instrumented
    //    with a telemetry handle so the run leaves a metrics report (see
    //    the `fpga_frame_rate` example for the simulated accelerator
    //    backend).
    let telemetry = Telemetry::null();
    let backend = TiledSolver::new(TileConfig::default()).with_telemetry(telemetry.clone());
    let solver = TvL1Solver::with_backend(TvL1Params::default(), backend);
    let (flow, stats) = solver.flow(&pair.i0, &pair.i1)?;

    // 3. Compare against the ground truth.
    let aee = average_endpoint_error(&flow, &pair.truth);
    let (mu, mv) = flow.mean();
    println!("true motion:      (2.00, -1.00) px");
    println!("mean estimate:    ({mu:.2}, {mv:.2}) px");
    println!("avg endpoint err: {aee:.3} px");
    println!("solver profile:   {stats}");

    // 4. Visualize.
    std::fs::create_dir_all("target/examples-output")?;
    let rgb = colorize_flow(&flow, None);
    let path = "target/examples-output/quickstart_flow.ppm";
    write_ppm(path, &rgb)?;
    println!("flow visualization written to {path}");

    // 5. Leave a machine-readable run report: every solver-level metric the
    //    telemetry layer collected (tiling rounds, window loads, the halo
    //    redundancy ratio, span timings) plus a free-form result section.
    let mut report = RunReport::from_telemetry("quickstart", &telemetry);
    report.add_section(
        "result",
        JsonValue::Object(vec![
            ("mean_u".into(), f64::from(mu).into()),
            ("mean_v".into(), f64::from(mv).into()),
            ("aee_px".into(), aee.into()),
        ]),
    );
    let report_path = "target/examples-output/quickstart_telemetry.json";
    report.save(report_path)?;
    println!("telemetry report written to {report_path}");

    if aee > 0.5 {
        return Err(format!("flow quality regressed: AEE = {aee:.3}").into());
    }
    Ok(())
}
