//! Quickstart: estimate TV-L1 optical flow between two synthetic frames,
//! check it against the analytic ground truth, and write a Middlebury-style
//! flow visualization.
//!
//! ```text
//! cargo run --example quickstart --release
//! ```

use std::error::Error;

use chambolle::core::{TvL1Params, TvL1Solver};
use chambolle::imaging::{
    average_endpoint_error, colorize_flow, render_pair, write_ppm, Motion, NoiseTexture,
};

fn main() -> Result<(), Box<dyn Error>> {
    // 1. Render a textured scene moving by (2.0, -1.0) pixels per frame.
    let scene = NoiseTexture::new(42);
    let motion = Motion::Translation { du: 2.0, dv: -1.0 };
    let pair = render_pair(&scene, 128, 96, motion);

    // 2. Estimate the flow with the TV-L1 solver (sequential Chambolle
    //    backend; see the `fpga_frame_rate` example for the simulated
    //    accelerator backend).
    let solver = TvL1Solver::sequential(TvL1Params::default());
    let (flow, stats) = solver.flow(&pair.i0, &pair.i1)?;

    // 3. Compare against the ground truth.
    let aee = average_endpoint_error(&flow, &pair.truth);
    let (mu, mv) = flow.mean();
    println!("true motion:      (2.00, -1.00) px");
    println!("mean estimate:    ({mu:.2}, {mv:.2}) px");
    println!("avg endpoint err: {aee:.3} px");
    println!("solver profile:   {stats}");

    // 4. Visualize.
    std::fs::create_dir_all("target/examples-output")?;
    let rgb = colorize_flow(&flow, None);
    let path = "target/examples-output/quickstart_flow.ppm";
    write_ppm(path, &rgb)?;
    println!("flow visualization written to {path}");

    if aee > 0.5 {
        return Err(format!("flow quality regressed: AEE = {aee:.3}").into());
    }
    Ok(())
}
