//! Rolling-shutter correction — the application the paper's introduction
//! singles out ("the correction of an image acquired by CMOS optical sensors
//! using the rolling shutter technique").
//!
//! A scene translating at constant velocity is captured by a rolling shutter
//! that exposes one row at a time: each row samples the scene at a slightly
//! later instant, skewing the image. The optical flow between two consecutive
//! rolling-shutter frames recovers the scene velocity, from which every row's
//! capture-time offset can be undone.
//!
//! ```text
//! cargo run --example rolling_shutter --release
//! ```

use chambolle::core::{TvL1Params, TvL1Solver};
use chambolle::imaging::{
    global_shutter_frame, psnr, rolling_shutter_frame, sample_bilinear, write_pgm, Grid, Image,
    NoiseTexture,
};

fn main() -> chambolle::Result<()> {
    let (w, h) = (128usize, 96usize);
    let scene = NoiseTexture::new(7);
    // Scene velocity: 6 px/frame horizontally, 1 px/frame vertically.
    let (vx, vy) = (6.0f32, 1.0f32);
    // The shutter takes one full frame time to sweep the sensor.
    let row_delay = 1.0 / h as f32;

    // Two consecutive rolling-shutter captures, plus the distortion-free
    // global-shutter reference for frame 0.
    let rs0 = rolling_shutter_frame(&scene, w, h, vx, vy, row_delay, 0.0);
    let rs1 = rolling_shutter_frame(&scene, w, h, vx, vy, row_delay, 1.0);
    let gs0 = global_shutter_frame(&scene, w, h, vx, vy, 0.0);

    // Estimate the inter-frame motion. Between consecutive rolling-shutter
    // frames every row shifts by exactly one frame of scene motion, so the
    // flow is uniform and equals the velocity.
    let solver = TvL1Solver::sequential(TvL1Params::default());
    let (flow, _) = solver.flow(&rs0, &rs1)?;
    // TV-L1's convention is i1(x + u) = i0(x). Substituting the capture
    // model: rs1(x + u) = scene(x + u - v(1 + y*delay)) must equal
    // rs0(x) = scene(x - v*y*delay), so u = +v.
    let (est_vx, est_vy) = flow.mean();
    println!("true velocity:      ({vx:.2}, {vy:.2}) px/frame");
    println!("estimated velocity: ({est_vx:.2}, {est_vy:.2}) px/frame");

    // Undo the per-row capture delay: row y was exposed y*row_delay frame
    // times late, i.e. the scene had moved an extra v * y * row_delay.
    let corrected: Image = Grid::from_fn(w, h, |x, y| {
        let dt = y as f32 * row_delay;
        sample_bilinear(&rs0, x as f32 + est_vx * dt, y as f32 + est_vy * dt)
    });

    let before = psnr(&rs0, &gs0);
    let after = psnr(&corrected, &gs0);
    println!("PSNR vs global shutter:  distorted {before:.1} dB -> corrected {after:.1} dB");

    std::fs::create_dir_all("target/examples-output")?;
    write_pgm("target/examples-output/rolling_distorted.pgm", &rs0)?;
    write_pgm("target/examples-output/rolling_corrected.pgm", &corrected)?;
    write_pgm("target/examples-output/rolling_reference.pgm", &gs0)?;
    println!("frames written to target/examples-output/rolling_*.pgm");

    if after < before + 3.0 {
        return Err(format!("correction too weak: {before:.1} dB -> {after:.1} dB").into());
    }
    Ok(())
}
