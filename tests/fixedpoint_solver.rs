//! Cross-crate contracts of the planar fixed-point solver
//! (`chambolle_fixed::solver`):
//!
//! 1. **Bit-identity with the hardware model.** The SoA solver and the
//!    hwsim full-frame reference execute the same Q24.8 datapath; every
//!    word of `u`, `px` and `py` must agree exactly, SIMD or not.
//! 2. **Quantization error bound.** Against the `f32` solver of
//!    `chambolle-core`, the 13/9-bit packed format plus the LUT square
//!    root stays within the error budget the hwsim model established.

use chambolle::core::chambolle_denoise;
use chambolle::fixed::{fixed_denoise, FixedFrame, FixedSolverParams, SqrtUnit};
use chambolle::hwsim::{fixed_chambolle_reference, quantize_input, HwParams};
use chambolle::imaging::{Grid, NoiseTexture, Scene};

fn frame_of(v: &Grid<f32>) -> FixedFrame {
    FixedFrame::quantize(v.as_slice(), v.width(), v.height())
}

#[test]
fn planar_solver_is_bit_identical_to_hwsim_reference() {
    for (w, h, iters, seed) in [(16, 16, 8, 1u64), (33, 17, 12, 2), (8, 25, 30, 3)] {
        let v = NoiseTexture::new(seed).render(w, h);
        let reference = fixed_chambolle_reference(&quantize_input(&v), &HwParams::standard(iters));

        let mut frame = frame_of(&v);
        let u = fixed_denoise(
            &mut frame,
            &FixedSolverParams::standard(),
            iters,
            &SqrtUnit::lut(),
        );

        assert_eq!(u.as_slice(), reference.u.as_slice(), "{w}x{h}: u");
        for (i, word) in reference.words.as_slice().iter().enumerate() {
            assert_eq!(frame.px()[i], word.px(), "{w}x{h}: px[{i}]");
            assert_eq!(frame.py()[i], word.py(), "{w}x{h}: py[{i}]");
        }
    }
}

#[test]
fn planar_solver_matches_float_solver_within_quantization() {
    let v = NoiseTexture::new(7).render(32, 28);
    let iters = 40;

    let mut frame = frame_of(&v);
    let u_fixed = fixed_denoise(
        &mut frame,
        &FixedSolverParams::standard(),
        iters,
        &SqrtUnit::lut(),
    );

    let params = HwParams::standard(iters).to_chambolle_params();
    let (u_float, _) = chambolle_denoise(&v, &params);

    let max_err = u_fixed
        .iter()
        .zip(u_float.as_slice())
        .map(|(f, &r)| (f.to_f32() - r).abs())
        .fold(0.0f32, f32::max);
    assert!(
        max_err < 0.05,
        "fixed-vs-float max error {max_err} exceeds the quantization budget"
    );
}

#[test]
fn exact_sqrt_unit_tightens_the_error_bound() {
    // Design-choice ablation: swapping the LUT for the exact non-restoring
    // unit must not loosen the float error — the LUT is the only sqrt
    // approximation in the datapath.
    let v = NoiseTexture::new(11).render(24, 24);
    let iters = 30;
    let params = HwParams::standard(iters).to_chambolle_params();
    let (u_float, _) = chambolle_denoise(&v, &params);

    let err_with = |unit: &SqrtUnit| {
        let mut frame = frame_of(&v);
        let u = fixed_denoise(&mut frame, &FixedSolverParams::standard(), iters, unit);
        u.iter()
            .zip(u_float.as_slice())
            .map(|(f, &r)| (f.to_f32() - r).abs())
            .fold(0.0f32, f32::max)
    };
    let lut = err_with(&SqrtUnit::lut());
    let exact = err_with(&SqrtUnit::non_restoring());
    assert!(
        exact <= lut + 1.0 / 256.0,
        "exact sqrt {exact} vs LUT {lut}"
    );
}
