//! End-to-end acceptance tests for the fault-injection harness and the
//! guarded solver pipeline.
//!
//! The contract under test: with faults injected at a nonzero rate, the
//! guarded tiled path detects every injected corruption that lands in a
//! profitable region, recovers, and produces output **bit-identical** to the
//! fault-free sequential reference; with the rate at zero the guarded path
//! changes nothing.

use chambolle::core::{
    ChambolleParams, GuardedDenoiser, RecoveryPolicy, SequentialSolver, TileConfig, TiledSolver,
    TvDenoiser, TvL1Params, TvL1Solver,
};
use chambolle::hwsim::{
    dequantize, fixed_chambolle_reference, quantize_input, AccelConfig, AccelGuardConfig,
    ChambolleAccel, FaultConfig, FaultInjector, HwParams,
};
use chambolle::imaging::{render_pair, Grid, Motion, NoiseTexture, Scene};

fn noisy_frame(w: usize, h: usize) -> Grid<f32> {
    NoiseTexture::new(77).render(w, h)
}

/// The fault-free sequential fixed-point reference the accelerator must
/// match bit-for-bit, faults or not.
fn sequential_reference(v: &Grid<f32>, params: &ChambolleParams) -> Grid<f32> {
    let hw = HwParams::standard(params.iterations);
    dequantize(&fixed_chambolle_reference(&quantize_input(v), &hw).u)
}

#[test]
fn faulty_guarded_accel_matches_sequential_reference_exactly() {
    let v = noisy_frame(150, 120);
    let params = ChambolleParams::with_iterations(6);
    let reference = sequential_reference(&v, &params);

    let mut accel = ChambolleAccel::new(AccelConfig::default());
    let mut injector = FaultInjector::new(FaultConfig {
        seed: 41,
        bram_flip_rate: 8e-4,
        lut_rate: 5e-5,
        datapath_rate: 5e-5,
    });
    let out = accel
        .denoise_pair_guarded(
            &v,
            None,
            &params,
            &mut injector,
            &AccelGuardConfig::default(),
        )
        .unwrap();

    assert!(injector.injected() > 0, "rates too low: no faults fired");
    assert!(out.report.detections > 0, "faults fired but none detected");
    assert_eq!(
        out.u1.as_slice(),
        reference.as_slice(),
        "guarded output must be bit-identical to the fault-free reference"
    );
}

#[test]
fn zero_rate_guard_is_behaviorally_invisible() {
    let v = noisy_frame(100, 90);
    let params = ChambolleParams::with_iterations(5);

    let mut plain = ChambolleAccel::new(AccelConfig::default());
    let (u_plain, _, stats_plain) = plain.denoise_pair(&v, None, &params).unwrap();

    let mut guarded = ChambolleAccel::new(AccelConfig::default());
    let mut injector = FaultInjector::new(FaultConfig::quiet(9));
    let out = guarded
        .denoise_pair_guarded(
            &v,
            None,
            &params,
            &mut injector,
            &AccelGuardConfig::default(),
        )
        .unwrap();

    assert_eq!(out.u1.as_slice(), u_plain.as_slice());
    assert_eq!(out.stats.window_loads, stats_plain.window_loads);
    assert_eq!(out.stats.cycles, stats_plain.cycles);
    assert!(out.report.is_clean());
}

#[test]
fn software_guard_zero_faults_matches_unguarded_tiled() {
    let v = noisy_frame(96, 72);
    let params = ChambolleParams::with_iterations(30);
    let tile = TileConfig::new(40, 40, 2, 2).unwrap();

    let unguarded = TiledSolver::new(tile).denoise(&v, &params);
    let (guarded, report) = GuardedDenoiser::tiled(tile)
        .denoise_checked(&v, &params)
        .unwrap();

    assert!(report.is_clean());
    assert_eq!(guarded.as_slice(), unguarded.as_slice());
}

#[test]
fn software_guard_scrubs_poisoned_input_and_converges() {
    let mut v = noisy_frame(80, 60);
    v[(3, 3)] = f32::NAN;
    v[(40, 30)] = f32::NEG_INFINITY;
    v[(79, 59)] = f32::INFINITY;
    let params = ChambolleParams::with_iterations(20);

    let guard = GuardedDenoiser::tiled(TileConfig::new(32, 32, 2, 2).unwrap())
        .with_policy(RecoveryPolicy::default());
    let (u, report) = guard.denoise_checked(&v, &params).unwrap();

    assert_eq!(report.detections, 1, "one scrub pass expected");
    assert!(!report.degraded);
    assert!(u.as_slice().iter().all(|x| x.is_finite()));
}

#[test]
fn tvl1_flow_works_with_a_guarded_backend() {
    let scene = NoiseTexture::new(42);
    let pair = render_pair(&scene, 64, 48, Motion::Translation { du: 1.0, dv: 0.5 });
    let tvl1 = TvL1Params::default();

    let (flow_guarded, _) =
        TvL1Solver::with_backend(tvl1, GuardedDenoiser::new(SequentialSolver::new()))
            .flow(&pair.i0, &pair.i1)
            .unwrap();
    let (flow_plain, _) = TvL1Solver::sequential(tvl1)
        .flow(&pair.i0, &pair.i1)
        .unwrap();

    assert_eq!(
        flow_guarded, flow_plain,
        "a clean guarded backend must not change the flow"
    );
}
