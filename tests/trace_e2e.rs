//! End-to-end tests of the observability plane: trace propagation over the
//! v3 wire, span-tree causality across retries and idempotent replays, the
//! live metrics snapshot, v3 -> v2 protocol downgrade, and the guarantee
//! that tracing changes no solver bit.

use std::net::TcpListener;
use std::time::{Duration, Instant};

use chambolle::core::{ChambolleParams, SequentialSolver, TvDenoiser};
use chambolle::imaging::{Grid, NoiseTexture, Scene};
use chambolle::service::{
    wire, BreakerPolicy, ChaosConfig, Priority, RequestTrace, ResilientClient, ResilientConfig,
    RetryPolicy, Service, ServiceClient, ServiceConfig, SloObjective, TcpServer, TraceContext,
    METRICS_SNAPSHOT_SCHEMA,
};
use chambolle::telemetry::json::JsonValue;
use chambolle::telemetry::metrics::DEFAULT_BUCKETS;
use chambolle::telemetry::window::WindowConfig;

const SEED: u64 = 0x7ACE_E2E0;

fn noisy(w: usize, h: usize, seed: u64) -> Grid<f32> {
    NoiseTexture::new(seed).render(w, h)
}

/// Acceptance (a): every v3 response frame echoes the trace context the
/// client minted for its request, so responses are joinable to traces.
#[test]
fn responses_echo_the_minted_trace_context() {
    let input = noisy(16, 12, 11);
    let params = ChambolleParams::with_iterations(10);
    let service = Service::spawn(ServiceConfig::new(1, 8));
    let server = TcpServer::bind(service.handle().clone(), "127.0.0.1:0").unwrap();

    let mut client = ServiceClient::connect(server.local_addr()).unwrap();
    for _ in 0..3 {
        let response = client
            .denoise(&input, &params, Priority::Interactive, None)
            .unwrap();
        let minted = client.last_trace();
        assert!(minted.is_active(), "v3 client must mint per-request traces");
        match response {
            wire::WireResponse::Ok { trace, .. } => {
                assert_eq!(trace, minted, "response must echo the request's trace");
            }
            other => panic!("expected ok, got {other:?}"),
        }
    }

    // The health probe echoes too.
    let _ = client.health().unwrap();
    assert!(client.last_trace().is_active());

    drop(client);
    server.shutdown();
    service.shutdown();
}

/// Acceptance (b): a request that was retried after a post-commit server
/// crash — and answered from the idempotency cache — yields one causally
/// ordered span tree covering queue -> batch -> solve on the first attempt
/// and the replay on the second, with durations that sum consistently, plus
/// the client-side attempt/backoff spans.
#[test]
fn retried_and_replayed_request_has_a_complete_causal_span_tree() {
    let input = noisy(24, 18, 22);
    let params = ChambolleParams::with_iterations(20);
    let expected = SequentialSolver::new().denoise(&input, &params);

    let service = Service::spawn(ServiceConfig::new(1, 8));
    let handle = service.handle().clone();
    // The very first solve submission panics server-side *after* the solve
    // commits, so the retry must be served by the idempotency cache.
    let chaos = ChaosConfig::quiet(SEED).with_panic_on_request(1);
    let server = TcpServer::bind_with_chaos(handle.clone(), "127.0.0.1:0", chaos).unwrap();

    let config = ResilientConfig {
        retry: RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(20),
        },
        breaker: BreakerPolicy {
            failure_threshold: 3,
            cooldown: Duration::from_millis(10),
        },
        jitter_seed: SEED,
        ..ResilientConfig::default()
    };
    // Client spans go into the *server's* tracer ring on the server's
    // clock, so the merged tree is readable end to end.
    let mut client = ResilientClient::connect_with(server.local_addr(), config)
        .unwrap()
        .with_tracer(handle.tracer().clone(), handle.epoch());

    let outcome = client
        .denoise(&input, &params, Priority::Interactive, None)
        .expect("the retry must recover the committed solve");
    assert!(outcome.recovered, "the scripted crash must force a retry");
    assert_eq!(outcome.attempts, 2);
    assert!(outcome.trace.is_active());
    assert_eq!(outcome.output.as_slice(), expected.as_slice());

    // Both the server (on replay) and the client (on completion) finish the
    // same trace id; merge every finished fragment into one tree.
    let trace_id = outcome.trace.trace_id;
    let spans: Vec<_> = handle
        .tracer()
        .recent()
        .into_iter()
        .filter(|t| t.trace_id == trace_id)
        .flat_map(|t| t.spans)
        .collect();
    let merged = RequestTrace::from_spans(trace_id, spans);
    assert!(
        merged.is_complete(),
        "merged span tree must have no orphans: {merged:?}"
    );

    // First attempt: the full service-side pipeline ran.
    let queue = merged.find("queue").expect("queue span");
    let batch = merged.find("batch").expect("batch span");
    let solve = merged.find("solve").expect("solve span");
    // Second attempt: the idempotent replay.
    let replay = merged.find("replay").expect("replay span");
    let request = merged.find("client.request").expect("client root span");
    assert!(merged.find("client.attempt").is_some());

    // Causality: queue and batch share a parent (the first attempt's
    // server.request root), the solve nests inside the batch span, and the
    // replay hangs off the *second* server.request root.
    assert_eq!(queue.parent_span_id, batch.parent_span_id);
    assert_eq!(solve.parent_span_id, batch.span_id);
    let roots: Vec<_> = merged
        .roots()
        .filter(|s| s.name == "server.request")
        .collect();
    assert_eq!(roots.len(), 2, "one server root per attempt");
    assert!(roots.iter().any(|r| r.span_id == replay.parent_span_id));

    // Durations sum consistently: queue + batch == the service-side total,
    // the solve fits inside the batch span, and everything fits inside the
    // client's request span.
    assert_eq!(batch.start_us, queue.start_us + queue.dur_us);
    assert!(solve.dur_us <= batch.dur_us);
    assert!(solve.start_us >= batch.start_us);
    assert_eq!(
        solve.start_us + solve.dur_us,
        batch.start_us + batch.dur_us,
        "the solve ends when the batch span ends"
    );
    assert!(request.dur_us >= queue.dur_us + batch.dur_us);

    // The attempt spans parent under the client request root.
    for span in merged
        .spans
        .iter()
        .filter(|s| s.name.starts_with("client.attempt") || s.name == "client.backoff")
    {
        assert_eq!(span.parent_span_id, request.span_id);
    }

    drop(client);
    server.shutdown();
    service.shutdown();
}

/// Acceptance (c): the MetricsSnapshot rolling p99 brackets the p99 the
/// load generator measures client-side, to histogram-bucket resolution.
#[test]
fn metrics_snapshot_p99_brackets_client_measured_p99() {
    let input = noisy(64, 64, 33);
    let params = ChambolleParams::with_iterations(60);

    let config = ServiceConfig::new(2, 16)
        .with_slo(
            Priority::Interactive,
            SloObjective::new(Duration::from_secs(5), 0.99),
        )
        .with_window(WindowConfig {
            bucket_width_us: 2_000_000,
            buckets: 10,
        });
    let service = Service::spawn(config);
    let server = TcpServer::bind(service.handle().clone(), "127.0.0.1:0").unwrap();
    let mut client = ServiceClient::connect(server.local_addr()).unwrap();

    let mut latencies_us: Vec<u64> = Vec::new();
    for _ in 0..20 {
        let start = Instant::now();
        match client
            .denoise(&input, &params, Priority::Interactive, None)
            .unwrap()
        {
            wire::WireResponse::Ok { .. } => {}
            other => panic!("expected ok, got {other:?}"),
        }
        latencies_us.push(start.elapsed().as_micros() as u64);
    }
    latencies_us.sort_unstable();
    let client_p99 = *latencies_us.last().unwrap();

    let raw = client.metrics().unwrap();
    let snapshot = JsonValue::parse(&raw).expect("snapshot must be valid JSON");
    assert_eq!(
        snapshot.get("schema").and_then(|v| v.as_str()),
        Some(METRICS_SNAPSHOT_SCHEMA)
    );
    let p99 = snapshot
        .get_path("window_metrics.histograms.total_us.p99")
        .and_then(|v| v.as_f64())
        .expect("total_us p99 in the window snapshot");

    // Window quantiles resolve to histogram bucket upper bounds (ratios of
    // up to 10x between adjacent bounds), and the client-side measurement
    // includes loopback overhead the server-side total excludes — so
    // bracket to bucket resolution: the reported p99 may not exceed the
    // bucket above the client's p99, nor sit more than two bucket ranks
    // below it.
    let bucket_up = |x: f64| -> f64 {
        DEFAULT_BUCKETS
            .iter()
            .copied()
            .find(|&b| b >= x)
            .unwrap_or(f64::INFINITY)
    };
    let hi = bucket_up(client_p99 as f64);
    assert!(
        p99 <= hi,
        "snapshot p99 {p99} must not exceed the bucket above the measured p99 {client_p99} ({hi})"
    );
    assert!(
        p99 >= hi / 100.0,
        "snapshot p99 {p99} implausibly far below the measured p99 {client_p99}"
    );

    // SLO accounting saw every interactive response and none breached the
    // generous 5 s objective.
    let lanes = snapshot
        .get_path("slo.lanes")
        .and_then(|v| v.as_array())
        .map(|a| a.to_vec())
        .expect("slo lane array");
    let interactive = lanes
        .iter()
        .find(|l| l.get("lane").and_then(|v| v.as_str()) == Some("interactive"))
        .expect("interactive lane");
    assert_eq!(
        interactive.get("total").and_then(|v| v.as_f64()),
        Some(20.0)
    );
    assert_eq!(
        interactive.get("breach").and_then(|v| v.as_f64()),
        Some(0.0)
    );
    assert_eq!(
        snapshot.get_path("slo.burning").and_then(|v| v.as_f64()),
        None,
        "burning is a bool, not a number"
    );

    drop(client);
    server.shutdown();
    service.shutdown();
}

/// A v3 client talking to a v2-only peer downgrades transparently: the
/// first attempt's version rejection costs one retry, after which the
/// request completes bit-identically over v2 frames with tracing off.
#[test]
fn resilient_client_downgrades_to_v2_peers_bit_identically() {
    let input = noisy(20, 16, 44);
    let params = ChambolleParams::with_iterations(15);
    let expected = SequentialSolver::new().denoise(&input, &params);

    // A minimal v2-only server: rejects any v3 frame the way an old build
    // would (a v2 Protocol error), solves v2 frames in-line.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let v2_server = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().unwrap();
        while let Ok(Some(payload)) = wire::read_frame(&mut stream) {
            let frame = if payload.first() != Some(&wire::WIRE_VERSION_V2) {
                wire::encode_err_response(
                    wire::WIRE_VERSION_V2,
                    0,
                    TraceContext::NONE,
                    true,
                    wire::ErrorCode::Protocol,
                    &format!(
                        "unsupported wire version {}",
                        payload.first().copied().unwrap_or(0)
                    ),
                )
            } else {
                match wire::decode_request(&payload) {
                    Ok(wire::WireRequest::Solve { id, request, .. }) => {
                        let (grid, request_params) = match request.workload {
                            chambolle::service::Workload::Denoise { input, params } => {
                                (input, params)
                            }
                            other => panic!("unexpected workload {other:?}"),
                        };
                        let output = SequentialSolver::new().denoise(&grid, &request_params);
                        wire::encode_ok_response(
                            wire::WIRE_VERSION_V2,
                            id,
                            TraceContext::NONE,
                            chambolle::service::ResponseTier::Full,
                            &output,
                        )
                    }
                    _ => break,
                }
            };
            if wire::write_frame(&mut stream, &frame).is_err() {
                break;
            }
        }
    });

    let mut client = ResilientClient::connect_with(
        addr,
        ResilientConfig {
            jitter_seed: SEED,
            ..ResilientConfig::default()
        },
    )
    .unwrap();
    assert_eq!(client.wire_version(), wire::WIRE_VERSION);

    let outcome = client
        .denoise(&input, &params, Priority::Batch, None)
        .unwrap();
    assert_eq!(
        client.wire_version(),
        wire::WIRE_VERSION_V2,
        "the version rejection must downgrade the client"
    );
    assert_eq!(outcome.attempts, 2, "one rejected v3 try, one v2 success");
    assert_eq!(outcome.output.as_slice(), expected.as_slice());

    // Once downgraded, requests go untraced and metrics are refused
    // client-side.
    let outcome2 = client
        .denoise(&input, &params, Priority::Batch, None)
        .unwrap();
    assert_eq!(outcome2.attempts, 1, "the downgrade must stick");
    assert_eq!(outcome2.trace, TraceContext::NONE);
    assert_eq!(
        client.metrics().unwrap_err().kind(),
        std::io::ErrorKind::Unsupported
    );

    drop(client);
    v2_server.join().unwrap();
}

/// Acceptance (d): with tracing and scraping fully disabled the solver
/// output is bit-identical to the traced run and to the direct solver —
/// observability changes no result bit.
#[test]
fn disabled_tracing_changes_no_output_bit() {
    let input = noisy(28, 20, 55);
    let params = ChambolleParams::with_iterations(30);
    let expected = SequentialSolver::new().denoise(&input, &params);

    let solve_over = |config: ServiceConfig, tracing: bool| -> Grid<f32> {
        let service = Service::spawn(config);
        let server = TcpServer::bind(service.handle().clone(), "127.0.0.1:0").unwrap();
        let mut client = ServiceClient::connect(server.local_addr()).unwrap();
        client.set_tracing(tracing);
        let out = match client
            .denoise(&input, &params, Priority::Interactive, None)
            .unwrap()
        {
            wire::WireResponse::Ok { output, trace, .. } => {
                assert_eq!(trace.is_active(), tracing);
                output
            }
            other => panic!("expected ok, got {other:?}"),
        };
        drop(client);
        server.shutdown();
        service.shutdown();
        out
    };

    // Fully instrumented: tracing on, SLOs configured.
    let traced = solve_over(
        ServiceConfig::new(1, 8).with_slo(
            Priority::Interactive,
            SloObjective::new(Duration::from_millis(1), 0.5),
        ),
        true,
    );
    // Fully dark: no trace ring, no SLOs, client minting off.
    let untraced = solve_over(ServiceConfig::new(1, 8).with_trace_ring(0), false);

    assert_eq!(traced.as_slice(), expected.as_slice());
    assert_eq!(untraced.as_slice(), expected.as_slice());
}
