//! The kernel-backend contract, pinned across crates: every SIMD backend
//! (scalar, SSE2, AVX2) produces **byte-identical** dual fields and outputs
//! for every solve entry point, across frame widths that exercise full
//! vectors, remainder lanes and degenerate single-column frames, and across
//! thread counts.
//!
//! Because the backends are bit-identical, `CHAMBOLLE_BACKEND` is a pure
//! throughput knob — which is what lets CI run the whole suite under
//! `scalar` and `avx2` and expect identical results.

use std::sync::Arc;

use chambolle::core::{
    chambolle_denoise_with_ctx, chambolle_iterate_tiled_with_ctx, chambolle_iterate_with_ctx,
    ChambolleParams, DualField, ExecCtx, KernelBackend, NumericsPolicy, TileConfig,
};
use chambolle::imaging::Grid;
use chambolle::par::ThreadPool;
use proptest::prelude::*;

/// Byte equality across backends is the **Exact-tier** contract, so pin the
/// tier: the suite also runs under `CHAMBOLLE_NUMERICS=fast`, which must not
/// turn these assertions into cross-backend Fast comparisons.
fn exact_ctx() -> ExecCtx {
    ExecCtx::default().with_numerics(NumericsPolicy::Exact)
}

/// Every backend the host CPU can execute (scalar always included).
fn supported_backends() -> Vec<KernelBackend> {
    [
        KernelBackend::Scalar,
        KernelBackend::Sse2,
        KernelBackend::Avx2,
    ]
    .into_iter()
    .filter(KernelBackend::is_supported)
    .collect()
}

fn bits(grid: &Grid<f32>) -> Vec<u32> {
    grid.as_slice().iter().map(|v| v.to_bits()).collect()
}

fn frame(w: usize, h: usize, seed: usize) -> Grid<f32> {
    Grid::from_fn(w, h, |x, y| {
        ((x * 7 + y * 13 + seed * 29) % 31) as f32 / 31.0 - 0.4
    })
}

/// Widths covering the three vector regimes: a multiple of the widest lane
/// count (full vectors), a width leaving remainder lanes on every backend,
/// and a single-column frame where no vector loop may run at all.
const DIMS: [(usize, usize); 3] = [(64, 48), (61, 33), (1, 64)];

#[test]
fn solver_dual_fields_byte_equal_across_backends_widths_and_threads() {
    for (w, h) in DIMS {
        let v = frame(w, h, 1);
        let params = ChambolleParams::with_iterations(11);

        let mut p_ref = DualField::zeros(w, h);
        let scalar = exact_ctx().with_backend(KernelBackend::Scalar);
        chambolle_iterate_with_ctx(&mut p_ref, &v, &params, 11, &scalar)
            .expect("no cancellation token");
        let (u_ref, _) = chambolle_denoise_with_ctx(&v, &params, &scalar).expect("no token");

        for backend in supported_backends() {
            for threads in [1usize, 4] {
                let pool = Arc::new(ThreadPool::new(threads));
                let ctx = exact_ctx()
                    .with_backend(backend)
                    .with_pool(Arc::clone(&pool));
                let mut p = DualField::zeros(w, h);
                chambolle_iterate_with_ctx(&mut p, &v, &params, 11, &ctx).expect("no token");
                assert_eq!(
                    bits(&p.px),
                    bits(&p_ref.px),
                    "px {backend:?} {w}x{h} threads={threads}"
                );
                assert_eq!(
                    bits(&p.py),
                    bits(&p_ref.py),
                    "py {backend:?} {w}x{h} threads={threads}"
                );
                let (u, p2) = chambolle_denoise_with_ctx(&v, &params, &ctx).expect("no token");
                assert_eq!(
                    bits(&u),
                    bits(&u_ref),
                    "u {backend:?} {w}x{h} threads={threads}"
                );
                assert_eq!(bits(&p2.px), bits(&p_ref.px));
            }
        }
    }
}

#[test]
fn tiled_solver_byte_equal_across_backends_and_threads() {
    let (w, h) = (64, 48);
    let v = frame(w, h, 2);
    let params = ChambolleParams::paper(8);

    let mut p_ref = DualField::zeros(w, h);
    let scalar = exact_ctx().with_backend(KernelBackend::Scalar);
    chambolle_iterate_with_ctx(&mut p_ref, &v, &params, 8, &scalar).expect("no token");

    for backend in supported_backends() {
        for threads in [1usize, 4] {
            let cfg = TileConfig::new(24, 24, 2, threads).expect("valid config");
            let pool = Arc::new(ThreadPool::new(threads));
            let ctx = exact_ctx()
                .with_backend(backend)
                .with_pool(Arc::clone(&pool));
            let mut p = DualField::zeros(w, h);
            chambolle_iterate_tiled_with_ctx(&mut p, &v, &params, 8, &cfg, &ctx).expect("no token");
            assert_eq!(
                bits(&p.px),
                bits(&p_ref.px),
                "tiled px {backend:?} threads={threads}"
            );
            assert_eq!(
                bits(&p.py),
                bits(&p_ref.py),
                "tiled py {backend:?} threads={threads}"
            );
        }
    }
}

#[test]
fn env_override_names_resolve_to_supported_backends() {
    // `resolve` is the pure core of the CHAMBOLLE_BACKEND policy: a valid,
    // supported name wins; anything else clamps to the detected level.
    use chambolle::par::simd;
    assert_eq!(simd::resolve(Some("scalar")), simd::SimdLevel::Scalar);
    assert_eq!(simd::resolve(Some("bogus")), simd::detect());
    assert!(simd::resolve(None).is_supported());
    assert_eq!(
        KernelBackend::from_level(simd::active()),
        KernelBackend::active()
    );
}

proptest! {
    /// Remainder-lane tail handling: for arbitrary widths (biased small, so
    /// tails of every length 0..lanes occur) and random row contents, the
    /// vectorized row kernels must reproduce the scalar rows bit-for-bit.
    #[test]
    fn row_kernel_tails_are_bit_exact(
        w in 1usize..48,
        seed in any::<u64>(),
        last_row in any::<bool>(),
        with_above in any::<bool>(),
    ) {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut row = |_: ()| -> Vec<f32> {
            (0..w).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
        };
        let (px, py, above, v) = (row(()), row(()), row(()), row(()));
        let inv_theta = 4.0f32;
        let step = 0.248f32;

        let mut term_ref = vec![0.0f32; w];
        KernelBackend::Scalar.compute_term_row(
            &px,
            &py,
            with_above.then_some(above.as_slice()),
            &v,
            inv_theta,
            last_row,
            &mut term_ref,
        );
        let (mut px_ref, mut py_ref) = (px.clone(), py.clone());
        KernelBackend::Scalar.update_p_row(
            &term_ref,
            with_above.then_some(above.as_slice()),
            step,
            &mut px_ref,
            &mut py_ref,
        );

        for backend in supported_backends() {
            let mut term = vec![0.0f32; w];
            backend.compute_term_row(
                &px,
                &py,
                with_above.then_some(above.as_slice()),
                &v,
                inv_theta,
                last_row,
                &mut term,
            );
            let term_bits: Vec<u32> = term.iter().map(|f| f.to_bits()).collect();
            let ref_bits: Vec<u32> = term_ref.iter().map(|f| f.to_bits()).collect();
            prop_assert_eq!(term_bits, ref_bits, "term {:?} w={}", backend, w);

            let (mut bpx, mut bpy) = (px.clone(), py.clone());
            backend.update_p_row(
                &term_ref,
                with_above.then_some(above.as_slice()),
                step,
                &mut bpx,
                &mut bpy,
            );
            let bpx_bits: Vec<u32> = bpx.iter().map(|f| f.to_bits()).collect();
            let px_bits: Vec<u32> = px_ref.iter().map(|f| f.to_bits()).collect();
            prop_assert_eq!(bpx_bits, px_bits, "px {:?} w={}", backend, w);
            let bpy_bits: Vec<u32> = bpy.iter().map(|f| f.to_bits()).collect();
            let py_bits: Vec<u32> = py_ref.iter().map(|f| f.to_bits()).collect();
            prop_assert_eq!(bpy_bits, py_bits, "py {:?} w={}", backend, w);
        }
    }
}
