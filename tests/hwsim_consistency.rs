//! Cross-crate consistency of the FPGA simulator stack: event simulation,
//! fixed-point reference, analytic timing model and the float solver.

use chambolle::core::{chambolle_denoise, ChambolleParams};
use chambolle::fixed::WordFixed;
use chambolle::hwsim::{
    fixed_chambolle_reference, quantize_input, AccelConfig, ChambolleAccel, HwParams,
    ThroughputModel,
};
use chambolle::imaging::{Grid, NoiseTexture, Scene};

#[test]
fn accel_frame_equals_monolithic_fixed_reference() {
    let v = NoiseTexture::new(11).render(200, 100);
    let params = ChambolleParams::paper(7);
    let mut accel = ChambolleAccel::new(AccelConfig::paper(3).expect("valid config"));
    let (u, _, stats) = accel.denoise_pair(&v, None, &params).expect("hw-encodable");
    let reference = fixed_chambolle_reference(&quantize_input(&v), &HwParams::standard(7));
    for (x, y, &val) in u.iter() {
        assert_eq!(
            WordFixed::from_f32(val),
            reference.u[(x, y)],
            "mismatch at ({x},{y})"
        );
    }
    assert!(stats.cycles > 0);
}

#[test]
fn timing_model_matches_event_simulation() {
    let v = NoiseTexture::new(12).render(130, 95);
    let params = ChambolleParams::paper(5);
    for k in [1u32, 2, 4] {
        let config = AccelConfig::paper(k).expect("valid config");
        let mut accel = ChambolleAccel::new(config);
        let (_, _, stats) = accel.denoise_pair(&v, None, &params).expect("hw-encodable");
        let model = ThroughputModel::new(config);
        assert_eq!(
            model.frame_cycles(130, 95, 5),
            stats.cycles,
            "analytic model diverged from the simulator at K={k}"
        );
    }
}

#[test]
fn fixed_point_tracks_float_solver() {
    let v = NoiseTexture::new(13).render(96, 88);
    let params = ChambolleParams::paper(40);
    let mut accel = ChambolleAccel::new(AccelConfig::default());
    let (u_hw, _, _) = accel.denoise_pair(&v, None, &params).expect("hw-encodable");
    let (u_float, _) = chambolle_denoise(&v, &params);
    let mut max_err = 0.0f32;
    for i in 0..u_hw.len() {
        max_err = max_err.max((u_hw.as_slice()[i] - u_float.as_slice()[i]).abs());
    }
    assert!(
        max_err < 0.05,
        "13/9-bit datapath should stay within a few percent of float, got {max_err}"
    );
}

#[test]
fn table2_shape_holds() {
    // The qualitative claims of Table II, independent of calibration:
    // (a) fps falls roughly linearly with iteration count,
    // (b) fps falls roughly linearly with pixel count,
    // (c) the accelerator model beats every published GPU row,
    // (d) 1024x768 at 200 iterations stays above 10 fps ("real-time frame
    //     rates even at high resolutions").
    let model = ThroughputModel::new(AccelConfig::default());
    let f = |w, h, n| model.fps(w, h, n);
    assert!(f(512, 512, 50) > 3.0 * f(512, 512, 200));
    assert!(f(128, 128, 200) > 8.0 * f(512, 512, 200));
    assert!(
        f(512, 512, 200) > 9.3,
        "must beat the best published 512x512 GPU row"
    );
    assert!(f(1024, 768, 200) > 10.0);
}

#[test]
fn window_state_is_isolated_between_frames() {
    // Re-using one accelerator across frames must not leak dual state.
    let params = ChambolleParams::paper(4);
    let v1 = NoiseTexture::new(14).render(60, 50);
    let v2 = NoiseTexture::new(15).render(60, 50);
    let mut shared = ChambolleAccel::new(AccelConfig::default());
    let (_, _, _) = shared
        .denoise_pair(&v1, None, &params)
        .expect("hw-encodable");
    let (u2_shared, _, _) = shared
        .denoise_pair(&v2, None, &params)
        .expect("hw-encodable");
    let mut fresh = ChambolleAccel::new(AccelConfig::default());
    let (u2_fresh, _, _) = fresh
        .denoise_pair(&v2, None, &params)
        .expect("hw-encodable");
    assert_eq!(u2_shared.as_slice(), u2_fresh.as_slice());
}

#[test]
fn rejects_non_representable_parameters() {
    let v = Grid::new(16, 16, 0.5f32);
    let params = ChambolleParams::new(0.3, 0.05, 4).expect("valid float params");
    let mut accel = ChambolleAccel::new(AccelConfig::default());
    assert!(accel.denoise_pair(&v, None, &params).is_err());
}
