//! Full-pipeline tests: TV-L1 on the simulated FPGA backend, and the
//! rolling-shutter application the paper motivates.

use chambolle::core::{ChambolleParams, TvL1Params, TvL1Solver};
use chambolle::hwsim::{AccelConfig, AccelDenoiser, ChambolleAccel};
use chambolle::imaging::{
    average_endpoint_error, global_shutter_frame, psnr, render_pair, rolling_shutter_frame,
    sample_bilinear, Grid, Motion, NoiseTexture,
};

fn small_params(inner: u32) -> TvL1Params {
    TvL1Params::new(38.0, ChambolleParams::with_iterations(inner), 2, 3, 3).expect("valid params")
}

#[test]
fn fpga_backend_estimates_flow() {
    let scene = NoiseTexture::new(21);
    let pair = render_pair(&scene, 64, 48, Motion::Translation { du: 1.5, dv: -0.5 });
    let backend = AccelDenoiser::new(ChambolleAccel::new(AccelConfig::default()));
    let solver = TvL1Solver::with_backend(small_params(20), backend);
    let (flow, stats) = solver.flow(&pair.i0, &pair.i1).expect("valid frames");
    let aee = average_endpoint_error(&flow, &pair.truth);
    assert!(aee < 0.5, "FPGA-backend AEE {aee}");
    assert!(stats.chambolle_calls > 0);
}

#[test]
fn fpga_backend_close_to_sequential_backend() {
    let scene = NoiseTexture::new(22);
    let pair = render_pair(&scene, 64, 48, Motion::Translation { du: 1.0, dv: 0.75 });
    let p = small_params(20);
    let (flow_seq, _) = TvL1Solver::sequential(p)
        .flow(&pair.i0, &pair.i1)
        .expect("valid frames");
    let backend = AccelDenoiser::new(ChambolleAccel::new(AccelConfig::default()));
    let (flow_hw, _) = TvL1Solver::with_backend(p, backend)
        .flow(&pair.i0, &pair.i1)
        .expect("valid frames");
    // The fixed-point datapath quantizes each inner solve; the flows agree
    // to a fraction of a pixel.
    let diff = average_endpoint_error(&flow_hw, &flow_seq);
    assert!(diff < 0.25, "hw-vs-float flow difference {diff}");
}

#[test]
fn rolling_shutter_correction_improves_psnr() {
    let (w, h) = (96usize, 64usize);
    let scene = NoiseTexture::new(23);
    let (vx, vy) = (5.0f32, 0.5f32);
    let row_delay = 1.0 / h as f32;
    let rs0 = rolling_shutter_frame(&scene, w, h, vx, vy, row_delay, 0.0);
    let rs1 = rolling_shutter_frame(&scene, w, h, vx, vy, row_delay, 1.0);
    let gs0 = global_shutter_frame(&scene, w, h, vx, vy, 0.0);

    let (flow, _) = TvL1Solver::sequential(small_params(25))
        .flow(&rs0, &rs1)
        .expect("valid frames");
    let (est_vx, est_vy) = flow.mean();
    assert!(
        (est_vx - vx).abs() < 0.5,
        "velocity estimate {est_vx} vs {vx}"
    );

    let corrected = Grid::from_fn(w, h, |x, y| {
        let dt = y as f32 * row_delay;
        sample_bilinear(&rs0, x as f32 + est_vx * dt, y as f32 + est_vy * dt)
    });
    let before = psnr(&rs0, &gs0);
    let after = psnr(&corrected, &gs0);
    assert!(
        after > before + 5.0,
        "correction should gain >5 dB: {before:.1} -> {after:.1}"
    );
}

#[test]
fn flow_visualization_roundtrip() {
    use chambolle::imaging::{colorize_flow, write_ppm, FlowField};
    let flow = FlowField::from_fn(32, 24, |x, y| {
        (x as f32 / 16.0 - 1.0, y as f32 / 12.0 - 1.0)
    });
    let rgb = colorize_flow(&flow, Some(1.5));
    assert_eq!(rgb.dims(), (32, 24));
    let mut path = std::env::temp_dir();
    path.push(format!("chambolle_e2e_{}.ppm", std::process::id()));
    write_ppm(&path, &rgb).expect("ppm write");
    let bytes = std::fs::read(&path).expect("ppm read");
    std::fs::remove_file(&path).ok();
    assert!(bytes.starts_with(b"P6\n32 24\n255\n"));
    assert_eq!(bytes.len(), b"P6\n32 24\n255\n".len() + 32 * 24 * 3);
}

#[test]
fn fully_fixed_point_tvl1_pipeline_recovers_flow() {
    // The whole per-warp loop in hardware arithmetic: the fixed-point
    // thresholding unit (hwsim::thresholding) feeding the simulated
    // accelerator's Chambolle solve — no float math between the warp engine
    // and the flow output.
    use chambolle::core::TvDenoiser;
    use chambolle::hwsim::threshold_step_fixed;
    use chambolle::imaging::{FlowField, WarpLinearization};

    let scene = NoiseTexture::new(24);
    let pair = render_pair(&scene, 48, 40, Motion::Translation { du: 0.8, dv: -0.4 });
    let (lambda, theta) = (38.0f32, 0.25f32);
    let inner = ChambolleParams::with_iterations(20);
    let accel = AccelDenoiser::new(ChambolleAccel::new(AccelConfig::default()));

    // Single-level TV-L1 (sub-pixel motion needs no pyramid): 3 warps of 3
    // thresholding/denoise alternations.
    let mut u = FlowField::zeros(48, 40);
    for _warp in 0..3 {
        let lin = WarpLinearization::new(&pair.i0, &pair.i1, &u);
        for _ in 0..3 {
            let v = threshold_step_fixed(&lin, &u, lambda, theta);
            let u1 = accel.denoise(&v.u1, &inner);
            let u2 = accel.denoise(&v.u2, &inner);
            u = FlowField::from_components(u1, u2);
        }
    }
    let aee = average_endpoint_error(&u, &pair.truth);
    assert!(aee < 0.3, "fully fixed pipeline AEE {aee}");
}
