//! The exactness contract of the auto-tuning subsystem: a tuning profile
//! reshapes the schedule (tile geometry, merge depth, halo redundancy,
//! pool width, kernel backend) but never the pixels. Every schedule below
//! must reproduce the sequential solver's output bit for bit.

use std::sync::Arc;

use chambolle::core::{
    chambolle_denoise_with_ctx, ChambolleParams, ExecCtx, NumericsPolicy, TileConfig,
};
use chambolle::imaging::{render_pair, Image, Motion, NoiseTexture};
use chambolle::par::ThreadPool;
use chambolle::telemetry::Telemetry;
use chambolle::tune::{BackendChoice, Tunables};

fn test_frame() -> Image {
    let scene = NoiseTexture::new(91);
    render_pair(&scene, 67, 53, Motion::Translation { du: 0.0, dv: 0.0 }).i0
}

/// Three-plus distinct schedules, spanning every knob the solver reads.
fn profiles() -> Vec<(&'static str, Tunables)> {
    vec![
        ("defaults", Tunables::default()),
        (
            "small_tiles_deep_merge",
            Tunables {
                tile_width: 32,
                tile_height: 28,
                merge_factor: 4,
                threads: 3,
                backend: BackendChoice::Scalar,
                ..Tunables::default()
            },
        ),
        (
            "redundant_halo",
            Tunables {
                tile_width: 48,
                tile_height: 40,
                merge_factor: 1,
                halo_margin: 3,
                threads: 1,
                ..Tunables::default()
            },
        ),
        (
            "wide_tiles_many_threads",
            Tunables {
                tile_width: 120,
                tile_height: 96,
                merge_factor: 2,
                halo_margin: 1,
                threads: 4,
                band_rows_divisor: 2,
                ..Tunables::default()
            },
        ),
    ]
}

/// Every profile's tiled schedule reproduces the sequential solver's
/// pixels exactly — the contract that makes auto-tuning safe to apply
/// blindly at startup.
#[test]
fn every_profile_is_bit_identical_to_sequential() {
    use chambolle::core::{chambolle_iterate_tiled_with_ctx, recover_u, DualField};

    let v = test_frame();
    let params = ChambolleParams::with_iterations(13);
    // Pixel neutrality is the *schedule* contract and holds at the Exact
    // tier; pin it so the suite also passes under `CHAMBOLLE_NUMERICS=fast`
    // (the Fast tier trades bit equality for tolerance by design).
    let exact = ExecCtx::default().with_numerics(NumericsPolicy::Exact);
    let (reference, _) = chambolle_denoise_with_ctx(&v, &params, &exact).expect("no token");

    for (name, tunables) in profiles() {
        tunables
            .validate()
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let config = TileConfig::from_tunables(&tunables)
            .unwrap_or_else(|e| panic!("{name}: unconstructible schedule: {e}"));
        let pool = Arc::new(ThreadPool::new(tunables.threads));
        let ctx = exact.clone().with_pool(pool);
        let mut p = DualField::zeros(v.width(), v.height());
        chambolle_iterate_tiled_with_ctx(&mut p, &v, &params, params.iterations, &config, &ctx)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let u = recover_u(&v, &p, params.theta);
        assert_eq!(
            u.as_slice(),
            reference.as_slice(),
            "profile {name} changed pixels"
        );
    }
}

/// `ExecCtx::from_tunables` threads the same schedule through the context
/// path: contexts built from different profiles are interchangeable
/// pixel-wise.
#[test]
fn contexts_from_different_profiles_are_interchangeable() {
    use chambolle::core::chambolle_denoise_monitored_with_ctx;

    let v = test_frame();
    let params = ChambolleParams::with_iterations(9);

    let mut outputs = Vec::new();
    for (name, tunables) in profiles() {
        // Interchangeability across schedules (including backend choices)
        // is an Exact-tier property; see the pixel-neutrality test above.
        let ctx = ExecCtx::from_tunables(tunables).with_numerics(NumericsPolicy::Exact);
        assert_eq!(ctx.tunables(), &tunables, "{name}: knobs must round-trip");
        let report = chambolle_denoise_monitored_with_ctx(&v, &params, 3, 0.0, &ctx)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        outputs.push((name, report.u));
    }
    let (first_name, first) = &outputs[0];
    for (name, u) in &outputs[1..] {
        assert_eq!(
            u.as_slice(),
            first.as_slice(),
            "ctx from {name} diverged from {first_name}"
        );
    }
}

/// `ExecCtx::auto` resolves the process-wide active schedule — in a test
/// run with no profile on disk that is the defaults — and always yields a
/// valid, constructible configuration (the total-fallback guarantee).
#[test]
fn auto_context_always_yields_a_valid_schedule() {
    let ctx = ExecCtx::auto(Telemetry::null());
    ctx.tunables()
        .validate()
        .expect("auto context must carry a valid schedule");
    assert_eq!(ctx.tunables(), &chambolle::tune::active());
    // The derived tile config is constructible whatever was loaded.
    let config = ctx.tile_config();
    config
        .with_halo_margin(config.halo_margin)
        .expect("auto tile config must validate");
}
