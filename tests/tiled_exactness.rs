//! The paper's central correctness property, tested across crates on
//! realistic imagery: the loop-decomposed sliding-window solver produces
//! exactly the sequential result, for any geometry, merge factor and thread
//! count.

use std::sync::Arc;

use chambolle::core::{
    chambolle_iterate_tiled_spawn_baseline, chambolle_iterate_tiled_with_ctx,
    chambolle_iterate_with_ctx, recover_u, rof_energy, ChambolleParams, DualField, ExecCtx,
    NumericsPolicy, ParallelSolver, SequentialSolver, TileConfig, TilePlan, TiledSolver,
    TvDenoiser,
};
use chambolle::imaging::{NoiseTexture, Scene};
use chambolle::par::ThreadPool;

/// Tiled-vs-sequential bit equality is the **Exact-tier** contract: the Fast
/// tier is deterministic per tile shape but not bit-comparable across window
/// widths. The suite also runs under `CHAMBOLLE_NUMERICS=fast`, so the
/// exactness tests pin the tier explicitly.
fn exact_ctx() -> ExecCtx {
    ExecCtx::default().with_numerics(NumericsPolicy::Exact)
}

#[test]
fn paper_geometry_exact_on_vga_like_frame() {
    let v = NoiseTexture::new(31).render(320, 200);
    let params = ChambolleParams::paper(9);
    let mut p_seq = DualField::zeros(320, 200);
    chambolle_iterate_with_ctx(&mut p_seq, &v, &params, 9, &exact_ctx()).expect("no token");
    for k in [1u32, 2, 3] {
        let cfg = TileConfig::paper_hardware(k).expect("valid config");
        let mut p_tiled = DualField::zeros(320, 200);
        chambolle_iterate_tiled_with_ctx(&mut p_tiled, &v, &params, 9, &cfg, &exact_ctx())
            .expect("no token");
        assert_eq!(p_seq.px.as_slice(), p_tiled.px.as_slice(), "K={k}");
        assert_eq!(p_seq.py.as_slice(), p_tiled.py.as_slice(), "K={k}");
    }
}

#[test]
fn many_threads_agree() {
    let v = NoiseTexture::new(32).render(150, 110);
    let params = ChambolleParams::paper(6);
    let reference =
        TiledSolver::new(TileConfig::new(48, 40, 2, 1).expect("cfg")).denoise(&v, &params);
    for threads in [2usize, 3, 8] {
        let cfg = TileConfig::new(48, 40, 2, threads).expect("cfg");
        let u = TiledSolver::new(cfg).denoise(&v, &params);
        assert_eq!(reference.as_slice(), u.as_slice(), "threads={threads}");
    }
}

#[test]
fn parallel_solver_matches_sequential_across_thread_counts() {
    let v = NoiseTexture::new(44).render(150, 110);
    let params = ChambolleParams::with_iterations(40);
    let reference = SequentialSolver::new().denoise(&v, &params);
    for threads in [1usize, 2, 3, 8] {
        let u = ParallelSolver::new(threads).denoise(&v, &params);
        assert_eq!(reference.as_slice(), u.as_slice(), "threads={threads}");
    }
}

#[test]
fn pooled_tiling_matches_sequential_across_threads_and_merge_factors() {
    let v = NoiseTexture::new(45).render(130, 100);
    let params = ChambolleParams::paper(8);
    let mut p_seq = DualField::zeros(130, 100);
    chambolle_iterate_with_ctx(&mut p_seq, &v, &params, 8, &exact_ctx()).expect("no token");
    let u_seq = recover_u(&v, &p_seq, params.theta);
    for threads in [1usize, 2, 3, 8] {
        let pool = Arc::new(ThreadPool::new(threads));
        for k in [1u32, 2, 4] {
            let cfg = TileConfig::new(48, 40, k, threads).expect("cfg");
            let ctx = exact_ctx().with_pool(Arc::clone(&pool));
            let mut p_tiled = DualField::zeros(130, 100);
            chambolle_iterate_tiled_with_ctx(&mut p_tiled, &v, &params, 8, &cfg, &ctx)
                .expect("no token");
            let u = recover_u(&v, &p_tiled, params.theta);
            assert_eq!(u_seq.as_slice(), u.as_slice(), "threads={threads}, K={k}");

            let mut p_base = DualField::zeros(130, 100);
            chambolle_iterate_tiled_spawn_baseline(&mut p_base, &v, &params, 8, &cfg);
            assert_eq!(p_seq.px.as_slice(), p_base.px.as_slice(), "baseline K={k}");
            assert_eq!(p_seq.py.as_slice(), p_base.py.as_slice(), "baseline K={k}");
        }
    }
}

#[test]
fn redundancy_matches_plan_arithmetic() {
    // The redundant-computation fraction is pure geometry; spot-check the
    // plan against a hand count for one configuration.
    let cfg = TileConfig::new(20, 20, 2, 1).expect("cfg");
    // steps = 20 - 5 = 15; frame 30x30 -> 2x2 output blocks of 15x15.
    let plan = TilePlan::new(30, 30, cfg);
    assert_eq!(plan.tiles().len(), 4);
    // Source windows: (0..18)^2-ish: leading halo 2, trailing 3, clipped.
    let total: usize = plan.tiles().iter().map(|t| t.src_w * t.src_h).sum();
    // Tile (0,0): src 0..18 x 0..18 = 18x18; tile (1,0): src 13..30 x 0..18
    // = 17x18; same transposed; tile (1,1): 17x17.
    assert_eq!(total, 18 * 18 + 17 * 18 * 2 + 17 * 17);
    let expected = (total as f64 - 900.0) / 900.0;
    assert!((plan.redundancy_fraction() - expected).abs() < 1e-12);
}

#[test]
fn denoising_quality_unaffected_by_tiling() {
    let v = NoiseTexture::new(33).render(120, 90);
    let params = ChambolleParams::with_iterations(60);
    let mut p_seq = DualField::zeros(120, 90);
    chambolle_iterate_with_ctx(&mut p_seq, &v, &params, 60, &exact_ctx()).expect("no token");
    let u_seq = recover_u(&v, &p_seq, params.theta);
    let mut p_tiled = DualField::zeros(120, 90);
    chambolle_iterate_tiled_with_ctx(
        &mut p_tiled,
        &v,
        &params,
        60,
        &TileConfig::default(),
        &exact_ctx(),
    )
    .expect("no token");
    let u_tiled = recover_u(&v, &p_tiled, params.theta);
    let e_seq = rof_energy(&u_seq, &v, params.theta);
    let e_tiled = rof_energy(&u_tiled, &v, params.theta);
    assert_eq!(e_seq, e_tiled, "identical results imply identical energy");
    assert!(e_seq < rof_energy(&v, &v, params.theta));
}
