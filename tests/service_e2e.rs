//! End-to-end tests of the request-service layer: the framed TCP front-end
//! and the deadline/cancellation semantics the service guarantees.

use std::time::Duration;

use chambolle::core::{
    CancelToken, ChambolleParams, FlowError, SequentialSolver, TvDenoiser, TvL1Params, TvL1Solver,
};
use chambolle::imaging::{render_pair, Motion, NoiseTexture, Scene};
use chambolle::service::{
    wire, Priority, Request, Service, ServiceClient, ServiceConfig, TcpServer, Workload,
};

/// A TCP round-trip on an ephemeral port must return the exact bits the
/// sequential solver produces, and both the server and the service must
/// drain cleanly afterwards.
#[test]
fn tcp_round_trip_is_bit_identical_and_drains_cleanly() {
    let input = NoiseTexture::new(404).render(20, 14);
    let params = ChambolleParams::with_iterations(18);

    let service = Service::spawn(ServiceConfig::new(2, 8));
    let server = TcpServer::bind(service.handle().clone(), "127.0.0.1:0").unwrap();
    let addr = server.local_addr();
    assert_ne!(addr.port(), 0, "ephemeral bind must resolve a real port");

    let mut client = ServiceClient::connect(addr).unwrap();
    let response = client
        .denoise(&input, &params, Priority::Interactive, None)
        .unwrap();
    let expected = SequentialSolver::new().denoise(&input, &params);
    match response {
        wire::WireResponse::Ok { output, .. } => {
            assert_eq!(
                output.as_slice(),
                expected.as_slice(),
                "wire output must be bit-identical to the in-process solver"
            );
        }
        other => panic!("expected an ok response, got {other:?}"),
    }

    // A second request on the same connection still works (the framing is
    // self-delimiting).
    let again = client
        .denoise(&input, &params, Priority::Batch, None)
        .unwrap();
    assert!(matches!(again, wire::WireResponse::Ok { .. }));

    drop(client);
    server.shutdown();
    let summary = service.shutdown();
    assert_eq!(summary.stats.completed, 2);
    assert_eq!(summary.stats.in_flight(), 0, "drain must lose nothing");
}

/// A cancelled mid-pyramid TV-L1 solve must come back as a clean
/// `Cancelled` error, and the very next solve on the same solver must be
/// bit-identical to a fresh one — no poisoned state survives cancellation.
#[test]
fn cancelled_mid_pyramid_tvl1_leaves_no_poisoned_state() {
    let scene = NoiseTexture::new(99);
    let pair = render_pair(&scene, 48, 36, Motion::Translation { du: 0.8, dv: -0.4 });
    let params = TvL1Params::new(38.0, ChambolleParams::with_iterations(15), 2, 3, 3)
        .expect("valid TV-L1 params");
    let solver = TvL1Solver::sequential(params);

    // A pre-cancelled token aborts at the first outer-iteration boundary —
    // deep inside the pyramid recursion, before any level completes.
    let token = CancelToken::new();
    token.cancel();
    let err = solver
        .flow_cancellable(&pair.i0, &pair.i1, None, &token)
        .expect_err("a cancelled solve must not return a flow");
    assert!(matches!(err, FlowError::Cancelled(_)), "got {err:?}");

    // The same solver instance must now match a fresh solver bit for bit.
    let (after_cancel, _) = solver.flow(&pair.i0, &pair.i1).unwrap();
    let (fresh, _) = TvL1Solver::sequential(params)
        .flow(&pair.i0, &pair.i1)
        .unwrap();
    assert_eq!(after_cancel.u1.as_slice(), fresh.u1.as_slice());
    assert_eq!(after_cancel.u2.as_slice(), fresh.u2.as_slice());
}

/// The same guarantee end-to-end through the service: cancel a queued TV-L1
/// request, then verify the next request on the *same* service produces
/// output bit-identical to a fresh service.
#[test]
fn service_tvl1_after_cancellation_matches_fresh_service() {
    let scene = NoiseTexture::new(7);
    let pair = render_pair(&scene, 40, 30, Motion::Translation { du: 1.0, dv: 0.5 });
    let params = TvL1Params::new(38.0, ChambolleParams::with_iterations(10), 2, 2, 3)
        .expect("valid TV-L1 params");
    let flow_request = || {
        Request::new(Workload::TvL1 {
            i0: pair.i0.clone(),
            i1: pair.i1.clone(),
            params,
        })
    };

    let service = Service::spawn(ServiceConfig::new(2, 8));
    let victim = service.handle().submit(flow_request()).unwrap();
    victim.cancel();
    // Whether the cancel landed while queued, mid-solve, or after the solve
    // finished, the ticket resolves without hanging.
    let _ = victim.wait();

    let follow_up = service.handle().submit(flow_request()).unwrap();
    let served = follow_up.wait().unwrap();
    let summary = service.shutdown();
    assert_eq!(summary.stats.in_flight(), 0);

    let fresh_service = Service::spawn(ServiceConfig::new(2, 8));
    let fresh = fresh_service
        .handle()
        .submit(flow_request())
        .unwrap()
        .wait()
        .unwrap();
    fresh_service.shutdown();

    let served_flow = served.output.as_flow().unwrap();
    let fresh_flow = fresh.output.as_flow().unwrap();
    assert_eq!(
        served_flow.u1.as_slice(),
        fresh_flow.u1.as_slice(),
        "post-cancel service output must be bit-identical to a fresh service"
    );
    assert_eq!(served_flow.u2.as_slice(), fresh_flow.u2.as_slice());
}

/// A request whose deadline has already passed when the dispatcher reaches
/// it resolves to `DeadlineExceeded` without consuming solver time, and the
/// accounting still balances.
#[test]
fn expired_deadline_resolves_without_losing_accounting() {
    let input = NoiseTexture::new(31).render(64, 64);
    let service = Service::spawn(ServiceConfig::new(1, 8).with_max_batch(1));
    // Occupy the dispatcher long enough for the 1 ms deadline to expire in
    // the queue.
    let blocker = service
        .handle()
        .submit(Request::new(Workload::Denoise {
            input: input.clone(),
            params: ChambolleParams::with_iterations(200),
        }))
        .unwrap();
    let doomed = service
        .handle()
        .submit(
            Request::new(Workload::Denoise {
                input: input.clone(),
                params: ChambolleParams::with_iterations(200),
            })
            .with_deadline(Duration::from_millis(1)),
        )
        .unwrap();
    assert_eq!(
        doomed.wait().unwrap_err(),
        chambolle::service::ServiceError::DeadlineExceeded
    );
    blocker.wait().unwrap();
    let summary = service.shutdown();
    assert_eq!(summary.stats.deadline_exceeded, 1);
    assert_eq!(summary.stats.completed, 1);
    assert_eq!(summary.stats.in_flight(), 0);
}
