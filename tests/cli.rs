//! End-to-end tests of the command-line tools (run as real subprocesses).

use std::path::PathBuf;
use std::process::Command;

use chambolle::imaging::{read_flo, read_pgm, render_pair, write_pgm, Motion, NoiseTexture};

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("chambolle_cli_{}_{name}", std::process::id()));
    p
}

fn write_test_pair() -> (PathBuf, PathBuf) {
    let scene = NoiseTexture::new(77);
    let pair = render_pair(&scene, 64, 48, Motion::Translation { du: 1.5, dv: -0.5 });
    let p0 = tmp("i0.pgm");
    let p1 = tmp("i1.pgm");
    write_pgm(&p0, &pair.i0).expect("write i0");
    write_pgm(&p1, &pair.i1).expect("write i1");
    (p0, p1)
}

#[test]
fn flow_cli_produces_flo_and_ppm() {
    let (p0, p1) = write_test_pair();
    let flo = tmp("out.flo");
    let ppm = tmp("out.ppm");
    let status = Command::new(env!("CARGO_BIN_EXE_chambolle_flow"))
        .args([
            p0.to_str().unwrap(),
            p1.to_str().unwrap(),
            "--out",
            flo.to_str().unwrap(),
            "--vis",
            ppm.to_str().unwrap(),
            "--iterations",
            "15",
            "--warps",
            "3",
            "--levels",
            "3",
        ])
        .status()
        .expect("spawn chambolle_flow");
    assert!(status.success());

    let flow = read_flo(&flo).expect("read back .flo");
    assert_eq!(flow.dims(), (64, 48));
    // PGM quantization costs accuracy; the motion direction must survive.
    let (mu, mv) = flow.mean();
    assert!(mu > 0.8 && mu < 2.2, "mean u1 = {mu}");
    assert!(mv < 0.0, "mean u2 = {mv}");

    let vis = std::fs::read(&ppm).expect("read ppm");
    assert!(vis.starts_with(b"P6\n64 48\n255\n"));

    for f in [p0, p1, flo, ppm] {
        std::fs::remove_file(f).ok();
    }
}

#[test]
fn denoise_cli_writes_telemetry_report() {
    use chambolle::telemetry::json::JsonValue;
    use chambolle::telemetry::report::RunReport;

    let scene = NoiseTexture::new(79);
    let pair = render_pair(&scene, 48, 40, Motion::Translation { du: 0.0, dv: 0.0 });
    let input = tmp("tele_in.pgm");
    write_pgm(&input, &pair.i0).expect("write input");
    let output = tmp("tele_out.pgm");
    let report_path = tmp("tele_report.json");

    let status = Command::new(env!("CARGO_BIN_EXE_chambolle_denoise"))
        .args([
            input.to_str().unwrap(),
            output.to_str().unwrap(),
            "--iterations",
            "20",
            "--backend",
            "fpga",
            "--telemetry",
            report_path.to_str().unwrap(),
        ])
        .status()
        .expect("spawn chambolle_denoise");
    assert!(status.success());

    let text = std::fs::read_to_string(&report_path).expect("report written");
    let doc = JsonValue::parse(&text).expect("valid JSON report");
    RunReport::validate(&doc).expect("schema-valid report");
    assert_eq!(
        doc.get("tool").and_then(JsonValue::as_str),
        Some("chambolle_denoise")
    );
    assert_eq!(
        doc.get_path("sections.run.backend")
            .and_then(JsonValue::as_str),
        Some("fpga")
    );
    // The fpga backend must have reported cycle-level counters.
    assert!(
        doc.get_path("metrics.hwsim.cycles.value")
            .and_then(JsonValue::as_f64)
            .is_some_and(|c| c > 0.0),
        "accelerator cycles missing from report"
    );

    for f in [input, output, report_path] {
        std::fs::remove_file(f).ok();
    }
}

#[test]
fn flow_cli_rejects_bad_usage() {
    let status = Command::new(env!("CARGO_BIN_EXE_chambolle_flow"))
        .arg("only-one.pgm")
        .status()
        .expect("spawn chambolle_flow");
    assert_eq!(status.code(), Some(2));

    let status = Command::new(env!("CARGO_BIN_EXE_chambolle_flow"))
        .args(["a.pgm", "b.pgm", "--backend", "quantum"])
        .status()
        .expect("spawn chambolle_flow");
    assert_eq!(status.code(), Some(2));
}

#[test]
fn flow_cli_reports_missing_files() {
    let status = Command::new(env!("CARGO_BIN_EXE_chambolle_flow"))
        .args(["/nonexistent/a.pgm", "/nonexistent/b.pgm"])
        .status()
        .expect("spawn chambolle_flow");
    assert_eq!(status.code(), Some(1));
}

/// `--profile` (and the `CHAMBOLLE_PROFILE` env var) steer the schedule but
/// never the pixels: a valid profile with different tile geometry produces a
/// byte-identical output, and a corrupt profile falls back with a warning
/// instead of failing the run.
#[test]
fn denoise_cli_profiles_are_bit_exact_and_fall_back() {
    use chambolle::tune::{Fingerprint, Profile, Tunables};

    let scene = NoiseTexture::new(80);
    let pair = render_pair(&scene, 48, 40, Motion::Translation { du: 0.0, dv: 0.0 });
    let input = tmp("prof_in.pgm");
    write_pgm(&input, &pair.i0).expect("write input");

    let run = |out: &PathBuf, extra: &[&str], env: &[(&str, &str)]| {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_chambolle_denoise"));
        cmd.args([input.to_str().unwrap(), out.to_str().unwrap()])
            .args(["--iterations", "25"])
            .args(extra);
        for (k, v) in env {
            cmd.env(k, v);
        }
        let output = cmd.output().expect("spawn chambolle_denoise");
        assert!(output.status.success(), "denoise run failed: {output:?}");
        String::from_utf8_lossy(&output.stderr).into_owned()
    };

    let default_out = tmp("prof_default.pgm");
    run(&default_out, &[], &[]);
    let reference = std::fs::read(&default_out).expect("read default output");

    // A valid profile with a different schedule: same pixels, byte for byte.
    let profile_path = tmp("prof_valid.json");
    let tunables = Tunables {
        tile_width: 64,
        tile_height: 60,
        merge_factor: 3,
        threads: 3,
        ..Tunables::default()
    };
    Profile::new(Fingerprint::detect(), tunables)
        .save(&profile_path)
        .expect("save profile");
    let flag_out = tmp("prof_flag.pgm");
    run(
        &flag_out,
        &["--profile", profile_path.to_str().unwrap()],
        &[],
    );
    assert_eq!(
        std::fs::read(&flag_out).expect("read profiled output"),
        reference,
        "--profile must not change pixels"
    );

    let env_out = tmp("prof_env.pgm");
    run(
        &env_out,
        &[],
        &[("CHAMBOLLE_PROFILE", profile_path.to_str().unwrap())],
    );
    assert_eq!(
        std::fs::read(&env_out).expect("read env-profiled output"),
        reference,
        "CHAMBOLLE_PROFILE must not change pixels"
    );

    // A corrupt profile warns and falls back; the run still succeeds.
    let bad_path = tmp("prof_bad.json");
    std::fs::write(&bad_path, "{ not json").expect("write bad profile");
    let bad_out = tmp("prof_bad.pgm");
    let stderr = run(&bad_out, &["--profile", bad_path.to_str().unwrap()], &[]);
    assert!(
        stderr.contains("tuning profile"),
        "fallback must warn on stderr, got: {stderr}"
    );
    assert_eq!(
        std::fs::read(&bad_out).expect("read fallback output"),
        reference,
        "fallback must reproduce the default output"
    );

    for f in [
        input,
        default_out,
        profile_path,
        flag_out,
        env_out,
        bad_path,
        bad_out,
    ] {
        std::fs::remove_file(f).ok();
    }
}

/// Both bins reject a bare `--profile` with usage exit code 2, and the flow
/// bin accepts the flag.
#[test]
fn profile_flag_usage_errors() {
    let status = Command::new(env!("CARGO_BIN_EXE_chambolle_denoise"))
        .args(["a.pgm", "b.pgm", "--profile"])
        .status()
        .expect("spawn chambolle_denoise");
    assert_eq!(status.code(), Some(2));

    let status = Command::new(env!("CARGO_BIN_EXE_chambolle_flow"))
        .args(["a.pgm", "b.pgm", "--profile"])
        .status()
        .expect("spawn chambolle_flow");
    assert_eq!(status.code(), Some(2));
}

#[test]
fn denoise_cli_roundtrip() {
    let scene = NoiseTexture::new(78);
    let pair = render_pair(&scene, 48, 40, Motion::Translation { du: 0.0, dv: 0.0 });
    let input = tmp("noisy.pgm");
    write_pgm(&input, &pair.i0).expect("write input");
    let output = tmp("denoised.pgm");

    let status = Command::new(env!("CARGO_BIN_EXE_chambolle_denoise"))
        .args([
            input.to_str().unwrap(),
            output.to_str().unwrap(),
            "--iterations",
            "40",
        ])
        .status()
        .expect("spawn chambolle_denoise");
    assert!(status.success());
    let u = read_pgm(&output).expect("read output");
    assert_eq!(u.dims(), (48, 40));

    // Early-stopping variant also works.
    let status = Command::new(env!("CARGO_BIN_EXE_chambolle_denoise"))
        .args([
            input.to_str().unwrap(),
            output.to_str().unwrap(),
            "--gap-tol",
            "5.0",
        ])
        .status()
        .expect("spawn chambolle_denoise");
    assert!(status.success());

    std::fs::remove_file(input).ok();
    std::fs::remove_file(output).ok();
}
