//! End-to-end tests of the command-line tools (run as real subprocesses).

use std::path::PathBuf;
use std::process::Command;

use chambolle::imaging::{read_flo, read_pgm, render_pair, write_pgm, Motion, NoiseTexture};

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("chambolle_cli_{}_{name}", std::process::id()));
    p
}

fn write_test_pair() -> (PathBuf, PathBuf) {
    let scene = NoiseTexture::new(77);
    let pair = render_pair(&scene, 64, 48, Motion::Translation { du: 1.5, dv: -0.5 });
    let p0 = tmp("i0.pgm");
    let p1 = tmp("i1.pgm");
    write_pgm(&p0, &pair.i0).expect("write i0");
    write_pgm(&p1, &pair.i1).expect("write i1");
    (p0, p1)
}

#[test]
fn flow_cli_produces_flo_and_ppm() {
    let (p0, p1) = write_test_pair();
    let flo = tmp("out.flo");
    let ppm = tmp("out.ppm");
    let status = Command::new(env!("CARGO_BIN_EXE_chambolle_flow"))
        .args([
            p0.to_str().unwrap(),
            p1.to_str().unwrap(),
            "--out",
            flo.to_str().unwrap(),
            "--vis",
            ppm.to_str().unwrap(),
            "--iterations",
            "15",
            "--warps",
            "3",
            "--levels",
            "3",
        ])
        .status()
        .expect("spawn chambolle_flow");
    assert!(status.success());

    let flow = read_flo(&flo).expect("read back .flo");
    assert_eq!(flow.dims(), (64, 48));
    // PGM quantization costs accuracy; the motion direction must survive.
    let (mu, mv) = flow.mean();
    assert!(mu > 0.8 && mu < 2.2, "mean u1 = {mu}");
    assert!(mv < 0.0, "mean u2 = {mv}");

    let vis = std::fs::read(&ppm).expect("read ppm");
    assert!(vis.starts_with(b"P6\n64 48\n255\n"));

    for f in [p0, p1, flo, ppm] {
        std::fs::remove_file(f).ok();
    }
}

#[test]
fn denoise_cli_writes_telemetry_report() {
    use chambolle::telemetry::json::JsonValue;
    use chambolle::telemetry::report::RunReport;

    let scene = NoiseTexture::new(79);
    let pair = render_pair(&scene, 48, 40, Motion::Translation { du: 0.0, dv: 0.0 });
    let input = tmp("tele_in.pgm");
    write_pgm(&input, &pair.i0).expect("write input");
    let output = tmp("tele_out.pgm");
    let report_path = tmp("tele_report.json");

    let status = Command::new(env!("CARGO_BIN_EXE_chambolle_denoise"))
        .args([
            input.to_str().unwrap(),
            output.to_str().unwrap(),
            "--iterations",
            "20",
            "--backend",
            "fpga",
            "--telemetry",
            report_path.to_str().unwrap(),
        ])
        .status()
        .expect("spawn chambolle_denoise");
    assert!(status.success());

    let text = std::fs::read_to_string(&report_path).expect("report written");
    let doc = JsonValue::parse(&text).expect("valid JSON report");
    RunReport::validate(&doc).expect("schema-valid report");
    assert_eq!(
        doc.get("tool").and_then(JsonValue::as_str),
        Some("chambolle_denoise")
    );
    assert_eq!(
        doc.get_path("sections.run.backend")
            .and_then(JsonValue::as_str),
        Some("fpga")
    );
    // The fpga backend must have reported cycle-level counters.
    assert!(
        doc.get_path("metrics.hwsim.cycles.value")
            .and_then(JsonValue::as_f64)
            .is_some_and(|c| c > 0.0),
        "accelerator cycles missing from report"
    );

    for f in [input, output, report_path] {
        std::fs::remove_file(f).ok();
    }
}

#[test]
fn flow_cli_rejects_bad_usage() {
    let status = Command::new(env!("CARGO_BIN_EXE_chambolle_flow"))
        .arg("only-one.pgm")
        .status()
        .expect("spawn chambolle_flow");
    assert_eq!(status.code(), Some(2));

    let status = Command::new(env!("CARGO_BIN_EXE_chambolle_flow"))
        .args(["a.pgm", "b.pgm", "--backend", "quantum"])
        .status()
        .expect("spawn chambolle_flow");
    assert_eq!(status.code(), Some(2));
}

#[test]
fn flow_cli_reports_missing_files() {
    let status = Command::new(env!("CARGO_BIN_EXE_chambolle_flow"))
        .args(["/nonexistent/a.pgm", "/nonexistent/b.pgm"])
        .status()
        .expect("spawn chambolle_flow");
    assert_eq!(status.code(), Some(1));
}

#[test]
fn denoise_cli_roundtrip() {
    let scene = NoiseTexture::new(78);
    let pair = render_pair(&scene, 48, 40, Motion::Translation { du: 0.0, dv: 0.0 });
    let input = tmp("noisy.pgm");
    write_pgm(&input, &pair.i0).expect("write input");
    let output = tmp("denoised.pgm");

    let status = Command::new(env!("CARGO_BIN_EXE_chambolle_denoise"))
        .args([
            input.to_str().unwrap(),
            output.to_str().unwrap(),
            "--iterations",
            "40",
        ])
        .status()
        .expect("spawn chambolle_denoise");
    assert!(status.success());
    let u = read_pgm(&output).expect("read output");
    assert_eq!(u.dims(), (48, 40));

    // Early-stopping variant also works.
    let status = Command::new(env!("CARGO_BIN_EXE_chambolle_denoise"))
        .args([
            input.to_str().unwrap(),
            output.to_str().unwrap(),
            "--gap-tol",
            "5.0",
        ])
        .status()
        .expect("spawn chambolle_denoise");
    assert!(status.success());

    std::fs::remove_file(input).ok();
    std::fs::remove_file(output).ok();
}
