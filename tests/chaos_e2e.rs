//! End-to-end chaos test: a fault-injected TCP server driven by the
//! resilient client must complete every accepted request bit-identically
//! to a fault-free run.
//!
//! The fault dice are seeded: a fixed injector seed plus per-connection
//! SplitMix64 streams. Fault placement still shifts with TCP segmentation,
//! so assertions pin the schedule's stable outcomes (the scripted panic
//! fires exactly once, faults occurred, every response is bit-exact)
//! rather than per-category fault counts.

use std::time::Duration;

use chambolle::core::{ChambolleParams, SequentialSolver, TvDenoiser};
use chambolle::imaging::{Grid, NoiseTexture, Scene};
use chambolle::service::{
    BreakerPolicy, BreakerState, ChaosConfig, ChaosEvent, Priority, RequestTrace, ResilientClient,
    ResilientConfig, ResponseTier, RetryPolicy, Service, ServiceConfig, TcpServer,
};
use chambolle::telemetry::{names, RunReport, Telemetry};

const SEED: u64 = 0xC4A0_55EE_D001;
const REQUESTS: usize = 20;

fn inputs() -> Vec<Grid<f32>> {
    (0..REQUESTS)
        .map(|i| NoiseTexture::new(3000 + i as u64).render(20, 16))
        .collect()
}

/// The acceptance scenario from the issue: fixed-seed connection resets +
/// payload corruption + one scripted server panic, and the resilient client
/// still completes 100% of accepted requests with outputs bit-identical to
/// a fault-free run.
#[test]
fn chaotic_server_still_serves_every_request_bit_identically() {
    let params = ChambolleParams::with_iterations(15);
    let inputs = inputs();
    let expected: Vec<Grid<f32>> = inputs
        .iter()
        .map(|input| SequentialSolver::new().denoise(input, &params))
        .collect();

    let server_telemetry = Telemetry::null();
    let client_telemetry = Telemetry::null();
    // A ring big enough that no trace fragment of this run is evicted —
    // every retry that gets a response write finishes one fragment.
    let config = ServiceConfig::new(2, 32).with_trace_ring(1024);
    let service = Service::spawn_with_telemetry(config, server_telemetry.clone());
    // Aggressive-but-recoverable chaos: frequent resets and corruption, and
    // the third solve submission panics server-side *after* committing, so
    // the retry must be answered from the idempotency cache.
    let chaos = ChaosConfig::quiet(SEED)
        .with_resets(0.05)
        .with_corruption(0.05)
        .with_panic_on_request(3);
    let server =
        TcpServer::bind_with_chaos(service.handle().clone(), "127.0.0.1:0", chaos).unwrap();
    let addr = server.local_addr();

    // A hair-trigger breaker (threshold 1, short cooldown) so the fault
    // schedule is guaranteed to exercise the open -> half-open -> closed
    // cycle, not just the retry loop.
    let config = ResilientConfig {
        connect_timeout: Duration::from_secs(5),
        io_timeout: Duration::from_secs(10),
        retry: RetryPolicy {
            max_attempts: 8,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(50),
        },
        breaker: BreakerPolicy {
            failure_threshold: 1,
            cooldown: Duration::from_millis(10),
        },
        jitter_seed: SEED,
        tracing: true,
    };
    let handle = service.handle().clone();
    let mut client = ResilientClient::connect_with(addr, config)
        .unwrap()
        .with_telemetry(client_telemetry.clone())
        .with_tracer(handle.tracer().clone(), handle.epoch());

    let mut recovered_any = false;
    let mut trace_ids = Vec::new();
    for (input, want) in inputs.iter().zip(&expected) {
        let outcome = client
            .denoise(input, &params, Priority::Interactive, None)
            .expect("every accepted request must complete despite chaos");
        assert_eq!(
            outcome.output.as_slice(),
            want.as_slice(),
            "chaos-survived response must be bit-identical to the fault-free run"
        );
        assert_eq!(outcome.tier, ResponseTier::Full);
        recovered_any |= outcome.recovered;
        assert!(outcome.trace.is_active(), "every request must be traced");
        trace_ids.push(outcome.trace.trace_id);
    }

    // Every completed request — including every retried, replayed, and
    // breaker-delayed one — must leave a complete span tree: merging all
    // finished fragments of a trace id yields a forest with roots and zero
    // orphaned spans, covering both the client and the server side.
    let finished = handle.tracer().recent();
    for (i, trace_id) in trace_ids.iter().enumerate() {
        let spans: Vec<_> = finished
            .iter()
            .filter(|t| t.trace_id == *trace_id)
            .flat_map(|t| t.spans.iter().cloned())
            .collect();
        assert!(!spans.is_empty(), "request {i} left no finished trace");
        let merged = RequestTrace::from_spans(*trace_id, spans);
        assert!(
            merged.is_complete(),
            "request {i}: span tree has orphans: {merged:?}"
        );
        assert!(
            merged.find("client.request").is_some(),
            "request {i}: client root span missing"
        );
        assert!(
            merged.find("server.request").is_some() || merged.find("replay").is_some(),
            "request {i}: no server-side span survived"
        );
    }

    let stats = client.stats();
    assert_eq!(stats.requests, REQUESTS as u64, "100% completion");
    assert_eq!(
        stats.exhausted, 0,
        "no request may exhaust its retry budget"
    );
    assert!(
        stats.retries > 0 && recovered_any,
        "the fault schedule must actually force retries (retries={})",
        stats.retries
    );
    assert!(
        matches!(client.breaker_state(), BreakerState::Closed),
        "breaker must settle closed once the run completes"
    );

    // The injector observed real faults, including the scripted panic.
    let injector = server
        .chaos()
        .expect("chaos server exposes its injector")
        .clone();
    let events = injector.events();
    assert!(
        events
            .iter()
            .any(|e| matches!(e, ChaosEvent::ServerPanic { .. })),
        "the scripted server panic must have fired"
    );
    assert!(
        events
            .iter()
            .any(|e| { matches!(e, ChaosEvent::Reset { .. } | ChaosEvent::Corrupt { .. }) }),
        "the seed must produce at least one network fault"
    );

    // Resilience telemetry lands in the client's RunReport.
    let snap = client_telemetry.snapshot();
    assert!(snap.counter(names::SERVICE_RETRY_ATTEMPTS).unwrap_or(0) > 0);
    assert!(snap.counter(names::SERVICE_RETRY_RECOVERED).unwrap_or(0) > 0);
    assert_eq!(snap.counter(names::SERVICE_RETRY_EXHAUSTED), None);
    assert!(snap.counter(names::SERVICE_BREAKER_OPENED).unwrap_or(0) > 0);
    assert!(snap.counter(names::SERVICE_BREAKER_CLOSED).unwrap_or(0) > 0);
    let report = RunReport::from_telemetry("chaos_e2e", &client_telemetry).to_json();
    let rendered = report.to_string();
    for name in [
        names::SERVICE_RETRY_ATTEMPTS,
        names::SERVICE_RETRY_RECOVERED,
        names::SERVICE_BREAKER_OPENED,
        names::SERVICE_BREAKER_STATE,
    ] {
        assert!(
            rendered.contains(name),
            "RunReport must carry {name}: {rendered}"
        );
    }

    // The server side saw the chaos too: idempotent replay after the panic.
    let server_snap = server_telemetry.snapshot();
    assert!(
        server_snap
            .counter(names::SERVICE_IDEMPOTENT_HITS)
            .unwrap_or(0)
            >= 1
    );
    assert!(server_snap.counter(names::SERVICE_CHAOS_SERVER_PANICS) == Some(1));

    server.shutdown();
    let summary = service.shutdown();
    assert_eq!(summary.stats.in_flight(), 0, "no request leaks in flight");
}

/// Same transport chaos, zero server panics, health probes interleaved:
/// the resilient client's health view must stay coherent under faults.
#[test]
fn health_probes_survive_transport_chaos() {
    let params = ChambolleParams::with_iterations(10);
    let input = NoiseTexture::new(77).render(16, 16);
    let expected = SequentialSolver::new().denoise(&input, &params);

    let service = Service::spawn(ServiceConfig::new(1, 8));
    let chaos = ChaosConfig::quiet(SEED ^ 0xDEAD)
        .with_resets(0.04)
        .with_corruption(0.04);
    let server =
        TcpServer::bind_with_chaos(service.handle().clone(), "127.0.0.1:0", chaos).unwrap();

    let config = ResilientConfig {
        retry: RetryPolicy {
            max_attempts: 8,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(50),
        },
        jitter_seed: SEED ^ 0xBEEF,
        ..ResilientConfig::default()
    };
    let mut client = ResilientClient::connect_with(server.local_addr(), config).unwrap();

    for round in 0..6 {
        let outcome = client
            .denoise(&input, &params, Priority::Batch, None)
            .expect("solve survives chaos");
        assert_eq!(outcome.output.as_slice(), expected.as_slice());
        // health() is single-attempt by design; under random transport
        // faults a probe may legitimately fail, so retry it client-side.
        let mut probed = None;
        for _ in 0..8 {
            if let Ok(h) = client.health() {
                probed = Some(h);
                break;
            }
        }
        let health = probed.expect("a health probe eventually lands");
        assert!(health.is_ready(), "round {round}: serving node is ready");
        assert!(health.completed >= (round + 1) as u64);
        assert!(health.last_solve_age.is_some());
    }

    server.shutdown();
    service.shutdown();
}
