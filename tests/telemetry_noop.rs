//! The telemetry layer's zero-cost contract: instrumenting a solver with a
//! disabled (or enabled-but-null) telemetry handle must not change a single
//! bit of the numerical output. The instrumented entry points delegate to the
//! same code as the plain ones, so any divergence here means an observability
//! hook leaked into the datapath.

use chambolle::core::{
    chambolle_denoise, chambolle_denoise_monitored, chambolle_denoise_monitored_with_ctx,
    chambolle_iterate_tiled, chambolle_iterate_tiled_with_ctx, ChambolleParams, DualField, ExecCtx,
    TileConfig, TiledSolver, TvDenoiser,
};
use chambolle::imaging::{NoiseTexture, Scene};
use chambolle::telemetry::{names, Telemetry};

#[test]
fn disabled_telemetry_solver_output_is_bit_identical() {
    let v = NoiseTexture::new(41).render(96, 80);
    let params = ChambolleParams::paper(30);

    let (u_plain, p_plain) = chambolle_denoise(&v, &params);
    let report_plain = chambolle_denoise_monitored(&v, &params, 10, 0.0);
    let monitored = |telemetry: Telemetry| {
        let ctx = ExecCtx::default().with_telemetry(telemetry);
        chambolle_denoise_monitored_with_ctx(&v, &params, 10, 0.0, &ctx)
            .expect("no cancellation token installed")
    };
    let report_disabled = monitored(Telemetry::disabled());
    let report_null = monitored(Telemetry::null());

    for (label, report) in [("disabled", &report_disabled), ("null", &report_null)] {
        assert_eq!(
            report_plain.u.as_slice(),
            report.u.as_slice(),
            "{label}: u drifted"
        );
        assert_eq!(report_plain.history, report.history, "{label}: trajectory");
        assert_eq!(
            report_plain.iterations_run, report.iterations_run,
            "{label}: iteration count"
        );
    }
    // The monitored path itself matches the unmonitored solver exactly.
    assert_eq!(u_plain.as_slice(), report_plain.u.as_slice());
    assert_eq!(p_plain.px.as_slice(), report_plain.p.px.as_slice());
}

#[test]
fn disabled_telemetry_tiled_solver_is_bit_identical() {
    let v = NoiseTexture::new(42).render(150, 110);
    let params = ChambolleParams::paper(7);
    let cfg = TileConfig::paper_hardware(3).expect("valid config");

    let mut p_plain = DualField::zeros(150, 110);
    chambolle_iterate_tiled(&mut p_plain, &v, &params, 7, &cfg);

    for (label, telemetry) in [
        ("disabled", Telemetry::disabled()),
        ("null", Telemetry::null()),
    ] {
        let mut p_inst = DualField::zeros(150, 110);
        let ctx = ExecCtx::default().with_telemetry(telemetry);
        chambolle_iterate_tiled_with_ctx(&mut p_inst, &v, &params, 7, &cfg, &ctx)
            .expect("no cancellation token installed");
        assert_eq!(p_plain.px.as_slice(), p_inst.px.as_slice(), "{label}: px");
        assert_eq!(p_plain.py.as_slice(), p_inst.py.as_slice(), "{label}: py");
    }

    let u_plain = TiledSolver::new(cfg).denoise(&v, &params);
    let u_inst = TiledSolver::new(cfg)
        .with_telemetry(Telemetry::null())
        .denoise(&v, &params);
    assert_eq!(u_plain.as_slice(), u_inst.as_slice());
}

#[test]
fn enabled_telemetry_observes_without_perturbing() {
    // The flip side of the no-op test: with a live handle the counters are
    // real, and the output still matches the uninstrumented run.
    let v = NoiseTexture::new(43).render(96, 80);
    let params = ChambolleParams::paper(20);
    let telemetry = Telemetry::null();
    let ctx = ExecCtx::default().with_telemetry(telemetry.clone());
    let report = chambolle_denoise_monitored_with_ctx(&v, &params, 5, 0.0, &ctx)
        .expect("no cancellation token installed");
    let baseline = chambolle_denoise_monitored(&v, &params, 5, 0.0);
    assert_eq!(report.u.as_slice(), baseline.u.as_slice());

    let snap = telemetry.snapshot();
    assert_eq!(snap.counter(names::SOLVER_ITERATIONS), Some(20));
    assert_eq!(snap.counter(names::SOLVER_GAP_CHECKS), Some(4));
    assert!(snap.gauge(names::SOLVER_FINAL_GAP).is_some());
}
