//! End-to-end flow accuracy across motion models and solver backends.

use chambolle::core::{ChambolleParams, TileConfig, TiledSolver, TvL1Params, TvL1Solver};
use chambolle::imaging::{average_endpoint_error, render_pair, Motion, NoiseTexture};

fn params() -> TvL1Params {
    TvL1Params::new(38.0, ChambolleParams::with_iterations(25), 3, 4, 4).expect("valid params")
}

#[test]
fn recovers_translation_with_subpixel_accuracy() {
    let scene = NoiseTexture::new(1);
    let pair = render_pair(&scene, 96, 72, Motion::Translation { du: 2.5, dv: -1.25 });
    let (flow, _) = TvL1Solver::sequential(params())
        .flow(&pair.i0, &pair.i1)
        .expect("valid frames");
    let aee = average_endpoint_error(&flow, &pair.truth);
    assert!(aee < 0.25, "AEE {aee} too high for pure translation");
}

#[test]
fn recovers_rotation_and_zoom() {
    let scene = NoiseTexture::new(2);
    let motion = Motion::Similarity {
        cx: 48.0,
        cy: 36.0,
        angle: 0.04,
        scale: 1.02,
    };
    let pair = render_pair(&scene, 96, 72, motion);
    let (flow, _) = TvL1Solver::sequential(params())
        .flow(&pair.i0, &pair.i1)
        .expect("valid frames");
    let aee = average_endpoint_error(&flow, &pair.truth);
    // Non-uniform flow is harder for the TV prior; still sub-pixel.
    assert!(aee < 0.6, "AEE {aee} too high for similarity motion");
}

#[test]
fn tiled_backend_flow_is_bit_identical() {
    use chambolle::core::{ExecCtx, NumericsPolicy};

    let scene = NoiseTexture::new(3);
    let pair = render_pair(&scene, 80, 60, Motion::Translation { du: 1.0, dv: 0.5 });
    let p = params();
    // Sequential-vs-tiled bit identity is the Exact-tier contract; pin the
    // tier so the suite also passes under `CHAMBOLLE_NUMERICS=fast`.
    let exact = ExecCtx::default().with_numerics(NumericsPolicy::Exact);
    let (seq, _) = TvL1Solver::sequential(p)
        .flow_with_ctx(&pair.i0, &pair.i1, None, &exact)
        .expect("valid frames");
    let tiled_backend = TiledSolver::new(TileConfig::new(40, 32, 2, 2).expect("valid config"));
    let (tiled, _) = TvL1Solver::with_backend(p, tiled_backend)
        .flow_with_ctx(&pair.i0, &pair.i1, None, &exact)
        .expect("valid frames");
    assert_eq!(seq.u1.as_slice(), tiled.u1.as_slice());
    assert_eq!(seq.u2.as_slice(), tiled.u2.as_slice());
}

#[test]
fn flow_error_decreases_with_inner_iterations() {
    let scene = NoiseTexture::new(4);
    let pair = render_pair(&scene, 80, 60, Motion::Translation { du: 3.0, dv: 0.0 });
    let mut last_aee = f64::INFINITY;
    for iters in [2u32, 10, 40] {
        let p = TvL1Params::new(38.0, ChambolleParams::with_iterations(iters), 3, 4, 4)
            .expect("valid params");
        let (flow, _) = TvL1Solver::sequential(p)
            .flow(&pair.i0, &pair.i1)
            .expect("valid frames");
        let aee = average_endpoint_error(&flow, &pair.truth);
        assert!(
            aee < last_aee * 1.2,
            "error should not grow materially with more inner iterations: {last_aee} -> {aee}"
        );
        last_aee = aee;
    }
    assert!(last_aee < 0.5, "final AEE {last_aee}");
}
