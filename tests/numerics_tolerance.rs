//! The Fast-tier accuracy contract, pinned across every axis that changes
//! its code path.
//!
//! The `Exact` tier promises bit equality; the `Fast` tier promises the
//! paper's validation model instead — agreement with the reference solve
//! within an energy/duality-gap tolerance
//! ([`NumericsPolicy::ENERGY_RTOL`]) and a per-pixel bound
//! ([`NumericsPolicy::PIXEL_ATOL`]) on unit-range images. This harness
//! sweeps kernel backends, thread counts and iteration budgets (which
//! exercise different K-deep temporal-fusion tails) and checks both bounds,
//! plus the determinism the Fast tier *does* still guarantee: identical
//! results across thread counts for a fixed backend.

use std::sync::Arc;

use chambolle::core::{
    chambolle_denoise_with_ctx, rof_energy, ChambolleParams, ExecCtx, KernelBackend, NumericsPolicy,
};
use chambolle::imaging::{Grid, NoiseTexture, Scene};
use chambolle::par::ThreadPool;

fn supported_backends() -> Vec<KernelBackend> {
    [
        KernelBackend::Scalar,
        KernelBackend::Sse2,
        KernelBackend::Avx2,
        KernelBackend::Avx512,
    ]
    .into_iter()
    .filter(KernelBackend::is_supported)
    .collect()
}

fn solve(
    v: &Grid<f32>,
    params: &ChambolleParams,
    numerics: NumericsPolicy,
    backend: KernelBackend,
    threads: Option<usize>,
) -> Grid<f32> {
    let mut ctx = ExecCtx::default()
        .with_numerics(numerics)
        .with_backend(backend);
    if let Some(n) = threads {
        ctx = ctx.with_pool(Arc::new(ThreadPool::new(n)));
    }
    let (u, _) = chambolle_denoise_with_ctx(v, params, &ctx).expect("no cancellation token");
    u
}

/// Max |Δpixel| and relative ROF-energy disagreement of `fast` vs `exact`.
fn deviations(
    exact: &Grid<f32>,
    fast: &Grid<f32>,
    v: &Grid<f32>,
    params: &ChambolleParams,
) -> (f32, f64) {
    let pixel = exact
        .as_slice()
        .iter()
        .zip(fast.as_slice())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    let e_exact = rof_energy(exact, v, params.theta);
    let e_fast = rof_energy(fast, v, params.theta);
    let energy = ((e_exact - e_fast) / e_exact.abs().max(f64::MIN_POSITIVE)).abs();
    (pixel, energy)
}

#[test]
fn fast_tier_stays_within_tolerance_across_backends_and_budgets() {
    let v = NoiseTexture::new(17).render(96, 80);
    // Budgets straddling the temporal-fusion depth: a partial sweep, exact
    // multiples, and a long run with a ragged tail.
    for iterations in [1u32, 3, 4, 8, 30, 101] {
        let params = ChambolleParams::with_iterations(iterations);
        let exact = solve(
            &v,
            &params,
            NumericsPolicy::Exact,
            KernelBackend::active(),
            None,
        );
        for backend in supported_backends() {
            let fast = solve(&v, &params, NumericsPolicy::Fast, backend, None);
            let (pixel, energy) = deviations(&exact, &fast, &v, &params);
            assert!(
                pixel <= NumericsPolicy::PIXEL_ATOL,
                "{backend:?} iters={iterations}: pixel deviation {pixel}"
            );
            assert!(
                energy <= NumericsPolicy::ENERGY_RTOL,
                "{backend:?} iters={iterations}: energy deviation {energy}"
            );
        }
    }
}

#[test]
fn fast_tier_stays_within_tolerance_under_threading() {
    let v = NoiseTexture::new(23).render(120, 90);
    let params = ChambolleParams::with_iterations(25);
    let exact = solve(
        &v,
        &params,
        NumericsPolicy::Exact,
        KernelBackend::active(),
        None,
    );
    for backend in supported_backends() {
        for threads in [1usize, 2, 4] {
            let fast = solve(&v, &params, NumericsPolicy::Fast, backend, Some(threads));
            let (pixel, energy) = deviations(&exact, &fast, &v, &params);
            assert!(
                pixel <= NumericsPolicy::PIXEL_ATOL && energy <= NumericsPolicy::ENERGY_RTOL,
                "{backend:?} threads={threads}: pixel {pixel}, energy {energy}"
            );
        }
    }
}

#[test]
fn fast_tier_is_thread_count_invariant_per_backend() {
    // Not a tolerance: for a fixed backend the banded Fast path runs the
    // same full-width row kernels regardless of the band split, so thread
    // count must not change a single bit.
    let v = NoiseTexture::new(29).render(110, 70);
    let params = ChambolleParams::with_iterations(18);
    for backend in supported_backends() {
        let one = solve(&v, &params, NumericsPolicy::Fast, backend, Some(1));
        for threads in [2usize, 3, 4] {
            let many = solve(&v, &params, NumericsPolicy::Fast, backend, Some(threads));
            assert_eq!(
                one.as_slice(),
                many.as_slice(),
                "{backend:?}: fast tier drifted between 1 and {threads} threads"
            );
        }
    }
}

#[test]
fn exact_tier_is_bit_identical_across_backends() {
    // The flank the Fast tier must never erode: Exact solves replay the
    // scalar op order on every backend, bit for bit.
    let v = NoiseTexture::new(31).render(90, 60);
    let params = ChambolleParams::with_iterations(20);
    let reference = solve(
        &v,
        &params,
        NumericsPolicy::Exact,
        KernelBackend::Scalar,
        None,
    );
    for backend in supported_backends() {
        let u = solve(&v, &params, NumericsPolicy::Exact, backend, None);
        assert_eq!(reference.as_slice(), u.as_slice(), "{backend:?}");
    }
}
