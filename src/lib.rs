//! Facade crate for the reproduction of *"A High-Performance Parallel
//! Implementation of the Chambolle Algorithm"* (Akin et al., DATE 2011).
//!
//! Re-exports the whole workspace under one roof:
//!
//! - [`imaging`] — grids, pyramids, warping, synthetic ground-truth scenes,
//!   flow metrics and I/O;
//! - [`fixed`] — the accelerator's Q-format datapath and LUT square root;
//! - [`core`] — the Chambolle solver (sequential and the paper's tiled
//!   parallel scheme), TV-L1, baselines, diagnostics, and the tiered
//!   numerics policy (`Exact` bit-reproducible kernels vs the `Fast`
//!   FMA/temporally-fused tier, selected per call through
//!   [`core::ExecCtx`] or `CHAMBOLLE_NUMERICS=fast`);
//! - [`hwsim`] — the bit- and cycle-faithful simulator of the FPGA
//!   architecture with its timing and area models;
//! - [`par`] — the persistent worker pool behind every parallel code path:
//!   spawn-once park/unpark workers, deterministic row partitions, and a
//!   work-stealing tile queue;
//! - [`telemetry`] — the dependency-free observability layer: metric
//!   registry, span timers, event sinks (JSON lines, Chrome trace) and the
//!   machine-readable [`telemetry::RunReport`];
//! - [`service`] — the long-running request service: bounded admission
//!   queue, micro-batching of compatible requests, per-request deadlines
//!   with cooperative cancellation, priority lanes, graceful drain-based
//!   shutdown, and a framed localhost TCP front-end;
//! - [`tune`] — the auto-tuning subsystem: the [`tune::Tunables`] knob
//!   registry behind every schedule constant in the stack, the
//!   coordinate-descent search engine of the `tune` binary, and the
//!   fingerprinted per-machine `chambolle.tuning_profile.v2` store loaded
//!   at startup (`CHAMBOLLE_PROFILE`) with non-panicking fallback. Every
//!   tunable schedule under the `Exact` numerics tier is bit-identical to
//!   the defaults — scheduling changes time, never pixels; only an explicit
//!   opt-in to the `Fast` tier trades bit-reproducibility for speed.
//!
//! On top of the re-exports, the facade adds the [`enum@Error`] umbrella —
//! one enum with a `From` impl per crate-local error type, so application
//! code can use `?` across the whole stack — and a [`prelude`] with the
//! handful of types almost every program needs.
//!
//! The binaries `chambolle_flow` and `chambolle_denoise` and the
//! `examples/` directory are built from this crate; the workspace-level
//! integration tests live in `tests/`.
//!
//! # Examples
//!
//! Estimate optical flow on a synthetic scene and check it against the
//! analytic ground truth:
//!
//! ```
//! use chambolle::core::{TvL1Params, TvL1Solver};
//! use chambolle::imaging::{average_endpoint_error, render_pair, Motion, NoiseTexture};
//!
//! let scene = NoiseTexture::new(42);
//! let pair = render_pair(&scene, 64, 48, Motion::Translation { du: 1.0, dv: 0.5 });
//! let solver = TvL1Solver::sequential(TvL1Params::default());
//! let (flow, _) = solver.flow(&pair.i0, &pair.i1)?;
//! assert!(average_endpoint_error(&flow, &pair.truth) < 0.25);
//! # Ok::<(), chambolle::core::FlowError>(())
//! ```

#![warn(missing_docs)]

pub mod error;
pub mod prelude;

pub use error::{Error, Result};

pub use chambolle_core as core;
pub use chambolle_fixed as fixed;
pub use chambolle_hwsim as hwsim;
pub use chambolle_imaging as imaging;
pub use chambolle_par as par;
pub use chambolle_service as service;
pub use chambolle_telemetry as telemetry;
pub use chambolle_tune as tune;
