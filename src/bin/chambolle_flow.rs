//! `chambolle_flow` — TV-L1 optical flow between two PGM frames.
//!
//! ```text
//! chambolle_flow I0.pgm I1.pgm [options]
//!   --out FILE.flo      write the flow in Middlebury .flo format
//!   --vis FILE.ppm      write a Middlebury color visualization
//!   --iterations N      Chambolle iterations per inner solve [30]
//!   --lambda L          data weight (unit-intensity scale)   [38]
//!   --warps N           warps per pyramid level              [5]
//!   --levels N          pyramid levels                       [5]
//!   --backend B         seq | tiled | fpga (TV-L1 inner)     [seq]
//!   --threads N         size the shared worker pool explicitly; the TV-L1
//!                       outer loop and the seq/tiled inner solvers all run
//!                       on it, bit-identical to the 1-thread result
//!                       (hs/bm estimators and fpga inner ignore it)
//!   --method M          tvl1 | hs | bm (estimator)           [tvl1]
//!   --median            3x3 median filter between warps
//!   --telemetry P       write a JSON run report (metrics + run summary) to P
//!   --profile P         load a tuning profile (chambolle.tuning_profile.v2,
//!                       written by the `tune` bin); takes precedence over
//!                       CHAMBOLLE_PROFILE. A missing or invalid profile
//!                       falls back to defaults with a warning.
//! ```

use std::process::ExitCode;
use std::sync::Arc;

use chambolle::core::{
    block_matching_flow, BlockMatchingParams, ChambolleParams, HornSchunck, HornSchunckParams,
    ParallelSolver, SequentialSolver, TileConfig, TiledSolver, TvDenoiser, TvL1Params, TvL1Solver,
};
use chambolle::hwsim::{AccelConfig, AccelDenoiser, ChambolleAccel};
use chambolle::imaging::FlowField;
use chambolle::imaging::{colorize_flow, read_pgm, write_flo, write_ppm};
use chambolle::par::ThreadPool;
use chambolle::telemetry::json::JsonValue;
use chambolle::telemetry::report::RunReport;
use chambolle::telemetry::Telemetry;

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
struct Options {
    input0: String,
    input1: String,
    out: Option<String>,
    vis: Option<String>,
    iterations: u32,
    lambda: f32,
    warps: u32,
    levels: usize,
    backend: Backend,
    threads: Option<usize>,
    method: Method,
    median: bool,
    telemetry: Option<String>,
    profile: Option<String>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Method {
    TvL1,
    HornSchunck,
    BlockMatching,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Backend {
    Sequential,
    Tiled,
    Fpga,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut positional = Vec::new();
    let mut opts = Options {
        input0: String::new(),
        input1: String::new(),
        out: None,
        vis: None,
        iterations: 30,
        lambda: 38.0,
        warps: 5,
        levels: 5,
        backend: Backend::Sequential,
        threads: None,
        method: Method::TvL1,
        median: false,
        telemetry: None,
        profile: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--out" => opts.out = Some(value("--out")?),
            "--vis" => opts.vis = Some(value("--vis")?),
            "--iterations" => {
                opts.iterations = value("--iterations")?
                    .parse()
                    .map_err(|_| "invalid --iterations".to_string())?
            }
            "--lambda" => {
                opts.lambda = value("--lambda")?
                    .parse()
                    .map_err(|_| "invalid --lambda".to_string())?
            }
            "--warps" => {
                opts.warps = value("--warps")?
                    .parse()
                    .map_err(|_| "invalid --warps".to_string())?
            }
            "--levels" => {
                opts.levels = value("--levels")?
                    .parse()
                    .map_err(|_| "invalid --levels".to_string())?
            }
            "--backend" => {
                opts.backend = match value("--backend")?.as_str() {
                    "seq" => Backend::Sequential,
                    "tiled" => Backend::Tiled,
                    "fpga" => Backend::Fpga,
                    other => return Err(format!("unknown backend {other:?}")),
                }
            }
            "--threads" => {
                let threads: usize = value("--threads")?
                    .parse()
                    .map_err(|_| "invalid --threads".to_string())?;
                if threads == 0 {
                    return Err("--threads must be at least 1".into());
                }
                opts.threads = Some(threads);
            }
            "--method" => {
                opts.method = match value("--method")?.as_str() {
                    "tvl1" => Method::TvL1,
                    "hs" => Method::HornSchunck,
                    "bm" => Method::BlockMatching,
                    other => return Err(format!("unknown method {other:?}")),
                }
            }
            "--median" => opts.median = true,
            "--telemetry" => opts.telemetry = Some(value("--telemetry")?),
            "--profile" => opts.profile = Some(value("--profile")?),
            "--help" | "-h" => return Err("help".into()),
            other if other.starts_with('-') => return Err(format!("unknown option {other:?}")),
            other => positional.push(other.to_string()),
        }
    }
    if positional.len() != 2 {
        return Err(format!(
            "expected exactly two input frames, got {}",
            positional.len()
        ));
    }
    opts.input0 = positional.remove(0);
    opts.input1 = positional.remove(0);
    Ok(opts)
}

fn estimate(
    opts: &Options,
    i0: &chambolle::imaging::Image,
    i1: &chambolle::imaging::Image,
    telemetry: &Telemetry,
) -> chambolle::Result<FlowField> {
    match opts.method {
        Method::TvL1 => {
            let mut params = TvL1Params::new(
                opts.lambda,
                ChambolleParams::with_iterations(opts.iterations),
                opts.warps,
                5,
                opts.levels,
            )?;
            if opts.median {
                params = params.with_median_filter();
            }
            // One explicitly sized pool shared by the inner denoiser and the
            // TV-L1 outer-loop image operations.
            let pool = opts.threads.map(|threads| {
                Arc::new(ThreadPool::new(threads).with_telemetry(telemetry.clone()))
            });
            let backend: Box<dyn TvDenoiser> = match opts.backend {
                Backend::Sequential => match &pool {
                    Some(pool) => Box::new(ParallelSolver::with_pool(Arc::clone(pool))),
                    None => Box::new(SequentialSolver::new()),
                },
                Backend::Tiled => {
                    let solver =
                        TiledSolver::new(TileConfig::default()).with_telemetry(telemetry.clone());
                    Box::new(match &pool {
                        Some(pool) => solver.with_pool(Arc::clone(pool)),
                        None => solver,
                    })
                }
                Backend::Fpga => {
                    let mut accel = ChambolleAccel::new(AccelConfig::default());
                    accel.attach_telemetry(telemetry.clone());
                    Box::new(AccelDenoiser::new(accel))
                }
            };
            let mut solver = TvL1Solver::with_backend(params, backend);
            if let Some(pool) = pool {
                solver = solver.with_pool(pool);
            }
            let (flow, stats) = solver.flow(i0, i1)?;
            eprintln!("{stats}");
            Ok(flow)
        }
        Method::HornSchunck => {
            let params = HornSchunckParams::new(0.05, opts.iterations, opts.warps, opts.levels)?;
            Ok(HornSchunck::new(params).flow(i0, i1)?)
        }
        Method::BlockMatching => Ok(block_matching_flow(
            i0,
            i1,
            &BlockMatchingParams::default(),
        )?),
    }
}

/// Applies `--profile` (taking precedence over `CHAMBOLLE_PROFILE`): loads
/// the profile with total fallback to defaults and installs the result as
/// the process-wide active schedule. Never fails; a bad profile warns.
fn apply_profile(path: &str, telemetry: &Telemetry) {
    let (tunables, err) = chambolle::tune::load_with_fallback(Some(path), telemetry);
    if let Some(err) = err {
        eprintln!("warning: tuning profile {path:?} ignored: {err}");
    }
    let _ = chambolle::tune::install(tunables);
}

fn run(opts: &Options) -> chambolle::Result<()> {
    let i0 = read_pgm(&opts.input0)?;
    let i1 = read_pgm(&opts.input1)?;
    let telemetry = if opts.telemetry.is_some() {
        Telemetry::null()
    } else {
        Telemetry::disabled()
    };
    if let Some(path) = &opts.profile {
        apply_profile(path, &telemetry);
    }
    let flow = estimate(opts, &i0, &i1, &telemetry)?;

    let (mu, mv) = flow.mean();
    eprintln!(
        "flow {}x{}: mean ({mu:.3}, {mv:.3}) px, max |u| {:.3} px",
        flow.width(),
        flow.height(),
        flow.max_magnitude()
    );
    if let Some(path) = &opts.out {
        write_flo(path, &flow)?;
        eprintln!("wrote {path}");
    }
    if let Some(path) = &opts.vis {
        write_ppm(path, &colorize_flow(&flow, None))?;
        eprintln!("wrote {path}");
    }
    if let Some(path) = &opts.telemetry {
        let mut report = RunReport::from_telemetry("chambolle_flow", &telemetry);
        report.add_section(
            "run",
            JsonValue::Object(vec![
                ("input0".into(), opts.input0.as_str().into()),
                ("input1".into(), opts.input1.as_str().into()),
                ("width".into(), (flow.width() as u64).into()),
                ("height".into(), (flow.height() as u64).into()),
                ("iterations".into(), u64::from(opts.iterations).into()),
                ("mean_u".into(), f64::from(mu).into()),
                ("mean_v".into(), f64::from(mv).into()),
                (
                    "max_magnitude".into(),
                    f64::from(flow.max_magnitude()).into(),
                ),
            ]),
        );
        report.save(path)?;
        eprintln!("wrote telemetry report {path}");
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            if msg != "help" {
                eprintln!("error: {msg}");
            }
            eprintln!("usage: chambolle_flow I0.pgm I1.pgm [--out F.flo] [--vis F.ppm] [--iterations N] [--lambda L] [--warps N] [--levels N] [--backend seq|tiled|fpga] [--threads N] [--method tvl1|hs|bm] [--median] [--telemetry REPORT.json] [--profile PROFILE.json]");
            eprintln!("  --threads N sizes the shared worker pool explicitly; the TV-L1 outer loop and the seq/tiled inner solvers run on it, bit-identical to the 1-thread result (hs/bm and fpga ignore it)");
            eprintln!("  --profile P loads a chambolle.tuning_profile.v2 written by the tune bin (takes precedence over CHAMBOLLE_PROFILE; invalid profiles fall back to defaults with a warning)");
            return if msg == "help" {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(2)
            };
        }
    };
    match run(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_minimal_invocation() {
        let o = parse_args(&args(&["a.pgm", "b.pgm"])).unwrap();
        assert_eq!(o.input0, "a.pgm");
        assert_eq!(o.input1, "b.pgm");
        assert_eq!(o.iterations, 30);
        assert_eq!(o.backend, Backend::Sequential);
        assert!(!o.median);
    }

    #[test]
    fn parses_all_options() {
        let o = parse_args(&args(&[
            "a.pgm",
            "--out",
            "f.flo",
            "b.pgm",
            "--vis",
            "f.ppm",
            "--iterations",
            "100",
            "--lambda",
            "50",
            "--warps",
            "3",
            "--levels",
            "4",
            "--backend",
            "fpga",
            "--threads",
            "4",
            "--median",
            "--telemetry",
            "flow.json",
        ]))
        .unwrap();
        assert_eq!(o.out.as_deref(), Some("f.flo"));
        assert_eq!(o.vis.as_deref(), Some("f.ppm"));
        assert_eq!(o.iterations, 100);
        assert_eq!(o.lambda, 50.0);
        assert_eq!(o.warps, 3);
        assert_eq!(o.levels, 4);
        assert_eq!(o.backend, Backend::Fpga);
        assert_eq!(o.threads, Some(4));
        assert!(o.median);
        assert_eq!(o.method, Method::TvL1);
        assert_eq!(o.telemetry.as_deref(), Some("flow.json"));
        assert_eq!(o.profile, None);

        let o = parse_args(&args(&["a.pgm", "b.pgm", "--profile", "p.json"])).unwrap();
        assert_eq!(o.profile.as_deref(), Some("p.json"));
        assert!(parse_args(&args(&["a.pgm", "b.pgm", "--profile"])).is_err());
    }

    #[test]
    fn parses_methods() {
        for (name, want) in [
            ("tvl1", Method::TvL1),
            ("hs", Method::HornSchunck),
            ("bm", Method::BlockMatching),
        ] {
            let o = parse_args(&args(&["a", "b", "--method", name])).unwrap();
            assert_eq!(o.method, want);
        }
        assert!(parse_args(&args(&["a", "b", "--method", "sift"])).is_err());
    }

    #[test]
    fn rejects_bad_invocations() {
        assert!(parse_args(&args(&["a.pgm"])).is_err());
        assert!(parse_args(&args(&["a", "b", "c"])).is_err());
        assert!(parse_args(&args(&["a", "b", "--backend", "gpu"])).is_err());
        assert!(parse_args(&args(&["a", "b", "--iterations", "x"])).is_err());
        assert!(parse_args(&args(&["a", "b", "--threads", "0"])).is_err());
        assert!(parse_args(&args(&["a", "b", "--frob"])).is_err());
        assert!(parse_args(&args(&["a", "b", "--out"])).is_err());
        assert_eq!(parse_args(&args(&["--help"])).unwrap_err(), "help");
    }
}
