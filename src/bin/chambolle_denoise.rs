//! `chambolle_denoise` — ROF/TV denoising of a PGM image with the Chambolle
//! solver (the exact computation the DATE'11 accelerator performs).
//!
//! ```text
//! chambolle_denoise IN.pgm OUT.pgm [options]
//!   --iterations N   Chambolle iterations                  [100]
//!   --theta T        coupling constant θ                   [0.25]
//!   --backend B      seq | tiled | fpga                    [tiled]
//!   --threads N      size the shared worker pool explicitly; `seq` upgrades
//!                    to the bit-identical row-parallel solver, `tiled` runs
//!                    its windows on N workers (fpga/--gap-tol ignore it)
//!   --gap-tol G      stop early once the duality gap < G (seq backend only)
//!   --telemetry P    write a JSON run report (metrics + run summary) to P
//!   --profile P      load a tuning profile (chambolle.tuning_profile.v2,
//!                    written by the `tune` bin); takes precedence over the
//!                    CHAMBOLLE_PROFILE environment variable. A missing or
//!                    invalid profile falls back to defaults with a warning.
//! ```

use std::process::ExitCode;

use std::sync::Arc;

use chambolle::core::{
    chambolle_denoise_monitored_with_ctx, rof_energy, ChambolleParams, ExecCtx, ParallelSolver,
    SequentialSolver, TileConfig, TiledSolver, TvDenoiser,
};
use chambolle::hwsim::{AccelConfig, AccelDenoiser, ChambolleAccel};
use chambolle::imaging::{read_pgm, write_pgm};
use chambolle::par::ThreadPool;
use chambolle::telemetry::json::JsonValue;
use chambolle::telemetry::report::RunReport;
use chambolle::telemetry::Telemetry;

#[derive(Debug, Clone, PartialEq)]
struct Options {
    input: String,
    output: String,
    iterations: u32,
    theta: f32,
    backend: String,
    threads: Option<usize>,
    gap_tol: Option<f64>,
    telemetry: Option<String>,
    profile: Option<String>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut positional = Vec::new();
    let mut opts = Options {
        input: String::new(),
        output: String::new(),
        iterations: 100,
        theta: 0.25,
        backend: "tiled".into(),
        threads: None,
        gap_tol: None,
        telemetry: None,
        profile: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--iterations" => {
                opts.iterations = value("--iterations")?
                    .parse()
                    .map_err(|_| "invalid --iterations".to_string())?
            }
            "--theta" => {
                opts.theta = value("--theta")?
                    .parse()
                    .map_err(|_| "invalid --theta".to_string())?
            }
            "--backend" => opts.backend = value("--backend")?,
            "--threads" => {
                let threads: usize = value("--threads")?
                    .parse()
                    .map_err(|_| "invalid --threads".to_string())?;
                if threads == 0 {
                    return Err("--threads must be at least 1".into());
                }
                opts.threads = Some(threads);
            }
            "--gap-tol" => {
                opts.gap_tol = Some(
                    value("--gap-tol")?
                        .parse()
                        .map_err(|_| "invalid --gap-tol".to_string())?,
                )
            }
            "--telemetry" => opts.telemetry = Some(value("--telemetry")?),
            "--profile" => opts.profile = Some(value("--profile")?),
            "--help" | "-h" => return Err("help".into()),
            other if other.starts_with('-') => return Err(format!("unknown option {other:?}")),
            other => positional.push(other.to_string()),
        }
    }
    if positional.len() != 2 {
        return Err(format!(
            "expected input and output paths, got {} positionals",
            positional.len()
        ));
    }
    opts.input = positional.remove(0);
    opts.output = positional.remove(0);
    Ok(opts)
}

/// Applies `--profile` (taking precedence over `CHAMBOLLE_PROFILE`): loads
/// the profile with total fallback to defaults and installs the result as
/// the process-wide active schedule. Never fails; a bad profile warns.
fn apply_profile(path: &str, telemetry: &Telemetry) {
    let (tunables, err) = chambolle::tune::load_with_fallback(Some(path), telemetry);
    if let Some(err) = err {
        eprintln!("warning: tuning profile {path:?} ignored: {err}");
    }
    let _ = chambolle::tune::install(tunables);
}

fn run(opts: &Options) -> chambolle::Result<()> {
    let v = read_pgm(&opts.input)?;
    let params = ChambolleParams::new(opts.theta, opts.theta / 4.0, opts.iterations)?;
    let telemetry = if opts.telemetry.is_some() {
        Telemetry::null()
    } else {
        Telemetry::disabled()
    };
    if let Some(path) = &opts.profile {
        apply_profile(path, &telemetry);
    }

    let u = if let Some(tol) = opts.gap_tol {
        let ctx = ExecCtx::default().with_telemetry(telemetry.clone());
        let report = chambolle_denoise_monitored_with_ctx(&v, &params, 10, tol, &ctx)?;
        eprintln!(
            "converged in {} iterations (duality gap {:.4})",
            report.iterations_run,
            report.final_gap()
        );
        report.u
    } else {
        // One explicitly sized pool shared by whichever backend runs.
        let pool = opts
            .threads
            .map(|threads| Arc::new(ThreadPool::new(threads).with_telemetry(telemetry.clone())));
        let backend: Box<dyn TvDenoiser> = match opts.backend.as_str() {
            "seq" => match &pool {
                Some(pool) => Box::new(ParallelSolver::with_pool(Arc::clone(pool))),
                None => Box::new(SequentialSolver::new()),
            },
            "tiled" => {
                let solver =
                    TiledSolver::new(TileConfig::default()).with_telemetry(telemetry.clone());
                Box::new(match &pool {
                    Some(pool) => solver.with_pool(Arc::clone(pool)),
                    None => solver,
                })
            }
            "fpga" => {
                let mut accel = ChambolleAccel::new(AccelConfig::default());
                accel.attach_telemetry(telemetry.clone());
                Box::new(AccelDenoiser::new(accel))
            }
            other => return Err(format!("unknown backend {other:?}").into()),
        };
        backend.denoise(&v, &params)
    };

    let energy_in = rof_energy(&v, &v, params.theta);
    let energy_out = rof_energy(&u, &v, params.theta);
    eprintln!("ROF energy: {energy_in:.2} -> {energy_out:.2}");
    write_pgm(&opts.output, &u)?;
    eprintln!("wrote {}", opts.output);

    if let Some(path) = &opts.telemetry {
        let (w, h) = v.dims();
        let mut report = RunReport::from_telemetry("chambolle_denoise", &telemetry);
        report.add_section(
            "run",
            JsonValue::Object(vec![
                ("input".into(), opts.input.as_str().into()),
                ("output".into(), opts.output.as_str().into()),
                ("backend".into(), opts.backend.as_str().into()),
                ("width".into(), (w as u64).into()),
                ("height".into(), (h as u64).into()),
                ("iterations".into(), u64::from(params.iterations).into()),
                ("theta".into(), f64::from(params.theta).into()),
                ("energy_in".into(), energy_in.into()),
                ("energy_out".into(), energy_out.into()),
            ]),
        );
        report.save(path)?;
        eprintln!("wrote telemetry report {path}");
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            if msg != "help" {
                eprintln!("error: {msg}");
            }
            eprintln!("usage: chambolle_denoise IN.pgm OUT.pgm [--iterations N] [--theta T] [--backend seq|tiled|fpga] [--threads N] [--gap-tol G] [--telemetry REPORT.json] [--profile PROFILE.json]");
            eprintln!("  --threads N sizes the shared worker pool explicitly: seq upgrades to the bit-identical row-parallel solver, tiled runs its windows on N workers (fpga and --gap-tol ignore it)");
            eprintln!("  --profile P loads a chambolle.tuning_profile.v2 written by the tune bin (takes precedence over CHAMBOLLE_PROFILE; invalid profiles fall back to defaults with a warning)");
            return if msg == "help" {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(2)
            };
        }
    };
    match run(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_defaults_and_options() {
        let o = parse_args(&args(&["in.pgm", "out.pgm"])).unwrap();
        assert_eq!(o.iterations, 100);
        assert_eq!(o.backend, "tiled");
        assert_eq!(o.threads, None);
        assert_eq!(o.gap_tol, None);

        let o = parse_args(&args(&[
            "in.pgm",
            "out.pgm",
            "--iterations",
            "50",
            "--theta",
            "0.5",
            "--backend",
            "fpga",
            "--threads",
            "4",
            "--gap-tol",
            "0.1",
            "--telemetry",
            "report.json",
        ]))
        .unwrap();
        assert_eq!(o.iterations, 50);
        assert_eq!(o.theta, 0.5);
        assert_eq!(o.backend, "fpga");
        assert_eq!(o.threads, Some(4));
        assert_eq!(o.gap_tol, Some(0.1));
        assert_eq!(o.telemetry.as_deref(), Some("report.json"));
        assert_eq!(o.profile, None);

        let o = parse_args(&args(&["in.pgm", "out.pgm", "--profile", "p.json"])).unwrap();
        assert_eq!(o.profile.as_deref(), Some("p.json"));
        assert!(parse_args(&args(&["in.pgm", "out.pgm", "--profile"])).is_err());
    }

    #[test]
    fn rejects_bad_invocations() {
        assert!(parse_args(&args(&["only-one"])).is_err());
        assert!(parse_args(&args(&["a", "b", "--theta", "abc"])).is_err());
        assert!(parse_args(&args(&["a", "b", "--bogus"])).is_err());
        assert!(parse_args(&args(&["a", "b", "--threads", "0"])).is_err());
        assert!(parse_args(&args(&["a", "b", "--threads", "x"])).is_err());
    }
}
