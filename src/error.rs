//! The workspace-wide error umbrella.
//!
//! Every fallible entry point in the workspace reports a crate-local error
//! type (invalid parameters, I/O, cancellation, admission rejection, …).
//! Application code that mixes the crates — the binaries and the
//! `examples/` directory here — previously had to erase them into
//! `Box<dyn Error>`; [`enum@Error`] keeps them as one matchable enum with a
//! `From` impl per source type, so `?` works across the whole stack while
//! the variant (and [`std::error::Error::source`]) stays inspectable.

use std::fmt;

use chambolle_core::{Cancelled, FlowError, GuardError, InvalidParamsError};
use chambolle_fixed::PackWordError;
use chambolle_hwsim::HwParamsError;
use chambolle_imaging::{GridShapeError, PnmError};
use chambolle_service::{RejectReason, ServiceError};
use chambolle_telemetry::json::JsonError;

/// `Result` alias over the umbrella [`enum@Error`].
pub type Result<T> = std::result::Result<T, Error>;

/// One error type covering every crate of the workspace.
///
/// # Examples
///
/// ```
/// use chambolle::core::{ChambolleParams, TvL1Params, TvL1Solver};
/// use chambolle::imaging::Grid;
///
/// fn solve() -> chambolle::Result<()> {
///     // `?` lifts the per-crate errors into `chambolle::Error`.
///     let params = ChambolleParams::new(0.25, 0.06, 5)?; // InvalidParamsError
///     let frame = Grid::new(16, 16, 0.5f32);
///     let solver = TvL1Solver::sequential(TvL1Params::default());
///     let _ = solver.flow(&frame, &frame)?; // FlowError
///     Ok(())
/// }
/// solve().unwrap();
/// ```
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// Rejected solver or tiling parameters (`chambolle-core`).
    Params(InvalidParamsError),
    /// TV-L1 optical-flow failure (`chambolle-core`).
    Flow(FlowError),
    /// Guarded-pipeline failure after recovery was exhausted
    /// (`chambolle-core`).
    Guard(GuardError),
    /// Cooperative cancellation or deadline expiry (`chambolle-core`).
    Cancelled(Cancelled),
    /// Mismatched grid dimensions (`chambolle-imaging`).
    GridShape(GridShapeError),
    /// PGM/PPM/FLO decode or encode failure (`chambolle-imaging`).
    Pnm(PnmError),
    /// Request-service solve failure (`chambolle-service`).
    Service(ServiceError),
    /// Request-service admission rejection (`chambolle-service`).
    Rejected(RejectReason),
    /// Rejected hardware-model parameters (`chambolle-hwsim`).
    HwParams(HwParamsError),
    /// Fixed-point word packing failure (`chambolle-fixed`).
    PackWord(PackWordError),
    /// Telemetry JSON parse failure (`chambolle-telemetry`).
    Json(JsonError),
    /// Operating-system I/O failure.
    Io(std::io::Error),
    /// Free-form application error (CLI argument parsing and the like).
    Msg(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Params(e) => e.fmt(f),
            Error::Flow(e) => e.fmt(f),
            Error::Guard(e) => e.fmt(f),
            Error::Cancelled(e) => e.fmt(f),
            Error::GridShape(e) => e.fmt(f),
            Error::Pnm(e) => e.fmt(f),
            Error::Service(e) => e.fmt(f),
            Error::Rejected(e) => e.fmt(f),
            Error::HwParams(e) => e.fmt(f),
            Error::PackWord(e) => e.fmt(f),
            Error::Json(e) => e.fmt(f),
            Error::Io(e) => e.fmt(f),
            Error::Msg(msg) => f.write_str(msg),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Params(e) => Some(e),
            Error::Flow(e) => Some(e),
            Error::Guard(e) => Some(e),
            Error::Cancelled(e) => Some(e),
            Error::GridShape(e) => Some(e),
            Error::Pnm(e) => Some(e),
            Error::Service(e) => Some(e),
            Error::Rejected(e) => Some(e),
            Error::HwParams(e) => Some(e),
            Error::PackWord(e) => Some(e),
            Error::Json(e) => Some(e),
            Error::Io(e) => Some(e),
            Error::Msg(_) => None,
        }
    }
}

macro_rules! impl_from {
    ($($source:ty => $variant:ident),* $(,)?) => {
        $(impl From<$source> for Error {
            fn from(e: $source) -> Self {
                Error::$variant(e)
            }
        })*
    };
}

impl_from! {
    InvalidParamsError => Params,
    FlowError => Flow,
    GuardError => Guard,
    Cancelled => Cancelled,
    GridShapeError => GridShape,
    PnmError => Pnm,
    ServiceError => Service,
    RejectReason => Rejected,
    HwParamsError => HwParams,
    PackWordError => PackWord,
    JsonError => Json,
    std::io::Error => Io,
}

impl From<String> for Error {
    fn from(msg: String) -> Self {
        Error::Msg(msg)
    }
}

impl From<&str> for Error {
    fn from(msg: &str) -> Self {
        Error::Msg(msg.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_impls_preserve_the_source() {
        let source = chambolle_core::ChambolleParams::new(-1.0, 0.2, 3).unwrap_err();
        let err = Error::from(source);
        assert!(matches!(err, Error::Params(_)));
        assert!(std::error::Error::source(&err).is_some());
        assert!(err.to_string().contains("invalid solver parameters"));
    }

    #[test]
    fn question_mark_lifts_across_crates() {
        fn inner() -> Result<()> {
            chambolle_core::ChambolleParams::new(-1.0, 0.2, 3)?;
            Ok(())
        }
        assert!(matches!(inner(), Err(Error::Params(_))));
    }

    #[test]
    fn message_errors_display_verbatim() {
        let err = Error::from("bad flag");
        assert_eq!(err.to_string(), "bad flag");
        assert!(std::error::Error::source(&err).is_none());
    }
}
