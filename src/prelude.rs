//! One-line import for applications built on the workspace:
//! `use chambolle::prelude::*;`.
//!
//! Pulls in the umbrella [`enum@Error`]/[`Result`] pair, the solver entry
//! points and parameter types, the execution context ([`ExecCtx`]) and
//! kernel backend selector, and the image substrate the solvers consume.

pub use crate::error::{Error, Result};

pub use chambolle_core::{
    chambolle_denoise, chambolle_denoise_with_ctx, chambolle_iterate, chambolle_iterate_with_ctx,
    CancelToken, ChambolleParams, DegradationPolicy, ExecCtx, GuardedDenoiser, KernelBackend,
    NumericsPolicy, ParallelSolver, RecoveryPolicy, SequentialSolver, TileConfig, TiledSolver,
    TvDenoiser, TvL1Params, TvL1Solver,
};
pub use chambolle_imaging::{
    read_pgm, write_pgm, FlowField, Grid, Image, Pyramid, WarpLinearization,
};
pub use chambolle_par::{SimdLevel, ThreadPool};
pub use chambolle_telemetry::Telemetry;
