//! Offline drop-in subset of the `criterion` crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this crate provides the slice of criterion the benches use: `Criterion`,
//! `BenchmarkGroup`, `BenchmarkId`, `Bencher::iter`, [`black_box`], and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Instead of statistical sampling it times a small fixed number of
//! iterations per benchmark and prints one line each. That keeps
//! `cargo test` fast (the workspace benches are built with `harness =
//! false` and `test = true`, so the bench mains run during the test
//! suite) while still exercising every bench body end to end.

use std::time::Instant;

/// Iterations timed per benchmark. One warms up, the rest are averaged.
const RUNS: u32 = 3;

/// Top-level benchmark driver (stands in for `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_owned(),
        }
    }
}

/// A named set of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Accepted for API compatibility; this runner's iteration count is
    /// fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; this runner's timing is fixed.
    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    /// Times `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &id.into().label, |b| f(b));
        self
    }

    /// Times `f` under `id`, passing `input` through to the closure.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&self.name, &id.into().label, |b| f(b, input));
        self
    }

    /// Ends the group (no-op beyond API compatibility).
    pub fn finish(&mut self) {}
}

/// A benchmark label, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A label of the form `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Passed to benchmark closures to time the measured body.
#[derive(Debug)]
pub struct Bencher {
    nanos: u128,
    iters: u32,
}

impl Bencher {
    /// Runs `f` [`RUNS`] times and records the average wall-clock time of
    /// all runs after the first (warm-up).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        let start = Instant::now();
        for _ in 1..RUNS {
            black_box(f());
        }
        self.nanos = start.elapsed().as_nanos();
        self.iters = RUNS - 1;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, label: &str, mut f: F) {
    let mut b = Bencher { nanos: 0, iters: 1 };
    f(&mut b);
    let avg = b.nanos / u128::from(b.iters.max(1));
    println!("bench {group}/{label}: {avg} ns/iter (avg of {})", b.iters);
}

/// Opaque value barrier preventing the optimizer from deleting the
/// measured computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Collects benchmark functions into a runner invoked by
/// [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Defines `main` running each group produced by [`criterion_group!`].
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("stub");
        group.sample_size(10);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("scaled", 4), &4u64, |b, &k| {
            b.iter(|| (0..100u64).map(|v| v * k).sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn groups_run_every_target() {
        benches();
    }
}
