//! Offline drop-in subset of the `rand` crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this tiny crate provides the exact API surface the workspace uses from
//! `rand` 0.8 — `rngs::StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::gen_range` over integer and float ranges, and `Rng::gen` — backed
//! by a deterministic SplitMix64 generator.
//!
//! The stream is *not* bit-compatible with the real `StdRng` (ChaCha12);
//! everything in this workspace only relies on seeded determinism, never on
//! a specific stream.

use std::ops::{Range, RangeInclusive};

/// Seedable random generator constructors (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that `Rng::gen` can produce (subset of the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from the generator.
    fn draw(rng: &mut dyn RngCore) -> Self;
}

/// Ranges that `Rng::gen_range` can sample from (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// Element types uniform ranges can be built over (subset of
/// `rand::distributions::uniform::SampleUniform`).
///
/// `SampleRange` is blanket-implemented over this trait rather than per
/// concrete range type so that type inference flows from the surrounding
/// expression into untyped literals (`rng.gen_range(-0.1..0.1)` in an `f32`
/// context), exactly as with the real crate.
pub trait SampleUniform: PartialOrd + Copy {
    /// A uniform sample from `[lo, hi)`.
    fn sample_half_open(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self;
    /// A uniform sample from `[lo, hi]`.
    fn sample_inclusive(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(lo, hi, rng)
    }
}

/// Core entropy source: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing generator methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// A sample of `T` from its standard distribution (unit interval for
    /// floats, full range for integers).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// A bernoulli sample with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::draw(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Named generators (subset of `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64). Stands in for the real
    /// `StdRng`; see the crate docs for the compatibility caveat.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood 2014) — passes BigCrush, one
            // addition + two xor-shift-multiplies per draw.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

fn unit_f64(rng: &mut dyn RngCore) -> f64 {
    // 53 uniform mantissa bits in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl Standard for f64 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        unit_f64(rng)
    }
}

impl Standard for f32 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        // 24 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn draw(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw(rng: &mut dyn RngCore) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
            fn sample_inclusive(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self {
        lo + (hi - lo) * unit_f64(rng)
    }
    fn sample_inclusive(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self {
        Self::sample_half_open(lo, hi, rng)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self {
        lo + (hi - lo) * f32::draw(rng)
    }
    fn sample_inclusive(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self {
        Self::sample_half_open(lo, hi, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1 << 40), b.gen_range(0u64..1 << 40));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u32> = (0..8).map(|_| a.gen_range(0u32..1000)).collect();
        let vb: Vec<u32> = (0..8).map(|_| b.gen_range(0u32..1000)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-3i32..5);
            assert!((-3..5).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let g = rng.gen_range(-0.1f32..0.1);
            assert!((-0.1..0.1).contains(&g));
            let u = rng.gen_range(1usize..=7);
            assert!((1..=7).contains(&u));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut lo = 1.0f32;
        let mut hi = 0.0f32;
        for _ in 0..10_000 {
            let v: f32 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            lo = lo.min(v);
            hi = hi.max(v);
        }
        assert!(lo < 0.01 && hi > 0.99, "poor coverage: [{lo}, {hi}]");
    }

    #[test]
    fn mean_is_near_half() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 10_000;
        let sum: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }
}
