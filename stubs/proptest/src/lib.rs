//! Offline drop-in subset of the `proptest` crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this crate provides the slice of proptest the workspace uses: the
//! [`proptest!`] macro with an optional `#![proptest_config(..)]` header,
//! range and [`any`] strategies, `proptest::collection::vec`, and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Semantics differ from real proptest in two deliberate ways:
//!
//! - **No shrinking.** A failing case panics with the generated inputs
//!   echoed in the message instead of a minimized counterexample.
//! - **Fixed derivation.** Cases are generated from a deterministic
//!   per-test stream (FNV-1a of the test name), so failures are always
//!   reproducible without persistence files; `proptest-regressions`
//!   directories are ignored.

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Per-test configuration (stands in for `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases the runner executes per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 64 cases — smaller than real proptest's 256: these deterministic
    /// streams repeat identically on every run, so extra cases add cost,
    /// not coverage, across CI runs.
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a test case did not pass (subset of
/// `proptest::test_runner::TestCaseError`).
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` — skipped, not failed.
    Reject(String),
    /// A `prop_assert*` failed.
    Fail(String),
}

/// Deterministic per-test generator used by the [`proptest!`] runner.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Derives a generator from a test name (FNV-1a hash as the seed).
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// The next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value generator (greatly reduced form of `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The generated type.
    type Value: fmt::Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}
impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

/// Strategy for the full value range of a type (stands in for
/// `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// The strategy type returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

/// Types with a canonical full-range strategy.
pub trait Arbitrary: fmt::Debug + Sized {
    /// Generates an arbitrary value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident/$i:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A/0, B/1);
    (A/0, B/1, C/2);
    (A/0, B/1, C/2, D/3);
}

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing `Vec`s of `elem` values with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    /// The strategy type returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// The common import surface (stands in for `proptest::prelude`).
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Defines property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; do not invoke directly.
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    (config = ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                // Rendered up front because the body may consume the inputs.
                let __proptest_inputs =
                    [$(format!(concat!(stringify!($arg), " = {:?}"), $arg)),+].join(", ");
                // The immediately-called closure gives `prop_assert*` /
                // `prop_assume!` a `Result` frame to `return` through.
                #[allow(clippy::redundant_closure_call)]
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!("proptest case {case} failed: {msg}\n  inputs: {__proptest_inputs}");
                    }
                }
            }
        }
    )*};
}

/// `assert!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// `assert_eq!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// `assert_ne!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a != b,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

/// Skips the current case when its inputs do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_owned(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::TestRng::deterministic("x");
        let mut b = crate::TestRng::deterministic("x");
        let mut c = crate::TestRng::deterministic("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Range strategies respect their bounds.
        #[test]
        fn ranges_in_bounds(a in -50i32..50, b in 1usize..9, c in 0.0f64..1.0) {
            prop_assert!((-50..50).contains(&a));
            prop_assert!((1..9).contains(&b));
            prop_assert!((0.0..1.0).contains(&c));
        }

        /// Assume rejects without failing.
        #[test]
        fn assume_skips(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        /// Vec strategy honors its size range.
        #[test]
        fn vec_sizes(v in crate::collection::vec(any::<u8>(), 0..16)) {
            prop_assert!(v.len() < 16);
        }
    }

    proptest! {
        /// Default config applies when no header is given.
        #[test]
        fn default_config_runs(seed in any::<u64>()) {
            let _ = seed;
        }
    }
}
