//! Corruption robustness of the tuning-profile loader.
//!
//! The loader contract is **totality**: whatever bytes sit at the profile
//! path — truncated documents, bit-flipped bytes, future schema versions,
//! profiles tuned on another machine — `load_with_fallback` returns a
//! schedule that validates (the defaults on any failure), reports the
//! failure through the `tune.profile.fallback` counter and the process-wide
//! [`fallback_count`], and never panics.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use chambolle_telemetry::{names, Telemetry};
use chambolle_tune::{
    fallback_count, load_with_fallback, BackendChoice, Fingerprint, NumericsChoice, Profile,
    ProfileError, Tunables,
};
use proptest::prelude::*;

/// A distinct temp path per call, so proptest cases never race each other.
fn tmp(name: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    let mut p = std::env::temp_dir();
    p.push(format!(
        "chambolle_tune_robust_{}_{n}_{name}",
        std::process::id()
    ));
    p
}

/// An arbitrary *valid* schedule drawn from the given raw knob values
/// (`None` if the combination fails validation — callers `prop_assume`).
#[allow(clippy::too_many_arguments)]
fn tunables_from(
    tile_width: usize,
    tile_height: usize,
    merge_factor: u32,
    halo_margin: usize,
    threads: usize,
    band_rows_divisor: usize,
    backend: u8,
    batch_window: usize,
    low_pct: u8,
    high_pct: u8,
) -> Option<Tunables> {
    let numerics = match backend / 5 % 3 {
        0 => NumericsChoice::Auto,
        1 => NumericsChoice::Exact,
        _ => NumericsChoice::Fast,
    };
    let backend = match backend % 5 {
        0 => BackendChoice::Auto,
        1 => BackendChoice::Scalar,
        2 => BackendChoice::Sse2,
        3 => BackendChoice::Avx2,
        _ => BackendChoice::Avx512,
    };
    let t = Tunables {
        tile_width,
        tile_height,
        merge_factor,
        halo_margin,
        threads,
        band_rows_divisor,
        backend,
        numerics,
        batch_window,
        high_watermark_pct: high_pct,
        low_watermark_pct: low_pct,
    };
    t.validate().ok().map(|()| t)
}

/// Loads `text` from disk through the total loader and checks the
/// invariant: the returned schedule always validates, and on any reported
/// error it is exactly the default with both fallback tallies bumped.
fn assert_total(text: &[u8], label: &str) -> Result<(), TestCaseError> {
    let path = tmp(label);
    std::fs::write(&path, text).expect("write corrupted profile");
    let telemetry = Telemetry::null();
    let before = fallback_count();
    let (tunables, err) = load_with_fallback(path.to_str(), &telemetry);
    std::fs::remove_file(&path).ok();

    prop_assert!(
        tunables.validate().is_ok(),
        "loader returned an invalid schedule for {label}: {tunables:?}"
    );
    let snap = telemetry.snapshot();
    if err.is_some() {
        prop_assert_eq!(
            tunables,
            Tunables::default(),
            "a fallback must hand back the defaults"
        );
        prop_assert_eq!(fallback_count(), before + 1);
        prop_assert_eq!(snap.counter(names::TUNE_PROFILE_FALLBACK), Some(1));
    } else {
        prop_assert_eq!(snap.counter(names::TUNE_PROFILE_LOADED), Some(1));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Save → parse round-trips every valid schedule exactly.
    #[test]
    fn round_trip_preserves_arbitrary_valid_schedules(
        geometry in (8usize..160, 8usize..160, 1u32..8, 0usize..4),
        schedule in (1usize..17, 1usize..17, any::<u8>(), 1usize..33),
        watermarks in (0u8..60, 40u8..101),
    ) {
        let (tw, th, k, margin) = geometry;
        let (threads, divisor, backend, batch) = schedule;
        let (low, high) = watermarks;
        let candidate =
            tunables_from(tw, th, k, margin, threads, divisor, backend, batch, low, high);
        prop_assume!(candidate.is_some());
        let profile = Profile::new(Fingerprint::detect(), candidate.unwrap());
        let back = Profile::parse(&profile.to_json().to_string_pretty())
            .expect("serialized profile must parse");
        prop_assert_eq!(profile, back);
    }

    /// Truncating a valid profile anywhere before its closing brace falls
    /// back to defaults without panicking.
    #[test]
    fn truncated_profiles_fall_back(cut_frac in 0.0f64..1.0) {
        let text = Profile::new(Fingerprint::detect(), Tunables::default())
            .to_json()
            .to_string_pretty();
        let close = text.rfind('}').expect("document has a closing brace");
        let cut = (cut_frac * close as f64) as usize;
        assert_total(&text.as_bytes()[..cut], "truncated")?;
    }

    /// A single flipped bit anywhere in the document never panics the
    /// loader: it either still yields a valid schedule (the flip landed in
    /// provenance-grade content) or falls back to defaults.
    #[test]
    fn bit_flipped_profiles_never_panic(byte_frac in 0.0f64..1.0, bit in 0u32..8) {
        let mut bytes = Profile::new(Fingerprint::detect(), Tunables::default())
            .to_json()
            .to_string_pretty()
            .into_bytes();
        let idx = (byte_frac * (bytes.len() - 1) as f64) as usize;
        bytes[idx] ^= 1 << bit;
        assert_total(&bytes, "bitflip")?;
    }

    /// Arbitrary byte soup — not even JSON — falls back cleanly.
    #[test]
    fn random_bytes_fall_back(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        // A random blob is not a valid profile unless it miraculously spells
        // one out; the totality invariant covers both outcomes.
        assert_total(&bytes, "soup")?;
    }
}

#[test]
fn version_bumped_schema_falls_back() {
    let bumped = Profile::new(Fingerprint::detect(), Tunables::default())
        .to_json()
        .to_string_pretty()
        .replace("tuning_profile.v2", "tuning_profile.v3");
    let path = tmp("schema_bump");
    std::fs::write(&path, bumped).unwrap();
    let telemetry = Telemetry::null();
    let (tunables, err) = load_with_fallback(path.to_str(), &telemetry);
    std::fs::remove_file(&path).ok();

    assert_eq!(tunables, Tunables::default());
    assert!(matches!(err, Some(ProfileError::Schema { found: Some(s) }) if s.ends_with("v3")));
    assert_eq!(
        telemetry.snapshot().counter(names::TUNE_PROFILE_FALLBACK),
        Some(1)
    );
}

#[test]
fn v1_profile_without_numerics_knob_falls_back_totally() {
    // A faithful pre-PR-10 document: v1 schema string and no `numerics`
    // knob. The loader must take the total fallback (defaults, fallback
    // counter bumped) rather than guess at the missing tier.
    let mut text = Profile::new(Fingerprint::detect(), Tunables::default())
        .to_json()
        .to_string_pretty()
        .replace("tuning_profile.v2", "tuning_profile.v1");
    let numerics_line = text
        .lines()
        .find(|l| l.contains("\"numerics\""))
        .expect("v2 documents carry the numerics knob")
        .to_string();
    text = text.replace(&format!("{numerics_line}\n"), "");
    let path = tmp("v1_legacy");
    std::fs::write(&path, &text).unwrap();
    let telemetry = Telemetry::null();
    let (tunables, err) = load_with_fallback(path.to_str(), &telemetry);
    std::fs::remove_file(&path).ok();

    assert_eq!(tunables, Tunables::default());
    assert!(matches!(err, Some(ProfileError::Schema { found: Some(s) }) if s.ends_with("v1")));
    assert_eq!(
        telemetry.snapshot().counter(names::TUNE_PROFILE_FALLBACK),
        Some(1)
    );
}

#[test]
fn v2_profile_missing_numerics_knob_falls_back() {
    // Claims the current schema but lost the numerics knob: strict knob
    // parsing refuses it and the loader falls back whole.
    let text = Profile::new(Fingerprint::detect(), Tunables::default())
        .to_json()
        .to_string_pretty();
    let numerics_line = text
        .lines()
        .find(|l| l.contains("\"numerics\""))
        .expect("v2 documents carry the numerics knob")
        .to_string();
    let text = text.replace(&format!("{numerics_line}\n"), "");
    let path = tmp("v2_missing_numerics");
    std::fs::write(&path, &text).unwrap();
    let (tunables, err) = load_with_fallback(path.to_str(), &Telemetry::disabled());
    std::fs::remove_file(&path).ok();

    assert_eq!(tunables, Tunables::default());
    assert!(matches!(err, Some(ProfileError::Invalid(msg)) if msg.contains("numerics")));
}

#[test]
fn wrong_fingerprint_falls_back() {
    let mut other = Fingerprint::detect();
    other.cores += 7;
    let profile = Profile::new(
        other,
        Tunables {
            tile_width: 64,
            ..Tunables::default()
        },
    );
    let path = tmp("wrong_host");
    profile.save(&path).unwrap();
    let telemetry = Telemetry::null();
    let (tunables, err) = load_with_fallback(path.to_str(), &telemetry);
    std::fs::remove_file(&path).ok();

    assert_eq!(
        tunables,
        Tunables::default(),
        "another machine's schedule must not apply"
    );
    assert!(matches!(err, Some(ProfileError::Fingerprint { .. })));
    assert_eq!(
        telemetry.snapshot().counter(names::TUNE_PROFILE_FALLBACK),
        Some(1)
    );
}

#[test]
fn valid_knobs_that_fail_validation_fall_back() {
    // Structurally perfect JSON, semantically impossible schedule: the halo
    // swallows the whole tile.
    let profile = Profile::new(Fingerprint::detect(), Tunables::default());
    let text = profile
        .to_json()
        .to_string_pretty()
        .replace("\"tile_width\": 92", "\"tile_width\": 4")
        .replace("\"tile_height\": 88", "\"tile_height\": 4");
    let path = tmp("invalid_knobs");
    std::fs::write(&path, text).unwrap();
    let (tunables, err) = load_with_fallback(path.to_str(), &Telemetry::disabled());
    std::fs::remove_file(&path).ok();

    assert_eq!(tunables, Tunables::default());
    assert!(matches!(err, Some(ProfileError::Invalid(_))));
}
