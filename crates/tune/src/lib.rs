//! Auto-tuning subsystem (ROADMAP item 3).
//!
//! The schedule knobs of this workspace — solver tile geometry and
//! decomposition depth, imaging band heuristics, kernel backend, pool
//! width, service batching and admission watermarks — were constants
//! picked for the paper's 2011-era hardware. This crate makes them
//! first-class:
//!
//! - [`knobs`] — the [`Tunables`] registry: every schedule knob with its
//!   documented default (exactly the historical constant), validation and
//!   hand-rolled-JSON serialization. Tuning changes *schedule, never
//!   math*: any valid `Tunables` produces bit-identical pixels.
//! - [`search`] — the enumerate-then-filter engine: coordinate descent
//!   with early pruning on a cheap proxy workload, then full measurement
//!   of the survivors. Measurement is injected as closures, so the engine
//!   has no opinion about workloads.
//! - [`fingerprint`] / [`profile`] — the per-machine profile store: a
//!   versioned `chambolle.tuning_profile.v2` JSON document keyed by host
//!   [`Fingerprint`], written by the `tune` bin and loaded at startup with
//!   total, non-panicking fallback to defaults.
//!
//! The crate sits *below* `chambolle-core` (its only dependency is
//! `chambolle-telemetry`), so core, imaging and service all read their
//! schedule constants from the process-wide [`active`] tunables.
//!
//! # Process-wide tunables
//!
//! [`active`] resolves once on first use — from the profile named by
//! `CHAMBOLLE_PROFILE` (or `chambolle.profile.json` in the working
//! directory, if present), falling back to [`Tunables::default`] on any
//! problem — and is then shared by every component that doesn't get an
//! explicit configuration. [`install`] swaps the active knobs (validated)
//! for drivers like the `tune` bin that measure many configurations in
//! one process.

pub mod fingerprint;
pub mod knobs;
pub mod profile;
pub mod search;

pub use fingerprint::{Fingerprint, ASSUMED_CACHE_LINE};
pub use knobs::{BackendChoice, NumericsChoice, Tunables};
pub use profile::{
    env_profile_path, fallback_count, load_with_fallback, Profile, ProfileError,
    DEFAULT_PROFILE_PATH, PROFILE_ENV, PROFILE_SCHEMA,
};
pub use search::{
    coordinate_descent, SearchOptions, SearchOutcome, SearchSpace, Trial, TrialPhase,
};

use std::sync::{OnceLock, RwLock, RwLockReadGuard, RwLockWriteGuard};

use chambolle_telemetry::Telemetry;

static ACTIVE: OnceLock<RwLock<Tunables>> = OnceLock::new();

fn active_cell() -> &'static RwLock<Tunables> {
    ACTIVE.get_or_init(|| {
        let path = profile::env_profile_path();
        let (tunables, _err) = profile::load_with_fallback(path.as_deref(), &Telemetry::disabled());
        RwLock::new(tunables)
    })
}

fn read_active() -> RwLockReadGuard<'static, Tunables> {
    active_cell().read().unwrap_or_else(|e| e.into_inner())
}

fn write_active() -> RwLockWriteGuard<'static, Tunables> {
    active_cell().write().unwrap_or_else(|e| e.into_inner())
}

/// The process-wide active tunables.
///
/// The first call resolves them from the environment (see the crate docs);
/// later calls return the installed value. Total: never panics, never
/// fails — the worst case is [`Tunables::default`], the exact historical
/// constants.
pub fn active() -> Tunables {
    *read_active()
}

/// Replaces the process-wide active tunables, returning the previous ones.
///
/// # Errors
///
/// Rejects (and leaves the active knobs untouched) when `tunables` fails
/// [`Tunables::validate`].
pub fn install(tunables: Tunables) -> Result<Tunables, String> {
    tunables.validate()?;
    Ok(std::mem::replace(&mut *write_active(), tunables))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn active_defaults_and_install_round_trip() {
        // No CHAMBOLLE_PROFILE in the test environment: active() must be
        // the historical defaults.
        let initial = active();
        assert_eq!(initial, Tunables::default());

        let custom = Tunables {
            tile_width: 64,
            tile_height: 48,
            ..Tunables::default()
        };
        let previous = install(custom).unwrap();
        assert_eq!(previous, initial);
        assert_eq!(active(), custom);

        // Invalid knobs are rejected without clobbering the active set.
        let invalid = Tunables {
            tile_width: 0,
            ..Tunables::default()
        };
        assert!(install(invalid).is_err());
        assert_eq!(active(), custom);

        install(initial).unwrap();
        assert_eq!(active(), Tunables::default());
    }
}
