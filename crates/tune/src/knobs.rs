//! The knob registry: every schedule constant the stack used to hardcode,
//! pulled into one serializable [`Tunables`] value.
//!
//! The defaults are **exactly** the constants the code shipped with before
//! auto-tuning existed — 92×88 paper windows at K=2 on two workers
//! (`core::tiling::TileConfig::default`), the `height / (threads * 4)` band
//! heuristic of `imaging::grid::par_band_rows`, batches of up to 8 with
//! watermarks at 3/4 and 1/4 of queue capacity
//! (`service::ServiceConfig::new`), and the auto-detected kernel backend —
//! so a process that never loads a profile behaves byte-for-byte as before.
//!
//! Every knob is a *schedule* choice: by the exactness contracts pinned
//! across the workspace (tiled == sequential, pooled == sequential, every
//! backend bit-identical, batched == solo), changing a knob changes **time,
//! never bits**.

use chambolle_telemetry::json::JsonValue;

/// Which fused-row-kernel implementation solves should run on.
///
/// Mirrors `core::KernelBackend` as plain data so the profile store (which
/// sits below `core` in the crate graph) can name a backend without
/// depending on it. `Auto` defers to the process-wide runtime detection
/// (including the `CHAMBOLLE_BACKEND` override).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BackendChoice {
    /// Runtime detection picks the widest supported vector unit.
    #[default]
    Auto,
    /// Portable scalar reference kernels.
    Scalar,
    /// 128-bit SSE2 kernels.
    Sse2,
    /// 256-bit AVX2 kernels.
    Avx2,
    /// 512-bit AVX-512 kernels (Fast tier; Exact solves run the AVX2
    /// bit-exact kernels when this backend is selected).
    Avx512,
}

impl BackendChoice {
    /// Stable identifier used in profiles
    /// (`auto`/`scalar`/`sse2`/`avx2`/`avx512`).
    pub fn as_str(&self) -> &'static str {
        match self {
            BackendChoice::Auto => "auto",
            BackendChoice::Scalar => "scalar",
            BackendChoice::Sse2 => "sse2",
            BackendChoice::Avx2 => "avx2",
            BackendChoice::Avx512 => "avx512",
        }
    }

    /// Parses a stable identifier back into a choice.
    pub fn parse(s: &str) -> Option<BackendChoice> {
        match s {
            "auto" => Some(BackendChoice::Auto),
            "scalar" => Some(BackendChoice::Scalar),
            "sse2" => Some(BackendChoice::Sse2),
            "avx2" => Some(BackendChoice::Avx2),
            "avx512" => Some(BackendChoice::Avx512),
            _ => None,
        }
    }
}

/// Which numerics tier solves built from a profile run at.
///
/// Mirrors `core::NumericsPolicy` as plain data, the way [`BackendChoice`]
/// mirrors `core::KernelBackend`. `Auto` defers to the process-wide
/// resolution (the `CHAMBOLLE_NUMERICS` override, else Exact). Unlike every
/// other knob, a profile that pins `Fast` **changes bits** — within the
/// declared energy/duality-gap tolerance — which is why the `tune` binary
/// only persists it on explicit operator opt-in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum NumericsChoice {
    /// Defer to the process-wide resolution (`CHAMBOLLE_NUMERICS`, else
    /// the bit-exact tier).
    #[default]
    Auto,
    /// The bit-exact reference tier.
    Exact,
    /// The tolerance-validated fast tier (FMA, reassociation, AVX-512).
    Fast,
}

impl NumericsChoice {
    /// Stable identifier used in profiles (`auto`/`exact`/`fast`).
    pub fn as_str(&self) -> &'static str {
        match self {
            NumericsChoice::Auto => "auto",
            NumericsChoice::Exact => "exact",
            NumericsChoice::Fast => "fast",
        }
    }

    /// Parses a stable identifier back into a choice.
    pub fn parse(s: &str) -> Option<NumericsChoice> {
        match s {
            "auto" => Some(NumericsChoice::Auto),
            "exact" => Some(NumericsChoice::Exact),
            "fast" => Some(NumericsChoice::Fast),
            _ => None,
        }
    }
}

/// The tunable schedule of the whole stack, as one plain value.
///
/// | knob | replaces | layer |
/// |------|----------|-------|
/// | `tile_width`/`tile_height` | the paper's hardcoded 92×88 window | `core::tiling` |
/// | `merge_factor` | decomposition depth K = 2 | `core::tiling` |
/// | `halo_margin` | extra halo cells beyond the required K / K+1 | `core::tiling` |
/// | `threads` | two sliding windows / pool workers | `core`, `par` |
/// | `band_rows_divisor` | the `4` in `height / (threads * 4)` | `imaging::grid` |
/// | `backend` | runtime SIMD detection | `core::backend` |
/// | `numerics` | the process-wide numerics tier (Exact) | `core::ctx` |
/// | `batch_window` | micro-batch coalescing window of 8 requests | `service` |
/// | `high_watermark_pct`/`low_watermark_pct` | admission watermarks at 75% / 25% | `service` |
///
/// `Tunables` is `Copy` and cheap to pass around; [`Tunables::validate`]
/// gates every value that could make a schedule unconstructible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Tunables {
    /// Solver sub-matrix width in cells.
    pub tile_width: usize,
    /// Solver sub-matrix height in cells.
    pub tile_height: usize,
    /// Iterations merged per window pass (the paper's K).
    pub merge_factor: u32,
    /// Extra halo cells loaded beyond the exactness-required K leading /
    /// K+1 trailing. Pure redundancy-vs-window-count trade; never changes
    /// bits.
    pub halo_margin: usize,
    /// Worker-pool width: tiled-solver windows, solver row bands, and the
    /// pool `ExecCtx::auto` attaches.
    pub threads: usize,
    /// Divisor of the row-band heuristic `height / (threads * divisor)`
    /// used by the pooled imaging kernels.
    pub band_rows_divisor: usize,
    /// Kernel backend the fused row kernels run on.
    pub backend: BackendChoice,
    /// Numerics tier the solves run at (`Auto` = process default).
    pub numerics: NumericsChoice,
    /// Micro-batcher coalescing window: most requests coalesced into one
    /// pool dispatch.
    pub batch_window: usize,
    /// Queue-congestion rising edge, as a percentage of queue capacity.
    pub high_watermark_pct: u8,
    /// Queue-congestion falling edge, as a percentage of queue capacity.
    pub low_watermark_pct: u8,
}

impl Default for Tunables {
    /// The pre-auto-tuning constants, verbatim.
    fn default() -> Self {
        Tunables {
            tile_width: 92,
            tile_height: 88,
            merge_factor: 2,
            halo_margin: 0,
            threads: 2,
            band_rows_divisor: 4,
            backend: BackendChoice::Auto,
            numerics: NumericsChoice::Auto,
            batch_window: 8,
            high_watermark_pct: 75,
            low_watermark_pct: 25,
        }
    }
}

impl Tunables {
    /// Checks every knob for a value that would make the schedule
    /// unconstructible.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first invalid knob.
    pub fn validate(&self) -> Result<(), String> {
        if self.tile_width == 0 || self.tile_height == 0 {
            return Err("tile dimensions must be positive".into());
        }
        if self.merge_factor == 0 {
            return Err("merge_factor must be at least 1".into());
        }
        let halo = 2 * (self.merge_factor as usize + self.halo_margin) + 1;
        if halo >= self.tile_width || halo >= self.tile_height {
            return Err(format!(
                "halo 2(K+margin)+1 = {halo} leaves no profitable interior in a {}x{} tile",
                self.tile_width, self.tile_height
            ));
        }
        if self.threads == 0 {
            return Err("threads must be at least 1".into());
        }
        if self.band_rows_divisor == 0 {
            return Err("band_rows_divisor must be at least 1".into());
        }
        if self.batch_window == 0 {
            return Err("batch_window must be at least 1".into());
        }
        if self.high_watermark_pct > 100 || self.low_watermark_pct >= self.high_watermark_pct {
            return Err(format!(
                "watermarks must satisfy low < high <= 100 (got {} / {})",
                self.low_watermark_pct, self.high_watermark_pct
            ));
        }
        Ok(())
    }

    /// The row-band height the pooled imaging kernels split work by —
    /// byte-identical to the historical
    /// `height.div_ceil(threads * 4).max(1)` at the default divisor.
    pub fn band_rows(&self, height: usize, threads: usize) -> usize {
        height
            .div_ceil(threads.max(1) * self.band_rows_divisor.max(1))
            .max(1)
    }

    /// The admission high watermark for a queue of `capacity` — identical
    /// to the historical `(capacity * 3 / 4).max(1)` at the default 75%.
    pub fn high_watermark(&self, capacity: usize) -> usize {
        (capacity * usize::from(self.high_watermark_pct) / 100).max(1)
    }

    /// The admission low watermark for a queue of `capacity` — identical
    /// to the historical `capacity / 4` at the default 25%.
    pub fn low_watermark(&self, capacity: usize) -> usize {
        capacity * usize::from(self.low_watermark_pct) / 100
    }

    /// Serializes the knobs as a JSON object (profile `tunables` section).
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("tile_width".into(), (self.tile_width as u64).into()),
            ("tile_height".into(), (self.tile_height as u64).into()),
            ("merge_factor".into(), u64::from(self.merge_factor).into()),
            ("halo_margin".into(), (self.halo_margin as u64).into()),
            ("threads".into(), (self.threads as u64).into()),
            (
                "band_rows_divisor".into(),
                (self.band_rows_divisor as u64).into(),
            ),
            ("backend".into(), self.backend.as_str().into()),
            ("numerics".into(), self.numerics.as_str().into()),
            ("batch_window".into(), (self.batch_window as u64).into()),
            (
                "high_watermark_pct".into(),
                u64::from(self.high_watermark_pct).into(),
            ),
            (
                "low_watermark_pct".into(),
                u64::from(self.low_watermark_pct).into(),
            ),
        ])
    }

    /// Parses a profile `tunables` object. Every knob must be present with
    /// the right type and the combination must pass [`Tunables::validate`];
    /// unknown keys are ignored (forward compatibility).
    ///
    /// # Errors
    ///
    /// Returns a description of the missing/ill-typed/invalid knob.
    pub fn from_json(value: &JsonValue) -> Result<Tunables, String> {
        fn num(value: &JsonValue, key: &str) -> Result<u64, String> {
            let raw = value
                .get(key)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("missing or non-numeric knob {key:?}"))?;
            if !(raw.is_finite() && raw >= 0.0 && raw.fract() == 0.0) {
                return Err(format!("knob {key:?} must be a non-negative integer"));
            }
            Ok(raw as u64)
        }
        let backend_raw = value
            .get("backend")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| "missing or non-string knob \"backend\"".to_string())?;
        let backend = BackendChoice::parse(backend_raw)
            .ok_or_else(|| format!("unknown backend {backend_raw:?}"))?;
        let numerics_raw = value
            .get("numerics")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| "missing or non-string knob \"numerics\"".to_string())?;
        let numerics = NumericsChoice::parse(numerics_raw)
            .ok_or_else(|| format!("unknown numerics tier {numerics_raw:?}"))?;
        let tunables = Tunables {
            tile_width: num(value, "tile_width")? as usize,
            tile_height: num(value, "tile_height")? as usize,
            merge_factor: u32::try_from(num(value, "merge_factor")?)
                .map_err(|_| "merge_factor out of range".to_string())?,
            halo_margin: num(value, "halo_margin")? as usize,
            threads: num(value, "threads")? as usize,
            band_rows_divisor: num(value, "band_rows_divisor")? as usize,
            backend,
            numerics,
            batch_window: num(value, "batch_window")? as usize,
            high_watermark_pct: u8::try_from(num(value, "high_watermark_pct")?)
                .map_err(|_| "high_watermark_pct out of range".to_string())?,
            low_watermark_pct: u8::try_from(num(value, "low_watermark_pct")?)
                .map_err(|_| "low_watermark_pct out of range".to_string())?,
        };
        tunables.validate()?;
        Ok(tunables)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_reproduce_the_historical_constants() {
        let t = Tunables::default();
        assert_eq!((t.tile_width, t.tile_height), (92, 88));
        assert_eq!(t.merge_factor, 2);
        assert_eq!(t.halo_margin, 0);
        assert_eq!(t.threads, 2);
        assert_eq!(t.backend, BackendChoice::Auto);
        assert_eq!(t.numerics, NumericsChoice::Auto);
        assert_eq!(t.batch_window, 8);
        // The band heuristic must be byte-identical to
        // `height.div_ceil(threads * 4).max(1)` for every shape.
        for h in [1usize, 7, 88, 480, 1080] {
            for threads in [1usize, 2, 3, 8] {
                assert_eq!(t.band_rows(h, threads), h.div_ceil(threads * 4).max(1));
            }
        }
        // Watermarks must be identical to `(cap * 3 / 4).max(1)` / `cap / 4`.
        for cap in [1usize, 2, 4, 7, 13, 64, 1000] {
            assert_eq!(t.high_watermark(cap), (cap * 3 / 4).max(1));
            assert_eq!(t.low_watermark(cap), cap / 4);
        }
        t.validate().unwrap();
    }

    #[test]
    fn validate_rejects_every_degenerate_knob() {
        let ok = Tunables::default();
        let cases: Vec<(Tunables, &str)> = vec![
            (
                Tunables {
                    tile_width: 0,
                    ..ok
                },
                "tile",
            ),
            (
                Tunables {
                    merge_factor: 0,
                    ..ok
                },
                "merge_factor",
            ),
            (
                Tunables {
                    merge_factor: 50,
                    ..ok
                },
                "halo",
            ),
            (
                Tunables {
                    halo_margin: 60,
                    ..ok
                },
                "halo",
            ),
            (Tunables { threads: 0, ..ok }, "threads"),
            (
                Tunables {
                    band_rows_divisor: 0,
                    ..ok
                },
                "band_rows_divisor",
            ),
            (
                Tunables {
                    batch_window: 0,
                    ..ok
                },
                "batch_window",
            ),
            (
                Tunables {
                    high_watermark_pct: 101,
                    ..ok
                },
                "watermarks",
            ),
            (
                Tunables {
                    low_watermark_pct: 80,
                    ..ok
                },
                "watermarks",
            ),
        ];
        for (t, needle) in cases {
            let err = t.validate().unwrap_err();
            assert!(err.contains(needle), "{err:?} should mention {needle:?}");
        }
    }

    #[test]
    fn json_round_trip_preserves_every_knob() {
        let t = Tunables {
            tile_width: 48,
            tile_height: 40,
            merge_factor: 3,
            halo_margin: 1,
            threads: 6,
            band_rows_divisor: 2,
            backend: BackendChoice::Sse2,
            numerics: NumericsChoice::Fast,
            batch_window: 16,
            high_watermark_pct: 80,
            low_watermark_pct: 10,
        };
        let back = Tunables::from_json(&t.to_json()).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn from_json_rejects_missing_and_invalid_knobs() {
        let mut doc = Tunables::default().to_json();
        assert!(Tunables::from_json(&doc).is_ok());
        if let JsonValue::Object(fields) = &mut doc {
            fields.retain(|(k, _)| k != "tile_width");
        }
        assert!(Tunables::from_json(&doc)
            .unwrap_err()
            .contains("tile_width"));

        let parsed = JsonValue::parse(
            &Tunables::default()
                .to_json()
                .to_string()
                .replace("\"auto\"", "\"quantum\""),
        )
        .unwrap();
        assert!(Tunables::from_json(&parsed)
            .unwrap_err()
            .contains("quantum"));

        // A structurally valid document with an invalid combination: the
        // halo 2(K+margin)+1 = 101 exceeds the default 92x88 tile.
        let t = Tunables {
            merge_factor: 50,
            ..Tunables::default()
        };
        assert!(Tunables::from_json(&t.to_json()).is_err());
    }

    #[test]
    fn backend_choice_identifiers_round_trip() {
        for c in [
            BackendChoice::Auto,
            BackendChoice::Scalar,
            BackendChoice::Sse2,
            BackendChoice::Avx2,
            BackendChoice::Avx512,
        ] {
            assert_eq!(BackendChoice::parse(c.as_str()), Some(c));
        }
        assert_eq!(BackendChoice::parse("avx1024"), None);
    }

    #[test]
    fn numerics_choice_identifiers_round_trip() {
        for c in [
            NumericsChoice::Auto,
            NumericsChoice::Exact,
            NumericsChoice::Fast,
        ] {
            assert_eq!(NumericsChoice::parse(c.as_str()), Some(c));
        }
        assert_eq!(NumericsChoice::parse("approximate"), None);
    }

    #[test]
    fn from_json_rejects_missing_or_unknown_numerics() {
        let mut doc = Tunables::default().to_json();
        if let JsonValue::Object(fields) = &mut doc {
            fields.retain(|(k, _)| k != "numerics");
        }
        assert!(Tunables::from_json(&doc).unwrap_err().contains("numerics"));

        let mut doc = Tunables::default().to_json();
        if let JsonValue::Object(fields) = &mut doc {
            for (k, v) in fields.iter_mut() {
                if k == "numerics" {
                    *v = "sloppy".into();
                }
            }
        }
        assert!(Tunables::from_json(&doc).unwrap_err().contains("sloppy"));
    }
}
