//! Host fingerprinting for tuning profiles.
//!
//! A tuning profile encodes a schedule that won a search **on one
//! machine**: its tile sizes fit that machine's caches, its thread count
//! its cores, its backend its vector units. Loading it elsewhere would be
//! silently wrong (never incorrect — every knob is bit-exact — but
//! arbitrarily slow), so every profile carries the [`Fingerprint`] of the
//! host that produced it and loaders reject mismatches.

use chambolle_telemetry::json::JsonValue;

/// The cache-line size every schedule in this workspace assumes.
pub const ASSUMED_CACHE_LINE: usize = 64;

/// The identity of a host, as far as the schedule space cares.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Fingerprint {
    /// Target architecture (`std::env::consts::ARCH`).
    pub arch: String,
    /// Logical cores available to the process.
    pub cores: usize,
    /// Whether the CPU executes SSE2 (always true on x86-64).
    pub sse2: bool,
    /// Whether the CPU executes AVX2.
    pub avx2: bool,
    /// Cache-line size the schedule assumes, in bytes.
    pub cache_line: usize,
}

impl Fingerprint {
    /// Fingerprints the current host.
    pub fn detect() -> Fingerprint {
        #[cfg(target_arch = "x86_64")]
        let (sse2, avx2) = (
            std::arch::is_x86_feature_detected!("sse2"),
            std::arch::is_x86_feature_detected!("avx2"),
        );
        #[cfg(not(target_arch = "x86_64"))]
        let (sse2, avx2) = (false, false);
        Fingerprint {
            arch: std::env::consts::ARCH.to_string(),
            cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
            sse2,
            avx2,
            cache_line: ASSUMED_CACHE_LINE,
        }
    }

    /// Whether a profile fingerprinted as `self` may be applied on a host
    /// fingerprinted as `other`: every field must agree.
    pub fn matches(&self, other: &Fingerprint) -> bool {
        self == other
    }

    /// Serializes the fingerprint as a JSON object.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("arch".into(), self.arch.as_str().into()),
            ("cores".into(), (self.cores as u64).into()),
            ("sse2".into(), self.sse2.into()),
            ("avx2".into(), self.avx2.into()),
            ("cache_line".into(), (self.cache_line as u64).into()),
        ])
    }

    /// Parses a profile `fingerprint` object.
    ///
    /// # Errors
    ///
    /// Returns a description of the missing or ill-typed field.
    pub fn from_json(value: &JsonValue) -> Result<Fingerprint, String> {
        let arch = value
            .get("arch")
            .and_then(JsonValue::as_str)
            .ok_or("missing fingerprint field \"arch\"")?
            .to_string();
        let num = |key: &str| -> Result<usize, String> {
            let raw = value
                .get(key)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("missing fingerprint field {key:?}"))?;
            if !(raw.is_finite() && raw >= 0.0 && raw.fract() == 0.0) {
                return Err(format!("fingerprint field {key:?} must be an integer"));
            }
            Ok(raw as usize)
        };
        let flag = |key: &str| -> Result<bool, String> {
            match value.get(key) {
                Some(JsonValue::Bool(b)) => Ok(*b),
                _ => Err(format!("missing fingerprint field {key:?}")),
            }
        };
        Ok(Fingerprint {
            arch,
            cores: num("cores")?,
            sse2: flag("sse2")?,
            avx2: flag("avx2")?,
            cache_line: num("cache_line")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detect_is_stable_and_plausible() {
        let a = Fingerprint::detect();
        let b = Fingerprint::detect();
        assert!(a.matches(&b));
        assert!(a.cores >= 1);
        assert_eq!(a.cache_line, ASSUMED_CACHE_LINE);
        assert_eq!(a.arch, std::env::consts::ARCH);
    }

    #[test]
    fn json_round_trip_and_mismatch_detection() {
        let fp = Fingerprint::detect();
        let back = Fingerprint::from_json(&fp.to_json()).unwrap();
        assert!(fp.matches(&back));

        let other = Fingerprint {
            cores: fp.cores + 1,
            ..back
        };
        assert!(!fp.matches(&other));

        let err = Fingerprint::from_json(&JsonValue::Object(vec![])).unwrap_err();
        assert!(err.contains("arch"));
    }
}
