//! The versioned, fingerprinted tuning-profile store.
//!
//! A profile is a hand-rolled-JSON document with the stable schema
//! [`PROFILE_SCHEMA`] (`chambolle.tuning_profile.v2`):
//!
//! ```json
//! {
//!   "schema": "chambolle.tuning_profile.v2",
//!   "fingerprint": { "arch": "x86_64", "cores": 8, "sse2": true,
//!                    "avx2": true, "cache_line": 64 },
//!   "tunables": { "tile_width": 92, ... },
//!   "provenance": { ... }
//! }
//! ```
//!
//! Loading is **total**: every failure mode — missing file, truncated or
//! bit-flipped bytes, unknown schema version, a fingerprint from another
//! machine, knob values that fail validation — produces a structured
//! [`ProfileError`] and a fallback to [`Tunables::default`], never a panic.
//! Fallbacks are observable through the `tune.profile.fallback` telemetry
//! counter and the process-wide [`fallback_count`].

use std::fmt;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

use chambolle_telemetry::json::JsonValue;
use chambolle_telemetry::{names, Telemetry};

use crate::fingerprint::Fingerprint;
use crate::knobs::Tunables;

/// Schema identifier of every profile this version reads and writes.
///
/// v2 added the `numerics` knob (the `Exact | Fast` tier). Loading is
/// strict about the version: a v1 (or any unknown-schema) document takes
/// the total non-panicking fallback to defaults below, exactly like any
/// other unreadable profile — old profiles can never be half-applied.
pub const PROFILE_SCHEMA: &str = "chambolle.tuning_profile.v2";

/// Environment variable naming the profile to load at startup.
pub const PROFILE_ENV: &str = "CHAMBOLLE_PROFILE";

/// Default profile path probed when [`PROFILE_ENV`] is unset.
pub const DEFAULT_PROFILE_PATH: &str = "chambolle.profile.json";

/// Process-wide tally of profile-load fallbacks (always on, unlike the
/// telemetry counter, so tests and operators can observe fallbacks from
/// paths that run with telemetry disabled).
static FALLBACKS: AtomicU64 = AtomicU64::new(0);

/// How many profile loads have fallen back to defaults in this process.
pub fn fallback_count() -> u64 {
    FALLBACKS.load(Ordering::Relaxed)
}

/// Why a profile could not be applied.
#[derive(Debug, Clone, PartialEq)]
pub enum ProfileError {
    /// The file could not be read (missing, unreadable, not UTF-8).
    Io(String),
    /// The bytes are not a JSON document of the expected shape.
    Parse(String),
    /// The document carries a different (e.g. future) schema version.
    Schema {
        /// The schema string found in the document, if any.
        found: Option<String>,
    },
    /// The profile was produced on a different machine.
    Fingerprint {
        /// The mismatching fingerprint recorded in the profile.
        profile: Box<Fingerprint>,
        /// The fingerprint of the current host.
        host: Box<Fingerprint>,
    },
    /// The knob values fail [`Tunables::validate`].
    Invalid(String),
}

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileError::Io(e) => write!(f, "cannot read profile: {e}"),
            ProfileError::Parse(e) => write!(f, "cannot parse profile: {e}"),
            ProfileError::Schema { found: Some(s) } => {
                write!(f, "unsupported profile schema {s:?} (expected {PROFILE_SCHEMA:?})")
            }
            ProfileError::Schema { found: None } => {
                write!(f, "profile carries no schema field (expected {PROFILE_SCHEMA:?})")
            }
            ProfileError::Fingerprint { profile, host } => write!(
                f,
                "profile was tuned for another machine ({} cores, avx2={}) — this host is ({} cores, avx2={})",
                profile.cores, profile.avx2, host.cores, host.avx2
            ),
            ProfileError::Invalid(e) => write!(f, "profile knobs are invalid: {e}"),
        }
    }
}

impl std::error::Error for ProfileError {}

/// A tuning profile: a fingerprint, the winning knobs, and optional
/// free-form provenance (search trials, speedups) that loaders preserve
/// but never interpret.
#[derive(Debug, Clone, PartialEq)]
pub struct Profile {
    /// The host the profile was tuned on.
    pub fingerprint: Fingerprint,
    /// The winning schedule.
    pub tunables: Tunables,
    /// Free-form provenance recorded by the `tune` bin (ignored on load).
    pub provenance: Option<JsonValue>,
}

impl Profile {
    /// A profile of `tunables` for the host `fingerprint`.
    pub fn new(fingerprint: Fingerprint, tunables: Tunables) -> Profile {
        Profile {
            fingerprint,
            tunables,
            provenance: None,
        }
    }

    /// Attaches free-form provenance (search trials, speedup summary).
    pub fn with_provenance(mut self, provenance: JsonValue) -> Profile {
        self.provenance = Some(provenance);
        self
    }

    /// Serializes the profile as a [`PROFILE_SCHEMA`] document.
    pub fn to_json(&self) -> JsonValue {
        let mut fields = vec![
            ("schema".into(), PROFILE_SCHEMA.into()),
            ("fingerprint".into(), self.fingerprint.to_json()),
            ("tunables".into(), self.tunables.to_json()),
        ];
        if let Some(p) = &self.provenance {
            fields.push(("provenance".into(), p.clone()));
        }
        JsonValue::Object(fields)
    }

    /// Parses a profile document, checking schema and knob validity but
    /// **not** the fingerprint (callers that apply the profile must check
    /// it against the host; [`Profile::load_for_host`] does both).
    ///
    /// # Errors
    ///
    /// [`ProfileError::Parse`], [`ProfileError::Schema`] or
    /// [`ProfileError::Invalid`].
    pub fn parse(text: &str) -> Result<Profile, ProfileError> {
        let doc = JsonValue::parse(text).map_err(|e| ProfileError::Parse(e.to_string()))?;
        let schema = doc.get("schema").and_then(JsonValue::as_str);
        if schema != Some(PROFILE_SCHEMA) {
            return Err(ProfileError::Schema {
                found: schema.map(str::to_string),
            });
        }
        let fingerprint = doc
            .get("fingerprint")
            .ok_or_else(|| ProfileError::Parse("missing fingerprint object".into()))
            .and_then(|v| Fingerprint::from_json(v).map_err(ProfileError::Parse))?;
        let tunables = doc
            .get("tunables")
            .ok_or_else(|| ProfileError::Parse("missing tunables object".into()))
            .and_then(|v| Tunables::from_json(v).map_err(ProfileError::Invalid))?;
        Ok(Profile {
            fingerprint,
            tunables,
            provenance: doc.get("provenance").cloned(),
        })
    }

    /// Writes the profile to `path` (pretty-printed, trailing newline).
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_json().to_string_pretty() + "\n")
    }

    /// Reads and parses the profile at `path` (no fingerprint check).
    ///
    /// # Errors
    ///
    /// Any [`ProfileError`]; never panics.
    pub fn load(path: impl AsRef<Path>) -> Result<Profile, ProfileError> {
        let text =
            std::fs::read_to_string(path.as_ref()).map_err(|e| ProfileError::Io(e.to_string()))?;
        Profile::parse(&text)
    }

    /// Reads the profile at `path` and checks it against `host`.
    ///
    /// # Errors
    ///
    /// Any [`ProfileError`], including [`ProfileError::Fingerprint`] when
    /// the profile was tuned on a different machine; never panics.
    pub fn load_for_host(
        path: impl AsRef<Path>,
        host: &Fingerprint,
    ) -> Result<Profile, ProfileError> {
        let profile = Profile::load(path)?;
        if !profile.fingerprint.matches(host) {
            return Err(ProfileError::Fingerprint {
                profile: Box::new(profile.fingerprint),
                host: Box::new(host.clone()),
            });
        }
        Ok(profile)
    }
}

/// Loads the knobs to run with: the profile at `path` if it exists, parses,
/// matches this host and validates — [`Tunables::default`] otherwise.
///
/// This is the **total** loader every startup path uses: it cannot panic
/// and cannot fail. A fallback bumps the `tune.profile.fallback` counter on
/// `telemetry` and the process-wide [`fallback_count`], and hands the error
/// back for optional operator-facing logging; a success bumps
/// `tune.profile.loaded`.
pub fn load_with_fallback(
    path: Option<&str>,
    telemetry: &Telemetry,
) -> (Tunables, Option<ProfileError>) {
    let Some(path) = path else {
        return (Tunables::default(), None);
    };
    match Profile::load_for_host(path, &Fingerprint::detect()) {
        Ok(profile) => {
            telemetry.counter_add(names::TUNE_PROFILE_LOADED, 1);
            (profile.tunables, None)
        }
        Err(err) => {
            FALLBACKS.fetch_add(1, Ordering::Relaxed);
            telemetry.counter_add(names::TUNE_PROFILE_FALLBACK, 1);
            (Tunables::default(), Some(err))
        }
    }
}

/// The profile path named by the environment, if any: [`PROFILE_ENV`] when
/// set (empty disables), else [`DEFAULT_PROFILE_PATH`] when such a file
/// exists.
pub fn env_profile_path() -> Option<String> {
    match std::env::var(PROFILE_ENV) {
        Ok(path) if !path.is_empty() => Some(path),
        Ok(_) => None,
        Err(_) => Path::new(DEFAULT_PROFILE_PATH)
            .exists()
            .then(|| DEFAULT_PROFILE_PATH.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("chambolle_tune_{}_{name}", std::process::id()));
        p
    }

    #[test]
    fn save_load_round_trip_preserves_the_profile() {
        let profile = Profile::new(
            Fingerprint::detect(),
            Tunables {
                tile_width: 60,
                tile_height: 52,
                ..Tunables::default()
            },
        )
        .with_provenance(JsonValue::Object(vec![(
            "speedup".into(),
            JsonValue::from(1.25),
        )]));
        let path = tmp("roundtrip.json");
        profile.save(&path).unwrap();
        let back = Profile::load(&path).unwrap();
        assert_eq!(profile, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_with_fallback_is_total() {
        let before = fallback_count();
        // Missing file.
        let (t, err) =
            load_with_fallback(Some("/nonexistent/profile.json"), &Telemetry::disabled());
        assert_eq!(t, Tunables::default());
        assert!(matches!(err, Some(ProfileError::Io(_))));
        // Garbage bytes.
        let path = tmp("garbage.json");
        std::fs::write(&path, b"{ not json").unwrap();
        let (t, err) = load_with_fallback(path.to_str(), &Telemetry::disabled());
        assert_eq!(t, Tunables::default());
        assert!(matches!(err, Some(ProfileError::Parse(_))));
        // Wrong schema version (a future one).
        let bumped = Profile::new(Fingerprint::detect(), Tunables::default())
            .to_json()
            .to_string()
            .replace("tuning_profile.v2", "tuning_profile.v3");
        std::fs::write(&path, bumped).unwrap();
        let (_, err) = load_with_fallback(path.to_str(), &Telemetry::disabled());
        assert!(matches!(err, Some(ProfileError::Schema { found: Some(_) })));
        // An old v1 profile (pre-`numerics` schema): total fallback, no
        // panic, no half-applied knobs.
        let v1 = Profile::new(Fingerprint::detect(), Tunables::default())
            .to_json()
            .to_string()
            .replace("tuning_profile.v2", "tuning_profile.v1");
        std::fs::write(&path, v1).unwrap();
        let (t, err) = load_with_fallback(path.to_str(), &Telemetry::disabled());
        assert_eq!(t, Tunables::default());
        assert!(
            matches!(err, Some(ProfileError::Schema { found: Some(ref s) }) if s.ends_with("v1"))
        );
        // Wrong machine.
        let mut fp = Fingerprint::detect();
        fp.cores += 1;
        Profile::new(fp, Tunables::default()).save(&path).unwrap();
        let tele = Telemetry::null();
        let (t, err) = load_with_fallback(path.to_str(), &tele);
        assert_eq!(t, Tunables::default());
        assert!(matches!(err, Some(ProfileError::Fingerprint { .. })));
        assert_eq!(
            tele.snapshot().counter(names::TUNE_PROFILE_FALLBACK),
            Some(1)
        );
        assert!(fallback_count() >= before + 4);
        // A matching profile loads (and bumps the loaded counter).
        Profile::new(Fingerprint::detect(), Tunables::default())
            .save(&path)
            .unwrap();
        let tele = Telemetry::null();
        let (t, err) = load_with_fallback(path.to_str(), &tele);
        assert_eq!(t, Tunables::default());
        assert!(err.is_none());
        assert_eq!(tele.snapshot().counter(names::TUNE_PROFILE_LOADED), Some(1));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn errors_render_operator_readable_messages() {
        let host = Fingerprint::detect();
        let mut other = host.clone();
        other.cores += 2;
        let err = ProfileError::Fingerprint {
            profile: Box::new(other),
            host: Box::new(host),
        };
        assert!(err.to_string().contains("another machine"));
        assert!(ProfileError::Schema { found: None }
            .to_string()
            .contains(PROFILE_SCHEMA));
    }
}
