//! The search engine: enumerate-then-filter over the knob space.
//!
//! The shape follows the rule-synthesis loop of the `ruler` exemplar
//! (ROADMAP item 3): *enumerate* candidate configurations, *filter* them
//! cheaply, and only *validate* (fully measure) the survivors. Concretely:
//!
//! 1. **Coordinate descent with early pruning.** Starting from the current
//!    defaults, each knob dimension is swept in turn while the others stay
//!    fixed. Every candidate is scored on a cheap **proxy** workload; a
//!    candidate that does not beat the incumbent is pruned immediately and
//!    never reaches the expensive phase. Sweeps repeat until a full pass
//!    improves nothing (or the sweep budget runs out).
//! 2. **Full measurement of survivors.** The best few configurations by
//!    proxy score (plus the untouched baseline) are re-measured on the
//!    real workloads — the `bench` denoise/TV-L1 runs, or `loadgen`-style
//!    service replays for the service knobs — and the winner is decided on
//!    those numbers alone, so a proxy mis-ranking can cost coverage but
//!    never pick a regression over the measured baseline.
//!
//! The engine itself is pure orchestration: measurement is injected as
//! closures (`Option<f64>`: lower is better, `None` means "configuration
//! not measurable — prune"), so the same driver tunes solver schedules,
//! imaging band heuristics and service queues, and unit tests can steer it
//! with synthetic cost functions. Every trial is recorded in the returned
//! [`SearchOutcome`] and counted through the `tune.*` telemetry metrics.

use chambolle_telemetry::{names, Telemetry};

use crate::knobs::{BackendChoice, NumericsChoice, Tunables};

/// Candidate values per knob dimension. Empty dimensions are skipped, so
/// one space type serves solver-only, service-only and combined searches.
#[derive(Debug, Clone, Default)]
pub struct SearchSpace {
    /// Candidate solver tile widths.
    pub tile_widths: Vec<usize>,
    /// Candidate solver tile heights.
    pub tile_heights: Vec<usize>,
    /// Candidate decomposition depths K.
    pub merge_factors: Vec<u32>,
    /// Candidate extra-halo widths.
    pub halo_margins: Vec<usize>,
    /// Candidate worker-pool widths.
    pub threads: Vec<usize>,
    /// Candidate imaging band-row divisors.
    pub band_rows_divisors: Vec<usize>,
    /// Candidate kernel backends.
    pub backends: Vec<BackendChoice>,
    /// Candidate numerics tiers (the search measures Fast-tier schedules;
    /// see the `tune` binary for how a Fast winner is persisted).
    pub numerics: Vec<NumericsChoice>,
    /// Candidate micro-batch coalescing windows.
    pub batch_windows: Vec<usize>,
    /// Candidate admission watermark pairs `(high_pct, low_pct)`.
    pub watermarks: Vec<(u8, u8)>,
}

/// One candidate-producing mutation of the incumbent configuration.
type Setter = Box<dyn Fn(&Tunables) -> Tunables>;

impl SearchSpace {
    /// A coarse grid sized for CI: seconds of wall time, still covering
    /// every solver dimension the acceptance contract requires (tile
    /// geometry, K, halo, threads, band divisor, backend).
    pub fn smoke(max_threads: usize) -> SearchSpace {
        SearchSpace {
            tile_widths: vec![48, 92, 128],
            tile_heights: vec![40, 88, 120],
            merge_factors: vec![1, 2, 4],
            halo_margins: vec![0, 2],
            threads: thread_grid(max_threads, 3),
            band_rows_divisors: vec![1, 4],
            backends: vec![BackendChoice::Auto, BackendChoice::Scalar],
            numerics: vec![NumericsChoice::Auto, NumericsChoice::Fast],
            batch_windows: vec![],
            watermarks: vec![],
        }
    }

    /// The full solver grid for real tuning runs.
    pub fn full(max_threads: usize) -> SearchSpace {
        SearchSpace {
            tile_widths: vec![32, 48, 64, 92, 128, 192],
            tile_heights: vec![24, 40, 64, 88, 120, 176],
            merge_factors: vec![1, 2, 3, 4, 6, 8],
            halo_margins: vec![0, 1, 2, 4],
            threads: thread_grid(max_threads, 6),
            band_rows_divisors: vec![1, 2, 4, 8, 16],
            backends: vec![
                BackendChoice::Auto,
                BackendChoice::Scalar,
                BackendChoice::Sse2,
                BackendChoice::Avx2,
                BackendChoice::Avx512,
            ],
            numerics: vec![
                NumericsChoice::Auto,
                NumericsChoice::Exact,
                NumericsChoice::Fast,
            ],
            batch_windows: vec![],
            watermarks: vec![],
        }
    }

    /// The service-knob grid (batch coalescing window + watermarks),
    /// searched against `loadgen`-style replays.
    pub fn service(smoke: bool) -> SearchSpace {
        SearchSpace {
            batch_windows: if smoke {
                vec![1, 4, 8]
            } else {
                vec![1, 2, 4, 8, 16, 32]
            },
            watermarks: if smoke {
                vec![(75, 25), (90, 50)]
            } else {
                vec![(50, 10), (75, 25), (90, 50), (95, 75)]
            },
            ..SearchSpace::default()
        }
    }

    /// The number of non-empty knob dimensions this space searches.
    pub fn dimension_count(&self) -> usize {
        self.dimensions().len()
    }

    /// Materializes the non-empty dimensions as named candidate setters.
    fn dimensions(&self) -> Vec<(&'static str, Vec<Setter>)> {
        fn dim<T: Copy + 'static>(
            name: &'static str,
            values: &[T],
            set: fn(&mut Tunables, T),
        ) -> Option<(&'static str, Vec<Setter>)> {
            if values.is_empty() {
                return None;
            }
            let setters = values
                .iter()
                .map(|&v| -> Setter {
                    Box::new(move |t| {
                        let mut t = *t;
                        set(&mut t, v);
                        t
                    })
                })
                .collect();
            Some((name, setters))
        }
        [
            dim("tile_width", &self.tile_widths, |t, v| t.tile_width = v),
            dim("tile_height", &self.tile_heights, |t, v| t.tile_height = v),
            dim("merge_factor", &self.merge_factors, |t, v| {
                t.merge_factor = v;
            }),
            dim("halo_margin", &self.halo_margins, |t, v| t.halo_margin = v),
            dim("threads", &self.threads, |t, v| t.threads = v),
            dim("band_rows_divisor", &self.band_rows_divisors, |t, v| {
                t.band_rows_divisor = v;
            }),
            dim("backend", &self.backends, |t, v| t.backend = v),
            dim("numerics", &self.numerics, |t, v| t.numerics = v),
            dim("batch_window", &self.batch_windows, |t, v| {
                t.batch_window = v;
            }),
            dim("watermarks", &self.watermarks, |t, (hi, lo)| {
                t.high_watermark_pct = hi;
                t.low_watermark_pct = lo;
            }),
        ]
        .into_iter()
        .flatten()
        .collect()
    }
}

/// A small geometric thread grid `1, 2, 4, …` capped at `max` with at most
/// `len` entries, always containing `max` itself.
fn thread_grid(max: usize, len: usize) -> Vec<usize> {
    let max = max.max(1);
    let mut grid = Vec::new();
    let mut n = 1;
    while n < max && grid.len() + 1 < len {
        grid.push(n);
        n *= 2;
    }
    grid.push(max);
    grid
}

/// Search budget and filter shape.
#[derive(Debug, Clone, Copy)]
pub struct SearchOptions {
    /// Maximum coordinate-descent sweeps over all dimensions.
    pub sweeps: usize,
    /// How many best-by-proxy survivors get a full measurement.
    pub keep_top: usize,
}

impl Default for SearchOptions {
    /// Two sweeps, three survivors.
    fn default() -> Self {
        SearchOptions {
            sweeps: 2,
            keep_top: 3,
        }
    }
}

/// Which phase of the enumerate-then-filter loop a trial ran in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrialPhase {
    /// Cheap proxy measurement during coordinate descent.
    Proxy,
    /// Full measurement of a surviving configuration.
    Full,
}

impl TrialPhase {
    /// Stable identifier (`proxy`/`full`).
    pub fn as_str(&self) -> &'static str {
        match self {
            TrialPhase::Proxy => "proxy",
            TrialPhase::Full => "full",
        }
    }
}

/// One measured (or pruned) configuration.
#[derive(Debug, Clone)]
pub struct Trial {
    /// Phase the trial ran in.
    pub phase: TrialPhase,
    /// Knob dimension the candidate varied (`"baseline"`/`"survivor"` for
    /// the anchor measurements).
    pub dimension: &'static str,
    /// The candidate configuration.
    pub tunables: Tunables,
    /// Measured score in milliseconds (lower is better); `None` when the
    /// configuration was invalid or the measurement declined it.
    pub score_ms: Option<f64>,
    /// Whether the candidate became the incumbent when it ran.
    pub accepted: bool,
}

/// The result of one search: the winner, the anchors it is judged against,
/// and the complete trial log.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// The winning configuration (by full score; the baseline itself if
    /// nothing beat it).
    pub best: Tunables,
    /// Proxy score of the starting configuration, ms.
    pub baseline_proxy_ms: f64,
    /// Proxy score of the best configuration found by descent, ms.
    pub best_proxy_ms: f64,
    /// Full score of the starting configuration, ms.
    pub baseline_full_ms: f64,
    /// Full score of the winning configuration, ms.
    pub best_full_ms: f64,
    /// Every trial, in execution order.
    pub trials: Vec<Trial>,
    /// Candidates pruned before full measurement (invalid or not better on
    /// the proxy).
    pub pruned: usize,
    /// Knob dimensions actually searched.
    pub dimensions_searched: usize,
}

impl SearchOutcome {
    /// Baseline-over-best on the full measurement: >1 means the search
    /// found a faster schedule.
    pub fn speedup(&self) -> f64 {
        if self.best_full_ms > 0.0 {
            self.baseline_full_ms / self.best_full_ms
        } else {
            1.0
        }
    }
}

/// Runs the enumerate-then-filter search described in the module docs.
///
/// `proxy` and `full` map a configuration to a score in milliseconds
/// (lower is better); returning `None` prunes the candidate. Returns
/// `None` only when the *baseline* itself cannot be measured — there is
/// nothing meaningful to search from then.
pub fn coordinate_descent(
    space: &SearchSpace,
    baseline: Tunables,
    opts: &SearchOptions,
    telemetry: &Telemetry,
    proxy: &mut dyn FnMut(&Tunables) -> Option<f64>,
    full: &mut dyn FnMut(&Tunables) -> Option<f64>,
) -> Option<SearchOutcome> {
    let dimensions = space.dimensions();
    let mut trials = Vec::new();
    let mut pruned = 0usize;

    let measure = |phase: TrialPhase,
                   dimension: &'static str,
                   t: &Tunables,
                   f: &mut dyn FnMut(&Tunables) -> Option<f64>,
                   trials: &mut Vec<Trial>|
     -> Option<f64> {
        let score = if t.validate().is_ok() { f(t) } else { None };
        telemetry.counter_add(names::TUNE_TRIALS, 1);
        if let Some(ms) = score {
            telemetry.observe(names::TUNE_TRIAL_MS, ms);
        }
        trials.push(Trial {
            phase,
            dimension,
            tunables: *t,
            score_ms: score,
            accepted: false,
        });
        score
    };

    let baseline_proxy_ms = measure(TrialPhase::Proxy, "baseline", &baseline, proxy, &mut trials)?;
    trials.last_mut().expect("baseline trial recorded").accepted = true;

    // Phase 1: coordinate descent on the proxy, collecting survivors.
    let mut incumbent = baseline;
    let mut incumbent_ms = baseline_proxy_ms;
    let mut survivors: Vec<(Tunables, f64)> = vec![(baseline, baseline_proxy_ms)];
    for _sweep in 0..opts.sweeps.max(1) {
        let mut improved = false;
        for (name, setters) in &dimensions {
            for setter in setters {
                let candidate = setter(&incumbent);
                if candidate == incumbent {
                    continue;
                }
                let Some(ms) = measure(TrialPhase::Proxy, name, &candidate, proxy, &mut trials)
                else {
                    pruned += 1;
                    continue;
                };
                if !survivors.iter().any(|(t, _)| *t == candidate) {
                    survivors.push((candidate, ms));
                }
                if ms < incumbent_ms {
                    incumbent = candidate;
                    incumbent_ms = ms;
                    improved = true;
                    trials.last_mut().expect("trial recorded").accepted = true;
                } else {
                    pruned += 1;
                }
            }
        }
        if !improved {
            break;
        }
    }

    // Phase 2: full measurement of the baseline plus the best survivors.
    survivors.sort_by(|a, b| a.1.total_cmp(&b.1));
    survivors.truncate(opts.keep_top.max(1));
    let baseline_full_ms = measure(TrialPhase::Full, "baseline", &baseline, full, &mut trials)?;
    let mut best = baseline;
    let mut best_full_ms = baseline_full_ms;
    for (candidate, _) in &survivors {
        if *candidate == baseline {
            continue;
        }
        let Some(ms) = measure(TrialPhase::Full, "survivor", candidate, full, &mut trials) else {
            pruned += 1;
            continue;
        };
        if ms < best_full_ms {
            best = *candidate;
            best_full_ms = ms;
            trials.last_mut().expect("trial recorded").accepted = true;
        }
    }

    telemetry.counter_add(names::TUNE_TRIALS_PRUNED, pruned as u64);
    Some(SearchOutcome {
        best,
        baseline_proxy_ms,
        best_proxy_ms: incumbent_ms,
        baseline_full_ms,
        best_full_ms,
        trials,
        pruned,
        dimensions_searched: dimensions.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic synthetic cost surface with a unique optimum, so
    /// the descent's convergence is checkable without real measurements.
    fn synthetic_cost(t: &Tunables) -> Option<f64> {
        t.validate().ok()?;
        let backend_cost = match t.backend {
            BackendChoice::Avx512 => 0.0,
            BackendChoice::Avx2 => 1.0,
            BackendChoice::Sse2 => 4.0,
            BackendChoice::Auto => 6.0,
            BackendChoice::Scalar => 10.0,
        };
        Some(
            (t.tile_width as f64 - 128.0).abs()
                + (t.tile_height as f64 - 120.0).abs()
                + f64::from(t.merge_factor.abs_diff(4)) * 3.0
                + (t.threads as f64 - 4.0).abs() * 2.0
                + (t.band_rows_divisor as f64 - 1.0).abs()
                + t.halo_margin as f64
                + backend_cost
                + 100.0,
        )
    }

    #[test]
    fn descent_finds_the_synthetic_optimum() {
        let space = SearchSpace {
            threads: vec![1, 2, 4],
            ..SearchSpace::smoke(4)
        };
        assert!(space.dimension_count() >= 5, "acceptance: >= 5 dimensions");
        let tele = Telemetry::null();
        let outcome = coordinate_descent(
            &space,
            Tunables::default(),
            &SearchOptions::default(),
            &tele,
            &mut synthetic_cost,
            &mut synthetic_cost,
        )
        .unwrap();
        assert_eq!(outcome.best.tile_width, 128);
        assert_eq!(outcome.best.tile_height, 120);
        assert_eq!(outcome.best.merge_factor, 4);
        assert_eq!(outcome.best.threads, 4);
        assert_eq!(outcome.best.band_rows_divisor, 1);
        assert_eq!(outcome.best.backend, BackendChoice::Auto); // smoke space has no avx2
        assert!(outcome.speedup() > 1.0);
        assert!(outcome.pruned > 0, "descent must prune losing candidates");
        let snap = tele.snapshot();
        assert_eq!(
            snap.counter(names::TUNE_TRIALS),
            Some(outcome.trials.len() as u64)
        );
        assert!(snap.counter(names::TUNE_TRIALS_PRUNED).is_some());
    }

    #[test]
    fn unmeasurable_baseline_aborts_the_search() {
        let tele = Telemetry::disabled();
        let outcome = coordinate_descent(
            &SearchSpace::smoke(2),
            Tunables::default(),
            &SearchOptions::default(),
            &tele,
            &mut |_| None,
            &mut |_| None,
        );
        assert!(outcome.is_none());
    }

    #[test]
    fn winner_is_decided_on_full_scores_not_proxy_scores() {
        // The proxy loves scalar; the full measurement knows better. The
        // winner must come from the full phase.
        let space = SearchSpace {
            backends: vec![BackendChoice::Auto, BackendChoice::Scalar],
            ..SearchSpace::default()
        };
        let mut proxy = |t: &Tunables| {
            Some(if t.backend == BackendChoice::Scalar {
                1.0
            } else {
                2.0
            })
        };
        let mut full = |t: &Tunables| {
            Some(if t.backend == BackendChoice::Scalar {
                9.0
            } else {
                3.0
            })
        };
        let outcome = coordinate_descent(
            &space,
            Tunables::default(),
            &SearchOptions::default(),
            &Telemetry::disabled(),
            &mut proxy,
            &mut full,
        )
        .unwrap();
        assert_eq!(outcome.best.backend, BackendChoice::Auto);
        assert!((outcome.speedup() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn service_space_searches_only_service_dimensions() {
        let space = SearchSpace::service(true);
        assert_eq!(space.dimension_count(), 2);
        let cost = |t: &Tunables| Some(t.batch_window as f64 + 0.1);
        let outcome = coordinate_descent(
            &space,
            Tunables::default(),
            &SearchOptions::default(),
            &Telemetry::disabled(),
            &mut cost.clone(),
            &mut cost.clone(),
        )
        .unwrap();
        assert_eq!(outcome.best.batch_window, 1);
        // Solver knobs never moved.
        assert_eq!(outcome.best.tile_width, Tunables::default().tile_width);
    }

    #[test]
    fn thread_grid_contains_max_and_is_bounded() {
        assert_eq!(thread_grid(1, 4), vec![1]);
        assert_eq!(thread_grid(8, 4), vec![1, 2, 4, 8]);
        assert_eq!(thread_grid(6, 3), vec![1, 2, 6]);
        assert_eq!(thread_grid(0, 3), vec![1]);
    }
}
