//! Determinism contract of the fault-injection harness: the injector is a
//! pure function of its seed and the sequence of injection points, so two
//! identical guarded runs must produce identical corrupted traces (the
//! [`FaultEvent`] log), identical [`RecoveryReport`]s, and bit-identical
//! outputs — across arbitrary seeds and fault rates.

use chambolle_core::ChambolleParams;
use chambolle_hwsim::{AccelConfig, AccelGuardConfig, ChambolleAccel, FaultConfig, FaultInjector};
use chambolle_imaging::Grid;
use proptest::prelude::*;

fn frame(w: usize, h: usize, salt: u64) -> Grid<f32> {
    Grid::from_fn(w, h, |x, y| {
        let n = (x as u64)
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add((y as u64).wrapping_mul(1_442_695_040_888_963_407))
            .wrapping_add(salt);
        let base = if (x / 9 + y / 7) % 2 == 0 { 0.25 } else { 0.75 };
        base + ((n >> 33) % 101) as f32 / 1000.0
    })
}

/// One full guarded run from scratch: fresh accelerator, fresh injector.
fn guarded_run(
    seed: u64,
    rate: f64,
    lut_rate: f64,
    datapath_rate: f64,
) -> (
    Vec<chambolle_hwsim::FaultEvent>,
    chambolle_core::RecoveryReport,
    Vec<f32>,
) {
    let v = frame(96, 80, seed ^ 0xABCD);
    let params = ChambolleParams::with_iterations(6);
    let mut accel = ChambolleAccel::new(AccelConfig::default());
    let mut injector = FaultInjector::new(FaultConfig {
        seed,
        bram_flip_rate: rate,
        lut_rate,
        datapath_rate,
    });
    let out = accel
        .denoise_pair_guarded(
            &v,
            None,
            &params,
            &mut injector,
            &AccelGuardConfig::default(),
        )
        .expect("guarded run failed");
    (
        injector.events().to_vec(),
        out.report,
        out.u1.as_slice().to_vec(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Same seed + same schedule ⇒ identical corrupted trace, identical
    /// recovery report, identical output bits.
    #[test]
    fn same_seed_same_schedule_is_bit_reproducible(
        seed in any::<u64>(),
        rate_scale in 0u32..4,
    ) {
        let rate = rate_scale as f64 * 4e-4;
        let (ev_a, rep_a, u_a) = guarded_run(seed, rate, rate / 8.0, rate / 8.0);
        let (ev_b, rep_b, u_b) = guarded_run(seed, rate, rate / 8.0, rate / 8.0);
        prop_assert_eq!(&ev_a, &ev_b, "fault traces diverged for seed {}", seed);
        prop_assert_eq!(&rep_a, &rep_b, "recovery reports diverged for seed {}", seed);
        prop_assert_eq!(&u_a, &u_b, "outputs diverged for seed {}", seed);
    }

    /// Different seeds at a nonzero rate draw different schedules (the PRNG
    /// actually feeds the schedule rather than being ignored).
    #[test]
    fn different_seeds_draw_different_traces(seed in any::<u64>()) {
        let (ev_a, _, _) = guarded_run(seed, 5e-3, 0.0, 0.0);
        let (ev_b, _, _) = guarded_run(seed ^ 0x9E37_79B9_7F4A_7C15, 5e-3, 0.0, 0.0);
        prop_assert!(!ev_a.is_empty(), "rate 5e-3 over 96x80x6 rounds must fire");
        prop_assert_ne!(&ev_a, &ev_b);
    }
}

/// The event log replays exactly on a standalone injector too (no
/// accelerator in the loop): corrupting the same grid twice from the same
/// seed yields the same words.
#[test]
fn standalone_injector_replays_bit_exact() {
    use chambolle_hwsim::quantize_input;
    let v = frame(64, 48, 7);
    let words = quantize_input(&v);
    let config = FaultConfig {
        seed: 0xFEED_BEEF,
        bram_flip_rate: 0.01,
        lut_rate: 0.0,
        datapath_rate: 0.0,
    };
    let run = |()| {
        let mut inj = FaultInjector::new(config);
        let mut state = words.clone();
        for round in 0..4 {
            inj.corrupt_state(round, 0, &mut state);
        }
        (inj.events().to_vec(), state)
    };
    let (ev_a, st_a) = run(());
    let (ev_b, st_b) = run(());
    assert!(!ev_a.is_empty());
    assert_eq!(ev_a, ev_b);
    assert_eq!(st_a.as_slice(), st_b.as_slice());
}
