//! Dual-port synchronous block-RAM model.
//!
//! Virtex-5 BRAMs have two independent ports; reads are synchronous (data
//! appears one clock after the address). The simulator enforces the port
//! discipline the design relies on — at most one access per port per cycle —
//! and counts accesses so the paper's data-reuse claims (15 vs. 28 operand
//! reads, Section V-B) can be checked quantitatively.

use std::fmt;

use crate::trace::{AccessKind, BramAccess, SharedRecorder};

/// Which of the two ports an access uses. The design reads on port 1 and
/// writes updated `px`/`py` on port 2 (Figure 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Port {
    /// Read port (port 1 in Figure 3).
    One,
    /// Write port (port 2 in Figure 3).
    Two,
}

/// A dual-port synchronous RAM of 32-bit words.
///
/// Drive it like hardware: issue reads/writes during a cycle, then call
/// [`Bram::clock`] to advance. Read data issued in cycle `t` is visible via
/// [`Bram::data_out`] during cycle `t + 1`.
///
/// # Examples
///
/// ```
/// use chambolle_hwsim::bram::{Bram, Port};
///
/// let mut ram = Bram::new("demo", 16);
/// ram.write(Port::Two, 3, 0xABCD);
/// ram.clock();
/// ram.issue_read(Port::One, 3);
/// ram.clock();
/// assert_eq!(ram.data_out(Port::One), Some(0xABCD));
/// ```
#[derive(Debug, Clone)]
pub struct Bram {
    name: String,
    words: Vec<u32>,
    // Per-port in-flight state for the current cycle.
    pending_read: [Option<usize>; 2],
    pending_write: [Option<(usize, u32)>; 2],
    data_out: [Option<u32>; 2],
    stats: BramStats,
    recorder: Option<SharedRecorder>,
}

/// Access counters of one BRAM.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BramStats {
    /// Total read accesses.
    pub reads: u64,
    /// Total write accesses.
    pub writes: u64,
    /// Clock cycles elapsed.
    pub cycles: u64,
    /// Read accesses per port (`[Port::One, Port::Two]`).
    pub port_reads: [u64; 2],
    /// Write accesses per port (`[Port::One, Port::Two]`).
    pub port_writes: [u64; 2],
}

impl BramStats {
    /// Cycles in which the given port (0 = [`Port::One`], 1 = [`Port::Two`])
    /// issued no access — the port's stall/idle tally. Each port admits at
    /// most one access per cycle, so this is exact, not an estimate.
    pub fn port_idle_cycles(&self, port: usize) -> u64 {
        self.cycles
            .saturating_sub(self.port_reads[port] + self.port_writes[port])
    }

    /// Element-wise accumulation of another BRAM's counters.
    pub fn merge(&mut self, other: &BramStats) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.cycles += other.cycles;
        for i in 0..2 {
            self.port_reads[i] += other.port_reads[i];
            self.port_writes[i] += other.port_writes[i];
        }
    }
}

impl Bram {
    /// Creates a zero-initialized RAM with `capacity` 32-bit words.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(name: impl Into<String>, capacity: usize) -> Self {
        assert!(capacity > 0, "BRAM capacity must be positive");
        Bram {
            name: name.into(),
            words: vec![0; capacity],
            pending_read: [None, None],
            pending_write: [None, None],
            data_out: [None, None],
            stats: BramStats::default(),
            recorder: None,
        }
    }

    /// Attaches (or detaches, with `None`) an access recorder for waveform
    /// dumps — see [`crate::trace`].
    pub fn set_recorder(&mut self, recorder: Option<SharedRecorder>) {
        self.recorder = recorder;
    }

    /// The instance name (for diagnostics).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Word capacity.
    pub fn capacity(&self) -> usize {
        self.words.len()
    }

    /// Access counters.
    pub fn stats(&self) -> BramStats {
        self.stats
    }

    fn port_index(port: Port) -> usize {
        match port {
            Port::One => 0,
            Port::Two => 1,
        }
    }

    /// Issues a synchronous read; the word becomes visible after the next
    /// [`Bram::clock`].
    ///
    /// # Panics
    ///
    /// Panics if the address is out of range or the port is already busy
    /// this cycle — a real dual-port BRAM cannot do two operations on one
    /// port, so a violation means the simulated schedule is wrong.
    pub fn issue_read(&mut self, port: Port, addr: usize) {
        assert!(
            addr < self.words.len(),
            "{}: read address {addr} out of range (capacity {})",
            self.name,
            self.words.len()
        );
        let i = Self::port_index(port);
        assert!(
            self.pending_read[i].is_none() && self.pending_write[i].is_none(),
            "{}: port {port:?} used twice in one cycle",
            self.name
        );
        self.pending_read[i] = Some(addr);
        self.stats.reads += 1;
        self.stats.port_reads[i] += 1;
    }

    /// Issues a write, committed at the next [`Bram::clock`].
    ///
    /// # Panics
    ///
    /// Panics if the address is out of range or the port is already busy
    /// this cycle.
    pub fn write(&mut self, port: Port, addr: usize, data: u32) {
        assert!(
            addr < self.words.len(),
            "{}: write address {addr} out of range (capacity {})",
            self.name,
            self.words.len()
        );
        let i = Self::port_index(port);
        assert!(
            self.pending_read[i].is_none() && self.pending_write[i].is_none(),
            "{}: port {port:?} used twice in one cycle",
            self.name
        );
        self.pending_write[i] = Some((addr, data));
        self.stats.writes += 1;
        self.stats.port_writes[i] += 1;
    }

    /// Advances one clock: commits writes, then latches read data
    /// (write-before-read on address collisions, the Virtex-5
    /// `WRITE_FIRST` mode).
    pub fn clock(&mut self) {
        for i in 0..2 {
            if let Some((addr, data)) = self.pending_write[i].take() {
                self.words[addr] = data;
                if let Some(rec) = &self.recorder {
                    rec.borrow_mut().record(BramAccess {
                        cycle: self.stats.cycles,
                        bram: self.name.clone(),
                        kind: AccessKind::Write,
                        port: if i == 0 { Port::One } else { Port::Two },
                        addr,
                        data,
                    });
                }
            }
        }
        for i in 0..2 {
            self.data_out[i] = self.pending_read[i].take().map(|addr| {
                let data = self.words[addr];
                if let Some(rec) = &self.recorder {
                    rec.borrow_mut().record(BramAccess {
                        cycle: self.stats.cycles,
                        bram: self.name.clone(),
                        kind: AccessKind::Read,
                        port: if i == 0 { Port::One } else { Port::Two },
                        addr,
                        data,
                    });
                }
                data
            });
        }
        self.stats.cycles += 1;
    }

    /// The word latched by the read issued in the previous cycle, if any.
    pub fn data_out(&self, port: Port) -> Option<u32> {
        self.data_out[Self::port_index(port)]
    }

    /// Direct backdoor read (initialization/verification, not a port access).
    pub fn peek(&self, addr: usize) -> u32 {
        self.words[addr]
    }

    /// Direct backdoor write (initial loading "through the FPGA input pins",
    /// Section IV — not counted as a port access).
    pub fn poke(&mut self, addr: usize, data: u32) {
        self.words[addr] = data;
    }

    /// Fault-injection backdoor: flips one bit of the stored word, modelling
    /// a single-event upset in the BRAM cell array (not a port access).
    ///
    /// # Panics
    ///
    /// Panics if the address is out of range or `bit >= 32`.
    pub fn flip_bit(&mut self, addr: usize, bit: u32) {
        assert!(
            addr < self.words.len(),
            "{}: fault address {addr} out of range (capacity {})",
            self.name,
            self.words.len()
        );
        assert!(bit < 32, "{}: bit index {bit} out of range", self.name);
        self.words[addr] ^= 1 << bit;
    }
}

impl fmt::Display for Bram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} words, {} reads, {} writes)",
            self.name,
            self.words.len(),
            self.stats.reads,
            self.stats.writes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_has_one_cycle_latency() {
        let mut ram = Bram::new("t", 8);
        ram.poke(5, 42);
        ram.issue_read(Port::One, 5);
        assert_eq!(ram.data_out(Port::One), None, "data not visible same cycle");
        ram.clock();
        assert_eq!(ram.data_out(Port::One), Some(42));
        ram.clock();
        assert_eq!(ram.data_out(Port::One), None, "data valid for one cycle");
    }

    #[test]
    fn ports_are_independent() {
        let mut ram = Bram::new("t", 8);
        ram.poke(1, 11);
        ram.issue_read(Port::One, 1);
        ram.write(Port::Two, 2, 22);
        ram.clock();
        assert_eq!(ram.data_out(Port::One), Some(11));
        assert_eq!(ram.peek(2), 22);
    }

    #[test]
    fn write_first_on_same_address() {
        let mut ram = Bram::new("t", 8);
        ram.poke(3, 1);
        ram.issue_read(Port::One, 3);
        ram.write(Port::Two, 3, 99);
        ram.clock();
        assert_eq!(ram.data_out(Port::One), Some(99), "WRITE_FIRST semantics");
    }

    #[test]
    #[should_panic(expected = "used twice")]
    fn double_use_of_port_panics() {
        let mut ram = Bram::new("t", 8);
        ram.issue_read(Port::One, 0);
        ram.issue_read(Port::One, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let mut ram = Bram::new("t", 8);
        ram.issue_read(Port::One, 8);
    }

    #[test]
    fn flip_bit_is_a_single_bit_xor() {
        let mut ram = Bram::new("t", 4);
        ram.poke(2, 0b1010);
        ram.flip_bit(2, 0);
        assert_eq!(ram.peek(2), 0b1011);
        ram.flip_bit(2, 31);
        assert_eq!(ram.peek(2), 0b1011 | (1 << 31));
        ram.flip_bit(2, 31);
        ram.flip_bit(2, 0);
        assert_eq!(ram.peek(2), 0b1010, "double flip restores the word");
        let before = ram.stats();
        assert_eq!(before.reads, 0);
        assert_eq!(before.writes, 0, "backdoor faults are not port accesses");
    }

    #[test]
    #[should_panic(expected = "bit index")]
    fn flip_bit_rejects_bad_bit() {
        let mut ram = Bram::new("t", 4);
        ram.flip_bit(0, 32);
    }

    #[test]
    fn stats_count_accesses() {
        let mut ram = Bram::new("t", 4);
        ram.issue_read(Port::One, 0);
        ram.write(Port::Two, 1, 5);
        ram.clock();
        ram.clock();
        let s = ram.stats();
        assert_eq!(s.reads, 1);
        assert_eq!(s.writes, 1);
        assert_eq!(s.cycles, 2);
    }

    #[test]
    fn stats_split_accesses_by_port() {
        let mut ram = Bram::new("t", 4);
        ram.issue_read(Port::One, 0);
        ram.write(Port::Two, 1, 5);
        ram.clock();
        ram.issue_read(Port::One, 1);
        ram.clock();
        ram.clock();
        let s = ram.stats();
        assert_eq!(s.port_reads, [2, 0]);
        assert_eq!(s.port_writes, [0, 1]);
        assert_eq!(s.port_idle_cycles(0), 1);
        assert_eq!(s.port_idle_cycles(1), 2);
        let mut total = BramStats::default();
        total.merge(&s);
        total.merge(&s);
        assert_eq!(total.reads, 4);
        assert_eq!(total.port_reads, [4, 0]);
        assert_eq!(total.port_writes, [0, 2]);
    }
}
