//! Full-frame fixed-point reference model.
//!
//! This executes Algorithm 1 with the *hardware's* arithmetic (the
//! [`crate::datapath`] functions) but with none of the hardware's structure —
//! a plain double loop over the frame. It answers two questions:
//!
//! 1. **Is the cycle simulator right?** The systolic array must produce
//!    bit-identical `p` and `u` (tested in [`crate::array`]).
//! 2. **What does fixed point cost in accuracy?** Comparing against the
//!    `f32` solver of `chambolle-core` bounds the quantization error of the
//!    13/9-bit word format and the LUT square root.

use chambolle_fixed::{PackedWord, SqrtUnit, WordFixed};
use chambolle_imaging::{Grid, Image};

use crate::datapath::{gather_pe_t_inputs, pe_t, pe_v, PeVInputs};
use crate::params::HwParams;

/// Quantizes an `f32` image into packed words with `p = 0` (the iteration's
/// initial state). Out-of-range intensities saturate into the 13-bit `v`
/// field.
pub fn quantize_input(v: &Image) -> Grid<PackedWord> {
    v.map(|&val| {
        PackedWord::new_saturating(WordFixed::from_f32(val), WordFixed::ZERO, WordFixed::ZERO)
    })
}

/// The fixed-point state after running Algorithm 1: the packed words hold
/// the final dual field, and `u` is the primal output.
#[derive(Debug, Clone, PartialEq)]
pub struct FixedSolution {
    /// Final packed state (`v` unchanged, `px`/`py` after `iterations`).
    pub words: Grid<PackedWord>,
    /// Primal output `u = v − θ·div p`, in the fixed-point datapath.
    pub u: Grid<WordFixed>,
}

/// Runs `params.iterations` Chambolle iterations in fixed point over the
/// whole frame, then recovers `u` with a final Term sweep — exactly the
/// schedule the accelerator executes (with the paper's LUT square root).
pub fn fixed_chambolle_reference(words: &Grid<PackedWord>, params: &HwParams) -> FixedSolution {
    fixed_chambolle_reference_with(words, params, &SqrtUnit::lut())
}

/// Like [`fixed_chambolle_reference`], with a selectable square-root unit —
/// the Section V-C design-choice ablation (LUT vs. iterative).
pub fn fixed_chambolle_reference_with(
    words: &Grid<PackedWord>,
    params: &HwParams,
    sqrt: &SqrtUnit,
) -> FixedSolution {
    let mut state = words.clone();
    let (w, h) = state.dims();
    let mut term = Grid::new(w, h, WordFixed::ZERO);

    for _ in 0..params.iterations {
        // Pass 1: Term from the previous iteration's p (PE-T battery).
        for y in 0..h {
            for x in 0..w {
                term[(x, y)] = pe_t(gather_pe_t_inputs(&state, x, y), params).term;
            }
        }
        // Pass 2: p update (PE-V battery).
        for y in 0..h {
            for x in 0..w {
                let word = state[(x, y)];
                let (px, py) = pe_v(
                    PeVInputs {
                        c_term: term[(x, y)],
                        r_term: if x + 1 < w {
                            term[(x + 1, y)]
                        } else {
                            WordFixed::ZERO
                        },
                        b_term: if y + 1 < h {
                            term[(x, y + 1)]
                        } else {
                            WordFixed::ZERO
                        },
                        c_px: word.px(),
                        c_py: word.py(),
                        last_col: x + 1 == w,
                        last_row: y + 1 == h,
                    },
                    params,
                    sqrt,
                );
                state[(x, y)] = word.with_p(px, py);
            }
        }
    }

    // Final u sweep (a PE-T pass with the PE-Vs disabled).
    let u = Grid::from_fn(w, h, |x, y| {
        pe_t(gather_pe_t_inputs(&state, x, y), params).u
    });

    FixedSolution { words: state, u }
}

/// Converts a fixed-point `u` back to `f32`.
pub fn dequantize(u: &Grid<WordFixed>) -> Image {
    u.map(|v| v.to_f32())
}

#[cfg(test)]
mod tests {
    use super::*;
    use chambolle_core::{chambolle_denoise, ChambolleParams};
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_image(w: usize, h: usize, seed: u64) -> Image {
        let mut rng = StdRng::seed_from_u64(seed);
        Grid::from_fn(w, h, |_, _| rng.gen_range(0.0f32..1.0))
    }

    #[test]
    fn constant_image_is_fixed_point() {
        let v = Grid::new(12, 10, 0.5f32);
        let sol = fixed_chambolle_reference(&quantize_input(&v), &HwParams::standard(30));
        for &u in sol.u.as_slice() {
            assert_eq!(u.to_f32(), 0.5);
        }
        for &w in sol.words.as_slice() {
            assert_eq!(w.px(), WordFixed::ZERO);
            assert_eq!(w.py(), WordFixed::ZERO);
        }
    }

    #[test]
    fn dual_stays_in_nine_bits() {
        let v = random_image(24, 20, 3);
        let sol = fixed_chambolle_reference(&quantize_input(&v), &HwParams::standard(60));
        for &w in sol.words.as_slice() {
            assert!(w.px().fits_in(9));
            assert!(w.py().fits_in(9));
        }
    }

    #[test]
    fn trailing_edge_p_stays_zero() {
        // px on the last column and py on the last row never move from zero
        // (their Forward difference is gated off), which is what makes the
        // uniform Backward rule reproduce Chambolle's boundary divergence.
        let v = random_image(16, 14, 5);
        let sol = fixed_chambolle_reference(&quantize_input(&v), &HwParams::standard(40));
        for y in 0..14 {
            assert_eq!(sol.words[(15, y)].px(), WordFixed::ZERO);
        }
        for x in 0..16 {
            assert_eq!(sol.words[(x, 13)].py(), WordFixed::ZERO);
        }
    }

    #[test]
    fn matches_float_solver_within_quantization() {
        let v = random_image(32, 24, 11);
        let iters = 50;
        let sol = fixed_chambolle_reference(&quantize_input(&v), &HwParams::standard(iters));
        let (u_float, _) = chambolle_denoise(&v, &ChambolleParams::with_iterations(iters));
        let mut max_err = 0.0f32;
        for i in 0..u_float.len() {
            let err = (sol.u.as_slice()[i].to_f32() - u_float.as_slice()[i]).abs();
            max_err = max_err.max(err);
        }
        // 9-bit dual + 13-bit v + LUT sqrt: a few percent of the unit range.
        assert!(max_err < 0.05, "fixed-vs-float max error {max_err}");
    }

    #[test]
    fn denoises_a_noisy_step() {
        let mut rng = StdRng::seed_from_u64(8);
        let v = Grid::from_fn(32, 16, |x, _| {
            let base = if x < 16 { 0.25f32 } else { 0.75 };
            base + rng.gen_range(-0.1..0.1)
        });
        let sol = fixed_chambolle_reference(&quantize_input(&v), &HwParams::standard(120));
        let u = dequantize(&sol.u);
        let noise = |img: &Image| -> f32 {
            let mut acc = 0.0;
            let mut n = 0;
            for y in 2..14 {
                for x in 2..14 {
                    acc += (img[(x, y)] - img[(x - 1, y)]).abs();
                    n += 1;
                }
            }
            acc / n as f32
        };
        assert!(
            noise(&u) < 0.5 * noise(&v),
            "fixed-point solver should denoise"
        );
        // Edge preserved.
        let left: f32 = (4..12).map(|y| u[(4, y)]).sum::<f32>() / 8.0;
        let right: f32 = (4..12).map(|y| u[(27, y)]).sum::<f32>() / 8.0;
        assert!(right - left > 0.3);
    }

    #[test]
    fn quantize_saturates_out_of_range() {
        let v = Grid::from_vec(2, 1, vec![100.0f32, -100.0]).unwrap();
        let q = quantize_input(&v);
        assert!(q[(0, 0)].v().to_f32() < 16.0);
        assert!(q[(1, 0)].v().to_f32() >= -16.0);
    }
}
