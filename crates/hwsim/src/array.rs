//! Cycle-stepped simulation of one PE array (Figures 4 and 5): the ladder of
//! 7 PE-Ts and 7 PE-Vs that processes one component (`u1` or `u2`) of one
//! sliding window, together with its 8 data BRAMs and its BRAM-Term.
//!
//! # Schedule
//!
//! The array is a diagonal systolic wavefront. With `s` the step counter of
//! one region pass over rows `r0 .. r0+nr-1`:
//!
//! - **PE-T_i** processes `(row r0+i, col c)` at step `s = c + 1 + i` (the
//!   `+1` is the synchronous BRAM read issued one step earlier; the diagonal
//!   `+i` is the stagger visible in Figure 4). Its `l_px` comes from its own
//!   previous-step word, its `a_py` from the row above's previous-step word
//!   (the flip-flop reuse network of Figure 5); only the top row reads
//!   `a_py` from the eighth BRAM.
//! - **PE-V_i** (`i ≥ 1`) processes `(row r0+i-1, col c)` at the same step
//!   `c + 1 + i`: `c_Term` is the one-step-old output of PE-T_{i-1},
//!   `r_Term` its current output, `b_Term` the current output of PE-T_i —
//!   no BRAM access at all, exactly the paper's reuse claim.
//! - **PE-V_0** processes `(row r0-1, col c)` at step `c + 2`, reading the
//!   previous region's `Term` row from the BRAM-Term (one read per step; the
//!   second operand comes from a holding register).
//! - A **flush pass** updates the frame's last row, whose `Term2` is gated
//!   to zero, from the BRAM-Term.
//!
//! Every BRAM sees at most one access per port per cycle (asserted by
//! [`crate::bram::Bram`]); the eight data reads per step supply exactly the
//! 15 operand vectors of Section V-B (14 from seven `{v,px,py}` words plus
//! one `a_py`), versus 28 without reuse.

use chambolle_fixed::{PackedWord, SqrtUnit, WordFixed};
use chambolle_imaging::Grid;

use crate::bram::{Bram, Port};
use crate::datapath::{pe_t, pe_v, PeTInputs, PeTOutputs, PeVInputs};
use crate::params::HwParams;

/// Rows processed concurrently by one region pass in the paper's design
/// (7 PE-Ts — Section IV). The ladder depth is bounded by the BRAM
/// interleave: a region of `n` rows also reads the row above, so
/// `n + 1 <= 8` distinct `mod 8` banks requires `n <= 7`.
pub const ROWS_PER_REGION: usize = 7;
/// Data BRAMs per array: rows interleave `row mod 8` (Section V-B).
pub const DATA_BRAMS: usize = 8;
/// Pipeline fill per pass with the 1-cycle LUT square root: 1 control +
/// 1 BRAM read + 1 vertical rotator + 15 PE stages (the paper's 18-cycle
/// element latency, Section IV). A deeper square-root unit lengthens the PE
/// pipeline and thus the fill — see [`pass_fill_cycles`].
pub const PASS_FILL_CYCLES: u64 = 18;

/// Pipeline fill per pass for a given square-root latency: the LUT occupies
/// one of the 15 PE stages, so the fill is `17 + sqrt_latency`.
pub const fn pass_fill_cycles(sqrt_latency: u32) -> u64 {
    17 + sqrt_latency as u64
}

/// Geometry limits of one array (defaults are the paper's 92×88 window).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArrayConfig {
    /// Maximum window width = BRAM row stride (92 in the paper).
    pub stride: usize,
    /// Maximum window height (88 in the paper; must be a multiple of 8 for
    /// the BRAM interleave).
    pub max_rows: usize,
    /// PE-T/PE-V pairs in the ladder = rows per region pass (7 in the
    /// paper; at most [`ROWS_PER_REGION`] because of the 8-bank interleave).
    pub rows_per_region: usize,
}

impl ArrayConfig {
    /// The paper's geometry: 92-column stride, 88 rows, 1012 addresses per
    /// BRAM, 7-PE ladder.
    pub fn paper() -> Self {
        ArrayConfig {
            stride: 92,
            max_rows: 88,
            rows_per_region: ROWS_PER_REGION,
        }
    }

    /// The paper's geometry with a different ladder depth (1..=7) — the
    /// PE-count scaling ablation.
    ///
    /// # Panics
    ///
    /// Panics if `rows_per_region` is 0 or exceeds [`ROWS_PER_REGION`].
    pub fn paper_with_ladder(rows_per_region: usize) -> Self {
        assert!(
            (1..=ROWS_PER_REGION).contains(&rows_per_region),
            "ladder depth must be 1..={ROWS_PER_REGION}, got {rows_per_region}"
        );
        ArrayConfig {
            rows_per_region,
            ..ArrayConfig::paper()
        }
    }

    /// Words each data BRAM must hold (`(max_rows/8) * stride`; 1012 for the
    /// paper geometry).
    pub fn bram_capacity(&self) -> usize {
        self.max_rows.div_ceil(DATA_BRAMS) * self.stride
    }
}

impl Default for ArrayConfig {
    fn default() -> Self {
        ArrayConfig::paper()
    }
}

/// Statistics of one window run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArrayStats {
    /// Total cycles, including per-pass pipeline fill.
    pub cycles: u64,
    /// Region passes executed (including flush and u-sweep passes).
    pub passes: u64,
    /// Words read from the data BRAMs.
    pub data_reads: u64,
    /// Words written to the data BRAMs.
    pub data_writes: u64,
    /// BRAM-Term reads.
    pub term_reads: u64,
    /// BRAM-Term writes.
    pub term_writes: u64,
    /// PE-T evaluations.
    pub pe_t_ops: u64,
    /// PE-V evaluations.
    pub pe_v_ops: u64,
}

impl ArrayStats {
    /// Operand vectors fetched from BRAM per PE-T evaluation battery, the
    /// quantity of Section V-B: 15/7 with reuse versus 4 per PE-T (28/7)
    /// without.
    pub fn operand_vectors_per_element(&self) -> f64 {
        if self.pe_t_ops == 0 {
            return 0.0;
        }
        // Each of the 7 row words carries 2 reused vectors (c_px, c_py); the
        // extra eighth read carries 1 (a_py): 15 vectors per 7 elements.
        (2.0 * self.data_reads as f64 - self.aux_reads() as f64) / self.pe_t_ops as f64
    }

    fn aux_reads(&self) -> u64 {
        // Every eighth read is the single-vector a_py word; recover it from
        // the 8-reads-per-7-elements ratio.
        self.data_reads.saturating_sub(self.pe_t_ops)
    }
}

/// Result of running one window on one array.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowRun {
    /// Final packed state (the updated dual field, `v` unchanged).
    pub words: Grid<PackedWord>,
    /// Primal output `u` (from the final u-sweep).
    pub u: Grid<WordFixed>,
    /// Cycle and access statistics.
    pub stats: ArrayStats,
}

/// One PE array with its BRAMs and reuse registers.
#[derive(Debug, Clone)]
pub struct PeArray {
    config: ArrayConfig,
    sqrt: SqrtUnit,
    fill_cycles: u64,
    data: Vec<Bram>,
    bram_term: Bram,
    stats: ArrayStats,
}

/// Per-row register file of the reuse network (one step of history).
#[derive(Debug, Clone, Copy, Default)]
struct RowRegs {
    valid: bool,
    col: usize,
    word: PackedWord,
    term: WordFixed,
    u: WordFixed,
}

/// What a pass computes: normal Chambolle iterations update `p`; the final
/// u-sweep runs the PE-Ts only and records `u`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PassKind {
    Iterate,
    USweep,
}

impl PeArray {
    /// Creates an array for the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if `stride == 0` or `max_rows` is not a positive multiple of 8.
    pub fn new(config: ArrayConfig) -> Self {
        PeArray::with_sqrt(config, SqrtUnit::lut())
    }

    /// Creates an array with an explicit square-root unit (the Section V-C
    /// design-choice ablation).
    ///
    /// # Panics
    ///
    /// Panics if `stride == 0` or `max_rows` is not a positive multiple of 8.
    pub fn with_sqrt(config: ArrayConfig, sqrt: SqrtUnit) -> Self {
        assert!(config.stride > 0, "stride must be positive");
        assert!(
            config.max_rows > 0 && config.max_rows.is_multiple_of(DATA_BRAMS),
            "max_rows must be a positive multiple of {DATA_BRAMS}"
        );
        assert!(
            (1..=ROWS_PER_REGION).contains(&config.rows_per_region),
            "ladder depth must be 1..={ROWS_PER_REGION}, got {}",
            config.rows_per_region
        );
        let cap = config.bram_capacity();
        let data = (0..DATA_BRAMS)
            .map(|i| Bram::new(format!("data{i}"), cap))
            .collect();
        // Ping-pong Term buffer: two rows of `stride` words.
        let bram_term = Bram::new("term", 2 * config.stride);
        PeArray {
            config,
            fill_cycles: pass_fill_cycles(sqrt.latency_cycles()),
            sqrt,
            data,
            bram_term,
            stats: ArrayStats::default(),
        }
    }

    /// The geometry in use.
    pub fn config(&self) -> &ArrayConfig {
        &self.config
    }

    /// The PE-V square-root unit (for integrity inspection).
    pub fn sqrt_unit(&self) -> &SqrtUnit {
        &self.sqrt
    }

    /// Mutable access to the PE-V square-root unit — the fault-injection and
    /// scrubbing surface (corrupting or repairing a LUT does not change the
    /// unit's latency class, so the fill schedule stays valid).
    pub fn sqrt_unit_mut(&mut self) -> &mut SqrtUnit {
        &mut self.sqrt
    }

    /// Cumulative statistics across all windows processed so far.
    pub fn stats(&self) -> ArrayStats {
        self.stats
    }

    /// Aggregated per-port BRAM counters over the array's memories (the
    /// eight data BRAMs plus the BRAM-Term), cumulative since construction.
    pub fn bram_stats(&self) -> crate::bram::BramStats {
        let mut total = crate::bram::BramStats::default();
        for bram in &self.data {
            total.merge(&bram.stats());
        }
        total.merge(&self.bram_term.stats());
        total
    }

    /// Square-root table accesses the PE-V ladder has served, cumulative
    /// since construction (0 for the non-restoring unit).
    pub fn sqrt_lookups(&self) -> u64 {
        self.sqrt.lut_lookups()
    }

    /// Attaches an access recorder to every memory of this array for
    /// waveform dumps (see [`crate::trace`]).
    pub fn attach_recorder(&mut self, recorder: &crate::trace::SharedRecorder) {
        for bram in &mut self.data {
            bram.set_recorder(Some(recorder.clone()));
        }
        self.bram_term.set_recorder(Some(recorder.clone()));
    }

    fn addr(&self, row: usize, col: usize) -> usize {
        (row / DATA_BRAMS) * self.config.stride + col
    }

    /// Runs `params.iterations` Chambolle iterations plus the final u-sweep
    /// on one window.
    ///
    /// # Panics
    ///
    /// Panics if the window exceeds the configured geometry or is empty.
    pub fn process_window(&mut self, words: &Grid<PackedWord>, params: &HwParams) -> WindowRun {
        self.process_window_with(words, params, true)
    }

    /// Like [`PeArray::process_window`], but the final u-sweep is optional —
    /// the frame scheduler only sweeps `u` on the last round of a frame, so
    /// intermediate rounds must not pay its cycles. With `emit_u = false`
    /// the returned `u` grid is all zeros.
    ///
    /// # Panics
    ///
    /// Panics if the window exceeds the configured geometry or is empty.
    pub fn process_window_with(
        &mut self,
        words: &Grid<PackedWord>,
        params: &HwParams,
        emit_u: bool,
    ) -> WindowRun {
        let (w, h) = words.dims();
        assert!(w > 0 && h > 0, "window must be non-empty, got {w}x{h}");
        assert!(
            w <= self.config.stride && h <= self.config.max_rows,
            "window {w}x{h} exceeds array geometry {}x{}",
            self.config.stride,
            self.config.max_rows
        );
        let run_start = self.stats;

        // Initial loading "through the FPGA input pins" (Section IV) — a
        // backdoor, not a port access.
        for (x, y, word) in words.iter() {
            let addr = self.addr(y, x);
            self.data[y % DATA_BRAMS].poke(addr, word.to_bits());
        }

        let ladder = self.config.rows_per_region;
        let regions = h.div_ceil(ladder);
        let mut u_out = Grid::new(w, h, WordFixed::ZERO);

        for _ in 0..params.iterations {
            for r in 0..regions {
                let r0 = r * ladder;
                let nr = ladder.min(h - r0);
                self.region_pass(r0, nr, w, r % 2, params, PassKind::Iterate, &mut u_out);
            }
            self.flush_pass(w, h, (regions + 1) % 2, params);
        }

        // Final u-sweep: PE-T batteries only, recording u = v - theta*div p.
        if emit_u {
            for r in 0..regions {
                let r0 = r * ladder;
                let nr = ladder.min(h - r0);
                self.region_pass(r0, nr, w, r % 2, params, PassKind::USweep, &mut u_out);
            }
        }

        // Read the final state back (backdoor).
        let out = Grid::from_fn(w, h, |x, y| {
            PackedWord::from_bits(self.data[y % DATA_BRAMS].peek(self.addr(y, x)))
        });

        let mut stats = self.stats;
        stats.cycles -= run_start.cycles;
        stats.passes -= run_start.passes;
        stats.data_reads -= run_start.data_reads;
        stats.data_writes -= run_start.data_writes;
        stats.term_reads -= run_start.term_reads;
        stats.term_writes -= run_start.term_writes;
        stats.pe_t_ops -= run_start.pe_t_ops;
        stats.pe_v_ops -= run_start.pe_v_ops;

        WindowRun {
            words: out,
            u: u_out,
            stats,
        }
    }

    /// One region pass: PE-Ts over rows `r0..r0+nr-1`, PE-Vs over rows
    /// `r0-1..r0+nr-2` (unless u-sweeping).
    #[allow(clippy::too_many_arguments)]
    fn region_pass(
        &mut self,
        r0: usize,
        nr: usize,
        w: usize,
        parity: usize,
        params: &HwParams,
        kind: PassKind,
        u_out: &mut Grid<WordFixed>,
    ) {
        let has_aux = r0 > 0; // the row above the region (a_py / PE-V_0 data)
        let pe_v_active = kind == PassKind::Iterate;
        let stride = self.config.stride;

        let mut prev: [RowRegs; ROWS_PER_REGION] = Default::default();
        let mut cur: [RowRegs; ROWS_PER_REGION] = Default::default();
        // One-step-old aux word (row r0-1) and BRAM-Term data for PE-V_0.
        let mut aux_prev: Option<(usize, PackedWord)> = None;
        let mut bterm_prev: Option<WordFixed> = None;

        // Last step with work: PE-V_{nr-1} finishes column w-1 at w + nr;
        // see the schedule in the module docs.
        let total_steps = w + nr + 1;
        for s in 0..total_steps {
            // 1. Capture data latched by reads issued at step s-1.
            for regs in cur.iter_mut() {
                regs.valid = false;
            }
            for (i, regs) in cur.iter_mut().enumerate().take(nr) {
                let col = (s as i64) - 1 - i as i64;
                if (0..w as i64).contains(&col) {
                    let word = self.data[(r0 + i) % DATA_BRAMS]
                        .data_out(Port::One)
                        .expect("read was issued one step earlier");
                    *regs = RowRegs {
                        valid: true,
                        col: col as usize,
                        word: PackedWord::from_bits(word),
                        term: WordFixed::ZERO,
                        u: WordFixed::ZERO,
                    };
                }
            }
            let mut aux_cur: Option<(usize, PackedWord)> = None;
            if has_aux {
                let col = (s as i64) - 1;
                if (0..w as i64).contains(&col) {
                    let word = self.data[(r0 - 1) % DATA_BRAMS]
                        .data_out(Port::One)
                        .expect("aux read was issued one step earlier");
                    aux_cur = Some((col as usize, PackedWord::from_bits(word)));
                }
            }
            let bterm_cur = if pe_v_active && has_aux {
                self.bram_term
                    .data_out(Port::One)
                    .map(|bits| WordFixed::from_bits(bits as i32))
            } else {
                None
            };

            // 2. PE-T battery.
            for i in 0..nr {
                if !cur[i].valid {
                    continue;
                }
                let col = cur[i].col;
                let word = cur[i].word;
                let l_px = if col == 0 {
                    WordFixed::ZERO
                } else {
                    prev[i].word.px()
                };
                let a_py = if i == 0 {
                    match aux_cur {
                        Some((c, aux)) => {
                            debug_assert_eq!(c, col, "aux word column mismatch");
                            aux.py()
                        }
                        None => WordFixed::ZERO, // r0 == 0: first frame row
                    }
                } else {
                    debug_assert!(prev[i - 1].valid && prev[i - 1].col == col);
                    prev[i - 1].word.py()
                };
                let out: PeTOutputs = pe_t(
                    PeTInputs {
                        c_px: word.px(),
                        c_py: word.py(),
                        l_px,
                        a_py,
                        v: word.v(),
                    },
                    params,
                );
                cur[i].term = out.term;
                cur[i].u = out.u;
                self.stats.pe_t_ops += 1;
                if kind == PassKind::USweep {
                    u_out[(col, r0 + i)] = out.u;
                }
            }

            // 3. PE-V battery (staged writes applied in step 6).
            let mut staged_writes: Vec<(usize, usize, usize, PackedWord)> = Vec::new();
            if pe_v_active {
                // PE-V_i, i >= 1: rows r0 .. r0+nr-2, pure register reuse.
                for i in 1..nr {
                    let col = (s as i64) - 1 - i as i64;
                    if !(0..w as i64).contains(&col) {
                        continue;
                    }
                    let col = col as usize;
                    let row = r0 + i - 1;
                    if !prev[i - 1].valid || prev[i - 1].col != col {
                        continue; // pipeline not yet filled for this diagonal
                    }
                    let last_col = col + 1 == w;
                    let c_term = prev[i - 1].term;
                    let r_term = if last_col {
                        WordFixed::ZERO
                    } else {
                        cur[i - 1].term
                    };
                    debug_assert!(last_col || (cur[i - 1].valid && cur[i - 1].col == col + 1));
                    debug_assert!(cur[i].valid && cur[i].col == col);
                    let b_term = cur[i].term;
                    let word = prev[i - 1].word;
                    let (px, py) = pe_v(
                        PeVInputs {
                            c_term,
                            r_term,
                            b_term,
                            c_px: word.px(),
                            c_py: word.py(),
                            last_col,
                            last_row: false, // rows here are never the frame's last
                        },
                        params,
                        &self.sqrt,
                    );
                    self.stats.pe_v_ops += 1;
                    staged_writes.push((row, col, self.addr(row, col), word.with_p(px, py)));
                }

                // PE-V_0: row r0-1, fed by the BRAM-Term and the aux word.
                if has_aux {
                    let col = (s as i64) - 2;
                    if (0..w as i64).contains(&col) {
                        let col = col as usize;
                        let row = r0 - 1;
                        let last_col = col + 1 == w;
                        let c_term = bterm_prev.expect("BRAM-Term pipeline filled");
                        let r_term = if last_col {
                            WordFixed::ZERO
                        } else {
                            bterm_cur.expect("BRAM-Term read issued last step")
                        };
                        let (acol, aword) = aux_prev.expect("aux word pipeline filled");
                        debug_assert_eq!(acol, col, "aux word column mismatch for PE-V_0");
                        debug_assert!(prev[0].valid && prev[0].col == col);
                        let b_term = prev[0].term;
                        let (px, py) = pe_v(
                            PeVInputs {
                                c_term,
                                r_term,
                                b_term,
                                c_px: aword.px(),
                                c_py: aword.py(),
                                last_col,
                                last_row: false,
                            },
                            params,
                            &self.sqrt,
                        );
                        self.stats.pe_v_ops += 1;
                        staged_writes.push((row, col, self.addr(row, col), aword.with_p(px, py)));
                    }
                }
            }

            // 4. BRAM-Term write: the last active PE-T's Term (bridges to the
            //    next region), only during iterate passes.
            if pe_v_active && cur[nr - 1].valid {
                let col = cur[nr - 1].col;
                self.bram_term.write(
                    Port::Two,
                    parity * stride + col,
                    cur[nr - 1].term.to_bits() as u32,
                );
                self.stats.term_writes += 1;
            }

            // 5. Issue reads for step s+1.
            for i in 0..nr {
                let col = (s as i64) - i as i64; // column at step s+1 is (s+1)-1-i
                if (0..w as i64).contains(&col) {
                    let addr = self.addr(r0 + i, col as usize);
                    self.data[(r0 + i) % DATA_BRAMS].issue_read(Port::One, addr);
                    self.stats.data_reads += 1;
                }
            }
            if has_aux {
                let col = s as i64;
                if (0..w as i64).contains(&col) {
                    let addr = self.addr(r0 - 1, col as usize);
                    self.data[(r0 - 1) % DATA_BRAMS].issue_read(Port::One, addr);
                    self.stats.data_reads += 1;
                }
            }
            if pe_v_active && has_aux && s < w {
                // Term of the previous region's last row (other parity).
                self.bram_term
                    .issue_read(Port::One, (1 - parity) * stride + s);
                self.stats.term_reads += 1;
            }

            // 6. Apply staged PE-V writes (port 2 of the data BRAMs).
            for (row, _col, addr, word) in staged_writes {
                self.data[row % DATA_BRAMS].write(Port::Two, addr, word.to_bits());
                self.stats.data_writes += 1;
            }

            // 7. Clock every memory.
            for bram in &mut self.data {
                bram.clock();
            }
            self.bram_term.clock();

            // 8. Shift the register files.
            prev = cur;
            aux_prev = aux_cur;
            bterm_prev = bterm_cur;
        }

        self.stats.cycles += total_steps as u64 + self.fill_cycles;
        self.stats.passes += 1;
    }

    /// The flush pass: PE-V for the frame's last row (`Term2` gated to
    /// zero), reading its `Term` from the BRAM-Term.
    fn flush_pass(&mut self, w: usize, h: usize, parity: usize, params: &HwParams) {
        let row = h - 1;
        let stride = self.config.stride;
        let mut word_prev: Option<(usize, PackedWord)> = None;
        let mut bterm_prev: Option<WordFixed> = None;

        let total_steps = w + 2;
        for s in 0..total_steps {
            // Capture.
            let mut word_cur: Option<(usize, PackedWord)> = None;
            if (1..=w).contains(&s) {
                let bits = self.data[row % DATA_BRAMS]
                    .data_out(Port::One)
                    .expect("flush read issued one step earlier");
                word_cur = Some((s - 1, PackedWord::from_bits(bits)));
            }
            let bterm_cur = if s >= 1 && s <= w {
                self.bram_term
                    .data_out(Port::One)
                    .map(|bits| WordFixed::from_bits(bits as i32))
            } else {
                None
            };

            // PE-V for column c = s - 2.
            if s >= 2 {
                let col = s - 2;
                if col < w {
                    let last_col = col + 1 == w;
                    let (wcol, word) = word_prev.expect("flush word pipeline filled");
                    debug_assert_eq!(wcol, col);
                    let c_term = bterm_prev.expect("flush BRAM-Term pipeline filled");
                    let r_term = if last_col {
                        WordFixed::ZERO
                    } else {
                        bterm_cur.expect("flush BRAM-Term read issued last step")
                    };
                    let (px, py) = pe_v(
                        PeVInputs {
                            c_term,
                            r_term,
                            b_term: WordFixed::ZERO,
                            c_px: word.px(),
                            c_py: word.py(),
                            last_col,
                            last_row: true,
                        },
                        params,
                        &self.sqrt,
                    );
                    self.stats.pe_v_ops += 1;
                    let addr = self.addr(row, col);
                    self.data[row % DATA_BRAMS].write(
                        Port::Two,
                        addr,
                        word.with_p(px, py).to_bits(),
                    );
                    self.stats.data_writes += 1;
                }
            }

            // Issue reads for step s+1 (column s).
            if s < w {
                let addr = self.addr(row, s);
                self.data[row % DATA_BRAMS].issue_read(Port::One, addr);
                self.stats.data_reads += 1;
                self.bram_term
                    .issue_read(Port::One, parity_addr(parity, stride, s));
                self.stats.term_reads += 1;
            }

            for bram in &mut self.data {
                bram.clock();
            }
            self.bram_term.clock();

            word_prev = word_cur;
            bterm_prev = bterm_cur;
        }

        self.stats.cycles += total_steps as u64 + self.fill_cycles;
        self.stats.passes += 1;
    }
}

fn parity_addr(parity: usize, stride: usize, col: usize) -> usize {
    parity * stride + col
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{fixed_chambolle_reference, quantize_input};
    use chambolle_imaging::Image;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_image(w: usize, h: usize, seed: u64) -> Image {
        let mut rng = StdRng::seed_from_u64(seed);
        Grid::from_fn(w, h, |_, _| rng.gen_range(0.0f32..1.0))
    }

    fn run_both(
        w: usize,
        h: usize,
        iters: u32,
        seed: u64,
    ) -> (WindowRun, crate::reference::FixedSolution) {
        let v = random_image(w, h, seed);
        let words = quantize_input(&v);
        let params = HwParams::standard(iters);
        let mut array = PeArray::new(ArrayConfig::paper());
        let run = array.process_window(&words, &params);
        let reference = fixed_chambolle_reference(&words, &params);
        (run, reference)
    }

    #[test]
    fn matches_reference_bit_exact_small() {
        let (run, reference) = run_both(12, 10, 5, 1);
        assert_eq!(run.words, reference.words);
        assert_eq!(run.u, reference.u);
    }

    #[test]
    fn matches_reference_bit_exact_multi_region() {
        // 3 full regions + 1 partial (h = 25), several iterations.
        let (run, reference) = run_both(20, 25, 7, 2);
        assert_eq!(run.words, reference.words);
        assert_eq!(run.u, reference.u);
    }

    #[test]
    fn matches_reference_on_paper_window() {
        let (run, reference) = run_both(92, 88, 3, 3);
        assert_eq!(run.words, reference.words);
        assert_eq!(run.u, reference.u);
    }

    #[test]
    fn matches_reference_degenerate_shapes() {
        for &(w, h) in &[(1usize, 1usize), (5, 1), (1, 9), (92, 1), (2, 88), (8, 8)] {
            let (run, reference) = run_both(w, h, 4, 7 + w as u64 * h as u64);
            assert_eq!(run.words, reference.words, "words mismatch at {w}x{h}");
            assert_eq!(run.u, reference.u, "u mismatch at {w}x{h}");
        }
    }

    #[test]
    fn single_region_heights() {
        for h in 2..=7 {
            let (run, reference) = run_both(10, h, 6, 100 + h as u64);
            assert_eq!(run.words, reference.words, "h = {h}");
        }
    }

    #[test]
    fn region_boundary_heights() {
        for h in [7usize, 8, 14, 15, 16, 21, 22] {
            let (run, reference) = run_both(9, h, 5, 200 + h as u64);
            assert_eq!(run.words, reference.words, "h = {h}");
            assert_eq!(run.u, reference.u, "h = {h}");
        }
    }

    #[test]
    fn stats_reflect_schedule() {
        let (run, _) = run_both(92, 88, 2, 9);
        let s = run.stats;
        // Passes: per iteration 13 regions + 1 flush, plus 13 u-sweep.
        assert_eq!(s.passes, 2 * 14 + 13);
        // Every element visited once per PE-T pass: 2 iterations + 1 sweep.
        assert_eq!(s.pe_t_ops, 3 * 92 * 88);
        // Every element's p updated once per iteration.
        assert_eq!(s.pe_v_ops, 2 * 92 * 88);
        assert!(s.cycles > 0);
    }

    #[test]
    fn reuse_claim_15_vectors_per_7_elements() {
        // Interior regions read 8 words per step for 7 PE-T elements: the
        // paper's 15 operand vectors instead of 28.
        let (run, _) = run_both(92, 88, 1, 4);
        let per_element = run.stats.operand_vectors_per_element();
        // 15/7 ≈ 2.143 vectors per element with reuse; 4.0 without. Frame
        // borders (region 0 has no aux row) pull the average slightly down.
        assert!(
            per_element < 2.143 + 1e-9,
            "reuse should cap vectors/element at 15/7, got {per_element}"
        );
        assert!(per_element > 1.9, "unexpectedly few reads: {per_element}");
    }

    #[test]
    fn cycle_count_is_deterministic() {
        let (a, _) = run_both(30, 20, 3, 11);
        let (b, _) = run_both(30, 20, 3, 12); // different data, same geometry
        assert_eq!(a.stats.cycles, b.stats.cycles);
        assert_eq!(a.stats.data_reads, b.stats.data_reads);
    }

    #[test]
    fn array_is_reusable_across_windows() {
        let params = HwParams::standard(3);
        let mut array = PeArray::new(ArrayConfig::paper());
        let v1 = random_image(16, 12, 21);
        let v2 = random_image(24, 30, 22);
        let r1 = array.process_window(&quantize_input(&v1), &params);
        let r2 = array.process_window(&quantize_input(&v2), &params);
        assert_eq!(
            r1.words,
            fixed_chambolle_reference(&quantize_input(&v1), &params).words
        );
        assert_eq!(
            r2.words,
            fixed_chambolle_reference(&quantize_input(&v2), &params).words
        );
    }

    #[test]
    #[should_panic(expected = "exceeds array geometry")]
    fn oversized_window_panics() {
        let mut array = PeArray::new(ArrayConfig::paper());
        let v = Grid::new(93, 10, 0.0f32);
        array.process_window(&quantize_input(&v), &HwParams::standard(1));
    }

    #[test]
    fn shallower_ladders_stay_bit_exact() {
        let v = random_image(20, 19, 31);
        let words = quantize_input(&v);
        let params = HwParams::standard(4);
        let reference = fixed_chambolle_reference(&words, &params);
        for ladder in [1usize, 2, 3, 5, 7] {
            let mut array = PeArray::new(ArrayConfig::paper_with_ladder(ladder));
            let run = array.process_window(&words, &params);
            assert_eq!(run.words, reference.words, "ladder = {ladder}");
            assert_eq!(run.u, reference.u, "ladder = {ladder}");
        }
    }

    #[test]
    fn shallower_ladders_cost_cycles() {
        let v = random_image(40, 40, 32);
        let words = quantize_input(&v);
        let params = HwParams::standard(2);
        let mut prev = u64::MAX;
        for ladder in [1usize, 3, 7] {
            let mut array = PeArray::new(ArrayConfig::paper_with_ladder(ladder));
            let run = array.process_window(&words, &params);
            assert!(
                run.stats.cycles < prev,
                "deeper ladder should be faster: {} cycles at depth {ladder}",
                run.stats.cycles
            );
            prev = run.stats.cycles;
        }
    }

    #[test]
    #[should_panic(expected = "ladder depth")]
    fn ladder_depth_eight_rejected() {
        // 8 rows + the aux row would need 9 distinct mod-8 BRAM banks.
        ArrayConfig::paper_with_ladder(8);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(10))]

            /// Bit-exactness of the systolic schedule for random shapes,
            /// iteration counts and ladder depths.
            #[test]
            fn array_equals_reference_random(
                w in 1usize..30,
                h in 1usize..30,
                iters in 1u32..5,
                ladder in 1usize..=7,
                seed in any::<u64>(),
            ) {
                let v = random_image(w, h, seed);
                let words = quantize_input(&v);
                let params = HwParams::standard(iters);
                let mut array = PeArray::new(ArrayConfig::paper_with_ladder(ladder));
                let run = array.process_window(&words, &params);
                let reference = fixed_chambolle_reference(&words, &params);
                prop_assert_eq!(run.words, reference.words);
                prop_assert_eq!(run.u, reference.u);
            }
        }
    }

    #[test]
    fn bram_capacity_matches_paper() {
        assert_eq!(ArrayConfig::paper().bram_capacity(), 1012);
    }
}
