//! Waveform tracing: record the accelerator's memory activity and dump it as
//! a standard VCD (Value Change Dump) file viewable in GTKWave & co.
//!
//! The paper's design lives and dies by its BRAM schedule — eight single-read
//! data ports plus the BRAM-Term bridge per array, one access per port per
//! cycle. Tracing that schedule makes the simulator auditable the same way a
//! post-synthesis simulation would be: attach a [`TraceRecorder`] to a
//! [`crate::PeArray`], run a window, and write the result with
//! [`write_vcd`].
//!
//! # Examples
//!
//! ```
//! use chambolle_hwsim::trace::{write_vcd, TraceRecorder};
//! use chambolle_hwsim::{quantize_input, ArrayConfig, HwParams, PeArray};
//! use chambolle_imaging::Grid;
//!
//! let mut array = PeArray::new(ArrayConfig::paper());
//! let recorder = TraceRecorder::shared();
//! array.attach_recorder(&recorder);
//! let v = Grid::new(12, 10, 0.5f32);
//! array.process_window(&quantize_input(&v), &HwParams::standard(1));
//! let mut vcd = Vec::new();
//! write_vcd(&mut vcd, &recorder.borrow())?;
//! assert!(String::from_utf8(vcd)?.contains("$enddefinitions"));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::io::{self, Write};
use std::rc::Rc;

use crate::bram::Port;

/// Read or write access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Synchronous read issue.
    Read,
    /// Write commit.
    Write,
}

/// One recorded memory access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BramAccess {
    /// Cycle counter of the accessed BRAM at issue time.
    pub cycle: u64,
    /// BRAM instance name (`data0`…`data7`, `term`).
    pub bram: String,
    /// Read or write.
    pub kind: AccessKind,
    /// Port used.
    pub port: Port,
    /// Word address.
    pub addr: usize,
    /// Data: the stored word for reads (as latched), the written word for
    /// writes.
    pub data: u32,
}

/// An access log shared between the BRAMs of one array.
#[derive(Debug, Default)]
pub struct TraceRecorder {
    accesses: Vec<BramAccess>,
}

/// Shared handle to a recorder (the simulator is single-threaded, matching
/// the hardware's single clock domain).
pub type SharedRecorder = Rc<RefCell<TraceRecorder>>;

impl TraceRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        TraceRecorder::default()
    }

    /// Creates a shareable recorder handle.
    pub fn shared() -> SharedRecorder {
        Rc::new(RefCell::new(TraceRecorder::new()))
    }

    /// Appends one access.
    pub fn record(&mut self, access: BramAccess) {
        self.accesses.push(access);
    }

    /// All recorded accesses, in record order.
    pub fn accesses(&self) -> &[BramAccess] {
        &self.accesses
    }

    /// Number of recorded accesses.
    pub fn len(&self) -> usize {
        self.accesses.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.accesses.is_empty()
    }

    /// Drops all recorded accesses.
    pub fn clear(&mut self) {
        self.accesses.clear();
    }

    /// The last recorded cycle (0 for an empty trace).
    pub fn last_cycle(&self) -> u64 {
        self.accesses.iter().map(|a| a.cycle).max().unwrap_or(0)
    }
}

/// Writes the recorded accesses as a VCD file.
///
/// Per BRAM instance the dump contains an address bus, a data bus and
/// one-cycle `rd`/`wr` strobes; the timescale is one clock cycle per VCD
/// time unit.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn write_vcd<W: Write>(mut out: W, trace: &TraceRecorder) -> io::Result<()> {
    writeln!(out, "$version chambolle-hwsim trace $end")?;
    writeln!(out, "$timescale 1ns $end")?;
    writeln!(out, "$scope module chambolle_accel $end")?;

    // Stable signal order: BTreeMap over instance names.
    let mut names: Vec<String> = trace
        .accesses()
        .iter()
        .map(|a| a.bram.clone())
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    names.sort();

    // VCD identifier codes: printable ASCII starting at '!'.
    let mut next_code = 33u8;
    let mut code = || {
        let c = (next_code as char).to_string();
        next_code += 1;
        c
    };
    struct Sig {
        addr: String,
        data: String,
        rd: String,
        wr: String,
    }
    let mut signals: BTreeMap<String, Sig> = BTreeMap::new();
    for name in &names {
        let sig = Sig {
            addr: code(),
            data: code(),
            rd: code(),
            wr: code(),
        };
        writeln!(out, "$var wire 16 {} {}_addr $end", sig.addr, name)?;
        writeln!(out, "$var wire 32 {} {}_data $end", sig.data, name)?;
        writeln!(out, "$var wire 1 {} {}_rd $end", sig.rd, name)?;
        writeln!(out, "$var wire 1 {} {}_wr $end", sig.wr, name)?;
        signals.insert(name.clone(), sig);
    }
    writeln!(out, "$upscope $end")?;
    writeln!(out, "$enddefinitions $end")?;

    // Group accesses by cycle; strobes fall back to 0 the cycle after.
    let mut by_cycle: BTreeMap<u64, Vec<&BramAccess>> = BTreeMap::new();
    for a in trace.accesses() {
        by_cycle.entry(a.cycle).or_default().push(a);
    }
    let mut strobes_high: Vec<String> = Vec::new();
    for (cycle, accesses) in &by_cycle {
        writeln!(out, "#{cycle}")?;
        for id in strobes_high.drain(..) {
            writeln!(out, "0{id}")?;
        }
        for a in accesses {
            let sig = &signals[&a.bram];
            writeln!(out, "b{:b} {}", a.addr, sig.addr)?;
            writeln!(out, "b{:b} {}", a.data, sig.data)?;
            let strobe = match a.kind {
                AccessKind::Read => &sig.rd,
                AccessKind::Write => &sig.wr,
            };
            writeln!(out, "1{strobe}")?;
            strobes_high.push(strobe.clone());
        }
    }
    // Final falling edges.
    writeln!(out, "#{}", trace.last_cycle() + 1)?;
    for id in strobes_high.drain(..) {
        writeln!(out, "0{id}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::{ArrayConfig, PeArray};
    use crate::params::HwParams;
    use crate::reference::quantize_input;
    use chambolle_imaging::Grid;

    fn traced_run(w: usize, h: usize, iters: u32) -> (TraceRecorder, crate::array::ArrayStats) {
        let mut array = PeArray::new(ArrayConfig::paper());
        let recorder = TraceRecorder::shared();
        array.attach_recorder(&recorder);
        let v = Grid::from_fn(w, h, |x, y| ((x * 3 + y) % 7) as f32 / 7.0);
        let run = array.process_window(&quantize_input(&v), &HwParams::standard(iters));
        let trace = std::mem::take(&mut *recorder.borrow_mut());
        (trace, run.stats)
    }

    #[test]
    fn trace_counts_match_stats() {
        let (trace, stats) = traced_run(10, 9, 2);
        let reads = trace
            .accesses()
            .iter()
            .filter(|a| a.kind == AccessKind::Read)
            .count() as u64;
        let writes = trace
            .accesses()
            .iter()
            .filter(|a| a.kind == AccessKind::Write)
            .count() as u64;
        assert_eq!(reads, stats.data_reads + stats.term_reads);
        assert_eq!(writes, stats.data_writes + stats.term_writes);
    }

    #[test]
    fn trace_respects_port_discipline() {
        // At most one access per (bram, port) per cycle — the dual-port law.
        let (trace, _) = traced_run(12, 8, 1);
        let mut seen = std::collections::HashSet::new();
        for a in trace.accesses() {
            assert!(
                seen.insert((a.cycle, a.bram.clone(), a.port)),
                "port used twice in cycle {} on {}",
                a.cycle,
                a.bram
            );
        }
    }

    #[test]
    fn vcd_output_is_wellformed() {
        let (trace, _) = traced_run(8, 8, 1);
        let mut buf = Vec::new();
        write_vcd(&mut buf, &trace).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("$version"));
        assert!(text.contains("$enddefinitions $end"));
        assert!(text.contains("data0_addr"));
        assert!(text.contains("term_data"));
        // Time markers are monotonically increasing.
        let times: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with('#'))
            .map(|l| l[1..].parse().expect("numeric time"))
            .collect();
        assert!(!times.is_empty());
        assert!(times.windows(2).all(|w| w[0] < w[1]), "times must increase");
        // Every value-change line references a declared identifier.
        let ids: std::collections::HashSet<&str> = text
            .lines()
            .filter(|l| l.starts_with("$var"))
            .map(|l| l.split_whitespace().nth(3).expect("var id"))
            .collect();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix('b') {
                let id = rest.split_whitespace().nth(1).expect("bus id");
                assert!(ids.contains(id), "undeclared id {id}");
            }
        }
    }

    #[test]
    fn recorder_utilities() {
        let mut r = TraceRecorder::new();
        assert!(r.is_empty());
        assert_eq!(r.last_cycle(), 0);
        r.record(BramAccess {
            cycle: 5,
            bram: "data0".into(),
            kind: AccessKind::Write,
            port: Port::Two,
            addr: 3,
            data: 9,
        });
        assert_eq!(r.len(), 1);
        assert_eq!(r.last_cycle(), 5);
        r.clear();
        assert!(r.is_empty());
    }

    #[test]
    fn untraced_array_records_nothing() {
        let mut array = PeArray::new(ArrayConfig::paper());
        let v = Grid::new(8, 8, 0.25f32);
        array.process_window(&quantize_input(&v), &HwParams::standard(1));
        // No recorder attached: nothing to assert beyond "does not panic";
        // attaching afterwards starts a fresh log.
        let recorder = TraceRecorder::shared();
        array.attach_recorder(&recorder);
        assert!(recorder.borrow().is_empty());
    }
}
