//! The fixed-point datapaths of the two processing-element kinds
//! (Figures 6 and 7 of the paper).
//!
//! These functions are *combinational truth*: both the full-frame fixed-point
//! reference ([`crate::reference`]) and the cycle-accurate array simulator
//! ([`crate::array`]) call them, so the two are bit-identical by
//! construction.

use chambolle_fixed::{Fixed, PackedWord, SqrtUnit, WordFixed, P_BITS};

use crate::params::HwParams;

/// Operand bundle of a PE-T (Figure 6): the element's own `p` vector and `v`
/// (`c_px`, `c_py`, `v` — one BRAM word), the left neighbor's `px` and the
/// upper neighbor's `py` (both forwarded through the reuse network).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PeTInputs {
    /// `px` of this element (previous iteration).
    pub c_px: WordFixed,
    /// `py` of this element (previous iteration).
    pub c_py: WordFixed,
    /// `px` of the left neighbor (zero at the first column).
    pub l_px: WordFixed,
    /// `py` of the upper neighbor (zero at the first row).
    pub a_py: WordFixed,
    /// Denoising target `v` of this element.
    pub v: WordFixed,
}

/// Results of a PE-T: `Term` feeds the PE-Vs, `u` is the primal output
/// (Algorithm 1 line 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PeTOutputs {
    /// `div p` at this element (`BackwardX(px) + BackwardY(py)`).
    pub div: WordFixed,
    /// `Term = div p − v/θ`.
    pub term: WordFixed,
    /// `u = v − θ·div p`.
    pub u: WordFixed,
}

/// The PE-T datapath: two parallel Backward differences, the `v/θ`
/// subtraction and the `u` output (Figure 6).
#[inline]
pub fn pe_t(inp: PeTInputs, params: &HwParams) -> PeTOutputs {
    let div = (inp.c_px - inp.l_px) + (inp.c_py - inp.a_py);
    let term = div - inp.v * params.inv_theta;
    let u = inp.v - params.theta * div;
    PeTOutputs { div, term, u }
}

/// Operand bundle of a PE-V (Figure 7): three `Term` values forwarded from
/// the PE-T battery plus the element's own `p` vector, and the edge-control
/// flags that zero the Forward differences at the frame borders.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PeVInputs {
    /// `Term` of this element.
    pub c_term: WordFixed,
    /// `Term` of the right neighbor.
    pub r_term: WordFixed,
    /// `Term` of the lower neighbor.
    pub b_term: WordFixed,
    /// `px` of this element (previous iteration).
    pub c_px: WordFixed,
    /// `py` of this element (previous iteration).
    pub c_py: WordFixed,
    /// Control: this element is on the last column (Term1 forced to zero).
    pub last_col: bool,
    /// Control: this element is on the last row (Term2 forced to zero).
    pub last_row: bool,
}

/// The PE-V datapath: Forward differences, the square-root unit (LUT by
/// default; see [`SqrtUnit`]), and the normalized `p` update (Figure 7).
/// Outputs are saturated to the packed 9-bit field width, as the RTL write
/// path does.
#[inline]
pub fn pe_v(inp: PeVInputs, params: &HwParams, sqrt: &SqrtUnit) -> (WordFixed, WordFixed) {
    let t1 = if inp.last_col {
        WordFixed::ZERO
    } else {
        inp.r_term - inp.c_term
    };
    let t2 = if inp.last_row {
        WordFixed::ZERO
    } else {
        inp.b_term - inp.c_term
    };
    let mag_sq = t1 * t1 + t2 * t2;
    debug_assert!(
        mag_sq.to_bits() >= 0,
        "squared magnitude cannot be negative"
    );
    let grad = WordFixed::from_bits(sqrt.sqrt_q24_8(mag_sq.to_bits() as u32) as i32);
    let denom = Fixed::ONE + params.step_ratio * grad;
    let px = ((inp.c_px + params.step_ratio * t1) / denom).saturate_to(P_BITS);
    let py = ((inp.c_py + params.step_ratio * t2) / denom).saturate_to(P_BITS);
    (px, py)
}

/// Convenience: PE-T inputs for the element `(x, y)` of a packed window,
/// gathering the left/up neighbors directly (used by the reference model;
/// the cycle simulator gathers them through the reuse network instead).
#[inline]
pub fn gather_pe_t_inputs(
    words: &chambolle_imaging::Grid<PackedWord>,
    x: usize,
    y: usize,
) -> PeTInputs {
    let w = words[(x, y)];
    PeTInputs {
        c_px: w.px(),
        c_py: w.py(),
        l_px: if x == 0 {
            WordFixed::ZERO
        } else {
            words[(x - 1, y)].px()
        },
        a_py: if y == 0 {
            WordFixed::ZERO
        } else {
            words[(x, y - 1)].py()
        },
        v: w.v(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chambolle_imaging::Grid;

    fn q(v: f32) -> WordFixed {
        WordFixed::from_f32(v)
    }

    fn params() -> HwParams {
        HwParams::standard(10)
    }

    #[test]
    fn pe_t_zero_p_gives_term_minus_v_over_theta() {
        let out = pe_t(
            PeTInputs {
                v: q(0.5),
                ..PeTInputs::default()
            },
            &params(),
        );
        assert_eq!(out.div, WordFixed::ZERO);
        assert_eq!(out.term.to_f32(), -2.0); // -0.5 / 0.25
        assert_eq!(out.u.to_f32(), 0.5);
    }

    #[test]
    fn pe_t_divergence_matches_backward_differences() {
        let out = pe_t(
            PeTInputs {
                c_px: q(0.5),
                l_px: q(0.25),
                c_py: q(-0.25),
                a_py: q(0.25),
                v: q(0.0),
            },
            &params(),
        );
        // (0.5 - 0.25) + (-0.25 - 0.25) = -0.25
        assert_eq!(out.div.to_f32(), -0.25);
        assert_eq!(out.term.to_f32(), -0.25);
        assert_eq!(out.u.to_f32(), 0.0625); // -theta * div
    }

    #[test]
    fn pe_v_zero_gradient_decays_nothing() {
        // Equal Terms -> t1 = t2 = 0 -> p unchanged (denominator 1).
        let (px, py) = pe_v(
            PeVInputs {
                c_term: q(1.0),
                r_term: q(1.0),
                b_term: q(1.0),
                c_px: q(0.5),
                c_py: q(-0.5),
                last_col: false,
                last_row: false,
            },
            &params(),
            &SqrtUnit::lut(),
        );
        assert_eq!(px.to_f32(), 0.5);
        assert_eq!(py.to_f32(), -0.5);
    }

    #[test]
    fn pe_v_edge_flags_zero_the_differences() {
        let lut = SqrtUnit::lut();
        let inp = PeVInputs {
            c_term: q(0.0),
            r_term: q(4.0),
            b_term: q(4.0),
            c_px: q(0.0),
            c_py: q(0.0),
            last_col: true,
            last_row: true,
        };
        let (px, py) = pe_v(inp, &params(), &lut);
        assert_eq!(px, WordFixed::ZERO);
        assert_eq!(py, WordFixed::ZERO);
        // Without the flags the same operands move p.
        let (px2, _) = pe_v(
            PeVInputs {
                last_col: false,
                last_row: false,
                ..inp
            },
            &params(),
            &lut,
        );
        assert!(px2.to_f32() > 0.0);
    }

    #[test]
    fn pe_v_output_stays_in_unit_ball_field() {
        // Extreme Terms must saturate into the 9-bit field, never wrap.
        let lut = SqrtUnit::lut();
        let (px, py) = pe_v(
            PeVInputs {
                c_term: q(-60.0),
                r_term: q(60.0),
                b_term: q(60.0),
                c_px: q(0.996),
                c_py: q(-1.0),
                last_col: false,
                last_row: false,
            },
            &params(),
            &lut,
        );
        assert!(px.fits_in(P_BITS));
        assert!(py.fits_in(P_BITS));
        assert!(px.to_f32().abs() <= 1.0);
    }

    #[test]
    fn pe_v_moves_toward_gradient() {
        let lut = SqrtUnit::lut();
        let (px, _) = pe_v(
            PeVInputs {
                c_term: q(0.0),
                r_term: q(2.0), // positive Term1
                b_term: q(0.0),
                c_px: q(0.0),
                c_py: q(0.0),
                last_col: false,
                last_row: false,
            },
            &params(),
            &lut,
        );
        // p steps by sr*t1/(1+sr*|t|) = 0.5/1.5 = 1/3.
        assert!((px.to_f32() - 1.0 / 3.0).abs() < 0.02);
    }

    #[test]
    fn gather_handles_borders() {
        let words = Grid::new(3, 3, PackedWord::new_saturating(q(1.0), q(0.5), q(0.25)));
        let at_origin = gather_pe_t_inputs(&words, 0, 0);
        assert_eq!(at_origin.l_px, WordFixed::ZERO);
        assert_eq!(at_origin.a_py, WordFixed::ZERO);
        let interior = gather_pe_t_inputs(&words, 1, 1);
        assert_eq!(interior.l_px.to_f32(), 0.5);
        assert_eq!(interior.a_py.to_f32(), 0.25);
    }
}
