//! Deterministic fault injection and the guarded frame scheduler.
//!
//! FPGAs in the field take single-event upsets: configuration and block-RAM
//! bits flip under radiation, and datapath logic can glitch transiently.
//! This module stresses the simulated accelerator with exactly those fault
//! classes and implements the detection/recovery architecture that keeps the
//! frame result *bit-identical* to the fault-free reference:
//!
//! - [`FaultInjector`] — a seed-driven injector that flips bits in the
//!   frame-state BRAM words, corrupts sqrt-LUT entries, and perturbs PE
//!   datapath results on a deterministic schedule. Every injected fault is
//!   logged as a [`FaultEvent`]; the same seed and schedule always produce
//!   the same corruption trace.
//! - Monitors — per-region FNV checksums over the packed words
//!   ([`region_checksum`]) and the dual-feasibility invariant `|p|² ≤`
//!   [`FEASIBILITY_MAX_NORM_SQ`] ([`check_dual_feasibility`]).
//! - [`ChambolleAccel::denoise_pair_guarded`] — the guarded scheduler: LUT
//!   scrubbing against golden checksums (repair + round recompute), per-tile
//!   checksum verification with tile recompute from the round-start
//!   snapshot, optional dual-modular-redundancy arbitration for datapath
//!   faults, and a capped-retry fall-back to the sequential fixed-point
//!   reference. All of it reported through the shared
//!   [`chambolle_core::RecoveryReport`] vocabulary.
//!
//! The fault model and why recovery is exact:
//!
//! - **BRAM upsets** land *between* rounds, after the round's results were
//!   checksummed — a scrubbing controller's checksum RAM holds the pre-upset
//!   truth, so every upset in a profitable region is detected, and the
//!   round-start snapshot (which the hardware keeps anyway for its
//!   concurrent windows) allows an exact tile recompute.
//! - **LUT corruption** lands before a round computes and is caught by the
//!   post-round golden-checksum scrub; since *which tiles* read the bad
//!   entry is unknowable, the whole round is recomputed after repair.
//! - **Datapath glitches** are transient: they perturb at most the first
//!   execution of a `(round, tile)` pair, so a DMR shadow re-execution
//!   disagrees exactly when a glitch happened and its result is clean.

use chambolle_core::{ChambolleParams, RecoveryAction, RecoveryReport, Tile, TilePlan};
use chambolle_fixed::PackedWord;
use chambolle_imaging::{Grid, Image};

use crate::accel::{
    blit_profitable_u, blit_profitable_words, u_round_tiles, ChambolleAccel, FrameStats,
    SlidingWindow,
};
use crate::array::WindowRun;
use crate::params::HwParams;
use crate::reference::{dequantize, fixed_chambolle_reference_with, quantize_input};
use chambolle_fixed::WordFixed;

/// Largest `px² + py²` a fault-free fixed-point solve produces.
///
/// The float algorithm keeps `|p| ≤ 1` exactly; the hardware's LUT sqrt
/// *underestimates* `|∇u|` by up to ~4%, which lets the normalized dual
/// overshoot — measured maximum ≈ 1.15 over random frames. 1.35 clears that
/// with headroom while still flagging e.g. a sign-bit upset that turns a
/// near-unit component pair into `|p|² ≈ 2`.
pub const FEASIBILITY_MAX_NORM_SQ: f64 = 1.35;

/// Fault rates and the seed of the injection schedule.
///
/// Rates are per-opportunity probabilities: `bram_flip_rate` per state word
/// per round, `lut_rate` per sqrt table per round, `datapath_rate` per
/// window execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Seed of the deterministic schedule.
    pub seed: u64,
    /// Probability of a single-bit upset per frame-state word per round.
    pub bram_flip_rate: f64,
    /// Probability of a corrupted entry per sqrt LUT per round.
    pub lut_rate: f64,
    /// Probability of a transient datapath glitch per window execution.
    pub datapath_rate: f64,
}

impl FaultConfig {
    /// A schedule that never fires (for guarded-path overhead testing).
    pub fn quiet(seed: u64) -> Self {
        FaultConfig {
            seed,
            bram_flip_rate: 0.0,
            lut_rate: 0.0,
            datapath_rate: 0.0,
        }
    }

    /// True when any fault class can fire.
    pub fn any_faults(&self) -> bool {
        self.bram_flip_rate > 0.0 || self.lut_rate > 0.0 || self.datapath_rate > 0.0
    }
}

/// One injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A bit flip in a frame-state BRAM word.
    BramFlip {
        /// Flow component (0 = `u1` plane, 1 = `u2` plane).
        component: u8,
        /// Cell x.
        x: usize,
        /// Cell y.
        y: usize,
        /// Flipped bit (1..=31; bit 0 is the spare and decodes to nothing).
        bit: u8,
    },
    /// A corrupted sqrt-LUT entry.
    LutEntry {
        /// Sliding-window index.
        window: usize,
        /// Array within the window (0 = `u1`, 1 = `u2`).
        array: u8,
        /// Corrupted table index.
        index: u8,
        /// XOR mask applied to the entry (nonzero).
        xor: u8,
    },
    /// A transient glitch in one window execution's result.
    Datapath {
        /// Tile index within the round's plan.
        tile: usize,
        /// Flow component (0 = `u1`, 1 = `u2`).
        component: u8,
        /// Linear cell index within the window result.
        cell: usize,
        /// Flipped bit (1..=31).
        bit: u8,
    },
}

/// A [`FaultKind`] stamped with the iteration round it fired in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Iteration round of the injection.
    pub round: u32,
    /// What was injected.
    pub kind: FaultKind,
}

/// Seed-driven deterministic fault injector (SplitMix64 schedule).
///
/// Two injectors built from the same [`FaultConfig`] and driven through the
/// same call sequence produce identical corruption traces — the property the
/// determinism proptests pin down.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    config: FaultConfig,
    state: u64,
    events: Vec<FaultEvent>,
}

impl FaultInjector {
    /// Creates an injector with the given schedule.
    pub fn new(config: FaultConfig) -> Self {
        FaultInjector {
            config,
            state: config.seed,
            events: Vec::new(),
        }
    }

    /// The schedule configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Every fault injected so far, in injection order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of faults injected so far.
    pub fn injected(&self) -> usize {
        self.events.len()
    }

    fn next_u64(&mut self) -> u64 {
        // SplitMix64 — the same generator the offline rand stub uses.
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn chance(&mut self, p: f64) -> bool {
        // Always consumes one draw, so the schedule's shape does not depend
        // on which rates are zero.
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }

    /// A payload bit index in 1..=31 — bit 0 is the packed word's spare bit,
    /// which decodes to nothing and would make a fault undetectable *and*
    /// harmless; real upsets there are out of the model's scope.
    fn payload_bit(&mut self) -> u8 {
        1 + (self.next_u64() % 31) as u8
    }

    /// SEU pass over one component's frame state: visits every word in
    /// row-major order and flips one payload bit with probability
    /// `bram_flip_rate`. Returns the number of injected flips.
    pub fn corrupt_state(
        &mut self,
        round: u32,
        component: u8,
        state: &mut Grid<PackedWord>,
    ) -> usize {
        let (w, h) = state.dims();
        let mut injected = 0;
        for y in 0..h {
            for x in 0..w {
                if self.chance(self.config.bram_flip_rate) {
                    let bit = self.payload_bit();
                    let word = state[(x, y)].to_bits() ^ (1u32 << bit);
                    state[(x, y)] = PackedWord::from_bits(word);
                    self.events.push(FaultEvent {
                        round,
                        kind: FaultKind::BramFlip {
                            component,
                            x,
                            y,
                            bit,
                        },
                    });
                    injected += 1;
                }
            }
        }
        injected
    }

    /// Configuration-upset pass over the sqrt LUTs: each of the
    /// `2 × windows` tables is corrupted in one entry with probability
    /// `lut_rate`. Returns the number of corrupted tables (always 0 for
    /// table-less non-restoring units).
    pub fn corrupt_luts(&mut self, round: u32, windows: &mut [SlidingWindow]) -> usize {
        let mut injected = 0;
        for (wi, sw) in windows.iter_mut().enumerate() {
            for array in 0..2u8 {
                if self.chance(self.config.lut_rate) {
                    let index = (self.next_u64() & 0xFF) as u8;
                    let xor = 1 + (self.next_u64() % 255) as u8;
                    if sw.corrupt_sqrt_entry(array, index, xor) {
                        self.events.push(FaultEvent {
                            round,
                            kind: FaultKind::LutEntry {
                                window: wi,
                                array,
                                index,
                                xor,
                            },
                        });
                        injected += 1;
                    }
                }
            }
        }
        injected
    }

    /// Transient-glitch pass over one window execution's result: with
    /// probability `datapath_rate`, flips one payload bit of one output
    /// word. Returns whether a glitch fired.
    pub fn perturb_datapath(
        &mut self,
        round: u32,
        tile: usize,
        component: u8,
        words: &mut Grid<PackedWord>,
    ) -> bool {
        if !self.chance(self.config.datapath_rate) {
            return false;
        }
        let cell = (self.next_u64() % words.len() as u64) as usize;
        let bit = self.payload_bit();
        let (w, _) = words.dims();
        let (x, y) = (cell % w, cell / w);
        let word = words[(x, y)].to_bits() ^ (1u32 << bit);
        words[(x, y)] = PackedWord::from_bits(word);
        self.events.push(FaultEvent {
            round,
            kind: FaultKind::Datapath {
                tile,
                component,
                cell,
                bit,
            },
        });
        true
    }
}

/// FNV-1a checksum over the packed words of a rectangular region — the
/// per-region integrity word a scrubbing controller keeps beside the frame
/// BRAM.
pub fn region_checksum(state: &Grid<PackedWord>, x0: usize, y0: usize, w: usize, h: usize) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for y in y0..y0 + h {
        for x in x0..x0 + w {
            for b in state[(x, y)].to_bits().to_le_bytes() {
                hash ^= b as u64;
                hash = hash.wrapping_mul(0x100_0000_01b3);
            }
        }
    }
    hash
}

/// [`region_checksum`] over the whole grid.
pub fn state_checksum(state: &Grid<PackedWord>) -> u64 {
    let (w, h) = state.dims();
    region_checksum(state, 0, 0, w, h)
}

/// A cell whose dual vector violates the feasibility invariant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InvariantViolation {
    /// Cell x.
    pub x: usize,
    /// Cell y.
    pub y: usize,
    /// The offending `px² + py²`.
    pub norm_sq: f64,
}

impl std::fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "|p|^2 = {:.4} at ({}, {}) exceeds the feasibility bound",
            self.norm_sq, self.x, self.y
        )
    }
}

/// Checks the dual-feasibility invariant over a rectangular region,
/// returning the first violating cell (row-major order), if any.
pub fn check_dual_feasibility_region(
    state: &Grid<PackedWord>,
    x0: usize,
    y0: usize,
    w: usize,
    h: usize,
    max_norm_sq: f64,
) -> Option<InvariantViolation> {
    for y in y0..y0 + h {
        for x in x0..x0 + w {
            let word = state[(x, y)];
            let px = word.px().to_f32() as f64;
            let py = word.py().to_f32() as f64;
            let norm_sq = px * px + py * py;
            if norm_sq > max_norm_sq {
                return Some(InvariantViolation { x, y, norm_sq });
            }
        }
    }
    None
}

/// [`check_dual_feasibility_region`] over the whole grid with the standard
/// bound [`FEASIBILITY_MAX_NORM_SQ`].
pub fn check_dual_feasibility(state: &Grid<PackedWord>) -> Option<InvariantViolation> {
    let (w, h) = state.dims();
    check_dual_feasibility_region(state, 0, 0, w, h, FEASIBILITY_MAX_NORM_SQ)
}

/// Recovery knobs of the guarded frame scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccelGuardConfig {
    /// How many verify-and-recompute passes a round may take before the
    /// frame degrades to the sequential fallback.
    pub max_tile_retries: u32,
    /// Force dual-modular-redundancy shadow execution per tile. DMR is
    /// enabled automatically whenever the injector can fire datapath
    /// glitches (they corrupt results *before* checksumming, so redundancy
    /// is the only detector for them); this flag turns it on even without.
    pub dmr: bool,
}

impl Default for AccelGuardConfig {
    /// Two recovery passes per round, DMR only when needed.
    fn default() -> Self {
        AccelGuardConfig {
            max_tile_retries: 2,
            dmr: false,
        }
    }
}

/// Result of a guarded frame: the outputs, the hardware statistics, and the
/// full detection/recovery account.
#[derive(Debug, Clone)]
pub struct GuardedFrame {
    /// First component output.
    pub u1: Image,
    /// Second component output, when a pair was requested.
    pub u2: Option<Image>,
    /// Frame statistics (recovery work shows up as extra window loads and
    /// cycles — redundancy and recomputation are not free).
    pub stats: FrameStats,
    /// What was detected and what was done about it.
    pub report: RecoveryReport,
}

/// Runs one tile through the next round-robin sliding window.
#[allow(clippy::too_many_arguments)]
fn run_tile(
    windows: &mut [SlidingWindow],
    next_window: &mut usize,
    state1: &Grid<PackedWord>,
    state2: Option<&Grid<PackedWord>>,
    tile: &Tile,
    params: &HwParams,
) -> (WindowRun, Option<WindowRun>) {
    let sub1 = state1.crop(tile.src_x, tile.src_y, tile.src_w, tile.src_h);
    let sub2 = state2.map(|s| s.crop(tile.src_x, tile.src_y, tile.src_w, tile.src_h));
    let n = windows.len();
    let sw = &mut windows[*next_window];
    *next_window = (*next_window + 1) % n;
    sw.process(&sub1, sub2.as_ref(), params, false)
}

impl ChambolleAccel {
    /// [`ChambolleAccel::denoise_pair`] hardened against the injector's
    /// fault classes. With a quiet injector the result — outputs *and*
    /// statistics — is identical to the unguarded path; with faults, the
    /// guarded scheduler detects every corruption that lands in a profitable
    /// region and recovers to the exact fault-free result, degrading to the
    /// sequential fixed-point reference (which is bit-identical to the
    /// accelerator by construction) when the per-round retry budget runs
    /// out.
    ///
    /// # Errors
    ///
    /// Returns [`HwParamsError`](crate::HwParamsError) if `params` cannot be
    /// encoded for the fixed-point datapath.
    ///
    /// # Panics
    ///
    /// Panics if `v2` is given with different dimensions from `v1`, or the
    /// frame is empty.
    pub fn denoise_pair_guarded(
        &mut self,
        v1: &Image,
        v2: Option<&Image>,
        params: &ChambolleParams,
        injector: &mut FaultInjector,
        guard: &AccelGuardConfig,
    ) -> Result<GuardedFrame, crate::HwParamsError> {
        let hw = HwParams::try_from(*params)?;
        if let Some(v2) = v2 {
            assert_eq!(v1.dims(), v2.dims(), "component fields must match in size");
        }
        let (w, h) = v1.dims();
        assert!(w > 0 && h > 0, "frame must be non-empty");

        let frame_span = self.telemetry.span("hwsim.denoise_pair_guarded");
        let start_bram = if self.telemetry.is_enabled() {
            Some((self.bram_stats(), self.sqrt_lookups()))
        } else {
            None
        };
        let config = *self.config();
        let dmr = guard.dmr || injector.config().datapath_rate > 0.0;
        let start_cycles: Vec<u64> = self.windows.iter().map(|sw| sw.cycles()).collect();
        let original1 = quantize_input(v1);
        let original2 = v2.map(quantize_input);
        let mut state1 = original1.clone();
        let mut state2 = original2.clone();
        let mut report = RecoveryReport::default();
        let mut window_loads = 0u64;
        let mut rounds = 0u32;
        let mut remaining = params.iterations;
        let mut next_window = 0usize;
        let mut fell_back = false;

        'rounds: while remaining > 0 {
            let round = rounds;
            let k = remaining.min(config.merge_factor);
            let plan = TilePlan::new(w, h, config.tile_config(k));
            let tiles: Vec<Tile> = plan.tiles().to_vec();
            let round_params = HwParams {
                iterations: k,
                ..hw
            };

            // Configuration upsets land in the sqrt ROMs before the round.
            injector.corrupt_luts(round, &mut self.windows);

            let mut next1 = state1.clone();
            let mut next2 = state2.clone();
            for (i, tile) in tiles.iter().enumerate() {
                let (mut run1, mut run2) = run_tile(
                    &mut self.windows,
                    &mut next_window,
                    &state1,
                    state2.as_ref(),
                    tile,
                    &round_params,
                );
                window_loads += 1;
                // Transient glitches hit only this first execution; the DMR
                // shadow below re-runs the same deterministic hardware and
                // is clean, so a mismatch pinpoints the glitch exactly.
                injector.perturb_datapath(round, i, 0, &mut run1.words);
                if let Some(r2) = run2.as_mut() {
                    injector.perturb_datapath(round, i, 1, &mut r2.words);
                }
                if dmr {
                    let (shadow1, shadow2) = run_tile(
                        &mut self.windows,
                        &mut next_window,
                        &state1,
                        state2.as_ref(),
                        tile,
                        &round_params,
                    );
                    window_loads += 1;
                    let mismatch = run1.words != shadow1.words
                        || run2.as_ref().map(|r| &r.words) != shadow2.as_ref().map(|r| &r.words);
                    if mismatch {
                        report.detections += 1;
                        report
                            .actions
                            .push(RecoveryAction::DatapathArbitration { round, tile: i });
                        run1 = shadow1;
                        run2 = shadow2;
                    }
                }
                blit_profitable_words(&mut next1, tile, &run1.words);
                if let (Some(next2), Some(run2)) = (next2.as_mut(), run2.as_ref()) {
                    blit_profitable_words(next2, tile, &run2.words);
                }
            }

            // Golden-checksum scrub of every sqrt table. A repaired table
            // means some tiles computed through a corrupted ROM — which
            // tiles is unknowable, so the whole round recomputes on the
            // now-clean units from the intact round-start snapshot.
            let repairs: u32 = self
                .windows
                .iter_mut()
                .map(|sw| sw.repair_sqrt_units())
                .sum();
            if repairs > 0 {
                report.detections += repairs;
                report
                    .actions
                    .push(RecoveryAction::LutRepair { round, repairs });
                report
                    .actions
                    .push(RecoveryAction::RoundRecompute { round });
                next1 = state1.clone();
                next2 = state2.clone();
                for tile in &tiles {
                    let (run1, run2) = run_tile(
                        &mut self.windows,
                        &mut next_window,
                        &state1,
                        state2.as_ref(),
                        tile,
                        &round_params,
                    );
                    window_loads += 1;
                    blit_profitable_words(&mut next1, tile, &run1.words);
                    if let (Some(next2), Some(run2)) = (next2.as_mut(), run2.as_ref()) {
                        blit_profitable_words(next2, tile, &run2.words);
                    }
                }
            }

            // Checksum the clean round result per profitable region (the
            // regions partition the frame, so every later upset lands in
            // exactly one of them).
            let sums1: Vec<u64> = tiles
                .iter()
                .map(|t| region_checksum(&next1, t.out_x, t.out_y, t.out_w, t.out_h))
                .collect();
            let sums2: Option<Vec<u64>> = next2.as_ref().map(|n2| {
                tiles
                    .iter()
                    .map(|t| region_checksum(n2, t.out_x, t.out_y, t.out_w, t.out_h))
                    .collect()
            });

            // SEUs land between rounds — after checksumming, exactly like a
            // scrubbing controller whose checksum RAM holds the truth.
            injector.corrupt_state(round, 0, &mut next1);
            if let Some(n2) = next2.as_mut() {
                injector.corrupt_state(round, 1, n2);
            }

            // Verify every region (checksum + feasibility invariant) and
            // recompute corrupted tiles from the round-start snapshot.
            let mut attempt = 0u32;
            loop {
                let bad: Vec<usize> = tiles
                    .iter()
                    .enumerate()
                    .filter(|(i, t)| {
                        let clean1 = region_checksum(&next1, t.out_x, t.out_y, t.out_w, t.out_h)
                            == sums1[*i]
                            && check_dual_feasibility_region(
                                &next1,
                                t.out_x,
                                t.out_y,
                                t.out_w,
                                t.out_h,
                                FEASIBILITY_MAX_NORM_SQ,
                            )
                            .is_none();
                        let clean2 = match (&next2, &sums2) {
                            (Some(n2), Some(s2)) => {
                                region_checksum(n2, t.out_x, t.out_y, t.out_w, t.out_h) == s2[*i]
                                    && check_dual_feasibility_region(
                                        n2,
                                        t.out_x,
                                        t.out_y,
                                        t.out_w,
                                        t.out_h,
                                        FEASIBILITY_MAX_NORM_SQ,
                                    )
                                    .is_none()
                            }
                            _ => true,
                        };
                        !(clean1 && clean2)
                    })
                    .map(|(i, _)| i)
                    .collect();
                if bad.is_empty() {
                    break;
                }
                report.detections += bad.len() as u32;
                if attempt >= guard.max_tile_retries {
                    fell_back = true;
                    report.degraded = true;
                    report.actions.push(RecoveryAction::SequentialFallback);
                    break 'rounds;
                }
                for &i in &bad {
                    let tile = &tiles[i];
                    let (run1, run2) = run_tile(
                        &mut self.windows,
                        &mut next_window,
                        &state1,
                        state2.as_ref(),
                        tile,
                        &round_params,
                    );
                    window_loads += 1;
                    blit_profitable_words(&mut next1, tile, &run1.words);
                    if let (Some(next2), Some(run2)) = (next2.as_mut(), run2.as_ref()) {
                        blit_profitable_words(next2, tile, &run2.words);
                    }
                    report
                        .actions
                        .push(RecoveryAction::TileRecompute { round, tile: i });
                }
                attempt += 1;
            }

            state1 = next1;
            state2 = next2;
            remaining -= k;
            rounds += 1;
        }

        let (u1, u2) = if fell_back {
            // Graceful degradation: the monolithic fixed-point reference on
            // the original input — slower (no parallel windows), but
            // bit-identical to what a fault-free accelerator run produces.
            let sqrt = config.sqrt.unit();
            let s1 = fixed_chambolle_reference_with(&original1, &hw, &sqrt);
            let u2 = original2
                .as_ref()
                .map(|o| dequantize(&fixed_chambolle_reference_with(o, &hw, &sqrt).u));
            (dequantize(&s1.u), u2)
        } else {
            // Final u-round, exactly as the unguarded scheduler runs it (the
            // states entering it are verified clean).
            let mut u1 = Grid::new(w, h, WordFixed::ZERO);
            let mut u2 = v2.map(|_| Grid::new(w, h, WordFixed::ZERO));
            let sweep_params = HwParams {
                iterations: 0,
                ..hw
            };
            for tile in u_round_tiles(w, h, &config.array) {
                let sub1 = state1.crop(tile.src_x, tile.src_y, tile.src_w, tile.src_h);
                let sub2 = state2
                    .as_ref()
                    .map(|s| s.crop(tile.src_x, tile.src_y, tile.src_w, tile.src_h));
                let n = self.windows.len();
                let sw = &mut self.windows[next_window];
                next_window = (next_window + 1) % n;
                let (run1, run2) = sw.process(&sub1, sub2.as_ref(), &sweep_params, true);
                window_loads += 1;
                blit_profitable_u(&mut u1, &tile, &run1.u);
                if let (Some(u2), Some(run2)) = (u2.as_mut(), run2) {
                    blit_profitable_u(u2, &tile, &run2.u);
                }
            }
            (dequantize(&u1), u2.as_ref().map(dequantize))
        };

        let per_window_cycles: Vec<u64> = self
            .windows
            .iter()
            .zip(&start_cycles)
            .map(|(sw, &s)| sw.cycles() - s)
            .collect();
        let stats = FrameStats {
            cycles: per_window_cycles.iter().copied().max().unwrap_or(0),
            per_window_cycles,
            window_loads,
            rounds,
            clock_mhz: config.clock_mhz,
        };
        if let Some((bram0, sqrt0)) = start_bram {
            self.record_frame_telemetry(&stats, &bram0, sqrt0);
            report.record_telemetry(&self.telemetry);
        }
        drop(frame_span);
        Ok(GuardedFrame {
            u1,
            u2,
            stats,
            report,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accel::AccelConfig;
    use crate::reference::fixed_chambolle_reference;
    use chambolle_imaging::Grid;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_image(w: usize, h: usize, seed: u64) -> Image {
        let mut rng = StdRng::seed_from_u64(seed);
        Grid::from_fn(w, h, |_, _| rng.gen_range(0.0f32..1.0))
    }

    fn params(iters: u32) -> ChambolleParams {
        ChambolleParams::paper(iters)
    }

    fn reference_u(v: &Image, iters: u32) -> Grid<f32> {
        dequantize(&fixed_chambolle_reference(&quantize_input(v), &HwParams::standard(iters)).u)
    }

    #[test]
    fn injector_is_deterministic() {
        let config = FaultConfig {
            seed: 7,
            bram_flip_rate: 0.01,
            lut_rate: 0.3,
            datapath_rate: 0.2,
        };
        let drive = |mut inj: FaultInjector| {
            let mut state = quantize_input(&random_image(40, 30, 1));
            let mut windows = vec![SlidingWindow::new(crate::array::ArrayConfig::paper()); 2];
            inj.corrupt_luts(0, &mut windows);
            inj.corrupt_state(0, 0, &mut state);
            let mut words = quantize_input(&random_image(20, 10, 2));
            inj.perturb_datapath(0, 3, 0, &mut words);
            (inj.events().to_vec(), state, words)
        };
        let (e1, s1, w1) = drive(FaultInjector::new(config));
        let (e2, s2, w2) = drive(FaultInjector::new(config));
        assert_eq!(e1, e2);
        assert_eq!(s1, s2);
        assert_eq!(w1, w2);
        assert!(!e1.is_empty(), "rates this high must fire");
        let (e3, _, _) = drive(FaultInjector::new(FaultConfig { seed: 8, ..config }));
        assert_ne!(e1, e3, "different seeds give different traces");
    }

    #[test]
    fn injected_bits_avoid_the_spare_bit() {
        let mut inj = FaultInjector::new(FaultConfig {
            seed: 3,
            bram_flip_rate: 1.0,
            lut_rate: 0.0,
            datapath_rate: 0.0,
        });
        let mut state = quantize_input(&random_image(16, 16, 4));
        inj.corrupt_state(0, 0, &mut state);
        assert_eq!(inj.injected(), 256);
        for e in inj.events() {
            match e.kind {
                FaultKind::BramFlip { bit, .. } => assert!((1..=31).contains(&bit)),
                other => panic!("unexpected event {other:?}"),
            }
        }
    }

    #[test]
    fn checksum_catches_every_payload_flip() {
        let state = quantize_input(&random_image(12, 9, 5));
        let golden = state_checksum(&state);
        for bit in 1..32u32 {
            let mut corrupted = state.clone();
            let word = corrupted[(7, 4)].to_bits() ^ (1 << bit);
            corrupted[(7, 4)] = PackedWord::from_bits(word);
            assert_ne!(state_checksum(&corrupted), golden, "bit {bit} missed");
        }
    }

    #[test]
    fn feasibility_monitor_flags_corrupt_duals() {
        let v = random_image(30, 24, 6);
        let sol = fixed_chambolle_reference(&quantize_input(&v), &HwParams::standard(20));
        assert_eq!(
            check_dual_feasibility(&sol.words),
            None,
            "clean hardware state must satisfy the invariant"
        );
        let mut corrupted = sol.words.clone();
        let bad = PackedWord::new_saturating(
            corrupted[(3, 3)].v(),
            WordFixed::from_f32(-1.0),
            WordFixed::from_f32(-1.0),
        );
        corrupted[(3, 3)] = bad;
        let violation = check_dual_feasibility(&corrupted).expect("|p|^2 = 2 must be flagged");
        assert_eq!((violation.x, violation.y), (3, 3));
        assert!(violation.norm_sq > FEASIBILITY_MAX_NORM_SQ);
        assert!(violation.to_string().contains("(3, 3)"));
    }

    #[test]
    fn quiet_injector_changes_nothing() {
        let v = random_image(150, 120, 7);
        let p = params(6);
        let mut plain = ChambolleAccel::new(AccelConfig::paper(2).unwrap());
        let (u_plain, _, s_plain) = plain.denoise_pair(&v, None, &p).unwrap();
        let mut guarded = ChambolleAccel::new(AccelConfig::paper(2).unwrap());
        let mut inj = FaultInjector::new(FaultConfig::quiet(1));
        let frame = guarded
            .denoise_pair_guarded(&v, None, &p, &mut inj, &AccelGuardConfig::default())
            .unwrap();
        assert_eq!(frame.u1.as_slice(), u_plain.as_slice());
        assert_eq!(frame.stats.cycles, s_plain.cycles);
        assert_eq!(frame.stats.window_loads, s_plain.window_loads);
        assert!(frame.report.is_clean());
        assert_eq!(inj.injected(), 0);
    }

    #[test]
    fn bram_upsets_are_detected_and_recovered_exactly() {
        let v = random_image(150, 120, 8);
        let p = params(6);
        let mut accel = ChambolleAccel::new(AccelConfig::paper(2).unwrap());
        let mut inj = FaultInjector::new(FaultConfig {
            seed: 42,
            bram_flip_rate: 5e-4,
            lut_rate: 0.0,
            datapath_rate: 0.0,
        });
        let frame = accel
            .denoise_pair_guarded(&v, None, &p, &mut inj, &AccelGuardConfig::default())
            .unwrap();
        assert!(inj.injected() > 0, "rate must actually fire on this frame");
        assert!(frame.report.detections > 0);
        assert!(frame.report.tile_recomputes() > 0);
        assert!(!frame.report.degraded);
        // Exact recovery: bit-identical to the fault-free reference.
        assert_eq!(frame.u1.as_slice(), reference_u(&v, 6).as_slice());
    }

    #[test]
    fn guarded_frame_reports_fault_counters_via_telemetry() {
        use chambolle_telemetry::{names, Telemetry};
        let v = random_image(150, 120, 8);
        let p = params(6);
        let mut accel = ChambolleAccel::new(AccelConfig::paper(2).unwrap());
        let telemetry = Telemetry::null();
        accel.attach_telemetry(telemetry.clone());
        let mut inj = FaultInjector::new(FaultConfig {
            seed: 42,
            bram_flip_rate: 5e-4,
            lut_rate: 0.0,
            datapath_rate: 0.0,
        });
        let frame = accel
            .denoise_pair_guarded(&v, None, &p, &mut inj, &AccelGuardConfig::default())
            .unwrap();
        let snap = telemetry.snapshot();
        assert_eq!(
            snap.counter(names::GUARD_DETECTIONS),
            Some(u64::from(frame.report.detections))
        );
        assert_eq!(
            snap.counter(names::GUARD_RECOVERIES),
            Some(frame.report.actions.len() as u64)
        );
        assert_eq!(snap.counter(names::GUARD_FALLBACKS), Some(0));
        assert_eq!(
            snap.counter(&format!("{}tile_recompute", names::GUARD_ACTION_PREFIX)),
            Some(frame.report.tile_recomputes() as u64)
        );
        assert_eq!(snap.counter(names::HWSIM_FRAMES), Some(1));
        assert_eq!(snap.counter(names::HWSIM_CYCLES), Some(frame.stats.cycles));
    }

    #[test]
    fn lut_corruption_triggers_repair_and_round_recompute() {
        let v = random_image(100, 90, 9);
        let p = params(4);
        let mut accel = ChambolleAccel::new(AccelConfig::paper(2).unwrap());
        let mut inj = FaultInjector::new(FaultConfig {
            seed: 5,
            bram_flip_rate: 0.0,
            lut_rate: 0.5,
            datapath_rate: 0.0,
        });
        let frame = accel
            .denoise_pair_guarded(&v, None, &p, &mut inj, &AccelGuardConfig::default())
            .unwrap();
        assert!(inj.injected() > 0);
        assert!(frame
            .report
            .actions
            .iter()
            .any(|a| matches!(a, RecoveryAction::LutRepair { .. })));
        assert!(frame
            .report
            .actions
            .iter()
            .any(|a| matches!(a, RecoveryAction::RoundRecompute { .. })));
        assert_eq!(frame.u1.as_slice(), reference_u(&v, 4).as_slice());
        // Scrubbing leaves the hardware clean for the next frame.
        assert!(accel.windows.iter().all(|sw| sw.sqrt_units_intact()));
    }

    #[test]
    fn datapath_glitches_are_arbitrated_by_dmr() {
        let v = random_image(100, 90, 10);
        let p = params(4);
        let mut accel = ChambolleAccel::new(AccelConfig::paper(2).unwrap());
        let mut inj = FaultInjector::new(FaultConfig {
            seed: 11,
            bram_flip_rate: 0.0,
            lut_rate: 0.0,
            datapath_rate: 0.5,
        });
        let frame = accel
            .denoise_pair_guarded(&v, None, &p, &mut inj, &AccelGuardConfig::default())
            .unwrap();
        assert!(inj.injected() > 0);
        let arbitrations = frame
            .report
            .actions
            .iter()
            .filter(|a| matches!(a, RecoveryAction::DatapathArbitration { .. }))
            .count();
        // A glitch can land outside the profitable region (halo cells are
        // discarded), but at least one must have been arbitrated at 50%.
        assert!(arbitrations > 0);
        assert_eq!(frame.u1.as_slice(), reference_u(&v, 4).as_slice());
    }

    #[test]
    fn exhausted_retries_degrade_to_the_sequential_reference() {
        let v = random_image(120, 100, 11);
        let p = params(5);
        let mut accel = ChambolleAccel::new(AccelConfig::paper(2).unwrap());
        let mut inj = FaultInjector::new(FaultConfig {
            seed: 13,
            bram_flip_rate: 2e-3,
            lut_rate: 0.0,
            datapath_rate: 0.0,
        });
        let guard = AccelGuardConfig {
            max_tile_retries: 0,
            dmr: false,
        };
        let frame = accel
            .denoise_pair_guarded(&v, None, &p, &mut inj, &guard)
            .unwrap();
        assert!(frame.report.degraded);
        assert_eq!(
            frame.report.actions.last(),
            Some(&RecoveryAction::SequentialFallback)
        );
        // Degraded ≠ wrong: the sequential reference is bit-identical.
        assert_eq!(frame.u1.as_slice(), reference_u(&v, 5).as_slice());
    }

    #[test]
    fn guarded_pair_recovers_both_components() {
        let v1 = random_image(100, 80, 12);
        let v2 = random_image(100, 80, 13);
        let p = params(4);
        let mut accel = ChambolleAccel::new(AccelConfig::paper(2).unwrap());
        let mut inj = FaultInjector::new(FaultConfig {
            seed: 17,
            bram_flip_rate: 5e-4,
            lut_rate: 0.2,
            datapath_rate: 0.0,
        });
        let frame = accel
            .denoise_pair_guarded(&v1, Some(&v2), &p, &mut inj, &AccelGuardConfig::default())
            .unwrap();
        assert!(inj.injected() > 0);
        assert_eq!(frame.u1.as_slice(), reference_u(&v1, 4).as_slice());
        let u2 = frame.u2.expect("pair requested");
        assert_eq!(u2.as_slice(), reference_u(&v2, 4).as_slice());
    }

    #[test]
    fn recovery_costs_extra_window_loads() {
        let v = random_image(150, 120, 14);
        let p = params(6);
        let mut clean = ChambolleAccel::new(AccelConfig::paper(2).unwrap());
        let mut quiet = FaultInjector::new(FaultConfig::quiet(0));
        let base = clean
            .denoise_pair_guarded(&v, None, &p, &mut quiet, &AccelGuardConfig::default())
            .unwrap();
        let mut faulty = ChambolleAccel::new(AccelConfig::paper(2).unwrap());
        let mut inj = FaultInjector::new(FaultConfig {
            seed: 19,
            bram_flip_rate: 1e-3,
            lut_rate: 0.0,
            datapath_rate: 0.0,
        });
        let recovered = faulty
            .denoise_pair_guarded(&v, None, &p, &mut inj, &AccelGuardConfig::default())
            .unwrap();
        assert!(inj.injected() > 0);
        assert!(
            recovered.stats.window_loads > base.stats.window_loads,
            "tile recomputes must show up in the statistics"
        );
        assert_eq!(recovered.u1.as_slice(), base.u1.as_slice());
    }
}
