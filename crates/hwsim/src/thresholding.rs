//! Fixed-point TV-L1 thresholding unit.
//!
//! The paper's accelerator covers the Chambolle inner solve; its outputs
//! "are subsequently used to update `v` by means of the thresholding
//! function" (Section V-A). This module supplies that missing system piece
//! in the same Q-format datapath, so the *entire* TV-L1 per-warp loop can
//! run in hardware arithmetic: thresholding here, denoising on
//! [`crate::ChambolleAccel`].
//!
//! The unit evaluates, per pixel,
//!
//! ```text
//! d = ⎧  λθ·g            if rho < −λθ·|g|²
//!     ⎨ −λθ·g            if rho >  λθ·|g|²
//!     ⎩ −rho·g/|g|²      otherwise            (v = u + d)
//! ```
//!
//! with saturating Q-format multiplies and a restoring division for the
//! middle branch — three comparators, four multipliers and two dividers.
//!
//! Unlike the BRAM word (8 fraction bits), this unit carries **16 fraction
//! bits**: it squares image gradients on the order of 0.1, whose squares
//! (~0.01) would collapse to one or two LSBs in Q·.8 and wreck the
//! Gauss-Newton branch. The Chambolle core never squares such small values —
//! its `Term`s are `v/θ`-sized — which is why the paper gets away with 8
//! fraction bits there.

use chambolle_fixed::Fixed;
use chambolle_imaging::{FlowField, WarpLinearization};

/// The Q-format of the thresholding datapath (16 fraction bits).
pub type ThFixed = Fixed<16>;

/// The per-pixel thresholding datapath.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixedThresholdUnit {
    lambda_theta: ThFixed,
}

impl FixedThresholdUnit {
    /// Builds a unit for the product `λ·θ` (quantized to the Q-format; the
    /// hardware receives it as one control constant).
    pub fn new(lambda: f32, theta: f32) -> Self {
        FixedThresholdUnit {
            lambda_theta: ThFixed::from_f32(lambda * theta),
        }
    }

    /// The quantized `λθ` constant in use.
    pub fn lambda_theta(&self) -> ThFixed {
        self.lambda_theta
    }

    /// One pixel: the flow increment `(d1, d2)` for residual `rho` and
    /// warped gradient `(gx, gy)`.
    pub fn step(&self, rho: ThFixed, gx: ThFixed, gy: ThFixed) -> (ThFixed, ThFixed) {
        let g2 = gx * gx + gy * gy;
        let lt = self.lambda_theta;
        let bound = lt * g2;
        if rho < -bound {
            (lt * gx, lt * gy)
        } else if rho > bound {
            (-(lt * gx), -(lt * gy))
        } else if g2 > ThFixed::ZERO {
            // -rho*g/|g|^2. The divider consumes the *full-width* product
            // (Q30.32 numerator / Q16.16 divisor -> Q15.16 quotient), as a
            // DSP-fed divider naturally would: truncating rho*g to 16
            // fraction bits first would turn a 1-LSB product into a
            // half-pixel step when |g|^2 is also a few LSBs.
            (-wide_div(rho, gx, g2), -wide_div(rho, gy, g2))
        } else {
            (ThFixed::ZERO, ThFixed::ZERO)
        }
    }
}

/// `(a*b)/c` with a full-width intermediate product, truncating toward zero
/// at the divider output and saturating to the Q-format range.
fn wide_div(a: ThFixed, b: ThFixed, c: ThFixed) -> ThFixed {
    let num = a.to_bits() as i64 * b.to_bits() as i64;
    let q = num / c.to_bits() as i64;
    ThFixed::from_bits(q.clamp(i32::MIN as i64, i32::MAX as i64) as i32)
}

/// The frame-level thresholding step computed through the fixed-point unit:
/// quantizes the float residuals/gradients to the Q-format (the values a
/// hardware TH unit would receive from the warp engine), applies
/// [`FixedThresholdUnit::step`], and returns `v = u + d` in `f32`.
///
/// Drop-in replacement for [`chambolle_core::threshold_step`]; the pair
/// `(threshold_step_fixed, AccelDenoiser)` runs the whole TV-L1 warp loop in
/// hardware arithmetic.
pub fn threshold_step_fixed(
    lin: &WarpLinearization,
    u: &FlowField,
    lambda: f32,
    theta: f32,
) -> FlowField {
    let unit = FixedThresholdUnit::new(lambda, theta);
    FlowField::from_fn(u.width(), u.height(), |x, y| {
        let (u1, u2) = u.at(x, y);
        let rho = ThFixed::from_f32(lin.rho(x, y, u1, u2));
        let gx = ThFixed::from_f32(lin.gx[(x, y)]);
        let gy = ThFixed::from_f32(lin.gy[(x, y)]);
        let (d1, d2) = unit.step(rho, gx, gy);
        (u1 + d1.to_f32(), u2 + d2.to_f32())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use chambolle_core::threshold_step;
    use chambolle_imaging::{Grid, NoiseTexture, Scene};

    fn q(v: f32) -> ThFixed {
        ThFixed::from_f32(v)
    }

    #[test]
    fn clamped_branches_scale_the_gradient() {
        let unit = FixedThresholdUnit::new(2.0, 0.25); // λθ = 0.5
                                                       // Large negative residual: d = +λθ·g.
        let (d1, d2) = unit.step(q(-10.0), q(0.5), q(-0.25));
        assert_eq!(d1.to_f32(), 0.25);
        assert_eq!(d2.to_f32(), -0.125);
        // Large positive residual: d = −λθ·g.
        let (d1, d2) = unit.step(q(10.0), q(0.5), q(-0.25));
        assert_eq!(d1.to_f32(), -0.25);
        assert_eq!(d2.to_f32(), 0.125);
    }

    #[test]
    fn middle_branch_is_the_gauss_newton_step() {
        let unit = FixedThresholdUnit::new(2.0, 0.25);
        // g = (1, 0), rho small: d1 = -rho, d2 = 0.
        let (d1, d2) = unit.step(q(0.125), q(1.0), q(0.0));
        assert_eq!(d1.to_f32(), -0.125);
        assert_eq!(d2, ThFixed::ZERO);
    }

    #[test]
    fn zero_gradient_means_no_step() {
        let unit = FixedThresholdUnit::new(2.0, 0.25);
        assert_eq!(unit.step(q(5.0), q(0.0), q(0.0)), (q(0.0), q(0.0)));
    }

    #[test]
    fn matches_float_threshold_within_quantization() {
        // Compare the fixed unit against chambolle_core::threshold_step on a
        // realistic linearization.
        let scene = NoiseTexture::new(31);
        let i0 = scene.render(32, 24);
        let i1 = Grid::from_fn(32, 24, |x, y| scene.sample(x as f32 - 1.0, y as f32));
        let u = FlowField::constant(32, 24, 0.5, 0.0);
        let lin = WarpLinearization::new(&i0, &i1, &u);
        let (lambda, theta) = (38.0, 0.25);
        let v_float = threshold_step(&lin, &u, lambda, theta);
        let v_fixed = threshold_step_fixed(&lin, &u, lambda, theta);
        let mut max_err = 0.0f32;
        for y in 0..24 {
            for x in 0..32 {
                max_err = max_err.max((v_float.u1[(x, y)] - v_fixed.u1[(x, y)]).abs());
                max_err = max_err.max((v_float.u2[(x, y)] - v_fixed.u2[(x, y)]).abs());
            }
        }
        // 16-bit fractions: the dominant residual error is the few-LSB
        // quantization of |g|^2 in the Gauss-Newton divisor on near-flat
        // pixels, worth a few hundredths of a px depending on the sampled
        // scene — far below the flow's accuracy floor.
        assert!(max_err < 0.03, "fixed TH deviates by {max_err} px");
    }

    #[test]
    fn branch_boundaries_are_consistent() {
        // Just inside/outside the clamp boundary picks the right branch.
        let unit = FixedThresholdUnit::new(2.0, 0.25); // λθ = 0.5
        let (gx, gy) = (q(1.0), q(0.0)); // |g|² = 1, bound = 0.5
        let (d_in, _) = unit.step(q(0.49609375), gx, gy); // < bound
        let (d_out, _) = unit.step(q(0.50390625), gx, gy); // > bound
        assert_eq!(d_in.to_f32(), -0.49609375, "middle branch");
        assert_eq!(d_out.to_f32(), -0.5, "clamped branch");
    }
}
