//! The top-level accelerator (Figure 2): two concurrent sliding windows,
//! each with one PE array per flow component, driven by a frame scheduler
//! that implements the loop-decomposition + sliding-window scheme over
//! arbitrarily large frames.
//!
//! A frame round loads each 92×88 window (profitable region plus halo), runs
//! `merge_factor` (K) iterations on chip, and writes the profitable `p` back;
//! after ⌈N/K⌉ rounds a final u-round sweeps `u = v − θ·div p` out of the
//! PE-Ts. Windows within a round are independent and are assigned
//! round-robin to the sliding windows; the frame latency is the larger of
//! the two windows' cycle totals.

use std::fmt;
use std::sync::Mutex;

use chambolle_core::{ChambolleParams, InvalidParamsError, TileConfig, TilePlan, TvDenoiser};
use chambolle_fixed::{PackedWord, SqrtUnit, WordFixed};
use chambolle_imaging::{Grid, Image};
use chambolle_telemetry::{names, Telemetry};

use crate::array::{ArrayConfig, ArrayStats, PeArray, WindowRun};
use crate::bram::BramStats;
use crate::params::HwParams;
use crate::reference::dequantize;
use crate::trace::SharedRecorder;

/// Which square-root hardware the PE-Vs instantiate (Section V-C trade).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SqrtKind {
    /// The paper's 256-entry LUT (1 cycle, ≈70 LUTs, ≈1% error).
    #[default]
    Lut,
    /// Iterative non-restoring square root (exact, 20 pipeline stages).
    NonRestoring,
}

impl SqrtKind {
    /// Instantiates the corresponding functional unit.
    pub fn unit(self) -> SqrtUnit {
        match self {
            SqrtKind::Lut => SqrtUnit::lut(),
            SqrtKind::NonRestoring => SqrtUnit::non_restoring(),
        }
    }
}

/// Configuration of the accelerator instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccelConfig {
    /// Geometry of each PE array (default: the paper's 92×88).
    pub array: ArrayConfig,
    /// Iterations merged per window load (K of the sliding-window scheme).
    pub merge_factor: u32,
    /// Number of concurrent sliding windows (the paper instantiates 2).
    pub sliding_windows: usize,
    /// Post-place-and-route clock (221 MHz in the paper).
    pub clock_mhz: f64,
    /// Square-root unit of the PE-V datapath.
    pub sqrt: SqrtKind,
}

impl AccelConfig {
    /// The paper's configuration with the given merge factor.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidParamsError`] if `merge_factor` leaves no profitable
    /// interior in a 92×88 window.
    pub fn paper(merge_factor: u32) -> Result<Self, InvalidParamsError> {
        // Validate against the same rules the tiler enforces (positive K,
        // profitable interior left after the halo).
        TileConfig::new(92, 88, merge_factor, 2)?;
        Ok(AccelConfig {
            array: ArrayConfig::paper(),
            merge_factor,
            sliding_windows: 2,
            clock_mhz: 221.0,
            sqrt: SqrtKind::Lut,
        })
    }

    pub(crate) fn tile_config(&self, k: u32) -> TileConfig {
        TileConfig::new(
            self.array.stride,
            self.array.max_rows,
            k,
            self.sliding_windows,
        )
        .expect("accelerator geometry was validated at construction")
    }
}

impl Default for AccelConfig {
    /// Paper geometry, K = 2, two sliding windows, 221 MHz.
    fn default() -> Self {
        AccelConfig::paper(2).expect("K = 2 is valid for the paper geometry")
    }
}

/// One sliding window: two PE arrays updating `u1` and `u2` of the same
/// sub-matrix completely in parallel (Figure 2).
#[derive(Debug, Clone)]
pub struct SlidingWindow {
    array_u1: PeArray,
    array_u2: PeArray,
    cycles: u64,
}

impl SlidingWindow {
    /// Creates a window with two arrays of the given geometry.
    pub fn new(config: ArrayConfig) -> Self {
        SlidingWindow::with_sqrt(config, SqrtKind::Lut)
    }

    /// Creates a window with an explicit square-root unit.
    pub fn with_sqrt(config: ArrayConfig, sqrt: SqrtKind) -> Self {
        SlidingWindow {
            array_u1: PeArray::with_sqrt(config, sqrt.unit()),
            array_u2: PeArray::with_sqrt(config, sqrt.unit()),
            cycles: 0,
        }
    }

    /// Processes one sub-matrix: `u1` on the first array and (optionally)
    /// `u2` on the second, concurrently — the window's cycle cost is the
    /// maximum of the two, which is the first array's count since both
    /// arrays run the identical schedule.
    pub fn process(
        &mut self,
        words1: &Grid<PackedWord>,
        words2: Option<&Grid<PackedWord>>,
        params: &HwParams,
        emit_u: bool,
    ) -> (WindowRun, Option<WindowRun>) {
        let run1 = self.array_u1.process_window_with(words1, params, emit_u);
        let run2 = words2.map(|w| self.array_u2.process_window_with(w, params, emit_u));
        let c2 = run2.as_ref().map_or(0, |r| r.stats.cycles);
        self.cycles += run1.stats.cycles.max(c2);
        (run1, run2)
    }

    /// Cycles this window has been busy since construction.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Combined statistics of the two arrays.
    pub fn stats(&self) -> (ArrayStats, ArrayStats) {
        (self.array_u1.stats(), self.array_u2.stats())
    }

    /// Aggregated per-port BRAM counters over both arrays' memories.
    pub fn bram_stats(&self) -> BramStats {
        let mut total = self.array_u1.bram_stats();
        total.merge(&self.array_u2.bram_stats());
        total
    }

    /// Square-root table accesses served by both arrays combined.
    pub fn sqrt_lookups(&self) -> u64 {
        self.array_u1.sqrt_lookups() + self.array_u2.sqrt_lookups()
    }

    /// Attaches an access recorder to every memory of both arrays for
    /// waveform dumps (see [`crate::trace`]).
    pub fn attach_recorder(&mut self, recorder: &SharedRecorder) {
        self.array_u1.attach_recorder(recorder);
        self.array_u2.attach_recorder(recorder);
    }

    /// Fault-injection backdoor: corrupts one sqrt-LUT entry in one of the
    /// window's arrays (`0` = the `u1` array, `1` = the `u2` array). Returns
    /// `false` when the configured sqrt unit has no table to corrupt.
    ///
    /// # Panics
    ///
    /// Panics if `array > 1`.
    pub fn corrupt_sqrt_entry(&mut self, array: u8, index: u8, xor: u8) -> bool {
        let unit = match array {
            0 => self.array_u1.sqrt_unit_mut(),
            1 => self.array_u2.sqrt_unit_mut(),
            other => panic!("window has two arrays, got index {other}"),
        };
        unit.corrupt_lut_entry(index, xor)
    }

    /// True when both arrays' sqrt units match their golden tables.
    pub fn sqrt_units_intact(&self) -> bool {
        self.array_u1.sqrt_unit().lut_intact() && self.array_u2.sqrt_unit().lut_intact()
    }

    /// Scrubs both arrays' sqrt units against the golden generator,
    /// returning how many tables actually needed repair.
    pub fn repair_sqrt_units(&mut self) -> u32 {
        self.array_u1.sqrt_unit_mut().repair_lut() as u32
            + self.array_u2.sqrt_unit_mut().repair_lut() as u32
    }
}

/// Frame-level execution statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameStats {
    /// Frame latency in cycles: the busiest sliding window's total.
    pub cycles: u64,
    /// Cycles consumed by each sliding window.
    pub per_window_cycles: Vec<u64>,
    /// Window loads executed (across all rounds, including the u-round).
    pub window_loads: u64,
    /// Iteration rounds (⌈N / K⌉).
    pub rounds: u32,
    /// Clock frequency used for the rate conversions.
    pub clock_mhz: f64,
}

impl FrameStats {
    /// Frame latency in seconds at the configured clock.
    pub fn seconds(&self) -> f64 {
        self.cycles as f64 / (self.clock_mhz * 1e6)
    }

    /// Frames per second at the configured clock (the Table II metric).
    pub fn fps(&self) -> f64 {
        1.0 / self.seconds()
    }
}

impl fmt::Display for FrameStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} cycles ({} rounds, {} window loads) -> {:.1} fps @ {} MHz",
            self.cycles,
            self.rounds,
            self.window_loads,
            self.fps(),
            self.clock_mhz
        )
    }
}

/// The full accelerator: sliding windows plus the frame scheduler.
#[derive(Debug)]
pub struct ChambolleAccel {
    config: AccelConfig,
    pub(crate) windows: Vec<SlidingWindow>,
    pub(crate) telemetry: Telemetry,
}

impl ChambolleAccel {
    /// Instantiates the accelerator.
    pub fn new(config: AccelConfig) -> Self {
        let windows = (0..config.sliding_windows.max(1))
            .map(|_| SlidingWindow::with_sqrt(config.array, config.sqrt))
            .collect();
        ChambolleAccel {
            config,
            windows,
            telemetry: Telemetry::disabled(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &AccelConfig {
        &self.config
    }

    /// Attaches a telemetry handle: every subsequent
    /// [`ChambolleAccel::denoise_pair`] records frame/cycle/round counters,
    /// per-port BRAM access and idle tallies, and sqrt-LUT usage.
    pub fn attach_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Attaches an access recorder to every memory of every sliding window,
    /// so a full two-window accelerator run can be dumped to VCD (see
    /// [`crate::trace::TraceRecorder`]) — previously only possible on a bare
    /// [`PeArray`].
    pub fn attach_recorder(&mut self, recorder: &SharedRecorder) {
        for window in &mut self.windows {
            window.attach_recorder(recorder);
        }
    }

    /// Aggregated per-port BRAM counters over every window's memories,
    /// cumulative since construction.
    pub fn bram_stats(&self) -> BramStats {
        let mut total = BramStats::default();
        for window in &self.windows {
            total.merge(&window.bram_stats());
        }
        total
    }

    /// Square-root table accesses served by all arrays, cumulative since
    /// construction.
    pub fn sqrt_lookups(&self) -> u64 {
        self.windows.iter().map(SlidingWindow::sqrt_lookups).sum()
    }

    /// Denoises a pair of fields (`v1`, `v2`) — the two flow components of
    /// one TV-L1 inner solve — returning the primal outputs and the frame
    /// statistics.
    ///
    /// Pass `None` for `v2` to denoise a single field (the second PE array
    /// of each window idles; cycle counts are unchanged, exactly as in the
    /// hardware).
    ///
    /// # Errors
    ///
    /// Returns [`HwParamsError`](crate::HwParamsError) via
    /// [`InvalidParamsError`] conversion if `params` cannot be encoded for
    /// the fixed-point datapath.
    ///
    /// # Panics
    ///
    /// Panics if `v2` is given with different dimensions from `v1`, or the
    /// frame is empty.
    pub fn denoise_pair(
        &mut self,
        v1: &Image,
        v2: Option<&Image>,
        params: &ChambolleParams,
    ) -> Result<(Image, Option<Image>, FrameStats), crate::HwParamsError> {
        let hw = HwParams::try_from(*params)?;
        if let Some(v2) = v2 {
            assert_eq!(v1.dims(), v2.dims(), "component fields must match in size");
        }
        let (w, h) = v1.dims();
        assert!(w > 0 && h > 0, "frame must be non-empty");

        let frame_span = self.telemetry.span("hwsim.denoise_pair");
        let start_bram = if self.telemetry.is_enabled() {
            Some((self.bram_stats(), self.sqrt_lookups()))
        } else {
            None
        };
        let n_windows = self.windows.len();
        let start_cycles: Vec<u64> = self.windows.iter().map(|sw| sw.cycles()).collect();
        let mut state1 = crate::reference::quantize_input(v1);
        let mut state2 = v2.map(crate::reference::quantize_input);
        let mut window_loads = 0u64;
        let mut rounds = 0u32;

        // Iteration rounds: K iterations per window load.
        let mut remaining = params.iterations;
        let mut next_window = 0usize;
        while remaining > 0 {
            let k = remaining.min(self.config.merge_factor);
            let plan = TilePlan::new(w, h, self.config.tile_config(k));
            let round_params = HwParams {
                iterations: k,
                ..hw
            };
            // Snapshot semantics: every window of a round reads the state at
            // round start; write-backs target the next round's state (the
            // hardware's windows run concurrently on the same input frame).
            let mut next1 = state1.clone();
            let mut next2 = state2.clone();
            for tile in plan.tiles() {
                let sub1 = state1.crop(tile.src_x, tile.src_y, tile.src_w, tile.src_h);
                let sub2 = state2
                    .as_ref()
                    .map(|s| s.crop(tile.src_x, tile.src_y, tile.src_w, tile.src_h));
                let sw = &mut self.windows[next_window];
                next_window = (next_window + 1) % n_windows;
                let (run1, run2) = sw.process(&sub1, sub2.as_ref(), &round_params, false);
                window_loads += 1;
                blit_profitable_words(&mut next1, tile, &run1.words);
                if let (Some(next2), Some(run2)) = (next2.as_mut(), run2) {
                    blit_profitable_words(next2, tile, &run2.words);
                }
            }
            state1 = next1;
            state2 = next2;
            remaining -= k;
            rounds += 1;
        }

        // Final u-round: PE-T sweeps with a one-cell leading halo.
        let mut u1 = Grid::new(w, h, WordFixed::ZERO);
        let mut u2 = v2.map(|_| Grid::new(w, h, WordFixed::ZERO));
        let sweep_params = HwParams {
            iterations: 0,
            ..hw
        };
        for tile in u_round_tiles(w, h, &self.config.array) {
            let sub1 = state1.crop(tile.src_x, tile.src_y, tile.src_w, tile.src_h);
            let sub2 = state2
                .as_ref()
                .map(|s| s.crop(tile.src_x, tile.src_y, tile.src_w, tile.src_h));
            let sw = &mut self.windows[next_window];
            next_window = (next_window + 1) % n_windows;
            let (run1, run2) = sw.process(&sub1, sub2.as_ref(), &sweep_params, true);
            window_loads += 1;
            blit_profitable_u(&mut u1, &tile, &run1.u);
            if let (Some(u2), Some(run2)) = (u2.as_mut(), run2) {
                blit_profitable_u(u2, &tile, &run2.u);
            }
        }

        let per_window_cycles: Vec<u64> = self
            .windows
            .iter()
            .zip(&start_cycles)
            .map(|(sw, &s)| sw.cycles() - s)
            .collect();
        let stats = FrameStats {
            cycles: per_window_cycles.iter().copied().max().unwrap_or(0),
            per_window_cycles,
            window_loads,
            rounds,
            clock_mhz: self.config.clock_mhz,
        };
        if let Some((bram0, sqrt0)) = start_bram {
            self.record_frame_telemetry(&stats, &bram0, sqrt0);
        }
        drop(frame_span);
        Ok((dequantize(&u1), u2.as_ref().map(dequantize), stats))
    }

    /// Emits this frame's counters: the deltas of the cumulative BRAM and
    /// sqrt tallies against the pre-frame snapshot, plus the frame stats.
    pub(crate) fn record_frame_telemetry(&self, stats: &FrameStats, bram0: &BramStats, sqrt0: u64) {
        let tele = &self.telemetry;
        tele.counter_add(names::HWSIM_FRAMES, 1);
        tele.counter_add(names::HWSIM_CYCLES, stats.cycles);
        tele.counter_add(names::HWSIM_WINDOW_LOADS, stats.window_loads);
        tele.counter_add(names::HWSIM_ROUNDS, u64::from(stats.rounds));
        let bram = self.bram_stats();
        tele.counter_add(
            names::HWSIM_BRAM_PORT1_READS,
            bram.port_reads[0] - bram0.port_reads[0],
        );
        tele.counter_add(
            names::HWSIM_BRAM_PORT2_READS,
            bram.port_reads[1] - bram0.port_reads[1],
        );
        tele.counter_add(
            names::HWSIM_BRAM_PORT1_WRITES,
            bram.port_writes[0] - bram0.port_writes[0],
        );
        tele.counter_add(
            names::HWSIM_BRAM_PORT2_WRITES,
            bram.port_writes[1] - bram0.port_writes[1],
        );
        tele.counter_add(
            names::HWSIM_BRAM_PORT1_IDLE,
            bram.port_idle_cycles(0) - bram0.port_idle_cycles(0),
        );
        tele.counter_add(
            names::HWSIM_BRAM_PORT2_IDLE,
            bram.port_idle_cycles(1) - bram0.port_idle_cycles(1),
        );
        tele.counter_add(names::HWSIM_SQRT_LOOKUPS, self.sqrt_lookups() - sqrt0);
    }
}

/// A window position of the u-round: output block plus a one-cell
/// leading (left/top) halo — `u` at a cell reads `p` at itself and its
/// left/up neighbors only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct UTile {
    pub(crate) src_x: usize,
    pub(crate) src_y: usize,
    pub(crate) src_w: usize,
    pub(crate) src_h: usize,
    pub(crate) out_x: usize,
    pub(crate) out_y: usize,
    pub(crate) out_w: usize,
    pub(crate) out_h: usize,
}

pub(crate) fn u_round_tiles(w: usize, h: usize, array: &ArrayConfig) -> Vec<UTile> {
    let step_x = array.stride - 1;
    let step_y = array.max_rows - 1;
    let mut tiles = Vec::new();
    let mut oy = 0;
    while oy < h {
        let out_h = step_y.min(h - oy);
        let mut ox = 0;
        while ox < w {
            let out_w = step_x.min(w - ox);
            let src_x = ox.saturating_sub(1);
            let src_y = oy.saturating_sub(1);
            tiles.push(UTile {
                src_x,
                src_y,
                src_w: ox + out_w - src_x,
                src_h: oy + out_h - src_y,
                out_x: ox,
                out_y: oy,
                out_w,
                out_h,
            });
            ox += out_w;
        }
        oy += out_h;
    }
    tiles
}

pub(crate) fn blit_profitable_words(
    global: &mut Grid<PackedWord>,
    tile: &chambolle_core::Tile,
    local: &Grid<PackedWord>,
) {
    let lx = tile.local_out_x();
    let ly = tile.local_out_y();
    for y in 0..tile.out_h {
        for x in 0..tile.out_w {
            global[(tile.out_x + x, tile.out_y + y)] = local[(lx + x, ly + y)];
        }
    }
}

pub(crate) fn blit_profitable_u(
    global: &mut Grid<WordFixed>,
    tile: &UTile,
    local: &Grid<WordFixed>,
) {
    let lx = tile.out_x - tile.src_x;
    let ly = tile.out_y - tile.src_y;
    for y in 0..tile.out_h {
        for x in 0..tile.out_w {
            global[(tile.out_x + x, tile.out_y + y)] = local[(lx + x, ly + y)];
        }
    }
}

/// [`TvDenoiser`] adapter so the accelerator can back the TV-L1 outer loop.
///
/// The trait takes `&self`, so the mutable accelerator lives behind a mutex.
#[derive(Debug)]
pub struct AccelDenoiser {
    accel: Mutex<ChambolleAccel>,
}

impl AccelDenoiser {
    /// Wraps an accelerator instance.
    pub fn new(accel: ChambolleAccel) -> Self {
        AccelDenoiser {
            accel: Mutex::new(accel),
        }
    }

    /// Consumes the adapter, returning the accelerator (e.g. to read
    /// cumulative cycle counts after a flow estimation).
    pub fn into_inner(self) -> ChambolleAccel {
        self.accel.into_inner().expect("accelerator mutex poisoned")
    }
}

impl TvDenoiser for AccelDenoiser {
    /// # Panics
    ///
    /// Panics if `params` cannot be encoded for the fixed-point datapath
    /// (use exactly representable Q8.8 values such as θ = 0.25, τ = θ/4).
    fn denoise(&self, v: &Grid<f32>, params: &ChambolleParams) -> Grid<f32> {
        let mut accel = self.accel.lock().expect("accelerator mutex poisoned");
        let (u, _, _) = accel
            .denoise_pair(v, None, params)
            .expect("parameters must be hardware-representable");
        u
    }

    fn name(&self) -> &str {
        "fpga-sim"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{fixed_chambolle_reference, quantize_input};
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_image(w: usize, h: usize, seed: u64) -> Image {
        let mut rng = StdRng::seed_from_u64(seed);
        Grid::from_fn(w, h, |_, _| rng.gen_range(0.0f32..1.0))
    }

    fn params(iters: u32) -> ChambolleParams {
        ChambolleParams::paper(iters)
    }

    #[test]
    fn frame_matches_monolithic_reference() {
        // A frame larger than one window, denoised through the sliding
        // windows, must equal the monolithic fixed-point reference exactly.
        let v = random_image(150, 120, 1);
        let p = params(6);
        let mut accel = ChambolleAccel::new(AccelConfig::paper(2).unwrap());
        let (u, _, stats) = accel.denoise_pair(&v, None, &p).unwrap();
        let reference = fixed_chambolle_reference(&quantize_input(&v), &HwParams::standard(6));
        for y in 0..120 {
            for x in 0..150 {
                assert_eq!(
                    WordFixed::from_f32(u[(x, y)]),
                    reference.u[(x, y)],
                    "u mismatch at ({x},{y})"
                );
            }
        }
        assert!(stats.cycles > 0);
        assert!(stats.rounds == 3);
    }

    #[test]
    fn small_frame_single_window() {
        let v = random_image(40, 30, 2);
        let p = params(5);
        let mut accel = ChambolleAccel::new(AccelConfig::default());
        let (u, _, stats) = accel.denoise_pair(&v, None, &p).unwrap();
        let reference = fixed_chambolle_reference(&quantize_input(&v), &HwParams::standard(5));
        assert_eq!(u.map(|&v| WordFixed::from_f32(v)), reference.u.map(|&x| x));
        // 3 iteration rounds (2+2+1) plus one u-round window each.
        assert_eq!(stats.rounds, 3);
        assert_eq!(stats.window_loads, 4);
    }

    #[test]
    fn pair_components_are_independent() {
        let v1 = random_image(50, 40, 3);
        let v2 = random_image(50, 40, 4);
        let p = params(4);
        let mut accel = ChambolleAccel::new(AccelConfig::default());
        let (u1, u2, _) = accel.denoise_pair(&v1, Some(&v2), &p).unwrap();
        let u2 = u2.expect("second component requested");
        let r1 = fixed_chambolle_reference(&quantize_input(&v1), &HwParams::standard(4));
        let r2 = fixed_chambolle_reference(&quantize_input(&v2), &HwParams::standard(4));
        assert_eq!(u1.map(|&v| WordFixed::from_f32(v)), r1.u.map(|&x| x));
        assert_eq!(u2.map(|&v| WordFixed::from_f32(v)), r2.u.map(|&x| x));
    }

    #[test]
    fn pair_costs_no_extra_cycles() {
        let v1 = random_image(60, 50, 5);
        let v2 = random_image(60, 50, 6);
        let p = params(3);
        let mut a = ChambolleAccel::new(AccelConfig::default());
        let (_, _, s_single) = a.denoise_pair(&v1, None, &p).unwrap();
        let mut b = ChambolleAccel::new(AccelConfig::default());
        let (_, _, s_pair) = b.denoise_pair(&v1, Some(&v2), &p).unwrap();
        assert_eq!(s_single.cycles, s_pair.cycles, "u2 array runs in parallel");
    }

    #[test]
    fn two_windows_split_the_work() {
        // A frame of many tiles: the two sliding windows should end up with
        // near-equal cycle shares.
        let v = random_image(300, 180, 7);
        let p = params(2);
        let mut accel = ChambolleAccel::new(AccelConfig::default());
        let (_, _, stats) = accel.denoise_pair(&v, None, &p).unwrap();
        assert_eq!(stats.per_window_cycles.len(), 2);
        let (a, b) = (stats.per_window_cycles[0], stats.per_window_cycles[1]);
        let imbalance = (a as f64 - b as f64).abs() / a.max(b) as f64;
        assert!(imbalance < 0.5, "windows too imbalanced: {a} vs {b}");
    }

    #[test]
    fn fps_accounting() {
        let stats = FrameStats {
            cycles: 2_210_000,
            per_window_cycles: vec![2_210_000],
            window_loads: 10,
            rounds: 5,
            clock_mhz: 221.0,
        };
        assert!((stats.seconds() - 0.01).abs() < 1e-12);
        assert!((stats.fps() - 100.0).abs() < 1e-9);
        assert!(stats.to_string().contains("fps"));
    }

    #[test]
    fn denoiser_adapter_matches_reference() {
        let v = random_image(30, 20, 8);
        let p = params(4);
        let adapter = AccelDenoiser::new(ChambolleAccel::new(AccelConfig::default()));
        let u = adapter.denoise(&v, &p);
        let reference = fixed_chambolle_reference(&quantize_input(&v), &HwParams::standard(4));
        assert_eq!(u.map(|&v| WordFixed::from_f32(v)), reference.u.map(|&x| x));
        assert_eq!(adapter.name(), "fpga-sim");
        let accel = adapter.into_inner();
        assert!(accel.windows[0].cycles() > 0);
    }

    #[test]
    fn non_restoring_sqrt_is_bit_exact_vs_its_reference() {
        use crate::reference::fixed_chambolle_reference_with;
        use chambolle_fixed::SqrtUnit;
        let v = random_image(60, 40, 9);
        let p = params(5);
        let config = AccelConfig {
            sqrt: SqrtKind::NonRestoring,
            ..AccelConfig::default()
        };
        let mut accel = ChambolleAccel::new(config);
        let (u, _, _) = accel.denoise_pair(&v, None, &p).unwrap();
        let reference = fixed_chambolle_reference_with(
            &quantize_input(&v),
            &HwParams::standard(5),
            &SqrtUnit::non_restoring(),
        );
        assert_eq!(u.map(|&v| WordFixed::from_f32(v)), reference.u.map(|&x| x));
    }

    #[test]
    fn non_restoring_sqrt_changes_the_result_and_costs_cycles() {
        let v = random_image(50, 40, 10);
        let p = params(10);
        let mut lut_accel = ChambolleAccel::new(AccelConfig::default());
        let (u_lut, _, s_lut) = lut_accel.denoise_pair(&v, None, &p).unwrap();
        let config = AccelConfig {
            sqrt: SqrtKind::NonRestoring,
            ..AccelConfig::default()
        };
        let mut nr_accel = ChambolleAccel::new(config);
        let (u_nr, _, s_nr) = nr_accel.denoise_pair(&v, None, &p).unwrap();
        assert_ne!(u_lut.as_slice(), u_nr.as_slice(), "sqrt unit must matter");
        assert!(
            s_nr.cycles > s_lut.cycles,
            "20-stage sqrt lengthens every pass: {} vs {}",
            s_nr.cycles,
            s_lut.cycles
        );
    }

    #[test]
    fn single_pixel_frame_survives_the_full_stack() {
        let v = Grid::new(1, 1, 0.625f32);
        let mut accel = ChambolleAccel::new(AccelConfig::default());
        let (u, _, stats) = accel.denoise_pair(&v, None, &params(5)).unwrap();
        // A lone pixel has no gradient: u == v exactly (quantized).
        assert_eq!(u[(0, 0)], 0.625);
        assert!(stats.cycles > 0);
    }

    #[test]
    fn invalid_merge_factor_rejected() {
        assert!(AccelConfig::paper(0).is_err());
        assert!(AccelConfig::paper(44).is_err()); // 2*44+1 = 89 > 88
        assert!(AccelConfig::paper(43).is_ok());
    }

    #[test]
    fn telemetry_counters_track_a_frame() {
        use chambolle_telemetry::{names, Telemetry};
        let v = random_image(100, 90, 11);
        let p = params(5);
        let mut accel = ChambolleAccel::new(AccelConfig::paper(2).unwrap());
        let telemetry = Telemetry::null();
        accel.attach_telemetry(telemetry.clone());
        let (_, _, stats) = accel.denoise_pair(&v, None, &p).unwrap();
        let snap = telemetry.snapshot();
        assert_eq!(snap.counter(names::HWSIM_FRAMES), Some(1));
        assert_eq!(snap.counter(names::HWSIM_CYCLES), Some(stats.cycles));
        assert_eq!(
            snap.counter(names::HWSIM_WINDOW_LOADS),
            Some(stats.window_loads)
        );
        assert_eq!(
            snap.counter(names::HWSIM_ROUNDS),
            Some(u64::from(stats.rounds))
        );
        // Per-port counters must match the accelerator's own BRAM tallies.
        let bram = accel.bram_stats();
        assert_eq!(
            snap.counter(names::HWSIM_BRAM_PORT1_READS),
            Some(bram.port_reads[0])
        );
        assert_eq!(
            snap.counter(names::HWSIM_BRAM_PORT2_WRITES),
            Some(bram.port_writes[1])
        );
        assert_eq!(
            snap.counter(names::HWSIM_BRAM_PORT1_IDLE),
            Some(bram.port_idle_cycles(0))
        );
        // The LUT sqrt design looks up the table on every wavefront step.
        let lookups = snap.counter(names::HWSIM_SQRT_LOOKUPS).unwrap();
        assert_eq!(lookups, accel.sqrt_lookups());
        assert!(lookups > 0, "LUT sqrt must record lookups");
        // The span histogram recorded exactly one frame.
        let span_name = chambolle_telemetry::span::span_metric_name("hwsim.denoise_pair");
        let frames = snap
            .get(span_name.as_str())
            .and_then(|m| m.as_histogram())
            .map(|h| h.count());
        assert_eq!(frames, Some(1));
    }

    #[test]
    fn telemetry_attachment_does_not_change_the_output() {
        let v = random_image(60, 50, 12);
        let p = params(4);
        let mut plain = ChambolleAccel::new(AccelConfig::default());
        let (u_plain, _, s_plain) = plain.denoise_pair(&v, None, &p).unwrap();
        let mut instrumented = ChambolleAccel::new(AccelConfig::default());
        instrumented.attach_telemetry(chambolle_telemetry::Telemetry::null());
        let (u_inst, _, s_inst) = instrumented.denoise_pair(&v, None, &p).unwrap();
        assert_eq!(u_plain.as_slice(), u_inst.as_slice());
        assert_eq!(s_plain.cycles, s_inst.cycles);
    }

    #[test]
    fn recorder_attaches_to_the_full_accelerator() {
        // Satellite check: VCD recording now works through ChambolleAccel,
        // not just a bare PeArray.
        use crate::trace::{write_vcd, TraceRecorder};
        let recorder = TraceRecorder::shared();
        let mut accel = ChambolleAccel::new(AccelConfig::default());
        accel.attach_recorder(&recorder);
        let v = random_image(20, 15, 13);
        accel.denoise_pair(&v, None, &params(2)).unwrap();
        let rec = recorder.borrow();
        assert!(
            !rec.accesses().is_empty(),
            "full-accel run must record BRAM accesses"
        );
        let mut vcd = Vec::new();
        write_vcd(&mut vcd, &rec).unwrap();
        let vcd = String::from_utf8(vcd).unwrap();
        assert!(vcd.contains("$enddefinitions"), "VCD header present");
    }

    #[test]
    fn u_round_tiles_partition_with_leading_halo() {
        let tiles = u_round_tiles(200, 100, &ArrayConfig::paper());
        let mut covered = Grid::new(200, 100, 0u32);
        for t in &tiles {
            assert!(t.src_w <= 92 && t.src_h <= 88);
            assert!(t.out_x == 0 || t.out_x - t.src_x == 1);
            assert!(t.out_y == 0 || t.out_y - t.src_y == 1);
            for y in t.out_y..t.out_y + t.out_h {
                for x in t.out_x..t.out_x + t.out_w {
                    covered[(x, y)] += 1;
                }
            }
        }
        assert!(covered.as_slice().iter().all(|&c| c == 1));
    }
}
