//! FPGA resource model regenerating Table I.
//!
//! The block-RAM count is purely structural (4 arrays × 9 BRAMs). The
//! flip-flop, LUT and DSP costs of each block are *calibrated constants*:
//! per-unit budgets chosen to be architecturally plausible (squares on
//! DSP48E slices, ≈70 LUTs per square-root table as the paper states,
//! restoring dividers in fabric, wide address generation for 36 BRAMs) and
//! normalized so that the structural sum reproduces the paper's post-place-
//! and-route totals exactly. The value of the model is the *structure* —
//! how usage scales if PEs, arrays or windows are added — not the per-block
//! constants themselves.

use std::fmt;
use std::ops::Add;

use crate::accel::SqrtKind;

/// One resource vector (flip-flops, LUTs, BRAMs, DSP48E slices).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResourceUsage {
    /// Slice flip-flops.
    pub flipflops: u32,
    /// Slice LUTs.
    pub luts: u32,
    /// 36-kbit block RAMs.
    pub brams: u32,
    /// DSP48E slices.
    pub dsps: u32,
}

impl ResourceUsage {
    /// A zero vector.
    pub const ZERO: ResourceUsage = ResourceUsage {
        flipflops: 0,
        luts: 0,
        brams: 0,
        dsps: 0,
    };

    /// Scales every component (`n` identical instances).
    pub fn times(self, n: u32) -> ResourceUsage {
        ResourceUsage {
            flipflops: self.flipflops * n,
            luts: self.luts * n,
            brams: self.brams * n,
            dsps: self.dsps * n,
        }
    }

    /// Utilization percentages against a device, floored to the precision
    /// Table I uses (whole percent for FF/LUT/BRAM, one decimal for DSP).
    pub fn utilization(&self, device: &DeviceCapacity) -> Utilization {
        Utilization {
            flipflops_pct: (self.flipflops as f64 / device.flipflops as f64 * 100.0).floor(),
            luts_pct: (self.luts as f64 / device.luts as f64 * 100.0).floor(),
            brams_pct: (self.brams as f64 / device.brams as f64 * 100.0).floor(),
            dsps_pct: (self.dsps as f64 / device.dsps as f64 * 1000.0).floor() / 10.0,
        }
    }
}

impl Add for ResourceUsage {
    type Output = ResourceUsage;
    fn add(self, rhs: ResourceUsage) -> ResourceUsage {
        ResourceUsage {
            flipflops: self.flipflops + rhs.flipflops,
            luts: self.luts + rhs.luts,
            brams: self.brams + rhs.brams,
            dsps: self.dsps + rhs.dsps,
        }
    }
}

impl fmt::Display for ResourceUsage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} FF, {} LUT, {} BRAM, {} DSP",
            self.flipflops, self.luts, self.brams, self.dsps
        )
    }
}

/// Utilization percentages (Table I's third row).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Utilization {
    /// Flip-flop utilization, percent (floored).
    pub flipflops_pct: f64,
    /// LUT utilization, percent (floored).
    pub luts_pct: f64,
    /// BRAM utilization, percent (floored).
    pub brams_pct: f64,
    /// DSP utilization, percent (one decimal).
    pub dsps_pct: f64,
}

/// Device capacity (Table I's "Total" row for the XC5VLX110T).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceCapacity {
    /// Slice flip-flops available.
    pub flipflops: u32,
    /// Slice LUTs available.
    pub luts: u32,
    /// Block RAMs available.
    pub brams: u32,
    /// DSP48E slices available.
    pub dsps: u32,
}

impl DeviceCapacity {
    /// The Xilinx Virtex-5 XC5VLX110T as Table I reports it.
    pub const XC5VLX110T: DeviceCapacity = DeviceCapacity {
        flipflops: 69120,
        luts: 69120,
        brams: 128,
        dsps: 64,
    };
}

/// Structural description of a Chambolle-core instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResourceModel {
    /// PE arrays (2 sliding windows × 2 components = 4 in the paper).
    pub pe_arrays: u32,
    /// PE-Ts per array (7).
    pub pe_t_per_array: u32,
    /// PE-Vs per array (7).
    pub pe_v_per_array: u32,
    /// Data BRAMs per array (8).
    pub data_brams_per_array: u32,
    /// Term BRAMs per array (1).
    pub term_brams_per_array: u32,
    /// Square-root unit instantiated in each PE-V.
    pub sqrt: SqrtKind,
    /// Map the PE-V squaring multipliers onto fabric LUTs instead of
    /// DSP48Es — the paper's remark that "the number of required DSPs can
    /// be reduced by mapping part of the multiplications on the LUTs".
    pub lut_multipliers: bool,
    /// Loop-decomposition depth realized as cascaded PE stages: each row of
    /// the ladder carries `cascade_depth` successive (PE-T, PE-V) pairs, so
    /// one pass advances that many iterations (Fig. 1.c in hardware).
    pub cascade_depth: u32,
}

/// Per-block calibrated cost constants (see the module docs).
mod cost {
    use super::ResourceUsage;

    /// One PE-T: four 32-bit add/sub stages, the `v·(1/θ)` scaling and the
    /// `u` output path, plus its pipeline registers.
    pub const PE_T: ResourceUsage = ResourceUsage {
        flipflops: 160,
        luts: 180,
        brams: 0,
        dsps: 0,
    };
    /// One PE-V excluding its square-root unit: two squares on DSP48Es, two
    /// restoring dividers in fabric and the update adders, plus a deep
    /// pipeline register file.
    pub const PE_V_BASE: ResourceUsage = ResourceUsage {
        flipflops: 360,
        luts: 280 + 150,
        brams: 0,
        dsps: 2,
    };
    /// A 32-bit squaring multiplier built from fabric LUTs (replaces one
    /// DSP48E when `lut_multipliers` is set).
    pub const LUT_MULTIPLIER: ResourceUsage = ResourceUsage {
        flipflops: 60,
        luts: 350,
        brams: 0,
        dsps: 0,
    };
    /// The 256-entry sqrt LUT (≈70 LUTs, Section V-C; its output register is
    /// part of the PE-V pipeline above).
    pub const SQRT_LUT: ResourceUsage = ResourceUsage {
        flipflops: 0,
        luts: 70,
        brams: 0,
        dsps: 0,
    };
    /// An iterative non-restoring sqrt: 20 pipeline stages of a ~40-bit
    /// add/sub + mux datapath — roughly 22 LUTs and 26 FFs per stage.
    pub const SQRT_NON_RESTORING: ResourceUsage = ResourceUsage {
        flipflops: 520,
        luts: 440,
        brams: 0,
        dsps: 0,
    };
    /// Per-array overhead: the operand-reuse flip-flop network (Figure 5),
    /// the vertical rotator, BRAM address generation, and the shared
    /// `θ`-scaling multiplier for the u output.
    pub const ARRAY_OVERHEAD: ResourceUsage = ResourceUsage {
        flipflops: 500 + 400,
        luts: 450 + 320 + 1900,
        brams: 0,
        dsps: 1,
    };
    /// Top-level control unit, scheduling and external I/O, including two
    /// DSPs for frame-address arithmetic.
    pub const CONTROL: ResourceUsage = ResourceUsage {
        flipflops: 4983,
        luts: 3109,
        brams: 0,
        dsps: 2,
    };
}

impl ResourceModel {
    /// The paper's instance: 2 sliding windows × 2 components, 7+7 PEs per
    /// array, 8+1 BRAMs per array.
    pub fn paper() -> Self {
        ResourceModel {
            pe_arrays: 4,
            pe_t_per_array: 7,
            pe_v_per_array: 7,
            data_brams_per_array: 8,
            term_brams_per_array: 1,
            sqrt: SqrtKind::Lut,
            lut_multipliers: false,
            cascade_depth: 1,
        }
    }

    /// The paper's instance with `depth` cascaded PE stages per row (the
    /// loop-decomposition throughput multiplier).
    pub fn paper_with_cascade(depth: u32) -> Self {
        ResourceModel {
            cascade_depth: depth.max(1),
            ..ResourceModel::paper()
        }
    }

    /// The paper's instance with the PE-V multipliers in fabric instead of
    /// DSP48Es (Section VI's scaling remark).
    pub fn paper_with_lut_multipliers() -> Self {
        ResourceModel {
            lut_multipliers: true,
            ..ResourceModel::paper()
        }
    }

    /// The paper's instance with the iterative square root instead of the
    /// LUT — the alternative Section V-C rejects on speed grounds.
    pub fn paper_with_non_restoring_sqrt() -> Self {
        ResourceModel {
            sqrt: SqrtKind::NonRestoring,
            ..ResourceModel::paper()
        }
    }

    /// Total usage of the instance.
    pub fn usage(&self) -> ResourceUsage {
        self.breakdown()
            .into_iter()
            .fold(ResourceUsage::ZERO, |acc, (_, u)| acc + u)
    }

    /// Itemized usage per block kind.
    pub fn breakdown(&self) -> Vec<(&'static str, ResourceUsage)> {
        let pe_t_total = self.pe_arrays * self.pe_t_per_array * self.cascade_depth;
        let pe_v_total = self.pe_arrays * self.pe_v_per_array * self.cascade_depth;
        let bram_total = self.pe_arrays * (self.data_brams_per_array + self.term_brams_per_array);
        let sqrt_cost = match self.sqrt {
            SqrtKind::Lut => cost::SQRT_LUT,
            SqrtKind::NonRestoring => cost::SQRT_NON_RESTORING,
        };
        let mut pe_v = cost::PE_V_BASE;
        if self.lut_multipliers {
            // Two squaring DSPs per PE-V move into fabric.
            pe_v.dsps = 0;
            pe_v = pe_v + cost::LUT_MULTIPLIER.times(2);
        }
        vec![
            ("PE-T battery", cost::PE_T.times(pe_t_total)),
            ("PE-V battery", pe_v.times(pe_v_total)),
            ("square-root units", sqrt_cost.times(pe_v_total)),
            (
                "array reuse/rotator/addressing",
                cost::ARRAY_OVERHEAD.times(self.pe_arrays),
            ),
            (
                "block RAMs",
                ResourceUsage {
                    brams: bram_total,
                    ..ResourceUsage::ZERO
                },
            ),
            ("control unit + I/O", cost::CONTROL),
        ]
    }

    /// Total PE count (56 in the paper).
    pub fn pe_count(&self) -> u32 {
        self.pe_arrays * (self.pe_t_per_array + self.pe_v_per_array) * self.cascade_depth
    }
}

impl Default for ResourceModel {
    fn default() -> Self {
        ResourceModel::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_table_1_totals() {
        let usage = ResourceModel::paper().usage();
        assert_eq!(usage.flipflops, 23143);
        assert_eq!(usage.luts, 32829);
        assert_eq!(usage.brams, 36);
        assert_eq!(usage.dsps, 62);
    }

    #[test]
    fn reproduces_table_1_percentages() {
        let util = ResourceModel::paper()
            .usage()
            .utilization(&DeviceCapacity::XC5VLX110T);
        assert_eq!(util.flipflops_pct, 33.0);
        assert_eq!(util.luts_pct, 47.0);
        assert_eq!(util.brams_pct, 28.0);
        assert_eq!(util.dsps_pct, 96.8);
    }

    #[test]
    fn design_fits_the_device() {
        let usage = ResourceModel::paper().usage();
        let dev = DeviceCapacity::XC5VLX110T;
        assert!(usage.flipflops <= dev.flipflops);
        assert!(usage.luts <= dev.luts);
        assert!(usage.brams <= dev.brams);
        assert!(usage.dsps <= dev.dsps);
    }

    #[test]
    fn fifty_six_pes() {
        assert_eq!(ResourceModel::paper().pe_count(), 56);
    }

    #[test]
    fn dsps_are_the_binding_constraint() {
        // The paper notes DSP usage at 96.8% and suggests mapping
        // multiplications to LUTs if more are needed; a third sliding window
        // would not fit.
        let mut bigger = ResourceModel::paper();
        bigger.pe_arrays = 6; // 3 sliding windows
        let usage = bigger.usage();
        assert!(usage.dsps > DeviceCapacity::XC5VLX110T.dsps);
        assert!(usage.luts < DeviceCapacity::XC5VLX110T.luts);
    }

    #[test]
    fn lut_multipliers_free_the_dsps() {
        let base = ResourceModel::paper().usage();
        let lutmul = ResourceModel::paper_with_lut_multipliers().usage();
        assert_eq!(
            lutmul.dsps,
            base.dsps - 56,
            "2 DSPs per PE-V move to fabric"
        );
        assert!(lutmul.luts > base.luts);
        // The paper's scaling remark relieves the DSP constraint, but a
        // third sliding window still does not fit this device: the fabric
        // multipliers push the LUT count past the XC5VLX110T's capacity —
        // the binding constraint merely moves from DSPs to LUTs.
        let mut three_sw = ResourceModel::paper_with_lut_multipliers();
        three_sw.pe_arrays = 6;
        let usage = three_sw.usage();
        let dev = DeviceCapacity::XC5VLX110T;
        assert!(usage.dsps <= dev.dsps, "DSPs: {}", usage.dsps);
        assert!(usage.luts > dev.luts, "LUTs now bind: {}", usage.luts);
    }

    #[test]
    fn cascading_outgrows_the_device_immediately() {
        // The loop-decomposition throughput the paper's 99.1 fps implies
        // (about 3 iterations per pass) triples the PE fabric: under this
        // area model even depth 2 exceeds the XC5VLX110T's DSPs, and with
        // fabric multipliers it exceeds the LUTs instead.
        let dev = DeviceCapacity::XC5VLX110T;
        assert!(ResourceModel::paper_with_cascade(1).usage().dsps <= dev.dsps);
        let d2 = ResourceModel::paper_with_cascade(2).usage();
        assert!(d2.dsps > dev.dsps, "depth 2 DSPs: {}", d2.dsps);
        let mut d2_lut = ResourceModel::paper_with_cascade(2);
        d2_lut.lut_multipliers = true;
        let usage = d2_lut.usage();
        assert!(usage.dsps <= dev.dsps);
        assert!(usage.luts > dev.luts, "depth 2 fabric LUTs: {}", usage.luts);
    }

    #[test]
    fn breakdown_sums_to_total() {
        let model = ResourceModel::paper();
        let sum = model
            .breakdown()
            .into_iter()
            .fold(ResourceUsage::ZERO, |a, (_, u)| a + u);
        assert_eq!(sum, model.usage());
    }

    #[test]
    fn scaling_helpers() {
        let u = ResourceUsage {
            flipflops: 1,
            luts: 2,
            brams: 3,
            dsps: 4,
        }
        .times(3);
        assert_eq!(u.flipflops, 3);
        assert_eq!(u.dsps, 12);
        assert!(u.to_string().contains("12 DSP"));
    }

    #[test]
    fn non_restoring_sqrt_costs_more_fabric_and_no_speed() {
        let lut = ResourceModel::paper().usage();
        let nr = ResourceModel::paper_with_non_restoring_sqrt().usage();
        assert!(
            nr.luts > lut.luts + 28 * 300,
            "iterative sqrt is much larger"
        );
        assert!(nr.flipflops > lut.flipflops);
        assert_eq!(nr.dsps, lut.dsps);
        assert_eq!(nr.brams, lut.brams);
    }
}
