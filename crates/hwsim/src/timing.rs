//! Closed-form throughput model of the accelerator.
//!
//! Large frames at 200 iterations take billions of simulated PE evaluations;
//! Table II therefore uses this analytic model, which reproduces the cycle
//! counter of the event simulator *exactly* (asserted by the tests below and
//! by `tests/hwsim_consistency.rs`), so running the model is equivalent to
//! running the simulator.
//!
//! Cycle inventory per window pass (see [`crate::array`]):
//!
//! - region pass over `nr` rows of a `w`-wide window: `w + nr + 1` wavefront
//!   steps plus the fill (1 control + 1 BRAM + 1 rotator + the PE pipeline;
//!   18 cycles with the 1-cycle LUT square root);
//! - flush pass (last row): `w + 2` steps plus the fill;
//! - a window of height `h` has `⌈h / rows_per_region⌉` regions (7 rows per
//!   region in the paper's ladder).

use chambolle_core::TilePlan;

use crate::accel::AccelConfig;
use crate::array::pass_fill_cycles;

/// Analytic cycle/throughput model, exactly matching [`crate::ChambolleAccel`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThroughputModel {
    /// The accelerator configuration being modeled.
    pub config: AccelConfig,
}

impl ThroughputModel {
    /// Model for the given configuration.
    pub fn new(config: AccelConfig) -> Self {
        ThroughputModel { config }
    }

    /// Cycles for one array to run `iterations` iterations (plus the
    /// optional u-sweep) on a `w × h` window.
    pub fn window_cycles(&self, w: usize, h: usize, iterations: u32, emit_u: bool) -> u64 {
        assert!(w > 0 && h > 0, "window must be non-empty");
        let fill = pass_fill_cycles(self.config.sqrt.unit().latency_cycles());
        let regions = h.div_ceil(self.config.array.rows_per_region) as u64;
        // Σ over regions of (w + nr + 1 + FILL) = R(w + 1 + FILL) + h.
        let sweep = regions * (w as u64 + 1 + fill) + h as u64;
        let flush = w as u64 + 2 + fill;
        let mut cycles = iterations as u64 * (sweep + flush);
        if emit_u {
            cycles += sweep;
        }
        cycles
    }

    /// Frame latency in cycles for `iterations` Chambolle iterations on a
    /// `frame_w × frame_h` frame: replays the scheduler of
    /// [`crate::ChambolleAccel::denoise_pair`] (rounds of `merge_factor`
    /// iterations, windows round-robin over the sliding windows, final
    /// u-round) without executing the datapath.
    pub fn frame_cycles(&self, frame_w: usize, frame_h: usize, iterations: u32) -> u64 {
        assert!(frame_w > 0 && frame_h > 0, "frame must be non-empty");
        let n = self.config.sliding_windows.max(1);
        let mut per_window = vec![0u64; n];
        let mut next = 0usize;

        let mut remaining = iterations;
        while remaining > 0 {
            let k = remaining.min(self.config.merge_factor);
            let plan = TilePlan::new(frame_w, frame_h, self.config.tile_config(k));
            for tile in plan.tiles() {
                per_window[next] += self.window_cycles(tile.src_w, tile.src_h, k, false);
                next = (next + 1) % n;
            }
            remaining -= k;
        }
        for tile in crate::accel::u_round_tiles(frame_w, frame_h, &self.config.array) {
            per_window[next] += self.window_cycles(tile.src_w, tile.src_h, 0, true);
            next = (next + 1) % n;
        }
        per_window.into_iter().max().unwrap_or(0)
    }

    /// Frame latency in seconds at the configured clock.
    pub fn frame_seconds(&self, frame_w: usize, frame_h: usize, iterations: u32) -> f64 {
        self.frame_cycles(frame_w, frame_h, iterations) as f64 / (self.config.clock_mhz * 1e6)
    }

    /// Frames per second — the Table II metric.
    pub fn fps(&self, frame_w: usize, frame_h: usize, iterations: u32) -> f64 {
        1.0 / self.frame_seconds(frame_w, frame_h, iterations)
    }

    /// Publishes the model's frame latency and throughput for this shape as
    /// telemetry gauges ([`names::MODEL_FRAME_CYCLES`], [`names::MODEL_FPS`]).
    ///
    /// [`names::MODEL_FRAME_CYCLES`]: chambolle_telemetry::names::MODEL_FRAME_CYCLES
    /// [`names::MODEL_FPS`]: chambolle_telemetry::names::MODEL_FPS
    pub fn record_telemetry(
        &self,
        telemetry: &chambolle_telemetry::Telemetry,
        frame_w: usize,
        frame_h: usize,
        iterations: u32,
    ) {
        if !telemetry.is_enabled() {
            return;
        }
        use chambolle_telemetry::names;
        let cycles = self.frame_cycles(frame_w, frame_h, iterations);
        telemetry.gauge_set(names::MODEL_FRAME_CYCLES, cycles as f64);
        telemetry.gauge_set(names::MODEL_FPS, self.fps(frame_w, frame_h, iterations));
    }

    /// Frame cycles including off-chip transfer, which the paper's numbers
    /// exclude ("we assumed that the images to be processed are pre-loaded
    /// in the device memory"). Each window load moves its source rectangle
    /// in and its profitable rectangle (plus the final `u`) out at
    /// `words_per_cycle` 32-bit words per cycle; transfers are serialized
    /// with compute (worst case — no double buffering).
    ///
    /// # Panics
    ///
    /// Panics if `words_per_cycle <= 0`.
    pub fn frame_cycles_with_transfer(
        &self,
        frame_w: usize,
        frame_h: usize,
        iterations: u32,
        words_per_cycle: f64,
    ) -> u64 {
        assert!(words_per_cycle > 0.0, "transfer rate must be positive");
        let compute = self.frame_cycles(frame_w, frame_h, iterations);
        let mut words_moved = 0u64;
        let mut remaining = iterations;
        while remaining > 0 {
            let k = remaining.min(self.config.merge_factor);
            let plan = TilePlan::new(frame_w, frame_h, self.config.tile_config(k));
            for tile in plan.tiles() {
                // In: source rectangle; out: updated profitable p.
                words_moved += (tile.src_w * tile.src_h + tile.out_w * tile.out_h) as u64;
            }
            remaining -= k;
        }
        for tile in crate::accel::u_round_tiles(frame_w, frame_h, &self.config.array) {
            words_moved += (tile.src_w * tile.src_h + tile.out_w * tile.out_h) as u64;
        }
        // Transfers split across the sliding windows like the compute does.
        let per_window = words_moved as f64 / self.config.sliding_windows.max(1) as f64;
        compute + (per_window / words_per_cycle).ceil() as u64
    }

    /// Sustained frame cycles with double-buffered transfers: compute and
    /// DMA overlap, so a steady video stream is bound by the slower of the
    /// two instead of their sum.
    ///
    /// # Panics
    ///
    /// Panics if `words_per_cycle <= 0`.
    pub fn sustained_frame_cycles_with_transfer(
        &self,
        frame_w: usize,
        frame_h: usize,
        iterations: u32,
        words_per_cycle: f64,
    ) -> u64 {
        assert!(words_per_cycle > 0.0, "transfer rate must be positive");
        let compute = self.frame_cycles(frame_w, frame_h, iterations);
        let serialized =
            self.frame_cycles_with_transfer(frame_w, frame_h, iterations, words_per_cycle);
        let transfer = serialized - compute;
        compute.max(transfer)
    }

    /// Frames per second when each hardware pass advances
    /// `iterations_per_pass` logical iterations via the loop-decomposition
    /// formulas of Figure 1.c (computing iteration `n + x` directly from
    /// iteration `n`).
    ///
    /// The event simulator implements `iterations_per_pass = 1`; the paper's
    /// reported 99.1 fps at 512×512/200 iterations implies the fabricated
    /// design evaluates a deeper formula per pass (≈3 iterations). This is
    /// the calibration knob discussed in `DESIGN.md` deviation 2 and
    /// `EXPERIMENTS.md`.
    ///
    /// # Panics
    ///
    /// Panics if `iterations_per_pass == 0`.
    pub fn fps_with_loop_decomposition(
        &self,
        frame_w: usize,
        frame_h: usize,
        iterations: u32,
        iterations_per_pass: u32,
    ) -> f64 {
        assert!(
            iterations_per_pass > 0,
            "iterations_per_pass must be positive"
        );
        let passes_needed = iterations.div_ceil(iterations_per_pass);
        self.fps(frame_w, frame_h, passes_needed.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accel::ChambolleAccel;
    use crate::array::{ArrayConfig, PeArray};
    use crate::params::HwParams;
    use crate::reference::quantize_input;
    use chambolle_core::ChambolleParams;
    use chambolle_imaging::Grid;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_image(w: usize, h: usize, seed: u64) -> Grid<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        Grid::from_fn(w, h, |_, _| rng.gen_range(0.0f32..1.0))
    }

    #[test]
    fn window_cycles_match_simulator() {
        let model = ThroughputModel::new(AccelConfig::default());
        for &(w, h, iters) in &[
            (12usize, 10usize, 3u32),
            (92, 88, 2),
            (30, 7, 1),
            (5, 25, 4),
        ] {
            let mut array = PeArray::new(ArrayConfig::paper());
            let run = array.process_window(
                &quantize_input(&random_image(w, h, 1)),
                &HwParams::standard(iters),
            );
            assert_eq!(
                model.window_cycles(w, h, iters, true),
                run.stats.cycles,
                "window {w}x{h} iters {iters}"
            );
        }
    }

    #[test]
    fn frame_cycles_match_simulator() {
        for &(w, h, iters, k) in &[
            (150usize, 120usize, 6u32, 2u32),
            (100, 90, 5, 3),
            (60, 40, 4, 2),
        ] {
            let config = AccelConfig::paper(k).unwrap();
            let model = ThroughputModel::new(config);
            let mut accel = ChambolleAccel::new(config);
            let v = random_image(w, h, 9);
            let p = ChambolleParams::paper(iters);
            let (_, _, stats) = accel.denoise_pair(&v, None, &p).unwrap();
            assert_eq!(
                model.frame_cycles(w, h, iters),
                stats.cycles,
                "frame {w}x{h} iters {iters} K {k}"
            );
        }
    }

    #[test]
    fn fps_scales_inversely_with_iterations() {
        let model = ThroughputModel::new(AccelConfig::default());
        let f50 = model.fps(512, 512, 50);
        let f200 = model.fps(512, 512, 200);
        let ratio = f50 / f200;
        assert!(
            (3.2..=4.2).contains(&ratio),
            "iteration scaling ratio {ratio}"
        );
    }

    #[test]
    fn fps_scales_roughly_with_pixels() {
        let model = ThroughputModel::new(AccelConfig::default());
        let f_small = model.fps(512, 512, 200);
        let f_large = model.fps(1024, 768, 200);
        let ratio = f_small / f_large;
        let pixels = (1024.0 * 768.0) / (512.0 * 512.0);
        assert!(
            (ratio / pixels - 1.0).abs() < 0.2,
            "pixel scaling ratio {ratio} vs {pixels}"
        );
    }

    #[test]
    fn loop_decomposition_knob_multiplies_throughput() {
        let model = ThroughputModel::new(AccelConfig::default());
        let f1 = model.fps_with_loop_decomposition(512, 512, 200, 1);
        let f3 = model.fps_with_loop_decomposition(512, 512, 200, 3);
        assert!(
            (f3 / f1 - 3.0).abs() < 0.15,
            "m=3 should triple fps, got {}",
            f3 / f1
        );
        assert_eq!(f1, model.fps(512, 512, 200));
    }

    #[test]
    fn timing_model_tracks_sqrt_latency() {
        use crate::accel::SqrtKind;
        let nr_config = AccelConfig {
            sqrt: SqrtKind::NonRestoring,
            ..AccelConfig::default()
        };
        // Model vs simulator with the iterative sqrt.
        let model = ThroughputModel::new(nr_config);
        let mut accel = ChambolleAccel::new(nr_config);
        let v = random_image(100, 60, 3);
        let p = ChambolleParams::paper(4);
        let (_, _, stats) = accel.denoise_pair(&v, None, &p).unwrap();
        assert_eq!(model.frame_cycles(100, 60, 4), stats.cycles);
        // And it must be slower than the LUT design.
        let lut_model = ThroughputModel::new(AccelConfig::default());
        assert!(model.frame_cycles(100, 60, 4) > lut_model.frame_cycles(100, 60, 4));
    }

    #[test]
    fn transfer_model_reduces_fps_and_scales_with_bandwidth() {
        let model = ThroughputModel::new(AccelConfig::default());
        let base = model.frame_cycles(512, 512, 200);
        let slow = model.frame_cycles_with_transfer(512, 512, 200, 1.0);
        let fast = model.frame_cycles_with_transfer(512, 512, 200, 8.0);
        assert!(slow > base);
        assert!(fast > base);
        assert!(fast < slow);
        // Finding: at K = 2 every round reloads the frame, so even 8 words/
        // cycle costs >30% — the paper's pre-loaded-memory assumption is
        // load-bearing at small K...
        let overhead = |k: u32| {
            let m = ThroughputModel::new(AccelConfig::paper(k).unwrap());
            let base = m.frame_cycles(512, 512, 200);
            let with = m.frame_cycles_with_transfer(512, 512, 200, 8.0);
            (with - base) as f64 / base as f64
        };
        assert!(overhead(2) > 0.3, "K=2 transfer overhead {}", overhead(2));
        // ...and merging more iterations per load amortizes the traffic.
        assert!(
            overhead(16) < 0.5 * overhead(2),
            "K=16 should amortize transfers: {} vs {}",
            overhead(16),
            overhead(2)
        );
    }

    #[test]
    fn ladder_depth_flows_through_the_model() {
        use crate::array::ArrayConfig;
        let shallow_cfg = AccelConfig {
            array: ArrayConfig::paper_with_ladder(3),
            ..AccelConfig::default()
        };
        let shallow = ThroughputModel::new(shallow_cfg);
        let deep = ThroughputModel::new(AccelConfig::default());
        assert!(shallow.frame_cycles(256, 256, 50) > deep.frame_cycles(256, 256, 50));
        // And the model still matches the simulator at depth 3.
        let mut accel = ChambolleAccel::new(shallow_cfg);
        let v = random_image(100, 60, 21);
        let p = ChambolleParams::paper(3);
        let (_, _, stats) = accel.denoise_pair(&v, None, &p).unwrap();
        assert_eq!(shallow.frame_cycles(100, 60, 3), stats.cycles);
    }

    #[test]
    fn double_buffering_hides_transfer_up_to_the_bandwidth_bound() {
        let model = ThroughputModel::new(AccelConfig::default());
        let compute = model.frame_cycles(512, 512, 200);
        let serialized = model.frame_cycles_with_transfer(512, 512, 200, 8.0);
        let sustained = model.sustained_frame_cycles_with_transfer(512, 512, 200, 8.0);
        assert!(sustained <= serialized);
        assert!(sustained >= compute);
        // At 8 words/cycle the compute dominates: double buffering recovers
        // the full pre-loaded frame rate.
        assert_eq!(sustained, compute);
        // At a crawling 0.05 words/cycle the DMA dominates instead.
        let slow = model.sustained_frame_cycles_with_transfer(512, 512, 200, 0.05);
        assert!(slow > compute);
    }

    #[test]
    fn record_telemetry_publishes_model_gauges() {
        use chambolle_telemetry::{names, Telemetry};
        let model = ThroughputModel::new(AccelConfig::default());
        let telemetry = Telemetry::null();
        model.record_telemetry(&telemetry, 512, 512, 200);
        let snap = telemetry.snapshot();
        assert_eq!(
            snap.gauge(names::MODEL_FRAME_CYCLES),
            Some(model.frame_cycles(512, 512, 200) as f64)
        );
        let fps = snap.gauge(names::MODEL_FPS).expect("fps gauge");
        assert!((fps - model.fps(512, 512, 200)).abs() < 1e-12);
    }

    #[test]
    fn real_time_at_high_resolution() {
        // The headline claim: real-time frame rates even at 1024x768. Even
        // the un-calibrated (m = 1) model must clear real time at K = 2.
        let model = ThroughputModel::new(AccelConfig::default());
        assert!(model.fps(1024, 768, 200) > 10.0);
        assert!(model.fps(512, 512, 200) > 25.0);
    }
}
