//! Cycle-level simulator of the DATE'11 FPGA Chambolle accelerator
//! (Akin et al., *A High-Performance Parallel Implementation of the
//! Chambolle Algorithm*).
//!
//! The paper's evaluation platform is a Xilinx Virtex-5 running a Verilog
//! implementation of two sliding windows × two ladder PE arrays. This crate
//! substitutes that hardware with a bit- and cycle-faithful simulator:
//!
//! - [`datapath`] — the PE-T and PE-V fixed-point datapaths (Figs. 6–7);
//! - [`bram`] — dual-port synchronous block RAM with port-discipline checks;
//! - [`array`](mod@array) — the systolic ladder of 7 PE-Ts + 7 PE-Vs with the
//!   operand-reuse network, BRAM interleave and BRAM-Term bridge (Figs. 4–5);
//! - [`accel`] — the two-sliding-window top level and frame scheduler
//!   (Fig. 2), usable as a TV-L1 backend via [`AccelDenoiser`];
//! - [`reference`](mod@reference) — a structure-free fixed-point model the simulator is
//!   tested bit-exact against;
//! - [`fault`] — deterministic fault injection (BRAM upsets, sqrt-LUT
//!   corruption, datapath glitches) and the guarded frame scheduler
//!   ([`ChambolleAccel::denoise_pair_guarded`]) that detects and recovers
//!   from them;
//! - [`timing`] — the closed-form cycle model behind Table II;
//! - [`resources`] — the area model behind Table I.
//!
//! # Examples
//!
//! Denoise a small frame on the simulated accelerator and read the frame
//! rate the hardware would achieve at 221 MHz:
//!
//! ```
//! use chambolle_core::ChambolleParams;
//! use chambolle_hwsim::{AccelConfig, ChambolleAccel};
//! use chambolle_imaging::Grid;
//!
//! let v = Grid::from_fn(100, 90, |x, y| ((x + y) % 7) as f32 / 7.0);
//! let mut accel = ChambolleAccel::new(AccelConfig::default());
//! let params = ChambolleParams::with_iterations(10);
//! let (u, _, stats) = accel.denoise_pair(&v, None, &params)?;
//! assert_eq!(u.dims(), (100, 90));
//! assert!(stats.fps() > 0.0);
//! # Ok::<(), chambolle_hwsim::HwParamsError>(())
//! ```

#![warn(missing_docs)]

pub mod accel;
pub mod array;
pub mod bram;
pub mod control;
pub mod datapath;
pub mod fault;
mod params;
pub mod reference;
pub mod resources;
pub mod thresholding;
pub mod timing;
pub mod trace;

pub use accel::{AccelConfig, AccelDenoiser, ChambolleAccel, FrameStats, SlidingWindow, SqrtKind};
pub use array::{ArrayConfig, ArrayStats, PeArray, WindowRun};
pub use control::{Command, ControlUnit, TimedCommand};
pub use fault::{
    check_dual_feasibility, region_checksum, state_checksum, AccelGuardConfig, FaultConfig,
    FaultEvent, FaultInjector, FaultKind, GuardedFrame, InvariantViolation,
};
pub use params::{HwParams, HwParamsError};
pub use reference::{
    dequantize, fixed_chambolle_reference, fixed_chambolle_reference_with, quantize_input,
    FixedSolution,
};
pub use resources::{DeviceCapacity, ResourceModel, ResourceUsage, Utilization};
pub use thresholding::{threshold_step_fixed, FixedThresholdUnit};
pub use timing::ThroughputModel;
