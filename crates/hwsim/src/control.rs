//! The control unit (Figures 2 and 3): address and enable generation for
//! one PE array, as an explicit schedule generator.
//!
//! The paper's control unit produces "read addresses for BRAMs, write
//! addresses for px and py, \[and\] read and write addresses for BRAM-Term"
//! every cycle. [`ControlUnit::window_schedule`] emits exactly that command
//! stream for a whole window run. It is written *independently* of the
//! datapath simulator in [`crate::array`] — the two encode the same schedule
//! twice, and `tests::schedule_matches_simulated_trace` proves them
//! identical command-for-command against the recorded BRAM trace. That makes
//! the schedule auditable as a specification, not just as emergent simulator
//! behaviour.

use crate::array::{ArrayConfig, DATA_BRAMS};

/// One command the control unit issues to the memories of an array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Command {
    /// Read `addr` of data BRAM `bank` (port 1).
    DataRead {
        /// BRAM index (`row mod 8`).
        bank: usize,
        /// Word address.
        addr: usize,
    },
    /// Write `addr` of data BRAM `bank` (port 2; the data comes from a
    /// PE-V).
    DataWrite {
        /// BRAM index (`row mod 8`).
        bank: usize,
        /// Word address.
        addr: usize,
    },
    /// Read `addr` of the BRAM-Term (port 1).
    TermRead {
        /// Word address (including the ping-pong offset).
        addr: usize,
    },
    /// Write `addr` of the BRAM-Term (port 2; the data comes from the last
    /// active PE-T).
    TermWrite {
        /// Word address (including the ping-pong offset).
        addr: usize,
    },
}

/// A timestamped command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct TimedCommand {
    /// Global wavefront step (BRAM clock) the command is issued in.
    pub step: u64,
    /// The command.
    pub command: Command,
}

/// Address/enable generator for one array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ControlUnit {
    config: ArrayConfig,
}

impl ControlUnit {
    /// Control unit for the given array geometry.
    pub fn new(config: ArrayConfig) -> Self {
        ControlUnit { config }
    }

    fn addr(&self, row: usize, col: usize) -> usize {
        (row / DATA_BRAMS) * self.config.stride + col
    }

    /// The full command stream for processing a `w × h` window for
    /// `iterations` Chambolle iterations (plus the u-sweep if `emit_u`).
    ///
    /// # Panics
    ///
    /// Panics if the window is empty or exceeds the configured geometry.
    pub fn window_schedule(
        &self,
        w: usize,
        h: usize,
        iterations: u32,
        emit_u: bool,
    ) -> Vec<TimedCommand> {
        assert!(w > 0 && h > 0, "window must be non-empty");
        assert!(
            w <= self.config.stride && h <= self.config.max_rows,
            "window {w}x{h} exceeds geometry"
        );
        let ladder = self.config.rows_per_region;
        let regions = h.div_ceil(ladder);
        let mut out = Vec::new();
        let mut step = 0u64;

        for _ in 0..iterations {
            for r in 0..regions {
                let r0 = r * ladder;
                let nr = ladder.min(h - r0);
                self.region_pass(&mut out, &mut step, r0, nr, w, r % 2, true);
            }
            self.flush_pass(&mut out, &mut step, w, h, (regions + 1) % 2);
        }
        if emit_u {
            for r in 0..regions {
                let r0 = r * ladder;
                let nr = ladder.min(h - r0);
                self.region_pass(&mut out, &mut step, r0, nr, w, r % 2, false);
            }
        }
        out
    }

    #[allow(clippy::too_many_arguments)]
    fn region_pass(
        &self,
        out: &mut Vec<TimedCommand>,
        step: &mut u64,
        r0: usize,
        nr: usize,
        w: usize,
        parity: usize,
        pe_v_active: bool,
    ) {
        let stride = self.config.stride;
        let has_aux = r0 > 0;
        let total_steps = w + nr + 1;
        for s in 0..total_steps {
            let t = *step + s as u64;
            let mut push = |command| out.push(TimedCommand { step: t, command });

            // Port-1 reads issued this step (consumed next step).
            for i in 0..nr {
                let col = s as i64 - i as i64;
                if (0..w as i64).contains(&col) {
                    push(Command::DataRead {
                        bank: (r0 + i) % DATA_BRAMS,
                        addr: self.addr(r0 + i, col as usize),
                    });
                }
            }
            if has_aux {
                let col = s as i64;
                if (0..w as i64).contains(&col) {
                    push(Command::DataRead {
                        bank: (r0 - 1) % DATA_BRAMS,
                        addr: self.addr(r0 - 1, col as usize),
                    });
                }
            }
            if pe_v_active && has_aux && s < w {
                push(Command::TermRead {
                    addr: (1 - parity) * stride + s,
                });
            }

            if pe_v_active {
                // PE-V_i (i >= 1) write-backs of rows r0..r0+nr-2.
                for i in 1..nr {
                    let col = s as i64 - 1 - i as i64;
                    if (0..w as i64).contains(&col) {
                        push(Command::DataWrite {
                            bank: (r0 + i - 1) % DATA_BRAMS,
                            addr: self.addr(r0 + i - 1, col as usize),
                        });
                    }
                }
                // PE-V_0 write-back of row r0-1.
                if has_aux {
                    let col = s as i64 - 2;
                    if (0..w as i64).contains(&col) {
                        push(Command::DataWrite {
                            bank: (r0 - 1) % DATA_BRAMS,
                            addr: self.addr(r0 - 1, col as usize),
                        });
                    }
                }
                // Last active PE-T bridges its Term row to the next region.
                let col = s as i64 - 1 - (nr as i64 - 1);
                if (0..w as i64).contains(&col) {
                    push(Command::TermWrite {
                        addr: parity * stride + col as usize,
                    });
                }
            }
        }
        *step += total_steps as u64;
    }

    fn flush_pass(
        &self,
        out: &mut Vec<TimedCommand>,
        step: &mut u64,
        w: usize,
        h: usize,
        parity: usize,
    ) {
        let stride = self.config.stride;
        let row = h - 1;
        let total_steps = w + 2;
        for s in 0..total_steps {
            let t = *step + s as u64;
            let mut push = |command| out.push(TimedCommand { step: t, command });
            if s < w {
                push(Command::DataRead {
                    bank: row % DATA_BRAMS,
                    addr: self.addr(row, s),
                });
                push(Command::TermRead {
                    addr: parity * stride + s,
                });
            }
            if s >= 2 && s - 2 < w {
                push(Command::DataWrite {
                    bank: row % DATA_BRAMS,
                    addr: self.addr(row, s - 2),
                });
            }
        }
        *step += total_steps as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::PeArray;
    use crate::params::HwParams;
    use crate::reference::quantize_input;
    use crate::trace::{AccessKind, TraceRecorder};
    use chambolle_imaging::Grid;

    /// Converts a recorded trace into (step, command) pairs.
    fn trace_commands(trace: &TraceRecorder) -> Vec<TimedCommand> {
        trace
            .accesses()
            .iter()
            .map(|a| {
                let command = if a.bram == "term" {
                    match a.kind {
                        AccessKind::Read => Command::TermRead { addr: a.addr },
                        AccessKind::Write => Command::TermWrite { addr: a.addr },
                    }
                } else {
                    let bank: usize = a
                        .bram
                        .strip_prefix("data")
                        .expect("data bank")
                        .parse()
                        .expect("bank index");
                    match a.kind {
                        AccessKind::Read => Command::DataRead { bank, addr: a.addr },
                        AccessKind::Write => Command::DataWrite { bank, addr: a.addr },
                    }
                };
                TimedCommand {
                    step: a.cycle,
                    command,
                }
            })
            .collect()
    }

    fn check(w: usize, h: usize, iterations: u32) {
        let mut array = PeArray::new(ArrayConfig::paper());
        let recorder = TraceRecorder::shared();
        array.attach_recorder(&recorder);
        let v = Grid::from_fn(w, h, |x, y| ((x + 2 * y) % 9) as f32 / 9.0);
        array.process_window(&quantize_input(&v), &HwParams::standard(iterations));

        let mut simulated = trace_commands(&recorder.borrow());
        let mut specified =
            ControlUnit::new(ArrayConfig::paper()).window_schedule(w, h, iterations, true);
        simulated.sort();
        specified.sort();
        assert_eq!(
            specified.len(),
            simulated.len(),
            "command counts differ for {w}x{h}x{iterations}"
        );
        assert_eq!(
            specified, simulated,
            "schedules differ for {w}x{h}x{iterations}"
        );
    }

    #[test]
    fn schedule_matches_simulated_trace() {
        check(10, 9, 2);
        check(24, 20, 1);
        check(5, 7, 3);
        check(13, 25, 2);
    }

    #[test]
    fn schedule_matches_on_paper_window() {
        check(92, 88, 1);
    }

    #[test]
    fn schedule_matches_degenerate_shapes() {
        for &(w, h) in &[(1usize, 1usize), (4, 1), (1, 9), (8, 8)] {
            check(w, h, 2);
        }
    }

    #[test]
    fn one_term_access_per_kind_per_step() {
        // The dual-port law at the specification level: the BRAM-Term never
        // sees two reads or two writes in one step.
        let cmds = ControlUnit::new(ArrayConfig::paper()).window_schedule(30, 22, 2, true);
        let mut seen = std::collections::HashSet::new();
        for c in &cmds {
            let key = match c.command {
                Command::TermRead { .. } => Some((c.step, 0u8)),
                Command::TermWrite { .. } => Some((c.step, 1)),
                _ => None,
            };
            if let Some(key) = key {
                assert!(seen.insert(key), "duplicate Term access at step {}", c.step);
            }
        }
    }

    #[test]
    #[should_panic(expected = "exceeds geometry")]
    fn oversized_window_rejected() {
        ControlUnit::new(ArrayConfig::paper()).window_schedule(93, 10, 1, true);
    }
}
