//! Hardware parameter set: the `θ`, `Niterations` and `dt` control inputs of
//! the accelerator (Figure 2), held in the exact fixed-point encoding the
//! datapath consumes.

use std::fmt;

use chambolle_core::ChambolleParams;
use chambolle_fixed::WordFixed;

/// Chambolle parameters as the hardware sees them: Q-format constants for
/// `θ`, `1/θ` and `τ/θ`, plus the iteration count.
///
/// # Examples
///
/// ```
/// use chambolle_core::ChambolleParams;
/// use chambolle_hwsim::HwParams;
///
/// let hw = HwParams::try_from(ChambolleParams::with_iterations(100))?;
/// assert_eq!(hw.iterations, 100);
/// # Ok::<(), chambolle_hwsim::HwParamsError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HwParams {
    /// θ in Q-format (the `θ` input pin bundle).
    pub theta: WordFixed,
    /// `1/θ` in Q-format (precomputed; the hardware multiplies rather than
    /// divides).
    pub inv_theta: WordFixed,
    /// `τ/θ` in Q-format (derived from the `dt` input).
    pub step_ratio: WordFixed,
    /// `Niterations` control input.
    pub iterations: u32,
}

impl HwParams {
    /// The standard configuration: θ = 1/4, τ/θ = 1/4, and the given
    /// iteration count (the values used throughout the evaluation).
    pub fn standard(iterations: u32) -> Self {
        HwParams {
            theta: WordFixed::from_f32(0.25),
            inv_theta: WordFixed::from_f32(4.0),
            step_ratio: WordFixed::from_f32(0.25),
            iterations,
        }
    }

    /// The equivalent floating-point parameters (for running the software
    /// solver side by side).
    ///
    /// # Panics
    ///
    /// Panics if the stored constants violate the software validation rules;
    /// this cannot happen for values built via `try_from`/`standard`.
    pub fn to_chambolle_params(self) -> ChambolleParams {
        let theta = self.theta.to_f32();
        let tau = self.step_ratio.to_f32() * theta;
        ChambolleParams::new(theta, tau, self.iterations)
            .expect("hardware parameters are validated at construction")
    }
}

impl TryFrom<ChambolleParams> for HwParams {
    type Error = HwParamsError;

    /// Encodes solver parameters for the hardware.
    ///
    /// # Errors
    ///
    /// Returns [`HwParamsError`] if `θ`, `1/θ` or `τ/θ` is not exactly
    /// representable in the Q-format datapath — the hardware has no rounding
    /// logic on its control inputs, so inexact constants would silently
    /// change the algorithm.
    fn try_from(p: ChambolleParams) -> Result<Self, HwParamsError> {
        let exact = |v: f32, what: &'static str| -> Result<WordFixed, HwParamsError> {
            let enc = WordFixed::from_f32(v);
            if enc.to_f32() != v {
                return Err(HwParamsError { what, value: v });
            }
            Ok(enc)
        };
        let theta = exact(p.theta, "theta")?;
        let inv_theta = exact(1.0 / p.theta, "1/theta")?;
        let step_ratio = exact(p.tau / p.theta, "tau/theta")?;
        Ok(HwParams {
            theta,
            inv_theta,
            step_ratio,
            iterations: p.iterations,
        })
    }
}

/// Error: a parameter is not exactly representable in the hardware Q-format.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HwParamsError {
    what: &'static str,
    value: f32,
}

impl fmt::Display for HwParamsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} = {} is not exactly representable in the Q-format datapath",
            self.what, self.value
        )
    }
}

impl std::error::Error for HwParamsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_roundtrips_to_software_params() {
        let hw = HwParams::standard(200);
        let sw = hw.to_chambolle_params();
        assert_eq!(sw.theta, 0.25);
        assert_eq!(sw.iterations, 200);
        assert!((sw.step_ratio() - 0.25).abs() < 1e-6);
    }

    #[test]
    fn exact_params_accepted() {
        let p = ChambolleParams::new(0.5, 0.125, 10).unwrap();
        let hw = HwParams::try_from(p).unwrap();
        assert_eq!(hw.inv_theta.to_f32(), 2.0);
        assert_eq!(hw.step_ratio.to_f32(), 0.25);
    }

    #[test]
    fn inexact_params_rejected() {
        // theta = 0.3: neither 0.3 nor 1/0.3 is a multiple of 2^-8.
        let p = ChambolleParams::new(0.3, 0.05, 10).unwrap();
        let err = HwParams::try_from(p).unwrap_err();
        assert!(err.to_string().contains("not exactly representable"));
    }
}
