//! A shared raw view of a mutable slice for provably disjoint parallel
//! writes.

use std::marker::PhantomData;

/// A `Sync` raw view of a `&mut [T]` that lets pool workers carve out
/// *disjoint* sub-slices concurrently.
///
/// Safe Rust cannot hand several threads mutable references into one slice
/// unless the split structure is known up front (`split_at_mut` chains). The
/// workspace's parallel kernels write regions whose shape is decided at run
/// time — interleaved row windows, profitable tile rectangles — so this type
/// erases the borrow and re-asserts it per region, with the disjointness
/// obligation moved into one documented `unsafe` method.
///
/// The lifetime parameter pins the view to the original borrow: the view
/// cannot outlive the slice it was built from, and the slice stays mutably
/// borrowed for as long as the view exists.
///
/// # Examples
///
/// ```
/// use chambolle_par::UnsafeSharedSlice;
///
/// let mut data = vec![0u32; 8];
/// let view = UnsafeSharedSlice::new(&mut data);
/// // SAFETY: the two regions [0, 4) and [4, 8) are disjoint.
/// let (a, b) = unsafe { (view.slice_mut(0, 4), view.slice_mut(4, 4)) };
/// a[0] = 1;
/// b[3] = 2;
/// assert_eq!(data, [1, 0, 0, 0, 0, 0, 0, 2]);
/// ```
pub struct UnsafeSharedSlice<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: the view is only a pointer plus a length; sending or sharing it is
// harmless in itself. All mutation goes through `slice_mut`, whose caller
// contract (disjoint regions) is what actually prevents data races, exactly
// as with `split_at_mut`-style splitting.
unsafe impl<T: Send> Send for UnsafeSharedSlice<'_, T> {}
unsafe impl<T: Send> Sync for UnsafeSharedSlice<'_, T> {}

impl<'a, T> UnsafeSharedSlice<'a, T> {
    /// Wraps a mutable slice.
    pub fn new(slice: &'a mut [T]) -> Self {
        UnsafeSharedSlice {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: PhantomData,
        }
    }

    /// Length of the underlying slice.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the underlying slice is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reborrows the region `[start, start + len)` mutably.
    ///
    /// # Panics
    ///
    /// Panics if the region exceeds the slice bounds.
    ///
    /// # Safety
    ///
    /// Callers must guarantee that no two *live* borrows produced by this
    /// method overlap — across threads or within one. The pool's partition
    /// primitives uphold this by handing every region index to exactly one
    /// task.
    pub unsafe fn slice_mut(&self, start: usize, len: usize) -> &'a mut [T] {
        assert!(
            start.checked_add(len).is_some_and(|end| end <= self.len),
            "region {start}+{len} out of bounds for slice of length {}",
            self.len
        );
        std::slice::from_raw_parts_mut(self.ptr.add(start), len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disjoint_regions_write_independently() {
        let mut data = vec![0u8; 10];
        let view = UnsafeSharedSlice::new(&mut data);
        assert_eq!(view.len(), 10);
        assert!(!view.is_empty());
        // SAFETY: regions are disjoint.
        unsafe {
            view.slice_mut(0, 5).fill(1);
            view.slice_mut(5, 5).fill(2);
        }
        assert_eq!(data, [1, 1, 1, 1, 1, 2, 2, 2, 2, 2]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_region_panics() {
        let mut data = vec![0u8; 4];
        let view = UnsafeSharedSlice::new(&mut data);
        // SAFETY: panics before creating the slice.
        let _ = unsafe { view.slice_mut(2, 3) };
    }

    #[test]
    fn empty_slice() {
        let mut data: Vec<u8> = Vec::new();
        let view = UnsafeSharedSlice::new(&mut data);
        assert!(view.is_empty());
        // SAFETY: a zero-length region of an empty slice is valid.
        assert_eq!(unsafe { view.slice_mut(0, 0) }.len(), 0);
    }
}
