//! Persistent parallel execution layer for the Chambolle workspace.
//!
//! The paper's whole point is throughput: many PEs chew on a frame
//! concurrently while an operand-reuse network keeps them fed. The software
//! mirror of that substrate is this crate: a [`ThreadPool`] whose workers are
//! spawned **once** and then parked between uses, so the hot loops (the dual
//! update, the sliding-window rounds, the TV-L1 pyramid stages) pay no
//! per-round thread churn — the same reason the hardware keeps its two
//! sliding windows resident instead of reconfiguring them per round.
//!
//! Three execution shapes cover every hot path in the workspace:
//!
//! - [`ThreadPool::broadcast`] — run one closure on every worker (the main
//!   thread participates as worker 0), with borrowed data and panic
//!   propagation; the building block for everything else;
//! - [`ThreadPool::parallel_for_rows`] / [`ThreadPool::parallel_chunks_mut`]
//!   — deterministic row partitions for image kernels (the partition depends
//!   only on the geometry, never on scheduling, so results are bit-identical
//!   across thread counts);
//! - [`ThreadPool::parallel_tiles`] — a work-stealing index queue for
//!   uneven work items (the sliding windows of `core::tiling`), where each
//!   worker drains its own contiguous range and then steals from the most
//!   loaded victim.
//!
//! Determinism is the contract throughout: the pool only decides *who*
//! computes a task, never *what* the task computes or where it writes, so
//! every consumer in this workspace stays bit-identical to its sequential
//! reference (pinned by `tests/tiled_exactness.rs` at the workspace root).
//!
//! The pool is observable through `chambolle_telemetry`: attach a handle
//! with [`ThreadPool::with_telemetry`] and every parallel call records its
//! task count (`par.tasks`), steal count (`par.steal_count`) and a per-stage
//! wall-time span; [`ThreadPool::stats`] exposes the same counters without
//! telemetry.
//!
//! # Examples
//!
//! ```
//! use chambolle_par::ThreadPool;
//!
//! let pool = ThreadPool::new(4);
//! let mut out = vec![0usize; 1000];
//! pool.parallel_chunks_mut("par.square", &mut out, 100, |chunk_index, chunk| {
//!     for (i, v) in chunk.iter_mut().enumerate() {
//!         *v = (chunk_index * 100 + i) * (chunk_index * 100 + i);
//!     }
//! });
//! assert_eq!(out[31], 31 * 31);
//! assert!(pool.stats().tasks >= 10);
//! ```

#![warn(missing_docs)]

mod pool;
pub mod simd;
mod slice;

pub use pool::{PoolStats, ThreadPool};
pub use simd::SimdLevel;
pub use slice::UnsafeSharedSlice;

/// A reasonable default worker count: the machine's available parallelism,
/// or 1 if it cannot be queried.
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}
