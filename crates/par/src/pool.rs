//! The persistent worker pool.

use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use chambolle_telemetry::{names, Telemetry};

use crate::slice::UnsafeSharedSlice;

/// A job handed to the workers: a lifetime-erased pointer to the caller's
/// closure. Soundness rests on [`ThreadPool::broadcast`] blocking until every
/// worker has finished before the borrow it erases goes out of scope.
#[derive(Clone, Copy)]
struct Job {
    func: *const (dyn Fn(usize) + Sync),
}

// SAFETY: the pointee is `Sync` (asserted by the type) and outlives its use
// (enforced by the completion barrier in `broadcast`).
unsafe impl Send for Job {}

/// Shared pool state behind the mutex.
struct PoolState {
    /// Bumped once per broadcast; workers run the job when they observe a
    /// generation they have not processed yet.
    generation: u64,
    /// The current job, present exactly while a broadcast is in flight.
    job: Option<Job>,
    /// Workers still running the current job.
    active: usize,
    /// Set on drop; workers exit their loop.
    shutdown: bool,
}

struct Shared {
    state: Mutex<PoolState>,
    /// Workers park here between jobs.
    job_cv: Condvar,
    /// The submitting thread parks here until `active` drains to zero.
    done_cv: Condvar,
    /// First panic payload from any worker of the current job.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

/// Cumulative scheduling counters of a pool (monotonic over its lifetime).
///
/// The same numbers flow into telemetry as `par.tasks`, `par.steal_count`
/// and `par.broadcasts` when a handle is attached.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Tasks executed across all parallel calls.
    pub tasks: u64,
    /// Tiles taken from another worker's queue by `parallel_tiles`.
    pub steal_count: u64,
    /// Broadcasts issued (parks/unparks of the whole pool).
    pub broadcasts: u64,
}

#[derive(Default)]
struct StatCells {
    tasks: AtomicU64,
    steal_count: AtomicU64,
    broadcasts: AtomicU64,
}

/// A persistent scoped worker pool: `threads − 1` OS threads spawned at
/// construction plus the submitting thread, parked between calls.
///
/// All parallel methods block until the work is complete, propagate worker
/// panics to the caller, and may borrow stack data (the pool is "scoped" in
/// the `std::thread::scope` sense, without the per-call spawn).
///
/// A pool of 1 thread never spawns and never synchronizes: every method runs
/// its closure inline, so sequential configurations pay zero overhead.
///
/// # Examples
///
/// ```
/// use chambolle_par::ThreadPool;
///
/// let pool = ThreadPool::new(3);
/// assert_eq!(pool.threads(), 3);
/// let sum = std::sync::atomic::AtomicU64::new(0);
/// pool.parallel_for_rows("par.sum", 0..100, 10, |rows| {
///     let local: u64 = rows.map(|r| r as u64).sum();
///     sum.fetch_add(local, std::sync::atomic::Ordering::Relaxed);
/// });
/// assert_eq!(sum.into_inner(), 4950);
/// ```
pub struct ThreadPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    /// Serializes broadcasts from multiple submitting threads.
    submit_lock: Mutex<()>,
    stats: StatCells,
    telemetry: Telemetry,
}

impl ThreadPool {
    /// Creates a pool of `threads` total workers (`threads − 1` spawned OS
    /// threads; the caller's thread is worker 0).
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0` or an OS thread cannot be spawned.
    pub fn new(threads: usize) -> Self {
        assert!(threads >= 1, "a pool needs at least one thread");
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState {
                generation: 0,
                job: None,
                active: 0,
                shutdown: false,
            }),
            job_cv: Condvar::new(),
            done_cv: Condvar::new(),
            panic: Mutex::new(None),
        });
        let handles = (1..threads)
            .map(|id| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("chambolle-par-{id}"))
                    .spawn(move || worker_loop(&shared, id))
                    .expect("worker thread must spawn")
            })
            .collect();
        ThreadPool {
            shared,
            handles,
            submit_lock: Mutex::new(()),
            stats: StatCells::default(),
            telemetry: Telemetry::disabled(),
        }
    }

    /// Pool with telemetry attached: every parallel call then records its
    /// task count, steals, and a per-stage wall-time span.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Attaches (or replaces) the telemetry handle in place.
    pub fn attach_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Total worker count, including the submitting thread.
    pub fn threads(&self) -> usize {
        self.handles.len() + 1
    }

    /// Snapshot of the cumulative scheduling counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            tasks: self.stats.tasks.load(Ordering::Relaxed),
            steal_count: self.stats.steal_count.load(Ordering::Relaxed),
            broadcasts: self.stats.broadcasts.load(Ordering::Relaxed),
        }
    }

    /// Runs `f(worker_id)` once on every worker (ids `0..threads()`, the
    /// calling thread being 0) and returns when all are done.
    ///
    /// The closure may borrow from the caller's stack. If any invocation
    /// panics, the panic is re-raised here after every worker has finished
    /// (so borrowed data is never observed after the call returns or
    /// unwinds).
    pub fn broadcast<F: Fn(usize) + Sync>(&self, f: F) {
        if self.handles.is_empty() {
            f(0);
            return;
        }
        self.stats.broadcasts.fetch_add(1, Ordering::Relaxed);
        self.telemetry.counter_add(names::PAR_BROADCASTS, 1);
        // Poison on this lock only means an earlier broadcast propagated a
        // panic while holding it; the serialization guarantee is unaffected.
        let _submit = self
            .submit_lock
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let local: &(dyn Fn(usize) + Sync) = &f;
        // SAFETY: the lifetime of `local` is erased, but this function does
        // not return (or unwind) before every worker has finished running
        // the job — see the completion wait below — so the pointee outlives
        // every dereference.
        let job = Job {
            func: unsafe {
                std::mem::transmute::<
                    *const (dyn Fn(usize) + Sync),
                    *const (dyn Fn(usize) + Sync + 'static),
                >(local as *const _)
            },
        };
        {
            let mut state = self.shared.state.lock().expect("pool state poisoned");
            debug_assert!(state.job.is_none(), "broadcasts are serialized");
            state.job = Some(job);
            state.generation += 1;
            state.active = self.handles.len();
            self.shared.job_cv.notify_all();
        }
        // The submitting thread is worker 0. Catch its panic so we still
        // reach the completion wait: unwinding past the wait would free the
        // borrowed closure while workers may still be running it.
        let main_result = catch_unwind(AssertUnwindSafe(|| f(0)));
        {
            let mut state = self.shared.state.lock().expect("pool state poisoned");
            while state.active > 0 {
                state = self
                    .shared
                    .done_cv
                    .wait(state)
                    .expect("pool state poisoned");
            }
            state.job = None;
        }
        let worker_panic = self
            .shared
            .panic
            .lock()
            .expect("panic slot poisoned")
            .take();
        if let Some(payload) = worker_panic {
            resume_unwind(payload);
        }
        if let Err(payload) = main_result {
            resume_unwind(payload);
        }
    }

    /// Splits `rows` into chunks of `chunk` consecutive indices and runs
    /// `f(sub_range)` for each, distributed over the workers.
    ///
    /// The partition is a pure function of `(rows, chunk)` — scheduling never
    /// changes which rows form a task — so kernels that write disjoint
    /// per-row outputs produce bit-identical results for every thread count.
    ///
    /// `stage` names the wall-time span recorded when telemetry is attached
    /// (e.g. `"par.warp"`).
    pub fn parallel_for_rows<F: Fn(Range<usize>) + Sync>(
        &self,
        stage: &str,
        rows: Range<usize>,
        chunk: usize,
        f: F,
    ) {
        let n = rows.end.saturating_sub(rows.start);
        if n == 0 {
            return;
        }
        let chunk = chunk.max(1);
        let tasks = n.div_ceil(chunk);
        let _span = self.telemetry.span(stage);
        self.stats.tasks.fetch_add(tasks as u64, Ordering::Relaxed);
        self.telemetry.counter_add(names::PAR_TASKS, tasks as u64);
        let task_range = |t: usize| {
            let start = rows.start + t * chunk;
            start..(start + chunk).min(rows.end)
        };
        if self.handles.is_empty() || tasks == 1 {
            for t in 0..tasks {
                f(task_range(t));
            }
            return;
        }
        let next = AtomicUsize::new(0);
        self.broadcast(|_worker| loop {
            let t = next.fetch_add(1, Ordering::Relaxed);
            if t >= tasks {
                break;
            }
            f(task_range(t));
        });
    }

    /// Splits `data` into consecutive chunks of `chunk_len` elements and
    /// runs `f(chunk_index, chunk)` for each, distributed over the workers.
    ///
    /// This is the mutable-output companion of [`parallel_for_rows`]: for an
    /// image of width `w`, `chunk_len = w * rows_per_task` hands each task a
    /// band of whole rows. Chunks are disjoint by construction, so the
    /// closure needs no synchronization.
    ///
    /// [`parallel_for_rows`]: ThreadPool::parallel_for_rows
    pub fn parallel_chunks_mut<T: Send, F: Fn(usize, &mut [T]) + Sync>(
        &self,
        stage: &str,
        data: &mut [T],
        chunk_len: usize,
        f: F,
    ) {
        let len = data.len();
        if len == 0 {
            return;
        }
        let chunk_len = chunk_len.max(1);
        let tasks = len.div_ceil(chunk_len);
        let view = UnsafeSharedSlice::new(data);
        let run_task = |t: usize| {
            let start = t * chunk_len;
            let sub_len = chunk_len.min(len - start);
            // SAFETY: chunk `t` covers `[t*chunk_len, t*chunk_len+sub_len)`;
            // distinct `t` values give disjoint regions, and each task index
            // is executed exactly once.
            let chunk = unsafe { view.slice_mut(start, sub_len) };
            f(t, chunk);
        };
        let _span = self.telemetry.span(stage);
        self.stats.tasks.fetch_add(tasks as u64, Ordering::Relaxed);
        self.telemetry.counter_add(names::PAR_TASKS, tasks as u64);
        if self.handles.is_empty() || tasks == 1 {
            for t in 0..tasks {
                run_task(t);
            }
            return;
        }
        let next = AtomicUsize::new(0);
        self.broadcast(|_worker| loop {
            let t = next.fetch_add(1, Ordering::Relaxed);
            if t >= tasks {
                break;
            }
            run_task(t);
        });
    }

    /// Runs `f(worker_id, tile_index)` once for every `tile_index` in
    /// `0..count` on a work-stealing queue: each worker drains its own
    /// contiguous share first, then steals single tiles from the back of the
    /// most loaded victim's range.
    ///
    /// Every index runs exactly once; only *who* runs it varies, so tile
    /// kernels writing per-tile outputs stay deterministic. `worker_id`
    /// (in `0..threads()`) lets callers keep per-worker scratch buffers.
    pub fn parallel_tiles<F: Fn(usize, usize) + Sync>(&self, stage: &str, count: usize, f: F) {
        if count == 0 {
            return;
        }
        let _span = self.telemetry.span(stage);
        self.stats.tasks.fetch_add(count as u64, Ordering::Relaxed);
        self.telemetry.counter_add(names::PAR_TASKS, count as u64);
        let workers = self.threads();
        if self.handles.is_empty() || count == 1 {
            for i in 0..count {
                f(0, i);
            }
            return;
        }
        // Deterministic contiguous shares: worker w owns
        // [w*count/workers, (w+1)*count/workers).
        let share = |w: usize| (w * count / workers)..((w + 1) * count / workers);
        let queues: Vec<Mutex<Range<usize>>> = (0..workers).map(|w| Mutex::new(share(w))).collect();
        let steals = AtomicU64::new(0);
        self.broadcast(|w| loop {
            let own = {
                let mut q = queues[w].lock().expect("tile queue poisoned");
                if q.start < q.end {
                    q.start += 1;
                    Some(q.start - 1)
                } else {
                    None
                }
            };
            if let Some(i) = own {
                f(w, i);
                continue;
            }
            let stolen = steal_one(&queues, w);
            match stolen {
                Some(i) => {
                    steals.fetch_add(1, Ordering::Relaxed);
                    f(w, i);
                }
                None => break,
            }
        });
        let stolen = steals.into_inner();
        self.stats.steal_count.fetch_add(stolen, Ordering::Relaxed);
        self.telemetry.counter_add(names::PAR_STEALS, stolen);
    }
}

/// Takes one tile from the back of the most loaded victim queue, if any
/// victim still has work.
fn steal_one(queues: &[Mutex<Range<usize>>], thief: usize) -> Option<usize> {
    loop {
        let mut best: Option<usize> = None;
        let mut best_len = 0usize;
        for (victim, queue) in queues.iter().enumerate() {
            if victim == thief {
                continue;
            }
            let q = queue.lock().expect("tile queue poisoned");
            let remaining = q.end.saturating_sub(q.start);
            if remaining > best_len {
                best_len = remaining;
                best = Some(victim);
            }
        }
        let victim = best?;
        let mut q = queues[victim].lock().expect("tile queue poisoned");
        // The victim may have drained between the scan and this lock; rescan.
        if q.start < q.end {
            q.end -= 1;
            return Some(q.end);
        }
    }
}

fn worker_loop(shared: &Shared, worker_id: usize) {
    let mut seen_generation = 0u64;
    loop {
        let job = {
            let mut state = shared.state.lock().expect("pool state poisoned");
            loop {
                if state.shutdown {
                    return;
                }
                if state.generation != seen_generation {
                    seen_generation = state.generation;
                    break state.job.expect("generation bumped without a job");
                }
                state = shared.job_cv.wait(state).expect("pool state poisoned");
            }
        };
        // SAFETY: `broadcast` keeps the pointee alive until `active` drains
        // to zero, which happens strictly after this call returns.
        let func = unsafe { &*job.func };
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| func(worker_id))) {
            let mut slot = shared.panic.lock().expect("panic slot poisoned");
            if slot.is_none() {
                *slot = Some(payload);
            }
        }
        let mut state = shared.state.lock().expect("pool state poisoned");
        state.active -= 1;
        if state.active == 0 {
            shared.done_cv.notify_all();
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("pool state poisoned");
            state.shutdown = true;
            self.shared.job_cv.notify_all();
        }
        for handle in self.handles.drain(..) {
            // A worker that panicked outside a job would already have
            // poisoned the state mutex and aborted the test; join errors
            // here mean the thread died after its loop, which is fine.
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.threads())
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = ThreadPool::new(1);
        assert_eq!(pool.threads(), 1);
        let tid = std::thread::current().id();
        pool.broadcast(|w| {
            assert_eq!(w, 0);
            assert_eq!(std::thread::current().id(), tid);
        });
        // No broadcasts are counted: the inline path never parks workers.
        assert_eq!(pool.stats().broadcasts, 0);
    }

    #[test]
    fn broadcast_runs_every_worker_once() {
        let pool = ThreadPool::new(4);
        let hits: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
        pool.broadcast(|w| {
            hits[w].fetch_add(1, Ordering::Relaxed);
        });
        for h in &hits {
            assert_eq!(h.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn pool_is_reusable_across_many_calls() {
        let pool = ThreadPool::new(3);
        let total = AtomicUsize::new(0);
        for _ in 0..100 {
            pool.broadcast(|_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(total.into_inner(), 300);
        assert_eq!(pool.stats().broadcasts, 100);
    }

    #[test]
    fn parallel_for_rows_covers_every_row_once() {
        let pool = ThreadPool::new(4);
        let hits: Vec<AtomicUsize> = (0..103).map(|_| AtomicUsize::new(0)).collect();
        pool.parallel_for_rows("par.test", 0..103, 7, |rows| {
            assert!(rows.len() <= 7);
            for r in rows {
                hits[r].fetch_add(1, Ordering::Relaxed);
            }
        });
        for (r, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "row {r}");
        }
        assert_eq!(pool.stats().tasks, 15); // ceil(103 / 7)
    }

    #[test]
    fn parallel_chunks_mut_partitions_exactly() {
        for threads in [1usize, 2, 5] {
            let pool = ThreadPool::new(threads);
            let mut data = vec![0usize; 1000];
            pool.parallel_chunks_mut("par.test", &mut data, 64, |t, chunk| {
                for (i, v) in chunk.iter_mut().enumerate() {
                    *v = t * 64 + i;
                }
            });
            let expect: Vec<usize> = (0..1000).collect();
            assert_eq!(data, expect, "threads={threads}");
        }
    }

    #[test]
    fn parallel_tiles_runs_each_index_once() {
        for (threads, count) in [(1usize, 5usize), (4, 1), (4, 37), (8, 100), (4, 3)] {
            let pool = ThreadPool::new(threads);
            let hits: Vec<AtomicUsize> = (0..count).map(|_| AtomicUsize::new(0)).collect();
            pool.parallel_tiles("par.test", count, |w, i| {
                assert!(w < threads);
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            for (i, h) in hits.iter().enumerate() {
                assert_eq!(
                    h.load(Ordering::Relaxed),
                    1,
                    "tile {i} at threads={threads}, count={count}"
                );
            }
        }
    }

    #[test]
    fn stealing_rebalances_skewed_work() {
        // Tile 0..8 are slow, the rest instant; with 4 workers the first
        // share holds most of the slow work and must get stolen from.
        let pool = ThreadPool::new(4);
        let done = AtomicUsize::new(0);
        pool.parallel_tiles("par.test", 64, |_, i| {
            if i < 8 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            done.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(done.into_inner(), 64);
        // Steals are scheduling-dependent but the counter must be tracked.
        let _ = pool.stats().steal_count;
    }

    #[test]
    fn borrowed_stack_data_is_visible_and_mutable_results_flow_back() {
        let pool = ThreadPool::new(3);
        let input = vec![2u64; 300];
        let mut output = vec![0u64; 300];
        pool.parallel_chunks_mut("par.test", &mut output, 50, |t, chunk| {
            for (i, v) in chunk.iter_mut().enumerate() {
                *v = input[t * 50 + i] * 3;
            }
        });
        assert!(output.iter().all(|&v| v == 6));
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        let pool = ThreadPool::new(4);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.parallel_for_rows("par.test", 0..16, 1, |rows| {
                if rows.start == 7 {
                    panic!("boom in row 7");
                }
            });
        }));
        assert!(result.is_err(), "panic must propagate to the caller");
        // The pool must still be usable afterwards.
        let total = AtomicUsize::new(0);
        pool.parallel_for_rows("par.test", 0..8, 2, |rows| {
            total.fetch_add(rows.len(), Ordering::Relaxed);
        });
        assert_eq!(total.into_inner(), 8);
    }

    #[test]
    fn telemetry_records_tasks_and_stage_span() {
        let tele = Telemetry::null();
        let pool = ThreadPool::new(2).with_telemetry(tele.clone());
        pool.parallel_for_rows("par.stage_x", 0..10, 2, |_| {});
        let snap = tele.snapshot();
        assert_eq!(snap.counter(names::PAR_TASKS), Some(5));
        let span_count = snap
            .get(chambolle_telemetry::span::span_metric_name("par.stage_x").as_str())
            .and_then(|m| m.as_histogram())
            .map(|h| h.count());
        assert_eq!(span_count, Some(1));
    }

    #[test]
    fn zero_length_work_is_a_no_op() {
        let pool = ThreadPool::new(2);
        pool.parallel_for_rows("par.test", 5..5, 4, |_| panic!("must not run"));
        pool.parallel_tiles("par.test", 0, |_, _| panic!("must not run"));
        let mut empty: Vec<u8> = Vec::new();
        pool.parallel_chunks_mut("par.test", &mut empty, 8, |_, _| panic!("must not run"));
        assert_eq!(pool.stats().tasks, 0);
    }

    #[test]
    fn available_threads_is_positive() {
        assert!(crate::available_threads() >= 1);
    }
}
