//! Runtime SIMD capability detection and backend selection.
//!
//! The kernel backends in `chambolle-core` and the row kernels in
//! `chambolle-imaging` dispatch on a [`SimdLevel`]: how wide a vector unit
//! the current process may use for the `f32` hot loops. The level is
//! resolved **once** per process by [`active`]:
//!
//! 1. if the `CHAMBOLLE_BACKEND` environment variable ([`BACKEND_ENV`]) is
//!    set to `scalar`, `sse2`, `avx2` or `avx512`, that level is requested;
//! 2. a requested level the CPU cannot run (or an unrecognised value) falls
//!    back to the best detected level, never to undefined behavior;
//! 3. with no override, the best supported level wins ([`detect`]).
//!
//! Under the default **Exact** numerics tier every level computes
//! **bit-identical** results for the elementwise kernels — vector lanes
//! replay the scalar operation order with no fused multiply-add and no
//! reassociation — so the choice is purely a throughput knob. That contract
//! is pinned by the backend-exactness test matrix at the workspace root.
//! (The AVX-512 level has no dedicated bit-exact kernels; in the Exact tier
//! it runs the AVX2 ones. Its 16-lane FMA kernels belong to the Fast
//! numerics tier, which is validated by tolerance instead — see
//! `chambolle-core`.)

use std::sync::OnceLock;

/// Environment variable that overrides the detected SIMD level.
pub const BACKEND_ENV: &str = "CHAMBOLLE_BACKEND";

/// Vector width class used by the `f32` row kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SimdLevel {
    /// Plain scalar Rust — the reference everything else must match.
    #[default]
    Scalar,
    /// 128-bit SSE2 (4 × `f32` lanes). Baseline on every x86-64 CPU.
    Sse2,
    /// 256-bit AVX2 (8 × `f32` lanes).
    Avx2,
    /// 512-bit AVX-512F (16 × `f32` lanes).
    Avx512,
}

impl SimdLevel {
    /// Stable identifier used by `CHAMBOLLE_BACKEND`, telemetry and reports.
    pub fn as_str(&self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Sse2 => "sse2",
            SimdLevel::Avx2 => "avx2",
            SimdLevel::Avx512 => "avx512",
        }
    }

    /// `f32` lanes processed per vector op (1 for scalar).
    pub fn lanes(&self) -> usize {
        match self {
            SimdLevel::Scalar => 1,
            SimdLevel::Sse2 => 4,
            SimdLevel::Avx2 => 8,
            SimdLevel::Avx512 => 16,
        }
    }

    /// Parses a `CHAMBOLLE_BACKEND` value (case-insensitive).
    pub fn parse(s: &str) -> Option<SimdLevel> {
        match s.trim().to_ascii_lowercase().as_str() {
            "scalar" => Some(SimdLevel::Scalar),
            "sse2" => Some(SimdLevel::Sse2),
            "avx2" => Some(SimdLevel::Avx2),
            "avx512" => Some(SimdLevel::Avx512),
            _ => None,
        }
    }

    /// Whether the current CPU can execute this level.
    pub fn is_supported(&self) -> bool {
        match self {
            SimdLevel::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            SimdLevel::Sse2 => is_x86_feature_detected!("sse2"),
            #[cfg(target_arch = "x86_64")]
            SimdLevel::Avx2 => is_x86_feature_detected!("avx2"),
            // The AVX-512 level also requires AVX2 (its Exact tier runs the
            // AVX2 bodies) and FMA (its Fast-tier kernels contract); every
            // AVX-512F part ships both, but the dispatch contract must not
            // rest on that convention.
            #[cfg(target_arch = "x86_64")]
            SimdLevel::Avx512 => {
                is_x86_feature_detected!("avx512f")
                    && is_x86_feature_detected!("avx2")
                    && is_x86_feature_detected!("fma")
            }
            #[cfg(not(target_arch = "x86_64"))]
            _ => false,
        }
    }
}

/// The widest [`SimdLevel`] the current CPU supports.
pub fn detect() -> SimdLevel {
    if SimdLevel::Avx512.is_supported() {
        SimdLevel::Avx512
    } else if SimdLevel::Avx2.is_supported() {
        SimdLevel::Avx2
    } else if SimdLevel::Sse2.is_supported() {
        SimdLevel::Sse2
    } else {
        SimdLevel::Scalar
    }
}

/// Resolves an optional override string against the detected capabilities.
///
/// A requested level the CPU supports wins; anything else (unsupported
/// level, unrecognised value, no override) resolves to [`detect`]. This is
/// the pure core of [`active`], kept separate so tests can exercise the
/// policy without touching the process environment.
pub fn resolve(requested: Option<&str>) -> SimdLevel {
    match requested.and_then(SimdLevel::parse) {
        Some(level) if level.is_supported() => level,
        _ => detect(),
    }
}

/// The process-wide SIMD level: `CHAMBOLLE_BACKEND` override if valid and
/// supported, else the best detected level. Resolved once and cached.
pub fn active() -> SimdLevel {
    static ACTIVE: OnceLock<SimdLevel> = OnceLock::new();
    *ACTIVE.get_or_init(|| resolve(std::env::var(BACKEND_ENV).ok().as_deref()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_known_levels_case_insensitively() {
        assert_eq!(SimdLevel::parse("scalar"), Some(SimdLevel::Scalar));
        assert_eq!(SimdLevel::parse("SSE2"), Some(SimdLevel::Sse2));
        assert_eq!(SimdLevel::parse(" Avx2 "), Some(SimdLevel::Avx2));
        assert_eq!(SimdLevel::parse("AVX512"), Some(SimdLevel::Avx512));
        assert_eq!(SimdLevel::parse("avx512vl"), None);
        assert_eq!(SimdLevel::parse(""), None);
    }

    #[test]
    fn lanes_and_names_are_consistent() {
        for level in [
            SimdLevel::Scalar,
            SimdLevel::Sse2,
            SimdLevel::Avx2,
            SimdLevel::Avx512,
        ] {
            assert_eq!(SimdLevel::parse(level.as_str()), Some(level));
            assert!(level.lanes().is_power_of_two());
        }
        assert_eq!(SimdLevel::Scalar.lanes(), 1);
    }

    #[test]
    fn scalar_is_always_supported_and_detect_returns_supported() {
        assert!(SimdLevel::Scalar.is_supported());
        assert!(detect().is_supported());
    }

    #[test]
    fn resolve_honors_supported_overrides_and_rejects_the_rest() {
        assert_eq!(resolve(Some("scalar")), SimdLevel::Scalar);
        assert_eq!(resolve(Some("nonsense")), detect());
        assert_eq!(resolve(None), detect());
        if SimdLevel::Avx2.is_supported() {
            assert_eq!(resolve(Some("avx2")), SimdLevel::Avx2);
        } else {
            // An unsupported request clamps to the detected level.
            assert_eq!(resolve(Some("avx2")), detect());
        }
    }

    #[test]
    fn active_is_stable_across_calls() {
        assert_eq!(active(), active());
        assert!(active().is_supported());
    }
}
