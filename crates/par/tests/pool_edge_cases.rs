//! Shutdown and reuse edge cases of the persistent worker pool.
//!
//! These pin down lifecycle behaviour the service layer depends on: a pool
//! must drop cleanly right after heavy use, stay reusable across sequential
//! scoped jobs, and survive a propagated panic with its workers intact.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use chambolle_par::ThreadPool;

#[test]
fn dropping_a_pool_right_after_queued_tile_work_joins_cleanly() {
    // Many more tiles than workers, so the steal queue is saturated right up
    // to the drop. Every tile must have run exactly once before drop joins.
    let counter = AtomicUsize::new(0);
    let tiles = 512;
    {
        let pool = ThreadPool::new(4);
        pool.parallel_tiles("edge.drop", tiles, |_, _| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        // Drop happens here, immediately after the last broadcast.
    }
    assert_eq!(counter.load(Ordering::Relaxed), tiles);
}

#[test]
fn one_pool_serves_two_sequential_scoped_jobs_over_different_borrows() {
    let pool = ThreadPool::new(3);

    // First scoped job borrows one stack buffer...
    let mut first = vec![0u32; 97];
    pool.parallel_chunks_mut("edge.job1", &mut first, 8, |_, chunk| {
        for cell in chunk {
            *cell += 1;
        }
    });
    assert!(first.iter().all(|&v| v == 1));

    // ...and after it fully completes, a second job borrows another. The
    // borrow of `first` has ended, so the pool must be back to idle with no
    // stragglers holding the old closure.
    let mut second = vec![10u32; 41];
    pool.parallel_chunks_mut("edge.job2", &mut second, 5, |_, chunk| {
        for cell in chunk {
            *cell *= 2;
        }
    });
    assert!(second.iter().all(|&v| v == 20));

    let stats = pool.stats();
    assert!(stats.broadcasts >= 2, "both jobs used the workers");
}

#[test]
fn panic_in_parallel_chunks_mut_propagates_and_pool_stays_usable() {
    let pool = ThreadPool::new(4);
    let mut data = vec![0u8; 256];
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        pool.parallel_chunks_mut("edge.panic", &mut data, 16, |_, chunk| {
            if chunk[0] == 0 {
                panic!("injected chunk failure");
            }
        });
    }));
    let payload = outcome.expect_err("the worker panic must reach the caller");
    let msg = payload
        .downcast_ref::<&str>()
        .copied()
        .unwrap_or("non-str payload");
    assert!(msg.contains("injected"), "got {msg:?}");

    // The pool is not poisoned: the same instance completes follow-up work
    // on all workers.
    let seen = Mutex::new(Vec::new());
    pool.parallel_tiles("edge.after_panic", 64, |_, tile| {
        seen.lock().unwrap().push(tile);
    });
    let mut seen = seen.into_inner().unwrap();
    seen.sort_unstable();
    assert_eq!(seen, (0..64).collect::<Vec<_>>());
}

#[test]
fn arc_shared_pool_drops_cleanly_from_a_worker_less_owner() {
    // The service hands Arc<ThreadPool> clones around; the last owner to
    // drop (possibly not the creator) must join the workers without
    // deadlock.
    let pool = Arc::new(ThreadPool::new(2));
    let clone = Arc::clone(&pool);
    let join = std::thread::spawn(move || {
        clone.parallel_tiles("edge.arc", 32, |_, _| {});
        // `clone` drops on this thread...
    });
    join.join().unwrap();
    pool.parallel_tiles("edge.arc2", 8, |_, _| {});
    drop(pool); // ...and the final owner drops here.
}
