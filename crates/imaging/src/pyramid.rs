//! Gaussian image pyramids for the coarse-to-fine TV-L1 outer loop.

use chambolle_par::{SimdLevel, ThreadPool};

use crate::grid::{par_band_rows, Grid};
use crate::image::{sample_bilinear, Image};
use crate::simd::{self, BINOMIAL5};

/// A coarse-to-fine stack of images.
///
/// `levels()[0]` is the full-resolution input; each further level halves both
/// dimensions (rounding up, never below [`Pyramid::MIN_DIM`]).
///
/// # Examples
///
/// ```
/// use chambolle_imaging::{Grid, Pyramid};
/// let img = Grid::new(64, 48, 0.5f32);
/// let pyr = Pyramid::build(&img, 3);
/// assert_eq!(pyr.levels().len(), 3);
/// assert_eq!(pyr.levels()[0].dims(), (64, 48));
/// assert_eq!(pyr.levels()[1].dims(), (32, 24));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Pyramid {
    levels: Vec<Image>,
}

impl Pyramid {
    /// Levels stop subdividing once either dimension would drop below this.
    pub const MIN_DIM: usize = 8;

    /// Builds a pyramid with at most `max_levels` levels and a 2× reduction
    /// per level.
    ///
    /// Each level is produced by a 5-tap binomial blur followed by 2×
    /// decimation. Fewer levels are produced if the image becomes too small.
    ///
    /// # Panics
    ///
    /// Panics if `max_levels == 0` or the input image is empty.
    pub fn build(base: &Image, max_levels: usize) -> Self {
        assert!(max_levels > 0, "pyramid needs at least one level");
        assert!(!base.is_empty(), "cannot build a pyramid of an empty image");
        let mut levels = vec![base.clone()];
        while levels.len() < max_levels {
            let prev = levels.last().expect("non-empty by construction");
            let (w, h) = prev.dims();
            if w / 2 < Self::MIN_DIM || h / 2 < Self::MIN_DIM {
                break;
            }
            levels.push(downsample_half(prev));
        }
        Pyramid { levels }
    }

    /// Builds a pyramid with an arbitrary per-level scale factor in
    /// `(0, 1)` — gentler factors (e.g. 0.8, as OpenCV's TV-L1 uses) track
    /// large motions more reliably than the classic 0.5 at the cost of more
    /// levels.
    ///
    /// # Panics
    ///
    /// Panics if `max_levels == 0`, the input is empty, or `factor` is not
    /// in `(0, 1)`.
    pub fn build_scaled(base: &Image, max_levels: usize, factor: f32) -> Self {
        assert!(max_levels > 0, "pyramid needs at least one level");
        assert!(!base.is_empty(), "cannot build a pyramid of an empty image");
        assert!(
            factor > 0.0 && factor < 1.0,
            "scale factor must be in (0, 1), got {factor}"
        );
        let mut levels = vec![base.clone()];
        while levels.len() < max_levels {
            let prev = levels.last().expect("non-empty by construction");
            let (w, h) = prev.dims();
            let nw = (w as f32 * factor).round() as usize;
            let nh = (h as f32 * factor).round() as usize;
            if nw < Self::MIN_DIM || nh < Self::MIN_DIM || (nw, nh) == (w, h) {
                break;
            }
            let blurred = blur_binomial5(prev);
            levels.push(resize_bilinear(&blurred, nw, nh));
        }
        Pyramid { levels }
    }

    /// [`Pyramid::build`] with each level's blur and decimation distributed
    /// over a worker pool and the blur rows running at the given
    /// [`SimdLevel`]; bit-identical for every thread count and level.
    ///
    /// # Panics
    ///
    /// Panics if `max_levels == 0` or the input image is empty.
    pub fn build_with_pool(
        base: &Image,
        max_levels: usize,
        pool: &ThreadPool,
        level: SimdLevel,
    ) -> Self {
        assert!(max_levels > 0, "pyramid needs at least one level");
        assert!(!base.is_empty(), "cannot build a pyramid of an empty image");
        let mut levels = vec![base.clone()];
        while levels.len() < max_levels {
            let prev = levels.last().expect("non-empty by construction");
            let (w, h) = prev.dims();
            if w / 2 < Self::MIN_DIM || h / 2 < Self::MIN_DIM {
                break;
            }
            levels.push(downsample_half_with_pool(prev, pool, level));
        }
        Pyramid { levels }
    }

    /// [`Pyramid::build_scaled`] with each level's blur and resize
    /// distributed over a worker pool and the blur rows running at the given
    /// [`SimdLevel`]; bit-identical for every thread count and level.
    ///
    /// # Panics
    ///
    /// Panics if `max_levels == 0`, the input is empty, or `factor` is not
    /// in `(0, 1)`.
    pub fn build_scaled_with_pool(
        base: &Image,
        max_levels: usize,
        factor: f32,
        pool: &ThreadPool,
        level: SimdLevel,
    ) -> Self {
        assert!(max_levels > 0, "pyramid needs at least one level");
        assert!(!base.is_empty(), "cannot build a pyramid of an empty image");
        assert!(
            factor > 0.0 && factor < 1.0,
            "scale factor must be in (0, 1), got {factor}"
        );
        let mut levels = vec![base.clone()];
        while levels.len() < max_levels {
            let prev = levels.last().expect("non-empty by construction");
            let (w, h) = prev.dims();
            let nw = (w as f32 * factor).round() as usize;
            let nh = (h as f32 * factor).round() as usize;
            if nw < Self::MIN_DIM || nh < Self::MIN_DIM || (nw, nh) == (w, h) {
                break;
            }
            let blurred = blur_binomial5_with_pool(prev, pool, level);
            levels.push(resize_bilinear_with_pool(&blurred, nw, nh, pool));
        }
        Pyramid { levels }
    }

    /// The levels, finest (index 0) to coarsest.
    pub fn levels(&self) -> &[Image] {
        &self.levels
    }

    /// Number of levels actually built.
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// Whether the pyramid has no levels (never true for a built pyramid).
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }

    /// The coarsest level.
    pub fn coarsest(&self) -> &Image {
        self.levels.last().expect("pyramid is never empty")
    }
}

/// 5-tap binomial (1 4 6 4 1)/16 separable blur with clamped borders.
pub fn blur_binomial5(img: &Image) -> Image {
    let (w, h) = img.dims();
    const K: [f32; 5] = BINOMIAL5;
    let mut tmp = Grid::new(w, h, 0.0);
    for y in 0..h {
        for x in 0..w {
            let mut acc = 0.0;
            for (i, k) in K.iter().enumerate() {
                let xs = (x as i64 + i as i64 - 2).clamp(0, w as i64 - 1) as usize;
                acc += k * img[(xs, y)];
            }
            tmp[(x, y)] = acc;
        }
    }
    let mut out = Grid::new(w, h, 0.0);
    for y in 0..h {
        for x in 0..w {
            let mut acc = 0.0;
            for (i, k) in K.iter().enumerate() {
                let ys = (y as i64 + i as i64 - 2).clamp(0, h as i64 - 1) as usize;
                acc += k * tmp[(x, ys)];
            }
            out[(x, y)] = acc;
        }
    }
    out
}

/// [`blur_binomial5`] with both separable passes row-parallelized over a
/// worker pool and the per-row tap loops dispatched on a [`SimdLevel`].
///
/// Every level accumulates the taps in the same order over the same inputs
/// as the sequential blur (the vector rows replay the scalar accumulation
/// per lane), so the result is bit-identical for every thread count and
/// SIMD level.
pub fn blur_binomial5_with_pool(img: &Image, pool: &ThreadPool, level: SimdLevel) -> Image {
    let (w, h) = img.dims();
    let mut tmp = Grid::new(w, h, 0.0);
    if w == 0 || h == 0 {
        return tmp;
    }
    let band = par_band_rows(h, pool.threads());
    pool.parallel_chunks_mut("imaging.blur_h", tmp.as_mut_slice(), w * band, |t, rows| {
        let y0 = t * band;
        for (dy, row) in rows.chunks_mut(w).enumerate() {
            simd::blur_h_row(level, img.row(y0 + dy), row);
        }
    });
    let mut out = Grid::new(w, h, 0.0);
    pool.parallel_chunks_mut("imaging.blur_v", out.as_mut_slice(), w * band, |t, rows| {
        let y0 = t * band;
        for (dy, row) in rows.chunks_mut(w).enumerate() {
            let y = y0 + dy;
            let taps: [&[f32]; 5] = std::array::from_fn(|i| {
                tmp.row((y as i64 + i as i64 - 2).clamp(0, h as i64 - 1) as usize)
            });
            simd::blur_v_row(level, taps, row);
        }
    });
    out
}

/// Blurs then decimates an image by 2 in both dimensions (rounding up).
pub fn downsample_half(img: &Image) -> Image {
    let blurred = blur_binomial5(img);
    let (w, h) = img.dims();
    let nw = w.div_ceil(2);
    let nh = h.div_ceil(2);
    Grid::from_fn(nw, nh, |x, y| {
        blurred[((2 * x).min(w - 1), (2 * y).min(h - 1))]
    })
}

/// [`downsample_half`] with the blur and the decimation row-parallelized
/// over a worker pool and the blur rows running at the given [`SimdLevel`];
/// bit-identical for every thread count and level. The decimation itself is
/// a strided gather and stays scalar on every level.
pub fn downsample_half_with_pool(img: &Image, pool: &ThreadPool, level: SimdLevel) -> Image {
    let blurred = blur_binomial5_with_pool(img, pool, level);
    let (w, h) = img.dims();
    let nw = w.div_ceil(2);
    let nh = h.div_ceil(2);
    let mut out = Grid::new(nw, nh, 0.0);
    let band = par_band_rows(nh.max(1), pool.threads());
    pool.parallel_chunks_mut(
        "imaging.decimate",
        out.as_mut_slice(),
        nw * band,
        |t, rows| {
            let y0 = t * band;
            for (dy, row) in rows.chunks_mut(nw).enumerate() {
                let y = y0 + dy;
                for (x, cell) in row.iter_mut().enumerate() {
                    *cell = blurred[((2 * x).min(w - 1), (2 * y).min(h - 1))];
                }
            }
        },
    );
    out
}

/// Bilinearly resizes `img` to `new_w × new_h`.
///
/// Used to upsample flow components between pyramid levels; note that flow
/// *values* must additionally be scaled by the resize factor, which
/// [`upsample_flow_component`] does.
///
/// # Panics
///
/// Panics if a target dimension is zero.
pub fn resize_bilinear(img: &Image, new_w: usize, new_h: usize) -> Image {
    assert!(new_w > 0 && new_h > 0, "target dimensions must be positive");
    let (w, h) = img.dims();
    let sx = w as f32 / new_w as f32;
    let sy = h as f32 / new_h as f32;
    Grid::from_fn(new_w, new_h, |x, y| {
        // Sample at pixel centers to keep the lattice aligned across scales.
        let src_x = (x as f32 + 0.5) * sx - 0.5;
        let src_y = (y as f32 + 0.5) * sy - 0.5;
        sample_bilinear(img, src_x, src_y)
    })
}

/// [`resize_bilinear`] with the output rows distributed over a worker pool;
/// bit-identical for every thread count. Bilinear sampling is gather-bound
/// (data-dependent indexing per pixel), so this pass has no vector body and
/// takes no [`SimdLevel`].
///
/// # Panics
///
/// Panics if a target dimension is zero.
pub fn resize_bilinear_with_pool(
    img: &Image,
    new_w: usize,
    new_h: usize,
    pool: &ThreadPool,
) -> Image {
    assert!(new_w > 0 && new_h > 0, "target dimensions must be positive");
    let (w, h) = img.dims();
    let sx = w as f32 / new_w as f32;
    let sy = h as f32 / new_h as f32;
    let mut out = Grid::new(new_w, new_h, 0.0);
    let band = par_band_rows(new_h, pool.threads());
    pool.parallel_chunks_mut(
        "imaging.resize",
        out.as_mut_slice(),
        new_w * band,
        |t, rows| {
            let y0 = t * band;
            for (dy, row) in rows.chunks_mut(new_w).enumerate() {
                let y = y0 + dy;
                let src_y = (y as f32 + 0.5) * sy - 0.5;
                for (x, cell) in row.iter_mut().enumerate() {
                    let src_x = (x as f32 + 0.5) * sx - 0.5;
                    *cell = sample_bilinear(img, src_x, src_y);
                }
            }
        },
    );
    out
}

/// Upsamples one flow component from a coarser level to `new_w × new_h`,
/// scaling the displacement values by the horizontal resize ratio.
pub fn upsample_flow_component(comp: &Image, new_w: usize, new_h: usize) -> Image {
    let scale = new_w as f32 / comp.width() as f32;
    let resized = resize_bilinear(comp, new_w, new_h);
    resized.map(|&v| v * scale)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blur_preserves_constants() {
        let img = Grid::new(16, 16, 0.7f32);
        let b = blur_binomial5(&img);
        assert!(b.as_slice().iter().all(|&v| (v - 0.7).abs() < 1e-6));
    }

    #[test]
    fn blur_reduces_oscillation() {
        let img = Grid::from_fn(16, 1, |x, _| if x % 2 == 0 { 1.0 } else { 0.0 });
        let b = blur_binomial5(&img);
        let osc_before: f32 = (1..16).map(|x| (img[(x, 0)] - img[(x - 1, 0)]).abs()).sum();
        let osc_after: f32 = (1..16).map(|x| (b[(x, 0)] - b[(x - 1, 0)]).abs()).sum();
        assert!(osc_after < 0.5 * osc_before);
    }

    #[test]
    fn downsample_halves_dims_rounding_up() {
        let img = Grid::new(17, 10, 0.0f32);
        let d = downsample_half(&img);
        assert_eq!(d.dims(), (9, 5));
    }

    #[test]
    fn pyramid_stops_at_min_dim() {
        let img = Grid::new(32, 32, 0.0f32);
        let pyr = Pyramid::build(&img, 10);
        // 32 -> 16 -> 8; the next halving would drop below MIN_DIM.
        assert_eq!(pyr.len(), 3);
        assert_eq!(pyr.coarsest().dims(), (8, 8));
    }

    #[test]
    fn pyramid_respects_max_levels() {
        let img = Grid::new(128, 128, 0.0f32);
        assert_eq!(Pyramid::build(&img, 2).len(), 2);
    }

    #[test]
    fn resize_identity() {
        let img = Grid::from_fn(7, 5, |x, y| (x * y) as f32);
        let same = resize_bilinear(&img, 7, 5);
        for (x, y, &v) in img.iter() {
            assert!((v - same[(x, y)]).abs() < 1e-4);
        }
    }

    #[test]
    fn resize_preserves_constant() {
        let img = Grid::new(8, 8, 0.3f32);
        let up = resize_bilinear(&img, 19, 13);
        assert!(up.as_slice().iter().all(|&v| (v - 0.3).abs() < 1e-6));
    }

    #[test]
    fn upsample_flow_scales_values() {
        let comp = Grid::new(8, 8, 1.0f32);
        let up = upsample_flow_component(&comp, 16, 16);
        assert!(up.as_slice().iter().all(|&v| (v - 2.0).abs() < 1e-5));
    }

    #[test]
    fn pooled_pyramid_ops_are_bit_identical() {
        let img = Grid::from_fn(45, 37, |x, y| ((x * 3 + y * 5) % 23) as f32 / 23.0);
        let blur = blur_binomial5(&img);
        let down = downsample_half(&img);
        let resized = resize_bilinear(&img, 31, 22);
        let pyr_half = Pyramid::build(&img, 4);
        let pyr_scaled = Pyramid::build_scaled(&img, 4, 0.7);
        let levels: Vec<SimdLevel> = [
            SimdLevel::Scalar,
            SimdLevel::Sse2,
            SimdLevel::Avx2,
            SimdLevel::Avx512,
        ]
        .into_iter()
        .filter(SimdLevel::is_supported)
        .collect();
        for threads in [1usize, 2, 3, 8] {
            let pool = ThreadPool::new(threads);
            for &level in &levels {
                assert_eq!(
                    blur.as_slice(),
                    blur_binomial5_with_pool(&img, &pool, level).as_slice(),
                    "blur at {threads} threads, {level:?}"
                );
                assert_eq!(
                    down.as_slice(),
                    downsample_half_with_pool(&img, &pool, level).as_slice(),
                    "downsample at {threads} threads, {level:?}"
                );
                assert_eq!(
                    pyr_half,
                    Pyramid::build_with_pool(&img, 4, &pool, level),
                    "half pyramid at {threads} threads, {level:?}"
                );
                assert_eq!(
                    pyr_scaled,
                    Pyramid::build_scaled_with_pool(&img, 4, 0.7, &pool, level),
                    "scaled pyramid at {threads} threads, {level:?}"
                );
            }
            assert_eq!(
                resized.as_slice(),
                resize_bilinear_with_pool(&img, 31, 22, &pool).as_slice(),
                "resize at {threads} threads"
            );
        }
    }

    #[test]
    fn scaled_pyramid_uses_the_factor() {
        let img = Grid::new(100, 80, 0.5f32);
        let pyr = Pyramid::build_scaled(&img, 10, 0.8);
        assert_eq!(pyr.levels()[1].dims(), (80, 64));
        assert_eq!(pyr.levels()[2].dims(), (64, 51));
        // Gentler factor -> more levels than halving.
        assert!(pyr.len() > Pyramid::build(&img, 10).len());
        // Constant image stays constant through resampling.
        assert!(pyr
            .coarsest()
            .as_slice()
            .iter()
            .all(|&v| (v - 0.5).abs() < 1e-5));
    }

    #[test]
    fn scaled_pyramid_with_half_matches_build_level_count() {
        let img = Grid::new(64, 64, 0.0f32);
        let a = Pyramid::build(&img, 10);
        let b = Pyramid::build_scaled(&img, 10, 0.5);
        assert_eq!(a.len(), b.len());
        for (la, lb) in a.levels().iter().zip(b.levels()) {
            assert_eq!(la.dims(), lb.dims());
        }
    }

    #[test]
    #[should_panic(expected = "scale factor")]
    fn scaled_pyramid_rejects_bad_factor() {
        Pyramid::build_scaled(&Grid::new(32, 32, 0.0f32), 3, 1.0);
    }
}
