//! Dense 2-D row-major container used for images, dual fields and flow
//! components throughout the workspace.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major 2-D array of `T`.
///
/// Coordinates are `(x, y)` with `x` the column (`0..width`) and `y` the row
/// (`0..height`), matching the image convention of the paper (its sub-matrices
/// are "88 × 92" = 88 rows × 92 columns).
///
/// # Examples
///
/// ```
/// use chambolle_imaging::Grid;
///
/// let mut g = Grid::new(4, 3, 0.0f32);
/// g[(2, 1)] = 7.5;
/// assert_eq!(g[(2, 1)], 7.5);
/// assert_eq!(g.width(), 4);
/// assert_eq!(g.height(), 3);
/// ```
#[derive(Clone, PartialEq)]
pub struct Grid<T> {
    width: usize,
    height: usize,
    data: Vec<T>,
}

impl<T: fmt::Debug> fmt::Debug for Grid<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Grid {}x{} [", self.width, self.height)?;
        for y in 0..self.height.min(8) {
            write!(f, "  ")?;
            for x in 0..self.width.min(8) {
                write!(f, "{:?} ", self.data[y * self.width + x])?;
            }
            writeln!(f, "{}", if self.width > 8 { "..." } else { "" })?;
        }
        if self.height > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

impl<T: Clone> Grid<T> {
    /// Creates a `width × height` grid filled with `fill`.
    ///
    /// # Panics
    ///
    /// Panics if `width * height` overflows `usize`.
    pub fn new(width: usize, height: usize, fill: T) -> Self {
        let len = width
            .checked_mul(height)
            .expect("grid dimensions overflow usize");
        Grid {
            width,
            height,
            data: vec![fill; len],
        }
    }

    /// Creates a grid by evaluating `f(x, y)` at every cell.
    ///
    /// # Examples
    ///
    /// ```
    /// use chambolle_imaging::Grid;
    /// let ramp = Grid::from_fn(3, 2, |x, y| (x + 10 * y) as f32);
    /// assert_eq!(ramp[(2, 1)], 12.0);
    /// ```
    pub fn from_fn(width: usize, height: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(width * height);
        for y in 0..height {
            for x in 0..width {
                data.push(f(x, y));
            }
        }
        Grid {
            width,
            height,
            data,
        }
    }

    /// Wraps an existing row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`GridShapeError`] if `data.len() != width * height`.
    pub fn from_vec(width: usize, height: usize, data: Vec<T>) -> Result<Self, GridShapeError> {
        if data.len() != width * height {
            return Err(GridShapeError {
                width,
                height,
                len: data.len(),
            });
        }
        Ok(Grid {
            width,
            height,
            data,
        })
    }

    /// Extracts the rectangle `[x0, x0+w) × [y0, y0+h)` as a new grid.
    ///
    /// # Panics
    ///
    /// Panics if the rectangle exceeds the grid bounds.
    pub fn crop(&self, x0: usize, y0: usize, w: usize, h: usize) -> Grid<T> {
        assert!(
            x0 + w <= self.width && y0 + h <= self.height,
            "crop {}x{}+{}+{} out of bounds for {}x{} grid",
            w,
            h,
            x0,
            y0,
            self.width,
            self.height
        );
        Grid::from_fn(w, h, |x, y| {
            self.data[(y0 + y) * self.width + (x0 + x)].clone()
        })
    }

    /// Copies `src` into this grid with its top-left corner at `(x0, y0)`.
    ///
    /// # Panics
    ///
    /// Panics if `src` does not fit.
    pub fn blit(&mut self, x0: usize, y0: usize, src: &Grid<T>) {
        assert!(
            x0 + src.width <= self.width && y0 + src.height <= self.height,
            "blit of {}x{} at +{}+{} out of bounds for {}x{} grid",
            src.width,
            src.height,
            x0,
            y0,
            self.width,
            self.height
        );
        for y in 0..src.height {
            let dst_row = (y0 + y) * self.width + x0;
            let src_row = y * src.width;
            self.data[dst_row..dst_row + src.width]
                .clone_from_slice(&src.data[src_row..src_row + src.width]);
        }
    }

    /// Applies `f` to every element, producing a grid of the results.
    pub fn map<U: Clone>(&self, mut f: impl FnMut(&T) -> U) -> Grid<U> {
        Grid {
            width: self.width,
            height: self.height,
            data: self.data.iter().map(&mut f).collect(),
        }
    }

    /// Sets every element to `fill`.
    pub fn fill(&mut self, fill: T) {
        for v in &mut self.data {
            *v = fill.clone();
        }
    }
}

impl<T> Grid<T> {
    /// Grid width (number of columns).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Grid height (number of rows).
    pub fn height(&self) -> usize {
        self.height
    }

    /// `(width, height)` pair.
    pub fn dims(&self) -> (usize, usize) {
        (self.width, self.height)
    }

    /// Total number of cells.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the grid has zero cells.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Linear index of `(x, y)`.
    #[inline]
    pub fn idx(&self, x: usize, y: usize) -> usize {
        debug_assert!(x < self.width && y < self.height);
        y * self.width + x
    }

    /// Bounds-checked access.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> Option<&T> {
        if x < self.width && y < self.height {
            Some(&self.data[y * self.width + x])
        } else {
            None
        }
    }

    /// Bounds-checked mutable access.
    #[inline]
    pub fn get_mut(&mut self, x: usize, y: usize) -> Option<&mut T> {
        if x < self.width && y < self.height {
            Some(&mut self.data[y * self.width + x])
        } else {
            None
        }
    }

    /// The underlying row-major slice.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// The underlying row-major slice, mutably.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the grid, returning the row-major buffer.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Row `y` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `y >= height`.
    pub fn row(&self, y: usize) -> &[T] {
        assert!(
            y < self.height,
            "row {y} out of bounds (height {})",
            self.height
        );
        &self.data[y * self.width..(y + 1) * self.width]
    }

    /// Row `y` as a mutable slice.
    ///
    /// # Panics
    ///
    /// Panics if `y >= height`.
    pub fn row_mut(&mut self, y: usize) -> &mut [T] {
        assert!(
            y < self.height,
            "row {y} out of bounds (height {})",
            self.height
        );
        &mut self.data[y * self.width..(y + 1) * self.width]
    }

    /// Iterator over mutable bands of up to `rows_per_chunk` whole rows, in
    /// top-to-bottom order.
    ///
    /// Each item is `(first_row, band)` where `band` is a flat row-major
    /// slice of `min(rows_per_chunk, remaining) * width` elements. The
    /// bands partition the grid, so they can be handed to parallel workers
    /// without aliasing. An empty grid yields no bands.
    ///
    /// # Panics
    ///
    /// Panics if `rows_per_chunk == 0` and the grid is non-empty.
    ///
    /// # Examples
    ///
    /// ```
    /// use chambolle_imaging::Grid;
    ///
    /// let mut g = Grid::from_fn(2, 5, |_, y| y);
    /// for (first_row, band) in g.rows_mut_chunks(2) {
    ///     for v in band {
    ///         *v += 100 * first_row;
    ///     }
    /// }
    /// assert_eq!(g[(0, 3)], 203); // band starting at row 2
    /// ```
    pub fn rows_mut_chunks(
        &mut self,
        rows_per_chunk: usize,
    ) -> impl Iterator<Item = (usize, &mut [T])> {
        assert!(
            rows_per_chunk > 0 || self.data.is_empty(),
            "rows_per_chunk must be positive"
        );
        let w = self.width;
        // `chunks_mut` rejects a zero chunk length even on empty slices.
        let band_len = (w * rows_per_chunk).max(1);
        self.data
            .chunks_mut(band_len)
            .enumerate()
            .map(move |(i, band)| (i * rows_per_chunk, band))
    }

    /// Iterator over `(x, y, &value)` in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, &T)> {
        let w = self.width;
        self.data
            .iter()
            .enumerate()
            .map(move |(i, v)| (i % w, i / w, v))
    }
}

impl<T> Index<(usize, usize)> for Grid<T> {
    type Output = T;

    /// Indexes by `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    fn index(&self, (x, y): (usize, usize)) -> &T {
        assert!(
            x < self.width && y < self.height,
            "index ({x}, {y}) out of bounds for {}x{} grid",
            self.width,
            self.height
        );
        &self.data[y * self.width + x]
    }
}

impl<T> IndexMut<(usize, usize)> for Grid<T> {
    #[inline]
    fn index_mut(&mut self, (x, y): (usize, usize)) -> &mut T {
        assert!(
            x < self.width && y < self.height,
            "index ({x}, {y}) out of bounds for {}x{} grid",
            self.width,
            self.height
        );
        &mut self.data[y * self.width + x]
    }
}

impl<T: Clone + Default> Default for Grid<T> {
    fn default() -> Self {
        Grid {
            width: 0,
            height: 0,
            data: Vec::new(),
        }
    }
}

/// Error returned by [`Grid::from_vec`] when the buffer length does not match
/// the requested dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridShapeError {
    width: usize,
    height: usize,
    len: usize,
}

impl fmt::Display for GridShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "buffer of length {} cannot form a {}x{} grid (need {})",
            self.len,
            self.width,
            self.height,
            self.width * self.height
        )
    }
}

impl std::error::Error for GridShapeError {}

/// Rows per task for a pooled row-parallel fill over `height` rows: about
/// `band_rows_divisor` tasks per worker (four by default) so the atomic
/// dispatcher can smooth load imbalance, but never below one row. The
/// divisor comes from the process-wide active tunables
/// ([`chambolle_tune::active`]), so a tuning profile can trade dispatch
/// overhead against balance without touching results — banding is a pure
/// schedule choice here (each row is computed independently).
pub(crate) fn par_band_rows(height: usize, threads: usize) -> usize {
    chambolle_tune::active().band_rows(height, threads)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_fills() {
        let g = Grid::new(3, 2, 5u8);
        assert_eq!(g.len(), 6);
        assert!(g.as_slice().iter().all(|&v| v == 5));
    }

    #[test]
    fn from_fn_row_major_layout() {
        let g = Grid::from_fn(3, 2, |x, y| (x, y));
        assert_eq!(g.as_slice()[0], (0, 0));
        assert_eq!(g.as_slice()[1], (1, 0));
        assert_eq!(g.as_slice()[3], (0, 1));
        assert_eq!(g[(2, 1)], (2, 1));
    }

    #[test]
    fn from_vec_checks_shape() {
        assert!(Grid::from_vec(2, 2, vec![1, 2, 3]).is_err());
        let g = Grid::from_vec(2, 2, vec![1, 2, 3, 4]).unwrap();
        assert_eq!(g[(1, 1)], 4);
        let err = Grid::from_vec(2, 2, vec![1]).unwrap_err();
        assert!(err.to_string().contains("2x2"));
    }

    #[test]
    fn crop_and_blit_roundtrip() {
        let g = Grid::from_fn(5, 4, |x, y| 10 * y + x);
        let c = g.crop(1, 2, 3, 2);
        assert_eq!(c.dims(), (3, 2));
        assert_eq!(c[(0, 0)], 21);
        assert_eq!(c[(2, 1)], 33);

        let mut dst = Grid::new(5, 4, 0usize);
        dst.blit(1, 2, &c);
        assert_eq!(dst[(1, 2)], 21);
        assert_eq!(dst[(3, 3)], 33);
        assert_eq!(dst[(0, 0)], 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn crop_out_of_bounds_panics() {
        Grid::new(3, 3, 0).crop(2, 2, 2, 2);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_out_of_bounds_panics() {
        let g = Grid::new(3, 3, 0);
        let _ = g[(3, 0)];
    }

    #[test]
    fn get_is_bounds_checked() {
        let g = Grid::new(2, 2, 1);
        assert_eq!(g.get(1, 1), Some(&1));
        assert_eq!(g.get(2, 0), None);
        assert_eq!(g.get(0, 2), None);
    }

    #[test]
    fn map_preserves_shape() {
        let g = Grid::from_fn(3, 2, |x, _| x as f32);
        let doubled = g.map(|v| v * 2.0);
        assert_eq!(doubled.dims(), (3, 2));
        assert_eq!(doubled[(2, 0)], 4.0);
    }

    #[test]
    fn row_slices() {
        let g = Grid::from_fn(3, 2, |x, y| 10 * y + x);
        assert_eq!(g.row(1), &[10, 11, 12]);
    }

    #[test]
    fn row_mut_writes_through() {
        let mut g = Grid::from_fn(3, 2, |x, y| 10 * y + x);
        g.row_mut(0).copy_from_slice(&[7, 8, 9]);
        assert_eq!(g.row(0), &[7, 8, 9]);
        assert_eq!(g.row(1), &[10, 11, 12], "other rows untouched");
        assert_eq!(g.row_mut(1).len(), g.width());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn row_mut_out_of_bounds_panics() {
        let mut g = Grid::new(3, 2, 0);
        let _ = g.row_mut(2);
    }

    #[test]
    fn rows_mut_chunks_partitions_without_aliasing() {
        let mut g = Grid::from_fn(4, 7, |x, y| 10 * y + x);
        let bands: Vec<(usize, usize)> = g
            .rows_mut_chunks(3)
            .map(|(first, band)| (first, band.len()))
            .collect();
        // 7 rows in bands of 3: rows [0,3), [3,6), [6,7).
        assert_eq!(bands, vec![(0, 12), (3, 12), (6, 4)]);
        // Each cell is visited exactly once across all bands.
        for (first_row, band) in g.rows_mut_chunks(3) {
            for (i, v) in band.iter_mut().enumerate() {
                let (x, y) = (i % 4, first_row + i / 4);
                assert_eq!(*v, 10 * y + x, "band content matches row-major layout");
                *v += 1;
            }
        }
        assert_eq!(g[(2, 6)], 63, "every cell incremented exactly once");
    }

    #[test]
    fn rows_mut_chunks_oversized_chunk_is_one_band() {
        let mut g = Grid::new(2, 3, 1u8);
        let bands: Vec<_> = g.rows_mut_chunks(100).collect();
        assert_eq!(bands.len(), 1);
        assert_eq!(bands[0].0, 0);
        assert_eq!(bands[0].1.len(), 6);
    }

    #[test]
    fn rows_mut_chunks_empty_grid_yields_nothing() {
        let mut g: Grid<u8> = Grid::new(0, 0, 0);
        assert_eq!(g.rows_mut_chunks(4).count(), 0);
        // Zero-width but non-zero-height grids also hold no cells.
        let mut thin: Grid<u8> = Grid::new(0, 5, 0);
        assert_eq!(thin.rows_mut_chunks(2).count(), 0);
    }

    #[test]
    #[should_panic(expected = "rows_per_chunk must be positive")]
    fn rows_mut_chunks_zero_rows_panics() {
        let mut g = Grid::new(2, 2, 0u8);
        let _ = g.rows_mut_chunks(0).count();
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// crop/blit round-trips arbitrary interior rectangles.
            #[test]
            fn crop_blit_roundtrip_random(
                w in 1usize..20,
                h in 1usize..20,
                fx in 0.0f64..1.0,
                fy in 0.0f64..1.0,
                fw in 0.0f64..1.0,
                fh in 0.0f64..1.0,
            ) {
                let g = Grid::from_fn(w, h, |x, y| (x * 31 + y * 7) as u32);
                let x0 = (fx * (w - 1) as f64) as usize;
                let y0 = (fy * (h - 1) as f64) as usize;
                let cw = 1 + (fw * (w - x0 - 1) as f64) as usize;
                let ch = 1 + (fh * (h - y0 - 1) as f64) as usize;
                let cropped = g.crop(x0, y0, cw, ch);
                let mut back = g.clone();
                back.blit(x0, y0, &cropped);
                prop_assert_eq!(back, g);
            }

            /// Row-major indexing is consistent with the iterator.
            #[test]
            fn iter_matches_indexing(w in 1usize..16, h in 1usize..16) {
                let g = Grid::from_fn(w, h, |x, y| x * 1000 + y);
                for (x, y, &v) in g.iter() {
                    prop_assert_eq!(v, g[(x, y)]);
                    prop_assert_eq!(g.as_slice()[g.idx(x, y)], v);
                }
            }
        }
    }

    #[test]
    fn iter_yields_coords() {
        let g = Grid::from_fn(2, 2, |x, y| x + 2 * y);
        let collected: Vec<_> = g.iter().map(|(x, y, v)| (x, y, *v)).collect();
        assert_eq!(collected, vec![(0, 0, 0), (1, 0, 1), (0, 1, 2), (1, 1, 3)]);
    }
}
