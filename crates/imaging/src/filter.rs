//! Small spatial filters used by the flow pipeline.

use crate::grid::Grid;
use crate::image::Image;

/// 3×3 median filter with clamp-to-edge boundary handling.
///
/// The standard TV-L1 robustification (Wedel et al. 2009) applies this to
/// each flow component between warps to reject outliers without blurring
/// motion boundaries.
///
/// # Examples
///
/// ```
/// use chambolle_imaging::{median3x3, Grid};
/// let mut img = Grid::new(5, 5, 0.0f32);
/// img[(2, 2)] = 100.0; // single outlier
/// let filtered = median3x3(&img);
/// assert_eq!(filtered[(2, 2)], 0.0);
/// ```
pub fn median3x3(img: &Image) -> Image {
    let (w, h) = img.dims();
    Grid::from_fn(w, h, |x, y| {
        let mut vals = [0.0f32; 9];
        let mut i = 0;
        for dy in -1i64..=1 {
            for dx in -1i64..=1 {
                let xs = (x as i64 + dx).clamp(0, w as i64 - 1) as usize;
                let ys = (y as i64 + dy).clamp(0, h as i64 - 1) as usize;
                vals[i] = img[(xs, ys)];
                i += 1;
            }
        }
        median9(vals)
    })
}

/// Median of exactly nine values (partial sort up to the middle).
fn median9(mut vals: [f32; 9]) -> f32 {
    // Selection up to index 4 is enough; nine elements keep this trivial.
    for i in 0..=4 {
        let mut min_idx = i;
        for j in (i + 1)..9 {
            if vals[j] < vals[min_idx] {
                min_idx = j;
            }
        }
        vals.swap(i, min_idx);
    }
    vals[4]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median9_of_known_sets() {
        assert_eq!(median9([1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0]), 5.0);
        assert_eq!(median9([9.0, 8.0, 7.0, 6.0, 5.0, 4.0, 3.0, 2.0, 1.0]), 5.0);
        assert_eq!(median9([1.0; 9]), 1.0);
        assert_eq!(
            median9([0.0, 0.0, 0.0, 0.0, 1.0, 1.0, 1.0, 1.0, 100.0]),
            1.0
        );
    }

    #[test]
    fn removes_isolated_outliers() {
        let mut img = Grid::new(7, 7, 1.0f32);
        img[(3, 3)] = -50.0;
        img[(0, 0)] = 50.0; // corner outlier
        let f = median3x3(&img);
        assert!(f.as_slice().iter().all(|&v| v == 1.0));
    }

    #[test]
    fn preserves_constant_and_step() {
        let img = Grid::from_fn(8, 8, |x, _| if x < 4 { 0.0f32 } else { 1.0 });
        let f = median3x3(&img);
        assert_eq!(
            f.as_slice(),
            img.as_slice(),
            "a straight edge is median-invariant"
        );
    }

    #[test]
    fn idempotent_on_smooth_data() {
        let img = Grid::from_fn(9, 9, |x, y| (x + y) as f32);
        let once = median3x3(&img);
        let twice = median3x3(&once);
        assert_eq!(once.as_slice(), twice.as_slice());
    }

    #[test]
    fn single_row_and_column_do_not_panic() {
        let row = Grid::from_fn(5, 1, |x, _| x as f32);
        let col = Grid::from_fn(1, 5, |_, y| y as f32);
        assert_eq!(median3x3(&row).dims(), (5, 1));
        assert_eq!(median3x3(&col).dims(), (1, 5));
        let one = Grid::new(1, 1, 3.0f32);
        assert_eq!(median3x3(&one)[(0, 0)], 3.0);
    }
}
