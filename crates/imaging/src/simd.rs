//! SIMD row kernels for the pooled imaging passes.
//!
//! The pooled blur, gradient and residual fills dispatch their per-row inner
//! loops on a [`SimdLevel`] (see [`chambolle_par::simd`]): the scalar bodies
//! here are the bit-exact reference, and the SSE2/AVX2 bodies replay the
//! same per-lane operation order — taps accumulate from zero in the same
//! sequence, no fused multiply-add, no reassociation — so every level
//! produces byte-identical grids. Clamped border columns and remainder
//! lanes always run the scalar body.
//!
//! Gather-bound passes (bilinear warp/resize, decimation) have no vector
//! body: their per-pixel work is dominated by data-dependent indexing, so
//! they stay scalar on every level and take no `SimdLevel` parameter.

use chambolle_par::SimdLevel;

/// The 5-tap binomial kernel (1 4 6 4 1)/16 shared by the sequential and
/// pooled blurs.
pub(crate) const BINOMIAL5: [f32; 5] = [1.0 / 16.0, 4.0 / 16.0, 6.0 / 16.0, 4.0 / 16.0, 1.0 / 16.0];

/// One output row of the horizontal binomial blur pass with clamp-to-edge
/// borders: `out[x] = Σᵢ k[i]·src[clamp(x + i − 2)]`.
pub(crate) fn blur_h_row(level: SimdLevel, src: &[f32], out: &mut [f32]) {
    debug_assert_eq!(src.len(), out.len());
    #[cfg(target_arch = "x86_64")]
    if level != SimdLevel::Scalar && out.len() >= 2 && level.is_supported() {
        match level {
            // SAFETY: `is_supported()` ran `is_x86_feature_detected!("avx2")`.
            SimdLevel::Avx2 | SimdLevel::Avx512 => unsafe { x86::blur_h_row_avx2(src, out) },
            // SAFETY: as above with `is_x86_feature_detected!("sse2")`.
            SimdLevel::Sse2 => unsafe { x86::blur_h_row_sse2(src, out) },
            SimdLevel::Scalar => unreachable!("scalar never dispatches here"),
        }
        return;
    }
    let _ = level;
    let w = src.len();
    for (x, cell) in out.iter_mut().enumerate() {
        *cell = blur_h_pixel(src, w, x);
    }
}

/// One pixel of the horizontal blur, clamped taps, fixed accumulation order.
#[inline]
fn blur_h_pixel(src: &[f32], w: usize, x: usize) -> f32 {
    let mut acc = 0.0;
    for (i, k) in BINOMIAL5.iter().enumerate() {
        let xs = (x as i64 + i as i64 - 2).clamp(0, w as i64 - 1) as usize;
        acc += k * src[xs];
    }
    acc
}

/// One output row of the vertical binomial blur pass: `out[x] = Σᵢ
/// k[i]·taps[i][x]`, where `taps` are the five clamped source rows.
pub(crate) fn blur_v_row(level: SimdLevel, taps: [&[f32]; 5], out: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    if level != SimdLevel::Scalar && out.len() >= 2 && level.is_supported() {
        match level {
            // SAFETY: `is_supported()` ran `is_x86_feature_detected!("avx2")`.
            SimdLevel::Avx2 | SimdLevel::Avx512 => unsafe { x86::blur_v_row_avx2(taps, out) },
            // SAFETY: as above with `is_x86_feature_detected!("sse2")`.
            SimdLevel::Sse2 => unsafe { x86::blur_v_row_sse2(taps, out) },
            SimdLevel::Scalar => unreachable!("scalar never dispatches here"),
        }
        return;
    }
    let _ = level;
    blur_v_suffix(taps, out, 0);
}

/// Scalar vertical-blur cells from column `x0` on (the whole row for the
/// scalar level, the remainder lanes for the vector levels).
#[inline]
fn blur_v_suffix(taps: [&[f32]; 5], out: &mut [f32], x0: usize) {
    for (x, cell) in out.iter_mut().enumerate().skip(x0) {
        let mut acc = 0.0;
        for (i, k) in BINOMIAL5.iter().enumerate() {
            acc += k * taps[i][x];
        }
        *cell = acc;
    }
}

/// One row of the central-difference gradient with clamp-to-edge borders:
/// `gx[x] = 0.5·(row[x+1] − row[x−1])`, `gy[x] = 0.5·(below[x] − above[x])`,
/// where `above`/`below` are the row-clamped neighbours.
pub(crate) fn gradient_row(
    level: SimdLevel,
    above: &[f32],
    row: &[f32],
    below: &[f32],
    gx: &mut [f32],
    gy: &mut [f32],
) {
    debug_assert_eq!(row.len(), gx.len());
    debug_assert_eq!(row.len(), gy.len());
    #[cfg(target_arch = "x86_64")]
    if level != SimdLevel::Scalar && row.len() >= 2 && level.is_supported() {
        match level {
            // SAFETY: `is_supported()` ran `is_x86_feature_detected!("avx2")`.
            SimdLevel::Avx2 | SimdLevel::Avx512 => unsafe {
                x86::gradient_row_avx2(above, row, below, gx, gy)
            },
            // SAFETY: as above with `is_x86_feature_detected!("sse2")`.
            SimdLevel::Sse2 => unsafe { x86::gradient_row_sse2(above, row, below, gx, gy) },
            SimdLevel::Scalar => unreachable!("scalar never dispatches here"),
        }
        return;
    }
    let _ = level;
    let w = row.len();
    for x in 0..w {
        gx[x] = 0.5 * (row[(x + 1).min(w - 1)] - row[x.saturating_sub(1)]);
        gy[x] = 0.5 * (below[x] - above[x]);
    }
}

/// Elementwise difference `out[i] = a[i] − b[i]` (the warp residual fill).
pub(crate) fn sub_slice(level: SimdLevel, a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), out.len());
    debug_assert_eq!(b.len(), out.len());
    #[cfg(target_arch = "x86_64")]
    if level != SimdLevel::Scalar && out.len() >= 2 && level.is_supported() {
        match level {
            // SAFETY: `is_supported()` ran `is_x86_feature_detected!("avx2")`.
            SimdLevel::Avx2 | SimdLevel::Avx512 => unsafe { x86::sub_slice_avx2(a, b, out) },
            // SAFETY: as above with `is_x86_feature_detected!("sse2")`.
            SimdLevel::Sse2 => unsafe { x86::sub_slice_sse2(a, b, out) },
            SimdLevel::Scalar => unreachable!("scalar never dispatches here"),
        }
        return;
    }
    let _ = level;
    for (cell, (&av, &bv)) in out.iter_mut().zip(a.iter().zip(b)) {
        *cell = av - bv;
    }
}

/// The x86-64 intrinsic bodies. Each replays the scalar loop above with the
/// per-lane operation order preserved exactly: taps accumulate from a zero
/// vector in the same tap sequence, subtractions and multiplies stay
/// unfused, and border columns plus remainder lanes run the scalar body.
#[cfg(target_arch = "x86_64")]
mod x86 {
    use std::arch::x86_64::*;

    use super::{blur_h_pixel, blur_v_suffix, BINOMIAL5};

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn blur_h_row_avx2(src: &[f32], out: &mut [f32]) {
        let w = src.len();
        let mut x = 0usize;
        while x < w.min(2) {
            out[x] = blur_h_pixel(src, w, x);
            x += 1;
        }
        // Lanes x..x+8 are interior when the widest tap x+2+7 stays below w.
        while x + 10 <= w {
            // SAFETY: `x ≥ 2` (head loop) and `x + 9 ≤ w − 1` bound every
            // shifted unaligned load `src[x − 2 .. x + 10]`.
            unsafe {
                let mut acc = _mm256_setzero_ps();
                for (i, k) in BINOMIAL5.iter().enumerate() {
                    let tap = _mm256_loadu_ps(src.as_ptr().add(x + i - 2));
                    acc = _mm256_add_ps(acc, _mm256_mul_ps(_mm256_set1_ps(*k), tap));
                }
                _mm256_storeu_ps(out.as_mut_ptr().add(x), acc);
            }
            x += 8;
        }
        while x < w {
            out[x] = blur_h_pixel(src, w, x);
            x += 1;
        }
    }

    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn blur_h_row_sse2(src: &[f32], out: &mut [f32]) {
        let w = src.len();
        let mut x = 0usize;
        while x < w.min(2) {
            out[x] = blur_h_pixel(src, w, x);
            x += 1;
        }
        while x + 6 <= w {
            // SAFETY: `x ≥ 2` (head loop) and `x + 5 ≤ w − 1` bound every
            // shifted unaligned load `src[x − 2 .. x + 6]`.
            unsafe {
                let mut acc = _mm_setzero_ps();
                for (i, k) in BINOMIAL5.iter().enumerate() {
                    let tap = _mm_loadu_ps(src.as_ptr().add(x + i - 2));
                    acc = _mm_add_ps(acc, _mm_mul_ps(_mm_set1_ps(*k), tap));
                }
                _mm_storeu_ps(out.as_mut_ptr().add(x), acc);
            }
            x += 4;
        }
        while x < w {
            out[x] = blur_h_pixel(src, w, x);
            x += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn blur_v_row_avx2(taps: [&[f32]; 5], out: &mut [f32]) {
        let w = out.len();
        let mut x = 0usize;
        while x + 8 <= w {
            // SAFETY: `x + 8 <= w` bounds the unaligned loads on every tap
            // row (all five have length `w`).
            unsafe {
                let mut acc = _mm256_setzero_ps();
                for (i, k) in BINOMIAL5.iter().enumerate() {
                    let tap = _mm256_loadu_ps(taps[i].as_ptr().add(x));
                    acc = _mm256_add_ps(acc, _mm256_mul_ps(_mm256_set1_ps(*k), tap));
                }
                _mm256_storeu_ps(out.as_mut_ptr().add(x), acc);
            }
            x += 8;
        }
        blur_v_suffix(taps, out, x);
    }

    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn blur_v_row_sse2(taps: [&[f32]; 5], out: &mut [f32]) {
        let w = out.len();
        let mut x = 0usize;
        while x + 4 <= w {
            // SAFETY: `x + 4 <= w` bounds the unaligned loads on every tap
            // row (all five have length `w`).
            unsafe {
                let mut acc = _mm_setzero_ps();
                for (i, k) in BINOMIAL5.iter().enumerate() {
                    let tap = _mm_loadu_ps(taps[i].as_ptr().add(x));
                    acc = _mm_add_ps(acc, _mm_mul_ps(_mm_set1_ps(*k), tap));
                }
                _mm_storeu_ps(out.as_mut_ptr().add(x), acc);
            }
            x += 4;
        }
        blur_v_suffix(taps, out, x);
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn gradient_row_avx2(
        above: &[f32],
        row: &[f32],
        below: &[f32],
        gx: &mut [f32],
        gy: &mut [f32],
    ) {
        let w = row.len();
        let half = _mm256_set1_ps(0.5);
        gx[0] = 0.5 * (row[1] - row[0]);
        let mut x = 1usize;
        while x + 8 < w {
            // SAFETY: `x ≥ 1` and `x + 8 ≤ w − 1` bound the shifted
            // unaligned loads `row[x − 1 .. x + 9]`.
            unsafe {
                let d = _mm256_sub_ps(
                    _mm256_loadu_ps(row.as_ptr().add(x + 1)),
                    _mm256_loadu_ps(row.as_ptr().add(x - 1)),
                );
                _mm256_storeu_ps(gx.as_mut_ptr().add(x), _mm256_mul_ps(half, d));
            }
            x += 8;
        }
        while x < w - 1 {
            gx[x] = 0.5 * (row[x + 1] - row[x - 1]);
            x += 1;
        }
        gx[w - 1] = 0.5 * (row[w - 1] - row[w - 2]);
        let mut x = 0usize;
        while x + 8 <= w {
            // SAFETY: `x + 8 <= w` bounds the loads; `above`/`below` have
            // length `w`.
            unsafe {
                let d = _mm256_sub_ps(
                    _mm256_loadu_ps(below.as_ptr().add(x)),
                    _mm256_loadu_ps(above.as_ptr().add(x)),
                );
                _mm256_storeu_ps(gy.as_mut_ptr().add(x), _mm256_mul_ps(half, d));
            }
            x += 8;
        }
        while x < w {
            gy[x] = 0.5 * (below[x] - above[x]);
            x += 1;
        }
    }

    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn gradient_row_sse2(
        above: &[f32],
        row: &[f32],
        below: &[f32],
        gx: &mut [f32],
        gy: &mut [f32],
    ) {
        let w = row.len();
        let half = _mm_set1_ps(0.5);
        gx[0] = 0.5 * (row[1] - row[0]);
        let mut x = 1usize;
        while x + 4 < w {
            // SAFETY: `x ≥ 1` and `x + 4 ≤ w − 1` bound the shifted
            // unaligned loads `row[x − 1 .. x + 5]`.
            unsafe {
                let d = _mm_sub_ps(
                    _mm_loadu_ps(row.as_ptr().add(x + 1)),
                    _mm_loadu_ps(row.as_ptr().add(x - 1)),
                );
                _mm_storeu_ps(gx.as_mut_ptr().add(x), _mm_mul_ps(half, d));
            }
            x += 4;
        }
        while x < w - 1 {
            gx[x] = 0.5 * (row[x + 1] - row[x - 1]);
            x += 1;
        }
        gx[w - 1] = 0.5 * (row[w - 1] - row[w - 2]);
        let mut x = 0usize;
        while x + 4 <= w {
            // SAFETY: `x + 4 <= w` bounds the loads; `above`/`below` have
            // length `w`.
            unsafe {
                let d = _mm_sub_ps(
                    _mm_loadu_ps(below.as_ptr().add(x)),
                    _mm_loadu_ps(above.as_ptr().add(x)),
                );
                _mm_storeu_ps(gy.as_mut_ptr().add(x), _mm_mul_ps(half, d));
            }
            x += 4;
        }
        while x < w {
            gy[x] = 0.5 * (below[x] - above[x]);
            x += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn sub_slice_avx2(a: &[f32], b: &[f32], out: &mut [f32]) {
        let n = out.len();
        let mut i = 0usize;
        while i + 8 <= n {
            // SAFETY: `i + 8 <= n` bounds the loads; `a`/`b` have length `n`.
            unsafe {
                let d = _mm256_sub_ps(
                    _mm256_loadu_ps(a.as_ptr().add(i)),
                    _mm256_loadu_ps(b.as_ptr().add(i)),
                );
                _mm256_storeu_ps(out.as_mut_ptr().add(i), d);
            }
            i += 8;
        }
        while i < n {
            out[i] = a[i] - b[i];
            i += 1;
        }
    }

    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn sub_slice_sse2(a: &[f32], b: &[f32], out: &mut [f32]) {
        let n = out.len();
        let mut i = 0usize;
        while i + 4 <= n {
            // SAFETY: `i + 4 <= n` bounds the loads; `a`/`b` have length `n`.
            unsafe {
                let d = _mm_sub_ps(
                    _mm_loadu_ps(a.as_ptr().add(i)),
                    _mm_loadu_ps(b.as_ptr().add(i)),
                );
                _mm_storeu_ps(out.as_mut_ptr().add(i), d);
            }
            i += 4;
        }
        while i < n {
            out[i] = a[i] - b[i];
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn vector_levels() -> Vec<SimdLevel> {
        [SimdLevel::Sse2, SimdLevel::Avx2, SimdLevel::Avx512]
            .into_iter()
            .filter(SimdLevel::is_supported)
            .collect()
    }

    fn random_row(w: usize, seed: u64) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..w).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
    }

    fn bits(v: &[f32]) -> Vec<u32> {
        v.iter().map(|f| f.to_bits()).collect()
    }

    #[test]
    fn blur_rows_bit_identical_across_levels_and_widths() {
        for w in [1usize, 2, 3, 4, 5, 7, 8, 9, 11, 16, 31, 64, 129] {
            let src = random_row(w, w as u64);
            let taps_data: Vec<Vec<f32>> = (0..5).map(|i| random_row(w, 100 + i)).collect();
            let taps: [&[f32]; 5] = std::array::from_fn(|i| taps_data[i].as_slice());
            let mut h_ref = vec![0.0f32; w];
            let mut v_ref = vec![0.0f32; w];
            blur_h_row(SimdLevel::Scalar, &src, &mut h_ref);
            blur_v_row(SimdLevel::Scalar, taps, &mut v_ref);
            for level in vector_levels() {
                let mut h = vec![0.0f32; w];
                let mut v = vec![0.0f32; w];
                blur_h_row(level, &src, &mut h);
                blur_v_row(level, taps, &mut v);
                assert_eq!(bits(&h), bits(&h_ref), "{level:?} blur_h w={w}");
                assert_eq!(bits(&v), bits(&v_ref), "{level:?} blur_v w={w}");
            }
        }
    }

    #[test]
    fn gradient_rows_bit_identical_across_levels_and_widths() {
        for w in [1usize, 2, 3, 4, 5, 7, 8, 9, 11, 16, 31, 64, 129] {
            let above = random_row(w, 1 + w as u64);
            let row = random_row(w, 2 + w as u64);
            let below = random_row(w, 3 + w as u64);
            let (mut gx_ref, mut gy_ref) = (vec![0.0f32; w], vec![0.0f32; w]);
            gradient_row(
                SimdLevel::Scalar,
                &above,
                &row,
                &below,
                &mut gx_ref,
                &mut gy_ref,
            );
            for level in vector_levels() {
                let (mut gx, mut gy) = (vec![0.0f32; w], vec![0.0f32; w]);
                gradient_row(level, &above, &row, &below, &mut gx, &mut gy);
                assert_eq!(bits(&gx), bits(&gx_ref), "{level:?} gx w={w}");
                assert_eq!(bits(&gy), bits(&gy_ref), "{level:?} gy w={w}");
            }
        }
    }

    #[test]
    fn sub_slice_bit_identical_across_levels() {
        for n in [1usize, 3, 4, 7, 8, 9, 33, 100] {
            let a = random_row(n, 5 + n as u64);
            let b = random_row(n, 6 + n as u64);
            let mut reference = vec![0.0f32; n];
            sub_slice(SimdLevel::Scalar, &a, &b, &mut reference);
            for level in vector_levels() {
                let mut out = vec![0.0f32; n];
                sub_slice(level, &a, &b, &mut out);
                assert_eq!(bits(&out), bits(&reference), "{level:?} n={n}");
            }
        }
    }

    #[test]
    fn negative_zero_survives_every_level() {
        // 0.5·(a − b) with a == b yields +0.0; with b > a == 0 the sign must
        // match the scalar subtraction on every level.
        let row = vec![0.0f32, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        for level in vector_levels() {
            let (mut gx, mut gy) = (vec![1.0f32; 10], vec![1.0f32; 10]);
            gradient_row(level, &row, &row, &row, &mut gx, &mut gy);
            let (mut gx_ref, mut gy_ref) = (vec![1.0f32; 10], vec![1.0f32; 10]);
            gradient_row(
                SimdLevel::Scalar,
                &row,
                &row,
                &row,
                &mut gx_ref,
                &mut gy_ref,
            );
            assert_eq!(bits(&gx), bits(&gx_ref), "{level:?}");
            assert_eq!(bits(&gy), bits(&gy_ref), "{level:?}");
        }
    }
}
