//! Image substrate for the Chambolle / TV-L1 reproduction.
//!
//! This crate provides everything the solver stack needs that is *about
//! images* rather than about the algorithm itself:
//!
//! - [`Grid`] — the dense row-major 2-D container shared by all crates;
//! - sampling, warping ([`warp_backward`], [`WarpLinearization`]) and
//!   gradients ([`gradient_central`]); the pooled blur/gradient/residual
//!   variants additionally dispatch their row loops on a
//!   [`chambolle_par::SimdLevel`], bit-identical at every level;
//! - Gaussian [`Pyramid`]s for the coarse-to-fine outer loop;
//! - [`FlowField`] plus error metrics and Middlebury colorization;
//! - synthetic scenes with analytic ground truth ([`synthetic`]), including
//!   the rolling-shutter capture model the paper's introduction motivates;
//! - binary PGM/PPM I/O ([`io`]).
//!
//! # Examples
//!
//! Render a moving synthetic scene and measure how far a zero-flow guess is
//! from the truth:
//!
//! ```
//! use chambolle_imaging::{
//!     average_endpoint_error, render_pair, FlowField, Motion, NoiseTexture,
//! };
//!
//! let scene = NoiseTexture::new(42);
//! let pair = render_pair(&scene, 64, 48, Motion::Translation { du: 2.0, dv: 0.0 });
//! let zero = FlowField::zeros(64, 48);
//! assert!((average_endpoint_error(&zero, &pair.truth) - 2.0).abs() < 1e-6);
//! ```

#![warn(missing_docs)]

mod filter;
mod flow;
mod grid;
mod image;
pub mod io;
mod pyramid;
mod simd;
pub mod synthetic;
mod warp;

pub use filter::median3x3;
pub use flow::{
    average_angular_error, average_endpoint_error, colorize_flow, ColorWheel, FlowField, RgbImage,
};
pub use grid::{Grid, GridShapeError};
pub use image::{
    gradient_central, gradient_central_with_pool, min_max, mse, normalize, psnr, sample_bilinear,
    sample_clamped, ssim, Image,
};
pub use io::{
    read_flo, read_flo_from, read_pgm, read_pgm_from, read_ppm, read_ppm_from, write_flo,
    write_pgm, write_ppm, PnmError,
};
pub use pyramid::{
    blur_binomial5, blur_binomial5_with_pool, downsample_half, downsample_half_with_pool,
    resize_bilinear, resize_bilinear_with_pool, upsample_flow_component, Pyramid,
};
pub use synthetic::{
    global_shutter_frame, render_pair, render_sequence, rolling_shutter_frame, DiskScene,
    FramePair, Motion, NoiseTexture, Scene, SineBoard,
};
pub use warp::{warp_backward, warp_backward_with_pool, WarpLinearization};
