//! Synthetic scenes with analytic ground-truth motion.
//!
//! The paper evaluates on pre-loaded frames whose content is irrelevant to
//! the cycle counts; for accuracy experiments we need pairs of frames with a
//! *known* flow field. A [`Scene`] is a continuous intensity function that can
//! be sampled at any real coordinate, so frames under any smooth motion model
//! (and rolling-shutter capture) can be rendered without resampling error.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::flow::FlowField;
use crate::grid::Grid;
use crate::image::Image;

/// A continuous grayscale scene: intensity as a function of real coordinates.
///
/// Implementations should return values in `[0, 1]` and be smooth enough to
/// sample without aliasing at unit pixel pitch.
pub trait Scene {
    /// Intensity at the continuous position `(x, y)`.
    fn sample(&self, x: f32, y: f32) -> f32;

    /// Renders a `width × height` frame of the scene, with the pixel `(i, j)`
    /// sampling the scene at `(i, j)`.
    fn render(&self, width: usize, height: usize) -> Image
    where
        Self: Sized,
    {
        Grid::from_fn(width, height, |x, y| self.sample(x as f32, y as f32))
    }
}

/// Multi-octave value noise: smooth random texture with content at several
/// spatial frequencies, so the optical-flow data term is well conditioned
/// everywhere.
///
/// # Examples
///
/// ```
/// use chambolle_imaging::{NoiseTexture, Scene};
/// let tex = NoiseTexture::new(42);
/// let img = tex.render(32, 32);
/// assert!(img.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
/// ```
#[derive(Debug, Clone)]
pub struct NoiseTexture {
    lattices: Vec<(f32, Grid<f32>)>, // (cell size, lattice values)
    amplitude_sum: f32,
}

impl NoiseTexture {
    /// Lattice extent per octave; coordinates wrap, so the texture is
    /// periodic with period `cell_size * LATTICE` pixels.
    const LATTICE: usize = 64;

    /// Builds a three-octave texture (cell sizes 16, 8, 4 px) from a seed.
    pub fn new(seed: u64) -> Self {
        Self::with_octaves(seed, &[(16.0, 1.0), (8.0, 0.5), (4.0, 0.25)])
    }

    /// Builds a texture from explicit `(cell_size_px, amplitude)` octaves.
    ///
    /// # Panics
    ///
    /// Panics if `octaves` is empty or a cell size is not positive.
    pub fn with_octaves(seed: u64, octaves: &[(f32, f32)]) -> Self {
        assert!(!octaves.is_empty(), "need at least one octave");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut lattices = Vec::with_capacity(octaves.len());
        let mut amplitude_sum = 0.0;
        for &(cell, amp) in octaves {
            assert!(cell > 0.0, "octave cell size must be positive");
            let lattice =
                Grid::from_fn(Self::LATTICE, Self::LATTICE, |_, _| rng.gen::<f32>() * amp);
            amplitude_sum += amp;
            lattices.push((cell, lattice));
        }
        NoiseTexture {
            lattices,
            amplitude_sum,
        }
    }

    fn octave(&self, lattice: &Grid<f32>, cell: f32, x: f32, y: f32) -> f32 {
        let n = Self::LATTICE as i64;
        let gx = x / cell;
        let gy = y / cell;
        let x0 = gx.floor();
        let y0 = gy.floor();
        let fx = gx - x0;
        let fy = gy - y0;
        // Smoothstep weights remove lattice-aligned gradient discontinuities.
        let sx = fx * fx * (3.0 - 2.0 * fx);
        let sy = fy * fy * (3.0 - 2.0 * fy);
        let wrap = |v: i64| (v.rem_euclid(n)) as usize;
        let x0 = x0 as i64;
        let y0 = y0 as i64;
        let v00 = lattice[(wrap(x0), wrap(y0))];
        let v10 = lattice[(wrap(x0 + 1), wrap(y0))];
        let v01 = lattice[(wrap(x0), wrap(y0 + 1))];
        let v11 = lattice[(wrap(x0 + 1), wrap(y0 + 1))];
        let top = v00 + sx * (v10 - v00);
        let bot = v01 + sx * (v11 - v01);
        top + sy * (bot - top)
    }
}

impl Scene for NoiseTexture {
    fn sample(&self, x: f32, y: f32) -> f32 {
        let mut acc = 0.0;
        for (cell, lattice) in &self.lattices {
            acc += self.octave(lattice, *cell, x, y);
        }
        acc / self.amplitude_sum
    }
}

/// A smooth pseudo-checkerboard (product of sinusoids), useful when a strictly
/// periodic, analytically differentiable scene is wanted.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SineBoard {
    /// Spatial period in pixels.
    pub period: f32,
}

impl SineBoard {
    /// Creates a board with the given period (pixels).
    ///
    /// # Panics
    ///
    /// Panics if `period` is not positive.
    pub fn new(period: f32) -> Self {
        assert!(period > 0.0, "period must be positive");
        SineBoard { period }
    }
}

impl Scene for SineBoard {
    fn sample(&self, x: f32, y: f32) -> f32 {
        let k = std::f32::consts::TAU / self.period;
        0.5 + 0.25 * ((k * x).sin() + (k * y).sin())
    }
}

/// A textured background with a brighter moving disk — the "object moving over
/// a scene" workload that motivates motion estimation in the paper's intro.
#[derive(Debug, Clone)]
pub struct DiskScene {
    background: NoiseTexture,
    /// Disk center.
    pub cx: f32,
    /// Disk center.
    pub cy: f32,
    /// Disk radius in pixels.
    pub radius: f32,
}

impl DiskScene {
    /// Creates a disk of `radius` centered at `(cx, cy)` over a seeded
    /// noise background.
    pub fn new(seed: u64, cx: f32, cy: f32, radius: f32) -> Self {
        DiskScene {
            background: NoiseTexture::new(seed),
            cx,
            cy,
            radius,
        }
    }
}

impl Scene for DiskScene {
    fn sample(&self, x: f32, y: f32) -> f32 {
        let base = 0.6 * self.background.sample(x, y);
        let d = ((x - self.cx).powi(2) + (y - self.cy).powi(2)).sqrt();
        // Soft 1.5 px edge keeps the scene band-limited.
        let edge = ((self.radius - d) / 1.5).clamp(0.0, 1.0);
        base + edge * (1.0 - base) * 0.9
    }
}

/// A smooth parametric motion model with an exact inverse, used to render
/// frame pairs and their ground-truth flow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Motion {
    /// Uniform translation by `(du, dv)` pixels per frame.
    Translation {
        /// Horizontal displacement.
        du: f32,
        /// Vertical displacement.
        dv: f32,
    },
    /// Rotation by `angle` radians about `(cx, cy)` combined with scaling by
    /// `scale` (1.0 = none) — a similarity transform, exactly invertible.
    Similarity {
        /// Center of rotation/zoom.
        cx: f32,
        /// Center of rotation/zoom.
        cy: f32,
        /// Rotation angle per frame (radians).
        angle: f32,
        /// Zoom factor per frame.
        scale: f32,
    },
}

impl Motion {
    /// Where the scene point at `(x, y)` in frame 0 appears in frame 1.
    pub fn forward(&self, x: f32, y: f32) -> (f32, f32) {
        match *self {
            Motion::Translation { du, dv } => (x + du, y + dv),
            Motion::Similarity {
                cx,
                cy,
                angle,
                scale,
            } => {
                let (s, c) = angle.sin_cos();
                let rx = x - cx;
                let ry = y - cy;
                (
                    cx + scale * (c * rx - s * ry),
                    cy + scale * (s * rx + c * ry),
                )
            }
        }
    }

    /// Exact inverse of [`Motion::forward`].
    pub fn inverse(&self, x: f32, y: f32) -> (f32, f32) {
        match *self {
            Motion::Translation { du, dv } => (x - du, y - dv),
            Motion::Similarity {
                cx,
                cy,
                angle,
                scale,
            } => {
                let (s, c) = angle.sin_cos();
                let rx = (x - cx) / scale;
                let ry = (y - cy) / scale;
                (cx + c * rx + s * ry, cy + (-s) * rx + c * ry)
            }
        }
    }

    /// The motion applied `k` times (translations add, same-center
    /// similarities compose their angles and scales).
    pub fn iterate(&self, k: u32) -> Motion {
        match *self {
            Motion::Translation { du, dv } => Motion::Translation {
                du: du * k as f32,
                dv: dv * k as f32,
            },
            Motion::Similarity {
                cx,
                cy,
                angle,
                scale,
            } => Motion::Similarity {
                cx,
                cy,
                angle: angle * k as f32,
                scale: scale.powi(k as i32),
            },
        }
    }

    /// Ground-truth TV-L1 flow for this motion on a `width × height` frame.
    ///
    /// TV-L1's data term matches `I1(x + u(x)) = I0(x)`; since
    /// `I1(q) = scene(inverse(q))` and `I0(p) = scene(p)`, the true flow is
    /// `u(x) = forward(x) - x`.
    pub fn ground_truth(&self, width: usize, height: usize) -> FlowField {
        FlowField::from_fn(width, height, |x, y| {
            let (fx, fy) = self.forward(x as f32, y as f32);
            (fx - x as f32, fy - y as f32)
        })
    }
}

/// A rendered frame pair with its analytic ground-truth flow.
#[derive(Debug, Clone)]
pub struct FramePair {
    /// Frame at time 0.
    pub i0: Image,
    /// Frame at time 1.
    pub i1: Image,
    /// Ground-truth flow satisfying `i1(x + u) = i0(x)` (up to sampling).
    pub truth: FlowField,
}

/// Renders two frames of `scene` under `motion` plus the exact flow field.
///
/// Frame 0 samples the scene directly; frame 1 samples the scene through the
/// inverse motion, so brightness constancy holds exactly (no resampling
/// blur is introduced).
pub fn render_pair(scene: &impl Scene, width: usize, height: usize, motion: Motion) -> FramePair {
    let i0 = scene.render(width, height);
    let i1 = Grid::from_fn(width, height, |x, y| {
        let (sx, sy) = motion.inverse(x as f32, y as f32);
        scene.sample(sx, sy)
    });
    FramePair {
        i0,
        i1,
        truth: motion.ground_truth(width, height),
    }
}

/// Renders `frames` consecutive frames of a scene under a constant motion:
/// frame `t` samples the scene through the inverse of `motion` applied `t`
/// times, so the ground-truth flow between *any* two consecutive frames is
/// `motion.ground_truth(..)`.
///
/// # Panics
///
/// Panics if `frames == 0`.
pub fn render_sequence(
    scene: &impl Scene,
    width: usize,
    height: usize,
    motion: Motion,
    frames: usize,
) -> Vec<Image> {
    assert!(frames > 0, "need at least one frame");
    (0..frames)
        .map(|t| {
            let m = motion.iterate(t as u32);
            Grid::from_fn(width, height, |x, y| {
                let (sx, sy) = m.inverse(x as f32, y as f32);
                scene.sample(sx, sy)
            })
        })
        .collect()
}

/// Rolling-shutter capture of a scene translating at `(vx, vy)` pixels per
/// frame time: row `y` is exposed at time `t0 + y * row_delay` (frame times),
/// so each row samples the scene at a different phase of the motion.
///
/// `row_delay = 1 / height` models a shutter that takes one full frame time
/// to sweep the sensor.
pub fn rolling_shutter_frame(
    scene: &impl Scene,
    width: usize,
    height: usize,
    vx: f32,
    vy: f32,
    row_delay: f32,
    t0: f32,
) -> Image {
    Grid::from_fn(width, height, |x, y| {
        let t = t0 + y as f32 * row_delay;
        scene.sample(x as f32 - vx * t, y as f32 - vy * t)
    })
}

/// Global-shutter capture of the same translating scene at time `t0`
/// (the distortion-free reference for rolling-shutter correction).
pub fn global_shutter_frame(
    scene: &impl Scene,
    width: usize,
    height: usize,
    vx: f32,
    vy: f32,
    t0: f32,
) -> Image {
    Grid::from_fn(width, height, |x, y| {
        scene.sample(x as f32 - vx * t0, y as f32 - vy * t0)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noise_is_deterministic_per_seed() {
        let a = NoiseTexture::new(7).render(16, 16);
        let b = NoiseTexture::new(7).render(16, 16);
        let c = NoiseTexture::new(8).render(16, 16);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn noise_in_unit_range_and_non_constant() {
        let img = NoiseTexture::new(1).render(64, 64);
        assert!(img.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
        let (lo, hi) = crate::image::min_max(&img);
        assert!(
            hi - lo > 0.1,
            "texture should have contrast, got {lo}..{hi}"
        );
    }

    #[test]
    fn noise_is_smooth_at_pixel_pitch() {
        let tex = NoiseTexture::new(3);
        for i in 0..50 {
            let x = i as f32 * 1.3 + 0.2;
            let d = (tex.sample(x + 0.5, 10.0) - tex.sample(x, 10.0)).abs();
            assert!(d < 0.5, "jump of {d} at x={x}");
        }
    }

    #[test]
    fn motion_inverse_roundtrip() {
        let motions = [
            Motion::Translation { du: 3.25, dv: -1.5 },
            Motion::Similarity {
                cx: 10.0,
                cy: 20.0,
                angle: 0.3,
                scale: 1.1,
            },
        ];
        for m in motions {
            for &(x, y) in &[(0.0, 0.0), (5.5, -2.0), (31.0, 17.0)] {
                let (fx, fy) = m.forward(x, y);
                let (bx, by) = m.inverse(fx, fy);
                assert!((bx - x).abs() < 1e-4 && (by - y).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn translation_ground_truth_is_constant() {
        let gt = Motion::Translation { du: 2.0, dv: -1.0 }.ground_truth(8, 8);
        assert!(gt.u1.as_slice().iter().all(|&v| (v - 2.0).abs() < 1e-6));
        assert!(gt.u2.as_slice().iter().all(|&v| (v + 1.0).abs() < 1e-6));
    }

    #[test]
    fn render_pair_satisfies_brightness_constancy() {
        let scene = NoiseTexture::new(11);
        let motion = Motion::Translation { du: 1.5, dv: 0.75 };
        let pair = render_pair(&scene, 32, 32, motion);
        // I1(x + u) == I0(x) exactly, because both sample the same continuous
        // scene point (check via direct scene evaluation at warped coords).
        for y in (0..32).step_by(5) {
            for x in (0..32).step_by(5) {
                let (u, v) = pair.truth.at(x, y);
                let i1_at = scene.sample(x as f32 + u - 1.5, y as f32 + v - 0.75);
                assert!((i1_at - pair.i0[(x, y)]).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn similarity_flow_is_zero_at_center() {
        let m = Motion::Similarity {
            cx: 16.0,
            cy: 16.0,
            angle: 0.1,
            scale: 1.0,
        };
        let gt = m.ground_truth(33, 33);
        let (u, v) = gt.at(16, 16);
        assert!(u.abs() < 1e-5 && v.abs() < 1e-5);
        // Off-center the rotation induces motion.
        let (u, v) = gt.at(30, 16);
        assert!((u * u + v * v).sqrt() > 0.5);
    }

    #[test]
    fn motion_iterate_composes() {
        let t = Motion::Translation { du: 1.5, dv: -0.5 };
        assert_eq!(t.iterate(3), Motion::Translation { du: 4.5, dv: -1.5 });
        let s = Motion::Similarity {
            cx: 4.0,
            cy: 4.0,
            angle: 0.1,
            scale: 1.1,
        };
        let s2 = s.iterate(2);
        // iterate(2) must equal forward twice.
        let (x1, y1) = s.forward(7.0, 2.0);
        let (x2, y2) = s.forward(x1, y1);
        let (xi, yi) = s2.forward(7.0, 2.0);
        assert!((x2 - xi).abs() < 1e-4 && (y2 - yi).abs() < 1e-4);
        assert_eq!(s.iterate(0).forward(3.0, 9.0), (3.0, 9.0));
    }

    #[test]
    fn sequence_has_time_invariant_flow() {
        let scene = NoiseTexture::new(6);
        let motion = Motion::Translation { du: 1.0, dv: 0.5 };
        let seq = render_sequence(&scene, 24, 24, motion, 4);
        assert_eq!(seq.len(), 4);
        assert_eq!(seq[0], scene.render(24, 24));
        // frame_{t+1}(x + u) == frame_t(x): check via direct scene sampling.
        for (t, frame) in seq.iter().enumerate().take(3) {
            for &(x, y) in &[(5usize, 5usize), (12, 18)] {
                let expect = frame[(x, y)];
                let m_next = motion.iterate(t as u32 + 1);
                let (sx, sy) = m_next.inverse(x as f32 + 1.0, y as f32 + 0.5);
                assert!((scene.sample(sx, sy) - expect).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn rolling_shutter_skews_rows() {
        let scene = SineBoard::new(16.0);
        let rs = rolling_shutter_frame(&scene, 32, 32, 8.0, 0.0, 1.0 / 32.0, 0.0);
        let gs = global_shutter_frame(&scene, 32, 32, 8.0, 0.0, 0.0);
        // Row 0 is captured at t=0 -> identical to global shutter.
        assert_eq!(rs.row(0), gs.row(0));
        // The last row is captured almost a frame later -> differs.
        let diff: f32 = rs
            .row(31)
            .iter()
            .zip(gs.row(31))
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(diff > 1.0, "expected skew on late rows, diff={diff}");
    }

    #[test]
    fn disk_scene_brightens_center() {
        let scene = DiskScene::new(5, 16.0, 16.0, 6.0);
        let inside = scene.sample(16.0, 16.0);
        let outside = scene.sample(2.0, 2.0);
        assert!(inside > 0.8);
        assert!(inside > outside);
    }

    #[test]
    fn sineboard_range() {
        let s = SineBoard::new(8.0);
        for i in 0..100 {
            let v = s.sample(i as f32 * 0.37, i as f32 * 0.61);
            assert!((0.0..=1.0).contains(&v));
        }
    }
}
