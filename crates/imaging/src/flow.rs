//! Optical-flow fields, error metrics and Middlebury-style visualization.

use crate::grid::Grid;
use crate::image::Image;

/// A dense 2-D optical-flow field `u = (u1, u2)`.
///
/// `u1` is the horizontal displacement (pixels, positive right) and `u2` the
/// vertical displacement (positive down), matching the paper's
/// `u = (u1, u2)` output.
///
/// # Examples
///
/// ```
/// use chambolle_imaging::FlowField;
/// let flow = FlowField::constant(8, 8, 1.5, -0.5);
/// assert_eq!(flow.at(3, 3), (1.5, -0.5));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FlowField {
    /// Horizontal displacement component.
    pub u1: Image,
    /// Vertical displacement component.
    pub u2: Image,
}

impl FlowField {
    /// Creates a zero flow field.
    pub fn zeros(width: usize, height: usize) -> Self {
        FlowField {
            u1: Grid::new(width, height, 0.0),
            u2: Grid::new(width, height, 0.0),
        }
    }

    /// Creates a flow field with the same displacement everywhere.
    pub fn constant(width: usize, height: usize, du: f32, dv: f32) -> Self {
        FlowField {
            u1: Grid::new(width, height, du),
            u2: Grid::new(width, height, dv),
        }
    }

    /// Creates a flow field by evaluating `f(x, y) -> (u1, u2)`.
    pub fn from_fn(
        width: usize,
        height: usize,
        mut f: impl FnMut(usize, usize) -> (f32, f32),
    ) -> Self {
        let mut u1 = Grid::new(width, height, 0.0);
        let mut u2 = Grid::new(width, height, 0.0);
        for y in 0..height {
            for x in 0..width {
                let (a, b) = f(x, y);
                u1[(x, y)] = a;
                u2[(x, y)] = b;
            }
        }
        FlowField { u1, u2 }
    }

    /// Wraps two equally-sized component images.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn from_components(u1: Image, u2: Image) -> Self {
        assert_eq!(u1.dims(), u2.dims(), "flow components must match in size");
        FlowField { u1, u2 }
    }

    /// Field width.
    pub fn width(&self) -> usize {
        self.u1.width()
    }

    /// Field height.
    pub fn height(&self) -> usize {
        self.u1.height()
    }

    /// `(width, height)`.
    pub fn dims(&self) -> (usize, usize) {
        self.u1.dims()
    }

    /// The displacement vector at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn at(&self, x: usize, y: usize) -> (f32, f32) {
        (self.u1[(x, y)], self.u2[(x, y)])
    }

    /// The largest displacement magnitude in the field.
    pub fn max_magnitude(&self) -> f32 {
        self.u1
            .as_slice()
            .iter()
            .zip(self.u2.as_slice())
            .map(|(&a, &b)| (a * a + b * b).sqrt())
            .fold(0.0, f32::max)
    }

    /// Mean displacement vector over the whole field.
    pub fn mean(&self) -> (f32, f32) {
        if self.u1.is_empty() {
            return (0.0, 0.0);
        }
        let n = self.u1.len() as f64;
        let s1: f64 = self.u1.as_slice().iter().map(|&v| v as f64).sum();
        let s2: f64 = self.u2.as_slice().iter().map(|&v| v as f64).sum();
        ((s1 / n) as f32, (s2 / n) as f32)
    }
}

/// Average endpoint error (AEE) between an estimate and the ground truth:
/// the mean Euclidean distance between flow vectors.
///
/// # Panics
///
/// Panics if dimensions differ.
pub fn average_endpoint_error(estimate: &FlowField, truth: &FlowField) -> f64 {
    assert_eq!(
        estimate.dims(),
        truth.dims(),
        "flow fields must match in size"
    );
    if estimate.u1.is_empty() {
        return 0.0;
    }
    let mut sum = 0.0f64;
    for i in 0..estimate.u1.len() {
        let d1 = (estimate.u1.as_slice()[i] - truth.u1.as_slice()[i]) as f64;
        let d2 = (estimate.u2.as_slice()[i] - truth.u2.as_slice()[i]) as f64;
        sum += (d1 * d1 + d2 * d2).sqrt();
    }
    sum / estimate.u1.len() as f64
}

/// Average angular error (AAE, radians) between an estimate and the ground
/// truth, using the standard 3-D augmented-vector formulation of Barron et al.
///
/// # Panics
///
/// Panics if dimensions differ.
pub fn average_angular_error(estimate: &FlowField, truth: &FlowField) -> f64 {
    assert_eq!(
        estimate.dims(),
        truth.dims(),
        "flow fields must match in size"
    );
    if estimate.u1.is_empty() {
        return 0.0;
    }
    let mut sum = 0.0f64;
    for i in 0..estimate.u1.len() {
        let (e1, e2) = (
            estimate.u1.as_slice()[i] as f64,
            estimate.u2.as_slice()[i] as f64,
        );
        let (t1, t2) = (truth.u1.as_slice()[i] as f64, truth.u2.as_slice()[i] as f64);
        let num = e1 * t1 + e2 * t2 + 1.0;
        let den = ((e1 * e1 + e2 * e2 + 1.0) * (t1 * t1 + t2 * t2 + 1.0)).sqrt();
        sum += (num / den).clamp(-1.0, 1.0).acos();
    }
    sum / estimate.u1.len() as f64
}

/// An 8-bit RGB raster, used for flow visualization output.
pub type RgbImage = Grid<[u8; 3]>;

/// Renders a flow field with the Middlebury color wheel: hue encodes flow
/// direction and saturation encodes magnitude relative to `max_magnitude`
/// (pass `None` to normalize by the field's own maximum).
///
/// # Examples
///
/// ```
/// use chambolle_imaging::{colorize_flow, FlowField};
/// let flow = FlowField::constant(4, 4, 1.0, 0.0);
/// let rgb = colorize_flow(&flow, None);
/// assert_eq!(rgb.dims(), (4, 4));
/// ```
pub fn colorize_flow(flow: &FlowField, max_magnitude: Option<f32>) -> RgbImage {
    let max_mag = match max_magnitude {
        Some(m) if m > 0.0 => m,
        _ => flow.max_magnitude().max(f32::MIN_POSITIVE),
    };
    let wheel = ColorWheel::middlebury();
    Grid::from_fn(flow.width(), flow.height(), |x, y| {
        let (u, v) = flow.at(x, y);
        wheel.color(u / max_mag, v / max_mag)
    })
}

/// The Middlebury flow color wheel (55 hues across 6 color arcs).
#[derive(Debug, Clone)]
pub struct ColorWheel {
    colors: Vec<[f32; 3]>,
}

impl ColorWheel {
    /// Builds the canonical 55-entry Middlebury wheel
    /// (RY 15, YG 6, GC 4, CB 11, BM 13, MR 6).
    pub fn middlebury() -> Self {
        const ARCS: [(usize, [f32; 3], [f32; 3]); 6] = [
            (15, [1.0, 0.0, 0.0], [1.0, 1.0, 0.0]),
            (6, [1.0, 1.0, 0.0], [0.0, 1.0, 0.0]),
            (4, [0.0, 1.0, 0.0], [0.0, 1.0, 1.0]),
            (11, [0.0, 1.0, 1.0], [0.0, 0.0, 1.0]),
            (13, [0.0, 0.0, 1.0], [1.0, 0.0, 1.0]),
            (6, [1.0, 0.0, 1.0], [1.0, 0.0, 0.0]),
        ];
        let mut colors = Vec::with_capacity(55);
        for (count, from, to) in ARCS {
            for i in 0..count {
                let t = i as f32 / count as f32;
                colors.push([
                    from[0] + t * (to[0] - from[0]),
                    from[1] + t * (to[1] - from[1]),
                    from[2] + t * (to[2] - from[2]),
                ]);
            }
        }
        ColorWheel { colors }
    }

    /// Number of discrete hues on the wheel.
    pub fn len(&self) -> usize {
        self.colors.len()
    }

    /// Whether the wheel is empty (never true for a built wheel).
    pub fn is_empty(&self) -> bool {
        self.colors.is_empty()
    }

    /// Color for a normalized flow vector (`|(u,v)| <= 1` maps inside the
    /// wheel; larger magnitudes saturate).
    pub fn color(&self, u: f32, v: f32) -> [u8; 3] {
        let mag = (u * u + v * v).sqrt().min(1.0);
        if !u.is_finite() || !v.is_finite() {
            return [0, 0, 0];
        }
        let angle = (-v).atan2(-u) / std::f32::consts::PI; // [-1, 1]
        let fk = (angle + 1.0) / 2.0 * (self.len() as f32 - 1.0);
        let k0 = fk.floor() as usize % self.len();
        let k1 = (k0 + 1) % self.len();
        let t = fk - fk.floor();
        let mut rgb = [0u8; 3];
        for (channel, out) in rgb.iter_mut().enumerate() {
            let col = self.colors[k0][channel]
                + t * (self.colors[k1][channel] - self.colors[k0][channel]);
            // Blend toward white at low magnitude, darken out-of-range.
            let col = 1.0 - mag * (1.0 - col);
            *out = (col.clamp(0.0, 1.0) * 255.0).round() as u8;
        }
        rgb
    }
}

impl Default for ColorWheel {
    fn default() -> Self {
        ColorWheel::middlebury()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_flow_basics() {
        let f = FlowField::constant(5, 4, 2.0, -1.0);
        assert_eq!(f.dims(), (5, 4));
        assert_eq!(f.at(4, 3), (2.0, -1.0));
        let m = f.max_magnitude();
        assert!((m - 5.0f32.sqrt()).abs() < 1e-6);
        let (m1, m2) = f.mean();
        assert!((m1 - 2.0).abs() < 1e-6 && (m2 + 1.0).abs() < 1e-6);
    }

    #[test]
    fn endpoint_error_zero_for_identical() {
        let f = FlowField::from_fn(6, 6, |x, y| (x as f32, y as f32));
        assert_eq!(average_endpoint_error(&f, &f), 0.0);
    }

    #[test]
    fn endpoint_error_of_unit_offset_is_one() {
        let a = FlowField::constant(6, 6, 0.0, 0.0);
        let b = FlowField::constant(6, 6, 1.0, 0.0);
        assert!((average_endpoint_error(&a, &b) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn angular_error_symmetric_and_zero_on_match() {
        let a = FlowField::constant(4, 4, 1.0, 0.0);
        let b = FlowField::constant(4, 4, 0.0, 1.0);
        assert!(average_angular_error(&a, &a) < 1e-9);
        let ab = average_angular_error(&a, &b);
        let ba = average_angular_error(&b, &a);
        assert!((ab - ba).abs() < 1e-12);
        assert!(ab > 0.5); // roughly 60 degrees for these vectors
    }

    #[test]
    fn wheel_has_55_hues_and_zero_flow_is_white() {
        let wheel = ColorWheel::middlebury();
        assert_eq!(wheel.len(), 55);
        assert_eq!(wheel.color(0.0, 0.0), [255, 255, 255]);
    }

    #[test]
    fn distinct_directions_get_distinct_colors() {
        let wheel = ColorWheel::middlebury();
        let right = wheel.color(1.0, 0.0);
        let left = wheel.color(-1.0, 0.0);
        let up = wheel.color(0.0, -1.0);
        assert_ne!(right, left);
        assert_ne!(right, up);
        assert_ne!(left, up);
    }

    #[test]
    fn colorize_produces_matching_dims() {
        let f = FlowField::from_fn(9, 7, |x, _| (x as f32 - 4.0, 0.0));
        let rgb = colorize_flow(&f, None);
        assert_eq!(rgb.dims(), (9, 7));
    }

    #[test]
    #[should_panic(expected = "must match")]
    fn mismatched_metric_panics() {
        let a = FlowField::zeros(3, 3);
        let b = FlowField::zeros(4, 3);
        average_endpoint_error(&a, &b);
    }
}
