//! Minimal Netpbm I/O: binary PGM (P5) for grayscale images and binary PPM
//! (P6) for RGB rasters such as colorized flow fields.

use std::fmt;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use crate::flow::RgbImage;
use crate::grid::Grid;
use crate::image::Image;

/// Error raised while reading or writing Netpbm files.
#[derive(Debug)]
pub enum PnmError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file is not a valid PGM/PPM of the expected kind.
    Format(String),
}

impl fmt::Display for PnmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PnmError::Io(e) => write!(f, "i/o error: {e}"),
            PnmError::Format(msg) => write!(f, "invalid netpbm data: {msg}"),
        }
    }
}

impl std::error::Error for PnmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PnmError::Io(e) => Some(e),
            PnmError::Format(_) => None,
        }
    }
}

impl From<io::Error> for PnmError {
    fn from(e: io::Error) -> Self {
        PnmError::Io(e)
    }
}

/// Writes a grayscale image as binary PGM (P5), mapping `[0, 1]` to `0..=255`.
///
/// Out-of-range intensities are clamped.
///
/// # Errors
///
/// Returns [`PnmError::Io`] on filesystem failures.
pub fn write_pgm(path: impl AsRef<Path>, img: &Image) -> Result<(), PnmError> {
    let mut w = BufWriter::new(File::create(path)?);
    write!(w, "P5\n{} {}\n255\n", img.width(), img.height())?;
    let bytes: Vec<u8> = img
        .as_slice()
        .iter()
        .map(|&v| (v.clamp(0.0, 1.0) * 255.0).round() as u8)
        .collect();
    w.write_all(&bytes)?;
    w.flush()?;
    Ok(())
}

/// Reads a binary PGM (P5) file into an image with intensities in `[0, 1]`.
///
/// # Errors
///
/// Returns [`PnmError::Format`] for non-P5 data or truncated pixel payloads,
/// and [`PnmError::Io`] on filesystem failures.
pub fn read_pgm(path: impl AsRef<Path>) -> Result<Image, PnmError> {
    read_pgm_from(BufReader::new(File::open(path)?))
}

/// Reads a binary PGM (P5) from any reader (a `&mut R` works too, thanks to
/// the blanket `BufRead` impl for mutable references).
///
/// # Errors
///
/// Returns [`PnmError::Format`] for non-P5 data or truncated pixel payloads.
pub fn read_pgm_from<R: BufRead>(mut r: R) -> Result<Image, PnmError> {
    let magic = read_token(&mut r)?;
    if magic != "P5" {
        return Err(PnmError::Format(format!(
            "expected P5 magic, got {magic:?}"
        )));
    }
    let width: usize = parse_token(&mut r, "width")?;
    let height: usize = parse_token(&mut r, "height")?;
    let maxval: usize = parse_token(&mut r, "maxval")?;
    if maxval == 0 || maxval > 255 {
        return Err(PnmError::Format(format!(
            "unsupported maxval {maxval} (only 8-bit PGM is supported)"
        )));
    }
    let pixels = checked_pixel_count(width, height)?;
    let mut bytes = vec![0u8; pixels];
    r.read_exact(&mut bytes)
        .map_err(|e| PnmError::Format(format!("truncated pixel data: {e}")))?;
    let scale = 1.0 / maxval as f32;
    let data = bytes.into_iter().map(|b| b as f32 * scale).collect();
    Grid::from_vec(width, height, data).map_err(|e| PnmError::Format(e.to_string()))
}

/// Writes an RGB raster as binary PPM (P6).
///
/// # Errors
///
/// Returns [`PnmError::Io`] on filesystem failures.
pub fn write_ppm(path: impl AsRef<Path>, img: &RgbImage) -> Result<(), PnmError> {
    let mut w = BufWriter::new(File::create(path)?);
    write!(w, "P6\n{} {}\n255\n", img.width(), img.height())?;
    let mut bytes = Vec::with_capacity(img.len() * 3);
    for px in img.as_slice() {
        bytes.extend_from_slice(px);
    }
    w.write_all(&bytes)?;
    w.flush()?;
    Ok(())
}

/// Reads a binary PPM (P6) file into an RGB raster.
///
/// # Errors
///
/// Returns [`PnmError::Format`] for non-P6 data or truncated pixel payloads,
/// and [`PnmError::Io`] on filesystem failures.
pub fn read_ppm(path: impl AsRef<Path>) -> Result<RgbImage, PnmError> {
    read_ppm_from(BufReader::new(File::open(path)?))
}

/// Reads a binary PPM (P6) from any reader.
///
/// Shares the PGM reader's guards: `#` comments anywhere in the header,
/// 8-bit maxval only, zero or absurd dimensions rejected before any pixel
/// allocation, and truncated payloads reported as [`PnmError::Format`].
///
/// # Errors
///
/// Returns [`PnmError::Format`] for non-P6 data or truncated pixel payloads.
pub fn read_ppm_from<R: BufRead>(mut r: R) -> Result<RgbImage, PnmError> {
    let magic = read_token(&mut r)?;
    if magic != "P6" {
        return Err(PnmError::Format(format!(
            "expected P6 magic, got {magic:?}"
        )));
    }
    let width: usize = parse_token(&mut r, "width")?;
    let height: usize = parse_token(&mut r, "height")?;
    let maxval: usize = parse_token(&mut r, "maxval")?;
    if maxval != 255 {
        return Err(PnmError::Format(format!(
            "unsupported maxval {maxval} (only 8-bit PPM is supported)"
        )));
    }
    let pixels = checked_pixel_count(width, height)?;
    let mut bytes = vec![0u8; pixels * 3];
    r.read_exact(&mut bytes)
        .map_err(|e| PnmError::Format(format!("truncated pixel data: {e}")))?;
    let data = bytes.chunks_exact(3).map(|c| [c[0], c[1], c[2]]).collect();
    Grid::from_vec(width, height, data).map_err(|e| PnmError::Format(e.to_string()))
}

/// Validates Netpbm raster dimensions: rejects zero-sized and absurdly large
/// frames before any pixel buffer is allocated.
fn checked_pixel_count(width: usize, height: usize) -> Result<usize, PnmError> {
    const MAX_PIXELS: usize = 1 << 28; // 256 Mpx guards absurd headers
    if width == 0 || height == 0 {
        return Err(PnmError::Format(format!(
            "zero-sized image {width}x{height}"
        )));
    }
    width
        .checked_mul(height)
        .filter(|&p| p <= MAX_PIXELS)
        .ok_or_else(|| PnmError::Format(format!("unreasonable dimensions {width}x{height}")))
}

/// Magic tag of the Middlebury `.flo` format ("PIEH" as a little-endian
/// float).
const FLO_MAGIC: f32 = 202021.25;

/// Writes a flow field in the Middlebury `.flo` format (little-endian:
/// the magic float 202021.25, width and height as `i32`, then interleaved
/// `(u, v)` pairs row-major).
///
/// # Errors
///
/// Returns [`PnmError::Io`] on filesystem failures.
pub fn write_flo(path: impl AsRef<Path>, flow: &crate::flow::FlowField) -> Result<(), PnmError> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(&FLO_MAGIC.to_le_bytes())?;
    w.write_all(&(flow.width() as i32).to_le_bytes())?;
    w.write_all(&(flow.height() as i32).to_le_bytes())?;
    for y in 0..flow.height() {
        for x in 0..flow.width() {
            let (u, v) = flow.at(x, y);
            w.write_all(&u.to_le_bytes())?;
            w.write_all(&v.to_le_bytes())?;
        }
    }
    w.flush()?;
    Ok(())
}

/// Reads a Middlebury `.flo` flow file.
///
/// # Errors
///
/// Returns [`PnmError::Format`] for a wrong magic, non-positive dimensions
/// or truncated payload, and [`PnmError::Io`] on filesystem failures.
pub fn read_flo(path: impl AsRef<Path>) -> Result<crate::flow::FlowField, PnmError> {
    read_flo_from(&std::fs::read(path)?)
}

/// Decodes a Middlebury `.flo` payload from memory.
///
/// # Errors
///
/// Returns [`PnmError::Format`] for a wrong magic, non-positive dimensions
/// or truncated payload.
pub fn read_flo_from(bytes: &[u8]) -> Result<crate::flow::FlowField, PnmError> {
    if bytes.len() < 12 {
        return Err(PnmError::Format("flo header truncated".into()));
    }
    let magic = f32::from_le_bytes(bytes[0..4].try_into().expect("slice is 4 bytes"));
    if magic != FLO_MAGIC {
        return Err(PnmError::Format(format!(
            "bad flo magic {magic} (expected {FLO_MAGIC})"
        )));
    }
    let width = i32::from_le_bytes(bytes[4..8].try_into().expect("slice is 4 bytes"));
    let height = i32::from_le_bytes(bytes[8..12].try_into().expect("slice is 4 bytes"));
    if width <= 0 || height <= 0 {
        return Err(PnmError::Format(format!(
            "invalid flo dimensions {width}x{height}"
        )));
    }
    let (width, height) = (width as usize, height as usize);
    let need = width
        .checked_mul(height)
        .and_then(|c| c.checked_mul(8))
        .and_then(|c| c.checked_add(12))
        .ok_or_else(|| PnmError::Format(format!("flo dimensions {width}x{height} overflow")))?;
    if bytes.len() < need {
        return Err(PnmError::Format(format!(
            "flo payload truncated: {} of {need} bytes",
            bytes.len()
        )));
    }
    let mut off = 12;
    let mut read_f32 = || {
        let v = f32::from_le_bytes(bytes[off..off + 4].try_into().expect("slice is 4 bytes"));
        off += 4;
        v
    };
    Ok(crate::flow::FlowField::from_fn(width, height, |_, _| {
        let u = read_f32();
        let v = read_f32();
        (u, v)
    }))
}

/// Reads one whitespace-delimited header token, skipping `#` comments.
fn read_token<R: BufRead>(r: &mut R) -> Result<String, PnmError> {
    let mut token = String::new();
    let mut in_comment = false;
    loop {
        let mut byte = [0u8; 1];
        match r.read(&mut byte)? {
            0 => {
                if token.is_empty() {
                    return Err(PnmError::Format("unexpected end of header".into()));
                }
                return Ok(token);
            }
            _ => {
                let c = byte[0] as char;
                if in_comment {
                    if c == '\n' {
                        in_comment = false;
                    }
                } else if c == '#' {
                    in_comment = true;
                } else if c.is_ascii_whitespace() {
                    if !token.is_empty() {
                        return Ok(token);
                    }
                } else {
                    token.push(c);
                }
            }
        }
    }
}

fn parse_token<R: BufRead, T: std::str::FromStr>(r: &mut R, what: &str) -> Result<T, PnmError> {
    let tok = read_token(r)?;
    tok.parse()
        .map_err(|_| PnmError::Format(format!("invalid {what}: {tok:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("chambolle_io_test_{}_{name}", std::process::id()));
        p
    }

    #[test]
    fn pgm_roundtrip() {
        let img = Grid::from_fn(7, 5, |x, y| ((x * 37 + y * 11) % 256) as f32 / 255.0);
        let path = tmp("roundtrip.pgm");
        write_pgm(&path, &img).unwrap();
        let back = read_pgm(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back.dims(), (7, 5));
        for (x, y, &v) in img.iter() {
            assert!((v - back[(x, y)]).abs() < 1.0 / 255.0 + 1e-6);
        }
    }

    #[test]
    fn pgm_clamps_out_of_range() {
        let img = Grid::from_vec(2, 1, vec![-1.0f32, 2.0]).unwrap();
        let path = tmp("clamp.pgm");
        write_pgm(&path, &img).unwrap();
        let back = read_pgm(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back[(0, 0)], 0.0);
        assert_eq!(back[(1, 0)], 1.0);
    }

    #[test]
    fn read_rejects_bad_magic() {
        let path = tmp("bad.pgm");
        std::fs::write(&path, b"P2\n1 1\n255\n0").unwrap();
        let err = read_pgm(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(err.to_string().contains("P5"));
    }

    #[test]
    fn read_rejects_truncated_pixels() {
        let path = tmp("trunc.pgm");
        std::fs::write(&path, b"P5\n4 4\n255\nxx").unwrap();
        let err = read_pgm(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, PnmError::Format(_)));
    }

    #[test]
    fn header_comments_are_skipped() {
        let mut cur = Cursor::new(b"P5 # comment\n# another\n 3\n".to_vec());
        assert_eq!(read_token(&mut cur).unwrap(), "P5");
        assert_eq!(read_token(&mut cur).unwrap(), "3");
    }

    #[test]
    fn ppm_writes_expected_header_and_size() {
        let img: RgbImage = Grid::new(3, 2, [1u8, 2, 3]);
        let path = tmp("rgb.ppm");
        write_ppm(&path, &img).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(bytes.starts_with(b"P6\n3 2\n255\n"));
        assert_eq!(bytes.len(), b"P6\n3 2\n255\n".len() + 18);
    }

    #[test]
    fn ppm_roundtrip() {
        let img: RgbImage =
            Grid::from_fn(5, 4, |x, y| [(x * 40) as u8, (y * 60) as u8, (x + y) as u8]);
        let path = tmp("roundtrip.ppm");
        write_ppm(&path, &img).unwrap();
        let back = read_ppm(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back, img, "P6 must round-trip exactly");
    }

    #[test]
    fn ppm_read_rejects_bad_magic_and_maxval() {
        let err = read_ppm_from(Cursor::new(b"P5\n1 1\n255\n\0".to_vec())).unwrap_err();
        assert!(err.to_string().contains("P6"));
        let err = read_ppm_from(Cursor::new(b"P6\n1 1\n65535\n\0\0\0\0\0\0".to_vec())).unwrap_err();
        assert!(err.to_string().contains("maxval"));
    }

    #[test]
    fn ppm_read_rejects_truncated_pixels() {
        let err = read_ppm_from(Cursor::new(b"P6\n2 2\n255\nxxxxx".to_vec())).unwrap_err();
        assert!(matches!(err, PnmError::Format(_)));
    }

    #[test]
    fn ppm_read_skips_header_comments() {
        let mut payload = b"P6 # rgb\n2 # width\n1\n255\n".to_vec();
        payload.extend_from_slice(&[10, 20, 30, 40, 50, 60]);
        let img = read_ppm_from(Cursor::new(payload)).unwrap();
        assert_eq!(img.dims(), (2, 1));
        assert_eq!(img[(1, 0)], [40, 50, 60]);
    }

    #[test]
    fn readers_reject_zero_dimensions() {
        let err = read_pgm_from(Cursor::new(b"P5\n0 5\n255\n".to_vec())).unwrap_err();
        assert!(err.to_string().contains("zero-sized"));
        let err = read_ppm_from(Cursor::new(b"P6\n3 0\n255\n".to_vec())).unwrap_err();
        assert!(err.to_string().contains("zero-sized"));
    }

    #[test]
    fn ppm_rejects_absurd_headers_without_allocating() {
        let payload = b"P6\n999999999 999999999\n255\n".to_vec();
        let err = read_ppm_from(Cursor::new(payload)).unwrap_err();
        assert!(err.to_string().contains("unreasonable"));
    }

    #[test]
    fn flo_roundtrip() {
        use crate::flow::FlowField;
        let flow = FlowField::from_fn(9, 6, |x, y| (x as f32 * 0.5 - 1.0, y as f32 * -0.25));
        let path = tmp("roundtrip.flo");
        write_flo(&path, &flow).unwrap();
        let back = read_flo(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back, flow, ".flo must round-trip exactly (f32 bits)");
    }

    #[test]
    fn flo_rejects_bad_magic_and_truncation() {
        let path = tmp("bad.flo");
        std::fs::write(&path, b"PIEHxxxxxxxx").unwrap();
        assert!(read_flo(&path).is_err());
        std::fs::write(&path, 202021.25f32.to_le_bytes()).unwrap();
        assert!(matches!(read_flo(&path), Err(PnmError::Format(_))));
        let mut hdr = Vec::new();
        hdr.extend_from_slice(&202021.25f32.to_le_bytes());
        hdr.extend_from_slice(&4i32.to_le_bytes());
        hdr.extend_from_slice(&4i32.to_le_bytes());
        std::fs::write(&path, &hdr).unwrap(); // no payload
        assert!(matches!(read_flo(&path), Err(PnmError::Format(_))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn flo_rejects_negative_dims() {
        let path = tmp("negdims.flo");
        let mut hdr = Vec::new();
        hdr.extend_from_slice(&202021.25f32.to_le_bytes());
        hdr.extend_from_slice(&(-3i32).to_le_bytes());
        hdr.extend_from_slice(&4i32.to_le_bytes());
        std::fs::write(&path, &hdr).unwrap();
        let err = read_flo(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(err.to_string().contains("dimensions"));
    }

    #[test]
    fn reader_based_pgm_parses_in_memory() {
        let mut payload = b"P5\n2 2\n255\n".to_vec();
        payload.extend_from_slice(&[0, 64, 128, 255]);
        let img = read_pgm_from(Cursor::new(payload)).unwrap();
        assert_eq!(img.dims(), (2, 2));
        assert_eq!(img[(1, 1)], 1.0);
    }

    #[test]
    fn pgm_rejects_absurd_headers_without_allocating() {
        let payload = b"P5\n999999999 999999999\n255\n".to_vec();
        let err = read_pgm_from(Cursor::new(payload)).unwrap_err();
        assert!(err.to_string().contains("unreasonable"));
    }

    mod fuzz {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// Arbitrary bytes must never panic the PGM parser.
            #[test]
            fn pgm_parser_total(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
                let _ = read_pgm_from(Cursor::new(bytes));
            }

            /// Arbitrary bytes must never panic the PPM parser.
            #[test]
            fn ppm_parser_total(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
                let _ = read_ppm_from(Cursor::new(bytes));
            }

            /// Arbitrary bytes must never panic the flo parser.
            #[test]
            fn flo_parser_total(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
                let _ = read_flo_from(&bytes);
            }

            /// Bytes that *start* like a valid header but are cut anywhere
            /// must produce an error, not a panic or a bogus image.
            #[test]
            fn truncated_valid_pgm_is_an_error(cut in 0usize..16) {
                let mut payload = b"P5\n3 2\n255\n".to_vec();
                payload.extend_from_slice(&[1, 2, 3, 4, 5, 6]);
                payload.truncate(payload.len().saturating_sub(cut));
                let result = read_pgm_from(Cursor::new(payload));
                if cut == 0 {
                    prop_assert!(result.is_ok());
                } else {
                    prop_assert!(result.is_err());
                }
            }
        }
    }
}
