//! Scalar image operations: sampling, gradients, statistics.

use chambolle_par::{SimdLevel, ThreadPool, UnsafeSharedSlice};

use crate::grid::{par_band_rows, Grid};
use crate::simd;

/// A grayscale image with `f32` intensities, nominally in `[0, 1]`.
pub type Image = Grid<f32>;

/// Samples `img` at integer coordinates with clamp-to-edge boundary handling.
///
/// Negative coordinates and coordinates past the last row/column are clamped,
/// which matches the Neumann boundary conditions of the TV operators.
///
/// # Examples
///
/// ```
/// use chambolle_imaging::{Grid, sample_clamped};
/// let img = Grid::from_fn(2, 2, |x, y| (x + 2 * y) as f32);
/// assert_eq!(sample_clamped(&img, -3, 0), 0.0);
/// assert_eq!(sample_clamped(&img, 5, 5), 3.0);
/// ```
#[inline]
pub fn sample_clamped(img: &Image, x: i64, y: i64) -> f32 {
    let xc = x.clamp(0, img.width() as i64 - 1) as usize;
    let yc = y.clamp(0, img.height() as i64 - 1) as usize;
    img[(xc, yc)]
}

/// Bilinearly interpolates `img` at the continuous position `(x, y)` with
/// clamp-to-edge boundary handling.
///
/// # Examples
///
/// ```
/// use chambolle_imaging::{Grid, sample_bilinear};
/// let img = Grid::from_fn(2, 1, |x, _| x as f32);
/// assert!((sample_bilinear(&img, 0.25, 0.0) - 0.25).abs() < 1e-6);
/// ```
pub fn sample_bilinear(img: &Image, x: f32, y: f32) -> f32 {
    let x0 = x.floor();
    let y0 = y.floor();
    let fx = x - x0;
    let fy = y - y0;
    let x0 = x0 as i64;
    let y0 = y0 as i64;
    let v00 = sample_clamped(img, x0, y0);
    let v10 = sample_clamped(img, x0 + 1, y0);
    let v01 = sample_clamped(img, x0, y0 + 1);
    let v11 = sample_clamped(img, x0 + 1, y0 + 1);
    let top = v00 + fx * (v10 - v00);
    let bot = v01 + fx * (v11 - v01);
    top + fy * (bot - top)
}

/// Central-difference spatial gradient of an image, clamped at the borders.
///
/// Returns `(gx, gy)` where `gx[(x,y)] = (img[x+1] - img[x-1]) / 2`.
/// This is the gradient used to linearize the data term in TV-L1 (it is
/// distinct from the forward/backward differences of the TV operators).
pub fn gradient_central(img: &Image) -> (Image, Image) {
    let (w, h) = img.dims();
    let mut gx = Grid::new(w, h, 0.0);
    let mut gy = Grid::new(w, h, 0.0);
    for y in 0..h {
        for x in 0..w {
            let xi = x as i64;
            let yi = y as i64;
            gx[(x, y)] = 0.5 * (sample_clamped(img, xi + 1, yi) - sample_clamped(img, xi - 1, yi));
            gy[(x, y)] = 0.5 * (sample_clamped(img, xi, yi + 1) - sample_clamped(img, xi, yi - 1));
        }
    }
    (gx, gy)
}

/// [`gradient_central`] with the per-row work distributed over a worker
/// pool and each row's central differences dispatched on a [`SimdLevel`].
///
/// Each cell depends only on the immutable input, the row partition is a
/// pure function of the image height, and the vector rows replay the scalar
/// `0.5 · (next − prev)` per lane, so the result is bit-identical to the
/// sequential version for every thread count and SIMD level.
pub fn gradient_central_with_pool(
    img: &Image,
    pool: &ThreadPool,
    level: SimdLevel,
) -> (Image, Image) {
    let (w, h) = img.dims();
    let mut gx = Grid::new(w, h, 0.0);
    let mut gy = Grid::new(w, h, 0.0);
    if w == 0 || h == 0 {
        return (gx, gy);
    }
    let band = par_band_rows(h, pool.threads());
    {
        let gx_view = UnsafeSharedSlice::new(gx.as_mut_slice());
        let gy_view = UnsafeSharedSlice::new(gy.as_mut_slice());
        pool.parallel_for_rows("imaging.gradient", 0..h, band, |rows| {
            for y in rows {
                // SAFETY: each row index is handed to exactly one task, so
                // the row slices of distinct tasks never overlap.
                let gx_row = unsafe { gx_view.slice_mut(y * w, w) };
                let gy_row = unsafe { gy_view.slice_mut(y * w, w) };
                let above = img.row(y.saturating_sub(1));
                let below = img.row((y + 1).min(h - 1));
                simd::gradient_row(level, above, img.row(y), below, gx_row, gy_row);
            }
        });
    }
    (gx, gy)
}

/// Mean squared error between two images.
///
/// # Panics
///
/// Panics if the dimensions differ.
pub fn mse(a: &Image, b: &Image) -> f64 {
    assert_eq!(a.dims(), b.dims(), "mse requires equal dimensions");
    if a.is_empty() {
        return 0.0;
    }
    let sum: f64 = a
        .as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(&x, &y)| {
            let d = (x - y) as f64;
            d * d
        })
        .sum();
    sum / a.len() as f64
}

/// Peak signal-to-noise ratio in dB for intensities in `[0, 1]`.
///
/// Returns `f64::INFINITY` for identical images.
///
/// # Panics
///
/// Panics if the dimensions differ.
pub fn psnr(a: &Image, b: &Image) -> f64 {
    let m = mse(a, b);
    if m == 0.0 {
        f64::INFINITY
    } else {
        -10.0 * m.log10()
    }
}

/// Structural similarity (SSIM) between two images with intensities in
/// `[0, 1]`, computed with the standard 8×8 sliding window and the usual
/// stabilization constants (K1 = 0.01, K2 = 0.03).
///
/// Returns 1.0 for identical images; typical useful range is `[0, 1]`
/// (slightly negative values are possible for anti-correlated patches).
///
/// # Panics
///
/// Panics if the dimensions differ or either dimension is smaller than the
/// 8-pixel window.
pub fn ssim(a: &Image, b: &Image) -> f64 {
    assert_eq!(a.dims(), b.dims(), "ssim requires equal dimensions");
    let (w, h) = a.dims();
    const WIN: usize = 8;
    assert!(
        w >= WIN && h >= WIN,
        "ssim needs at least {WIN}x{WIN} pixels, got {w}x{h}"
    );
    const C1: f64 = 0.01 * 0.01;
    const C2: f64 = 0.03 * 0.03;
    let mut total = 0.0f64;
    let mut windows = 0usize;
    for y0 in (0..=h - WIN).step_by(WIN / 2) {
        for x0 in (0..=w - WIN).step_by(WIN / 2) {
            let n = (WIN * WIN) as f64;
            let (mut sa, mut sb, mut saa, mut sbb, mut sab) = (0.0, 0.0, 0.0, 0.0, 0.0);
            for y in y0..y0 + WIN {
                for x in x0..x0 + WIN {
                    let va = a[(x, y)] as f64;
                    let vb = b[(x, y)] as f64;
                    sa += va;
                    sb += vb;
                    saa += va * va;
                    sbb += vb * vb;
                    sab += va * vb;
                }
            }
            let mu_a = sa / n;
            let mu_b = sb / n;
            let var_a = (saa / n - mu_a * mu_a).max(0.0);
            let var_b = (sbb / n - mu_b * mu_b).max(0.0);
            let cov = sab / n - mu_a * mu_b;
            let s = ((2.0 * mu_a * mu_b + C1) * (2.0 * cov + C2))
                / ((mu_a * mu_a + mu_b * mu_b + C1) * (var_a + var_b + C2));
            total += s;
            windows += 1;
        }
    }
    total / windows as f64
}

/// Minimum and maximum intensity of an image.
///
/// Returns `(0.0, 0.0)` for an empty image.
pub fn min_max(img: &Image) -> (f32, f32) {
    if img.is_empty() {
        return (0.0, 0.0);
    }
    img.as_slice()
        .iter()
        .fold((f32::INFINITY, f32::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        })
}

/// Normalizes an image linearly so its range becomes `[0, 1]`.
///
/// A constant image maps to all zeros.
pub fn normalize(img: &Image) -> Image {
    let (lo, hi) = min_max(img);
    let span = hi - lo;
    if span <= 0.0 {
        return img.map(|_| 0.0);
    }
    img.map(|&v| (v - lo) / span)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamped_sampling_edges() {
        let img = Grid::from_fn(3, 3, |x, y| (x + 3 * y) as f32);
        assert_eq!(sample_clamped(&img, -1, -1), 0.0);
        assert_eq!(sample_clamped(&img, 3, 1), 5.0);
        assert_eq!(sample_clamped(&img, 1, 99), 7.0);
    }

    #[test]
    fn bilinear_matches_grid_at_integers() {
        let img = Grid::from_fn(4, 4, |x, y| (x * y) as f32);
        for y in 0..4 {
            for x in 0..4 {
                assert_eq!(sample_bilinear(&img, x as f32, y as f32), img[(x, y)]);
            }
        }
    }

    #[test]
    fn bilinear_interpolates_linearly() {
        let img = Grid::from_fn(3, 3, |x, y| x as f32 + 10.0 * y as f32);
        let v = sample_bilinear(&img, 0.5, 1.5);
        assert!((v - (0.5 + 15.0)).abs() < 1e-5);
    }

    #[test]
    fn central_gradient_of_ramp_is_constant() {
        let img = Grid::from_fn(8, 8, |x, _| 2.0 * x as f32);
        let (gx, gy) = gradient_central(&img);
        // Interior: slope 2; borders clamp so the one-sided estimate halves.
        assert!((gx[(4, 4)] - 2.0).abs() < 1e-6);
        assert!((gx[(0, 4)] - 1.0).abs() < 1e-6);
        assert!(gy.as_slice().iter().all(|&v| v.abs() < 1e-6));
    }

    #[test]
    fn pooled_gradient_is_bit_identical() {
        let img = Grid::from_fn(33, 21, |x, y| ((x * 13 + y * 7) % 17) as f32 / 17.0);
        let (gx, gy) = gradient_central(&img);
        for threads in [1usize, 2, 3, 8] {
            let pool = ThreadPool::new(threads);
            for level in [
                SimdLevel::Scalar,
                SimdLevel::Sse2,
                SimdLevel::Avx2,
                SimdLevel::Avx512,
            ] {
                if !level.is_supported() {
                    continue;
                }
                let (px, py) = gradient_central_with_pool(&img, &pool, level);
                assert_eq!(
                    gx.as_slice(),
                    px.as_slice(),
                    "gx at {threads} threads, {level:?}"
                );
                assert_eq!(
                    gy.as_slice(),
                    py.as_slice(),
                    "gy at {threads} threads, {level:?}"
                );
            }
        }
    }

    #[test]
    fn mse_and_psnr() {
        let a = Grid::new(4, 4, 0.5f32);
        let b = Grid::new(4, 4, 0.5f32);
        assert_eq!(mse(&a, &b), 0.0);
        assert_eq!(psnr(&a, &b), f64::INFINITY);
        let c = Grid::new(4, 4, 0.6f32);
        assert!((mse(&a, &c) - 0.01f64).abs() < 1e-7);
        assert!((psnr(&a, &c) - 20.0).abs() < 1e-4);
    }

    #[test]
    fn normalize_maps_to_unit_range() {
        let img = Grid::from_fn(3, 1, |x, _| x as f32 * 4.0 + 1.0);
        let n = normalize(&img);
        assert_eq!(n[(0, 0)], 0.0);
        assert_eq!(n[(2, 0)], 1.0);
        let flat = Grid::new(3, 1, 7.0f32);
        assert!(normalize(&flat).as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn ssim_identity_and_ordering() {
        let img = Grid::from_fn(32, 24, |x, y| ((x * 7 + y * 3) % 11) as f32 / 11.0);
        assert!((ssim(&img, &img) - 1.0).abs() < 1e-12);
        // More noise -> lower SSIM.
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        let mild = img.map(|&v| v + rng.gen_range(-0.02f32..0.02));
        let heavy = img.map(|&v| v + rng.gen_range(-0.3f32..0.3));
        let s_mild = ssim(&img, &mild);
        let s_heavy = ssim(&img, &heavy);
        assert!(s_mild > s_heavy, "{s_mild} vs {s_heavy}");
        assert!(s_mild > 0.95);
        assert!(s_heavy < 0.9);
    }

    #[test]
    #[should_panic(expected = "at least 8x8")]
    fn ssim_rejects_tiny_images() {
        let img = Grid::new(4, 4, 0.5f32);
        ssim(&img, &img);
    }
}
