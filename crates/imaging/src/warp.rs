//! Backward image warping by a flow field — the per-warp linearization step
//! of the TV-L1 outer loop.

use crate::flow::FlowField;
use crate::grid::Grid;
use crate::image::{gradient_central, sample_bilinear, Image};

/// Warps `img` backward by `flow`: `out(x, y) = img(x + u1, y + u2)` with
/// bilinear interpolation and clamp-to-edge boundary handling.
///
/// This is the `I1(x + u)` term of the TV-L1 data cost.
///
/// # Panics
///
/// Panics if `img` and `flow` dimensions differ.
///
/// # Examples
///
/// ```
/// use chambolle_imaging::{warp_backward, FlowField, Grid};
/// let img = Grid::from_fn(4, 1, |x, _| x as f32);
/// let flow = FlowField::constant(4, 1, 1.0, 0.0);
/// let w = warp_backward(&img, &flow);
/// assert_eq!(w[(0, 0)], 1.0); // shifted left by one
/// ```
pub fn warp_backward(img: &Image, flow: &FlowField) -> Image {
    assert_eq!(img.dims(), flow.dims(), "image and flow must match in size");
    Grid::from_fn(img.width(), img.height(), |x, y| {
        let (u, v) = flow.at(x, y);
        sample_bilinear(img, x as f32 + u, y as f32 + v)
    })
}

/// The linearized data term of TV-L1 at a warp point.
///
/// For a flow `u0` at which `I1` was warped, the residual of a candidate flow
/// `u` is `rho(u) = rho_const + gx*(u1-u01) + gy*(u2-u02)`; this struct holds
/// the warped image, its spatial gradient and the constant part
/// `rho_const = I1w - I0` (so the candidate increments are relative to `u0`).
#[derive(Debug, Clone)]
pub struct WarpLinearization {
    /// `I1` warped by the reference flow `u0`.
    pub warped: Image,
    /// Horizontal gradient of the warped image.
    pub gx: Image,
    /// Vertical gradient of the warped image.
    pub gy: Image,
    /// Constant residual `I1w - I0`.
    pub residual: Image,
    /// The reference flow `u0` around which the data term is linearized.
    pub u0: FlowField,
}

impl WarpLinearization {
    /// Warps `i1` by `u0` and linearizes the brightness-constancy residual
    /// around `u0`.
    ///
    /// # Panics
    ///
    /// Panics if the inputs differ in size.
    pub fn new(i0: &Image, i1: &Image, u0: &FlowField) -> Self {
        assert_eq!(i0.dims(), i1.dims(), "frames must match in size");
        assert_eq!(i0.dims(), u0.dims(), "flow must match the frame size");
        let warped = warp_backward(i1, u0);
        let (gx, gy) = gradient_central(&warped);
        let residual = Grid::from_fn(i0.width(), i0.height(), |x, y| warped[(x, y)] - i0[(x, y)]);
        WarpLinearization {
            warped,
            gx,
            gy,
            residual,
            u0: u0.clone(),
        }
    }

    /// Evaluates the linearized residual `rho(u)` at cell `(x, y)` for the
    /// candidate flow `(u1, u2)`.
    #[inline]
    pub fn rho(&self, x: usize, y: usize, u1: f32, u2: f32) -> f32 {
        let (u01, u02) = self.u0.at(x, y);
        self.residual[(x, y)] + self.gx[(x, y)] * (u1 - u01) + self.gy[(x, y)] * (u2 - u02)
    }

    /// Squared gradient magnitude `|∇I1w|²` at cell `(x, y)`.
    #[inline]
    pub fn grad_sq(&self, x: usize, y: usize) -> f32 {
        let gx = self.gx[(x, y)];
        let gy = self.gy[(x, y)];
        gx * gx + gy * gy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(w: usize, h: usize) -> Image {
        Grid::from_fn(w, h, |x, y| 0.1 * x as f32 + 0.05 * y as f32)
    }

    #[test]
    fn zero_flow_is_identity() {
        let img = ramp(8, 6);
        let out = warp_backward(&img, &FlowField::zeros(8, 6));
        for (x, y, &v) in img.iter() {
            assert!((v - out[(x, y)]).abs() < 1e-6);
        }
    }

    #[test]
    fn integer_shift_matches_resample() {
        let img = Grid::from_fn(8, 8, |x, y| ((x * 7 + y * 13) % 5) as f32);
        let out = warp_backward(&img, &FlowField::constant(8, 8, 2.0, 1.0));
        for y in 0..7 {
            for x in 0..6 {
                assert_eq!(out[(x, y)], img[(x + 2, y + 1)]);
            }
        }
    }

    #[test]
    fn subpixel_shift_on_linear_ramp_is_exact() {
        let img = ramp(10, 10);
        let out = warp_backward(&img, &FlowField::constant(10, 10, 0.5, 0.25));
        // Interior cells of a linear ramp warp exactly under bilinear sampling.
        for y in 2..8 {
            for x in 2..8 {
                let expect = 0.1 * (x as f32 + 0.5) + 0.05 * (y as f32 + 0.25);
                assert!((out[(x, y)] - expect).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn linearization_residual_zero_for_true_shift() {
        // I1 is I0 shifted by (-1, 0): I1(x) = I0(x - 1), so the true flow
        // (sampling I1 at x + u matching I0 at x) is u = (1, 0)... check via
        // rho at the linearization point.
        let i0 = ramp(12, 12);
        let i1 = Grid::from_fn(12, 12, |x, y| 0.1 * (x as f32 - 1.0) + 0.05 * y as f32);
        let truth = FlowField::constant(12, 12, 1.0, 0.0);
        let lin = WarpLinearization::new(&i0, &i1, &truth);
        for y in 2..10 {
            for x in 2..10 {
                assert!(lin.residual[(x, y)].abs() < 1e-5, "at ({x},{y})");
                assert!(lin.rho(x, y, 1.0, 0.0).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn rho_is_affine_in_candidate_flow() {
        let i0 = ramp(8, 8);
        let i1 = Grid::from_fn(8, 8, |x, y| ((x + y) % 3) as f32 * 0.2);
        let lin = WarpLinearization::new(&i0, &i1, &FlowField::zeros(8, 8));
        let (x, y) = (4, 4);
        let base = lin.rho(x, y, 0.0, 0.0);
        let dx = lin.rho(x, y, 1.0, 0.0) - base;
        let dy = lin.rho(x, y, 0.0, 1.0) - base;
        let combined = lin.rho(x, y, 2.0, 3.0);
        assert!((combined - (base + 2.0 * dx + 3.0 * dy)).abs() < 1e-5);
        assert!((dx - lin.gx[(x, y)]).abs() < 1e-6);
        assert!((dy - lin.gy[(x, y)]).abs() < 1e-6);
    }

    #[test]
    fn grad_sq_matches_components() {
        let i0 = ramp(8, 8);
        let i1 = ramp(8, 8);
        let lin = WarpLinearization::new(&i0, &i1, &FlowField::zeros(8, 8));
        let gs = lin.grad_sq(3, 3);
        let expect = lin.gx[(3, 3)].powi(2) + lin.gy[(3, 3)].powi(2);
        assert!((gs - expect).abs() < 1e-9);
    }
}
