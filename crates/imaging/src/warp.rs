//! Backward image warping by a flow field — the per-warp linearization step
//! of the TV-L1 outer loop.

use chambolle_par::{SimdLevel, ThreadPool};

use crate::flow::FlowField;
use crate::grid::{par_band_rows, Grid};
use crate::image::{gradient_central, gradient_central_with_pool, sample_bilinear, Image};
use crate::simd;

/// Warps `img` backward by `flow`: `out(x, y) = img(x + u1, y + u2)` with
/// bilinear interpolation and clamp-to-edge boundary handling.
///
/// This is the `I1(x + u)` term of the TV-L1 data cost.
///
/// # Panics
///
/// Panics if `img` and `flow` dimensions differ.
///
/// # Examples
///
/// ```
/// use chambolle_imaging::{warp_backward, FlowField, Grid};
/// let img = Grid::from_fn(4, 1, |x, _| x as f32);
/// let flow = FlowField::constant(4, 1, 1.0, 0.0);
/// let w = warp_backward(&img, &flow);
/// assert_eq!(w[(0, 0)], 1.0); // shifted left by one
/// ```
pub fn warp_backward(img: &Image, flow: &FlowField) -> Image {
    assert_eq!(img.dims(), flow.dims(), "image and flow must match in size");
    Grid::from_fn(img.width(), img.height(), |x, y| {
        let (u, v) = flow.at(x, y);
        sample_bilinear(img, x as f32 + u, y as f32 + v)
    })
}

/// [`warp_backward`] with the output rows distributed over a worker pool.
///
/// Every output cell is a pure function of the immutable inputs, so the
/// result is bit-identical to the sequential warp for every thread count.
/// The bilinear sampling is gather-bound (each pixel reads four
/// flow-dependent addresses), so the warp has no vector body and takes no
/// [`SimdLevel`].
///
/// # Panics
///
/// Panics if `img` and `flow` dimensions differ.
pub fn warp_backward_with_pool(img: &Image, flow: &FlowField, pool: &ThreadPool) -> Image {
    assert_eq!(img.dims(), flow.dims(), "image and flow must match in size");
    let (w, h) = img.dims();
    let mut out = Grid::new(w, h, 0.0);
    if w == 0 || h == 0 {
        return out;
    }
    let band = par_band_rows(h, pool.threads());
    pool.parallel_chunks_mut("imaging.warp", out.as_mut_slice(), w * band, |t, rows| {
        let y0 = t * band;
        for (dy, row) in rows.chunks_mut(w).enumerate() {
            let y = y0 + dy;
            for (x, cell) in row.iter_mut().enumerate() {
                let (u, v) = flow.at(x, y);
                *cell = sample_bilinear(img, x as f32 + u, y as f32 + v);
            }
        }
    });
    out
}

/// The linearized data term of TV-L1 at a warp point.
///
/// For a flow `u0` at which `I1` was warped, the residual of a candidate flow
/// `u` is `rho(u) = rho_const + gx*(u1-u01) + gy*(u2-u02)`; this struct holds
/// the warped image, its spatial gradient and the constant part
/// `rho_const = I1w - I0` (so the candidate increments are relative to `u0`).
#[derive(Debug, Clone)]
pub struct WarpLinearization {
    /// `I1` warped by the reference flow `u0`.
    pub warped: Image,
    /// Horizontal gradient of the warped image.
    pub gx: Image,
    /// Vertical gradient of the warped image.
    pub gy: Image,
    /// Constant residual `I1w - I0`.
    pub residual: Image,
    /// The reference flow `u0` around which the data term is linearized.
    pub u0: FlowField,
}

impl WarpLinearization {
    /// Warps `i1` by `u0` and linearizes the brightness-constancy residual
    /// around `u0`.
    ///
    /// # Panics
    ///
    /// Panics if the inputs differ in size.
    pub fn new(i0: &Image, i1: &Image, u0: &FlowField) -> Self {
        assert_eq!(i0.dims(), i1.dims(), "frames must match in size");
        assert_eq!(i0.dims(), u0.dims(), "flow must match the frame size");
        let warped = warp_backward(i1, u0);
        let (gx, gy) = gradient_central(&warped);
        let residual = Grid::from_fn(i0.width(), i0.height(), |x, y| warped[(x, y)] - i0[(x, y)]);
        WarpLinearization {
            warped,
            gx,
            gy,
            residual,
            u0: u0.clone(),
        }
    }

    /// [`WarpLinearization::new`] with the warp, gradient, and residual
    /// fills distributed over a worker pool, and the gradient and residual
    /// rows dispatched on a [`SimdLevel`]; bit-identical to the sequential
    /// constructor for every thread count and level.
    ///
    /// # Panics
    ///
    /// Panics if the inputs differ in size.
    pub fn new_with_pool(
        i0: &Image,
        i1: &Image,
        u0: &FlowField,
        pool: &ThreadPool,
        level: SimdLevel,
    ) -> Self {
        assert_eq!(i0.dims(), i1.dims(), "frames must match in size");
        assert_eq!(i0.dims(), u0.dims(), "flow must match the frame size");
        let (w, h) = i0.dims();
        let warped = warp_backward_with_pool(i1, u0, pool);
        let (gx, gy) = gradient_central_with_pool(&warped, pool, level);
        let mut residual = Grid::new(w, h, 0.0);
        let band = par_band_rows(h.max(1), pool.threads());
        pool.parallel_chunks_mut(
            "imaging.residual",
            residual.as_mut_slice(),
            w * band,
            |t, rows| {
                let start = t * band * w;
                let n = rows.len();
                simd::sub_slice(
                    level,
                    &warped.as_slice()[start..start + n],
                    &i0.as_slice()[start..start + n],
                    rows,
                );
            },
        );
        WarpLinearization {
            warped,
            gx,
            gy,
            residual,
            u0: u0.clone(),
        }
    }

    /// Evaluates the linearized residual `rho(u)` at cell `(x, y)` for the
    /// candidate flow `(u1, u2)`.
    #[inline]
    pub fn rho(&self, x: usize, y: usize, u1: f32, u2: f32) -> f32 {
        let (u01, u02) = self.u0.at(x, y);
        self.residual[(x, y)] + self.gx[(x, y)] * (u1 - u01) + self.gy[(x, y)] * (u2 - u02)
    }

    /// Squared gradient magnitude `|∇I1w|²` at cell `(x, y)`.
    #[inline]
    pub fn grad_sq(&self, x: usize, y: usize) -> f32 {
        let gx = self.gx[(x, y)];
        let gy = self.gy[(x, y)];
        gx * gx + gy * gy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(w: usize, h: usize) -> Image {
        Grid::from_fn(w, h, |x, y| 0.1 * x as f32 + 0.05 * y as f32)
    }

    #[test]
    fn zero_flow_is_identity() {
        let img = ramp(8, 6);
        let out = warp_backward(&img, &FlowField::zeros(8, 6));
        for (x, y, &v) in img.iter() {
            assert!((v - out[(x, y)]).abs() < 1e-6);
        }
    }

    #[test]
    fn integer_shift_matches_resample() {
        let img = Grid::from_fn(8, 8, |x, y| ((x * 7 + y * 13) % 5) as f32);
        let out = warp_backward(&img, &FlowField::constant(8, 8, 2.0, 1.0));
        for y in 0..7 {
            for x in 0..6 {
                assert_eq!(out[(x, y)], img[(x + 2, y + 1)]);
            }
        }
    }

    #[test]
    fn subpixel_shift_on_linear_ramp_is_exact() {
        let img = ramp(10, 10);
        let out = warp_backward(&img, &FlowField::constant(10, 10, 0.5, 0.25));
        // Interior cells of a linear ramp warp exactly under bilinear sampling.
        for y in 2..8 {
            for x in 2..8 {
                let expect = 0.1 * (x as f32 + 0.5) + 0.05 * (y as f32 + 0.25);
                assert!((out[(x, y)] - expect).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn pooled_warp_and_linearization_are_bit_identical() {
        let i0 = Grid::from_fn(29, 17, |x, y| ((x * 5 + y * 11) % 13) as f32 / 13.0);
        let i1 = Grid::from_fn(29, 17, |x, y| ((x * 3 + y * 7) % 13) as f32 / 13.0);
        let flow = FlowField::from_fn(29, 17, |x, y| (0.3 * x as f32, -0.2 * y as f32));
        let seq_warp = warp_backward(&i1, &flow);
        let seq_lin = WarpLinearization::new(&i0, &i1, &flow);
        for threads in [1usize, 2, 3, 8] {
            let pool = ThreadPool::new(threads);
            let par_warp = warp_backward_with_pool(&i1, &flow, &pool);
            assert_eq!(
                seq_warp.as_slice(),
                par_warp.as_slice(),
                "{threads} threads"
            );
            for level in [
                SimdLevel::Scalar,
                SimdLevel::Sse2,
                SimdLevel::Avx2,
                SimdLevel::Avx512,
            ] {
                if !level.is_supported() {
                    continue;
                }
                let par_lin = WarpLinearization::new_with_pool(&i0, &i1, &flow, &pool, level);
                assert_eq!(seq_lin.warped.as_slice(), par_lin.warped.as_slice());
                assert_eq!(seq_lin.gx.as_slice(), par_lin.gx.as_slice());
                assert_eq!(seq_lin.gy.as_slice(), par_lin.gy.as_slice());
                assert_eq!(seq_lin.residual.as_slice(), par_lin.residual.as_slice());
            }
        }
    }

    #[test]
    fn linearization_residual_zero_for_true_shift() {
        // I1 is I0 shifted by (-1, 0): I1(x) = I0(x - 1), so the true flow
        // (sampling I1 at x + u matching I0 at x) is u = (1, 0)... check via
        // rho at the linearization point.
        let i0 = ramp(12, 12);
        let i1 = Grid::from_fn(12, 12, |x, y| 0.1 * (x as f32 - 1.0) + 0.05 * y as f32);
        let truth = FlowField::constant(12, 12, 1.0, 0.0);
        let lin = WarpLinearization::new(&i0, &i1, &truth);
        for y in 2..10 {
            for x in 2..10 {
                assert!(lin.residual[(x, y)].abs() < 1e-5, "at ({x},{y})");
                assert!(lin.rho(x, y, 1.0, 0.0).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn rho_is_affine_in_candidate_flow() {
        let i0 = ramp(8, 8);
        let i1 = Grid::from_fn(8, 8, |x, y| ((x + y) % 3) as f32 * 0.2);
        let lin = WarpLinearization::new(&i0, &i1, &FlowField::zeros(8, 8));
        let (x, y) = (4, 4);
        let base = lin.rho(x, y, 0.0, 0.0);
        let dx = lin.rho(x, y, 1.0, 0.0) - base;
        let dy = lin.rho(x, y, 0.0, 1.0) - base;
        let combined = lin.rho(x, y, 2.0, 3.0);
        assert!((combined - (base + 2.0 * dx + 3.0 * dy)).abs() < 1e-5);
        assert!((dx - lin.gx[(x, y)]).abs() < 1e-6);
        assert!((dy - lin.gy[(x, y)]).abs() < 1e-6);
    }

    #[test]
    fn grad_sq_matches_components() {
        let i0 = ramp(8, 8);
        let i1 = ramp(8, 8);
        let lin = WarpLinearization::new(&i0, &i1, &FlowField::zeros(8, 8));
        let gs = lin.grad_sq(3, 3);
        let expect = lin.gx[(3, 3)].powi(2) + lin.gy[(3, 3)].powi(2);
        assert!((gs - expect).abs() < 1e-9);
    }
}
