//! Scalar abstraction so the solver can run in `f32` (the production path,
//! matching the hardware's precision class) or `f64` (for numerical tests
//! where floating-point noise would obscure invariants).

use std::fmt::Debug;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

/// A real scalar the Chambolle solver can compute with.
///
/// Implemented for [`f32`] and [`f64`]. The trait is sealed: the solver's
/// numerical guarantees are only validated for these two types.
pub trait Real:
    'static
    + Copy
    + PartialEq
    + PartialOrd
    + Debug
    + Default
    + Send
    + Sync
    + Add<Output = Self>
    + AddAssign
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + private::Sealed
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;

    /// Conversion from `f32` (exact for `f64`).
    fn from_f32(v: f32) -> Self;
    /// Conversion from `f64` (may round for `f32`).
    fn from_f64(v: f64) -> Self;
    /// Lossless widening to `f64`.
    fn to_f64(self) -> f64;
    /// Narrowing to `f32`.
    fn to_f32(self) -> f32;
    /// Square root.
    fn sqrt(self) -> Self;
    /// Absolute value.
    fn abs(self) -> Self;
    /// `true` if the value is finite (not NaN/±inf).
    fn is_finite(self) -> bool;
}

mod private {
    /// Prevents downstream `Real` impls; see `C-SEALED`.
    pub trait Sealed {}
    impl Sealed for f32 {}
    impl Sealed for f64 {}
}

impl Real for f32 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;

    #[inline]
    fn from_f32(v: f32) -> Self {
        v
    }
    #[inline]
    fn from_f64(v: f64) -> Self {
        v as f32
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self as f64
    }
    #[inline]
    fn to_f32(self) -> f32 {
        self
    }
    #[inline]
    fn sqrt(self) -> Self {
        self.sqrt()
    }
    #[inline]
    fn abs(self) -> Self {
        self.abs()
    }
    #[inline]
    fn is_finite(self) -> bool {
        self.is_finite()
    }
}

impl Real for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;

    #[inline]
    fn from_f32(v: f32) -> Self {
        v as f64
    }
    #[inline]
    fn from_f64(v: f64) -> Self {
        v
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline]
    fn to_f32(self) -> f32 {
        self as f32
    }
    #[inline]
    fn sqrt(self) -> Self {
        self.sqrt()
    }
    #[inline]
    fn abs(self) -> Self {
        self.abs()
    }
    #[inline]
    fn is_finite(self) -> bool {
        self.is_finite()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generic_sum<R: Real>(vals: &[f32]) -> f64 {
        let mut acc = R::ZERO;
        for &v in vals {
            acc += R::from_f32(v);
        }
        acc.to_f64()
    }

    #[test]
    fn both_impls_agree_on_simple_sums() {
        let vals = [1.0, 2.5, -0.5];
        assert_eq!(generic_sum::<f32>(&vals), 3.0);
        assert_eq!(generic_sum::<f64>(&vals), 3.0);
    }

    #[test]
    fn sqrt_abs_finite() {
        assert_eq!(<f32 as Real>::sqrt(4.0), 2.0);
        assert_eq!(<f64 as Real>::abs(-3.0), 3.0);
        assert!(!<f32 as Real>::is_finite(f32::NAN));
        assert!(<f64 as Real>::is_finite(1e300));
    }
}
