//! Dependency-cone analysis of the Chambolle update — the quantitative
//! content of the paper's Figure 1 and the basis for both loop decomposition
//! and the sliding-window halo width.
//!
//! One iteration of the dual update at cell `(x, y)` reads `p` at seven
//! cells: computing `px/py[(x, y)]` at iteration `n+1` needs `Term` at
//! `(x, y)`, `(x+1, y)` and `(x, y+1)`, and `Term` at `(a, b)` needs
//! `p` at `(a, b)`, `(a−1, b)` and `(a, b−1)` — the union is the 7-element
//! set of Fig. 1.a. Iterating the stencil gives the cone for merged
//! iterations (Fig. 1.c) and the per-element overhead of computing a group
//! of outputs (Fig. 1.b).

use std::collections::HashSet;

/// The 7-point single-iteration dependency stencil, as relative offsets
/// `(dx, dy)` from the updated cell.
pub const STENCIL: [(i64, i64); 7] = [(0, 0), (-1, 0), (0, -1), (1, 0), (1, -1), (0, 1), (-1, 1)];

/// The set of iteration-`n` cells required to compute the given target
/// cells at iteration `n + iterations` (on an unbounded grid, i.e. ignoring
/// image borders, as Fig. 1 does).
///
/// With `iterations == 0` the result is the targets themselves.
///
/// # Examples
///
/// ```
/// use chambolle_core::dependency::dependency_set;
/// // Fig. 1.a: one element at n+1 needs 7 elements at n.
/// assert_eq!(dependency_set(&[(0, 0)], 1).len(), 7);
/// // Fig. 1.b: a 2x2 group at n+1 needs 14 elements at n.
/// let group = [(0, 0), (1, 0), (0, 1), (1, 1)];
/// assert_eq!(dependency_set(&group, 1).len(), 14);
/// ```
pub fn dependency_set(targets: &[(i64, i64)], iterations: u32) -> HashSet<(i64, i64)> {
    let mut current: HashSet<(i64, i64)> = targets.iter().copied().collect();
    for _ in 0..iterations {
        let mut next = HashSet::with_capacity(current.len() * 2);
        for &(x, y) in &current {
            for &(dx, dy) in &STENCIL {
                next.insert((x + dx, y + dy));
            }
        }
        current = next;
    }
    current
}

/// The cells of a `w × h` group anchored at the origin.
pub fn rect_group(w: usize, h: usize) -> Vec<(i64, i64)> {
    let mut cells = Vec::with_capacity(w * h);
    for y in 0..h as i64 {
        for x in 0..w as i64 {
            cells.push((x, y));
        }
    }
    cells
}

/// Figure-1 style statistics for computing a `group_w × group_h` block of
/// outputs `iterations` iterations ahead.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConeStats {
    /// Output group width.
    pub group_w: usize,
    /// Output group height.
    pub group_h: usize,
    /// Iterations merged (`x` in "n + x").
    pub iterations: u32,
    /// Total input cells required at iteration `n`.
    pub inputs: usize,
    /// `inputs − outputs`: cells computed only to satisfy dependencies.
    pub overhead: usize,
    /// `overhead / outputs` — the paper reports 7 and 3.5 for Figs. 1.a/1.b
    /// counted as *inputs* per output; we expose both.
    pub overhead_per_output: f64,
    /// `inputs / outputs`.
    pub inputs_per_output: f64,
}

/// Computes [`ConeStats`] for a rectangular output group.
///
/// # Panics
///
/// Panics if the group is empty.
pub fn cone_stats(group_w: usize, group_h: usize, iterations: u32) -> ConeStats {
    assert!(group_w > 0 && group_h > 0, "group must be non-empty");
    let outputs = group_w * group_h;
    let inputs = dependency_set(&rect_group(group_w, group_h), iterations).len();
    ConeStats {
        group_w,
        group_h,
        iterations,
        inputs,
        overhead: inputs - outputs,
        overhead_per_output: (inputs - outputs) as f64 / outputs as f64,
        inputs_per_output: inputs as f64 / outputs as f64,
    }
}

/// Among all `w × h` groups with `w * h == area` (integer factorizations),
/// returns the one minimizing inputs-per-output — the paper's observation
/// that "the overhead can be reduced if the group ... \[is\] disposed on a
/// squared shape".
///
/// # Panics
///
/// Panics if `area == 0`.
pub fn best_group_shape(area: usize, iterations: u32) -> ConeStats {
    assert!(area > 0, "area must be positive");
    let mut best: Option<ConeStats> = None;
    for w in 1..=area {
        if !area.is_multiple_of(w) {
            continue;
        }
        let h = area / w;
        let stats = cone_stats(w, h, iterations);
        let better = match &best {
            None => true,
            Some(b) => stats.inputs_per_output < b.inputs_per_output,
        };
        if better {
            best = Some(stats);
        }
    }
    best.expect("area >= 1 always has the 1 x area factorization")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig_1a_single_element_needs_7() {
        let s = dependency_set(&[(5, 5)], 1);
        assert_eq!(s.len(), 7);
        // The stencil's own members, translated.
        for (dx, dy) in STENCIL {
            assert!(s.contains(&(5 + dx, 5 + dy)));
        }
    }

    #[test]
    fn fig_1b_2x2_group_needs_14() {
        let stats = cone_stats(2, 2, 1);
        assert_eq!(stats.inputs, 14);
        assert_eq!(stats.overhead, 10);
        assert!((stats.inputs_per_output - 3.5).abs() < 1e-12);
    }

    #[test]
    fn zero_iterations_is_identity() {
        let t = [(0, 0), (3, 4)];
        let s = dependency_set(&t, 0);
        assert_eq!(s.len(), 2);
        assert!(s.contains(&(3, 4)));
    }

    #[test]
    fn cone_grows_monotonically_with_iterations() {
        let mut prev = 0;
        for it in 0..6 {
            let n = dependency_set(&[(0, 0)], it).len();
            assert!(n > prev || it == 0);
            prev = n;
        }
    }

    #[test]
    fn cone_is_contained_in_linf_ball() {
        // The stencil has L∞ radius 1, so k iterations stay within radius k.
        for k in 1..5u32 {
            let s = dependency_set(&[(0, 0)], k);
            for (x, y) in s {
                assert!(x.unsigned_abs() as u32 <= k && y.unsigned_abs() as u32 <= k);
            }
        }
    }

    #[test]
    fn halo_k_covers_k_merged_iterations() {
        // The justification for the sliding-window halo width: every cell a
        // K-iteration output depends on lies within L∞ distance K, so a halo
        // of K rows/columns suffices for exactness.
        let k = 3u32;
        let s = dependency_set(&rect_group(4, 4), k);
        for (x, y) in s {
            assert!((-(k as i64)..(4 + k as i64)).contains(&x));
            assert!((-(k as i64)..(4 + k as i64)).contains(&y));
        }
    }

    #[test]
    fn square_beats_line_for_same_area() {
        let square = cone_stats(4, 4, 1);
        let line = cone_stats(16, 1, 1);
        assert!(
            square.inputs_per_output < line.inputs_per_output,
            "square {} vs line {}",
            square.inputs_per_output,
            line.inputs_per_output
        );
        let best = best_group_shape(16, 1);
        assert_eq!((best.group_w, best.group_h), (4, 4));
    }

    #[test]
    fn overhead_per_output_shrinks_with_group_size() {
        let s1 = cone_stats(1, 1, 1);
        let s2 = cone_stats(2, 2, 1);
        let s4 = cone_stats(4, 4, 1);
        assert!(s1.inputs_per_output > s2.inputs_per_output);
        assert!(s2.inputs_per_output > s4.inputs_per_output);
        assert_eq!(s1.inputs, 7); // Fig. 1.a again, via stats
    }

    #[test]
    fn two_iterations_from_one_element() {
        // Fig. 1.c: the n+2 cone of a single element. Dilating the 7-point
        // stencil by itself yields 19 cells (computed, then frozen here as a
        // regression value).
        let s = dependency_set(&[(0, 0)], 2);
        assert_eq!(s.len(), 19);
    }
}
