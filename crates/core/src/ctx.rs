//! The execution context consolidating the solver entry-point surface.
//!
//! PRs 2–4 grew the public API a capability at a time: every solve sprouted
//! `_with_pool`, `_with_telemetry` and `_cancellable` twins, and each new
//! capability multiplied the surface. [`ExecCtx`] stops that: one value
//! carries **all** execution policy — worker pool, telemetry registry,
//! cancellation token and [`KernelBackend`] — and every solve family
//! exposes a single `*_with_ctx` entry point taking it. The historical
//! twins survive as thin wrappers that build the equivalent context and
//! delegate, so existing callers keep their exact behavior (and bits).
//!
//! [`ExecCtx::default`] is fully inert: no pool (sequential execution),
//! disabled telemetry (a single branch per probe), no cancellation. The
//! kernel backend defaults to [`KernelBackend::active`] — backend choice is
//! a pure throughput knob (every backend is bit-identical, see
//! [`crate::backend`]), so the widest supported vector unit is safe to use
//! even in an otherwise-inert context.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use chambolle_core::{chambolle_denoise_with_ctx, ChambolleParams, ExecCtx};
//! use chambolle_imaging::Grid;
//! use chambolle_par::ThreadPool;
//!
//! let v = Grid::from_fn(32, 24, |x, y| ((x ^ y) & 7) as f32 / 7.0);
//! let params = ChambolleParams::with_iterations(15);
//!
//! // Inert context: sequential, silent, uncancellable.
//! let (u_seq, _) = chambolle_denoise_with_ctx(&v, &params, &ExecCtx::default()).unwrap();
//!
//! // Pooled context: same bits, more cores.
//! let ctx = ExecCtx::default().with_pool(Arc::new(ThreadPool::new(4)));
//! let (u_par, _) = chambolle_denoise_with_ctx(&v, &params, &ctx).unwrap();
//! assert_eq!(u_seq.as_slice(), u_par.as_slice());
//! ```

use std::sync::Arc;

use chambolle_par::ThreadPool;
use chambolle_telemetry::Telemetry;

use crate::backend::KernelBackend;
use crate::cancel::{CancelToken, Cancelled};

/// Execution policy for one solve: pool + telemetry + cancellation +
/// kernel backend.
///
/// Cheap to clone (two `Arc` bumps at most) and immutable once built; the
/// builder methods consume and return `self` so contexts compose in one
/// expression.
#[derive(Debug, Clone)]
pub struct ExecCtx {
    pool: Option<Arc<ThreadPool>>,
    telemetry: Telemetry,
    cancel: Option<CancelToken>,
    backend: KernelBackend,
}

impl Default for ExecCtx {
    /// The inert context: no pool, disabled telemetry, no cancellation,
    /// and the process-wide active kernel backend.
    fn default() -> Self {
        ExecCtx {
            pool: None,
            telemetry: Telemetry::disabled(),
            cancel: None,
            backend: KernelBackend::active(),
        }
    }
}

impl ExecCtx {
    /// Alias for [`ExecCtx::default`].
    pub fn new() -> Self {
        ExecCtx::default()
    }

    /// Runs the solve's parallel stages on `pool`.
    pub fn with_pool(mut self, pool: Arc<ThreadPool>) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Records metrics and spans into `telemetry`.
    ///
    /// The context's kernel backend publishes its `backend.*` gauges into
    /// the handle immediately, so every run report produced from a solve
    /// through this context names the vector unit the bits came from.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self.backend.record_telemetry(&self.telemetry);
        self
    }

    /// Polls `cancel` at iteration boundaries.
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// Runs the row kernels on `backend` (bit-identical on every backend).
    pub fn with_backend(mut self, backend: KernelBackend) -> Self {
        self.backend = backend;
        self.backend.record_telemetry(&self.telemetry);
        self
    }

    /// The worker pool, if any.
    pub fn pool(&self) -> Option<&Arc<ThreadPool>> {
        self.pool.as_ref()
    }

    /// The telemetry handle (disabled by default).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The cancellation token, if any.
    pub fn cancel(&self) -> Option<&CancelToken> {
        self.cancel.as_ref()
    }

    /// The kernel backend the row kernels run on.
    pub fn backend(&self) -> KernelBackend {
        self.backend
    }

    /// Polls the cancellation token, if one is attached.
    ///
    /// # Errors
    ///
    /// Returns [`Cancelled`] once the attached token reports cancellation.
    pub fn checkpoint(&self) -> Result<(), Cancelled> {
        match &self.cancel {
            Some(token) => token.check(),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_context_is_inert() {
        let ctx = ExecCtx::default();
        assert!(ctx.pool().is_none());
        assert!(ctx.cancel().is_none());
        assert!(!ctx.telemetry().is_enabled());
        assert_eq!(ctx.backend(), KernelBackend::active());
        assert!(ctx.checkpoint().is_ok());
    }

    #[test]
    fn attaching_telemetry_publishes_backend_gauges() {
        use chambolle_telemetry::names;
        let telemetry = Telemetry::null();
        let ctx = ExecCtx::default()
            .with_telemetry(telemetry.clone())
            .with_backend(KernelBackend::Scalar);
        let snap = telemetry.snapshot();
        assert_eq!(
            snap.gauge(names::BACKEND_SIMD_LANES),
            Some(ctx.backend().lanes() as f64)
        );
        assert!(snap.gauge(names::BACKEND_SSE2_SUPPORTED).is_some());
        assert!(snap.gauge(names::BACKEND_AVX2_SUPPORTED).is_some());
    }

    #[test]
    fn builders_compose() {
        let token = CancelToken::new();
        let pool = Arc::new(ThreadPool::new(2));
        let ctx = ExecCtx::new()
            .with_pool(Arc::clone(&pool))
            .with_cancel(token.clone())
            .with_backend(KernelBackend::Scalar);
        assert_eq!(ctx.pool().unwrap().threads(), 2);
        assert_eq!(ctx.backend(), KernelBackend::Scalar);
        assert!(ctx.checkpoint().is_ok());
        token.cancel();
        assert!(ctx.checkpoint().is_err());
    }
}
