//! The execution context consolidating the solver entry-point surface.
//!
//! PRs 2–4 grew the public API a capability at a time: every solve sprouted
//! `_with_pool`, `_with_telemetry` and `_cancellable` twins, and each new
//! capability multiplied the surface. [`ExecCtx`] stops that: one value
//! carries **all** execution policy — worker pool, telemetry registry,
//! cancellation token and [`KernelBackend`] — and every solve family
//! exposes a single `*_with_ctx` entry point taking it. The historical
//! twins survive as thin wrappers that build the equivalent context and
//! delegate, so existing callers keep their exact behavior (and bits).
//!
//! [`ExecCtx::default`] is fully inert: no pool (sequential execution),
//! disabled telemetry (a single branch per probe), no cancellation. The
//! kernel backend defaults to [`KernelBackend::active`] — backend choice is
//! a pure throughput knob (every backend is bit-identical, see
//! [`crate::backend`]), so the widest supported vector unit is safe to use
//! even in an otherwise-inert context.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use chambolle_core::{chambolle_denoise_with_ctx, ChambolleParams, ExecCtx};
//! use chambolle_imaging::Grid;
//! use chambolle_par::ThreadPool;
//!
//! let v = Grid::from_fn(32, 24, |x, y| ((x ^ y) & 7) as f32 / 7.0);
//! let params = ChambolleParams::with_iterations(15);
//!
//! // Inert context: sequential, silent, uncancellable.
//! let (u_seq, _) = chambolle_denoise_with_ctx(&v, &params, &ExecCtx::default()).unwrap();
//!
//! // Pooled context: same bits, more cores.
//! let ctx = ExecCtx::default().with_pool(Arc::new(ThreadPool::new(4)));
//! let (u_par, _) = chambolle_denoise_with_ctx(&v, &params, &ctx).unwrap();
//! assert_eq!(u_seq.as_slice(), u_par.as_slice());
//! ```

use std::sync::{Arc, OnceLock};

use chambolle_par::ThreadPool;
use chambolle_telemetry::trace::TraceContext;
use chambolle_telemetry::Telemetry;
use chambolle_tune::{NumericsChoice, Tunables};

use crate::backend::KernelBackend;
use crate::cancel::{CancelToken, Cancelled};
use crate::tiling::TileConfig;

/// Environment variable that overrides the process-wide numerics tier
/// (`exact` or `fast`).
pub const NUMERICS_ENV: &str = "CHAMBOLLE_NUMERICS";

/// Which numerics tier the kernels of a solve run at.
///
/// **`Exact`** (the default) is the reference tier: every backend replays
/// the scalar operation order — no fused multiply-add, no reassociation —
/// so results are bit-identical across backends, thread counts and tile
/// schedules. That contract is what the workspace exactness suites pin.
///
/// **`Fast`** trades the byte-equality contract for throughput: kernels may
/// fuse multiply-adds, reassociate reductions, share one reciprocal across
/// the two normalizing divides of the dual update, replace `sqrt`/division
/// with hardware reciprocal approximations plus Newton–Raphson refinement,
/// run 16-lane AVX-512 bodies, and fuse K iterations in one register- and
/// cache-resident sweep. Fast results are validated against Exact by
/// **energy and duality-gap tolerance** ([`NumericsPolicy::ENERGY_RTOL`],
/// [`NumericsPolicy::PIXEL_ATOL`]) — the validation model of the paper's
/// own quantized 13/9/9-bit datapath, which ships accuracy bounds, not byte
/// equality. Within one backend the Fast tier is still deterministic and
/// thread-count invariant; it is *not* bit-comparable across backends or
/// tile shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum NumericsPolicy {
    /// Bit-exact reference numerics (scalar operation order everywhere).
    #[default]
    Exact,
    /// Tolerance-validated fast numerics (FMA, reassociation, approximate
    /// reciprocals, AVX-512, temporal fusion).
    Fast,
}

impl NumericsPolicy {
    /// Relative energy / duality-gap agreement the Fast tier guarantees
    /// against Exact for the same solve (pinned by the workspace tolerance
    /// harness).
    pub const ENERGY_RTOL: f64 = 1e-3;

    /// Absolute per-pixel agreement the Fast tier guarantees against Exact
    /// on unit-range images.
    pub const PIXEL_ATOL: f32 = 1e-3;

    /// Stable identifier (`exact`/`fast`) used by `CHAMBOLLE_NUMERICS`,
    /// telemetry and reports.
    pub fn as_str(&self) -> &'static str {
        match self {
            NumericsPolicy::Exact => "exact",
            NumericsPolicy::Fast => "fast",
        }
    }

    /// Parses a `CHAMBOLLE_NUMERICS` value (case-insensitive).
    pub fn parse(s: &str) -> Option<NumericsPolicy> {
        match s.trim().to_ascii_lowercase().as_str() {
            "exact" => Some(NumericsPolicy::Exact),
            "fast" => Some(NumericsPolicy::Fast),
            _ => None,
        }
    }

    /// Resolves an optional override string: a recognised value wins,
    /// anything else (unrecognised, absent) is the Exact default. The pure
    /// core of [`NumericsPolicy::active`], separate so tests can exercise
    /// the policy without touching the process environment.
    pub fn resolve(requested: Option<&str>) -> NumericsPolicy {
        requested
            .and_then(NumericsPolicy::parse)
            .unwrap_or(NumericsPolicy::Exact)
    }

    /// The process-wide numerics tier: the `CHAMBOLLE_NUMERICS` override if
    /// valid, else Exact. Resolved once and cached.
    pub fn active() -> NumericsPolicy {
        static ACTIVE: OnceLock<NumericsPolicy> = OnceLock::new();
        *ACTIVE.get_or_init(|| NumericsPolicy::resolve(std::env::var(NUMERICS_ENV).ok().as_deref()))
    }

    /// Maps a tunables knob to a policy: an explicit choice wins, `Auto`
    /// defers to [`NumericsPolicy::active`] (mirroring
    /// [`KernelBackend::from_choice`]).
    pub fn from_choice(choice: NumericsChoice) -> NumericsPolicy {
        match choice {
            NumericsChoice::Auto => NumericsPolicy::active(),
            NumericsChoice::Exact => NumericsPolicy::Exact,
            NumericsChoice::Fast => NumericsPolicy::Fast,
        }
    }
}

/// Fidelity-shedding policy for brownout operation.
///
/// Under sustained overload a service can keep *accepting* work while
/// spending less on each request: a context carrying a degradation policy
/// caps the iteration budget of every solve that runs through it. The
/// result converges less far (a "degraded tier" answer) but arrives — the
/// graceful-degradation trade of the adaptive real-time PIV architecture,
/// shedding fidelity before shedding requests.
///
/// A policy is pure configuration: attaching one to an [`ExecCtx`] changes
/// results only when a lever actually bites (the request asked for more
/// iterations than the cap, or asked for Exact numerics while the policy
/// sheds to Fast). Callers that must know which tier they got should check
/// [`DegradationPolicy::degrades`] against the requested iteration count.
///
/// Shedding is **staged**: the cheaper lever first. [`fast_tier`] switches
/// solves to the tolerance-validated Fast numerics tier — same iteration
/// count, same convergence point to within [`NumericsPolicy::ENERGY_RTOL`]
/// — and only [`cap`] (or [`with_cap`] stacked on a fast-tier policy)
/// actually truncates convergence.
///
/// [`fast_tier`]: DegradationPolicy::fast_tier
/// [`cap`]: DegradationPolicy::cap
/// [`with_cap`]: DegradationPolicy::with_cap
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegradationPolicy {
    /// Hard ceiling on Chambolle iterations per solve while degraded
    /// (`u32::MAX` when the policy sheds numerics only).
    pub max_iterations: u32,
    /// Numerics-tier override while degraded: `Some(Fast)` sheds precision
    /// guarantees instead of (or before) convergence depth, `None` leaves
    /// the context's own tier in force.
    pub numerics: Option<NumericsPolicy>,
}

impl DegradationPolicy {
    /// A policy capping solves at `max_iterations` iterations.
    ///
    /// # Panics
    ///
    /// Panics if `max_iterations` is zero — a zero-iteration "solve" would
    /// return the input unmodified, which is load shedding, not degradation.
    pub fn cap(max_iterations: u32) -> Self {
        assert!(
            max_iterations > 0,
            "a degradation policy must allow at least one iteration"
        );
        DegradationPolicy {
            max_iterations,
            numerics: None,
        }
    }

    /// A policy shedding to the [`NumericsPolicy::Fast`] tier without
    /// touching the iteration budget — the first (cheapest) brownout stage.
    pub fn fast_tier() -> Self {
        DegradationPolicy {
            max_iterations: u32::MAX,
            numerics: Some(NumericsPolicy::Fast),
        }
    }

    /// Adds fast-tier numerics shedding to this policy.
    pub fn with_fast_tier(mut self) -> Self {
        self.numerics = Some(NumericsPolicy::Fast);
        self
    }

    /// Adds an iteration cap to this policy (e.g. stacking the second
    /// brownout stage onto [`DegradationPolicy::fast_tier`]).
    ///
    /// # Panics
    ///
    /// Panics if `max_iterations` is zero (see [`DegradationPolicy::cap`]).
    pub fn with_cap(mut self, max_iterations: u32) -> Self {
        assert!(
            max_iterations > 0,
            "a degradation policy must allow at least one iteration"
        );
        self.max_iterations = max_iterations;
        self
    }

    /// The iteration budget this policy grants a request for `requested`.
    pub fn effective_iterations(&self, requested: u32) -> u32 {
        requested.min(self.max_iterations)
    }

    /// Whether the policy actually reduces a request for `requested`
    /// iterations.
    pub fn caps(&self, requested: u32) -> bool {
        requested > self.max_iterations
    }

    /// Whether the policy overrides the numerics tier to [`Fast`].
    ///
    /// [`Fast`]: NumericsPolicy::Fast
    pub fn sheds_numerics(&self) -> bool {
        self.numerics == Some(NumericsPolicy::Fast)
    }

    /// Whether a request for `requested` iterations would be served at a
    /// degraded tier under this policy — by iteration truncation, by
    /// numerics shedding, or both.
    pub fn degrades(&self, requested: u32) -> bool {
        self.caps(requested) || self.sheds_numerics()
    }
}

/// Execution policy for one solve: pool + telemetry + cancellation +
/// kernel backend + optional brownout degradation + trace context.
///
/// Cheap to clone (two `Arc` bumps at most) and immutable once built; the
/// builder methods consume and return `self` so contexts compose in one
/// expression.
#[derive(Debug, Clone)]
pub struct ExecCtx {
    pool: Option<Arc<ThreadPool>>,
    telemetry: Telemetry,
    cancel: Option<CancelToken>,
    backend: KernelBackend,
    numerics: NumericsPolicy,
    degradation: Option<DegradationPolicy>,
    trace: TraceContext,
    tunables: Tunables,
}

impl Default for ExecCtx {
    /// The inert context: no pool, disabled telemetry, no cancellation,
    /// and the process-wide active schedule ([`chambolle_tune::active`] —
    /// the historical constants unless a tuning profile is loaded).
    fn default() -> Self {
        ExecCtx::from_tunables(chambolle_tune::active())
    }
}

impl ExecCtx {
    /// Alias for [`ExecCtx::default`].
    pub fn new() -> Self {
        ExecCtx::default()
    }

    /// The auto-tuned context: resolves the process-wide active
    /// [`Tunables`] — loading the profile named by `CHAMBOLLE_PROFILE`
    /// (or `chambolle.profile.json`, if present) on first use, with total
    /// non-panicking fallback to the historical defaults — and attaches a
    /// worker pool of the tuned width wired to `telemetry`.
    ///
    /// Every schedule a profile can select is bit-identical to the
    /// defaults; a tuned context changes time, never pixels.
    pub fn auto(telemetry: Telemetry) -> Self {
        let tunables = chambolle_tune::active();
        let pool = Arc::new(ThreadPool::new(tunables.threads).with_telemetry(telemetry.clone()));
        ExecCtx::from_tunables(tunables)
            .with_telemetry(telemetry)
            .with_pool(pool)
    }

    /// An otherwise-inert context running the schedule in `tunables`: the
    /// kernel backend is resolved from the tunables' [`BackendChoice`]
    /// and [`ExecCtx::tile_config`] reflects its tile geometry. No pool is
    /// attached (callers that want the tuned pool width use
    /// [`ExecCtx::auto`] or attach one explicitly).
    ///
    /// [`BackendChoice`]: chambolle_tune::BackendChoice
    pub fn from_tunables(tunables: Tunables) -> Self {
        ExecCtx {
            pool: None,
            telemetry: Telemetry::disabled(),
            cancel: None,
            backend: KernelBackend::from_choice(tunables.backend),
            numerics: NumericsPolicy::from_choice(tunables.numerics),
            degradation: None,
            trace: TraceContext::NONE,
            tunables,
        }
    }

    /// Runs the solve's parallel stages on `pool`.
    pub fn with_pool(mut self, pool: Arc<ThreadPool>) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Records metrics and spans into `telemetry`.
    ///
    /// The context's kernel backend publishes its `backend.*` gauges into
    /// the handle immediately, so every run report produced from a solve
    /// through this context names the vector unit the bits came from.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self.backend.record_telemetry(&self.telemetry);
        self
    }

    /// Polls `cancel` at iteration boundaries.
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// Runs the row kernels on `backend` (bit-identical on every backend).
    pub fn with_backend(mut self, backend: KernelBackend) -> Self {
        self.backend = backend;
        self.backend.record_telemetry(&self.telemetry);
        self
    }

    /// Runs the solve at `numerics` tier (overriding the tunables knob and
    /// the `CHAMBOLLE_NUMERICS` environment default).
    pub fn with_numerics(mut self, numerics: NumericsPolicy) -> Self {
        self.numerics = numerics;
        self
    }

    /// Caps every solve's iteration budget per `policy` (brownout tier).
    ///
    /// Unlike the other context knobs this one **changes results** whenever
    /// the cap bites: that is its purpose. Solvers honoring the context
    /// report the capped budget through [`ExecCtx::effective_iterations`].
    pub fn with_degradation(mut self, policy: DegradationPolicy) -> Self {
        self.degradation = Some(policy);
        self
    }

    /// Tags the solve with a propagated distributed-trace context, so
    /// solver-side instrumentation can attribute its work to the request
    /// that caused it.
    pub fn with_trace(mut self, trace: TraceContext) -> Self {
        self.trace = trace;
        self
    }

    /// The worker pool, if any.
    pub fn pool(&self) -> Option<&Arc<ThreadPool>> {
        self.pool.as_ref()
    }

    /// The telemetry handle (disabled by default).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The cancellation token, if any.
    pub fn cancel(&self) -> Option<&CancelToken> {
        self.cancel.as_ref()
    }

    /// The kernel backend the row kernels run on.
    pub fn backend(&self) -> KernelBackend {
        self.backend
    }

    /// The numerics tier solves through this context run at, folding in any
    /// degradation override: an attached policy shedding numerics wins over
    /// the context's own tier (resolution order: degradation override >
    /// [`ExecCtx::with_numerics`] > `CHAMBOLLE_NUMERICS` > tunables knob >
    /// Exact).
    pub fn numerics(&self) -> NumericsPolicy {
        self.degradation
            .as_ref()
            .and_then(|p| p.numerics)
            .unwrap_or(self.numerics)
    }

    /// The brownout degradation policy, if one is attached.
    pub fn degradation(&self) -> Option<&DegradationPolicy> {
        self.degradation.as_ref()
    }

    /// The distributed-trace context ([`TraceContext::NONE`] by default).
    pub fn trace(&self) -> TraceContext {
        self.trace
    }

    /// The schedule knobs this context was built from.
    pub fn tunables(&self) -> &Tunables {
        &self.tunables
    }

    /// The tiled-solver geometry the context's tunables select.
    ///
    /// Falls back to [`TileConfig::default`] if the tunables' tile knobs
    /// are somehow unconstructible (cannot happen for tunables that passed
    /// [`Tunables::validate`], which every install and profile load does).
    pub fn tile_config(&self) -> TileConfig {
        TileConfig::from_tunables(&self.tunables).unwrap_or_default()
    }

    /// The iteration budget a solve asking for `requested` iterations gets
    /// under this context: `requested` itself without a degradation policy,
    /// the policy's cap otherwise.
    pub fn effective_iterations(&self, requested: u32) -> u32 {
        match &self.degradation {
            Some(policy) => policy.effective_iterations(requested),
            None => requested,
        }
    }

    /// Whether a solve asking for `requested` iterations would be served at
    /// the degraded tier under this context — by iteration capping or by
    /// numerics shedding.
    pub fn degrades(&self, requested: u32) -> bool {
        self.degradation
            .as_ref()
            .is_some_and(|p| p.degrades(requested))
    }

    /// Polls the cancellation token, if one is attached.
    ///
    /// # Errors
    ///
    /// Returns [`Cancelled`] once the attached token reports cancellation.
    pub fn checkpoint(&self) -> Result<(), Cancelled> {
        match &self.cancel {
            Some(token) => token.check(),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_context_is_inert() {
        let ctx = ExecCtx::default();
        assert!(ctx.pool().is_none());
        assert!(ctx.cancel().is_none());
        assert!(!ctx.telemetry().is_enabled());
        assert_eq!(ctx.backend(), KernelBackend::active());
        assert!(ctx.checkpoint().is_ok());
        assert!(ctx.degradation().is_none());
        assert_eq!(ctx.effective_iterations(100), 100);
        assert!(!ctx.degrades(100));
    }

    #[test]
    fn degradation_policy_caps_only_when_it_bites() {
        let policy = DegradationPolicy::cap(25);
        assert_eq!(policy.effective_iterations(100), 25);
        assert_eq!(policy.effective_iterations(10), 10);
        assert!(policy.caps(26));
        assert!(!policy.caps(25));

        let ctx = ExecCtx::default().with_degradation(policy);
        assert_eq!(ctx.degradation(), Some(&policy));
        assert_eq!(ctx.effective_iterations(100), 25);
        assert_eq!(ctx.effective_iterations(5), 5);
        assert!(ctx.degrades(26));
        assert!(!ctx.degrades(20));
    }

    #[test]
    #[should_panic(expected = "at least one iteration")]
    fn zero_iteration_degradation_policy_is_rejected() {
        let _ = DegradationPolicy::cap(0);
    }

    #[test]
    fn numerics_policy_parses_and_resolves() {
        assert_eq!(NumericsPolicy::parse("exact"), Some(NumericsPolicy::Exact));
        assert_eq!(NumericsPolicy::parse(" FAST "), Some(NumericsPolicy::Fast));
        assert_eq!(NumericsPolicy::parse("approx"), None);
        assert_eq!(NumericsPolicy::resolve(None), NumericsPolicy::Exact);
        assert_eq!(NumericsPolicy::resolve(Some("fast")), NumericsPolicy::Fast);
        assert_eq!(
            NumericsPolicy::resolve(Some("not-a-tier")),
            NumericsPolicy::Exact
        );
        assert_eq!(NumericsPolicy::Exact.as_str(), "exact");
        assert_eq!(NumericsPolicy::Fast.as_str(), "fast");
        assert_eq!(
            NumericsPolicy::from_choice(NumericsChoice::Exact),
            NumericsPolicy::Exact
        );
        assert_eq!(
            NumericsPolicy::from_choice(NumericsChoice::Fast),
            NumericsPolicy::Fast
        );
        // Auto defers to the process-wide default, which is itself
        // Exact unless CHAMBOLLE_NUMERICS overrides it.
        assert_eq!(
            NumericsPolicy::from_choice(NumericsChoice::Auto),
            NumericsPolicy::active()
        );
    }

    #[test]
    fn context_numerics_folds_degradation_override() {
        let ctx = ExecCtx::from_tunables(Tunables::default());
        // Tunables default to Auto, which resolves to the env-or-Exact
        // process default; with_numerics overrides it.
        let fast = ctx.clone().with_numerics(NumericsPolicy::Fast);
        assert_eq!(fast.numerics(), NumericsPolicy::Fast);
        let exact = ctx.with_numerics(NumericsPolicy::Exact);
        assert_eq!(exact.numerics(), NumericsPolicy::Exact);

        // A numerics-shedding degradation policy wins over the context's
        // own tier and marks every request degraded — even ones whose
        // iteration budget is untouched.
        let shed = exact.with_degradation(DegradationPolicy::fast_tier());
        assert_eq!(shed.numerics(), NumericsPolicy::Fast);
        assert_eq!(shed.effective_iterations(100), 100);
        assert!(shed.degrades(1));

        // A pure iteration cap leaves the tier alone.
        let capped = ExecCtx::default()
            .with_numerics(NumericsPolicy::Exact)
            .with_degradation(DegradationPolicy::cap(25));
        assert_eq!(capped.numerics(), NumericsPolicy::Exact);
    }

    #[test]
    fn staged_degradation_policies_compose() {
        let stage1 = DegradationPolicy::fast_tier();
        assert!(stage1.sheds_numerics());
        assert!(!stage1.caps(1_000_000));
        assert!(stage1.degrades(1));
        assert_eq!(stage1.effective_iterations(300), 300);

        let stage2 = DegradationPolicy::fast_tier().with_cap(25);
        assert!(stage2.sheds_numerics());
        assert!(stage2.caps(26));
        assert_eq!(stage2.effective_iterations(300), 25);

        let capped_then_shed = DegradationPolicy::cap(25).with_fast_tier();
        assert_eq!(capped_then_shed, stage2);

        let cap_only = DegradationPolicy::cap(25);
        assert!(!cap_only.sheds_numerics());
        assert!(cap_only.degrades(26));
        assert!(!cap_only.degrades(25));
    }

    #[test]
    fn attaching_telemetry_publishes_backend_gauges() {
        use chambolle_telemetry::names;
        let telemetry = Telemetry::null();
        let ctx = ExecCtx::default()
            .with_telemetry(telemetry.clone())
            .with_backend(KernelBackend::Scalar);
        let snap = telemetry.snapshot();
        assert_eq!(
            snap.gauge(names::BACKEND_SIMD_LANES),
            Some(ctx.backend().lanes() as f64)
        );
        assert!(snap.gauge(names::BACKEND_SSE2_SUPPORTED).is_some());
        assert!(snap.gauge(names::BACKEND_AVX2_SUPPORTED).is_some());
    }

    #[test]
    fn builders_compose() {
        let token = CancelToken::new();
        let pool = Arc::new(ThreadPool::new(2));
        let ctx = ExecCtx::new()
            .with_pool(Arc::clone(&pool))
            .with_cancel(token.clone())
            .with_backend(KernelBackend::Scalar);
        assert_eq!(ctx.pool().unwrap().threads(), 2);
        assert_eq!(ctx.backend(), KernelBackend::Scalar);
        assert!(ctx.checkpoint().is_ok());
        token.cancel();
        assert!(ctx.checkpoint().is_err());
    }
}
