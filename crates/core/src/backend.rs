//! Runtime-dispatched SIMD backends for the fused row kernels.
//!
//! A [`KernelBackend`] names one implementation of the hot row kernels in
//! [`crate::kernels`]: the portable scalar reference, 128-bit SSE2,
//! 256-bit AVX2 or 512-bit AVX-512 `std::arch` intrinsics. At the
//! **Exact** numerics tier all of them compute **bit-identical** results
//! (the AVX-512 backend executes the AVX2 exact bodies — dedicated 16-lane
//! kernels exist only at the Fast tier, where byte equality is not the
//! contract):
//!
//! - vector lanes replay the scalar operation order exactly — no fused
//!   multiply-add, no reassociation — and every op used (`add`, `sub`,
//!   `mul`, `div`, `sqrt`, sign-flip via XOR) is correctly rounded
//!   elementwise under IEEE 754, so each lane produces the same bits the
//!   scalar loop would;
//! - horizontal reductions (the energies in [`crate::solver::rof_energy`]
//!   and [`crate::diagnostics`]) are **not** vectorized at all: they keep
//!   the fixed left-to-right accumulation order of a sequential `f64` sum
//!   over row-major cells, on every backend;
//! - `f64` grids always take the scalar path (the SIMD bodies are written
//!   for the `f32` production kernels).
//!
//! The process-wide default is resolved once by [`KernelBackend::active`]:
//! the widest level the CPU supports, overridable with
//! `CHAMBOLLE_BACKEND=scalar|sse2|avx2|avx512` (see
//! [`chambolle_par::simd`]). Because every backend is bit-identical at the
//! Exact tier, the choice is purely a throughput knob — pinned by the
//! backend-exactness test matrix at the workspace root.
//!
//! The **Fast** tier ([`crate::ctx::NumericsPolicy::Fast`]) swaps in the
//! kernels of [`crate::fast`]: FMA contraction, a shared reciprocal for
//! the two normalizing divides, `rsqrt`/`rcp` approximations refined by one
//! Newton–Raphson step, and true 16-lane AVX-512 bodies. Those are
//! tolerance-validated against the exact reference, not bit-compared.

use std::any::TypeId;

use chambolle_par::simd::{self, SimdLevel};
use chambolle_telemetry::{names, Telemetry};

use crate::kernels::{self, BandHalo};
use crate::real::Real;

/// One implementation of the fused row kernels.
///
/// Constructed either explicitly (tests, benchmarks) or via
/// [`KernelBackend::active`] (production paths). A backend whose CPU
/// features are missing at run time silently executes the scalar reference
/// instead — selection can change *speed*, never *bits* and never safety.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelBackend {
    /// Portable scalar Rust — the reference all other backends must match.
    Scalar,
    /// 128-bit SSE2 intrinsics, 4 × `f32` per op.
    Sse2,
    /// 256-bit AVX2 intrinsics, 8 × `f32` per op.
    Avx2,
    /// 512-bit AVX-512F intrinsics, 16 × `f32` per op. Exact-tier solves
    /// delegate to the AVX2 bodies (bit-identity is cheaper to audit on one
    /// vector width); the Fast tier runs dedicated 16-lane kernels.
    Avx512,
}

impl Default for KernelBackend {
    /// The process-wide active backend ([`KernelBackend::active`]).
    fn default() -> Self {
        KernelBackend::active()
    }
}

impl KernelBackend {
    /// The process-wide backend: `CHAMBOLLE_BACKEND` override if valid and
    /// supported, else the widest level the CPU offers. Resolved once.
    pub fn active() -> Self {
        KernelBackend::from_level(simd::active())
    }

    /// The widest backend the current CPU supports, ignoring the override.
    pub fn detect() -> Self {
        KernelBackend::from_level(simd::detect())
    }

    /// Maps a raw [`SimdLevel`] onto a backend.
    pub fn from_level(level: SimdLevel) -> Self {
        match level {
            SimdLevel::Scalar => KernelBackend::Scalar,
            SimdLevel::Sse2 => KernelBackend::Sse2,
            SimdLevel::Avx2 => KernelBackend::Avx2,
            SimdLevel::Avx512 => KernelBackend::Avx512,
        }
    }

    /// Maps a tuning-profile [`chambolle_tune::BackendChoice`] onto a
    /// backend: `Auto` defers to [`KernelBackend::active`] (including the
    /// `CHAMBOLLE_BACKEND` override). A profile naming a backend the host
    /// cannot execute stays safe — unsupported levels dispatch to the
    /// scalar reference at run time, same bits, lower speed.
    pub fn from_choice(choice: chambolle_tune::BackendChoice) -> Self {
        use chambolle_tune::BackendChoice;
        match choice {
            BackendChoice::Auto => KernelBackend::active(),
            BackendChoice::Scalar => KernelBackend::Scalar,
            BackendChoice::Sse2 => KernelBackend::Sse2,
            BackendChoice::Avx2 => KernelBackend::Avx2,
            BackendChoice::Avx512 => KernelBackend::Avx512,
        }
    }

    /// The raw [`SimdLevel`] this backend runs at, for the `imaging` row
    /// kernels which dispatch on the level directly.
    pub fn simd_level(&self) -> SimdLevel {
        match self {
            KernelBackend::Scalar => SimdLevel::Scalar,
            KernelBackend::Sse2 => SimdLevel::Sse2,
            KernelBackend::Avx2 => SimdLevel::Avx2,
            KernelBackend::Avx512 => SimdLevel::Avx512,
        }
    }

    /// Stable identifier (`scalar`/`sse2`/`avx2`/`avx512`).
    pub fn as_str(&self) -> &'static str {
        self.simd_level().as_str()
    }

    /// `f32` lanes per vector op.
    pub fn lanes(&self) -> usize {
        self.simd_level().lanes()
    }

    /// Whether the current CPU can execute this backend's intrinsics.
    pub fn is_supported(&self) -> bool {
        self.simd_level().is_supported()
    }

    /// Records the `backend.*` gauges describing this backend and the
    /// host's capabilities into `telemetry`.
    pub fn record_telemetry(&self, telemetry: &Telemetry) {
        telemetry.gauge_set(names::BACKEND_SIMD_LANES, self.lanes() as f64);
        telemetry.gauge_set(
            names::BACKEND_SSE2_SUPPORTED,
            f64::from(SimdLevel::Sse2.is_supported()),
        );
        telemetry.gauge_set(
            names::BACKEND_AVX2_SUPPORTED,
            f64::from(SimdLevel::Avx2.is_supported()),
        );
        telemetry.gauge_set(
            names::BACKEND_AVX512_SUPPORTED,
            f64::from(SimdLevel::Avx512.is_supported()),
        );
    }

    /// [`kernels::compute_term_row`] on this backend. Bit-identical to the
    /// scalar reference for every backend.
    #[allow(clippy::too_many_arguments)] // mirrors the kernel's flat-slice shape
    #[inline]
    pub fn compute_term_row<R: Real>(
        &self,
        px_row: &[R],
        py_row: &[R],
        py_above: Option<&[R]>,
        v_row: &[R],
        inv_theta: R,
        last_row: bool,
        out: &mut [R],
    ) {
        #[cfg(target_arch = "x86_64")]
        if *self != KernelBackend::Scalar && out.len() >= 2 && self.is_supported() {
            if let (Some(px), Some(py), Some(v)) =
                (f32_slice(px_row), f32_slice(py_row), f32_slice(v_row))
            {
                let above = py_above.map(|a| f32_slice(a).expect("R proven to be f32"));
                let out = f32_slice_mut(out).expect("R proven to be f32");
                x86::term_row(*self, px, py, above, v, inv_theta.to_f32(), last_row, out);
                return;
            }
        }
        kernels::compute_term_row(px_row, py_row, py_above, v_row, inv_theta, last_row, out);
    }

    /// [`kernels::update_p_row`] on this backend. Bit-identical to the
    /// scalar reference for every backend.
    #[inline]
    pub fn update_p_row<R: Real>(
        &self,
        term_row: &[R],
        term_below: Option<&[R]>,
        step_ratio: R,
        px_row: &mut [R],
        py_row: &mut [R],
    ) {
        #[cfg(target_arch = "x86_64")]
        if *self != KernelBackend::Scalar && term_row.len() >= 2 && self.is_supported() {
            if let Some(term) = f32_slice(term_row) {
                let below = term_below.map(|b| f32_slice(b).expect("R proven to be f32"));
                let px = f32_slice_mut(px_row).expect("R proven to be f32");
                let py = f32_slice_mut(py_row).expect("R proven to be f32");
                x86::update_p_row(*self, term, below, step_ratio.to_f32(), px, py);
                return;
            }
        }
        kernels::update_p_row(term_row, term_below, step_ratio, px_row, py_row);
    }

    /// [`kernels::fused_band_iteration`] with the term and update rows
    /// running on this backend. Bit-identical to the scalar reference.
    #[allow(clippy::too_many_arguments)] // mirrors the kernel's flat-slice shape
    pub fn fused_band_iteration<R: Real>(
        &self,
        px_band: &mut [R],
        py_band: &mut [R],
        v_band: &[R],
        w: usize,
        h: usize,
        r0: usize,
        halo: BandHalo<'_, R>,
        inv_theta: R,
        step_ratio: R,
        term_a: &mut [R],
        term_b: &mut [R],
    ) {
        kernels::fused_band_iteration_on(
            *self, px_band, py_band, v_band, w, h, r0, halo, inv_theta, step_ratio, term_a, term_b,
        );
    }
}

/// Reinterprets `&[R]` as `&[f32]` iff `R` *is* `f32`.
#[cfg(target_arch = "x86_64")]
#[inline]
fn f32_slice<R: Real>(s: &[R]) -> Option<&[f32]> {
    if TypeId::of::<R>() == TypeId::of::<f32>() {
        // SAFETY: the TypeId check proves R == f32, so element layout,
        // length and lifetime all carry over unchanged.
        Some(unsafe { std::slice::from_raw_parts(s.as_ptr().cast::<f32>(), s.len()) })
    } else {
        None
    }
}

/// Reinterprets `&mut [R]` as `&mut [f32]` iff `R` *is* `f32`.
#[cfg(target_arch = "x86_64")]
#[inline]
fn f32_slice_mut<R: Real>(s: &mut [R]) -> Option<&mut [f32]> {
    if TypeId::of::<R>() == TypeId::of::<f32>() {
        // SAFETY: the TypeId check proves R == f32; the mutable borrow is
        // passed through exclusively.
        Some(unsafe { std::slice::from_raw_parts_mut(s.as_mut_ptr().cast::<f32>(), s.len()) })
    } else {
        None
    }
}

/// The x86-64 intrinsic bodies.
///
/// Every function replays the scalar loops of [`crate::kernels`] with the
/// per-lane operation order preserved exactly: no FMA contraction, no
/// reassociation, negation as an IEEE sign-flip (so `-0.0` behaves as in
/// the scalar code), and scalar handling for row edges and remainder lanes.
#[cfg(target_arch = "x86_64")]
mod x86 {
    use std::arch::x86_64::*;

    use super::KernelBackend;
    use crate::kernels;

    /// Which y-divergence rule the term row uses (the four cases of
    /// [`kernels::compute_term_row`]).
    enum DivY<'a> {
        /// Single-row frame: `div_y = 0`.
        Zero,
        /// First frame row: `div_y = py[x]`.
        First(&'a [f32]),
        /// Interior row: `div_y = py[x] − above[x]`.
        Interior(&'a [f32], &'a [f32]),
        /// Last frame row: `div_y = −above[x]`.
        Last(&'a [f32]),
    }

    impl DivY<'_> {
        #[inline]
        fn at(&self, x: usize) -> f32 {
            match self {
                DivY::Zero => 0.0,
                DivY::First(py) => py[x],
                DivY::Interior(py, above) => py[x] - above[x],
                DivY::Last(above) => -above[x],
            }
        }
    }

    /// Vectorized [`kernels::compute_term_row`]; caller guarantees
    /// `out.len() >= 2` and that `backend` is supported on this CPU.
    #[allow(clippy::too_many_arguments)]
    pub(super) fn term_row(
        backend: KernelBackend,
        px: &[f32],
        py: &[f32],
        above: Option<&[f32]>,
        v: &[f32],
        inv_theta: f32,
        last_row: bool,
        out: &mut [f32],
    ) {
        let div_y = match (above, last_row) {
            (None, true) => DivY::Zero,
            (None, false) => DivY::First(py),
            (Some(a), false) => DivY::Interior(py, a),
            (Some(a), true) => DivY::Last(a),
        };
        match backend {
            // SAFETY: the caller checked `backend.is_supported()`, which for
            // Avx2 is a runtime `is_x86_feature_detected!("avx2")` — and for
            // Avx512 includes the same avx2 check (see `SimdLevel`), since
            // the exact tier delegates to the AVX2 bodies.
            KernelBackend::Avx2 | KernelBackend::Avx512 => unsafe {
                term_row_avx2(px, v, inv_theta, out, &div_y)
            },
            // SAFETY: as above with `is_x86_feature_detected!("sse2")`.
            KernelBackend::Sse2 => unsafe { term_row_sse2(px, v, inv_theta, out, &div_y) },
            KernelBackend::Scalar => unreachable!("scalar never dispatches here"),
        }
    }

    /// Vectorized [`kernels::update_p_row`]; caller guarantees
    /// `term.len() >= 2` and that `backend` is supported on this CPU.
    pub(super) fn update_p_row(
        backend: KernelBackend,
        term: &[f32],
        below: Option<&[f32]>,
        step: f32,
        px: &mut [f32],
        py: &mut [f32],
    ) {
        match backend {
            // SAFETY: the caller checked `backend.is_supported()`, which for
            // Avx2 is a runtime `is_x86_feature_detected!("avx2")` — and for
            // Avx512 includes the same avx2 check (see `SimdLevel`), since
            // the exact tier delegates to the AVX2 bodies.
            KernelBackend::Avx2 | KernelBackend::Avx512 => unsafe {
                update_p_row_avx2(term, below, step, px, py)
            },
            // SAFETY: as above with `is_x86_feature_detected!("sse2")`.
            KernelBackend::Sse2 => unsafe { update_p_row_sse2(term, below, step, px, py) },
            KernelBackend::Scalar => unreachable!("scalar never dispatches here"),
        }
    }

    /// The four `DivY` shapes as compile-time selectors, so each vector
    /// loop body is stamped out branch-free (the runtime `match` happens
    /// once per row, not once per vector).
    const DY_ZERO: u8 = 0;
    const DY_FIRST: u8 = 1;
    const DY_INTERIOR: u8 = 2;
    const DY_LAST: u8 = 3;

    #[target_feature(enable = "avx2")]
    unsafe fn term_row_avx2(
        px: &[f32],
        v: &[f32],
        inv_theta: f32,
        out: &mut [f32],
        div_y: &DivY<'_>,
    ) {
        // SAFETY (all four arms): delegated; the caller's bounds contract
        // is forwarded unchanged, and the slice passed as `dy` matches the
        // selector's expectations (unused/`py`/`above` per variant).
        unsafe {
            match div_y {
                DivY::Zero => term_row_avx2_on::<DY_ZERO>(px, px, px, v, inv_theta, out, div_y),
                DivY::First(py) => {
                    term_row_avx2_on::<DY_FIRST>(px, py, py, v, inv_theta, out, div_y)
                }
                DivY::Interior(py, above) => {
                    term_row_avx2_on::<DY_INTERIOR>(px, py, above, v, inv_theta, out, div_y)
                }
                DivY::Last(above) => {
                    term_row_avx2_on::<DY_LAST>(px, above, above, v, inv_theta, out, div_y)
                }
            }
        }
    }

    /// One monomorphized AVX2 term-row loop per `DivY` shape. `py` and
    /// `above` are the variant's payload slices (aliased to `px` when the
    /// variant has no payload — never read then).
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2")]
    unsafe fn term_row_avx2_on<const DY: u8>(
        px: &[f32],
        py: &[f32],
        above: &[f32],
        v: &[f32],
        inv_theta: f32,
        out: &mut [f32],
        div_y: &DivY<'_>,
    ) {
        let w = out.len();
        let it = _mm256_set1_ps(inv_theta);
        out[0] = (px[0] + div_y.at(0)) - v[0] * inv_theta;
        // One 8-lane tap shared by both the paired and the single loop; all
        // ops per lane match the scalar expression order exactly.
        //
        // SAFETY (of the closure body): every caller guarantees
        // `x + 8 <= w − 1 < len`, bounding every unaligned load including
        // the shifted `px[x − 1]` stencil read.
        let tap = |x: usize, out: &mut [f32]| unsafe {
            let dx = _mm256_sub_ps(
                _mm256_loadu_ps(px.as_ptr().add(x)),
                _mm256_loadu_ps(px.as_ptr().add(x - 1)),
            );
            let dy = match DY {
                DY_ZERO => _mm256_setzero_ps(),
                DY_FIRST => _mm256_loadu_ps(py.as_ptr().add(x)),
                DY_INTERIOR => _mm256_sub_ps(
                    _mm256_loadu_ps(py.as_ptr().add(x)),
                    _mm256_loadu_ps(above.as_ptr().add(x)),
                ),
                // IEEE sign-flip: matches the scalar `−above[x]` bitwise
                // (a `0.0 − a` subtraction would turn `−0.0` into `+0.0`).
                _ => _mm256_xor_ps(_mm256_set1_ps(-0.0), _mm256_loadu_ps(above.as_ptr().add(x))),
            };
            let vi = _mm256_mul_ps(_mm256_loadu_ps(v.as_ptr().add(x)), it);
            _mm256_storeu_ps(
                out.as_mut_ptr().add(x),
                _mm256_sub_ps(_mm256_add_ps(dx, dy), vi),
            );
        };
        let mut x = 1usize;
        // Two vectors per trip to amortize loop overhead; trips are
        // independent, so unrolling cannot change any lane's result.
        while x + 16 < w {
            tap(x, out);
            tap(x + 8, out);
            x += 16;
        }
        while x + 8 < w {
            tap(x, out);
            x += 8;
        }
        while x < w - 1 {
            out[x] = ((px[x] - px[x - 1]) + div_y.at(x)) - v[x] * inv_theta;
            x += 1;
        }
        out[w - 1] = (-px[w - 2] + div_y.at(w - 1)) - v[w - 1] * inv_theta;
    }

    #[target_feature(enable = "sse2")]
    unsafe fn term_row_sse2(
        px: &[f32],
        v: &[f32],
        inv_theta: f32,
        out: &mut [f32],
        div_y: &DivY<'_>,
    ) {
        let w = out.len();
        let it = _mm_set1_ps(inv_theta);
        out[0] = (px[0] + div_y.at(0)) - v[0] * inv_theta;
        let mut x = 1usize;
        while x + 4 < w {
            // SAFETY: `x + 4 <= w − 1 < len` bounds every unaligned load,
            // including the shifted `px[x − 1]` stencil read.
            unsafe {
                let dx = _mm_sub_ps(
                    _mm_loadu_ps(px.as_ptr().add(x)),
                    _mm_loadu_ps(px.as_ptr().add(x - 1)),
                );
                let dy = match div_y {
                    DivY::Zero => _mm_setzero_ps(),
                    DivY::First(py) => _mm_loadu_ps(py.as_ptr().add(x)),
                    DivY::Interior(py, above) => _mm_sub_ps(
                        _mm_loadu_ps(py.as_ptr().add(x)),
                        _mm_loadu_ps(above.as_ptr().add(x)),
                    ),
                    // IEEE sign-flip: matches the scalar `−above[x]` bitwise.
                    DivY::Last(above) => {
                        _mm_xor_ps(_mm_set1_ps(-0.0), _mm_loadu_ps(above.as_ptr().add(x)))
                    }
                };
                let vi = _mm_mul_ps(_mm_loadu_ps(v.as_ptr().add(x)), it);
                _mm_storeu_ps(out.as_mut_ptr().add(x), _mm_sub_ps(_mm_add_ps(dx, dy), vi));
            }
            x += 4;
        }
        while x < w - 1 {
            out[x] = ((px[x] - px[x - 1]) + div_y.at(x)) - v[x] * inv_theta;
            x += 1;
        }
        out[w - 1] = (-px[w - 2] + div_y.at(w - 1)) - v[w - 1] * inv_theta;
    }

    #[target_feature(enable = "avx2")]
    unsafe fn update_p_row_avx2(
        term: &[f32],
        below: Option<&[f32]>,
        step: f32,
        px: &mut [f32],
        py: &mut [f32],
    ) {
        // SAFETY (both arms): delegated; the caller's bounds contract is
        // forwarded unchanged, and `below` aliases `term` in the absent
        // case purely as a placeholder — the `HAS_BELOW = false` body never
        // reads it.
        unsafe {
            match below {
                Some(b) => update_p_row_avx2_on::<true>(term, b, below, step, px, py),
                None => update_p_row_avx2_on::<false>(term, term, below, step, px, py),
            }
        }
    }

    /// One monomorphized AVX2 update-row loop per `below` shape, so the
    /// last-row / interior-row branch is resolved once per row instead of
    /// once per vector trip.
    #[target_feature(enable = "avx2")]
    unsafe fn update_p_row_avx2_on<const HAS_BELOW: bool>(
        term: &[f32],
        below: &[f32],
        below_opt: Option<&[f32]>,
        step: f32,
        px: &mut [f32],
        py: &mut [f32],
    ) {
        let w = term.len();
        let sv = _mm256_set1_ps(step);
        let one = _mm256_set1_ps(1.0);
        // One 8-lane update; op order matches the scalar cell exactly:
        // t1·t1 + t2·t2, √, 1 + step·grad — no FMA, so each lane rounds
        // identically to the scalar reference.
        //
        // SAFETY (of the closure body): every caller guarantees
        // `x + 8 <= w − 1 < len`, bounding every unaligned load including
        // the forward-difference `term[x + 1]` read.
        let tap = |x: usize, px: &mut [f32], py: &mut [f32]| unsafe {
            let t = _mm256_loadu_ps(term.as_ptr().add(x));
            let t1 = _mm256_sub_ps(_mm256_loadu_ps(term.as_ptr().add(x + 1)), t);
            let t2 = if HAS_BELOW {
                _mm256_sub_ps(_mm256_loadu_ps(below.as_ptr().add(x)), t)
            } else {
                _mm256_setzero_ps()
            };
            let grad = _mm256_sqrt_ps(_mm256_add_ps(_mm256_mul_ps(t1, t1), _mm256_mul_ps(t2, t2)));
            let denom = _mm256_add_ps(one, _mm256_mul_ps(sv, grad));
            let npx = _mm256_div_ps(
                _mm256_add_ps(_mm256_loadu_ps(px.as_ptr().add(x)), _mm256_mul_ps(sv, t1)),
                denom,
            );
            let npy = _mm256_div_ps(
                _mm256_add_ps(_mm256_loadu_ps(py.as_ptr().add(x)), _mm256_mul_ps(sv, t2)),
                denom,
            );
            _mm256_storeu_ps(px.as_mut_ptr().add(x), npx);
            _mm256_storeu_ps(py.as_mut_ptr().add(x), npy);
        };
        let mut x = 0usize;
        // Two independent vectors per trip: the divider and sqrt units are
        // only partially pipelined, so exposing 16 in-flight lanes lets the
        // second vector's long-latency ops overlap the first's. Trips and
        // taps are independent, so unrolling cannot change any lane.
        // The last column (t1 forced to zero) never enters a vector loop.
        while x + 16 < w {
            tap(x, px, py);
            tap(x + 8, px, py);
            x += 16;
        }
        while x + 8 < w {
            tap(x, px, py);
            x += 8;
        }
        // Remainder lanes and the final column: the scalar row kernel on the
        // suffix computes exactly them (its zero-t1 last column is the
        // frame's real last column).
        kernels::update_p_row(
            &term[x..],
            below_opt.map(|b| &b[x..]),
            step,
            &mut px[x..],
            &mut py[x..],
        );
    }

    #[target_feature(enable = "sse2")]
    unsafe fn update_p_row_sse2(
        term: &[f32],
        below: Option<&[f32]>,
        step: f32,
        px: &mut [f32],
        py: &mut [f32],
    ) {
        let w = term.len();
        let sv = _mm_set1_ps(step);
        let one = _mm_set1_ps(1.0);
        let mut x = 0usize;
        while x + 4 < w {
            // SAFETY: `x + 4 <= w − 1 < len` bounds every unaligned load,
            // including the forward-difference `term[x + 1]` read.
            unsafe {
                let t = _mm_loadu_ps(term.as_ptr().add(x));
                let t1 = _mm_sub_ps(_mm_loadu_ps(term.as_ptr().add(x + 1)), t);
                let t2 = match below {
                    Some(b) => _mm_sub_ps(_mm_loadu_ps(b.as_ptr().add(x)), t),
                    None => _mm_setzero_ps(),
                };
                let grad = _mm_sqrt_ps(_mm_add_ps(_mm_mul_ps(t1, t1), _mm_mul_ps(t2, t2)));
                let denom = _mm_add_ps(one, _mm_mul_ps(sv, grad));
                let npx = _mm_div_ps(
                    _mm_add_ps(_mm_loadu_ps(px.as_ptr().add(x)), _mm_mul_ps(sv, t1)),
                    denom,
                );
                let npy = _mm_div_ps(
                    _mm_add_ps(_mm_loadu_ps(py.as_ptr().add(x)), _mm_mul_ps(sv, t2)),
                    denom,
                );
                _mm_storeu_ps(px.as_mut_ptr().add(x), npx);
                _mm_storeu_ps(py.as_mut_ptr().add(x), npy);
            }
            x += 4;
        }
        kernels::update_p_row(
            &term[x..],
            below.map(|b| &b[x..]),
            step,
            &mut px[x..],
            &mut py[x..],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chambolle_imaging::Grid;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn vector_backends() -> Vec<KernelBackend> {
        [
            KernelBackend::Sse2,
            KernelBackend::Avx2,
            KernelBackend::Avx512,
        ]
        .into_iter()
        .filter(KernelBackend::is_supported)
        .collect()
    }

    fn random_rows(w: usize, seed: u64) -> (Vec<f32>, Vec<f32>, Vec<f32>, Vec<f32>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let row = |rng: &mut StdRng| (0..w).map(|_| rng.gen_range(-0.9f32..0.9)).collect();
        (row(&mut rng), row(&mut rng), row(&mut rng), row(&mut rng))
    }

    #[test]
    fn backend_identity_mapping_is_consistent() {
        for b in [
            KernelBackend::Scalar,
            KernelBackend::Sse2,
            KernelBackend::Avx2,
            KernelBackend::Avx512,
        ] {
            assert_eq!(KernelBackend::from_level(b.simd_level()), b);
            assert_eq!(b.lanes(), b.simd_level().lanes());
        }
        assert!(KernelBackend::active().is_supported());
        assert_eq!(KernelBackend::default(), KernelBackend::active());
    }

    #[test]
    fn term_rows_bit_identical_across_backends_and_row_kinds() {
        for w in [1usize, 2, 3, 4, 5, 8, 9, 16, 31, 64, 129] {
            let (px, py, above, v) = random_rows(w, 7 + w as u64);
            let inv_theta = 4.0f32;
            for (above_opt, last) in [
                (None, true),
                (None, false),
                (Some(above.as_slice()), false),
                (Some(above.as_slice()), true),
            ] {
                let mut reference = vec![0.0f32; w];
                kernels::compute_term_row(&px, &py, above_opt, &v, inv_theta, last, &mut reference);
                for backend in vector_backends() {
                    let mut out = vec![0.0f32; w];
                    backend.compute_term_row(&px, &py, above_opt, &v, inv_theta, last, &mut out);
                    assert_eq!(
                        out.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
                        reference.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
                        "{backend:?} w={w} above={} last={last}",
                        above_opt.is_some(),
                    );
                }
            }
        }
    }

    #[test]
    fn update_rows_bit_identical_across_backends_and_widths() {
        for w in [1usize, 2, 3, 4, 5, 8, 9, 16, 31, 64, 129] {
            let (term, below, px0, py0) = random_rows(w, 99 + w as u64);
            let step = 0.248f32;
            for below_opt in [None, Some(below.as_slice())] {
                let (mut rpx, mut rpy) = (px0.clone(), py0.clone());
                kernels::update_p_row(&term, below_opt, step, &mut rpx, &mut rpy);
                for backend in vector_backends() {
                    let (mut bpx, mut bpy) = (px0.clone(), py0.clone());
                    backend.update_p_row(&term, below_opt, step, &mut bpx, &mut bpy);
                    assert_eq!(
                        bpx.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
                        rpx.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
                        "{backend:?} px w={w} below={}",
                        below_opt.is_some(),
                    );
                    assert_eq!(
                        bpy.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
                        rpy.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
                        "{backend:?} py w={w} below={}",
                        below_opt.is_some(),
                    );
                }
            }
        }
    }

    #[test]
    fn negative_zero_in_last_row_matches_scalar_sign() {
        // `div_y = −above[x]` must preserve −0.0 semantics; a subtraction
        // from +0.0 would not.
        for backend in vector_backends() {
            let w = 24;
            let px = vec![0.0f32; w];
            let py = vec![0.0f32; w];
            let above = vec![0.0f32; w];
            let v = vec![0.0f32; w];
            let mut reference = vec![1.0f32; w];
            let mut out = vec![1.0f32; w];
            kernels::compute_term_row(&px, &py, Some(&above), &v, 4.0, true, &mut reference);
            backend.compute_term_row(&px, &py, Some(&above), &v, 4.0, true, &mut out);
            let bits = |s: &[f32]| s.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&out), bits(&reference), "{backend:?}");
        }
    }

    #[test]
    fn f64_grids_always_take_the_scalar_path() {
        // The dispatch must not misroute f64 slices into f32 intrinsics.
        let w = 19;
        let px: Vec<f64> = (0..w).map(|i| (i as f64).sin()).collect();
        let py: Vec<f64> = (0..w).map(|i| (i as f64).cos()).collect();
        let v: Vec<f64> = (0..w).map(|i| i as f64 / w as f64).collect();
        let mut reference = vec![0.0f64; w];
        kernels::compute_term_row(&px, &py, None, &v, 4.0f64, false, &mut reference);
        for backend in [
            KernelBackend::Sse2,
            KernelBackend::Avx2,
            KernelBackend::Avx512,
        ] {
            let mut out = vec![0.0f64; w];
            backend.compute_term_row(&px, &py, None, &v, 4.0f64, false, &mut out);
            assert_eq!(
                out.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
                reference.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
            );
        }
    }

    #[test]
    fn fused_band_iteration_bit_identical_across_backends() {
        let (w, h) = (37, 9);
        let mut rng = StdRng::seed_from_u64(1234);
        let px0 = Grid::from_fn(w, h, |_, _| rng.gen_range(-0.7f32..0.7));
        let py0 = Grid::from_fn(w, h, |_, _| rng.gen_range(-0.7f32..0.7));
        let v = Grid::from_fn(w, h, |_, _| rng.gen_range(0.0f32..1.0));
        let run = |backend: KernelBackend| {
            let (mut px, mut py) = (px0.clone(), py0.clone());
            let (mut ta, mut tb) = (vec![0.0f32; w], vec![0.0f32; w]);
            backend.fused_band_iteration(
                px.as_mut_slice(),
                py.as_mut_slice(),
                v.as_slice(),
                w,
                h,
                0,
                BandHalo {
                    py_above: None,
                    below: None,
                },
                4.0,
                0.125,
                &mut ta,
                &mut tb,
            );
            (px, py)
        };
        let (rpx, rpy) = run(KernelBackend::Scalar);
        for backend in vector_backends() {
            let (bpx, bpy) = run(backend);
            assert_eq!(bpx.as_slice(), rpx.as_slice(), "{backend:?} px");
            assert_eq!(bpy.as_slice(), rpy.as_slice(), "{backend:?} py");
        }
    }
}
