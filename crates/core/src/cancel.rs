//! Cooperative cancellation and deadlines for long-running solves.
//!
//! A [`CancelToken`] is a cheap, clonable handle shared between the party
//! that wants to stop a solve (a service dispatcher, a UI, a watchdog) and
//! the iteration loop doing the work. The loop polls [`CancelToken::check`]
//! at **iteration boundaries** — between Chambolle fixed-point iterations,
//! between tiled rounds, between TV-L1 warps — so a cancelled solve never
//! leaves a half-written grid behind: every observable state is one the
//! uncancelled algorithm would also have passed through.
//!
//! Two things cancel a token:
//!
//! - an explicit [`CancelToken::cancel`] call ([`CancelReason::Explicit`]);
//! - a wall-clock deadline fixed at construction
//!   ([`CancelReason::DeadlineExceeded`]).
//!
//! Explicit cancellation takes precedence when both hold. Tokens are
//! monotonic: once cancelled, a token never reports runnable again.
//!
//! # Examples
//!
//! ```
//! use chambolle_core::cancel::{CancelReason, CancelToken};
//!
//! let token = CancelToken::new();
//! assert!(token.check().is_ok());
//! token.cancel();
//! assert_eq!(token.check().unwrap_err().reason, CancelReason::Explicit);
//! ```

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a solve was cancelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelReason {
    /// [`CancelToken::cancel`] was called.
    Explicit,
    /// The token's deadline passed before the solve finished.
    DeadlineExceeded,
}

impl fmt::Display for CancelReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CancelReason::Explicit => write!(f, "cancelled"),
            CancelReason::DeadlineExceeded => write!(f, "deadline exceeded"),
        }
    }
}

/// Error returned by a cancelled solve.
///
/// Deliberately `Copy` and payload-free so it can ride inside `Copy` error
/// enums like [`crate::FlowError`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cancelled {
    /// What triggered the cancellation.
    pub reason: CancelReason,
}

impl Cancelled {
    /// A cancellation with the given reason.
    pub fn new(reason: CancelReason) -> Self {
        Cancelled { reason }
    }
}

impl fmt::Display for Cancelled {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "solve cancelled: {}", self.reason)
    }
}

impl std::error::Error for Cancelled {}

struct TokenInner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

/// Shared cancellation handle polled by the iteration loops.
///
/// Cloning shares the underlying state; cancelling any clone cancels all of
/// them. A default-constructed token never cancels on its own.
#[derive(Clone)]
pub struct CancelToken {
    inner: Arc<TokenInner>,
}

impl CancelToken {
    /// A token with no deadline that only cancels on [`CancelToken::cancel`].
    pub fn new() -> Self {
        CancelToken {
            inner: Arc::new(TokenInner {
                cancelled: AtomicBool::new(false),
                deadline: None,
            }),
        }
    }

    /// A token that additionally cancels once `deadline` passes.
    pub fn with_deadline(deadline: Instant) -> Self {
        CancelToken {
            inner: Arc::new(TokenInner {
                cancelled: AtomicBool::new(false),
                deadline: Some(deadline),
            }),
        }
    }

    /// A token whose deadline is `timeout` from now.
    pub fn with_timeout(timeout: Duration) -> Self {
        CancelToken::with_deadline(Instant::now() + timeout)
    }

    /// The absolute deadline, if one was set.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.deadline
    }

    /// Requests cancellation; every clone observes it on its next check.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// Whether the token is cancelled (explicitly or by deadline).
    pub fn is_cancelled(&self) -> bool {
        self.check().is_err()
    }

    /// The poll the iteration loops call at iteration boundaries.
    ///
    /// # Errors
    ///
    /// Returns [`Cancelled`] when [`CancelToken::cancel`] was called
    /// (explicit cancellation wins) or the deadline has passed.
    pub fn check(&self) -> Result<(), Cancelled> {
        if self.inner.cancelled.load(Ordering::Acquire) {
            return Err(Cancelled::new(CancelReason::Explicit));
        }
        if let Some(deadline) = self.inner.deadline {
            if Instant::now() >= deadline {
                return Err(Cancelled::new(CancelReason::DeadlineExceeded));
            }
        }
        Ok(())
    }
}

impl Default for CancelToken {
    /// Equivalent to [`CancelToken::new`].
    fn default() -> Self {
        CancelToken::new()
    }
}

impl fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CancelToken")
            .field("cancelled", &self.inner.cancelled.load(Ordering::Relaxed))
            .field("deadline", &self.inner.deadline)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_runnable() {
        let token = CancelToken::new();
        assert!(token.check().is_ok());
        assert!(!token.is_cancelled());
        assert_eq!(token.deadline(), None);
    }

    #[test]
    fn explicit_cancel_is_shared_across_clones() {
        let token = CancelToken::new();
        let clone = token.clone();
        clone.cancel();
        let err = token.check().unwrap_err();
        assert_eq!(err.reason, CancelReason::Explicit);
        assert!(clone.is_cancelled());
    }

    #[test]
    fn elapsed_deadline_cancels() {
        let token = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert_eq!(
            token.check().unwrap_err().reason,
            CancelReason::DeadlineExceeded
        );
        // A comfortably distant deadline does not.
        let live = CancelToken::with_timeout(Duration::from_secs(3600));
        assert!(live.check().is_ok());
        assert!(live.deadline().is_some());
    }

    #[test]
    fn explicit_cancel_wins_over_deadline() {
        let token = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        token.cancel();
        assert_eq!(token.check().unwrap_err().reason, CancelReason::Explicit);
    }

    #[test]
    fn error_formats_mention_the_reason() {
        let c = Cancelled::new(CancelReason::DeadlineExceeded);
        assert!(c.to_string().contains("deadline"));
        let c = Cancelled::new(CancelReason::Explicit);
        assert!(c.to_string().contains("cancelled"));
    }

    #[test]
    fn zero_timeout_deadline_is_already_expired() {
        // `with_timeout(0)` sets the deadline to "now"; by the first check
        // the clock has advanced (or is equal), so the token must report
        // DeadlineExceeded before any iteration could run.
        let token = CancelToken::with_timeout(Duration::ZERO);
        assert_eq!(
            token.check().unwrap_err().reason,
            CancelReason::DeadlineExceeded
        );
        assert!(token.is_cancelled());
    }

    #[test]
    fn deadline_tokens_are_monotonic_once_expired() {
        let token = CancelToken::with_deadline(Instant::now() - Duration::from_secs(1));
        assert!(token.check().is_err());
        // Repeated checks never flip back to runnable.
        for _ in 0..3 {
            assert_eq!(
                token.check().unwrap_err().reason,
                CancelReason::DeadlineExceeded
            );
        }
    }

    #[test]
    fn explicit_cancel_after_deadline_still_reports_explicit() {
        // The race both ways: a token whose deadline already fired is then
        // explicitly cancelled — the explicit reason must win on every
        // subsequent check, on every clone.
        let token = CancelToken::with_deadline(Instant::now() - Duration::from_millis(5));
        let clone = token.clone();
        assert_eq!(
            clone.check().unwrap_err().reason,
            CancelReason::DeadlineExceeded
        );
        token.cancel();
        assert_eq!(clone.check().unwrap_err().reason, CancelReason::Explicit);
        assert_eq!(token.check().unwrap_err().reason, CancelReason::Explicit);
    }

    #[test]
    fn concurrent_cancel_and_deadline_checks_settle_on_explicit() {
        // Hammer check() from several threads while one thread cancels a
        // token whose deadline fires at roughly the same time. Every error
        // must carry one of the two reasons, and once any thread has seen
        // Explicit, later checks must keep reporting Explicit.
        let token = CancelToken::with_timeout(Duration::from_millis(2));
        let canceller = token.clone();
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(2));
            canceller.cancel();
        });
        let mut reasons = Vec::new();
        loop {
            match token.check() {
                Ok(()) => std::thread::yield_now(),
                Err(c) => {
                    reasons.push(c.reason);
                    if c.reason == CancelReason::Explicit || reasons.len() > 10_000 {
                        break;
                    }
                }
            }
        }
        h.join().unwrap();
        assert_eq!(
            token.check().unwrap_err().reason,
            CancelReason::Explicit,
            "after the explicit cancel lands, it wins every later check"
        );
    }
}
