//! Fused row kernels for the Chambolle dual update.
//!
//! [`crate::solver::compute_term_into`] and
//! [`crate::solver::update_p_inplace`] walk the frame with bounds-checked
//! 2-D indexing, three passes and an intermediate full-frame `term` grid.
//! The kernels here compute the same arithmetic — *bit-identically*, with
//! the same operation order and grouping — over flat `&[R]` row slices:
//!
//! - [`compute_term_row`]: `term = div p − v/θ` for one row, with the
//!   backward-difference boundary rules resolved once per row instead of
//!   once per cell;
//! - [`update_p_row`]: the semi-implicit projected dual update for one row
//!   (forward differences, norm, projection — one fused pass);
//! - [`fused_band_iteration`]: one full Chambolle iteration over a band of
//!   rows, rolling two term-row buffers so no per-iteration term grid is
//!   ever allocated. The term for row `y+1` is computed *before* row `y` is
//!   updated, so every term value is derived from old-`p` data exactly as
//!   the two-pass reference does.
//!
//! Bands only read their own rows plus a fixed halo (old `py` row `r0−1`
//! above; old `px`/`py` rows `r1` below), which callers snapshot before
//! running bands concurrently — that is what makes the parallel solver in
//! [`crate::solver`] bit-identical to the sequential one for every thread
//! count.
//!
//! The kernels implement the [`crate::solver::Convention::Standard`] sign
//! convention (the convergent one every production path uses); the literal
//! paper-prose variant stays available through the reference two-pass
//! functions.

use crate::backend::KernelBackend;
use crate::real::Real;

/// `term = div p − v/θ` for one row.
///
/// `py_above` is the `py` row directly above (`None` for the first row);
/// `last_row` says whether this is the frame's last row. Both together
/// select the backward-difference y-boundary rule:
///
/// | `py_above` | `last_row` | `div_y`                    |
/// |------------|------------|-----------------------------|
/// | `None`     | `true`     | `0` (single-row frame)      |
/// | `None`     | `false`    | `py[x]` (first row)         |
/// | `Some(a)`  | `false`    | `py[x] − a[x]` (interior)   |
/// | `Some(a)`  | `true`     | `−a[x]` (last row)          |
///
/// # Panics
///
/// Panics in debug builds if the slice lengths disagree.
#[inline]
pub fn compute_term_row<R: Real>(
    px_row: &[R],
    py_row: &[R],
    py_above: Option<&[R]>,
    v_row: &[R],
    inv_theta: R,
    last_row: bool,
    out: &mut [R],
) {
    debug_assert_eq!(px_row.len(), out.len());
    debug_assert_eq!(py_row.len(), out.len());
    debug_assert_eq!(v_row.len(), out.len());
    match (py_above, last_row) {
        (None, true) => term_row_impl(px_row, v_row, inv_theta, out, |_| R::ZERO),
        (None, false) => term_row_impl(px_row, v_row, inv_theta, out, |x| py_row[x]),
        (Some(above), false) => {
            debug_assert_eq!(above.len(), out.len());
            term_row_impl(px_row, v_row, inv_theta, out, |x| py_row[x] - above[x])
        }
        (Some(above), true) => {
            debug_assert_eq!(above.len(), out.len());
            term_row_impl(px_row, v_row, inv_theta, out, |x| -above[x])
        }
    }
}

/// Shared x-sweep: resolves the backward-difference x-boundary rules once
/// per row and folds the selected `div_y` in with the reference grouping
/// `(div_x + div_y) − v·(1/θ)`.
#[inline]
fn term_row_impl<R: Real>(
    px_row: &[R],
    v_row: &[R],
    inv_theta: R,
    out: &mut [R],
    div_y: impl Fn(usize) -> R,
) {
    let w = out.len();
    if w == 0 {
        return;
    }
    if w == 1 {
        // A single column has a zero x-gradient, so its adjoint is zero.
        out[0] = (R::ZERO + div_y(0)) - v_row[0] * inv_theta;
        return;
    }
    out[0] = (px_row[0] + div_y(0)) - v_row[0] * inv_theta;
    for x in 1..w - 1 {
        out[x] = ((px_row[x] - px_row[x - 1]) + div_y(x)) - v_row[x] * inv_theta;
    }
    out[w - 1] = (-px_row[w - 2] + div_y(w - 1)) - v_row[w - 1] * inv_theta;
}

/// The semi-implicit projected dual update for one row:
/// `p ← (p + τ/θ·∇term) / (1 + τ/θ·|∇term|)`.
///
/// `term_below` is the term row directly below (`None` for the frame's last
/// row, where the forward y-difference is zero).
///
/// # Panics
///
/// Panics in debug builds if the slice lengths disagree.
#[inline]
pub fn update_p_row<R: Real>(
    term_row: &[R],
    term_below: Option<&[R]>,
    step_ratio: R,
    px_row: &mut [R],
    py_row: &mut [R],
) {
    let w = term_row.len();
    debug_assert_eq!(px_row.len(), w);
    debug_assert_eq!(py_row.len(), w);
    if w == 0 {
        return;
    }
    let cell = |x: usize, t1: R, t2: R, px_row: &mut [R], py_row: &mut [R]| {
        let grad = (t1 * t1 + t2 * t2).sqrt();
        let denom = R::ONE + step_ratio * grad;
        px_row[x] = (px_row[x] + step_ratio * t1) / denom;
        py_row[x] = (py_row[x] + step_ratio * t2) / denom;
    };
    match term_below {
        Some(below) => {
            debug_assert_eq!(below.len(), w);
            for x in 0..w - 1 {
                let t1 = term_row[x + 1] - term_row[x];
                let t2 = below[x] - term_row[x];
                cell(x, t1, t2, px_row, py_row);
            }
            let t2 = below[w - 1] - term_row[w - 1];
            cell(w - 1, R::ZERO, t2, px_row, py_row);
        }
        None => {
            for x in 0..w - 1 {
                let t1 = term_row[x + 1] - term_row[x];
                cell(x, t1, R::ZERO, px_row, py_row);
            }
            cell(w - 1, R::ZERO, R::ZERO, px_row, py_row);
        }
    }
}

/// Snapshot of the old-`p` rows a band reads beyond its own row range.
///
/// When bands run concurrently, their neighbors mutate these rows in place;
/// the caller copies them *before* launching the bands so every term value
/// a band derives is old-`p` data, exactly as the sequential two-pass
/// reference computes it.
pub struct BandHalo<'a, R> {
    /// Old `py` row `r0 − 1` (required iff the band does not start at the
    /// frame's first row).
    pub py_above: Option<&'a [R]>,
    /// Old rows at `r1` (required iff the band does not end at the frame's
    /// last row).
    pub below: Option<BelowHalo<'a, R>>,
}

/// The three row slices of [`BandHalo::below`]: the frame row just past the
/// band's end, needed to form the last term row the band consumes.
pub struct BelowHalo<'a, R> {
    /// Old `px` row `r1`.
    pub px: &'a [R],
    /// Old `py` row `r1`.
    pub py: &'a [R],
    /// `v` row `r1` (immutable in the caller; passed for uniformity).
    pub v: &'a [R],
}

/// One fused Chambolle iteration over rows `[r0, r0 + rows)` of a `w × h`
/// frame, where `px_band`/`py_band`/`v_band` are flat row-major slices
/// covering exactly those rows.
///
/// Rolls two caller-provided term-row buffers (`term_a`, `term_b`, each of
/// length `w`): the term for row `y + 1` is computed — from still-old `p`
/// values — before row `y` is updated, so the result is bit-identical to
/// running [`crate::solver::compute_term_into`] followed by
/// [`crate::solver::update_p_inplace`] on the whole frame.
///
/// With `r0 == 0` and `rows == h` (and an empty halo) this *is* one whole
/// sequential iteration, minus the full-frame term allocation.
///
/// # Panics
///
/// Panics if the slice lengths are inconsistent with `w`/`rows`, or if a
/// required halo row is missing.
#[allow(clippy::too_many_arguments)] // the flat-slice shape is the point
pub fn fused_band_iteration<R: Real>(
    px_band: &mut [R],
    py_band: &mut [R],
    v_band: &[R],
    w: usize,
    h: usize,
    r0: usize,
    halo: BandHalo<'_, R>,
    inv_theta: R,
    step_ratio: R,
    term_a: &mut [R],
    term_b: &mut [R],
) {
    fused_band_iteration_on(
        KernelBackend::Scalar,
        px_band,
        py_band,
        v_band,
        w,
        h,
        r0,
        halo,
        inv_theta,
        step_ratio,
        term_a,
        term_b,
    );
}

/// [`fused_band_iteration`] with the term and update rows computed by
/// `backend`. Every backend is bit-identical to
/// [`crate::backend::KernelBackend::Scalar`], so this only changes speed.
#[allow(clippy::too_many_arguments)] // the flat-slice shape is the point
pub fn fused_band_iteration_on<R: Real>(
    backend: KernelBackend,
    px_band: &mut [R],
    py_band: &mut [R],
    v_band: &[R],
    w: usize,
    h: usize,
    r0: usize,
    halo: BandHalo<'_, R>,
    inv_theta: R,
    step_ratio: R,
    term_a: &mut [R],
    term_b: &mut [R],
) {
    assert!(w > 0, "band width must be positive");
    let rows = px_band.len() / w;
    let r1 = r0 + rows;
    assert!(rows > 0 && px_band.len() == rows * w, "px band misshapen");
    assert_eq!(py_band.len(), rows * w, "py band misshapen");
    assert_eq!(v_band.len(), rows * w, "v band misshapen");
    assert!(r1 <= h, "band exceeds frame height");
    assert_eq!(
        halo.py_above.is_some(),
        r0 > 0,
        "py_above halo required exactly when the band starts mid-frame"
    );
    assert_eq!(
        halo.below.is_some(),
        r1 < h,
        "below halo required exactly when the band ends mid-frame"
    );
    assert!(
        term_a.len() == w && term_b.len() == w,
        "term buffers need width w"
    );

    let mut cur: &mut [R] = term_a;
    let mut next: &mut [R] = term_b;
    backend.compute_term_row(
        &px_band[..w],
        &py_band[..w],
        halo.py_above,
        &v_band[..w],
        inv_theta,
        r0 + 1 == h,
        cur,
    );
    for i in 0..rows {
        let y = r0 + i;
        let lo = i * w;
        if y + 1 < h {
            // Term for row y+1 from old-p values: px/py row y+1 (own band or
            // the below-halo snapshot) and py row y — which is only updated
            // after this, so it is still old here.
            if i + 1 < rows {
                let (py_here, py_next) = py_band[lo..].split_at(w);
                backend.compute_term_row(
                    &px_band[lo + w..lo + 2 * w],
                    &py_next[..w],
                    Some(py_here),
                    &v_band[lo + w..lo + 2 * w],
                    inv_theta,
                    y + 2 == h,
                    next,
                );
            } else {
                let below = halo.below.as_ref().expect("below halo checked above");
                backend.compute_term_row(
                    below.px,
                    below.py,
                    Some(&py_band[lo..lo + w]),
                    below.v,
                    inv_theta,
                    y + 2 == h,
                    next,
                );
            }
            backend.update_p_row(
                cur,
                Some(next),
                step_ratio,
                &mut px_band[lo..lo + w],
                &mut py_band[lo..lo + w],
            );
            std::mem::swap(&mut cur, &mut next);
        } else {
            backend.update_p_row(
                cur,
                None,
                step_ratio,
                &mut px_band[lo..lo + w],
                &mut py_band[lo..lo + w],
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{compute_term_into, update_p_inplace, Convention, DualField};
    use chambolle_imaging::Grid;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_state(w: usize, h: usize, seed: u64) -> (DualField<f32>, Grid<f32>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut p = DualField::zeros(w, h);
        p.px = Grid::from_fn(w, h, |_, _| rng.gen_range(-0.7f32..0.7));
        p.py = Grid::from_fn(w, h, |_, _| rng.gen_range(-0.7f32..0.7));
        let v = Grid::from_fn(w, h, |_, _| rng.gen_range(0.0f32..1.0));
        (p, v)
    }

    fn reference_iteration(p: &mut DualField<f32>, v: &Grid<f32>, inv_theta: f32, step: f32) {
        let mut term = Grid::new(v.width(), v.height(), 0.0f32);
        compute_term_into(p, v, inv_theta, &mut term);
        update_p_inplace(p, &term, step, Convention::Standard);
    }

    fn fused_full_iteration(p: &mut DualField<f32>, v: &Grid<f32>, inv_theta: f32, step: f32) {
        let (w, h) = v.dims();
        let mut ta = vec![0.0f32; w];
        let mut tb = vec![0.0f32; w];
        fused_band_iteration(
            p.px.as_mut_slice(),
            p.py.as_mut_slice(),
            v.as_slice(),
            w,
            h,
            0,
            BandHalo {
                py_above: None,
                below: None,
            },
            inv_theta,
            step,
            &mut ta,
            &mut tb,
        );
    }

    #[test]
    fn term_row_matches_reference_all_row_kinds() {
        for (w, h) in [(7usize, 5usize), (1, 4), (6, 1), (1, 1), (2, 2)] {
            let (p, v) = random_state(w, h, 42 + (w * h) as u64);
            let inv_theta = 1.0f32 / 0.25;
            let mut reference = Grid::new(w, h, 0.0f32);
            compute_term_into(&p, &v, inv_theta, &mut reference);
            for y in 0..h {
                let mut out = vec![0.0f32; w];
                let above = (y > 0).then(|| p.py.row(y - 1));
                compute_term_row(
                    p.px.row(y),
                    p.py.row(y),
                    above,
                    v.row(y),
                    inv_theta,
                    y + 1 == h,
                    &mut out,
                );
                assert_eq!(out.as_slice(), reference.row(y), "{w}x{h} row {y}");
            }
        }
    }

    #[test]
    fn update_row_matches_reference_all_row_kinds() {
        for (w, h) in [(7usize, 5usize), (1, 4), (6, 1), (1, 1)] {
            let (mut p, v) = random_state(w, h, 7 + w as u64);
            let inv_theta = 4.0f32;
            let step = 0.25f32 / 0.25;
            let mut term = Grid::new(w, h, 0.0f32);
            compute_term_into(&p, &v, inv_theta, &mut term);
            let mut p_ref = p.clone();
            update_p_inplace(&mut p_ref, &term, step, Convention::Standard);
            for y in 0..h {
                let below = (y + 1 < h).then(|| term.row(y + 1).to_vec());
                update_p_row(
                    term.row(y),
                    below.as_deref(),
                    step,
                    p.px.row_mut(y),
                    p.py.row_mut(y),
                );
            }
            assert_eq!(p.px.as_slice(), p_ref.px.as_slice(), "{w}x{h} px");
            assert_eq!(p.py.as_slice(), p_ref.py.as_slice(), "{w}x{h} py");
        }
    }

    #[test]
    fn fused_full_frame_is_bit_identical_to_two_pass() {
        for (w, h) in [(13usize, 11usize), (1, 9), (9, 1), (1, 1), (32, 24)] {
            let (mut p_fused, v) = random_state(w, h, 1000 + w as u64);
            let mut p_ref = p_fused.clone();
            for _ in 0..5 {
                reference_iteration(&mut p_ref, &v, 4.0, 1.0);
                fused_full_iteration(&mut p_fused, &v, 4.0, 1.0);
            }
            assert_eq!(p_fused.px.as_slice(), p_ref.px.as_slice(), "{w}x{h}");
            assert_eq!(p_fused.py.as_slice(), p_ref.py.as_slice(), "{w}x{h}");
        }
    }

    #[test]
    fn banded_iteration_with_halos_is_bit_identical() {
        // Split a frame into bands, snapshot halos, run bands in arbitrary
        // order — the stitched result must match the whole-frame reference.
        let (w, h) = (17usize, 23usize);
        let (p, v) = random_state(w, h, 99);
        let mut p_ref = p.clone();
        reference_iteration(&mut p_ref, &v, 4.0, 1.0);

        for bands in [2usize, 3, 5, 8] {
            let mut p_band = p.clone();
            let bounds: Vec<usize> = (0..=bands).map(|b| b * h / bands).collect();
            // Snapshot halos from old p before any band runs.
            let snap_py_above: Vec<Vec<f32>> = (1..bands)
                .map(|b| p_band.py.row(bounds[b] - 1).to_vec())
                .collect();
            let snap_px_below: Vec<Vec<f32>> = (1..bands)
                .map(|b| p_band.px.row(bounds[b]).to_vec())
                .collect();
            let snap_py_below: Vec<Vec<f32>> = (1..bands)
                .map(|b| p_band.py.row(bounds[b]).to_vec())
                .collect();
            // Run bands in reverse order to prove order-independence.
            for b in (0..bands).rev() {
                let (r0, r1) = (bounds[b], bounds[b + 1]);
                if r0 == r1 {
                    continue;
                }
                let halo = BandHalo {
                    py_above: (r0 > 0).then(|| snap_py_above[b - 1].as_slice()),
                    below: (r1 < h).then(|| BelowHalo {
                        px: snap_px_below[b].as_slice(),
                        py: snap_py_below[b].as_slice(),
                        v: v.row(r1),
                    }),
                };
                let mut ta = vec![0.0f32; w];
                let mut tb = vec![0.0f32; w];
                fused_band_iteration(
                    &mut p_band.px.as_mut_slice()[r0 * w..r1 * w],
                    &mut p_band.py.as_mut_slice()[r0 * w..r1 * w],
                    &v.as_slice()[r0 * w..r1 * w],
                    w,
                    h,
                    r0,
                    halo,
                    4.0,
                    1.0,
                    &mut ta,
                    &mut tb,
                );
            }
            assert_eq!(p_band.px.as_slice(), p_ref.px.as_slice(), "{bands} bands");
            assert_eq!(p_band.py.as_slice(), p_ref.py.as_slice(), "{bands} bands");
        }
        // Keep the f64 path honest too.
        let mut p64 = DualField::<f64>::zeros(4, 4);
        p64.px = p.px.crop(0, 0, 4, 4).map(|&x| x as f64);
        p64.py = p.py.crop(0, 0, 4, 4).map(|&x| x as f64);
        let v64 = v.crop(0, 0, 4, 4).map(|&x| x as f64);
        let mut p64_ref = p64.clone();
        let mut term = Grid::new(4, 4, 0.0f64);
        compute_term_into(&p64_ref, &v64, 4.0, &mut term);
        update_p_inplace(&mut p64_ref, &term, 1.0, Convention::Standard);
        let (mut ta, mut tb) = (vec![0.0f64; 4], vec![0.0f64; 4]);
        fused_band_iteration(
            p64.px.as_mut_slice(),
            p64.py.as_mut_slice(),
            v64.as_slice(),
            4,
            4,
            0,
            BandHalo {
                py_above: None,
                below: None,
            },
            4.0,
            1.0,
            &mut ta,
            &mut tb,
        );
        assert_eq!(p64.px.as_slice(), p64_ref.px.as_slice());
    }

    #[test]
    #[should_panic(expected = "py_above halo required")]
    fn missing_halo_is_rejected() {
        let mut px = vec![0.0f32; 4];
        let mut py = vec![0.0f32; 4];
        let v = vec![0.0f32; 4];
        let (mut ta, mut tb) = (vec![0.0f32; 4], vec![0.0f32; 4]);
        fused_band_iteration(
            &mut px,
            &mut py,
            &v,
            4,
            3,
            1, // starts mid-frame but provides no py_above
            BandHalo {
                py_above: None,
                below: None,
            },
            4.0,
            1.0,
            &mut ta,
            &mut tb,
        );
    }
}
