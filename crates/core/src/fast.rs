//! Fast-tier row kernels: the tolerance-validated speed path.
//!
//! The Exact tier (see [`crate::backend`]) buys bit-identical results
//! across backends, thread counts and tile schedules by forbidding every
//! transform that changes rounding: no FMA contraction, no reassociation,
//! no approximate reciprocals. That contract is also its speed ceiling —
//! the dual update spends most of its time in one `sqrt` and two IEEE
//! divides per cell that nothing is allowed to touch.
//!
//! The kernels here implement [`crate::ctx::NumericsPolicy::Fast`], which
//! replaces the byte-equality contract with the validation model of the
//! paper's own quantized 13/9/9-bit datapath: an explicit accuracy bound
//! against the exact reference (energy and duality-gap tolerance, pinned by
//! the workspace tolerance harness) instead of bit comparison. Freed from
//! replaying scalar rounding, the kernels:
//!
//! - **share one reciprocal** across the two normalizing divides of the
//!   dual update (`inv = 1/(1 + τ/θ·|∇|)`, then two multiplies);
//! - **contract with FMA** everywhere a multiply feeds an add;
//! - replace the division with a **hardware reciprocal estimate refined by
//!   one Newton–Raphson step** (`rcp`, ~22–28 accurate bits — far inside
//!   the tier's 1e-3 tolerance), while the square root stays the hardware
//!   instruction: it executes on the divider port the rest of the kernel
//!   leaves idle, so exactness there is free;
//! - run true **16-lane AVX-512F bodies** (the Exact tier delegates AVX-512
//!   to its AVX2 kernels rather than auditing bit-exactness on a third
//!   vector width);
//! - fuse K iterations into one register- and cache-resident
//!   [`temporal_sweep`] — the paper's loop decomposition carried from the
//!   PE array down to the cache hierarchy: K staggered copies of the fused
//!   single-pass machine share one traversal of the frame, so K iterations
//!   cost one pass over memory instead of K.
//!
//! Within one backend the Fast tier is deterministic, and the banded
//! parallel solver keeps it **thread-count invariant** (bands run the same
//! full-width row kernels against snapshotted halos). It is *not*
//! bit-comparable across backends or tile shapes — that is exactly the
//! guarantee the tier trades away. The fast tier applies to the `f32`
//! production kernels; `f64` solves always run exact.
//!
//! The scalar fast bodies are the tier's *portable reference*: SSE2 (which
//! lacks FMA) and non-x86 hosts run them, and [`temporal_sweep`] is pinned
//! bit-identical to K sequential fast passes on every backend.

use crate::backend::KernelBackend;
use crate::ctx::NumericsPolicy;
use crate::kernels::{self, BandHalo, BelowHalo};
use crate::real::Real;
use std::any::TypeId;

/// How many iterations [`temporal_sweep`] fuses per pass over the frame.
///
/// Each fused level needs two term rows and keeps a ~3-row window of
/// `px`/`py` warm; at depth 8 the whole working set of a 512-wide frame is
/// ~46 rows of `f32` (~92 KiB) — inside L2 with room to spare, while the
/// unfused loop streams the full frame from memory every iteration. Depth
/// is a pure scheduling choice: the sweep is bit-identical to `k`
/// sequential fast passes at every depth, so raising it trades nothing
/// but cache headroom for fewer trips over the frame.
pub const TEMPORAL_FUSION_DEPTH: u32 = 8;

/// Reinterprets `&[R]` as `&[f32]` iff `R` *is* `f32`.
pub(crate) fn f32_slice<R: Real>(s: &[R]) -> Option<&[f32]> {
    if TypeId::of::<R>() == TypeId::of::<f32>() {
        // SAFETY: the TypeId check proves R == f32, so element layout,
        // length and lifetime all carry over unchanged.
        Some(unsafe { std::slice::from_raw_parts(s.as_ptr().cast::<f32>(), s.len()) })
    } else {
        None
    }
}

/// Reinterprets `&mut [R]` as `&mut [f32]` iff `R` *is* `f32`.
pub(crate) fn f32_slice_mut<R: Real>(s: &mut [R]) -> Option<&mut [f32]> {
    if TypeId::of::<R>() == TypeId::of::<f32>() {
        // SAFETY: the TypeId check proves R == f32; the mutable borrow is
        // passed through exclusively.
        Some(unsafe { std::slice::from_raw_parts_mut(s.as_mut_ptr().cast::<f32>(), s.len()) })
    } else {
        None
    }
}

/// The vector body a backend's fast tier actually runs, after runtime
/// feature checks. SSE2 has no FMA, so its fast tier is the scalar fast
/// reference; an AVX-512 request on a host without the full feature set
/// falls to the AVX2 bodies, then scalar.
#[derive(Clone, Copy, PartialEq, Eq)]
enum FastLevel {
    Scalar,
    #[cfg(target_arch = "x86_64")]
    Avx2,
    #[cfg(target_arch = "x86_64")]
    Avx512,
}

fn fast_level(backend: KernelBackend) -> FastLevel {
    #[cfg(target_arch = "x86_64")]
    {
        let fma = is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma");
        match backend {
            KernelBackend::Avx512 if backend.is_supported() => return FastLevel::Avx512,
            KernelBackend::Avx512 | KernelBackend::Avx2 if fma => return FastLevel::Avx2,
            _ => {}
        }
    }
    let _ = backend;
    FastLevel::Scalar
}

/// Fast-tier `term = div p − v/θ` for one row (same boundary-rule table as
/// [`kernels::compute_term_row`]). Vector bodies contract the `v·(1/θ)`
/// multiply into the subtraction with FMA.
#[allow(clippy::too_many_arguments)] // mirrors the exact kernel's shape
#[inline]
pub fn compute_term_row_fast(
    backend: KernelBackend,
    px_row: &[f32],
    py_row: &[f32],
    py_above: Option<&[f32]>,
    v_row: &[f32],
    inv_theta: f32,
    last_row: bool,
    out: &mut [f32],
) {
    #[cfg(target_arch = "x86_64")]
    if out.len() >= 2 {
        match fast_level(backend) {
            // SAFETY: fast_level proved the required CPU features at run
            // time; the slice-length contract matches the exact kernels'.
            FastLevel::Avx512 => unsafe {
                return x86::term_row_avx512(
                    px_row, py_row, py_above, v_row, inv_theta, last_row, out,
                );
            },
            // SAFETY: as above (avx2 + fma detected).
            FastLevel::Avx2 => unsafe {
                return x86::term_row_avx2(
                    px_row, py_row, py_above, v_row, inv_theta, last_row, out,
                );
            },
            FastLevel::Scalar => {}
        }
    }
    let _ = backend;
    // The scalar fast term row is the exact one: it has no divide or sqrt
    // to approximate, and plain Rust must not call `f32::mul_add` (a libm
    // soft-float call without a compile-time FMA target).
    kernels::compute_term_row(px_row, py_row, py_above, v_row, inv_theta, last_row, out);
}

/// Fast-tier semi-implicit projected dual update for one row.
///
/// The defining transform of the tier: the two normalizing divides share
/// one reciprocal (`inv = 1/(1 + τ/θ·|∇|)`, then two multiplies), and the
/// vector bodies produce that reciprocal from a hardware estimate plus one
/// Newton–Raphson step (the norm's square root stays the hardware
/// instruction — it runs on the otherwise-idle divider port).
#[inline]
pub fn update_p_row_fast(
    backend: KernelBackend,
    term_row: &[f32],
    term_below: Option<&[f32]>,
    step_ratio: f32,
    px_row: &mut [f32],
    py_row: &mut [f32],
) {
    #[cfg(target_arch = "x86_64")]
    if term_row.len() >= 2 {
        match fast_level(backend) {
            // SAFETY: fast_level proved the required CPU features at run
            // time; the slice-length contract matches the exact kernels'.
            FastLevel::Avx512 => unsafe {
                return x86::update_p_row_avx512(term_row, term_below, step_ratio, px_row, py_row);
            },
            // SAFETY: as above (avx2 + fma detected).
            FastLevel::Avx2 => unsafe {
                return x86::update_p_row_avx2(term_row, term_below, step_ratio, px_row, py_row);
            },
            FastLevel::Scalar => {}
        }
    }
    let _ = backend;
    update_p_row_fast_scalar(term_row, term_below, step_ratio, px_row, py_row);
}

/// The portable fast update body: reassociated shared-reciprocal form, no
/// `mul_add` (which lowers to a libm call when FMA is not a compile-time
/// target feature).
fn update_p_row_fast_scalar(
    term_row: &[f32],
    term_below: Option<&[f32]>,
    step_ratio: f32,
    px_row: &mut [f32],
    py_row: &mut [f32],
) {
    let w = term_row.len();
    debug_assert_eq!(px_row.len(), w);
    debug_assert_eq!(py_row.len(), w);
    if w == 0 {
        return;
    }
    let cell = |x: usize, t1: f32, t2: f32, px_row: &mut [f32], py_row: &mut [f32]| {
        let grad = (t1 * t1 + t2 * t2).sqrt();
        let inv = 1.0 / (1.0 + step_ratio * grad);
        px_row[x] = (px_row[x] + step_ratio * t1) * inv;
        py_row[x] = (py_row[x] + step_ratio * t2) * inv;
    };
    match term_below {
        Some(below) => {
            debug_assert_eq!(below.len(), w);
            for x in 0..w - 1 {
                let t1 = term_row[x + 1] - term_row[x];
                let t2 = below[x] - term_row[x];
                cell(x, t1, t2, px_row, py_row);
            }
            let t2 = below[w - 1] - term_row[w - 1];
            cell(w - 1, 0.0, t2, px_row, py_row);
        }
        None => {
            for x in 0..w - 1 {
                let t1 = term_row[x + 1] - term_row[x];
                cell(x, t1, 0.0, px_row, py_row);
            }
            cell(w - 1, 0.0, 0.0, px_row, py_row);
        }
    }
}

/// Fused term+update step: computes the next row's term into `next` while
/// updating the current row against it, collapsing the two per-row passes
/// into one traversal. `py_row` doubles as the next row's upper halo — it
/// is read strictly before the update overwrites it, which is exactly the
/// single-pass machine's old-`p` discipline.
///
/// Per-cell math is identical to running [`compute_term_row_fast`] then
/// [`update_p_row_fast`] (the AVX2 and AVX-512 bodies replicate their lane
/// operations verbatim; other levels literally call them), so fusion is
/// pure scheduling: priming rows, banded runs and temporal sweeps all stay
/// bitwise coherent with each other.
#[allow(clippy::too_many_arguments)] // the flat-slice shape, as elsewhere
fn fused_term_update_row(
    backend: KernelBackend,
    px_next: &[f32],
    py_next: &[f32],
    v_next: &[f32],
    inv_theta: f32,
    next_is_last: bool,
    cur: &[f32],
    next: &mut [f32],
    step_ratio: f32,
    px_row: &mut [f32],
    py_row: &mut [f32],
) {
    #[cfg(target_arch = "x86_64")]
    if cur.len() >= 2 {
        // SAFETY (both arms): fast_level proved the feature at run time;
        // the slice-length contract matches the standalone kernels'.
        match fast_level(backend) {
            FastLevel::Avx512 => unsafe {
                return x86::fused_row_avx512(
                    px_next,
                    py_next,
                    v_next,
                    inv_theta,
                    next_is_last,
                    cur,
                    next,
                    step_ratio,
                    px_row,
                    py_row,
                );
            },
            FastLevel::Avx2 => unsafe {
                return x86::fused_row_avx2(
                    px_next,
                    py_next,
                    v_next,
                    inv_theta,
                    next_is_last,
                    cur,
                    next,
                    step_ratio,
                    px_row,
                    py_row,
                );
            },
            FastLevel::Scalar => {}
        }
    }
    compute_term_row_fast(
        backend,
        px_next,
        py_next,
        Some(py_row),
        v_next,
        inv_theta,
        next_is_last,
        next,
    );
    update_p_row_fast(backend, cur, Some(next), step_ratio, px_row, py_row);
}

/// One fast-tier Chambolle iteration over rows `[r0, r0 + rows)` — the
/// fast twin of [`kernels::fused_band_iteration_on`], with the same band,
/// halo and term-ring structure (so the banded parallel solver stays
/// thread-count invariant at the Fast tier: every band runs these same
/// full-width row kernels against old-`p` halo snapshots).
#[allow(clippy::too_many_arguments)] // the flat-slice shape is the point
pub fn fused_band_iteration_fast(
    backend: KernelBackend,
    px_band: &mut [f32],
    py_band: &mut [f32],
    v_band: &[f32],
    w: usize,
    h: usize,
    r0: usize,
    halo: BandHalo<'_, f32>,
    inv_theta: f32,
    step_ratio: f32,
    term_a: &mut [f32],
    term_b: &mut [f32],
) {
    assert!(w > 0, "band width must be positive");
    let rows = px_band.len() / w;
    let r1 = r0 + rows;
    assert!(rows > 0 && px_band.len() == rows * w, "px band misshapen");
    assert_eq!(py_band.len(), rows * w, "py band misshapen");
    assert_eq!(v_band.len(), rows * w, "v band misshapen");
    assert!(r1 <= h, "band exceeds frame height");
    assert_eq!(
        halo.py_above.is_some(),
        r0 > 0,
        "py_above halo required exactly when the band starts mid-frame"
    );
    assert_eq!(
        halo.below.is_some(),
        r1 < h,
        "below halo required exactly when the band ends mid-frame"
    );
    assert!(
        term_a.len() == w && term_b.len() == w,
        "term buffers need width w"
    );

    let mut cur: &mut [f32] = term_a;
    let mut next: &mut [f32] = term_b;
    compute_term_row_fast(
        backend,
        &px_band[..w],
        &py_band[..w],
        halo.py_above,
        &v_band[..w],
        inv_theta,
        r0 + 1 == h,
        cur,
    );
    for i in 0..rows {
        let y = r0 + i;
        let lo = i * w;
        if y + 1 < h {
            if i + 1 < rows {
                let (px_here, px_next) = px_band[lo..lo + 2 * w].split_at_mut(w);
                let (py_here, py_next) = py_band[lo..lo + 2 * w].split_at_mut(w);
                fused_term_update_row(
                    backend,
                    px_next,
                    py_next,
                    &v_band[lo + w..lo + 2 * w],
                    inv_theta,
                    y + 2 == h,
                    cur,
                    next,
                    step_ratio,
                    px_here,
                    py_here,
                );
            } else {
                let below = halo.below.as_ref().expect("below halo checked above");
                fused_term_update_row(
                    backend,
                    below.px,
                    below.py,
                    below.v,
                    inv_theta,
                    y + 2 == h,
                    cur,
                    next,
                    step_ratio,
                    &mut px_band[lo..lo + w],
                    &mut py_band[lo..lo + w],
                );
            }
            std::mem::swap(&mut cur, &mut next);
        } else {
            update_p_row_fast(
                backend,
                cur,
                None,
                step_ratio,
                &mut px_band[lo..lo + w],
                &mut py_band[lo..lo + w],
            );
        }
    }
}

/// Tier dispatch for one term row: the Fast tier's FMA term kernel for
/// `f32`, the backend's exact kernel otherwise. Used by solve paths (e.g.
/// the weighted solver) that run row kernels outside the fused band
/// machines.
#[allow(clippy::too_many_arguments)] // mirrors the row kernels' shape
pub(crate) fn term_row_tiered<R: Real>(
    backend: KernelBackend,
    numerics: NumericsPolicy,
    px_row: &[R],
    py_row: &[R],
    py_above: Option<&[R]>,
    v_row: &[R],
    inv_theta: R,
    last_row: bool,
    out: &mut [R],
) {
    if numerics == NumericsPolicy::Fast && TypeId::of::<R>() == TypeId::of::<f32>() {
        compute_term_row_fast(
            backend,
            f32_slice(px_row).expect("R is f32"),
            f32_slice(py_row).expect("R is f32"),
            py_above.map(|s| f32_slice(s).expect("R is f32")),
            f32_slice(v_row).expect("R is f32"),
            inv_theta.to_f64() as f32,
            last_row,
            f32_slice_mut(out).expect("R is f32"),
        );
        return;
    }
    backend.compute_term_row(px_row, py_row, py_above, v_row, inv_theta, last_row, out);
}

/// Tier dispatch for one band iteration: routes `f32` bands to
/// [`fused_band_iteration_fast`] when the context asks for the Fast tier,
/// and everything else (the Exact tier, and all `f64` solves — which are
/// always exact) to [`kernels::fused_band_iteration_on`] via the backend.
#[allow(clippy::too_many_arguments)] // mirrors the band kernels' shape
pub(crate) fn band_iteration_tiered<R: Real>(
    backend: KernelBackend,
    numerics: NumericsPolicy,
    px_band: &mut [R],
    py_band: &mut [R],
    v_band: &[R],
    w: usize,
    h: usize,
    r0: usize,
    halo: BandHalo<'_, R>,
    inv_theta: R,
    step_ratio: R,
    term_a: &mut [R],
    term_b: &mut [R],
) {
    if numerics == NumericsPolicy::Fast && TypeId::of::<R>() == TypeId::of::<f32>() {
        let halo_f32 = BandHalo {
            py_above: halo.py_above.map(|s| f32_slice(s).expect("R is f32")),
            below: halo.below.as_ref().map(|b| BelowHalo {
                px: f32_slice(b.px).expect("R is f32"),
                py: f32_slice(b.py).expect("R is f32"),
                v: f32_slice(b.v).expect("R is f32"),
            }),
        };
        // `f32 → f64 → f32` round-trips exactly, so the tier change never
        // perturbs the solve parameters.
        fused_band_iteration_fast(
            backend,
            f32_slice_mut(px_band).expect("R is f32"),
            f32_slice_mut(py_band).expect("R is f32"),
            f32_slice(v_band).expect("R is f32"),
            w,
            h,
            r0,
            halo_f32,
            inv_theta.to_f64() as f32,
            step_ratio.to_f64() as f32,
            f32_slice_mut(term_a).expect("R is f32"),
            f32_slice_mut(term_b).expect("R is f32"),
        );
        return;
    }
    backend.fused_band_iteration(
        px_band, py_band, v_band, w, h, r0, halo, inv_theta, step_ratio, term_a, term_b,
    );
}

/// `k` fast-tier Chambolle iterations in **one pass over the frame**: the
/// register/cache-level instance of the paper's loop decomposition.
///
/// Runs `k` staggered copies of the fused single-pass machine over the
/// shared `px`/`py` arrays. At sweep step `t`, fusion level `l`
/// (0-indexed) updates row `t − l`: level `l` reads row `t − l + 1`, which
/// level `l − 1` finished earlier in the *same* step, so a one-row stagger
/// is exactly the dependency distance of the dual update. Each level rolls
/// its own pair of term-row buffers, giving a working set of `2k` term
/// rows plus a ~`k + 2`-row window of `px`/`py`/`v` — cache-resident for
/// production widths, so `k` iterations stream the frame once instead of
/// `k` times.
///
/// **Bit-identical to `k` sequential calls** of
/// [`fused_band_iteration_fast`] over the whole frame on the same backend:
/// every level performs the identical per-cell operation order on
/// identical inputs (level `l` only ever reads level `l − 1`'s final
/// values). The sweep is sequential-only — the banded parallel fast path
/// stays per-iteration so halo snapshots keep it thread-count invariant.
///
/// # Panics
///
/// Panics if the slices are inconsistent with `w`/`h` or `k == 0`.
#[allow(clippy::too_many_arguments)]
pub fn temporal_sweep(
    backend: KernelBackend,
    px: &mut [f32],
    py: &mut [f32],
    v: &[f32],
    w: usize,
    h: usize,
    inv_theta: f32,
    step_ratio: f32,
    k: u32,
) {
    assert!(k > 0, "temporal sweep needs at least one fused iteration");
    assert!(w > 0 && h > 0, "frame must be non-empty");
    assert_eq!(px.len(), w * h, "px misshapen");
    assert_eq!(py.len(), w * h, "py misshapen");
    assert_eq!(v.len(), w * h, "v misshapen");

    let k = k as usize;
    // Per-level term rings: `bufs[l]` holds the level's (cur, next) pair;
    // `flip[l]` says which is which (a swap is a parity toggle, so the two
    // buffers can live side by side without aliasing gymnastics).
    let mut bufs: Vec<(Vec<f32>, Vec<f32>)> =
        (0..k).map(|_| (vec![0.0f32; w], vec![0.0f32; w])).collect();
    let mut flip = vec![false; k];

    for t in 0..h + k - 1 {
        for (l, (a, b)) in bufs.iter_mut().enumerate() {
            let Some(y) = t.checked_sub(l) else { break };
            if y >= h {
                continue;
            }
            let (cur, next) = if flip[l] { (b, a) } else { (a, b) };
            let lo = y * w;
            if y == 0 {
                // The level's first term row, from level l−1's final state
                // of row 0 (the raw input for l = 0).
                compute_term_row_fast(
                    backend,
                    &px[..w],
                    &py[..w],
                    None,
                    &v[..w],
                    inv_theta,
                    h == 1,
                    cur,
                );
            }
            if y + 1 < h {
                // Term for row y+1: px/py of row y+1 are level l−1 state
                // (updated earlier this same step), py of row y is still
                // pre-update for this level — exactly the old-p discipline
                // of the single-pass machine, enforced inside the fused
                // step by its read-before-write ordering.
                let (px_here, px_next) = px[lo..lo + 2 * w].split_at_mut(w);
                let (py_here, py_next) = py[lo..lo + 2 * w].split_at_mut(w);
                fused_term_update_row(
                    backend,
                    px_next,
                    py_next,
                    &v[lo + w..lo + 2 * w],
                    inv_theta,
                    y + 2 == h,
                    cur,
                    next,
                    step_ratio,
                    px_here,
                    py_here,
                );
                // Ring swap: next's term row becomes cur for row y + 1.
                flip[l] = !flip[l];
            } else {
                update_p_row_fast(
                    backend,
                    cur,
                    None,
                    step_ratio,
                    &mut px[lo..lo + w],
                    &mut py[lo..lo + w],
                );
            }
        }
    }
}

/// The x86-64 fast-tier intrinsic bodies (AVX2+FMA and AVX-512F).
#[cfg(target_arch = "x86_64")]
mod x86 {
    use std::arch::x86_64::*;

    use crate::kernels;

    /// The y-divergence shapes, as in the exact kernels.
    pub(super) enum DivY<'a> {
        Zero,
        First(&'a [f32]),
        Interior(&'a [f32], &'a [f32]),
        Last(&'a [f32]),
    }

    impl DivY<'_> {
        #[inline]
        fn at(&self, x: usize) -> f32 {
            match self {
                DivY::Zero => 0.0,
                DivY::First(py) => py[x],
                DivY::Interior(py, above) => py[x] - above[x],
                DivY::Last(above) => -above[x],
            }
        }
    }

    fn div_y_shape<'a>(py: &'a [f32], above: Option<&'a [f32]>, last_row: bool) -> DivY<'a> {
        match (above, last_row) {
            (None, true) => DivY::Zero,
            (None, false) => DivY::First(py),
            (Some(a), false) => DivY::Interior(py, a),
            (Some(a), true) => DivY::Last(a),
        }
    }

    const DY_ZERO: u8 = 0;
    const DY_FIRST: u8 = 1;
    const DY_INTERIOR: u8 = 2;
    const DY_LAST: u8 = 3;

    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn term_row_avx2(
        px: &[f32],
        py: &[f32],
        above: Option<&[f32]>,
        v: &[f32],
        inv_theta: f32,
        last_row: bool,
        out: &mut [f32],
    ) {
        let div_y = div_y_shape(py, above, last_row);
        // SAFETY (all arms): the caller's bounds contract is forwarded; the
        // slices passed as dy payloads match each selector's expectations.
        unsafe {
            match &div_y {
                DivY::Zero => term_row_avx2_on::<DY_ZERO>(px, px, px, v, inv_theta, out, &div_y),
                DivY::First(py) => {
                    term_row_avx2_on::<DY_FIRST>(px, py, py, v, inv_theta, out, &div_y)
                }
                DivY::Interior(py, ab) => {
                    term_row_avx2_on::<DY_INTERIOR>(px, py, ab, v, inv_theta, out, &div_y)
                }
                DivY::Last(ab) => {
                    term_row_avx2_on::<DY_LAST>(px, ab, ab, v, inv_theta, out, &div_y)
                }
            }
        }
    }

    /// 8-lane fast term row: `out = (div_x + div_y) − v·(1/θ)` with the
    /// final multiply-subtract contracted into one FMA.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn term_row_avx2_on<const DY: u8>(
        px: &[f32],
        py: &[f32],
        above: &[f32],
        v: &[f32],
        inv_theta: f32,
        out: &mut [f32],
        div_y: &DivY<'_>,
    ) {
        let w = out.len();
        let it = _mm256_set1_ps(inv_theta);
        out[0] = (px[0] + div_y.at(0)) - v[0] * inv_theta;
        let mut x = 1usize;
        while x + 8 < w {
            // SAFETY: `x + 8 <= w − 1 < len` bounds every unaligned load,
            // including the shifted `px[x − 1]` stencil read.
            unsafe {
                let dx = _mm256_sub_ps(
                    _mm256_loadu_ps(px.as_ptr().add(x)),
                    _mm256_loadu_ps(px.as_ptr().add(x - 1)),
                );
                let dy = match DY {
                    DY_ZERO => _mm256_setzero_ps(),
                    DY_FIRST => _mm256_loadu_ps(py.as_ptr().add(x)),
                    DY_INTERIOR => _mm256_sub_ps(
                        _mm256_loadu_ps(py.as_ptr().add(x)),
                        _mm256_loadu_ps(above.as_ptr().add(x)),
                    ),
                    _ => {
                        _mm256_xor_ps(_mm256_set1_ps(-0.0), _mm256_loadu_ps(above.as_ptr().add(x)))
                    }
                };
                // term = (dx + dy) − v·it, contracted: fnmadd(v, it, dx+dy).
                let sum = _mm256_add_ps(dx, dy);
                let term = _mm256_fnmadd_ps(_mm256_loadu_ps(v.as_ptr().add(x)), it, sum);
                _mm256_storeu_ps(out.as_mut_ptr().add(x), term);
            }
            x += 8;
        }
        // Masked epilogue (`vmaskmovps`): the remaining `w − x` cells
        // (1..=8), including the last column — `m_dx` drops the `px[x]`
        // term on that lane, which is exactly its backward-difference
        // boundary rule.
        let rem = (w - x) as i32;
        let idx = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
        let m = _mm256_cmpgt_epi32(_mm256_set1_epi32(rem), idx);
        let m_dx = _mm256_cmpgt_epi32(_mm256_set1_epi32(rem - 1), idx);
        // SAFETY: every masked load's highest active lane indexes at most
        // `w − 1`; `vmaskmovps` suppresses faults on masked lanes.
        unsafe {
            let dx = _mm256_sub_ps(
                _mm256_maskload_ps(px.as_ptr().add(x), m_dx),
                _mm256_maskload_ps(px.as_ptr().add(x - 1), m),
            );
            let dy = match DY {
                DY_ZERO => _mm256_setzero_ps(),
                DY_FIRST => _mm256_maskload_ps(py.as_ptr().add(x), m),
                DY_INTERIOR => _mm256_sub_ps(
                    _mm256_maskload_ps(py.as_ptr().add(x), m),
                    _mm256_maskload_ps(above.as_ptr().add(x), m),
                ),
                _ => _mm256_sub_ps(
                    _mm256_setzero_ps(),
                    _mm256_maskload_ps(above.as_ptr().add(x), m),
                ),
            };
            let sum = _mm256_add_ps(dx, dy);
            let term = _mm256_fnmadd_ps(_mm256_maskload_ps(v.as_ptr().add(x), m), it, sum);
            _mm256_maskstore_ps(out.as_mut_ptr().add(x), m, term);
        }
    }

    /// 8-lane fast dual update: FMA throughout, hardware `sqrt` for the
    /// norm (it runs on the divider port, which this kernel otherwise
    /// leaves idle, so it costs no ALU slot), one `rcp`+NR reciprocal
    /// shared by both component divides.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn update_p_row_avx2(
        term: &[f32],
        below: Option<&[f32]>,
        step: f32,
        px: &mut [f32],
        py: &mut [f32],
    ) {
        let w = term.len();
        let sv = _mm256_set1_ps(step);
        let one = _mm256_set1_ps(1.0);
        let two = _mm256_set1_ps(2.0);
        let mut x = 0usize;
        while x + 8 < w {
            // SAFETY: `x + 8 <= w − 1 < len` bounds every unaligned load,
            // including the forward-difference `term[x + 1]` read.
            unsafe {
                let t = _mm256_loadu_ps(term.as_ptr().add(x));
                let t1 = _mm256_sub_ps(_mm256_loadu_ps(term.as_ptr().add(x + 1)), t);
                let t2 = match below {
                    Some(b) => _mm256_sub_ps(_mm256_loadu_ps(b.as_ptr().add(x)), t),
                    None => _mm256_setzero_ps(),
                };
                let mag = _mm256_fmadd_ps(t1, t1, _mm256_mul_ps(t2, t2));
                let grad = _mm256_sqrt_ps(mag);
                let denom = _mm256_fmadd_ps(sv, grad, one);
                // inv = rcp(denom) refined by one NR step: i ← i·(2 − d·i),
                // then shared by both component updates.
                let i0 = _mm256_rcp_ps(denom);
                let inv = _mm256_mul_ps(i0, _mm256_fnmadd_ps(denom, i0, two));
                let npx = _mm256_mul_ps(
                    _mm256_fmadd_ps(sv, t1, _mm256_loadu_ps(px.as_ptr().add(x))),
                    inv,
                );
                let npy = _mm256_mul_ps(
                    _mm256_fmadd_ps(sv, t2, _mm256_loadu_ps(py.as_ptr().add(x))),
                    inv,
                );
                _mm256_storeu_ps(px.as_mut_ptr().add(x), npx);
                _mm256_storeu_ps(py.as_mut_ptr().add(x), npy);
            }
            x += 8;
        }
        // Masked epilogue (`vmaskmovps`): the remaining `w − x` cells
        // (1..=8) run the same vector math under a lane mask instead of
        // falling to scalar `sqrt`/`div` — at production widths that tail
        // was a third of the row's update cost. `m1` keeps the forward
        // difference only on lanes with a right-hand neighbour, so the
        // last column's `t1 = 0` boundary rule falls out of the zeroed
        // lane. Masked-off lanes compute on zeros (sqrt(0) = 0, denom = 1,
        // so no NaNs) and are never stored.
        let rem = (w - x) as i32;
        let idx = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
        let m = _mm256_cmpgt_epi32(_mm256_set1_epi32(rem), idx);
        let m1 = _mm256_cmpgt_epi32(_mm256_set1_epi32(rem - 1), idx);
        // SAFETY: every masked load's highest active lane indexes at most
        // `w − 1`; `vmaskmovps` suppresses faults on masked lanes.
        unsafe {
            let t = _mm256_maskload_ps(term.as_ptr().add(x), m);
            let tn = _mm256_maskload_ps(term.as_ptr().add(x + 1), m1);
            let t1 = _mm256_and_ps(_mm256_sub_ps(tn, t), _mm256_castsi256_ps(m1));
            let t2 = match below {
                Some(b) => _mm256_sub_ps(_mm256_maskload_ps(b.as_ptr().add(x), m), t),
                None => _mm256_setzero_ps(),
            };
            let mag = _mm256_fmadd_ps(t1, t1, _mm256_mul_ps(t2, t2));
            let grad = _mm256_sqrt_ps(mag);
            let denom = _mm256_fmadd_ps(sv, grad, one);
            let i0 = _mm256_rcp_ps(denom);
            let inv = _mm256_mul_ps(i0, _mm256_fnmadd_ps(denom, i0, two));
            let npx = _mm256_mul_ps(
                _mm256_fmadd_ps(sv, t1, _mm256_maskload_ps(px.as_ptr().add(x), m)),
                inv,
            );
            let npy = _mm256_mul_ps(
                _mm256_fmadd_ps(sv, t2, _mm256_maskload_ps(py.as_ptr().add(x), m)),
                inv,
            );
            _mm256_maskstore_ps(px.as_mut_ptr().add(x), m, npx);
            _mm256_maskstore_ps(py.as_mut_ptr().add(x), m, npy);
        }
    }

    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn term_row_avx512(
        px: &[f32],
        py: &[f32],
        above: Option<&[f32]>,
        v: &[f32],
        inv_theta: f32,
        last_row: bool,
        out: &mut [f32],
    ) {
        let div_y = div_y_shape(py, above, last_row);
        let w = out.len();
        let it = _mm512_set1_ps(inv_theta);
        let zero = _mm512_setzero_ps();
        out[0] = (px[0] + div_y.at(0)) - v[0] * inv_theta;
        let mut x = 1usize;
        while x + 16 < w {
            // SAFETY: `x + 16 <= w − 1 < len` bounds every unaligned load,
            // including the shifted `px[x − 1]` stencil read.
            unsafe {
                let dx = _mm512_sub_ps(
                    _mm512_loadu_ps(px.as_ptr().add(x)),
                    _mm512_loadu_ps(px.as_ptr().add(x - 1)),
                );
                let dy = match &div_y {
                    DivY::Zero => zero,
                    DivY::First(py) => _mm512_loadu_ps(py.as_ptr().add(x)),
                    DivY::Interior(py, ab) => _mm512_sub_ps(
                        _mm512_loadu_ps(py.as_ptr().add(x)),
                        _mm512_loadu_ps(ab.as_ptr().add(x)),
                    ),
                    // `0 − a`: value-equal negation (the fast tier has no
                    // −0.0 bit contract to preserve).
                    DivY::Last(ab) => _mm512_sub_ps(zero, _mm512_loadu_ps(ab.as_ptr().add(x))),
                };
                let sum = _mm512_add_ps(dx, dy);
                let term = _mm512_fnmadd_ps(_mm512_loadu_ps(v.as_ptr().add(x)), it, sum);
                _mm512_storeu_ps(out.as_mut_ptr().add(x), term);
            }
            x += 16;
        }
        // Masked epilogue: the remaining `w − x` cells (1..=16), including
        // the last column, run the same vector math under a lane mask —
        // `m_dx` drops the `px[x]` term on the last column's lane, which is
        // exactly its backward-difference boundary rule. Production widths
        // would otherwise put ~3% of the row through the scalar path.
        let rem = w - x;
        let m: __mmask16 = 0xFFFFu16 >> (16 - rem);
        let m_dx: __mmask16 = m >> 1;
        // SAFETY: every masked load's highest active lane indexes at most
        // `w − 1`; masked lanes cannot fault.
        unsafe {
            let dx = _mm512_sub_ps(
                _mm512_maskz_loadu_ps(m_dx, px.as_ptr().add(x)),
                _mm512_maskz_loadu_ps(m, px.as_ptr().add(x - 1)),
            );
            let dy = match &div_y {
                DivY::Zero => zero,
                DivY::First(py) => _mm512_maskz_loadu_ps(m, py.as_ptr().add(x)),
                DivY::Interior(py, ab) => _mm512_sub_ps(
                    _mm512_maskz_loadu_ps(m, py.as_ptr().add(x)),
                    _mm512_maskz_loadu_ps(m, ab.as_ptr().add(x)),
                ),
                DivY::Last(ab) => _mm512_sub_ps(zero, _mm512_maskz_loadu_ps(m, ab.as_ptr().add(x))),
            };
            let sum = _mm512_add_ps(dx, dy);
            let term = _mm512_fnmadd_ps(_mm512_maskz_loadu_ps(m, v.as_ptr().add(x)), it, sum);
            _mm512_mask_storeu_ps(out.as_mut_ptr().add(x), m, term);
        }
    }

    /// 16-lane fast dual update: the AVX2 body's algorithm on ZMM —
    /// hardware `sqrt` on the divider port for the norm, one NR step on
    /// the higher-precision `rcp14` seed for the shared reciprocal.
    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn update_p_row_avx512(
        term: &[f32],
        below: Option<&[f32]>,
        step: f32,
        px: &mut [f32],
        py: &mut [f32],
    ) {
        let w = term.len();
        let sv = _mm512_set1_ps(step);
        let one = _mm512_set1_ps(1.0);
        let two = _mm512_set1_ps(2.0);
        let mut x = 0usize;
        while x + 16 < w {
            // SAFETY: `x + 16 <= w − 1 < len` bounds every unaligned load,
            // including the forward-difference `term[x + 1]` read.
            unsafe {
                let t = _mm512_loadu_ps(term.as_ptr().add(x));
                let t1 = _mm512_sub_ps(_mm512_loadu_ps(term.as_ptr().add(x + 1)), t);
                let t2 = match below {
                    Some(b) => _mm512_sub_ps(_mm512_loadu_ps(b.as_ptr().add(x)), t),
                    None => _mm512_setzero_ps(),
                };
                let mag = _mm512_fmadd_ps(t1, t1, _mm512_mul_ps(t2, t2));
                let grad = _mm512_sqrt_ps(mag);
                let denom = _mm512_fmadd_ps(sv, grad, one);
                let i0 = _mm512_rcp14_ps(denom);
                let inv = _mm512_mul_ps(i0, _mm512_fnmadd_ps(denom, i0, two));
                let npx = _mm512_mul_ps(
                    _mm512_fmadd_ps(sv, t1, _mm512_loadu_ps(px.as_ptr().add(x))),
                    inv,
                );
                let npy = _mm512_mul_ps(
                    _mm512_fmadd_ps(sv, t2, _mm512_loadu_ps(py.as_ptr().add(x))),
                    inv,
                );
                _mm512_storeu_ps(px.as_mut_ptr().add(x), npx);
                _mm512_storeu_ps(py.as_mut_ptr().add(x), npy);
            }
            x += 16;
        }
        // Masked epilogue: the remaining `w − x` cells (1..=16) run the
        // same vector math under a lane mask instead of falling to scalar
        // `sqrt`/`div` — at production widths that tail was a third of the
        // row's update cost. `m1` keeps the forward difference only on
        // lanes with a right-hand neighbour; the last column's `t1 = 0`
        // boundary rule falls out of the zeroed lane. Masked-off lanes
        // compute on zeros (sqrt(0) = 0, denom = 1, so no NaNs) and are
        // never stored.
        let rem = w - x;
        let m: __mmask16 = 0xFFFFu16 >> (16 - rem);
        let m1: __mmask16 = m >> 1;
        // SAFETY: every masked load's highest active lane indexes at most
        // `w − 1`; masked lanes cannot fault.
        unsafe {
            let t = _mm512_maskz_loadu_ps(m, term.as_ptr().add(x));
            let tn = _mm512_maskz_loadu_ps(m1, term.as_ptr().add(x + 1));
            let t1 = _mm512_maskz_sub_ps(m1, tn, t);
            let t2 = match below {
                Some(b) => _mm512_sub_ps(_mm512_maskz_loadu_ps(m, b.as_ptr().add(x)), t),
                None => _mm512_setzero_ps(),
            };
            let mag = _mm512_fmadd_ps(t1, t1, _mm512_mul_ps(t2, t2));
            let grad = _mm512_sqrt_ps(mag);
            let denom = _mm512_fmadd_ps(sv, grad, one);
            let i0 = _mm512_rcp14_ps(denom);
            let inv = _mm512_mul_ps(i0, _mm512_fnmadd_ps(denom, i0, two));
            let npx = _mm512_mul_ps(
                _mm512_fmadd_ps(sv, t1, _mm512_maskz_loadu_ps(m, px.as_ptr().add(x))),
                inv,
            );
            let npy = _mm512_mul_ps(
                _mm512_fmadd_ps(sv, t2, _mm512_maskz_loadu_ps(m, py.as_ptr().add(x))),
                inv,
            );
            _mm512_mask_storeu_ps(px.as_mut_ptr().add(x), m, npx);
            _mm512_mask_storeu_ps(py.as_mut_ptr().add(x), m, npy);
        }
    }

    /// One fused fast-tier row step on ZMM: computes the next row's term
    /// (lane math identical to [`term_row_avx512`], including the
    /// uncontracted scalar expression for column 0 and the last column's
    /// dropped-`px` rule) while updating the current row against it (lane
    /// math identical to [`update_p_row_avx512`]). The two passes' loads,
    /// stores and loop machinery collapse into one traversal; the term
    /// vector just computed feeds the update's `t2` through a one-lane
    /// `valignd` carry instead of a memory round-trip.
    ///
    /// `py_row` is both the update target and the next row's upper halo;
    /// every halo read happens before the update's store of the same
    /// lanes, within one loop iteration, so the old-`p` discipline holds.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn fused_row_avx512(
        px_next: &[f32],
        py_next: &[f32],
        v_next: &[f32],
        inv_theta: f32,
        next_is_last: bool,
        cur: &[f32],
        next: &mut [f32],
        step: f32,
        px_row: &mut [f32],
        py_row: &mut [f32],
    ) {
        let w = cur.len();
        let it = _mm512_set1_ps(inv_theta);
        let sv = _mm512_set1_ps(step);
        let one = _mm512_set1_ps(1.0);
        let two = _mm512_set1_ps(2.0);
        let zero = _mm512_setzero_ps();
        // Column 0 of the next term row: the standalone kernel's exact
        // scalar expression, so priming rows and fused rows agree bitwise.
        let dy0 = if next_is_last {
            -py_row[0]
        } else {
            py_next[0] - py_row[0]
        };
        next[0] = (px_next[0] + dy0) - v_next[0] * inv_theta;
        // Lane 15 of `carry` holds the term value of the cell just left of
        // the current update group; `valignd` shifts it in as lane 0.
        let mut carry = _mm512_set1_ps(next[0]);
        let mut x = 0usize;
        // Full groups: term cells x+1..=x+16 stay left of the last column
        // (x + 16 <= w - 2) and the update's `t1` read of cur[x + 16] stays
        // in bounds.
        while x + 17 < w {
            // SAFETY: the loop bound keeps every unaligned load inside the
            // row; `py_row`'s halo lanes are read before they are stored.
            unsafe {
                let dx = _mm512_sub_ps(
                    _mm512_loadu_ps(px_next.as_ptr().add(x + 1)),
                    _mm512_loadu_ps(px_next.as_ptr().add(x)),
                );
                let above = _mm512_loadu_ps(py_row.as_ptr().add(x + 1));
                let dy = if next_is_last {
                    _mm512_sub_ps(zero, above)
                } else {
                    _mm512_sub_ps(_mm512_loadu_ps(py_next.as_ptr().add(x + 1)), above)
                };
                let sum = _mm512_add_ps(dx, dy);
                let term = _mm512_fnmadd_ps(_mm512_loadu_ps(v_next.as_ptr().add(x + 1)), it, sum);
                _mm512_storeu_ps(next.as_mut_ptr().add(x + 1), term);

                let t = _mm512_loadu_ps(cur.as_ptr().add(x));
                let t1 = _mm512_sub_ps(_mm512_loadu_ps(cur.as_ptr().add(x + 1)), t);
                let below = _mm512_castsi512_ps(_mm512_alignr_epi32::<15>(
                    _mm512_castps_si512(term),
                    _mm512_castps_si512(carry),
                ));
                let t2 = _mm512_sub_ps(below, t);
                let mag = _mm512_fmadd_ps(t1, t1, _mm512_mul_ps(t2, t2));
                let grad = _mm512_sqrt_ps(mag);
                let denom = _mm512_fmadd_ps(sv, grad, one);
                let i0 = _mm512_rcp14_ps(denom);
                let inv = _mm512_mul_ps(i0, _mm512_fnmadd_ps(denom, i0, two));
                let npx = _mm512_mul_ps(
                    _mm512_fmadd_ps(sv, t1, _mm512_loadu_ps(px_row.as_ptr().add(x))),
                    inv,
                );
                let npy = _mm512_mul_ps(
                    _mm512_fmadd_ps(sv, t2, _mm512_loadu_ps(py_row.as_ptr().add(x))),
                    inv,
                );
                _mm512_storeu_ps(px_row.as_mut_ptr().add(x), npx);
                _mm512_storeu_ps(py_row.as_mut_ptr().add(x), npy);
                carry = term;
            }
            x += 16;
        }
        // Masked tail: the loop exits with 2..=17 cells left, so up to two
        // masked steps. `ct` counts term cells (x+1..w), `cdx` the ones
        // left of the last column (whose `px` term the mask drops — its
        // backward-difference boundary rule), and `ct` doubles as the
        // update's has-right-neighbour mask.
        while x < w {
            let rem = w - x;
            let cu = rem.min(16);
            let ct = (rem - 1).min(16);
            let cdx = rem.saturating_sub(2).min(16);
            let m_u = (0xFFFFu32 >> (16 - cu)) as __mmask16;
            let m_t = (0xFFFFu32 >> (16 - ct)) as __mmask16;
            let m_dx = (0xFFFFu32 >> (16 - cdx)) as __mmask16;
            // SAFETY: every masked load's highest active lane indexes at
            // most `w − 1`; masked lanes cannot fault. Masked-off lanes
            // compute on zeros (sqrt(0) = 0, denom = 1, so no NaNs) and
            // are never stored.
            unsafe {
                let dx = _mm512_sub_ps(
                    _mm512_maskz_loadu_ps(m_dx, px_next.as_ptr().add(x + 1)),
                    _mm512_maskz_loadu_ps(m_t, px_next.as_ptr().add(x)),
                );
                let above = _mm512_maskz_loadu_ps(m_t, py_row.as_ptr().add(x + 1));
                let dy = if next_is_last {
                    _mm512_sub_ps(zero, above)
                } else {
                    _mm512_sub_ps(
                        _mm512_maskz_loadu_ps(m_t, py_next.as_ptr().add(x + 1)),
                        above,
                    )
                };
                let sum = _mm512_add_ps(dx, dy);
                let term = _mm512_fnmadd_ps(
                    _mm512_maskz_loadu_ps(m_t, v_next.as_ptr().add(x + 1)),
                    it,
                    sum,
                );
                _mm512_mask_storeu_ps(next.as_mut_ptr().add(x + 1), m_t, term);

                let t = _mm512_maskz_loadu_ps(m_u, cur.as_ptr().add(x));
                let tn = _mm512_maskz_loadu_ps(m_t, cur.as_ptr().add(x + 1));
                let t1 = _mm512_maskz_sub_ps(m_t, tn, t);
                let below = _mm512_castsi512_ps(_mm512_alignr_epi32::<15>(
                    _mm512_castps_si512(term),
                    _mm512_castps_si512(carry),
                ));
                let t2 = _mm512_sub_ps(below, t);
                let mag = _mm512_fmadd_ps(t1, t1, _mm512_mul_ps(t2, t2));
                let grad = _mm512_sqrt_ps(mag);
                let denom = _mm512_fmadd_ps(sv, grad, one);
                let i0 = _mm512_rcp14_ps(denom);
                let inv = _mm512_mul_ps(i0, _mm512_fnmadd_ps(denom, i0, two));
                let npx = _mm512_mul_ps(
                    _mm512_fmadd_ps(sv, t1, _mm512_maskz_loadu_ps(m_u, px_row.as_ptr().add(x))),
                    inv,
                );
                let npy = _mm512_mul_ps(
                    _mm512_fmadd_ps(sv, t2, _mm512_maskz_loadu_ps(m_u, py_row.as_ptr().add(x))),
                    inv,
                );
                _mm512_mask_storeu_ps(px_row.as_mut_ptr().add(x), m_u, npx);
                _mm512_mask_storeu_ps(py_row.as_mut_ptr().add(x), m_u, npy);
                carry = term;
            }
            x += 16;
        }
    }

    /// One fused fast-tier row step on YMM — [`fused_row_avx512`]'s 8-lane
    /// twin, with the one-lane term carry built from `vperm2f128` +
    /// `palignr` (AVX2 has no full-width `valignd`). Lane math matches the
    /// standalone AVX2 kernels column for column, including the body's
    /// `xor` negation versus the tail's `sub` for a last-shape `div_y`:
    /// the body/tail column split here is the same as theirs, so every
    /// column sees the identical operation either way.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn fused_row_avx2(
        px_next: &[f32],
        py_next: &[f32],
        v_next: &[f32],
        inv_theta: f32,
        next_is_last: bool,
        cur: &[f32],
        next: &mut [f32],
        step: f32,
        px_row: &mut [f32],
        py_row: &mut [f32],
    ) {
        let w = cur.len();
        let it = _mm256_set1_ps(inv_theta);
        let sv = _mm256_set1_ps(step);
        let one = _mm256_set1_ps(1.0);
        let two = _mm256_set1_ps(2.0);
        // Column 0 of the next term row: the standalone kernel's exact
        // scalar expression, so priming rows and fused rows agree bitwise.
        let dy0 = if next_is_last {
            -py_row[0]
        } else {
            py_next[0] - py_row[0]
        };
        next[0] = (px_next[0] + dy0) - v_next[0] * inv_theta;
        // Lane 7 of `carry` holds the term value of the cell just left of
        // the current update group.
        let mut carry = _mm256_set1_ps(next[0]);
        let mut x = 0usize;
        // Full groups: term cells x+1..=x+8 stay left of the last column
        // (x + 8 <= w - 2) and the update's `t1` read of cur[x + 8] stays
        // in bounds.
        while x + 9 < w {
            // SAFETY: the loop bound keeps every unaligned load inside the
            // row; `py_row`'s halo lanes are read before they are stored.
            unsafe {
                let dx = _mm256_sub_ps(
                    _mm256_loadu_ps(px_next.as_ptr().add(x + 1)),
                    _mm256_loadu_ps(px_next.as_ptr().add(x)),
                );
                let above = _mm256_loadu_ps(py_row.as_ptr().add(x + 1));
                let dy = if next_is_last {
                    _mm256_xor_ps(_mm256_set1_ps(-0.0), above)
                } else {
                    _mm256_sub_ps(_mm256_loadu_ps(py_next.as_ptr().add(x + 1)), above)
                };
                let sum = _mm256_add_ps(dx, dy);
                let term = _mm256_fnmadd_ps(_mm256_loadu_ps(v_next.as_ptr().add(x + 1)), it, sum);
                _mm256_storeu_ps(next.as_mut_ptr().add(x + 1), term);

                let t = _mm256_loadu_ps(cur.as_ptr().add(x));
                let t1 = _mm256_sub_ps(_mm256_loadu_ps(cur.as_ptr().add(x + 1)), t);
                // below = [carry[7], term[0..7)]: swap in carry's high half,
                // then a per-128-lane byte-align picks one float from it.
                let inter = _mm256_permute2f128_ps(term, carry, 0x03);
                let below = _mm256_castsi256_ps(_mm256_alignr_epi8::<12>(
                    _mm256_castps_si256(term),
                    _mm256_castps_si256(inter),
                ));
                let t2 = _mm256_sub_ps(below, t);
                let mag = _mm256_fmadd_ps(t1, t1, _mm256_mul_ps(t2, t2));
                let grad = _mm256_sqrt_ps(mag);
                let denom = _mm256_fmadd_ps(sv, grad, one);
                let i0 = _mm256_rcp_ps(denom);
                let inv = _mm256_mul_ps(i0, _mm256_fnmadd_ps(denom, i0, two));
                let npx = _mm256_mul_ps(
                    _mm256_fmadd_ps(sv, t1, _mm256_loadu_ps(px_row.as_ptr().add(x))),
                    inv,
                );
                let npy = _mm256_mul_ps(
                    _mm256_fmadd_ps(sv, t2, _mm256_loadu_ps(py_row.as_ptr().add(x))),
                    inv,
                );
                _mm256_storeu_ps(px_row.as_mut_ptr().add(x), npx);
                _mm256_storeu_ps(py_row.as_mut_ptr().add(x), npy);
                carry = term;
            }
            x += 8;
        }
        // Masked tail: the loop exits with 2..=9 cells left, so up to two
        // masked steps. `ct` counts term cells (x+1..w), `cdx` the ones
        // left of the last column (whose `px` term the mask drops — its
        // backward-difference boundary rule), and `ct` doubles as the
        // update's has-right-neighbour mask.
        let idx = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
        while x < w {
            let rem = w - x;
            let cu = rem.min(8) as i32;
            let ct = (rem - 1).min(8) as i32;
            let cdx = rem.saturating_sub(2).min(8) as i32;
            let m_u = _mm256_cmpgt_epi32(_mm256_set1_epi32(cu), idx);
            let m_t = _mm256_cmpgt_epi32(_mm256_set1_epi32(ct), idx);
            let m_dx = _mm256_cmpgt_epi32(_mm256_set1_epi32(cdx), idx);
            // SAFETY: every masked load's highest active lane indexes at
            // most `w − 1`; `vmaskmovps` suppresses faults on masked lanes.
            // Masked-off lanes compute on zeros or stale term lanes (all
            // finite) and are never stored.
            unsafe {
                let dx = _mm256_sub_ps(
                    _mm256_maskload_ps(px_next.as_ptr().add(x + 1), m_dx),
                    _mm256_maskload_ps(px_next.as_ptr().add(x), m_t),
                );
                let above = _mm256_maskload_ps(py_row.as_ptr().add(x + 1), m_t);
                let dy = if next_is_last {
                    _mm256_sub_ps(_mm256_setzero_ps(), above)
                } else {
                    _mm256_sub_ps(_mm256_maskload_ps(py_next.as_ptr().add(x + 1), m_t), above)
                };
                let sum = _mm256_add_ps(dx, dy);
                let term =
                    _mm256_fnmadd_ps(_mm256_maskload_ps(v_next.as_ptr().add(x + 1), m_t), it, sum);
                _mm256_maskstore_ps(next.as_mut_ptr().add(x + 1), m_t, term);

                let t = _mm256_maskload_ps(cur.as_ptr().add(x), m_u);
                let tn = _mm256_maskload_ps(cur.as_ptr().add(x + 1), m_t);
                let t1 = _mm256_and_ps(_mm256_sub_ps(tn, t), _mm256_castsi256_ps(m_t));
                let inter = _mm256_permute2f128_ps(term, carry, 0x03);
                let below = _mm256_castsi256_ps(_mm256_alignr_epi8::<12>(
                    _mm256_castps_si256(term),
                    _mm256_castps_si256(inter),
                ));
                let t2 = _mm256_sub_ps(below, t);
                let mag = _mm256_fmadd_ps(t1, t1, _mm256_mul_ps(t2, t2));
                let grad = _mm256_sqrt_ps(mag);
                let denom = _mm256_fmadd_ps(sv, grad, one);
                let i0 = _mm256_rcp_ps(denom);
                let inv = _mm256_mul_ps(i0, _mm256_fnmadd_ps(denom, i0, two));
                let npx = _mm256_mul_ps(
                    _mm256_fmadd_ps(sv, t1, _mm256_maskload_ps(px_row.as_ptr().add(x), m_u)),
                    inv,
                );
                let npy = _mm256_mul_ps(
                    _mm256_fmadd_ps(sv, t2, _mm256_maskload_ps(py_row.as_ptr().add(x), m_u)),
                    inv,
                );
                _mm256_maskstore_ps(px_row.as_mut_ptr().add(x), m_u, npx);
                _mm256_maskstore_ps(py_row.as_mut_ptr().add(x), m_u, npy);
                carry = term;
            }
            x += 8;
        }
    }

    // Re-exported so `compute_term_row_fast`'s scalar fallback can assert
    // shape parity with the exact kernels in debug builds.
    #[allow(unused_imports)]
    pub(super) use kernels::compute_term_row as _term_reference;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::BelowHalo;
    use crate::solver::DualField;
    use chambolle_imaging::Grid;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn backends() -> Vec<KernelBackend> {
        let mut all = vec![KernelBackend::Scalar];
        for b in [
            KernelBackend::Sse2,
            KernelBackend::Avx2,
            KernelBackend::Avx512,
        ] {
            if b.is_supported() {
                all.push(b);
            }
        }
        all
    }

    fn random_state(w: usize, h: usize, seed: u64) -> (DualField<f32>, Grid<f32>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut p = DualField::zeros(w, h);
        p.px = Grid::from_fn(w, h, |_, _| rng.gen_range(-0.7f32..0.7));
        p.py = Grid::from_fn(w, h, |_, _| rng.gen_range(-0.7f32..0.7));
        let v = Grid::from_fn(w, h, |_, _| rng.gen_range(0.0f32..1.0));
        (p, v)
    }

    fn fast_full_iteration(
        backend: KernelBackend,
        p: &mut DualField<f32>,
        v: &Grid<f32>,
        inv_theta: f32,
        step: f32,
    ) {
        let (w, h) = v.dims();
        let (mut ta, mut tb) = (vec![0.0f32; w], vec![0.0f32; w]);
        fused_band_iteration_fast(
            backend,
            p.px.as_mut_slice(),
            p.py.as_mut_slice(),
            v.as_slice(),
            w,
            h,
            0,
            BandHalo {
                py_above: None,
                below: None,
            },
            inv_theta,
            step,
            &mut ta,
            &mut tb,
        );
    }

    #[test]
    fn fast_rows_stay_within_tolerance_of_exact() {
        for backend in backends() {
            for w in [1usize, 2, 3, 7, 8, 9, 16, 17, 31, 64, 129] {
                let mut rng = StdRng::seed_from_u64(3 + w as u64);
                let row = |rng: &mut StdRng| -> Vec<f32> {
                    (0..w).map(|_| rng.gen_range(-0.9f32..0.9)).collect()
                };
                let (term, below, px0, py0) =
                    (row(&mut rng), row(&mut rng), row(&mut rng), row(&mut rng));
                for below_opt in [None, Some(below.as_slice())] {
                    let (mut epx, mut epy) = (px0.clone(), py0.clone());
                    kernels::update_p_row(&term, below_opt, 0.248, &mut epx, &mut epy);
                    let (mut fpx, mut fpy) = (px0.clone(), py0.clone());
                    update_p_row_fast(backend, &term, below_opt, 0.248, &mut fpx, &mut fpy);
                    for i in 0..w {
                        assert!(
                            (epx[i] - fpx[i]).abs() < 1e-5 && (epy[i] - fpy[i]).abs() < 1e-5,
                            "{backend:?} w={w} i={i}: exact ({}, {}) vs fast ({}, {})",
                            epx[i],
                            epy[i],
                            fpx[i],
                            fpy[i],
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn fast_term_rows_stay_within_tolerance_of_exact() {
        for backend in backends() {
            for w in [2usize, 8, 9, 17, 33, 65] {
                let mut rng = StdRng::seed_from_u64(11 + w as u64);
                let row = |rng: &mut StdRng| -> Vec<f32> {
                    (0..w).map(|_| rng.gen_range(-0.9f32..0.9)).collect()
                };
                let (px, py, above, v) =
                    (row(&mut rng), row(&mut rng), row(&mut rng), row(&mut rng));
                for (above_opt, last) in [
                    (None, true),
                    (None, false),
                    (Some(above.as_slice()), false),
                    (Some(above.as_slice()), true),
                ] {
                    let mut exact = vec![0.0f32; w];
                    kernels::compute_term_row(&px, &py, above_opt, &v, 4.0, last, &mut exact);
                    let mut fast = vec![0.0f32; w];
                    compute_term_row_fast(backend, &px, &py, above_opt, &v, 4.0, last, &mut fast);
                    for i in 0..w {
                        assert!((exact[i] - fast[i]).abs() < 1e-5, "{backend:?} w={w} i={i}");
                    }
                }
            }
        }
    }

    #[test]
    fn temporal_sweep_bit_identical_to_sequential_fast_passes() {
        // The tentpole invariant: K-fused sweeps perform exactly the same
        // per-cell operations in the same order as K sequential fast
        // passes, on every backend and for every frame shape — including
        // frames shorter than the fusion depth.
        for backend in backends() {
            for (w, h) in [
                (13usize, 11usize),
                (1, 9),
                (9, 1),
                (1, 1),
                (32, 24),
                (17, 2),
                (19, 3),
                (23, 5),
            ] {
                for k in [1u32, 2, 3, 4, 7] {
                    let (p0, v) = random_state(w, h, 500 + w as u64 + k as u64);
                    let mut p_seq = p0.clone();
                    for _ in 0..k {
                        fast_full_iteration(backend, &mut p_seq, &v, 4.0, 0.125);
                    }
                    let mut p_fused = p0.clone();
                    temporal_sweep(
                        backend,
                        p_fused.px.as_mut_slice(),
                        p_fused.py.as_mut_slice(),
                        v.as_slice(),
                        w,
                        h,
                        4.0,
                        0.125,
                        k,
                    );
                    let bits = |g: &Grid<f32>| {
                        g.as_slice().iter().map(|f| f.to_bits()).collect::<Vec<_>>()
                    };
                    assert_eq!(
                        bits(&p_fused.px),
                        bits(&p_seq.px),
                        "{backend:?} {w}x{h} k={k} px"
                    );
                    assert_eq!(
                        bits(&p_fused.py),
                        bits(&p_seq.py),
                        "{backend:?} {w}x{h} k={k} py"
                    );
                }
            }
        }
    }

    #[test]
    fn fast_band_with_halos_matches_fast_full_frame() {
        // Fast-tier thread-count invariance: stitched bands with
        // snapshotted halos must bit-match the full-frame fast pass (bands
        // run the same full-width row kernels, so per-cell op order is
        // unchanged).
        let (w, h) = (33usize, 23usize);
        for backend in backends() {
            let (p, v) = random_state(w, h, 321);
            let mut p_ref = p.clone();
            fast_full_iteration(backend, &mut p_ref, &v, 4.0, 0.125);

            for bands in [2usize, 3, 5] {
                let mut pb = p.clone();
                let bounds: Vec<usize> = (0..=bands).map(|b| b * h / bands).collect();
                let snap_py_above: Vec<Vec<f32>> = (1..bands)
                    .map(|b| pb.py.row(bounds[b] - 1).to_vec())
                    .collect();
                let snap_px_below: Vec<Vec<f32>> =
                    (1..bands).map(|b| pb.px.row(bounds[b]).to_vec()).collect();
                let snap_py_below: Vec<Vec<f32>> =
                    (1..bands).map(|b| pb.py.row(bounds[b]).to_vec()).collect();
                for b in (0..bands).rev() {
                    let (r0, r1) = (bounds[b], bounds[b + 1]);
                    if r0 == r1 {
                        continue;
                    }
                    let halo = BandHalo {
                        py_above: (r0 > 0).then(|| snap_py_above[b - 1].as_slice()),
                        below: (r1 < h).then(|| BelowHalo {
                            px: snap_px_below[b].as_slice(),
                            py: snap_py_below[b].as_slice(),
                            v: v.row(r1),
                        }),
                    };
                    let (mut ta, mut tb) = (vec![0.0f32; w], vec![0.0f32; w]);
                    fused_band_iteration_fast(
                        backend,
                        &mut pb.px.as_mut_slice()[r0 * w..r1 * w],
                        &mut pb.py.as_mut_slice()[r0 * w..r1 * w],
                        &v.as_slice()[r0 * w..r1 * w],
                        w,
                        h,
                        r0,
                        halo,
                        4.0,
                        0.125,
                        &mut ta,
                        &mut tb,
                    );
                }
                assert_eq!(
                    pb.px.as_slice(),
                    p_ref.px.as_slice(),
                    "{backend:?} {bands} bands px"
                );
                assert_eq!(
                    pb.py.as_slice(),
                    p_ref.py.as_slice(),
                    "{backend:?} {bands} bands py"
                );
            }
        }
    }

    #[test]
    fn fast_projection_keeps_the_dual_ball_invariant() {
        // |p| ≤ 1 (+ the tier's tolerance) must survive approximate
        // reciprocals: the NR-refined inv slightly perturbs the projection
        // but cannot let the dual field escape.
        for backend in backends() {
            let (mut p, v) = random_state(31, 17, 77);
            for _ in 0..30 {
                fast_full_iteration(backend, &mut p, &v, 4.0, 0.25);
            }
            assert!(
                p.max_norm() <= 1.0 + 1e-4,
                "{backend:?}: |p| = {} escaped the unit ball",
                p.max_norm()
            );
        }
    }
}
