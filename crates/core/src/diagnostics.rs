//! Convergence diagnostics for the Chambolle iteration: dual energy,
//! duality gap, and a gap-driven solver with per-iteration history.
//!
//! The paper treats `Niterations` as a free precision knob (Table II sweeps
//! 50/100/200). The duality gap makes that knob quantitative: for the ROF
//! problem `min_u TV(u) + ‖u−v‖²/(2θ)` and its dual
//! `max_{|p|≤1} ⟨v, div p⟩ − (θ/2)‖div p‖²`, every feasible pair bounds the
//! distance to optimality by `E(u) − D(p) ≥ 0`, and for the primal recovered
//! as `u = v − θ·div p` the gap simplifies to `TV(u) + ⟨∇u, p⟩`.

use chambolle_imaging::Grid;
use chambolle_telemetry::{names, Telemetry};

use crate::cancel::Cancelled;
use crate::ctx::ExecCtx;
use crate::ops::{divergence, forward_diff_x, forward_diff_y, inner_product, total_variation};
use crate::params::{ChambolleParams, InvalidParamsError};
use crate::real::Real;
use crate::solver::{chambolle_iterate_with_ctx, recover_u, rof_energy, DualField};

/// The dual ROF objective `D(p) = ⟨v, div p⟩ − (θ/2)‖div p‖²`.
///
/// For any `p` with `|p| ≤ 1` pointwise, `D(p) ≤ E(u)` for every `u`
/// ([`rof_energy`]); equality holds only at the saddle point.
///
/// # Panics
///
/// Panics if dimensions differ or `theta <= 0`; [`try_rof_dual_energy`] is
/// the non-panicking form.
pub fn rof_dual_energy<R: Real>(p: &DualField<R>, v: &Grid<R>, theta: f32) -> f64 {
    try_rof_dual_energy(p, v, theta).expect("invalid rof_dual_energy input")
}

/// [`rof_dual_energy`] with validated preconditions instead of panics.
///
/// # Errors
///
/// Returns [`InvalidParamsError`] if dimensions differ or `theta` is not
/// positive (NaN included).
pub fn try_rof_dual_energy<R: Real>(
    p: &DualField<R>,
    v: &Grid<R>,
    theta: f32,
) -> Result<f64, InvalidParamsError> {
    if p.dims() != v.dims() {
        return Err(InvalidParamsError::new(format!(
            "dual field {:?} and v {:?} must match in size",
            p.dims(),
            v.dims()
        )));
    }
    #[allow(clippy::neg_cmp_op_on_partial_ord)] // NaN must be rejected too
    if !(theta > 0.0) {
        return Err(InvalidParamsError::new(format!(
            "theta must be positive, got {theta}"
        )));
    }
    let div = divergence(&p.px, &p.py);
    let norm_sq: f64 = div
        .as_slice()
        .iter()
        .map(|&d| d.to_f64() * d.to_f64())
        .sum();
    Ok(inner_product(v, &div) - 0.5 * theta as f64 * norm_sq)
}

/// Duality gap of a primal/dual pair: `E(u) − D(p)`.
///
/// Non-negative whenever `|p| ≤ 1` pointwise; zero exactly at the optimum.
///
/// # Panics
///
/// Panics if dimensions differ or `theta <= 0`; [`try_duality_gap`] is the
/// non-panicking form.
pub fn duality_gap<R: Real>(u: &Grid<R>, p: &DualField<R>, v: &Grid<R>, theta: f32) -> f64 {
    try_duality_gap(u, p, v, theta).expect("invalid duality_gap input")
}

/// [`duality_gap`] with validated preconditions instead of panics.
///
/// # Errors
///
/// Returns [`InvalidParamsError`] if any dimensions differ or `theta` is not
/// positive (NaN included).
pub fn try_duality_gap<R: Real>(
    u: &Grid<R>,
    p: &DualField<R>,
    v: &Grid<R>,
    theta: f32,
) -> Result<f64, InvalidParamsError> {
    Ok(crate::solver::try_rof_energy(u, v, theta)? - try_rof_dual_energy(p, v, theta)?)
}

/// The algebraically simplified gap for `u = v − θ·div p`:
/// `TV(u) + ⟨∇u, p⟩` (avoids recomputing the quadratic terms).
///
/// # Panics
///
/// Panics if dimensions differ; [`try_duality_gap_compact`] is the
/// non-panicking form.
pub fn duality_gap_compact<R: Real>(u: &Grid<R>, p: &DualField<R>) -> f64 {
    try_duality_gap_compact(u, p).expect("invalid duality_gap_compact input")
}

/// [`duality_gap_compact`] with validated preconditions instead of panics.
///
/// # Errors
///
/// Returns [`InvalidParamsError`] if `u` and the dual field differ in size.
pub fn try_duality_gap_compact<R: Real>(
    u: &Grid<R>,
    p: &DualField<R>,
) -> Result<f64, InvalidParamsError> {
    if u.dims() != p.dims() {
        return Err(InvalidParamsError::new(format!(
            "u {:?} and dual field {:?} must match in size",
            u.dims(),
            p.dims()
        )));
    }
    let gx = forward_diff_x(u);
    let gy = forward_diff_y(u);
    Ok(total_variation(u) + inner_product(&gx, &p.px) + inner_product(&gy, &p.py))
}

/// One sampled point of a monitored solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConvergencePoint {
    /// Iterations completed when the sample was taken.
    pub iteration: u32,
    /// Primal ROF energy of `u = v − θ·div p`.
    pub energy: f64,
    /// Duality gap at the sample.
    pub gap: f64,
}

/// Result of [`chambolle_denoise_monitored`].
#[derive(Debug, Clone, PartialEq)]
pub struct SolveReport<R: Real> {
    /// The denoised image.
    pub u: Grid<R>,
    /// The final dual field.
    pub p: DualField<R>,
    /// Iterations actually executed (≤ `params.iterations` when the gap
    /// tolerance stopped the solve early).
    pub iterations_run: u32,
    /// Sampled convergence history (one entry per check interval, plus the
    /// final state).
    pub history: Vec<ConvergencePoint>,
}

impl<R: Real> SolveReport<R> {
    /// The final duality gap.
    pub fn final_gap(&self) -> f64 {
        self.history.last().map_or(f64::INFINITY, |pt| pt.gap)
    }
}

/// Runs the Chambolle iteration with convergence monitoring: the duality gap
/// is evaluated every `check_every` iterations and the solve stops early
/// once it falls below `gap_tolerance` (use `0.0` to always run the full
/// `params.iterations`).
///
/// # Panics
///
/// Panics if `check_every == 0`.
pub fn chambolle_denoise_monitored<R: Real>(
    v: &Grid<R>,
    params: &ChambolleParams,
    check_every: u32,
    gap_tolerance: f64,
) -> SolveReport<R> {
    chambolle_denoise_monitored_with_ctx(v, params, check_every, gap_tolerance, &ExecCtx::default())
        .expect("an inert context carries no cancellation token")
}

/// [`chambolle_denoise_monitored`] with instrumentation: the whole solve is
/// wrapped in a `solver.monitored_denoise` span, every gap check emits a
/// `solver.convergence_point` event (iteration/energy/gap payload), and on
/// return the registry holds `solver.iterations`, `solver.gap_checks`, and
/// the final energy/gap gauges.
///
/// With a disabled [`Telemetry`] handle this is the exact code path of the
/// plain function — every hook is a single branch on an empty `Option` —
/// so the output is bit-identical to an uninstrumented solve (asserted by
/// `tests/telemetry_noop.rs`).
///
/// # Panics
///
/// Panics if `check_every == 0`.
#[deprecated(note = "use `chambolle_denoise_monitored_with_ctx` with \
            `ExecCtx::default().with_telemetry(telemetry.clone())`")]
pub fn chambolle_denoise_monitored_with_telemetry<R: Real>(
    v: &Grid<R>,
    params: &ChambolleParams,
    check_every: u32,
    gap_tolerance: f64,
    telemetry: &Telemetry,
) -> SolveReport<R> {
    let ctx = ExecCtx::default().with_telemetry(telemetry.clone());
    chambolle_denoise_monitored_with_ctx(v, params, check_every, gap_tolerance, &ctx)
        .expect("a context without a token cannot be cancelled")
}

/// [`chambolle_denoise_monitored`] under an [`ExecCtx`]: the iteration
/// chunks between gap checks run on the context's pool and kernel backend,
/// the instrumentation of
/// [`chambolle_denoise_monitored_with_telemetry`] records into the
/// context's telemetry, and the context's cancellation token is polled at
/// iteration boundaries.
///
/// The gap and energy evaluations themselves are sequential left-to-right
/// `f64` sums on every backend and pool size (see [`crate::backend`]), so
/// the report — history included — is bit-identical across contexts.
///
/// # Errors
///
/// Returns [`Cancelled`] if the context's token reports cancellation before
/// the solve finishes; `p` progress up to the last completed iteration is
/// discarded along with the partial report.
///
/// # Panics
///
/// Panics if `check_every == 0`.
pub fn chambolle_denoise_monitored_with_ctx<R: Real>(
    v: &Grid<R>,
    params: &ChambolleParams,
    check_every: u32,
    gap_tolerance: f64,
    ctx: &ExecCtx,
) -> Result<SolveReport<R>, Cancelled> {
    assert!(check_every > 0, "check interval must be positive");
    let telemetry = ctx.telemetry();
    let _solve_span = telemetry.span("solver.monitored_denoise");
    let mut p = DualField::zeros(v.width(), v.height());
    let mut history = Vec::new();
    let mut done = 0u32;
    while done < params.iterations {
        let chunk = check_every.min(params.iterations - done);
        chambolle_iterate_with_ctx(&mut p, v, params, chunk, ctx)?;
        done += chunk;
        let u = recover_u(v, &p, params.theta);
        let gap = duality_gap(&u, &p, v, params.theta);
        let energy = rof_energy(&u, v, params.theta);
        telemetry.counter_add(names::SOLVER_GAP_CHECKS, 1);
        telemetry.event(
            names::SOLVER_CONVERGENCE_POINT,
            vec![
                ("iteration".into(), done.into()),
                ("energy".into(), energy.into()),
                ("gap".into(), gap.into()),
            ],
        );
        history.push(ConvergencePoint {
            iteration: done,
            energy,
            gap,
        });
        if gap <= gap_tolerance {
            break;
        }
    }
    let u = recover_u(v, &p, params.theta);
    telemetry.counter_add(names::SOLVER_ITERATIONS, u64::from(done));
    if let Some(last) = history.last() {
        telemetry.gauge_set(names::SOLVER_FINAL_ENERGY, last.energy);
        telemetry.gauge_set(names::SOLVER_FINAL_GAP, last.gap);
    }
    Ok(SolveReport {
        u,
        p,
        iterations_run: done,
        history,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::chambolle_iterate;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn noisy(w: usize, h: usize, seed: u64) -> Grid<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        Grid::from_fn(w, h, |x, _| {
            (if x < w / 2 { 0.2 } else { 0.8 }) + rng.gen_range(-0.1..0.1)
        })
    }

    fn params(iters: u32) -> ChambolleParams {
        ChambolleParams::paper(iters)
    }

    #[test]
    fn telemetry_records_convergence_trajectory() {
        use chambolle_telemetry::sink::EventKind;

        let v = noisy(12, 10, 20);
        let (tele, events) = Telemetry::memory();
        let ctx = ExecCtx::default().with_telemetry(tele.clone());
        let report = chambolle_denoise_monitored_with_ctx(&v, &params(45), 20, 0.0, &ctx).unwrap();
        let snap = tele.snapshot();
        assert_eq!(snap.counter(names::SOLVER_ITERATIONS), Some(45));
        assert_eq!(
            snap.counter(names::SOLVER_GAP_CHECKS),
            Some(report.history.len() as u64)
        );
        assert_eq!(
            snap.gauge(names::SOLVER_FINAL_GAP),
            Some(report.final_gap())
        );
        let points = events
            .lock()
            .unwrap()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Instant(_)))
            .count();
        assert_eq!(points, report.history.len());
    }

    #[test]
    fn weak_duality_holds() {
        let v = noisy(16, 12, 1);
        let mut p = DualField::zeros(16, 12);
        chambolle_iterate(&mut p, &v, &params(10), 10);
        let u = recover_u(&v, &p, 0.25);
        assert!(p.max_norm() <= 1.0 + 1e-12);
        let gap = duality_gap(&u, &p, &v, 0.25);
        assert!(gap >= -1e-9, "weak duality violated: gap = {gap}");
    }

    #[test]
    fn compact_gap_matches_definition() {
        let v = noisy(14, 10, 2);
        let mut p = DualField::zeros(14, 10);
        chambolle_iterate(&mut p, &v, &params(25), 25);
        let u = recover_u(&v, &p, 0.25);
        let full = duality_gap(&u, &p, &v, 0.25);
        let compact = duality_gap_compact(&u, &p);
        assert!(
            (full - compact).abs() < 1e-8,
            "gap formulations disagree: {full} vs {compact}"
        );
    }

    #[test]
    fn gap_decreases_toward_zero() {
        let v = noisy(20, 16, 3);
        let report = chambolle_denoise_monitored(&v, &params(800), 100, 0.0);
        let gaps: Vec<f64> = report.history.iter().map(|pt| pt.gap).collect();
        assert!(gaps.len() >= 4);
        assert!(
            gaps.last().unwrap() < &(0.2 * gaps[0]),
            "gap should shrink substantially: {gaps:?}"
        );
        for w in gaps.windows(2) {
            assert!(
                w[1] <= w[0] * 1.05,
                "gap should be (near-)monotone: {gaps:?}"
            );
        }
    }

    #[test]
    fn early_stop_on_tolerance() {
        let v = noisy(16, 12, 4);
        let full = chambolle_denoise_monitored(&v, &params(2000), 50, 0.0);
        let target_gap = full.history[full.history.len() / 2].gap;
        let early = chambolle_denoise_monitored(&v, &params(2000), 50, target_gap);
        assert!(early.iterations_run < 2000);
        assert!(early.final_gap() <= target_gap);
    }

    #[test]
    fn monitored_solve_matches_plain_solve() {
        use crate::solver::chambolle_denoise;
        let v = noisy(16, 12, 5);
        let report = chambolle_denoise_monitored(&v, &params(60), 20, 0.0);
        let (u_plain, p_plain) = chambolle_denoise(&v, &params(60));
        assert_eq!(report.iterations_run, 60);
        assert_eq!(report.u.as_slice(), u_plain.as_slice());
        assert_eq!(report.p.px.as_slice(), p_plain.px.as_slice());
    }

    #[test]
    fn dual_energy_of_zero_p_is_zero() {
        let v = noisy(8, 8, 6);
        let p = DualField::zeros(8, 8);
        assert_eq!(rof_dual_energy(&p, &v, 0.25), 0.0);
    }

    #[test]
    fn try_variants_accept_valid_inputs() {
        let v = noisy(12, 10, 9);
        let mut p = DualField::zeros(12, 10);
        chambolle_iterate(&mut p, &v, &params(15), 15);
        let u = recover_u(&v, &p, 0.25);
        assert_eq!(
            try_rof_dual_energy(&p, &v, 0.25).unwrap(),
            rof_dual_energy(&p, &v, 0.25)
        );
        assert_eq!(
            try_duality_gap(&u, &p, &v, 0.25).unwrap(),
            duality_gap(&u, &p, &v, 0.25)
        );
        assert_eq!(
            try_duality_gap_compact(&u, &p).unwrap(),
            duality_gap_compact(&u, &p)
        );
    }

    #[test]
    fn try_variants_reject_mismatched_dims() {
        let v = noisy(12, 10, 10);
        let p = DualField::<f64>::zeros(11, 10);
        let u = Grid::<f64>::new(12, 10, 0.0);
        assert!(try_rof_dual_energy(&p, &v, 0.25).is_err());
        assert!(try_duality_gap(&u, &p, &v, 0.25).is_err());
        assert!(try_duality_gap_compact(&u, &p).is_err());
        let u_bad = Grid::<f64>::new(12, 9, 0.0);
        assert!(try_duality_gap(&u_bad, &DualField::zeros(12, 10), &v, 0.25).is_err());
    }

    #[test]
    fn try_variants_reject_bad_theta() {
        let v = noisy(8, 8, 11);
        let p = DualField::<f64>::zeros(8, 8);
        let u = Grid::<f64>::new(8, 8, 0.0);
        for theta in [0.0, -1.0, f32::NAN] {
            assert!(try_rof_dual_energy(&p, &v, theta).is_err(), "theta={theta}");
            assert!(try_duality_gap(&u, &p, &v, theta).is_err(), "theta={theta}");
        }
    }

    #[test]
    #[should_panic(expected = "invalid rof_dual_energy input")]
    fn panicking_form_still_panics_on_bad_dims() {
        let v = Grid::<f64>::new(8, 8, 0.0);
        let p = DualField::<f64>::zeros(7, 8);
        rof_dual_energy(&p, &v, 0.25);
    }

    #[test]
    fn monitoring_works_in_f32_too() {
        let v64 = noisy(12, 10, 8);
        let v32 = v64.map(|&x| x as f32);
        let report = chambolle_denoise_monitored(&v32, &params(80), 40, 0.0);
        assert_eq!(report.iterations_run, 80);
        assert!(report.final_gap().is_finite());
        assert!(report.final_gap() >= -1e-3, "weak duality up to f32 noise");
    }

    #[test]
    fn history_records_iteration_numbers() {
        let v = noisy(10, 8, 7);
        let report = chambolle_denoise_monitored(&v, &params(45), 20, 0.0);
        let iters: Vec<u32> = report.history.iter().map(|pt| pt.iteration).collect();
        assert_eq!(iters, vec![20, 40, 45]);
    }
}
