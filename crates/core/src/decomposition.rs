//! Executable loop decomposition (Section III-A): computing the elements of
//! an output group at iteration `n + depth` *directly* from the values
//! available at iteration `n`, without storing intermediate frames — the
//! software analogue of a cascaded-PE pipeline evaluating Fig. 1.c's merged
//! formula.
//!
//! The evaluator memoizes intermediate `p` and `Term` values per level, so
//! the number of evaluations it performs is exactly the dependency-cone
//! arithmetic of [`crate::dependency`] (tested below) — Figure 1's counts
//! are not just analysis here, they are the measured cost of this function.
//! The arithmetic per value is shared with the sequential solver's formulas,
//! so the result is bit-identical to running `depth` plain iterations.

use std::collections::HashMap;

use chambolle_imaging::Grid;

use crate::params::ChambolleParams;
use crate::real::Real;
use crate::solver::DualField;

/// Evaluation counters of one decomposed group computation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecomposedStats {
    /// `p`-update evaluations (PE-V work), across all intermediate levels.
    pub p_evals: usize,
    /// `Term` evaluations (PE-T work), across all intermediate levels.
    pub term_evals: usize,
}

/// A rectangular output group (absolute frame coordinates).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupRect {
    /// Left column.
    pub x0: usize,
    /// Top row.
    pub y0: usize,
    /// Width.
    pub w: usize,
    /// Height.
    pub h: usize,
}

/// Computes the dual values of `group` at iteration `n + depth` directly
/// from the global state `p` at iteration `n`, and returns them as a pair of
/// `group`-sized grids together with the evaluation counts.
///
/// # Panics
///
/// Panics if the group is empty, `depth == 0`, or the group exceeds the
/// frame.
pub fn compute_group_decomposed<R: Real>(
    p: &DualField<R>,
    v: &Grid<R>,
    params: &ChambolleParams,
    depth: u32,
    group: GroupRect,
) -> (Grid<R>, Grid<R>, DecomposedStats) {
    assert!(depth > 0, "depth must be at least 1");
    assert!(group.w > 0 && group.h > 0, "group must be non-empty");
    let (fw, fh) = v.dims();
    assert!(
        group.x0 + group.w <= fw && group.y0 + group.h <= fh,
        "group exceeds the frame"
    );
    assert_eq!(p.dims(), v.dims(), "dual field and v must match in size");

    let mut eval = Evaluator {
        p,
        v,
        w: fw,
        h: fh,
        inv_theta: R::ONE / R::from_f32(params.theta),
        step_ratio: R::from_f32(params.step_ratio()),
        p_memo: HashMap::new(),
        term_memo: HashMap::new(),
        stats: DecomposedStats::default(),
    };
    let mut px = Grid::new(group.w, group.h, R::ZERO);
    let mut py = Grid::new(group.w, group.h, R::ZERO);
    for dy in 0..group.h {
        for dx in 0..group.w {
            let (a, b) = eval.p_at(depth, group.x0 + dx, group.y0 + dy);
            px[(dx, dy)] = a;
            py[(dx, dy)] = b;
        }
    }
    (px, py, eval.stats)
}

struct Evaluator<'a, R: Real> {
    p: &'a DualField<R>,
    v: &'a Grid<R>,
    w: usize,
    h: usize,
    inv_theta: R,
    step_ratio: R,
    p_memo: HashMap<(u32, usize, usize), (R, R)>,
    term_memo: HashMap<(u32, usize, usize), R>,
    stats: DecomposedStats,
}

impl<R: Real> Evaluator<'_, R> {
    /// `p` at iteration `n + level`, cell `(x, y)`.
    fn p_at(&mut self, level: u32, x: usize, y: usize) -> (R, R) {
        if level == 0 {
            return (self.p.px[(x, y)], self.p.py[(x, y)]);
        }
        if let Some(&cached) = self.p_memo.get(&(level, x, y)) {
            return cached;
        }
        // The PE-V formula, verbatim from the sequential solver.
        let t_c = self.term_at(level - 1, x, y);
        let t1 = if x + 1 < self.w {
            self.term_at(level - 1, x + 1, y) - t_c
        } else {
            R::ZERO
        };
        let t2 = if y + 1 < self.h {
            self.term_at(level - 1, x, y + 1) - t_c
        } else {
            R::ZERO
        };
        let grad = (t1 * t1 + t2 * t2).sqrt();
        let denom = R::ONE + self.step_ratio * grad;
        let (px0, py0) = self.p_at(level - 1, x, y);
        let result = (
            (px0 + self.step_ratio * t1) / denom,
            (py0 + self.step_ratio * t2) / denom,
        );
        self.stats.p_evals += 1;
        self.p_memo.insert((level, x, y), result);
        result
    }

    /// `Term` at iteration `n + level`, cell `(x, y)` (from `p` at the same
    /// level — the PE-T formula with the divergence boundary rules).
    fn term_at(&mut self, level: u32, x: usize, y: usize) -> R {
        if let Some(&cached) = self.term_memo.get(&(level, x, y)) {
            return cached;
        }
        let div_x = if self.w == 1 {
            R::ZERO
        } else if x == 0 {
            self.p_at(level, 0, y).0
        } else if x + 1 < self.w {
            self.p_at(level, x, y).0 - self.p_at(level, x - 1, y).0
        } else {
            -self.p_at(level, x - 1, y).0
        };
        let div_y = if self.h == 1 {
            R::ZERO
        } else if y == 0 {
            self.p_at(level, x, 0).1
        } else if y + 1 < self.h {
            self.p_at(level, x, y).1 - self.p_at(level, x, y - 1).1
        } else {
            -self.p_at(level, x, y - 1).1
        };
        let term = (div_x + div_y) - self.v[(x, y)] * self.inv_theta;
        self.stats.term_evals += 1;
        self.term_memo.insert((level, x, y), term);
        term
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dependency::{dependency_set, rect_group};
    use crate::solver::chambolle_iterate;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn params() -> ChambolleParams {
        ChambolleParams::paper(10)
    }

    fn random_state(w: usize, h: usize, seed: u64) -> (DualField<f64>, Grid<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let v = Grid::from_fn(w, h, |_, _| rng.gen_range(0.0f64..1.0));
        // A warmed-up dual state exercises all terms of the formula.
        let mut p = DualField::zeros(w, h);
        chambolle_iterate(&mut p, &v, &params(), 3);
        (p, v)
    }

    #[test]
    fn decomposed_equals_iterated_bit_exact() {
        let (p, v) = random_state(20, 16, 1);
        for depth in [1u32, 2, 3] {
            let group = GroupRect {
                x0: 5,
                y0: 4,
                w: 4,
                h: 3,
            };
            let (gx, gy, _) = compute_group_decomposed(&p, &v, &params(), depth, group);
            let mut p_iter = p.clone();
            chambolle_iterate(&mut p_iter, &v, &params(), depth);
            for dy in 0..group.h {
                for dx in 0..group.w {
                    assert_eq!(
                        gx[(dx, dy)],
                        p_iter.px[(group.x0 + dx, group.y0 + dy)],
                        "px at depth {depth}"
                    );
                    assert_eq!(
                        gy[(dx, dy)],
                        p_iter.py[(group.x0 + dx, group.y0 + dy)],
                        "py at depth {depth}"
                    );
                }
            }
        }
    }

    #[test]
    fn evaluation_counts_match_the_dependency_cones() {
        // Figure 1 as measured cost: the number of p-updates at intermediate
        // level l equals the cone of the group dilated (depth - l) times.
        let (p, v) = random_state(40, 40, 2);
        for (gw, gh, depth) in [(1usize, 1usize, 1u32), (2, 2, 1), (1, 1, 2), (4, 4, 2)] {
            let group = GroupRect {
                x0: 16,
                y0: 16,
                w: gw,
                h: gh,
            };
            let (_, _, stats) = compute_group_decomposed(&p, &v, &params(), depth, group);
            let mut expected_p = 0usize;
            for level in 1..=depth {
                // p at level `level` is needed on the cone of radius
                // (depth - level).
                expected_p += dependency_set(&rect_group(gw, gh), depth - level).len();
            }
            assert_eq!(
                stats.p_evals, expected_p,
                "p-eval count for {gw}x{gh} at depth {depth}"
            );
            assert!(stats.term_evals >= stats.p_evals);
        }
    }

    #[test]
    fn fig_1a_costs_seven_inputs() {
        // One element one iteration ahead reads p^n at 7 cells (Fig. 1.a):
        // 1 p-update, term evals over the 3-cell Term stencil.
        let (p, v) = random_state(16, 16, 3);
        let group = GroupRect {
            x0: 8,
            y0: 8,
            w: 1,
            h: 1,
        };
        let (_, _, stats) = compute_group_decomposed(&p, &v, &params(), 1, group);
        assert_eq!(stats.p_evals, 1);
        assert_eq!(stats.term_evals, 3);
    }

    #[test]
    fn grouping_amortizes_shared_work() {
        // inputs/output falls with group size (Fig. 1.b): per-output term
        // evaluations for a 2x2 group are below 4x the single-element cost.
        let (p, v) = random_state(24, 24, 4);
        let single = compute_group_decomposed(
            &p,
            &v,
            &params(),
            2,
            GroupRect {
                x0: 10,
                y0: 10,
                w: 1,
                h: 1,
            },
        )
        .2;
        let quad = compute_group_decomposed(
            &p,
            &v,
            &params(),
            2,
            GroupRect {
                x0: 10,
                y0: 10,
                w: 2,
                h: 2,
            },
        )
        .2;
        assert!(quad.term_evals < 4 * single.term_evals);
        assert!(quad.p_evals < 4 * single.p_evals);
    }

    #[test]
    fn borders_clip_the_cone() {
        let (p, v) = random_state(10, 10, 5);
        let corner = compute_group_decomposed(
            &p,
            &v,
            &params(),
            2,
            GroupRect {
                x0: 0,
                y0: 0,
                w: 1,
                h: 1,
            },
        )
        .2;
        let interior = compute_group_decomposed(
            &p,
            &v,
            &params(),
            2,
            GroupRect {
                x0: 5,
                y0: 5,
                w: 1,
                h: 1,
            },
        )
        .2;
        assert!(
            corner.p_evals < interior.p_evals,
            "corner cones are smaller"
        );
    }

    #[test]
    #[should_panic(expected = "exceeds the frame")]
    fn out_of_frame_group_rejected() {
        let (p, v) = random_state(8, 8, 6);
        compute_group_decomposed(
            &p,
            &v,
            &params(),
            1,
            GroupRect {
                x0: 6,
                y0: 6,
                w: 4,
                h: 4,
            },
        );
    }
}
