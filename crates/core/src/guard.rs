//! Guarded solver pipeline: input validation, divergence detection, and
//! graceful degradation for the Chambolle/TV-L1 stack.
//!
//! The unguarded solvers ([`crate::solver`], [`crate::tiling`]) assume
//! well-formed inputs and a fault-free substrate; a single NaN or corrupted
//! intermediate silently poisons the whole output. This module adds the
//! error-handling architecture around them:
//!
//! - **Input validation** — [`scrub_non_finite`] repairs NaN/Inf pixels from
//!   their neighborhood; parameter and shape checks return `Result` instead
//!   of panicking.
//! - **Output validation** — [`output_is_valid`] checks finiteness and that
//!   the ROF energy did not increase (the iteration is a descent method, so
//!   an energy increase beyond quantization slack means divergence or
//!   corruption).
//! - **Divergence detection** — [`guarded_denoise_monitored`] watches the
//!   duality-gap history of [`chambolle_denoise_monitored`] and reacts to a
//!   growing or non-finite gap by halving the dual step `τ` (the classic
//!   stability backoff: Chambolle's analysis needs `τ/θ ≤ 1/4`).
//! - **Recovery policy** — [`GuardedDenoiser`] retries a failed backend a
//!   bounded number of times and then falls back to the sequential reference
//!   solver, reporting every action in a structured [`RecoveryReport`].
//!
//! The same report vocabulary is reused by the hardware simulator's
//! fault-injection harness (`chambolle-hwsim`), so a TV-L1 pipeline has one
//! uniform story for "what went wrong and what was done about it" from the
//! BRAM bit level up to the outer optimization loop.

use std::fmt;

use chambolle_imaging::Grid;
use chambolle_telemetry::{names, Telemetry};

use crate::cancel::{CancelToken, Cancelled};
use crate::ctx::ExecCtx;
use crate::diagnostics::{chambolle_denoise_monitored, SolveReport};
use crate::params::{ChambolleParams, InvalidParamsError};
use crate::solver::{chambolle_denoise_with_ctx, rof_energy, SequentialSolver, TvDenoiser};
use crate::tiling::{TileConfig, TiledSolver};

/// One corrective step taken by a guarded solver path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RecoveryAction {
    /// Non-finite input pixels were replaced from their neighborhoods.
    ScrubbedInput {
        /// Number of repaired cells.
        cells: usize,
    },
    /// The primary backend was re-run after an invalid output.
    Retry {
        /// 1-based retry attempt.
        attempt: u32,
    },
    /// One tile of a round was recomputed from the round's intact input.
    TileRecompute {
        /// Iteration round.
        round: u32,
        /// Tile index within the round's plan.
        tile: usize,
    },
    /// An entire round was recomputed (e.g. after repairing a corrupted
    /// functional unit that poisoned every tile).
    RoundRecompute {
        /// Iteration round.
        round: u32,
    },
    /// Corrupted sqrt-LUT tables were rebuilt from the generator.
    LutRepair {
        /// Iteration round.
        round: u32,
        /// Number of tables repaired.
        repairs: u32,
    },
    /// Dual-modular-redundancy disagreement on a tile was arbitrated by
    /// re-execution.
    DatapathArbitration {
        /// Iteration round.
        round: u32,
        /// Tile index within the round's plan.
        tile: usize,
    },
    /// The dual step was halved after divergence was detected.
    StepBackoff {
        /// The reduced `τ` that the retry used.
        tau: f32,
    },
    /// The computation fell back to the sequential reference solver.
    SequentialFallback,
}

impl RecoveryAction {
    /// Stable snake-case identifier of the action kind, used as the suffix
    /// of the per-action telemetry counters
    /// (`guard.action.<metric_suffix>`).
    pub fn metric_suffix(&self) -> &'static str {
        match self {
            RecoveryAction::ScrubbedInput { .. } => "scrubbed_input",
            RecoveryAction::Retry { .. } => "retry",
            RecoveryAction::TileRecompute { .. } => "tile_recompute",
            RecoveryAction::RoundRecompute { .. } => "round_recompute",
            RecoveryAction::LutRepair { .. } => "lut_repair",
            RecoveryAction::DatapathArbitration { .. } => "datapath_arbitration",
            RecoveryAction::StepBackoff { .. } => "step_backoff",
            RecoveryAction::SequentialFallback => "sequential_fallback",
        }
    }
}

impl fmt::Display for RecoveryAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryAction::ScrubbedInput { cells } => {
                write!(f, "scrubbed {cells} non-finite input cells")
            }
            RecoveryAction::Retry { attempt } => write!(f, "retry #{attempt}"),
            RecoveryAction::TileRecompute { round, tile } => {
                write!(f, "recomputed tile {tile} of round {round}")
            }
            RecoveryAction::RoundRecompute { round } => {
                write!(f, "recomputed round {round}")
            }
            RecoveryAction::LutRepair { round, repairs } => {
                write!(f, "repaired {repairs} sqrt LUT(s) in round {round}")
            }
            RecoveryAction::DatapathArbitration { round, tile } => {
                write!(f, "arbitrated DMR mismatch on tile {tile} of round {round}")
            }
            RecoveryAction::StepBackoff { tau } => {
                write!(f, "halved dual step to tau = {tau}")
            }
            RecoveryAction::SequentialFallback => write!(f, "fell back to sequential solver"),
        }
    }
}

/// Structured account of what a guarded solve detected and did.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RecoveryReport {
    /// Number of detected anomalies (invalid outputs, corrupted regions,
    /// diverging gaps, redundancy mismatches).
    pub detections: u32,
    /// Corrective actions, in execution order.
    pub actions: Vec<RecoveryAction>,
    /// True when the result came from a degraded path (the fallback solver)
    /// rather than the primary backend.
    pub degraded: bool,
}

impl RecoveryReport {
    /// True when nothing was detected and nothing had to be done.
    pub fn is_clean(&self) -> bool {
        self.detections == 0 && self.actions.is_empty() && !self.degraded
    }

    /// Number of recorded tile recomputations.
    pub fn tile_recomputes(&self) -> usize {
        self.actions
            .iter()
            .filter(|a| matches!(a, RecoveryAction::TileRecompute { .. }))
            .count()
    }

    /// Folds the report into a telemetry registry: `guard.detections`,
    /// `guard.recoveries` (corrective actions other than the fallback),
    /// `guard.fallbacks`, `guard.degraded`, plus one
    /// `guard.action.<kind>` counter per action
    /// ([`RecoveryAction::metric_suffix`]).
    ///
    /// Reports accumulate — call this once per solve and the registry holds
    /// run totals, the same shape `chambolle-hwsim`'s fault harness feeds.
    pub fn record_telemetry(&self, telemetry: &Telemetry) {
        if !telemetry.is_enabled() {
            return;
        }
        telemetry.counter_add(names::GUARD_DETECTIONS, u64::from(self.detections));
        let fallbacks = self
            .actions
            .iter()
            .filter(|a| matches!(a, RecoveryAction::SequentialFallback))
            .count() as u64;
        telemetry.counter_add(
            names::GUARD_RECOVERIES,
            self.actions.len() as u64 - fallbacks,
        );
        telemetry.counter_add(names::GUARD_FALLBACKS, fallbacks);
        telemetry.counter_add(names::GUARD_DEGRADED, u64::from(self.degraded));
        for action in &self.actions {
            telemetry.counter_add(
                &format!("{}{}", names::GUARD_ACTION_PREFIX, action.metric_suffix()),
                1,
            );
        }
    }
}

impl fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} detection(s), {} action(s){}",
            self.detections,
            self.actions.len(),
            if self.degraded { ", degraded" } else { "" }
        )
    }
}

/// Error returned by the guarded solver paths.
#[derive(Debug, Clone, PartialEq)]
pub enum GuardError {
    /// Parameters failed validation before any compute started.
    InvalidParams(InvalidParamsError),
    /// The input grid has no cells.
    EmptyInput,
    /// Every recovery avenue (retries, step backoff, fallback) was exhausted
    /// without producing a valid output.
    Unrecoverable(RecoveryReport),
    /// The solve was cancelled via a [`CancelToken`]
    /// (see [`guarded_denoise_cancellable`]).
    Cancelled(Cancelled),
}

impl fmt::Display for GuardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GuardError::InvalidParams(e) => write!(f, "{e}"),
            GuardError::EmptyInput => write!(f, "input grid has no cells"),
            GuardError::Unrecoverable(report) => {
                write!(f, "recovery exhausted: {report}")
            }
            GuardError::Cancelled(c) => write!(f, "{c}"),
        }
    }
}

impl std::error::Error for GuardError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GuardError::InvalidParams(e) => Some(e),
            GuardError::Cancelled(c) => Some(c),
            _ => None,
        }
    }
}

impl From<InvalidParamsError> for GuardError {
    fn from(e: InvalidParamsError) -> Self {
        GuardError::InvalidParams(e)
    }
}

/// Retry budget and validation strictness of a guarded path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// How many times a failed stage may be re-attempted before degrading
    /// (falling back or giving up).
    pub max_retries: u32,
    /// Whether output validation includes the energy-descent check in
    /// addition to finiteness.
    pub check_energy: bool,
}

impl Default for RecoveryPolicy {
    /// Two retries, energy checking on.
    fn default() -> Self {
        RecoveryPolicy {
            max_retries: 2,
            check_energy: true,
        }
    }
}

/// Validates the parameter fields a guarded solve cannot work around:
/// positive finite `theta`/`tau` and a nonzero iteration count.
///
/// A too-large step ratio `τ/θ` is deliberately *not* rejected here — that
/// failure mode is observable (the duality gap grows) and recoverable (step
/// backoff), which is exactly what [`guarded_denoise_monitored`] does.
///
/// # Errors
///
/// Returns [`InvalidParamsError`] when a field is non-finite, non-positive,
/// or `iterations == 0`.
pub fn validate_solvable(params: &ChambolleParams) -> Result<(), InvalidParamsError> {
    if !(params.theta.is_finite() && params.theta > 0.0) {
        return Err(InvalidParamsError::new(format!(
            "theta must be positive and finite, got {}",
            params.theta
        )));
    }
    if !(params.tau.is_finite() && params.tau > 0.0) {
        return Err(InvalidParamsError::new(format!(
            "tau must be positive and finite, got {}",
            params.tau
        )));
    }
    if params.iterations == 0 {
        return Err(InvalidParamsError::new(
            "iterations must be at least 1".to_owned(),
        ));
    }
    Ok(())
}

/// Replaces every non-finite cell with the mean of its finite 4-neighbors
/// (or 0 when the whole neighborhood is bad), returning the number of
/// repaired cells.
///
/// Replacement values are read from the *pre-scrub* grid, so the result does
/// not depend on traversal order.
pub fn scrub_non_finite(v: &mut Grid<f32>) -> usize {
    let bad: Vec<(usize, usize)> = v
        .iter()
        .filter(|&(_, _, &val)| !val.is_finite())
        .map(|(x, y, _)| (x, y))
        .collect();
    if bad.is_empty() {
        return 0;
    }
    let (w, h) = v.dims();
    let snapshot = v.clone();
    for &(x, y) in &bad {
        let mut sum = 0.0f64;
        let mut n = 0u32;
        let mut visit = |xx: usize, yy: usize| {
            let val = snapshot[(xx, yy)];
            if val.is_finite() {
                sum += val as f64;
                n += 1;
            }
        };
        if x > 0 {
            visit(x - 1, y);
        }
        if x + 1 < w {
            visit(x + 1, y);
        }
        if y > 0 {
            visit(x, y - 1);
        }
        if y + 1 < h {
            visit(x, y + 1);
        }
        v[(x, y)] = if n > 0 { (sum / n as f64) as f32 } else { 0.0 };
    }
    bad.len()
}

/// Checks a denoised output against its input: every cell finite, and the
/// ROF energy not increased beyond quantization slack.
///
/// The slack admits a fixed-point backend quantizing to 8 fractional bits
/// (one LSB of value error per cell contributes at most ~3 LSB of energy),
/// while still rejecting the orders-of-magnitude energy blow-up of a
/// diverging or corrupted solve.
pub fn output_is_valid(u: &Grid<f32>, v: &Grid<f32>, theta: f32, check_energy: bool) -> bool {
    if u.dims() != v.dims() {
        return false;
    }
    if !u.as_slice().iter().all(|x| x.is_finite()) {
        return false;
    }
    if !check_energy {
        return true;
    }
    let e_u = rof_energy(u, v, theta);
    let e_v = rof_energy(v, v, theta);
    let quant_slack = u.len() as f64 * (3.0 / 256.0);
    e_u.is_finite() && e_u <= e_v + quant_slack
}

/// A [`TvDenoiser`] wrapper adding validation, bounded retries, and fallback
/// to a reference backend.
///
/// `P` is the primary backend (tiled solver, FPGA simulator, ...); `F` is
/// the fallback, by default the [`SequentialSolver`] reference. On every
/// solve the input is scrubbed, the primary output validated, invalid
/// outputs retried up to [`RecoveryPolicy::max_retries`] times, and finally
/// the fallback consulted; the whole history lands in a [`RecoveryReport`].
#[derive(Debug, Clone)]
pub struct GuardedDenoiser<P, F = SequentialSolver> {
    primary: P,
    fallback: F,
    policy: RecoveryPolicy,
}

impl<P: TvDenoiser> GuardedDenoiser<P, SequentialSolver> {
    /// Guards `primary` with the sequential reference as fallback and the
    /// default policy.
    pub fn new(primary: P) -> Self {
        GuardedDenoiser {
            primary,
            fallback: SequentialSolver::new(),
            policy: RecoveryPolicy::default(),
        }
    }
}

impl GuardedDenoiser<TiledSolver, SequentialSolver> {
    /// Guards a tiled solver with the given window configuration — the
    /// tiled→sequential degradation pair of the paper's software stack.
    pub fn tiled(config: TileConfig) -> Self {
        GuardedDenoiser::new(TiledSolver::new(config))
    }
}

impl<P: TvDenoiser, F: TvDenoiser> GuardedDenoiser<P, F> {
    /// Replaces the fallback backend.
    pub fn with_fallback<G: TvDenoiser>(self, fallback: G) -> GuardedDenoiser<P, G> {
        GuardedDenoiser {
            primary: self.primary,
            fallback,
            policy: self.policy,
        }
    }

    /// Replaces the recovery policy.
    pub fn with_policy(mut self, policy: RecoveryPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The active policy.
    pub fn policy(&self) -> &RecoveryPolicy {
        &self.policy
    }

    /// The guarded solve: scrub, run, validate, retry, degrade.
    ///
    /// # Errors
    ///
    /// [`GuardError::InvalidParams`] / [`GuardError::EmptyInput`] for inputs
    /// no backend could serve; [`GuardError::Unrecoverable`] when the
    /// fallback's output is invalid too.
    pub fn denoise_checked(
        &self,
        v: &Grid<f32>,
        params: &ChambolleParams,
    ) -> Result<(Grid<f32>, RecoveryReport), GuardError> {
        validate_solvable(params)?;
        if v.is_empty() {
            return Err(GuardError::EmptyInput);
        }
        let mut report = RecoveryReport::default();
        let mut input = v.clone();
        let scrubbed = scrub_non_finite(&mut input);
        if scrubbed > 0 {
            report.detections += 1;
            report
                .actions
                .push(RecoveryAction::ScrubbedInput { cells: scrubbed });
        }

        for attempt in 0..=self.policy.max_retries {
            if attempt > 0 {
                report.actions.push(RecoveryAction::Retry { attempt });
            }
            let u = self.primary.denoise(&input, params);
            if output_is_valid(&u, &input, params.theta, self.policy.check_energy) {
                return Ok((u, report));
            }
            report.detections += 1;
        }

        report.degraded = true;
        report.actions.push(RecoveryAction::SequentialFallback);
        let u = self.fallback.denoise(&input, params);
        if output_is_valid(&u, &input, params.theta, self.policy.check_energy) {
            Ok((u, report))
        } else {
            report.detections += 1;
            Err(GuardError::Unrecoverable(report))
        }
    }
}

impl<P: TvDenoiser, F: TvDenoiser> TvDenoiser for GuardedDenoiser<P, F> {
    /// Infallible trait form of [`GuardedDenoiser::denoise_checked`]: when
    /// even the fallback fails validation the scrubbed input is returned
    /// unchanged — the identity denoiser is the safest degraded output, and
    /// it keeps an outer TV-L1 loop numerically alive.
    fn denoise(&self, v: &Grid<f32>, params: &ChambolleParams) -> Grid<f32> {
        match self.denoise_checked(v, params) {
            Ok((u, _)) => u,
            Err(_) => {
                let mut input = v.clone();
                scrub_non_finite(&mut input);
                input
            }
        }
    }

    fn name(&self) -> &str {
        "guarded"
    }
}

/// The guarded solve of [`GuardedDenoiser::denoise_checked`] in cancellable
/// form: scrub, run the cancellable sequential solver, validate, retry, and
/// finally give up — with a cooperative cancellation poll between every
/// Chambolle iteration.
///
/// This is the path a request service routes denoise work through: faults
/// degrade per-request (structured [`GuardError`], never a panic), and a
/// deadline or explicit cancellation aborts the solve at the next iteration
/// boundary without poisoning any shared state. With an uncancelled token
/// the output is bit-identical to
/// `GuardedDenoiser::new(SequentialSolver::new())`.
///
/// # Errors
///
/// [`GuardError::Cancelled`] when `token` fires mid-solve;
/// [`GuardError::InvalidParams`] / [`GuardError::EmptyInput`] for inputs no
/// backend could serve; [`GuardError::Unrecoverable`] when retries are
/// exhausted.
#[deprecated(note = "use `guarded_denoise_with_ctx` with \
            `ExecCtx::default().with_cancel(token.clone())`")]
pub fn guarded_denoise_cancellable(
    v: &Grid<f32>,
    params: &ChambolleParams,
    policy: &RecoveryPolicy,
    token: &CancelToken,
) -> Result<(Grid<f32>, RecoveryReport), GuardError> {
    let ctx = ExecCtx::default().with_cancel(token.clone());
    guarded_denoise_with_ctx(v, params, policy, &ctx)
}

/// The guarded solve under an [`ExecCtx`]: scrub, run the context-driven
/// solver ([`chambolle_denoise_with_ctx`] — pool, telemetry, cancellation
/// and kernel backend all honored), validate, retry, and finally give up.
///
/// With an inert context the output is bit-identical to
/// `GuardedDenoiser::new(SequentialSolver::new())`; with a pool or a
/// non-scalar backend it still is, because the banded solver and every
/// kernel backend are bit-identical to the sequential reference.
///
/// # Errors
///
/// [`GuardError::Cancelled`] when the context's token fires mid-solve;
/// [`GuardError::InvalidParams`] / [`GuardError::EmptyInput`] for inputs no
/// backend could serve; [`GuardError::Unrecoverable`] when retries are
/// exhausted.
pub fn guarded_denoise_with_ctx(
    v: &Grid<f32>,
    params: &ChambolleParams,
    policy: &RecoveryPolicy,
    ctx: &ExecCtx,
) -> Result<(Grid<f32>, RecoveryReport), GuardError> {
    validate_solvable(params)?;
    if v.is_empty() {
        return Err(GuardError::EmptyInput);
    }
    let mut report = RecoveryReport::default();
    let mut input = v.clone();
    let scrubbed = scrub_non_finite(&mut input);
    if scrubbed > 0 {
        report.detections += 1;
        report
            .actions
            .push(RecoveryAction::ScrubbedInput { cells: scrubbed });
    }

    for attempt in 0..=policy.max_retries {
        if attempt > 0 {
            report.actions.push(RecoveryAction::Retry { attempt });
        }
        let (u, _) =
            chambolle_denoise_with_ctx(&input, params, ctx).map_err(GuardError::Cancelled)?;
        if output_is_valid(&u, &input, params.theta, policy.check_energy) {
            return Ok((u, report));
        }
        report.detections += 1;
    }
    report.degraded = true;
    Err(GuardError::Unrecoverable(report))
}

/// Divergence-aware monitored solve: runs [`chambolle_denoise_monitored`],
/// inspects the duality-gap history, and on divergence (non-finite or
/// growing gap) halves `τ` and retries, up to `policy.max_retries` times.
///
/// A step ratio `τ/θ` beyond Chambolle's `1/4` stability bound is the
/// canonical way to end up here; each halving moves the ratio back toward
/// the stable region, trading speed for a convergent solve.
///
/// # Errors
///
/// [`GuardError::InvalidParams`] for unsolvable parameters (see
/// [`validate_solvable`]) or `check_every == 0`;
/// [`GuardError::Unrecoverable`] when the solve still diverges after all
/// backoffs.
pub fn guarded_denoise_monitored(
    v: &Grid<f32>,
    params: &ChambolleParams,
    check_every: u32,
    gap_tolerance: f64,
    policy: &RecoveryPolicy,
) -> Result<(SolveReport<f32>, RecoveryReport), GuardError> {
    validate_solvable(params)?;
    if check_every == 0 {
        return Err(GuardError::InvalidParams(InvalidParamsError::new(
            "check interval must be positive".to_owned(),
        )));
    }
    if v.is_empty() {
        return Err(GuardError::EmptyInput);
    }
    let mut report = RecoveryReport::default();
    let mut input = v.clone();
    let scrubbed = scrub_non_finite(&mut input);
    if scrubbed > 0 {
        report.detections += 1;
        report
            .actions
            .push(RecoveryAction::ScrubbedInput { cells: scrubbed });
    }

    let mut tau = params.tau;
    for _ in 0..=policy.max_retries {
        let attempt_params = ChambolleParams {
            theta: params.theta,
            tau,
            iterations: params.iterations,
        };
        let solve =
            chambolle_denoise_monitored(&input, &attempt_params, check_every, gap_tolerance);
        if !solve_diverged(&solve) {
            return Ok((solve, report));
        }
        report.detections += 1;
        tau *= 0.5;
        report.actions.push(RecoveryAction::StepBackoff { tau });
        report.degraded = true;
    }
    Err(GuardError::Unrecoverable(report))
}

/// Divergence test over a monitored solve: any non-finite energy/gap sample,
/// a non-finite output, or a duality gap that fails to decay.
///
/// Chambolle's update is self-normalizing (`|p| ≤ 1` always), so an unstable
/// step never produces infinities — it *oscillates*, which shows up as a gap
/// that stays flat (hundreds) instead of decaying O(1/k). A last checkpoint
/// still at ≥ 3/4 of the first, above the numerical floor, is that
/// signature; detection therefore needs at least two checkpoints.
fn solve_diverged(solve: &SolveReport<f32>) -> bool {
    if !solve.u.as_slice().iter().all(|x| x.is_finite()) {
        return true;
    }
    if solve
        .history
        .iter()
        .any(|pt| !pt.gap.is_finite() || !pt.energy.is_finite())
    {
        return true;
    }
    let gaps: Vec<f64> = solve.history.iter().map(|pt| pt.gap).collect();
    if gaps.len() < 2 {
        return false;
    }
    let floor = 1e-9 * solve.u.len() as f64;
    let (first, last) = (gaps[0], *gaps.last().unwrap());
    last > floor && last > 0.75 * first
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::chambolle_denoise;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn noisy(w: usize, h: usize, seed: u64) -> Grid<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        Grid::from_fn(w, h, |x, _| {
            (if x < w / 2 { 0.2f32 } else { 0.8 }) + rng.gen_range(-0.1..0.1)
        })
    }

    fn params(iters: u32) -> ChambolleParams {
        ChambolleParams::paper(iters)
    }

    /// The token-driven guarded solve, spelled through the canonical
    /// context API (the shape `guarded_denoise_cancellable` callers
    /// migrate to).
    fn guarded_with_token(
        v: &Grid<f32>,
        params: &ChambolleParams,
        policy: &RecoveryPolicy,
        token: &CancelToken,
    ) -> Result<(Grid<f32>, RecoveryReport), GuardError> {
        let ctx = ExecCtx::default().with_cancel(token.clone());
        guarded_denoise_with_ctx(v, params, policy, &ctx)
    }

    #[test]
    fn report_telemetry_counts_actions_by_kind() {
        let mut report = RecoveryReport {
            detections: 3,
            ..Default::default()
        };
        report
            .actions
            .push(RecoveryAction::ScrubbedInput { cells: 2 });
        report.actions.push(RecoveryAction::Retry { attempt: 1 });
        report
            .actions
            .push(RecoveryAction::TileRecompute { round: 0, tile: 4 });
        report.actions.push(RecoveryAction::SequentialFallback);
        report.degraded = true;
        let tele = Telemetry::null();
        report.record_telemetry(&tele);
        let snap = tele.snapshot();
        assert_eq!(snap.counter(names::GUARD_DETECTIONS), Some(3));
        assert_eq!(snap.counter(names::GUARD_RECOVERIES), Some(3));
        assert_eq!(snap.counter(names::GUARD_FALLBACKS), Some(1));
        assert_eq!(snap.counter(names::GUARD_DEGRADED), Some(1));
        assert_eq!(snap.counter("guard.action.retry"), Some(1));
        assert_eq!(snap.counter("guard.action.sequential_fallback"), Some(1));
        // Disabled handles record nothing.
        let off = Telemetry::disabled();
        report.record_telemetry(&off);
        assert!(off.snapshot().is_empty());
    }

    #[test]
    fn scrub_repairs_from_neighbors() {
        let mut v = Grid::new(3, 3, 0.5f32);
        v[(1, 1)] = f32::NAN;
        v[(0, 0)] = f32::INFINITY;
        assert_eq!(scrub_non_finite(&mut v), 2);
        assert_eq!(v[(1, 1)], 0.5);
        assert_eq!(v[(0, 0)], 0.5);
        assert!(v.as_slice().iter().all(|x| x.is_finite()));
    }

    #[test]
    fn scrub_is_order_independent_and_zeroes_isolated_cells() {
        let mut v = Grid::new(1, 1, f32::NAN);
        assert_eq!(scrub_non_finite(&mut v), 1);
        assert_eq!(v[(0, 0)], 0.0);
        // A fully poisoned grid scrubs to zeros (neighbors read pre-scrub).
        let mut all_bad = Grid::new(4, 4, f32::NAN);
        assert_eq!(scrub_non_finite(&mut all_bad), 16);
        assert!(all_bad.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn scrub_leaves_clean_grids_untouched() {
        let v0 = noisy(8, 6, 1);
        let mut v = v0.clone();
        assert_eq!(scrub_non_finite(&mut v), 0);
        assert_eq!(v.as_slice(), v0.as_slice());
    }

    #[test]
    fn clean_solve_has_clean_report() {
        let v = noisy(20, 16, 2);
        let guard = GuardedDenoiser::tiled(TileConfig::new(12, 10, 2, 2).unwrap());
        let (u, report) = guard.denoise_checked(&v, &params(15)).unwrap();
        assert!(report.is_clean());
        // Same result as the unguarded tiled solver (no behavioral change).
        let plain =
            TiledSolver::new(TileConfig::new(12, 10, 2, 2).unwrap()).denoise(&v, &params(15));
        assert_eq!(u.as_slice(), plain.as_slice());
    }

    #[test]
    fn nan_input_is_scrubbed_and_solved() {
        let mut v = noisy(16, 12, 3);
        v[(5, 5)] = f32::NAN;
        v[(10, 2)] = f32::NEG_INFINITY;
        let guard = GuardedDenoiser::new(SequentialSolver::new());
        let (u, report) = guard.denoise_checked(&v, &params(10)).unwrap();
        assert!(u.as_slice().iter().all(|x| x.is_finite()));
        assert_eq!(report.detections, 1);
        assert_eq!(
            report.actions,
            vec![RecoveryAction::ScrubbedInput { cells: 2 }]
        );
        assert!(!report.degraded);
    }

    #[test]
    fn invalid_params_rejected_up_front() {
        let v = noisy(8, 8, 4);
        let guard = GuardedDenoiser::new(SequentialSolver::new());
        let mut p = params(10);
        p.theta = f32::NAN;
        assert!(matches!(
            guard.denoise_checked(&v, &p),
            Err(GuardError::InvalidParams(_))
        ));
        p = params(10);
        p.iterations = 0;
        assert!(matches!(
            guard.denoise_checked(&v, &p),
            Err(GuardError::InvalidParams(_))
        ));
    }

    /// A backend that emits garbage a configurable number of times before
    /// recovering — models a transient hardware fault.
    struct Flaky {
        bad_runs: std::sync::Mutex<u32>,
    }

    impl TvDenoiser for Flaky {
        fn denoise(&self, v: &Grid<f32>, params: &ChambolleParams) -> Grid<f32> {
            let mut left = self.bad_runs.lock().unwrap();
            if *left > 0 {
                *left -= 1;
                Grid::new(v.width(), v.height(), f32::NAN)
            } else {
                chambolle_denoise(v, params).0
            }
        }
    }

    #[test]
    fn transient_backend_fault_is_retried() {
        let v = noisy(12, 10, 5);
        let guard = GuardedDenoiser::new(Flaky {
            bad_runs: std::sync::Mutex::new(1),
        });
        let (u, report) = guard.denoise_checked(&v, &params(12)).unwrap();
        assert_eq!(report.detections, 1);
        assert_eq!(report.actions, vec![RecoveryAction::Retry { attempt: 1 }]);
        assert!(!report.degraded);
        let (reference, _) = chambolle_denoise(&v, &params(12));
        assert_eq!(u.as_slice(), reference.as_slice());
    }

    #[test]
    fn persistent_backend_fault_falls_back_to_sequential() {
        let v = noisy(12, 10, 6);
        let guard = GuardedDenoiser::new(Flaky {
            bad_runs: std::sync::Mutex::new(u32::MAX),
        });
        let (u, report) = guard.denoise_checked(&v, &params(12)).unwrap();
        assert!(report.degraded);
        assert_eq!(
            report.actions.last(),
            Some(&RecoveryAction::SequentialFallback)
        );
        let (reference, _) = chambolle_denoise(&v, &params(12));
        assert_eq!(u.as_slice(), reference.as_slice());
    }

    #[test]
    fn trait_denoise_never_panics_or_poisons() {
        let mut v = noisy(10, 8, 7);
        v[(0, 0)] = f32::NAN;
        let guard = GuardedDenoiser::tiled(TileConfig::new(8, 8, 1, 1).unwrap());
        let u = guard.denoise(&v, &params(8));
        assert!(u.as_slice().iter().all(|x| x.is_finite()));
        assert_eq!(guard.name(), "guarded");
    }

    #[test]
    fn monitored_guard_accepts_stable_params() {
        let v = noisy(16, 12, 8);
        let (solve, report) =
            guarded_denoise_monitored(&v, &params(60), 20, 0.0, &RecoveryPolicy::default())
                .unwrap();
        assert!(report.is_clean());
        assert_eq!(solve.iterations_run, 60);
    }

    #[test]
    fn monitored_guard_backs_off_unstable_step() {
        let v = noisy(16, 12, 9);
        // τ/θ = 2: far beyond the 1/4 stability bound; the plain solve
        // diverges, the guard must halve τ until it converges.
        let unstable = ChambolleParams {
            theta: 0.25,
            tau: 0.5,
            iterations: 80,
        };
        let policy = RecoveryPolicy {
            max_retries: 6,
            check_energy: true,
        };
        let (solve, report) = guarded_denoise_monitored(&v, &unstable, 20, 0.0, &policy).unwrap();
        assert!(report.degraded);
        assert!(report.detections >= 1);
        assert!(report
            .actions
            .iter()
            .any(|a| matches!(a, RecoveryAction::StepBackoff { .. })));
        assert!(solve.final_gap().is_finite());
        // The recovered run descends: final energy below the start.
        let e0 = rof_energy(&v, &v, 0.25);
        assert!(solve.history.last().unwrap().energy < e0);
    }

    #[test]
    fn monitored_guard_gives_up_with_zero_retries() {
        let v = noisy(12, 10, 10);
        let unstable = ChambolleParams {
            theta: 0.25,
            tau: 8.0,
            iterations: 60,
        };
        let policy = RecoveryPolicy {
            max_retries: 0,
            check_energy: true,
        };
        let err = guarded_denoise_monitored(&v, &unstable, 20, 0.0, &policy).unwrap_err();
        match err {
            GuardError::Unrecoverable(report) => {
                assert!(report.detections >= 1);
            }
            other => panic!("expected Unrecoverable, got {other:?}"),
        }
    }

    #[test]
    fn report_display_and_helpers() {
        let mut report = RecoveryReport::default();
        assert!(report.is_clean());
        report.detections = 2;
        report
            .actions
            .push(RecoveryAction::TileRecompute { round: 1, tile: 3 });
        report.actions.push(RecoveryAction::SequentialFallback);
        report.degraded = true;
        assert_eq!(report.tile_recomputes(), 1);
        let text = report.to_string();
        assert!(text.contains("2 detection"));
        assert!(text.contains("degraded"));
        for action in &report.actions {
            assert!(!action.to_string().is_empty());
        }
    }

    #[test]
    fn cancellable_guard_matches_guarded_denoiser_bit_for_bit() {
        use crate::cancel::{CancelReason, CancelToken};
        let mut v = noisy(16, 12, 12);
        v[(3, 3)] = f32::NAN; // exercise the scrub path too
        let policy = RecoveryPolicy::default();
        let guard = GuardedDenoiser::new(SequentialSolver::new()).with_policy(policy);
        let (u_ref, rep_ref) = guard.denoise_checked(&v, &params(15)).unwrap();
        let (u_canc, rep_canc) =
            guarded_with_token(&v, &params(15), &policy, &CancelToken::new()).unwrap();
        assert_eq!(u_ref.as_slice(), u_canc.as_slice());
        assert_eq!(rep_ref.actions, rep_canc.actions);

        // Cancellation surfaces as a structured GuardError with a source.
        let token = CancelToken::new();
        token.cancel();
        let err = guarded_with_token(&v, &params(15), &policy, &token).unwrap_err();
        match err {
            GuardError::Cancelled(c) => assert_eq!(c.reason, CancelReason::Explicit),
            other => panic!("expected Cancelled, got {other:?}"),
        }
        // Validation errors still win over cancellation checks.
        let mut bad = params(10);
        bad.iterations = 0;
        assert!(matches!(
            guarded_with_token(&v, &bad, &policy, &token),
            Err(GuardError::InvalidParams(_))
        ));
    }

    #[test]
    fn output_validation_rejects_blowups() {
        let v = noisy(10, 8, 11);
        let (u, _) = chambolle_denoise(&v, &params(20));
        assert!(output_is_valid(&u, &v, 0.25, true));
        let blown = u.map(|&x| x * 1e6);
        assert!(!output_is_valid(&blown, &v, 0.25, true));
        let poisoned = u.map(|&x| if x > 0.5 { f32::NAN } else { x });
        assert!(!output_is_valid(&poisoned, &v, 0.25, false));
        assert!(!output_is_valid(&Grid::new(3, 3, 0.0f32), &v, 0.25, false));
    }

    #[test]
    fn past_deadline_cancels_before_the_first_iteration_boundary() {
        use crate::cancel::{CancelReason, CancelToken};
        use std::time::{Duration, Instant};
        let v = noisy(16, 12, 31);
        let policy = RecoveryPolicy::default();
        // Zero and past deadlines both fail the pre-iteration poll: the
        // guard never reaches a single Chambolle iteration (an enormous
        // iteration count would hang the test if it did).
        for token in [
            CancelToken::with_timeout(Duration::ZERO),
            CancelToken::with_deadline(Instant::now() - Duration::from_secs(5)),
        ] {
            let started = Instant::now();
            let err = guarded_with_token(&v, &params(2_000_000), &policy, &token).unwrap_err();
            match err {
                GuardError::Cancelled(c) => {
                    assert_eq!(c.reason, CancelReason::DeadlineExceeded);
                }
                other => panic!("expected Cancelled, got {other:?}"),
            }
            assert!(
                started.elapsed() < Duration::from_secs(2),
                "an expired deadline must abort without iterating"
            );
        }
    }

    #[test]
    fn token_reuse_across_solves_is_sound() {
        use crate::cancel::{CancelReason, CancelToken};
        let v = noisy(14, 10, 32);
        let policy = RecoveryPolicy::default();
        // A live token is reusable across successive solves, each
        // bit-identical to the token-free reference.
        let token = CancelToken::new();
        let (u_ref, _) = guarded_with_token(&v, &params(12), &policy, &CancelToken::new()).unwrap();
        for _ in 0..2 {
            let (u, _) = guarded_with_token(&v, &params(12), &policy, &token).unwrap();
            assert_eq!(u.as_slice(), u_ref.as_slice());
        }
        // Once cancelled, the same token poisons every later solve
        // immediately (tokens are monotonic): reuse-after-cancel is an
        // error, not a silent recompute.
        token.cancel();
        for _ in 0..2 {
            match guarded_with_token(&v, &params(12), &policy, &token).unwrap_err() {
                GuardError::Cancelled(c) => assert_eq!(c.reason, CancelReason::Explicit),
                other => panic!("expected Cancelled, got {other:?}"),
            }
        }
    }

    #[test]
    fn degraded_context_caps_iterations_through_the_guard() {
        use crate::ctx::{DegradationPolicy, ExecCtx};
        let v = noisy(16, 12, 33);
        let policy = RecoveryPolicy::default();
        // The brownout tier through the guarded path must equal a plain
        // solve at the capped iteration count — degradation only shortens
        // the schedule, it never changes the algorithm.
        let degraded_ctx = ExecCtx::default().with_degradation(DegradationPolicy::cap(8));
        let (u_deg, _) = guarded_denoise_with_ctx(&v, &params(40), &policy, &degraded_ctx).unwrap();
        let (u_short, _) =
            guarded_denoise_with_ctx(&v, &params(8), &policy, &ExecCtx::default()).unwrap();
        assert_eq!(u_deg.as_slice(), u_short.as_slice());
        // A cap above the request is inert.
        let wide_ctx = ExecCtx::default().with_degradation(DegradationPolicy::cap(500));
        let (u_full, _) = guarded_denoise_with_ctx(&v, &params(40), &policy, &wide_ctx).unwrap();
        let (u_ref, _) =
            guarded_denoise_with_ctx(&v, &params(40), &policy, &ExecCtx::default()).unwrap();
        assert_eq!(u_full.as_slice(), u_ref.as_slice());
    }
}
