//! The TV-L1 optical-flow outer loop (Zach et al. 2007; the paper's
//! references \[11\] and \[13\]) around a pluggable Chambolle inner solver.
//!
//! Coarse-to-fine over a Gaussian pyramid; at each level the data term is
//! re-linearized (`warps` times) around the current flow, a pointwise
//! *thresholding step* produces the auxiliary field `v`, and the coupled TV
//! term is solved per component by the Chambolle algorithm — the part the
//! paper accelerates and which dominates the runtime (the profiling claim of
//! its introduction is reproduced by [`FlowStats::chambolle_fraction`]).

use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

use chambolle_imaging::{upsample_flow_component, FlowField, Image, Pyramid, WarpLinearization};
use chambolle_par::ThreadPool;

use crate::cancel::{CancelToken, Cancelled};
use crate::ctx::ExecCtx;
use crate::params::TvL1Params;
use crate::solver::{SequentialSolver, TvDenoiser};

/// TV-L1 optical-flow solver with a pluggable Chambolle backend.
///
/// # Examples
///
/// ```
/// use chambolle_core::{TvL1Params, TvL1Solver};
/// use chambolle_imaging::{render_pair, Motion, NoiseTexture};
///
/// let scene = NoiseTexture::new(1);
/// let pair = render_pair(&scene, 64, 48, Motion::Translation { du: 1.0, dv: 0.0 });
/// let solver = TvL1Solver::sequential(TvL1Params::default());
/// let (flow, stats) = solver.flow(&pair.i0, &pair.i1)?;
/// assert_eq!(flow.dims(), (64, 48));
/// assert!(stats.chambolle_fraction() > 0.0);
/// # Ok::<(), chambolle_core::FlowError>(())
/// ```
pub struct TvL1Solver<D> {
    params: TvL1Params,
    inner: D,
    pool: Option<Arc<ThreadPool>>,
}

impl TvL1Solver<SequentialSolver> {
    /// A solver using the sequential Algorithm-1 backend.
    pub fn sequential(params: TvL1Params) -> Self {
        TvL1Solver {
            params,
            inner: SequentialSolver::new(),
            pool: None,
        }
    }
}

impl<D: TvDenoiser> TvL1Solver<D> {
    /// Creates a solver around an arbitrary Chambolle backend (sequential,
    /// tiled, or the FPGA cycle simulator).
    pub fn with_backend(params: TvL1Params, inner: D) -> Self {
        TvL1Solver {
            params,
            inner,
            pool: None,
        }
    }

    /// Routes the pyramid construction and per-warp linearization of the
    /// outer loop through `pool`.
    ///
    /// The pooled image operations are bit-identical to their sequential
    /// counterparts, so this changes only wall time, never the flow. Pass
    /// the same shared pool to a pool-aware backend (e.g.
    /// [`ParallelSolver::with_pool`](crate::solver::ParallelSolver::with_pool))
    /// to run the whole pipeline on one set of workers.
    pub fn with_pool(mut self, pool: Arc<ThreadPool>) -> Self {
        self.pool = Some(pool);
        self
    }

    /// The worker pool used for the outer-loop image operations, if any.
    pub fn pool(&self) -> Option<&Arc<ThreadPool>> {
        self.pool.as_ref()
    }

    /// The outer-loop parameters.
    pub fn params(&self) -> &TvL1Params {
        &self.params
    }

    /// The inner Chambolle backend.
    pub fn backend(&self) -> &D {
        &self.inner
    }

    /// Estimates the optical flow from `i0` to `i1`.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError`] if the frames are empty or differ in size.
    pub fn flow(&self, i0: &Image, i1: &Image) -> Result<(FlowField, FlowStats), FlowError> {
        self.flow_with_init(i0, i1, None)
    }

    /// Like [`TvL1Solver::flow`], but warm-started from a prior estimate
    /// (typically the previous frame pair's flow in a video) — the prior is
    /// resampled to the coarsest pyramid level and refined from there.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError`] if the frames are empty, differ in size, or
    /// the prior's dimensions do not match the frames.
    pub fn flow_with_init(
        &self,
        i0: &Image,
        i1: &Image,
        init: Option<&FlowField>,
    ) -> Result<(FlowField, FlowStats), FlowError> {
        self.flow_with_ctx(i0, i1, init, &self.base_ctx())
    }

    /// [`TvL1Solver::flow_with_init`] with a cooperative cancellation poll
    /// at every outer-iteration boundary (so also between warps and between
    /// pyramid levels).
    ///
    /// Bit-identical to the uncancellable path when it runs to completion.
    /// On cancellation the partial flow is discarded, nothing observable is
    /// mutated, and any attached pool is left fully reusable — the next
    /// solve on the same solver produces bit-identical output to a fresh
    /// one.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Cancelled`] if `token` fires mid-solve, plus
    /// the usual input-validation errors.
    pub fn flow_cancellable(
        &self,
        i0: &Image,
        i1: &Image,
        init: Option<&FlowField>,
        token: &CancelToken,
    ) -> Result<(FlowField, FlowStats), FlowError> {
        self.flow_with_ctx(i0, i1, init, &self.base_ctx().with_cancel(token.clone()))
    }

    /// The context the legacy entry points build from the solver's own
    /// configuration: the attached pool (if any) and nothing else.
    fn base_ctx(&self) -> ExecCtx {
        match &self.pool {
            Some(pool) => ExecCtx::default().with_pool(Arc::clone(pool)),
            None => ExecCtx::default(),
        }
    }

    /// The consolidated flow entry point: one [`ExecCtx`] carries the pool,
    /// telemetry, cancellation token and kernel backend for the whole outer
    /// loop.
    ///
    /// The context's pool (or, when it has none, the solver's attached pool)
    /// drives the pyramid construction and per-warp linearization; its
    /// backend selects the SIMD level of those pooled image kernels; its
    /// token is polled at every outer-iteration boundary; and the solve is
    /// wrapped in a `tvl1.flow` telemetry span. All of these are
    /// bit-identical knobs — the flow matches the plain sequential path
    /// exactly for any context.
    ///
    /// The *inner* Chambolle backend stays the one this solver was built
    /// with ([`TvL1Solver::with_backend`]); pass a pool-aware backend (e.g.
    /// [`ParallelSolver`](crate::solver::ParallelSolver)) sharing the same
    /// pool to run the whole pipeline on one set of workers.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Cancelled`] if the context's token fires
    /// mid-solve, plus the usual input-validation errors.
    pub fn flow_with_ctx(
        &self,
        i0: &Image,
        i1: &Image,
        init: Option<&FlowField>,
        ctx: &ExecCtx,
    ) -> Result<(FlowField, FlowStats), FlowError> {
        if i0.dims() != i1.dims() {
            return Err(FlowError::DimensionMismatch {
                first: i0.dims(),
                second: i1.dims(),
            });
        }
        if i0.is_empty() {
            return Err(FlowError::EmptyInput);
        }
        if let Some(prior) = init {
            if prior.dims() != i0.dims() {
                return Err(FlowError::DimensionMismatch {
                    first: i0.dims(),
                    second: prior.dims(),
                });
            }
        }

        let _span = ctx.telemetry().span("tvl1.flow");
        let start = Instant::now();
        let mut chambolle_time = Duration::ZERO;
        let mut chambolle_calls = 0u32;

        let pool = ctx.pool().or(self.pool.as_ref());
        let simd = ctx.backend().simd_level();
        let build = |img: &Image| match pool {
            Some(pool) => Pyramid::build_scaled_with_pool(
                img,
                self.params.pyramid_levels,
                self.params.scale_factor,
                pool,
                simd,
            ),
            None => {
                Pyramid::build_scaled(img, self.params.pyramid_levels, self.params.scale_factor)
            }
        };
        let pyr0 = build(i0);
        let pyr1 = build(i1);
        let levels = pyr0.len().min(pyr1.len());

        let coarsest = &pyr0.levels()[levels - 1];
        let mut u = match init {
            Some(prior) => FlowField::from_components(
                upsample_flow_component(&prior.u1, coarsest.width(), coarsest.height()),
                upsample_flow_component(&prior.u2, coarsest.width(), coarsest.height()),
            ),
            None => FlowField::zeros(coarsest.width(), coarsest.height()),
        };

        for level in (0..levels).rev() {
            let l0 = &pyr0.levels()[level];
            let l1 = &pyr1.levels()[level];
            if u.dims() != l0.dims() {
                u = FlowField::from_components(
                    upsample_flow_component(&u.u1, l0.width(), l0.height()),
                    upsample_flow_component(&u.u2, l0.width(), l0.height()),
                );
            }
            for _ in 0..self.params.warps {
                let lin = match pool {
                    Some(pool) => WarpLinearization::new_with_pool(l0, l1, &u, pool, simd),
                    None => WarpLinearization::new(l0, l1, &u),
                };
                for _ in 0..self.params.outer_iterations {
                    ctx.checkpoint().map_err(FlowError::Cancelled)?;
                    let v = threshold_step(&lin, &u, self.params.lambda, self.params.inner.theta);
                    let t0 = Instant::now();
                    let u1 = self.inner.denoise_with_ctx(&v.u1, &self.params.inner, ctx);
                    let u2 = self.inner.denoise_with_ctx(&v.u2, &self.params.inner, ctx);
                    chambolle_time += t0.elapsed();
                    chambolle_calls += 2;
                    u = FlowField::from_components(u1, u2);
                }
                if self.params.median_filter {
                    u = FlowField::from_components(
                        chambolle_imaging::median3x3(&u.u1),
                        chambolle_imaging::median3x3(&u.u2),
                    );
                }
            }
        }

        Ok((
            u,
            FlowStats {
                total_time: start.elapsed(),
                chambolle_time,
                chambolle_calls,
                levels,
                warps: self.params.warps,
            },
        ))
    }
}

impl<D: fmt::Debug> fmt::Debug for TvL1Solver<D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TvL1Solver")
            .field("params", &self.params)
            .field("inner", &self.inner)
            .field("pool", &self.pool)
            .finish()
    }
}

/// Tracks flow across a video: each new frame pair is warm-started from the
/// previous pair's flow, which pays off whenever the motion is temporally
/// coherent (the motion-estimation use case of the paper's introduction).
///
/// # Examples
///
/// ```
/// use chambolle_core::{TvL1Params, TvL1Solver, VideoFlowTracker};
/// use chambolle_imaging::{render_sequence, Motion, NoiseTexture};
///
/// let frames = render_sequence(
///     &NoiseTexture::new(1), 48, 40, Motion::Translation { du: 1.0, dv: 0.0 }, 3,
/// );
/// let mut tracker = VideoFlowTracker::new(TvL1Solver::sequential(TvL1Params::default()));
/// let f01 = tracker.next_flow(&frames[0], &frames[1])?;
/// let f12 = tracker.next_flow(&frames[1], &frames[2])?; // warm-started from f01
/// assert_eq!(f01.dims(), f12.dims());
/// # Ok::<(), chambolle_core::FlowError>(())
/// ```
#[derive(Debug)]
pub struct VideoFlowTracker<D> {
    solver: TvL1Solver<D>,
    previous: Option<FlowField>,
}

impl<D: TvDenoiser> VideoFlowTracker<D> {
    /// Creates a tracker around a configured solver.
    pub fn new(solver: TvL1Solver<D>) -> Self {
        VideoFlowTracker {
            solver,
            previous: None,
        }
    }

    /// Estimates the flow for the next consecutive frame pair, warm-started
    /// from the previous pair's result (if any and if the size matches).
    ///
    /// # Errors
    ///
    /// Returns [`FlowError`] for invalid frames.
    pub fn next_flow(&mut self, i0: &Image, i1: &Image) -> Result<FlowField, FlowError> {
        let init = self
            .previous
            .as_ref()
            .filter(|prev| prev.dims() == i0.dims());
        let (flow, _) = self.solver.flow_with_init(i0, i1, init)?;
        self.previous = Some(flow.clone());
        Ok(flow)
    }

    /// The most recent flow, if a pair has been processed.
    pub fn last_flow(&self) -> Option<&FlowField> {
        self.previous.as_ref()
    }

    /// Forgets the temporal state (e.g. at a scene cut).
    pub fn reset(&mut self) {
        self.previous = None;
    }
}

/// The pointwise TV-L1 thresholding step: given the linearized residual
/// `rho(u)` and the gradient `g = ∇I1w`, the auxiliary field is
///
/// ```text
/// v = u + ⎧  λθ·g            if rho(u) < −λθ·|g|²
///         ⎨ −λθ·g            if rho(u) >  λθ·|g|²
///         ⎩ −rho(u)·g/|g|²   otherwise
/// ```
///
/// (Zach et al. 2007, eq. 15 — the paper's "support variable v ... defined
/// using a thresholding function".)
pub fn threshold_step(
    lin: &WarpLinearization,
    u: &FlowField,
    lambda: f32,
    theta: f32,
) -> FlowField {
    let lt = lambda * theta;
    // Gradients numerically this small carry no data information; leave v=u.
    const GRAD_FLOOR: f32 = 1e-9;
    FlowField::from_fn(u.width(), u.height(), |x, y| {
        let (u1, u2) = u.at(x, y);
        let rho = lin.rho(x, y, u1, u2);
        let g2 = lin.grad_sq(x, y);
        let gx = lin.gx[(x, y)];
        let gy = lin.gy[(x, y)];
        let (d1, d2) = if rho < -lt * g2 {
            (lt * gx, lt * gy)
        } else if rho > lt * g2 {
            (-lt * gx, -lt * gy)
        } else if g2 > GRAD_FLOOR {
            (-rho * gx / g2, -rho * gy / g2)
        } else {
            (0.0, 0.0)
        };
        (u1 + d1, u2 + d2)
    })
}

/// Wall-time accounting of one flow estimation — reproduces the paper's
/// profiling claim that "approximately 90% of the execution time is spent on
/// the Chambolle iterative technique".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowStats {
    /// Total wall time of the flow estimation.
    pub total_time: Duration,
    /// Wall time inside the Chambolle inner solves.
    pub chambolle_time: Duration,
    /// Number of inner solves (2 per warp: one per flow component).
    pub chambolle_calls: u32,
    /// Pyramid levels actually used.
    pub levels: usize,
    /// Warps per level.
    pub warps: u32,
}

impl FlowStats {
    /// Fraction of the total time spent in the Chambolle inner solver.
    pub fn chambolle_fraction(&self) -> f64 {
        if self.total_time.is_zero() {
            return 0.0;
        }
        self.chambolle_time.as_secs_f64() / self.total_time.as_secs_f64()
    }
}

impl fmt::Display for FlowStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.1} ms total, {:.1} ms ({:.0}%) in Chambolle over {} solves ({} levels x {} warps)",
            self.total_time.as_secs_f64() * 1e3,
            self.chambolle_time.as_secs_f64() * 1e3,
            100.0 * self.chambolle_fraction(),
            self.chambolle_calls,
            self.levels,
            self.warps,
        )
    }
}

/// Error returned by [`TvL1Solver::flow`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowError {
    /// The two frames have different dimensions.
    DimensionMismatch {
        /// Dimensions of the first frame.
        first: (usize, usize),
        /// Dimensions of the second frame.
        second: (usize, usize),
    },
    /// A frame has zero pixels.
    EmptyInput,
    /// The solve was cancelled via a [`CancelToken`]
    /// (see [`TvL1Solver::flow_cancellable`]).
    Cancelled(Cancelled),
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::DimensionMismatch { first, second } => write!(
                f,
                "frame dimensions differ: {}x{} vs {}x{}",
                first.0, first.1, second.0, second.1
            ),
            FlowError::EmptyInput => write!(f, "input frames are empty"),
            FlowError::Cancelled(c) => write!(f, "{c}"),
        }
    }
}

impl std::error::Error for FlowError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ChambolleParams;
    use crate::tiling::{TileConfig, TiledSolver};
    use chambolle_imaging::{
        average_endpoint_error, render_pair, Grid, Motion, NoiseTexture, Scene,
    };

    fn fast_params() -> TvL1Params {
        TvL1Params::new(38.0, ChambolleParams::with_iterations(20), 3, 5, 4).unwrap()
    }

    #[test]
    fn recovers_small_translation() {
        let scene = NoiseTexture::new(42);
        let motion = Motion::Translation { du: 1.5, dv: -0.75 };
        let pair = render_pair(&scene, 64, 48, motion);
        let solver = TvL1Solver::sequential(fast_params());
        let (flow, stats) = solver.flow(&pair.i0, &pair.i1).unwrap();
        let aee = average_endpoint_error(&flow, &pair.truth);
        assert!(aee < 0.35, "AEE {aee} too high; stats: {stats}");
    }

    #[test]
    fn recovers_larger_translation_via_pyramid() {
        let scene = NoiseTexture::new(5);
        let motion = Motion::Translation { du: 4.0, dv: 2.0 };
        let pair = render_pair(&scene, 96, 72, motion);
        let solver = TvL1Solver::sequential(fast_params());
        let (flow, _) = solver.flow(&pair.i0, &pair.i1).unwrap();
        let aee = average_endpoint_error(&flow, &pair.truth);
        assert!(aee < 0.8, "AEE {aee} too high for 4px motion");
        // Mean flow should point the right way.
        let (m1, m2) = flow.mean();
        assert!(m1 > 2.0 && m2 > 1.0, "mean flow ({m1}, {m2})");
    }

    #[test]
    fn zero_motion_gives_near_zero_flow() {
        let scene = NoiseTexture::new(9);
        let i0 = scene.render(48, 48);
        let solver = TvL1Solver::sequential(fast_params());
        let (flow, _) = solver.flow(&i0, &i0).unwrap();
        assert!(
            flow.max_magnitude() < 0.05,
            "max |u| = {}",
            flow.max_magnitude()
        );
    }

    #[test]
    fn chambolle_dominates_runtime() {
        let scene = NoiseTexture::new(2);
        let pair = render_pair(&scene, 96, 96, Motion::Translation { du: 1.0, dv: 0.5 });
        let mut p = fast_params();
        p.inner = ChambolleParams::with_iterations(100);
        let solver = TvL1Solver::sequential(p);
        let (_, stats) = solver.flow(&pair.i0, &pair.i1).unwrap();
        // Paper: ~90% at their iteration counts. At 100 iterations the inner
        // solver must clearly dominate.
        assert!(
            stats.chambolle_fraction() > 0.6,
            "Chambolle fraction only {:.2}",
            stats.chambolle_fraction()
        );
    }

    #[test]
    fn tiled_backend_is_bit_identical_to_sequential() {
        let scene = NoiseTexture::new(30);
        let pair = render_pair(&scene, 70, 50, Motion::Translation { du: 1.0, dv: 0.0 });
        let p = fast_params();
        // Sequential-vs-tiled bit identity is the Exact-tier contract; pin
        // the tier so the suite also passes under `CHAMBOLLE_NUMERICS=fast`.
        let exact = ExecCtx::default().with_numerics(crate::ctx::NumericsPolicy::Exact);
        let (f_seq, _) = TvL1Solver::sequential(p)
            .flow_with_ctx(&pair.i0, &pair.i1, None, &exact)
            .unwrap();
        let tiled = TiledSolver::new(TileConfig::new(32, 24, 2, 2).unwrap());
        let (f_tiled, _) = TvL1Solver::with_backend(p, tiled)
            .flow_with_ctx(&pair.i0, &pair.i1, None, &exact)
            .unwrap();
        assert_eq!(f_seq.u1.as_slice(), f_tiled.u1.as_slice());
        assert_eq!(f_seq.u2.as_slice(), f_tiled.u2.as_slice());
    }

    #[test]
    fn pooled_pipeline_is_bit_identical_to_sequential() {
        use crate::solver::ParallelSolver;
        let scene = NoiseTexture::new(33);
        let pair = render_pair(&scene, 64, 48, Motion::Translation { du: 1.0, dv: 0.5 });
        let p = fast_params();
        let (f_seq, _) = TvL1Solver::sequential(p).flow(&pair.i0, &pair.i1).unwrap();
        // One shared pool drives the pyramid, the warps, and the inner
        // Chambolle solves.
        let pool = std::sync::Arc::new(chambolle_par::ThreadPool::new(4));
        let solver = TvL1Solver::with_backend(p, ParallelSolver::with_pool(Arc::clone(&pool)))
            .with_pool(Arc::clone(&pool));
        assert!(solver.pool().is_some());
        let (f_par, _) = solver.flow(&pair.i0, &pair.i1).unwrap();
        assert_eq!(f_seq.u1.as_slice(), f_par.u1.as_slice());
        assert_eq!(f_seq.u2.as_slice(), f_par.u2.as_slice());
        assert!(pool.stats().tasks > 0, "the shared pool must see the work");
    }

    #[test]
    fn rejects_mismatched_and_empty_inputs() {
        let solver = TvL1Solver::sequential(fast_params());
        let a = Grid::new(10, 10, 0.0f32);
        let b = Grid::new(12, 10, 0.0f32);
        let err = solver.flow(&a, &b).unwrap_err();
        assert!(matches!(err, FlowError::DimensionMismatch { .. }));
        assert!(err.to_string().contains("10x10"));
    }

    #[test]
    fn threshold_step_cases() {
        use chambolle_imaging::FlowField;
        // Build a linearization with known gradient by hand: I1 = x ramp,
        // I0 = I1 + c so residual is -c everywhere, gradient = (1, 0).
        let i1 = Grid::from_fn(16, 8, |x, _| 0.1 * x as f32);
        let lambda = 0.5;
        let theta = 0.25;
        let lt = lambda * theta;
        // Case 1: large positive residual -> v = u - λθ·g.
        let i0 = i1.map(|&v| v - 1.0); // residual = I1w - I0 = +1
        let lin = WarpLinearization::new(&i0, &i1, &FlowField::zeros(16, 8));
        let v = threshold_step(&lin, &FlowField::zeros(16, 8), lambda, theta);
        let (v1, _) = v.at(8, 4);
        assert!((v1 + lt * lin.gx[(8, 4)]).abs() < 1e-6);
        // Case 2: small residual -> v = u - rho·g/|g|².
        let i0b = i1.map(|&v| v - 1e-4);
        let lin_b = WarpLinearization::new(&i0b, &i1, &FlowField::zeros(16, 8));
        let vb = threshold_step(&lin_b, &FlowField::zeros(16, 8), lambda, theta);
        let (v1b, _) = vb.at(8, 4);
        let expect = -1e-4 * lin_b.gx[(8, 4)] / lin_b.grad_sq(8, 4);
        assert!((v1b - expect).abs() < 1e-6);
        // Case 3: zero gradient -> v = u.
        let flat = Grid::new(16, 8, 0.5f32);
        let lin_c = WarpLinearization::new(&flat, &flat, &FlowField::zeros(16, 8));
        let vc = threshold_step(&lin_c, &FlowField::constant(16, 8, 2.0, 3.0), lambda, theta);
        assert_eq!(vc.at(8, 4), (2.0, 3.0));
    }

    #[test]
    fn warm_start_tracks_video() {
        use chambolle_imaging::render_sequence;
        let motion = Motion::Translation { du: 2.0, dv: 1.0 };
        let frames = render_sequence(&NoiseTexture::new(71), 64, 48, motion, 7);
        // A deliberately weak configuration: 1 warp and no pyramid can't
        // recover 2px motion from scratch, but refines a good prior; over a
        // coherent sequence the tracker converges to the true motion.
        let weak = TvL1Params::new(38.0, ChambolleParams::with_iterations(15), 1, 2, 1).unwrap();
        let truth = motion.ground_truth(64, 48);

        // Cold: single weak solve on the last pair.
        let (cold, _) = TvL1Solver::sequential(weak)
            .flow(&frames[5], &frames[6])
            .unwrap();
        // Warm: track through the sequence with the same weak solver.
        let mut tracker = VideoFlowTracker::new(TvL1Solver::sequential(weak));
        let mut warm = None;
        for t in 0..6 {
            warm = Some(tracker.next_flow(&frames[t], &frames[t + 1]).unwrap());
        }
        let warm = warm.unwrap();
        let e_cold = average_endpoint_error(&cold, &truth);
        let e_warm = average_endpoint_error(&warm, &truth);
        assert!(
            e_warm < 0.6 * e_cold,
            "warm start should help a weak solver: cold {e_cold} vs warm {e_warm}"
        );
        assert!(tracker.last_flow().is_some());
        tracker.reset();
        assert!(tracker.last_flow().is_none());
    }

    #[test]
    fn flow_with_init_validates_prior_size() {
        use chambolle_imaging::FlowField;
        let scene = NoiseTexture::new(72);
        let pair = render_pair(&scene, 40, 30, Motion::Translation { du: 1.0, dv: 0.0 });
        let solver = TvL1Solver::sequential(fast_params());
        let bad_prior = FlowField::zeros(41, 30);
        assert!(solver
            .flow_with_init(&pair.i0, &pair.i1, Some(&bad_prior))
            .is_err());
        let good_prior = FlowField::constant(40, 30, 1.0, 0.0);
        assert!(solver
            .flow_with_init(&pair.i0, &pair.i1, Some(&good_prior))
            .is_ok());
    }

    #[test]
    fn gentler_pyramid_helps_large_motion() {
        let scene = NoiseTexture::new(61);
        let motion = Motion::Translation { du: 7.0, dv: 0.0 };
        let pair = render_pair(&scene, 128, 64, motion);
        let coarse = fast_params();
        let gentle = fast_params().with_scale_factor(0.75).unwrap();
        let mut gentle = gentle;
        gentle.pyramid_levels = 8;
        let (f_half, _) = TvL1Solver::sequential(coarse)
            .flow(&pair.i0, &pair.i1)
            .unwrap();
        let (f_gentle, _) = TvL1Solver::sequential(gentle)
            .flow(&pair.i0, &pair.i1)
            .unwrap();
        let e_half = average_endpoint_error(&f_half, &pair.truth);
        let e_gentle = average_endpoint_error(&f_gentle, &pair.truth);
        assert!(e_gentle < 1.0, "gentle pyramid AEE {e_gentle}");
        assert!(
            e_gentle <= e_half * 1.5,
            "gentle pyramid should not be much worse: {e_gentle} vs {e_half}"
        );
    }

    #[test]
    fn median_filter_variant_still_recovers_flow() {
        let scene = NoiseTexture::new(55);
        let motion = Motion::Translation { du: 1.5, dv: 0.5 };
        let pair = render_pair(&scene, 64, 48, motion);
        let p = fast_params().with_median_filter();
        let solver = TvL1Solver::sequential(p);
        let (flow, _) = solver.flow(&pair.i0, &pair.i1).unwrap();
        let aee = average_endpoint_error(&flow, &pair.truth);
        assert!(aee < 0.4, "median-filtered AEE {aee}");
        // And the flag changes the result relative to the plain scheme.
        let (plain, _) = TvL1Solver::sequential(fast_params())
            .flow(&pair.i0, &pair.i1)
            .unwrap();
        assert_ne!(flow.u1.as_slice(), plain.u1.as_slice());
    }

    #[test]
    fn stats_count_the_inner_solves() {
        let scene = NoiseTexture::new(81);
        let pair = render_pair(&scene, 64, 48, Motion::Translation { du: 0.5, dv: 0.0 });
        let p = fast_params();
        let (_, stats) = TvL1Solver::sequential(p).flow(&pair.i0, &pair.i1).unwrap();
        // Two component solves per alternation, outer_iterations per warp,
        // warps per level.
        assert_eq!(
            stats.chambolle_calls,
            stats.levels as u32 * p.warps * p.outer_iterations * 2
        );
        assert_eq!(stats.warps, p.warps);
        assert!(stats.levels <= p.pyramid_levels);
    }

    #[test]
    fn cancellable_flow_matches_plain_flow_bit_for_bit() {
        let scene = NoiseTexture::new(44);
        let pair = render_pair(&scene, 48, 36, Motion::Translation { du: 1.0, dv: 0.5 });
        let solver = TvL1Solver::sequential(fast_params());
        let (plain, _) = solver.flow(&pair.i0, &pair.i1).unwrap();
        let (canc, _) = solver
            .flow_cancellable(&pair.i0, &pair.i1, None, &crate::cancel::CancelToken::new())
            .unwrap();
        assert_eq!(plain.u1.as_slice(), canc.u1.as_slice());
        assert_eq!(plain.u2.as_slice(), canc.u2.as_slice());
    }

    #[test]
    fn cancelled_flow_returns_clean_error_and_solver_stays_usable() {
        use crate::cancel::{CancelReason, CancelToken};
        let scene = NoiseTexture::new(45);
        let pair = render_pair(&scene, 48, 36, Motion::Translation { du: 1.0, dv: 0.0 });
        let solver = TvL1Solver::sequential(fast_params());
        let token = CancelToken::new();
        token.cancel();
        let err = solver
            .flow_cancellable(&pair.i0, &pair.i1, None, &token)
            .unwrap_err();
        match err {
            FlowError::Cancelled(c) => assert_eq!(c.reason, CancelReason::Explicit),
            other => panic!("expected Cancelled, got {other:?}"),
        }
        assert!(err.to_string().contains("cancelled"));
        // The same solver still produces the reference flow afterwards.
        let (reference, _) = TvL1Solver::sequential(fast_params())
            .flow(&pair.i0, &pair.i1)
            .unwrap();
        let (after, _) = solver.flow(&pair.i0, &pair.i1).unwrap();
        assert_eq!(reference.u1.as_slice(), after.u1.as_slice());
    }

    #[test]
    fn stats_display_mentions_chambolle() {
        let stats = FlowStats {
            total_time: Duration::from_millis(100),
            chambolle_time: Duration::from_millis(90),
            chambolle_calls: 10,
            levels: 3,
            warps: 5,
        };
        let s = stats.to_string();
        assert!(s.contains("90%"));
        assert!((stats.chambolle_fraction() - 0.9).abs() < 1e-9);
    }
}
