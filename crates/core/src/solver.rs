//! The sequential Chambolle fixed-point solver (Algorithm 1 of the paper).
//!
//! One iteration does, for every cell:
//!
//! ```text
//! div_p = BackwardX(px) + BackwardY(py)
//! Term  = div_p − v/θ
//! Term1 = ForwardX(Term);  Term2 = ForwardY(Term)
//! |∇|   = sqrt(Term1² + Term2²)
//! px    = (px + τ/θ·Term1) / (1 + τ/θ·|∇|)
//! py    = (py + τ/θ·Term2) / (1 + τ/θ·|∇|)
//! ```
//!
//! and finally `u = v − θ·div p`. The per-cell arithmetic lives in
//! [`compute_term_into`] / [`update_p_inplace`], which the tiled parallel
//! solver reuses verbatim so that tiled and sequential results are
//! **bit-identical** on profitable cells.

use std::sync::Arc;

use chambolle_imaging::Grid;
use chambolle_par::{ThreadPool, UnsafeSharedSlice};

use crate::backend::KernelBackend;
use crate::cancel::{CancelToken, Cancelled};
use crate::ctx::{ExecCtx, NumericsPolicy};
use crate::fast;
use crate::kernels::{BandHalo, BelowHalo};
use crate::ops::{div_x_at, div_y_at, total_variation};
use crate::params::{ChambolleParams, InvalidParamsError};
use crate::real::Real;

/// The dual variable `p = (px, py)` of the Chambolle iteration
/// (the paper's intermediate `pxu`/`pyu` storage).
#[derive(Debug, Clone, PartialEq)]
pub struct DualField<R: Real> {
    /// x-component of the dual vector field.
    pub px: Grid<R>,
    /// y-component of the dual vector field.
    pub py: Grid<R>,
}

impl<R: Real> DualField<R> {
    /// The zero dual field — the iteration's initial state.
    pub fn zeros(width: usize, height: usize) -> Self {
        DualField {
            px: Grid::new(width, height, R::ZERO),
            py: Grid::new(width, height, R::ZERO),
        }
    }

    /// `(width, height)`.
    pub fn dims(&self) -> (usize, usize) {
        self.px.dims()
    }

    /// The largest Euclidean norm `|(px, py)|` over all cells.
    ///
    /// Chambolle's projection keeps this `≤ 1`; it is the key invariant of
    /// the iteration.
    pub fn max_norm(&self) -> f64 {
        self.px
            .as_slice()
            .iter()
            .zip(self.py.as_slice())
            .map(|(&a, &b)| {
                let (a, b) = (a.to_f64(), b.to_f64());
                (a * a + b * b).sqrt()
            })
            .fold(0.0, f64::max)
    }
}

/// Sign convention for the gradient inside the dual update.
///
/// [`Convention::Standard`] is Chambolle (2004) / Zach et al. (2007) and is
/// what every result in this workspace uses. [`Convention::PaperProse`] is
/// the literal reading of the paper's sentence "in `ForwardX` [each element
/// is reduced] by its right neighbor"; it steps in the *ascent* direction and
/// diverges — kept only to document the discrepancy (see `DESIGN.md`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Convention {
    /// Standard forward difference `z[x+1] − z[x]` (convergent).
    #[default]
    Standard,
    /// Literal prose `z[x] − z[x+1]` (divergent; for the reproduction study).
    PaperProse,
}

/// Pass 1 of an iteration: `term = div p − v/θ` into a caller-provided grid.
///
/// # Panics
///
/// Panics if grid dimensions differ.
pub fn compute_term_into<R: Real>(p: &DualField<R>, v: &Grid<R>, inv_theta: R, term: &mut Grid<R>) {
    assert_eq!(p.dims(), v.dims(), "dual field and v must match in size");
    assert_eq!(v.dims(), term.dims(), "term grid must match in size");
    let (w, h) = v.dims();
    for y in 0..h {
        for x in 0..w {
            let div = div_x_at(&p.px, x, y) + div_y_at(&p.py, x, y);
            term[(x, y)] = div - v[(x, y)] * inv_theta;
        }
    }
}

/// Pass 2 of an iteration: the semi-implicit dual update
/// `p ← (p + τ/θ·∇term) / (1 + τ/θ·|∇term|)`, in place.
///
/// # Panics
///
/// Panics if grid dimensions differ.
pub fn update_p_inplace<R: Real>(
    p: &mut DualField<R>,
    term: &Grid<R>,
    step_ratio: R,
    convention: Convention,
) {
    assert_eq!(
        p.dims(),
        term.dims(),
        "dual field and term must match in size"
    );
    let (w, h) = term.dims();
    for y in 0..h {
        for x in 0..w {
            let t1 = if x + 1 < w {
                match convention {
                    Convention::Standard => term[(x + 1, y)] - term[(x, y)],
                    Convention::PaperProse => term[(x, y)] - term[(x + 1, y)],
                }
            } else {
                R::ZERO
            };
            let t2 = if y + 1 < h {
                match convention {
                    Convention::Standard => term[(x, y + 1)] - term[(x, y)],
                    Convention::PaperProse => term[(x, y)] - term[(x, y + 1)],
                }
            } else {
                R::ZERO
            };
            let grad = (t1 * t1 + t2 * t2).sqrt();
            let denom = R::ONE + step_ratio * grad;
            p.px[(x, y)] = (p.px[(x, y)] + step_ratio * t1) / denom;
            p.py[(x, y)] = (p.py[(x, y)] + step_ratio * t2) / denom;
        }
    }
}

/// Runs `iterations` Chambolle iterations on `p` in place (the paper's
/// Algorithm 1 loop body, lines 2–8).
///
/// # Panics
///
/// Panics if `p` and `v` dimensions differ.
pub fn chambolle_iterate<R: Real>(
    p: &mut DualField<R>,
    v: &Grid<R>,
    params: &ChambolleParams,
    iterations: u32,
) {
    chambolle_iterate_with_ctx(p, v, params, iterations, &ExecCtx::default())
        .expect("an inert context carries no cancellation token");
}

/// The consolidated iteration entry point: runs `iterations` Chambolle
/// iterations on `p` under the execution policy in `ctx`.
///
/// - no pool (or a 1-thread pool) → the fused sequential sweep;
/// - a pool → the banded parallel sweep of [`chambolle_iterate_parallel`],
///   bit-identical to sequential for every thread count;
/// - the kernel rows run on `ctx.backend()` (bit-identical on every
///   backend under the default Exact tier);
/// - `ctx.numerics()` selects the numerics tier: `Exact` (default) keeps
///   the bit-identity contract; `Fast` routes `f32` solves through the
///   tolerance-validated kernels of [`crate::fast`] — sequentially as
///   K-deep temporally fused sweeps, in parallel as fast band iterations
///   (still thread-count invariant). `f64` solves always run exact;
/// - a cancellation token, if attached, is polled between iterations
///   (between fused sweeps at the Fast tier).
///
/// Every historical twin (`chambolle_iterate`,
/// [`chambolle_iterate_cancellable`], [`chambolle_iterate_parallel`])
/// delegates here.
///
/// # Errors
///
/// Returns [`Cancelled`] if `ctx`'s token reports cancellation before all
/// `iterations` complete; `p` then holds the state after the last completed
/// iteration.
///
/// # Panics
///
/// Panics if `p` and `v` dimensions differ.
pub fn chambolle_iterate_with_ctx<R: Real>(
    p: &mut DualField<R>,
    v: &Grid<R>,
    params: &ChambolleParams,
    iterations: u32,
    ctx: &ExecCtx,
) -> Result<(), Cancelled> {
    iterate_impl(
        p,
        v,
        params,
        iterations,
        ctx.pool().map(Arc::as_ref),
        ctx.cancel(),
        ctx.backend(),
        ctx.numerics(),
    )
}

/// The one implementation behind every iteration entry point.
#[allow(clippy::too_many_arguments)] // the execution-policy fan-in point
fn iterate_impl<R: Real>(
    p: &mut DualField<R>,
    v: &Grid<R>,
    params: &ChambolleParams,
    iterations: u32,
    pool: Option<&ThreadPool>,
    token: Option<&CancelToken>,
    backend: KernelBackend,
    numerics: NumericsPolicy,
) -> Result<(), Cancelled> {
    assert_eq!(p.dims(), v.dims(), "dual field and v must match in size");
    let (w, h) = v.dims();
    if w == 0 || h == 0 {
        return Ok(());
    }
    let inv_theta = R::ONE / R::from_f32(params.theta);
    let step_ratio = R::from_f32(params.step_ratio());

    let bands = pool.map_or(1, ThreadPool::threads).min(h);
    if bands <= 1 {
        // Sequential Fast tier: fuse iterations K at a time into single
        // cache-resident passes over the frame. (`f64` solves never take
        // this branch — the fast tier is an `f32` contract.)
        if numerics == NumericsPolicy::Fast {
            if let (Some(px), Some(py), Some(vs)) = (
                fast::f32_slice_mut(p.px.as_mut_slice()),
                fast::f32_slice_mut(p.py.as_mut_slice()),
                fast::f32_slice(v.as_slice()),
            ) {
                let it = 1.0f32 / params.theta;
                let st = params.step_ratio();
                let mut remaining = iterations;
                while remaining > 0 {
                    if let Some(token) = token {
                        token.check()?;
                    }
                    let k = remaining.min(fast::TEMPORAL_FUSION_DEPTH);
                    fast::temporal_sweep(backend, px, py, vs, w, h, it, st, k);
                    remaining -= k;
                }
                return Ok(());
            }
        }
        let (mut ta, mut tb) = (vec![R::ZERO; w], vec![R::ZERO; w]);
        for _ in 0..iterations {
            if let Some(token) = token {
                token.check()?;
            }
            backend.fused_band_iteration(
                p.px.as_mut_slice(),
                p.py.as_mut_slice(),
                v.as_slice(),
                w,
                h,
                0,
                BandHalo {
                    py_above: None,
                    below: None,
                },
                inv_theta,
                step_ratio,
                &mut ta,
                &mut tb,
            );
        }
        return Ok(());
    }
    let pool = pool.expect("bands > 1 implies a pool");

    // Deterministic band bounds (the partition never depends on scheduling;
    // the result does not even depend on the partition — every band computes
    // from old-p data only).
    let bounds: Vec<usize> = (0..=bands).map(|b| b * h / bands).collect();
    // Old-p halo rows copied fresh each iteration before the bands launch:
    // for the boundary at row r, py[r-1] (read by the band below it) and
    // px[r]/py[r] (read by the band above it).
    let mut snap_py_above = vec![vec![R::ZERO; w]; bands - 1];
    let mut snap_px_below = vec![vec![R::ZERO; w]; bands - 1];
    let mut snap_py_below = vec![vec![R::ZERO; w]; bands - 1];
    // Per-band term-row scratch, allocated once and reused every iteration.
    let mut term_scratch = vec![(vec![R::ZERO; w], vec![R::ZERO; w]); bands];

    for _ in 0..iterations {
        if let Some(token) = token {
            token.check()?;
        }
        for b in 0..bands - 1 {
            let r = bounds[b + 1];
            snap_py_above[b].copy_from_slice(p.py.row(r - 1));
            snap_px_below[b].copy_from_slice(p.px.row(r));
            snap_py_below[b].copy_from_slice(p.py.row(r));
        }
        let px_view = UnsafeSharedSlice::new(p.px.as_mut_slice());
        let py_view = UnsafeSharedSlice::new(p.py.as_mut_slice());
        let term_view = UnsafeSharedSlice::new(&mut term_scratch);
        pool.parallel_tiles("par.solver.iteration", bands, |_, b| {
            let (r0, r1) = (bounds[b], bounds[b + 1]);
            // SAFETY: band row ranges are disjoint, and each band index runs
            // exactly once; foreign rows are only read through the halo
            // snapshots. Each band's scratch entry is touched by exactly the
            // task that owns index b.
            let (px_band, py_band, scratch) = unsafe {
                (
                    px_view.slice_mut(r0 * w, (r1 - r0) * w),
                    py_view.slice_mut(r0 * w, (r1 - r0) * w),
                    &mut term_view.slice_mut(b, 1)[0],
                )
            };
            let halo = BandHalo {
                py_above: (r0 > 0).then(|| snap_py_above[b - 1].as_slice()),
                below: (r1 < h).then(|| BelowHalo {
                    px: snap_px_below[b].as_slice(),
                    py: snap_py_below[b].as_slice(),
                    v: v.row(r1),
                }),
            };
            fast::band_iteration_tiered(
                backend,
                numerics,
                px_band,
                py_band,
                &v.as_slice()[r0 * w..r1 * w],
                w,
                h,
                r0,
                halo,
                inv_theta,
                step_ratio,
                &mut scratch.0,
                &mut scratch.1,
            );
        });
    }
    Ok(())
}

/// [`chambolle_iterate`] with a cooperative cancellation poll between
/// iterations.
///
/// On cancellation `p` holds the state after the last *completed* iteration —
/// exactly a state the uncancelled run would also have passed through — so a
/// caller may resume, discard, or recover `u` from it safely.
///
/// # Errors
///
/// Returns [`Cancelled`] if `token` reports cancellation before all
/// `iterations` complete.
///
/// # Panics
///
/// Panics if `p` and `v` dimensions differ.
#[deprecated(note = "use `chambolle_iterate_with_ctx` with \
            `ExecCtx::default().with_cancel(token.clone())`")]
pub fn chambolle_iterate_cancellable<R: Real>(
    p: &mut DualField<R>,
    v: &Grid<R>,
    params: &ChambolleParams,
    iterations: u32,
    token: &CancelToken,
) -> Result<(), Cancelled> {
    let ctx = ExecCtx::default().with_cancel(token.clone());
    chambolle_iterate_with_ctx(p, v, params, iterations, &ctx)
}

/// Recovers the primal solution `u = v − θ·div p` (Algorithm 1, line 9).
///
/// # Panics
///
/// Panics if dimensions differ.
pub fn recover_u<R: Real>(v: &Grid<R>, p: &DualField<R>, theta: f32) -> Grid<R> {
    assert_eq!(v.dims(), p.dims(), "v and dual field must match in size");
    let th = R::from_f32(theta);
    Grid::from_fn(v.width(), v.height(), |x, y| {
        v[(x, y)] - th * (div_x_at(&p.px, x, y) + div_y_at(&p.py, x, y))
    })
}

/// Solves the ROF model `min_u TV(u) + ‖u − v‖²/(2θ)` with
/// `params.iterations` Chambolle iterations from a zero dual start.
///
/// Returns the denoised image and the final dual field (useful for
/// warm-starting or for inspecting the `|p| ≤ 1` invariant).
pub fn chambolle_denoise<R: Real>(
    v: &Grid<R>,
    params: &ChambolleParams,
) -> (Grid<R>, DualField<R>) {
    chambolle_denoise_with_ctx(v, params, &ExecCtx::default())
        .expect("an inert context carries no cancellation token")
}

/// The consolidated denoise entry point: solves the ROF model from a zero
/// dual start under the execution policy in `ctx`
/// (see [`chambolle_iterate_with_ctx`]).
///
/// Every historical twin ([`chambolle_denoise`],
/// [`chambolle_denoise_cancellable`]) delegates here.
///
/// A context carrying a [`DegradationPolicy`](crate::DegradationPolicy)
/// caps the iteration budget at `ctx.effective_iterations(params.iterations)`
/// — the brownout tier: the solve still runs and still returns, it just
/// converges less far. Without a policy the budget is exactly
/// `params.iterations` and results are unchanged.
///
/// # Errors
///
/// Returns [`Cancelled`] if `ctx`'s token reports cancellation before the
/// solve finishes; no partial output is produced.
pub fn chambolle_denoise_with_ctx<R: Real>(
    v: &Grid<R>,
    params: &ChambolleParams,
    ctx: &ExecCtx,
) -> Result<(Grid<R>, DualField<R>), Cancelled> {
    let mut p = DualField::zeros(v.width(), v.height());
    let iterations = ctx.effective_iterations(params.iterations);
    chambolle_iterate_with_ctx(&mut p, v, params, iterations, ctx)?;
    let u = recover_u(v, &p, params.theta);
    Ok((u, p))
}

/// [`chambolle_denoise`] with a cooperative cancellation poll between
/// iterations.
///
/// Bit-identical to [`chambolle_denoise`] when it runs to completion.
///
/// # Errors
///
/// Returns [`Cancelled`] if `token` reports cancellation before the solve
/// finishes; no partial output is produced.
#[deprecated(note = "use `chambolle_denoise_with_ctx` with \
            `ExecCtx::default().with_cancel(token.clone())`")]
pub fn chambolle_denoise_cancellable<R: Real>(
    v: &Grid<R>,
    params: &ChambolleParams,
    token: &CancelToken,
) -> Result<(Grid<R>, DualField<R>), Cancelled> {
    let ctx = ExecCtx::default().with_cancel(token.clone());
    chambolle_denoise_with_ctx(v, params, &ctx)
}

/// The ROF primal energy `TV(u) + ‖u − v‖² / (2θ)` the iteration minimizes.
///
/// # Panics
///
/// Panics if dimensions differ or `theta <= 0`; [`try_rof_energy`] is the
/// non-panicking form.
pub fn rof_energy<R: Real>(u: &Grid<R>, v: &Grid<R>, theta: f32) -> f64 {
    try_rof_energy(u, v, theta).expect("invalid rof_energy input")
}

/// [`rof_energy`] with validated preconditions instead of panics.
///
/// # Errors
///
/// Returns [`InvalidParamsError`] if `u` and `v` differ in size or `theta`
/// is not positive (NaN included).
pub fn try_rof_energy<R: Real>(
    u: &Grid<R>,
    v: &Grid<R>,
    theta: f32,
) -> Result<f64, InvalidParamsError> {
    if u.dims() != v.dims() {
        return Err(InvalidParamsError::new(format!(
            "u {:?} and v {:?} must match in size",
            u.dims(),
            v.dims()
        )));
    }
    #[allow(clippy::neg_cmp_op_on_partial_ord)] // NaN must be rejected too
    if !(theta > 0.0) {
        return Err(InvalidParamsError::new(format!(
            "theta must be positive, got {theta}"
        )));
    }
    let quad: f64 = u
        .as_slice()
        .iter()
        .zip(v.as_slice())
        .map(|(&a, &b)| {
            let d = a.to_f64() - b.to_f64();
            d * d
        })
        .sum();
    Ok(total_variation(u) + quad / (2.0 * theta as f64))
}

/// Something that can run the Chambolle inner solve of TV-L1: the sequential
/// reference, the tiled parallel solver, or the FPGA cycle simulator.
///
/// The solve is per-component (`u1` from `v1`, `u2` from `v2`), exactly as
/// the paper's hardware instantiates one PE array per component.
pub trait TvDenoiser {
    /// Denoises `v` with the given Chambolle parameters, returning `u`.
    fn denoise(&self, v: &Grid<f32>, params: &ChambolleParams) -> Grid<f32>;

    /// Denoises `v` under an execution context (the TV-L1 outer loop calls
    /// this so its [`ExecCtx`] governs the inner solves).
    ///
    /// The default forwards to [`TvDenoiser::denoise`] and ignores the
    /// context — right for backends with fixed semantics like the hardware
    /// simulator. The software solvers override it to honor the context's
    /// kernel backend and numerics tier (but keep their own threading:
    /// which pool a solver runs on is the backend's identity).
    fn denoise_with_ctx(
        &self,
        v: &Grid<f32>,
        params: &ChambolleParams,
        ctx: &ExecCtx,
    ) -> Grid<f32> {
        let _ = ctx;
        self.denoise(v, params)
    }

    /// A short human-readable name for reports.
    fn name(&self) -> &str {
        "unnamed"
    }
}

impl<T: TvDenoiser + ?Sized> TvDenoiser for Box<T> {
    fn denoise(&self, v: &Grid<f32>, params: &ChambolleParams) -> Grid<f32> {
        (**self).denoise(v, params)
    }

    fn denoise_with_ctx(
        &self,
        v: &Grid<f32>,
        params: &ChambolleParams,
        ctx: &ExecCtx,
    ) -> Grid<f32> {
        (**self).denoise_with_ctx(v, params, ctx)
    }

    fn name(&self) -> &str {
        (**self).name()
    }
}

impl<T: TvDenoiser + ?Sized> TvDenoiser for &T {
    fn denoise(&self, v: &Grid<f32>, params: &ChambolleParams) -> Grid<f32> {
        (**self).denoise(v, params)
    }

    fn denoise_with_ctx(
        &self,
        v: &Grid<f32>,
        params: &ChambolleParams,
        ctx: &ExecCtx,
    ) -> Grid<f32> {
        (**self).denoise_with_ctx(v, params, ctx)
    }

    fn name(&self) -> &str {
        (**self).name()
    }
}

/// The plain sequential Algorithm-1 solver (the software baseline).
#[derive(Debug, Clone, Copy, Default)]
pub struct SequentialSolver;

impl SequentialSolver {
    /// Creates the sequential solver.
    pub fn new() -> Self {
        SequentialSolver
    }
}

impl TvDenoiser for SequentialSolver {
    fn denoise(&self, v: &Grid<f32>, params: &ChambolleParams) -> Grid<f32> {
        chambolle_denoise(v, params).0
    }

    fn denoise_with_ctx(
        &self,
        v: &Grid<f32>,
        params: &ChambolleParams,
        ctx: &ExecCtx,
    ) -> Grid<f32> {
        // Adopt the context's observability and kernel policy, but never
        // its pool: sequential is this backend's contract.
        let seq_ctx = ExecCtx::default()
            .with_telemetry(ctx.telemetry().clone())
            .with_backend(ctx.backend())
            .with_numerics(ctx.numerics());
        chambolle_denoise_with_ctx(v, params, &seq_ctx)
            .expect("a context without a token cannot be cancelled")
            .0
    }

    fn name(&self) -> &str {
        "sequential"
    }
}

/// Runs `iterations` Chambolle iterations on `p` with the fused row kernels
/// of [`crate::kernels`], row-banded across the pool's workers.
///
/// The result is **bit-identical** to [`chambolle_iterate`] for every thread
/// count: each band reads only its own rows plus halo rows (`py` above,
/// `px`/`py` below) that are snapshotted from old-`p` state before the bands
/// launch, so every term value is derived from exactly the data the
/// sequential two-pass reference uses. No intermediate term grid is
/// allocated — each band rolls two term-row buffers.
///
/// # Panics
///
/// Panics if `p` and `v` dimensions differ.
#[deprecated(note = "use `chambolle_iterate_with_ctx` with \
            `ExecCtx::default().with_pool(Arc::clone(pool))`")]
pub fn chambolle_iterate_parallel<R: Real>(
    p: &mut DualField<R>,
    v: &Grid<R>,
    params: &ChambolleParams,
    iterations: u32,
    pool: &Arc<ThreadPool>,
) {
    let ctx = ExecCtx::default().with_pool(Arc::clone(pool));
    chambolle_iterate_with_ctx(p, v, params, iterations, &ctx)
        .expect("an inert context carries no cancellation token");
}

/// The pool-backed fused-kernel solver: bit-identical to
/// [`SequentialSolver`], parallel over row bands.
///
/// # Examples
///
/// ```
/// use chambolle_core::{ChambolleParams, ParallelSolver, SequentialSolver, TvDenoiser};
/// use chambolle_imaging::Grid;
///
/// let v = Grid::from_fn(32, 24, |x, y| ((x ^ y) & 7) as f32 / 7.0);
/// let params = ChambolleParams::with_iterations(20);
/// let seq = SequentialSolver::new().denoise(&v, &params);
/// let par = ParallelSolver::new(4).denoise(&v, &params);
/// assert_eq!(seq.as_slice(), par.as_slice());
/// ```
#[derive(Debug, Clone)]
pub struct ParallelSolver {
    pool: Arc<ThreadPool>,
}

impl ParallelSolver {
    /// Creates a solver with its own pool of `threads` workers.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn new(threads: usize) -> Self {
        ParallelSolver {
            pool: Arc::new(ThreadPool::new(threads)),
        }
    }

    /// Creates a solver sharing an existing pool (e.g. with the tiled
    /// solver or the TV-L1 pipeline).
    pub fn with_pool(pool: Arc<ThreadPool>) -> Self {
        ParallelSolver { pool }
    }

    /// The worker pool backing this solver.
    pub fn pool(&self) -> &Arc<ThreadPool> {
        &self.pool
    }
}

impl TvDenoiser for ParallelSolver {
    fn denoise(&self, v: &Grid<f32>, params: &ChambolleParams) -> Grid<f32> {
        let mut p = DualField::zeros(v.width(), v.height());
        let ctx = ExecCtx::default().with_pool(Arc::clone(&self.pool));
        chambolle_iterate_with_ctx(&mut p, v, params, params.iterations, &ctx)
            .expect("an inert context carries no cancellation token");
        recover_u(v, &p, params.theta)
    }

    fn denoise_with_ctx(
        &self,
        v: &Grid<f32>,
        params: &ChambolleParams,
        ctx: &ExecCtx,
    ) -> Grid<f32> {
        // This solver's pool is its identity; the context contributes its
        // observability and kernel policy only.
        let pooled_ctx = ExecCtx::default()
            .with_telemetry(ctx.telemetry().clone())
            .with_backend(ctx.backend())
            .with_numerics(ctx.numerics())
            .with_pool(Arc::clone(&self.pool));
        let mut p = DualField::zeros(v.width(), v.height());
        chambolle_iterate_with_ctx(&mut p, v, params, params.iterations, &pooled_ctx)
            .expect("an inert context carries no cancellation token");
        recover_u(v, &p, params.theta)
    }

    fn name(&self) -> &str {
        "parallel"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn noisy_step(w: usize, h: usize, seed: u64) -> Grid<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        Grid::from_fn(w, h, |x, _| {
            let base = if x < w / 2 { 0.2 } else { 0.8 };
            base + rng.gen_range(-0.1..0.1)
        })
    }

    fn params(iters: u32) -> ChambolleParams {
        ChambolleParams::paper(iters)
    }

    #[test]
    fn constant_image_is_fixed_point() {
        let v = Grid::new(8, 8, 0.5f64);
        let (u, p) = chambolle_denoise(&v, &params(50));
        for &val in u.as_slice() {
            assert!((val - 0.5).abs() < 1e-12);
        }
        assert!(p.max_norm() < 1e-12);
    }

    #[test]
    fn energy_decreases_with_iterations() {
        let v = noisy_step(24, 16, 3);
        let e0 = rof_energy(&v, &v, 0.25); // u = v, zero iterations
        let mut prev = e0;
        for iters in [1u32, 5, 20, 80, 200] {
            let (u, _) = chambolle_denoise(&v, &params(iters));
            let e = rof_energy(&u, &v, 0.25);
            assert!(
                e <= prev + 1e-9,
                "energy should not increase: {prev} -> {e} at {iters} iterations"
            );
            prev = e;
        }
        assert!(
            prev < 0.95 * e0,
            "denoising should reduce energy materially"
        );
    }

    #[test]
    fn iterates_converge() {
        // Chambolle's dual iteration converges like O(1/k); check the
        // doubling-gap contracts and is already small at 400 iterations.
        let v = noisy_step(16, 16, 7);
        let gap = |a: u32, b: u32| {
            let (u1, _) = chambolle_denoise(&v, &params(a));
            let (u2, _) = chambolle_denoise(&v, &params(b));
            u1.as_slice()
                .iter()
                .zip(u2.as_slice())
                .map(|(&x, &y)| (x - y).abs())
                .fold(0.0f64, f64::max)
        };
        let g1 = gap(100, 200);
        let g2 = gap(400, 800);
        assert!(g2 < 0.01, "doubling gap should be small, got {g2}");
        assert!(g2 < g1, "doubling gap should shrink: {g1} -> {g2}");
    }

    #[test]
    fn solution_is_a_local_minimum() {
        let v = noisy_step(12, 12, 11);
        let (u, _) = chambolle_denoise(&v, &params(2000));
        let e_star = rof_energy(&u, &v, 0.25);
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..10 {
            let perturbed = Grid::from_fn(12, 12, |x, y| u[(x, y)] + rng.gen_range(-1e-3..1e-3));
            let e = rof_energy(&perturbed, &v, 0.25);
            assert!(
                e >= e_star - 1e-9,
                "perturbation decreased energy: {e_star} -> {e}"
            );
        }
    }

    #[test]
    fn dual_norm_invariant() {
        let v = noisy_step(20, 14, 5);
        let mut p = DualField::zeros(20, 14);
        for _ in 0..10 {
            chambolle_iterate(&mut p, &v, &params(10), 10);
            assert!(
                p.max_norm() <= 1.0 + 1e-12,
                "|p| must stay within the unit ball"
            );
        }
    }

    #[test]
    fn denoising_smooths_noise_but_keeps_edges() {
        let v = noisy_step(32, 16, 13);
        let (u, _) = chambolle_denoise(&v, &params(300));
        // Noise within flat halves shrinks...
        let var = |g: &Grid<f64>, x0: usize, x1: usize| {
            let mut vals = Vec::new();
            for y in 2..14 {
                for x in x0..x1 {
                    vals.push(g[(x, y)]);
                }
            }
            let mean = vals.iter().sum::<f64>() / vals.len() as f64;
            vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / vals.len() as f64
        };
        assert!(var(&u, 2, 14) < 0.25 * var(&v, 2, 14));
        // ...but the step edge survives.
        let left: f64 = (4..12).map(|y| u[(4, y)]).sum::<f64>() / 8.0;
        let right: f64 = (4..12).map(|y| u[(27, y)]).sum::<f64>() / 8.0;
        assert!(right - left > 0.3, "edge should survive: {left} vs {right}");
    }

    #[test]
    fn literal_prose_convention_diverges() {
        // Running the dual update with the paper's literal ForwardX/ForwardY
        // prose (z[x] − z[x+1]) ascends the dual objective: the resulting u
        // has *higher* ROF energy than the start, while the standard
        // convention lowers it. This documents the sign-convention erratum.
        let v = noisy_step(16, 16, 21);
        let pr = params(60);
        let inv_theta = 1.0 / pr.theta as f64;
        let step_ratio = pr.step_ratio() as f64;
        let run = |conv: Convention| {
            let mut p = DualField::zeros(16, 16);
            let mut term = Grid::new(16, 16, 0.0f64);
            for _ in 0..60 {
                compute_term_into(&p, &v, inv_theta, &mut term);
                update_p_inplace(&mut p, &term, step_ratio, conv);
            }
            rof_energy(&recover_u(&v, &p, pr.theta), &v, pr.theta)
        };
        let e_init = rof_energy(&v, &v, pr.theta);
        let e_std = run(Convention::Standard);
        let e_prose = run(Convention::PaperProse);
        assert!(e_std < e_init, "standard convention must descend");
        assert!(
            e_prose > e_init,
            "literal prose convention should fail to descend: init={e_init}, prose={e_prose}"
        );
    }

    #[test]
    fn f32_and_f64_agree_closely() {
        let v64 = noisy_step(16, 12, 17);
        let v32 = v64.map(|&x| x as f32);
        let (u64_, _) = chambolle_denoise(&v64, &params(100));
        let (u32_, _) = chambolle_denoise(&v32, &params(100));
        for i in 0..u64_.len() {
            let d = (u64_.as_slice()[i] - u32_.as_slice()[i] as f64).abs();
            assert!(d < 1e-3, "f32/f64 divergence {d} at {i}");
        }
    }

    #[test]
    fn parallel_solver_bit_identical_across_thread_counts() {
        let mut rng = StdRng::seed_from_u64(31);
        let v = Grid::from_fn(37, 29, |_, _| rng.gen_range(0.0f32..1.0));
        let pr = params(23);
        let reference = SequentialSolver::new().denoise(&v, &pr);
        for threads in [1usize, 2, 3, 8] {
            let solver = ParallelSolver::new(threads);
            let u = solver.denoise(&v, &pr);
            assert_eq!(
                reference.as_slice(),
                u.as_slice(),
                "parallel output must be bit-identical at {threads} threads"
            );
            assert_eq!(solver.name(), "parallel");
        }
    }

    #[test]
    fn parallel_solver_handles_degenerate_shapes() {
        let solver = ParallelSolver::new(4);
        for (w, h) in [(1usize, 1usize), (9, 1), (1, 7), (5, 2)] {
            let v = Grid::from_fn(w, h, |x, y| (x * 3 + y) as f32 * 0.1);
            let pr = params(6);
            let seq = SequentialSolver::new().denoise(&v, &pr);
            let par = solver.denoise(&v, &pr);
            assert_eq!(seq.as_slice(), par.as_slice(), "{w}x{h}");
        }
    }

    #[test]
    fn parallel_solver_shares_a_pool() {
        let pool = Arc::new(chambolle_par::ThreadPool::new(2));
        let solver = ParallelSolver::with_pool(Arc::clone(&pool));
        let v = Grid::new(16, 16, 0.5f32);
        let _ = solver.denoise(&v, &params(4));
        assert!(
            solver.pool().stats().tasks > 0,
            "work went through the pool"
        );
    }

    #[test]
    fn sequential_solver_trait_object() {
        let v = Grid::new(8, 8, 0.25f32);
        let solver: &dyn TvDenoiser = &SequentialSolver::new();
        let u = solver.denoise(&v, &params(5));
        assert_eq!(u.dims(), (8, 8));
        assert_eq!(solver.name(), "sequential");
    }

    #[test]
    fn cancellable_solve_matches_plain_solve_bit_for_bit() {
        let v = noisy_step(18, 14, 23).map(|&x| x as f32);
        let pr = params(40);
        let (u_plain, p_plain) = chambolle_denoise(&v, &pr);
        let token = crate::cancel::CancelToken::new();
        let ctx = ExecCtx::default().with_cancel(token);
        let (u_canc, p_canc) = chambolle_denoise_with_ctx(&v, &pr, &ctx).unwrap();
        assert_eq!(u_plain.as_slice(), u_canc.as_slice());
        assert_eq!(p_plain.px.as_slice(), p_canc.px.as_slice());
        assert_eq!(p_plain.py.as_slice(), p_canc.py.as_slice());
    }

    #[test]
    fn pre_cancelled_token_stops_before_first_iteration() {
        let v = noisy_step(10, 10, 29).map(|&x| x as f32);
        let token = crate::cancel::CancelToken::new();
        token.cancel();
        let ctx = ExecCtx::default().with_cancel(token);
        let err = chambolle_denoise_with_ctx(&v, &params(50), &ctx).unwrap_err();
        assert_eq!(err.reason, crate::cancel::CancelReason::Explicit);
        // The dual state after a cancelled iterate is the last completed one:
        // cancelling before iteration 0 leaves the zero field untouched.
        let mut p = DualField::zeros(10, 10);
        let _ = chambolle_iterate_with_ctx(&mut p, &v, &params(50), 50, &ctx);
        assert!(p.max_norm() == 0.0);
    }

    #[test]
    fn single_pixel_and_single_row_images() {
        // Degenerate shapes must not panic and must keep constants fixed.
        for (w, h) in [(1usize, 1usize), (7, 1), (1, 9)] {
            let v = Grid::new(w, h, 0.3f64);
            let (u, _) = chambolle_denoise(&v, &params(20));
            for &val in u.as_slice() {
                assert!((val - 0.3).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn perturbation_travels_at_most_one_cell_per_iteration() {
        // The dependency-cone analysis (crate::dependency) says a change at
        // one cell can influence values at L-inf distance at most k after k
        // iterations. Verify against the real iteration: perturb v at one
        // cell and check where the dual field diverges.
        let mut rng = StdRng::seed_from_u64(42);
        let (w, h) = (21usize, 17usize);
        let v = Grid::from_fn(w, h, |_, _| rng.gen_range(0.0f64..1.0));
        let (cx, cy) = (10usize, 8usize);
        let mut v2 = v.clone();
        v2[(cx, cy)] += 0.5;
        for k in [1u32, 2, 4] {
            let mut pa = DualField::zeros(w, h);
            let mut pb = DualField::zeros(w, h);
            chambolle_iterate(&mut pa, &v, &params(k), k);
            chambolle_iterate(&mut pb, &v2, &params(k), k);
            let mut influenced_at_edge = false;
            for y in 0..h {
                for x in 0..w {
                    let d = (x as i64 - cx as i64)
                        .abs()
                        .max((y as i64 - cy as i64).abs()) as u32;
                    let changed = pa.px[(x, y)] != pb.px[(x, y)] || pa.py[(x, y)] != pb.py[(x, y)];
                    if changed {
                        assert!(d <= k, "influence at distance {d} after {k} iterations");
                        if d == k {
                            influenced_at_edge = true;
                        }
                    }
                }
            }
            // The bound is tight: the cone edge actually moves.
            assert!(influenced_at_edge, "cone should reach distance {k}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Cone containment for random perturbation sites and strengths.
        #[test]
        fn perturbation_cone_random(
            seed in any::<u64>(),
            cx in 0usize..15,
            cy in 0usize..11,
            delta in 0.1f64..2.0,
            k in 1u32..5,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let v = Grid::from_fn(15, 11, |_, _| rng.gen_range(0.0f64..1.0));
            let mut v2 = v.clone();
            v2[(cx, cy)] += delta;
            let mut pa = DualField::zeros(15, 11);
            let mut pb = DualField::zeros(15, 11);
            chambolle_iterate(&mut pa, &v, &params(k), k);
            chambolle_iterate(&mut pb, &v2, &params(k), k);
            for y in 0..11 {
                for x in 0..15 {
                    let d = (x as i64 - cx as i64).abs().max((y as i64 - cy as i64).abs()) as u32;
                    if d > k {
                        prop_assert_eq!(pa.px[(x, y)], pb.px[(x, y)]);
                        prop_assert_eq!(pa.py[(x, y)], pb.py[(x, y)]);
                    }
                }
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// |p| ≤ 1 after any number of iterations from any bounded input.
        #[test]
        fn dual_ball_invariant_random(
            w in 2usize..12,
            h in 2usize..12,
            iters in 1u32..40,
            seed in any::<u64>(),
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let v = Grid::from_fn(w, h, |_, _| rng.gen_range(-2.0f64..2.0));
            let mut p = DualField::zeros(w, h);
            chambolle_iterate(&mut p, &v, &params(iters), iters);
            prop_assert!(p.max_norm() <= 1.0 + 1e-12);
        }

        /// The solve is translation-equivariant: denoise(v + c) = denoise(v) + c.
        #[test]
        fn shift_equivariance(
            seed in any::<u64>(),
            c in -1.0f64..1.0,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let v = Grid::from_fn(10, 8, |_, _| rng.gen_range(0.0f64..1.0));
            let vc = v.map(|&x| x + c);
            let (u, _) = chambolle_denoise(&v, &params(30));
            let (uc, _) = chambolle_denoise(&vc, &params(30));
            for i in 0..u.len() {
                prop_assert!((uc.as_slice()[i] - (u.as_slice()[i] + c)).abs() < 1e-9);
            }
        }
    }
}
