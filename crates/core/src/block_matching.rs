//! Full-search block matching — the classical motion-estimation baseline
//! used by video codecs (the paper's motion-estimation/compensation
//! application context, refs \[2\]\[3\]).
//!
//! Block matching yields integer, blockwise-constant motion with no
//! regularization across blocks: fast and simple, but coarse next to the
//! dense sub-pixel fields of Horn–Schunck and TV-L1. It is included as the
//! third rung of the baseline ladder in the accuracy experiment.

use chambolle_imaging::{FlowField, Image};

use crate::params::InvalidParamsError;
use crate::tvl1::FlowError;

/// Block-matching parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockMatchingParams {
    /// Block edge length in pixels.
    pub block_size: usize,
    /// Maximum displacement searched in each direction (full search over
    /// `(2r+1)²` candidates).
    pub search_radius: usize,
}

impl BlockMatchingParams {
    /// Creates validated parameters.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidParamsError`] if `block_size == 0`.
    pub fn new(block_size: usize, search_radius: usize) -> Result<Self, InvalidParamsError> {
        if block_size == 0 {
            return Err(InvalidParamsError::new(
                "block_size must be positive".into(),
            ));
        }
        Ok(BlockMatchingParams {
            block_size,
            search_radius,
        })
    }
}

impl Default for BlockMatchingParams {
    /// 8×8 blocks, ±7 px search — the classic codec configuration.
    fn default() -> Self {
        BlockMatchingParams {
            block_size: 8,
            search_radius: 7,
        }
    }
}

/// Estimates blockwise motion with exhaustive SAD search.
///
/// The output uses the same convention as the other estimators
/// (`i1(x + u) ≈ i0(x)`), expanded to a dense per-pixel field for metric
/// comparison: every pixel of a block carries the block's vector.
///
/// # Errors
///
/// Returns [`FlowError`] if the frames are empty or differ in size.
pub fn block_matching_flow(
    i0: &Image,
    i1: &Image,
    params: &BlockMatchingParams,
) -> Result<FlowField, FlowError> {
    if i0.dims() != i1.dims() {
        return Err(FlowError::DimensionMismatch {
            first: i0.dims(),
            second: i1.dims(),
        });
    }
    if i0.is_empty() {
        return Err(FlowError::EmptyInput);
    }
    let (w, h) = i0.dims();
    let b = params.block_size;
    let r = params.search_radius as i64;
    let mut flow = FlowField::zeros(w, h);

    let mut by = 0;
    while by < h {
        let bh = b.min(h - by);
        let mut bx = 0;
        while bx < w {
            let bw = b.min(w - bx);
            let (du, dv) = best_match(i0, i1, bx, by, bw, bh, r);
            for y in by..by + bh {
                for x in bx..bx + bw {
                    flow.u1[(x, y)] = du as f32;
                    flow.u2[(x, y)] = dv as f32;
                }
            }
            bx += bw;
        }
        by += bh;
    }
    Ok(flow)
}

/// Exhaustive SAD search for one block; candidates whose target block leaves
/// the frame are skipped (the zero vector is always valid).
#[allow(clippy::too_many_arguments)]
fn best_match(
    i0: &Image,
    i1: &Image,
    bx: usize,
    by: usize,
    bw: usize,
    bh: usize,
    radius: i64,
) -> (i64, i64) {
    let (w, h) = i0.dims();
    let mut best = (0i64, 0i64);
    let mut best_sad = sad(i0, i1, bx, by, bw, bh, 0, 0);
    for dv in -radius..=radius {
        for du in -radius..=radius {
            if (du, dv) == (0, 0) {
                continue;
            }
            let x0 = bx as i64 + du;
            let y0 = by as i64 + dv;
            if x0 < 0 || y0 < 0 || x0 + bw as i64 > w as i64 || y0 + bh as i64 > h as i64 {
                continue;
            }
            let s = sad(i0, i1, bx, by, bw, bh, du, dv);
            if s < best_sad {
                best_sad = s;
                best = (du, dv);
            }
        }
    }
    best
}

#[allow(clippy::too_many_arguments)]
fn sad(
    i0: &Image,
    i1: &Image,
    bx: usize,
    by: usize,
    bw: usize,
    bh: usize,
    du: i64,
    dv: i64,
) -> f32 {
    let mut acc = 0.0f32;
    for y in 0..bh {
        for x in 0..bw {
            let a = i0[(bx + x, by + y)];
            let b = i1[(
                (bx as i64 + x as i64 + du) as usize,
                (by as i64 + y as i64 + dv) as usize,
            )];
            acc += (a - b).abs();
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use chambolle_imaging::{average_endpoint_error, render_pair, Motion, NoiseTexture};

    #[test]
    fn validation_and_defaults() {
        assert!(BlockMatchingParams::new(0, 4).is_err());
        let p = BlockMatchingParams::default();
        assert_eq!(p.block_size, 8);
        assert_eq!(p.search_radius, 7);
    }

    #[test]
    fn recovers_integer_translation_exactly() {
        let scene = NoiseTexture::new(51);
        let pair = render_pair(&scene, 64, 48, Motion::Translation { du: 3.0, dv: -2.0 });
        let flow =
            block_matching_flow(&pair.i0, &pair.i1, &BlockMatchingParams::default()).unwrap();
        // Interior blocks must hit the exact integer vector.
        for y in (8..40).step_by(8) {
            for x in (8..56).step_by(8) {
                assert_eq!(flow.at(x, y), (3.0, -2.0), "block at ({x},{y})");
            }
        }
    }

    #[test]
    fn subpixel_motion_rounds_to_integers() {
        let scene = NoiseTexture::new(52);
        let motion = Motion::Translation { du: 1.4, dv: 0.6 };
        let pair = render_pair(&scene, 64, 48, motion);
        let flow =
            block_matching_flow(&pair.i0, &pair.i1, &BlockMatchingParams::default()).unwrap();
        let aee = average_endpoint_error(&flow, &pair.truth);
        // Integer grid: the error floor is the rounding distance (~0.57 px
        // for this vector), far above TV-L1's sub-0.1 px.
        assert!(aee < 0.9, "AEE {aee}");
        assert!(aee > 0.3, "block matching cannot be sub-pixel, AEE {aee}");
    }

    #[test]
    fn motion_beyond_radius_is_missed() {
        let scene = NoiseTexture::new(53);
        let pair = render_pair(&scene, 64, 48, Motion::Translation { du: 11.0, dv: 0.0 });
        let small = BlockMatchingParams::new(8, 4).unwrap();
        let flow = block_matching_flow(&pair.i0, &pair.i1, &small).unwrap();
        let aee = average_endpoint_error(&flow, &pair.truth);
        assert!(
            aee > 5.0,
            "an 11px motion must escape a 4px search, AEE {aee}"
        );
    }

    #[test]
    fn non_multiple_dimensions_are_covered() {
        let scene = NoiseTexture::new(54);
        let pair = render_pair(&scene, 61, 45, Motion::Translation { du: 2.0, dv: 1.0 });
        let flow =
            block_matching_flow(&pair.i0, &pair.i1, &BlockMatchingParams::default()).unwrap();
        assert_eq!(flow.dims(), (61, 45));
        // Every pixel got assigned (blockwise-constant, so check a ragged
        // edge pixel has a finite vector).
        let (u, v) = flow.at(60, 44);
        assert!(u.is_finite() && v.is_finite());
    }

    #[test]
    fn rejects_mismatched_frames() {
        let a = chambolle_imaging::Grid::new(16, 16, 0.0f32);
        let b = chambolle_imaging::Grid::new(17, 16, 0.0f32);
        assert!(block_matching_flow(&a, &b, &BlockMatchingParams::default()).is_err());
    }
}
