//! The Chambolle total-variation solver and the TV-L1 optical-flow pipeline
//! of *"A High-Performance Parallel Implementation of the Chambolle
//! Algorithm"* (Akin et al., DATE 2011), in software form.
//!
//! The crate contains:
//!
//! - [`ops`] — the discrete gradient/divergence operators of Algorithm 1;
//! - [`solver`] — the sequential Chambolle fixed-point iteration
//!   ([`chambolle_denoise`]) plus the [`TvDenoiser`] backend abstraction;
//! - [`dependency`] — the Figure-1 dependency-cone analysis that justifies
//!   loop decomposition and the sliding-window halo;
//! - [`tiling`] — the paper's contribution: the loop-decomposed,
//!   sliding-window parallel solver ([`chambolle_iterate_tiled`],
//!   [`TiledSolver`]), bit-identical to the sequential solver;
//! - [`tvl1`] — the TV-L1 optical-flow outer loop ([`TvL1Solver`]) with
//!   profiling that reproduces the "~90% of time in Chambolle" claim;
//! - [`guard`] — the guarded solver pipeline: input scrubbing, divergence
//!   detection over the duality gap, and graceful degradation to the
//!   sequential reference with a structured [`RecoveryReport`];
//! - [`cancel`] — cooperative cancellation and deadlines ([`CancelToken`])
//!   polled at iteration boundaries by the `*_cancellable` solver entry
//!   points, the hooks a long-running request service builds on;
//! - [`backend`] — the [`KernelBackend`] abstraction over the fused row
//!   kernels: scalar, SSE2 and AVX2 implementations selected at runtime
//!   (override with `CHAMBOLLE_BACKEND`), all bit-identical by contract;
//! - [`ctx`] — the [`ExecCtx`] execution context consolidating pool,
//!   telemetry, cancellation, kernel backend and numerics tier behind one
//!   `*_with_ctx` entry point per solve family;
//! - [`fast`] — the [`NumericsPolicy::Fast`](ctx::NumericsPolicy) tier:
//!   FMA/approximate-reciprocal row kernels (AVX2+FMA and true 16-lane
//!   AVX-512F) and the K-deep temporally fused sweep, validated against the
//!   Exact tier by energy/duality-gap tolerance instead of bit equality.
//!
//! # Examples
//!
//! Denoise an image with the tiled parallel solver and verify it matches the
//! sequential reference exactly:
//!
//! ```
//! use chambolle_core::{
//!     ChambolleParams, ExecCtx, NumericsPolicy, SequentialSolver, TileConfig, TiledSolver,
//!     TvDenoiser,
//! };
//! use chambolle_imaging::Grid;
//!
//! let v = Grid::from_fn(64, 64, |x, y| ((x / 8 + y / 8) % 2) as f32);
//! let params = ChambolleParams::with_iterations(25);
//! // Bit identity between schedules is the Exact tier's contract (pinned
//! // here so the example holds even under `CHAMBOLLE_NUMERICS=fast`).
//! let exact = ExecCtx::default().with_numerics(NumericsPolicy::Exact);
//! let seq = SequentialSolver::new().denoise_with_ctx(&v, &params, &exact);
//! let tiled =
//!     TiledSolver::new(TileConfig::new(24, 24, 2, 2)?).denoise_with_ctx(&v, &params, &exact);
//! assert_eq!(seq.as_slice(), tiled.as_slice());
//! # Ok::<(), chambolle_core::InvalidParamsError>(())
//! ```

#![warn(missing_docs)]

pub mod backend;
pub mod block_matching;
pub mod cancel;
pub mod ctx;
pub mod decomposition;
pub mod dependency;
pub mod diagnostics;
pub mod fast;
pub mod guard;
pub mod horn_schunck;
pub mod kernels;
pub mod ops;
mod params;
mod real;
pub mod solver;
pub mod tiling;
pub mod tvl1;
pub mod weighted;

pub use backend::KernelBackend;
pub use block_matching::{block_matching_flow, BlockMatchingParams};
pub use cancel::{CancelReason, CancelToken, Cancelled};
pub use ctx::{DegradationPolicy, ExecCtx, NumericsPolicy};
pub use decomposition::{compute_group_decomposed, DecomposedStats, GroupRect};
pub use diagnostics::{
    chambolle_denoise_monitored, chambolle_denoise_monitored_with_ctx, duality_gap,
    duality_gap_compact, rof_dual_energy, try_duality_gap, try_duality_gap_compact,
    try_rof_dual_energy, ConvergencePoint, SolveReport,
};
pub use guard::{
    guarded_denoise_monitored, guarded_denoise_with_ctx, output_is_valid, scrub_non_finite,
    validate_solvable, GuardError, GuardedDenoiser, RecoveryAction, RecoveryPolicy, RecoveryReport,
};
pub use horn_schunck::{HornSchunck, HornSchunckParams};
pub use params::{ChambolleParams, InvalidParamsError, TvL1Params};
pub use real::Real;
pub use solver::{
    chambolle_denoise, chambolle_denoise_with_ctx, chambolle_iterate, chambolle_iterate_with_ctx,
    recover_u, rof_energy, try_rof_energy, Convention, DualField, ParallelSolver, SequentialSolver,
    TvDenoiser,
};
pub use tiling::{
    chambolle_iterate_tiled, chambolle_iterate_tiled_spawn_baseline,
    chambolle_iterate_tiled_spawn_baseline_with_ctx, chambolle_iterate_tiled_with_ctx, Tile,
    TileConfig, TilePlan, TiledSolver,
};
// Deprecated per-axis entry-point variants, re-exported for source
// compatibility. Each is a thin wrapper over its `*_with_ctx` canonical
// form; new code should construct an `ExecCtx` instead.
#[allow(deprecated)]
pub use diagnostics::chambolle_denoise_monitored_with_telemetry;
#[allow(deprecated)]
pub use guard::guarded_denoise_cancellable;
#[allow(deprecated)]
pub use solver::{
    chambolle_denoise_cancellable, chambolle_iterate_cancellable, chambolle_iterate_parallel,
};
#[allow(deprecated)]
pub use tiling::{
    chambolle_iterate_tiled_cancellable, chambolle_iterate_tiled_with_pool,
    chambolle_iterate_tiled_with_telemetry,
};
pub use tvl1::{threshold_step, FlowError, FlowStats, TvL1Solver, VideoFlowTracker};
pub use weighted::{
    chambolle_denoise_weighted, chambolle_denoise_weighted_with_ctx, edge_stopping_weights,
    weighted_rof_energy,
};
