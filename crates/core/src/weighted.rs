//! Weighted (spatially adaptive) total variation — the natural extension of
//! Chambolle's projection algorithm to `min_u Σ w·|∇u| + ‖u−v‖²/(2θ)`.
//!
//! The dual constraint becomes `|p(x)| ≤ w(x)` pointwise, and the
//! semi-implicit update changes only its renormalization:
//! `p ← (p + τ/θ·∇term) / (1 + τ/θ·|∇term|/w)`. With `w ≡ 1` this is
//! exactly Algorithm 1 (tested below). Spatially varying `w` gives
//! edge-aware denoising: small `w` preserves detail, large `w` smooths —
//! e.g. `w` derived from an edge detector.
//!
//! This is an extension beyond the paper (its hardware fixes `w = 1`), kept
//! in a separate module so the reproduction path stays untouched.

use chambolle_imaging::Grid;
use chambolle_par::{ThreadPool, UnsafeSharedSlice};

use crate::backend::KernelBackend;
use crate::ctx::{ExecCtx, NumericsPolicy};
use crate::fast;
use crate::params::{ChambolleParams, InvalidParamsError};
use crate::real::Real;
use crate::solver::{recover_u, DualField};

/// Validates a weight field: strictly positive and finite everywhere.
///
/// # Errors
///
/// Returns [`InvalidParamsError`] if any weight is not finite and positive.
pub fn validate_weights<R: Real>(w: &Grid<R>) -> Result<(), InvalidParamsError> {
    for (x, y, &val) in w.iter() {
        if !(val.is_finite() && val > R::ZERO) {
            return Err(InvalidParamsError::new(format!(
                "weight at ({x}, {y}) must be finite and positive, got {val:?}"
            )));
        }
    }
    Ok(())
}

/// One weighted dual update (pass 2 of an iteration), in place.
///
/// # Panics
///
/// Panics if grid dimensions differ.
pub fn update_p_weighted<R: Real>(
    p: &mut DualField<R>,
    term: &Grid<R>,
    weights: &Grid<R>,
    step_ratio: R,
) {
    assert_eq!(
        p.dims(),
        term.dims(),
        "dual field and term must match in size"
    );
    assert_eq!(p.dims(), weights.dims(), "weights must match in size");
    let (w, h) = term.dims();
    for y in 0..h {
        for x in 0..w {
            let t1 = if x + 1 < w {
                term[(x + 1, y)] - term[(x, y)]
            } else {
                R::ZERO
            };
            let t2 = if y + 1 < h {
                term[(x, y + 1)] - term[(x, y)]
            } else {
                R::ZERO
            };
            let grad = (t1 * t1 + t2 * t2).sqrt();
            let denom = R::ONE + step_ratio * grad / weights[(x, y)];
            p.px[(x, y)] = (p.px[(x, y)] + step_ratio * t1) / denom;
            p.py[(x, y)] = (p.py[(x, y)] + step_ratio * t2) / denom;
        }
    }
}

/// Solves the weighted ROF model `min_u Σ w·|∇u| + ‖u−v‖²/(2θ)`.
///
/// # Errors
///
/// Returns [`InvalidParamsError`] if the weights are invalid or the
/// dimensions differ.
pub fn chambolle_denoise_weighted<R: Real>(
    v: &Grid<R>,
    weights: &Grid<R>,
    params: &ChambolleParams,
) -> Result<(Grid<R>, DualField<R>), InvalidParamsError> {
    chambolle_denoise_weighted_with_ctx(v, weights, params, &ExecCtx::default())
}

/// [`chambolle_denoise_weighted`] under an [`ExecCtx`].
///
/// Until PR 5 the weighted solve ignored the pool/telemetry plumbing
/// entirely; it now honors the context:
///
/// - the term pass runs on the context's pool (row-sharded; each row is
///   produced by the same row kernel either way, so the result is
///   bit-identical to the sequential pass),
/// - that term pass also runs on the context's [`KernelBackend`],
/// - the solve is wrapped in a `weighted.solve` telemetry span.
///
/// The weighted dual update itself stays a sequential scalar pass: its
/// per-weight renormalization has no fused/vector kernel (the paper's
/// hardware fixes `w = 1`). The context's numerics tier applies to the
/// term pass only — under [`NumericsPolicy::Fast`](crate::NumericsPolicy)
/// the term rows run the FMA kernels of [`crate::fast`]. The context's
/// cancellation token is **not** polled — the weighted solve has no
/// cancellable entry point to stay compatible with, and its error type
/// reports invalid inputs only.
///
/// # Errors
///
/// Returns [`InvalidParamsError`] if the weights are invalid or the
/// dimensions differ.
pub fn chambolle_denoise_weighted_with_ctx<R: Real>(
    v: &Grid<R>,
    weights: &Grid<R>,
    params: &ChambolleParams,
    ctx: &ExecCtx,
) -> Result<(Grid<R>, DualField<R>), InvalidParamsError> {
    if v.dims() != weights.dims() {
        return Err(InvalidParamsError::new(format!(
            "weights {}x{} do not match image {}x{}",
            weights.width(),
            weights.height(),
            v.width(),
            v.height()
        )));
    }
    validate_weights(weights)?;
    let _span = ctx.telemetry().span("weighted.solve");
    let backend = ctx.backend();
    let numerics = ctx.numerics();
    let pool = ctx.pool().map(std::sync::Arc::as_ref);
    let inv_theta = R::ONE / R::from_f32(params.theta);
    let step_ratio = R::from_f32(params.step_ratio());
    let mut p = DualField::zeros(v.width(), v.height());
    let mut term = Grid::new(v.width(), v.height(), R::ZERO);
    for _ in 0..params.iterations {
        term_pass(&p, v, inv_theta, backend, numerics, pool, &mut term);
        update_p_weighted(&mut p, &term, weights, step_ratio);
    }
    Ok((recover_u(v, &p, params.theta), p))
}

/// Pass 1 of a weighted iteration: fills `term` row by row with the
/// context's backend, sharding rows over `pool` when one is attached. Rows
/// are independent (each reads only `p` and `v`), so the sharding changes
/// scheduling, never values.
fn term_pass<R: Real>(
    p: &DualField<R>,
    v: &Grid<R>,
    inv_theta: R,
    backend: KernelBackend,
    numerics: NumericsPolicy,
    pool: Option<&ThreadPool>,
    term: &mut Grid<R>,
) {
    let (w, h) = v.dims();
    if w == 0 || h == 0 {
        return;
    }
    let term_row = |y: usize, out: &mut [R]| {
        fast::term_row_tiered(
            backend,
            numerics,
            p.px.row(y),
            p.py.row(y),
            (y > 0).then(|| p.py.row(y - 1)),
            v.row(y),
            inv_theta,
            y + 1 == h,
            out,
        );
    };
    match pool {
        None => {
            for y in 0..h {
                term_row(y, term.row_mut(y));
            }
        }
        Some(pool) => {
            let shared = UnsafeSharedSlice::new(term.as_mut_slice());
            let chunk = h.div_ceil(pool.threads().max(1)).max(1);
            pool.parallel_for_rows("weighted.term", 0..h, chunk, |rows| {
                for y in rows {
                    // SAFETY: row ranges handed out by `parallel_for_rows`
                    // are disjoint, so each term row is written by exactly
                    // one task.
                    term_row(y, unsafe { shared.slice_mut(y * w, w) });
                }
            });
        }
    }
}

/// The weighted ROF primal energy `Σ w·|∇u| + ‖u−v‖²/(2θ)`.
///
/// # Panics
///
/// Panics if dimensions differ or `theta <= 0`.
pub fn weighted_rof_energy<R: Real>(
    u: &Grid<R>,
    v: &Grid<R>,
    weights: &Grid<R>,
    theta: f32,
) -> f64 {
    assert_eq!(u.dims(), v.dims(), "u and v must match in size");
    assert_eq!(u.dims(), weights.dims(), "weights must match in size");
    assert!(theta > 0.0, "theta must be positive");
    let (w, h) = u.dims();
    let mut tv = 0.0f64;
    for y in 0..h {
        for x in 0..w {
            let gx = if x + 1 < w {
                (u[(x + 1, y)] - u[(x, y)]).to_f64()
            } else {
                0.0
            };
            let gy = if y + 1 < h {
                (u[(x, y + 1)] - u[(x, y)]).to_f64()
            } else {
                0.0
            };
            tv += weights[(x, y)].to_f64() * (gx * gx + gy * gy).sqrt();
        }
    }
    let quad: f64 = u
        .as_slice()
        .iter()
        .zip(v.as_slice())
        .map(|(&a, &b)| {
            let d = a.to_f64() - b.to_f64();
            d * d
        })
        .sum();
    tv + quad / (2.0 * theta as f64)
}

/// Weight field `w = 1 / (1 + s·|∇v|)` from the input's own gradients —
/// low weight (little smoothing) across strong edges.
pub fn edge_stopping_weights<R: Real>(v: &Grid<R>, sensitivity: f32) -> Grid<R> {
    let (w, h) = v.dims();
    let s = sensitivity as f64;
    Grid::from_fn(w, h, |x, y| {
        let gx = if x + 1 < w {
            (v[(x + 1, y)] - v[(x, y)]).to_f64()
        } else {
            0.0
        };
        let gy = if y + 1 < h {
            (v[(x, y + 1)] - v[(x, y)]).to_f64()
        } else {
            0.0
        };
        let mag = (gx * gx + gy * gy).sqrt();
        R::from_f64(1.0 / (1.0 + s * mag))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::chambolle_denoise;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn params(iters: u32) -> ChambolleParams {
        ChambolleParams::paper(iters)
    }

    fn noisy_step(w: usize, h: usize, seed: u64) -> Grid<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        Grid::from_fn(w, h, |x, _| {
            (if x < w / 2 { 0.2 } else { 0.8 }) + rng.gen_range(-0.1..0.1)
        })
    }

    #[test]
    fn unit_weights_reproduce_algorithm_1() {
        let v = noisy_step(20, 14, 1);
        let ones = Grid::new(20, 14, 1.0f64);
        let (u_w, p_w) = chambolle_denoise_weighted(&v, &ones, &params(40)).unwrap();
        let (u, p) = chambolle_denoise(&v, &params(40));
        assert_eq!(u_w.as_slice(), u.as_slice());
        assert_eq!(p_w.px.as_slice(), p.px.as_slice());
    }

    #[test]
    fn dual_respects_weighted_ball() {
        let mut rng = StdRng::seed_from_u64(2);
        let v = noisy_step(16, 12, 3);
        let weights = Grid::from_fn(16, 12, |_, _| rng.gen_range(0.2f64..2.0));
        let (_, p) = chambolle_denoise_weighted(&v, &weights, &params(60)).unwrap();
        for (x, y, &w) in weights.iter() {
            let norm = (p.px[(x, y)].powi(2) + p.py[(x, y)].powi(2)).sqrt();
            assert!(norm <= w + 1e-12, "|p| = {norm} > w = {w} at ({x},{y})");
        }
    }

    #[test]
    fn weighted_energy_decreases() {
        let v = noisy_step(24, 16, 4);
        let weights = edge_stopping_weights(&v, 5.0);
        let (u, _) = chambolle_denoise_weighted(&v, &weights, &params(200)).unwrap();
        let e0 = weighted_rof_energy(&v, &v, &weights, 0.25);
        let e1 = weighted_rof_energy(&u, &v, &weights, 0.25);
        assert!(e1 < e0, "energy should decrease: {e0} -> {e1}");
    }

    #[test]
    fn small_weight_preserves_detail() {
        // A strong edge with w ~ 0 across it keeps more contrast than w = 1.
        let v = noisy_step(32, 16, 5);
        let ones = Grid::new(32, 16, 1.0f64);
        let tiny = Grid::new(32, 16, 0.05f64);
        let contrast = |u: &Grid<f64>| {
            let left: f64 = (4..12).map(|y| u[(6, y)]).sum::<f64>() / 8.0;
            let right: f64 = (4..12).map(|y| u[(25, y)]).sum::<f64>() / 8.0;
            right - left
        };
        let (u1, _) = chambolle_denoise_weighted(&v, &ones, &params(200)).unwrap();
        let (u2, _) = chambolle_denoise_weighted(&v, &tiny, &params(200)).unwrap();
        assert!(
            contrast(&u2) > contrast(&u1),
            "low weight should keep the edge sharper"
        );
        // And u with tiny weights stays closer to the input overall.
        let dist = |a: &Grid<f64>| -> f64 {
            a.as_slice()
                .iter()
                .zip(v.as_slice())
                .map(|(&x, &y)| (x - y).abs())
                .sum()
        };
        assert!(dist(&u2) < dist(&u1));
    }

    #[test]
    fn edge_stopping_weights_are_low_on_edges() {
        let v = Grid::from_fn(16, 8, |x, _| if x < 8 { 0.0f64 } else { 1.0 });
        let w = edge_stopping_weights(&v, 4.0);
        assert!(w[(7, 4)] < 0.25, "edge weight {}", w[(7, 4)]);
        assert_eq!(w[(2, 4)], 1.0, "flat-region weight");
        assert!(validate_weights(&w).is_ok());
    }

    #[test]
    fn weighted_with_ctx_pool_is_bit_identical_and_instrumented() {
        use std::sync::Arc;
        let v = noisy_step(24, 18, 9);
        let weights = edge_stopping_weights(&v, 4.0);
        let pr = params(30);
        let (u_seq, p_seq) = chambolle_denoise_weighted(&v, &weights, &pr).unwrap();

        let tele = chambolle_telemetry::Telemetry::null();
        let ctx = ExecCtx::default()
            .with_pool(Arc::new(ThreadPool::new(4)))
            .with_telemetry(tele.clone());
        let (u_par, p_par) = chambolle_denoise_weighted_with_ctx(&v, &weights, &pr, &ctx).unwrap();
        assert_eq!(u_seq.as_slice(), u_par.as_slice());
        assert_eq!(p_seq.px.as_slice(), p_par.px.as_slice());
        assert_eq!(p_seq.py.as_slice(), p_par.py.as_slice());
        let spans = tele
            .snapshot()
            .get(chambolle_telemetry::span::span_metric_name("weighted.solve").as_str())
            .and_then(|m| m.as_histogram())
            .map(|h| h.count());
        assert_eq!(spans, Some(1));
    }

    #[test]
    fn invalid_inputs_rejected() {
        let v = Grid::new(8, 8, 0.5f64);
        let bad_dims = Grid::new(9, 8, 1.0f64);
        assert!(chambolle_denoise_weighted(&v, &bad_dims, &params(5)).is_err());
        let mut zero_w = Grid::new(8, 8, 1.0f64);
        zero_w[(3, 3)] = 0.0;
        assert!(chambolle_denoise_weighted(&v, &zero_w, &params(5)).is_err());
        let mut nan_w = Grid::new(8, 8, 1.0f64);
        nan_w[(2, 2)] = f64::NAN;
        assert!(chambolle_denoise_weighted(&v, &nan_w, &params(5)).is_err());
    }
}
